module ramcloud

go 1.24
