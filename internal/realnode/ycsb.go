package realnode

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ramcloud/internal/ycsb"
)

// LoadOptions configures a real-cluster YCSB run.
type LoadOptions struct {
	Clients int   // concurrent worker goroutines (default 4)
	Ops     int   // total operations across workers (default 10000)
	Seed    int64 // base RNG seed; worker i uses Seed+i
	Load    bool  // run the load phase (insert every record) first
}

func (o LoadOptions) clients() int {
	if o.Clients > 0 {
		return o.Clients
	}
	return 4
}

func (o LoadOptions) ops() int {
	if o.Ops > 0 {
		return o.Ops
	}
	return 10000
}

// LoadResult summarizes a real-cluster YCSB run. Unlike the simulated
// results these are wall-clock measurements of the local TCP cluster —
// useful as a protocol soak and a sanity scale, not as figures.
type LoadResult struct {
	Ops        int           // operations that completed (incl. NotFound)
	Reads      int
	Updates    int
	NotFound   int           // reads of keys with no live object
	Errors     int           // ErrUnavailable and protocol failures
	Elapsed    time.Duration
	P50, P99   time.Duration // completed-op latency percentiles
	Throughput float64       // completed ops per second
}

// Value renders the deterministic payload for record i: RecordSize bytes
// derived from the key, so any reader can validate what it fetched.
func Value(w ycsb.Workload, i int) []byte {
	key := ycsb.Key(i)
	v := make([]byte, w.RecordSize)
	for j := range v {
		v[j] = key[j%len(key)] ^ byte(j)
	}
	return v
}

// RunYCSB drives the workload mix against a live cluster through c. The
// key distribution and operation mix come from the same internal/ycsb
// generators the simulated runs use.
func RunYCSB(c *Client, table uint64, w ycsb.Workload, opts LoadOptions) (LoadResult, error) {
	if opts.Load {
		if err := loadPhase(c, table, w, opts); err != nil {
			return LoadResult{}, err
		}
	}

	nClients := opts.clients()
	totalOps := opts.ops()
	var res LoadResult
	var mu sync.Mutex
	lats := make([]time.Duration, 0, totalOps)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < nClients; i++ {
		share := totalOps / nClients
		if i < totalOps%nClients {
			share++
		}
		wg.Add(1)
		go func(worker, nOps int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(worker)))
			ch := w.NewChooser()
			var local LoadResult
			localLats := make([]time.Duration, 0, nOps)
			for n := 0; n < nOps; n++ {
				rec := ch.Next(rng)
				key := ycsb.Key(rec)
				opStart := time.Now()
				var err error
				if rng.Float64() < w.ReadProp {
					local.Reads++
					_, _, err = c.Get(table, key)
				} else {
					local.Updates++
					_, err = c.Put(table, key, Value(w, rec))
				}
				switch {
				case err == nil:
					local.Ops++
					localLats = append(localLats, time.Since(opStart))
				case errors.Is(err, ErrNotFound):
					local.Ops++
					local.NotFound++
					localLats = append(localLats, time.Since(opStart))
				default:
					local.Errors++
				}
			}
			mu.Lock()
			res.Ops += local.Ops
			res.Reads += local.Reads
			res.Updates += local.Updates
			res.NotFound += local.NotFound
			res.Errors += local.Errors
			lats = append(lats, localLats...)
			mu.Unlock()
		}(i, share)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		res.P50 = lats[len(lats)/2]
		res.P99 = lats[len(lats)*99/100]
	}
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Ops) / res.Elapsed.Seconds()
	}
	return res, nil
}

// loadPhase inserts every record, split across workers.
func loadPhase(c *Client, table uint64, w ycsb.Workload, opts LoadOptions) error {
	nClients := opts.clients()
	var wg sync.WaitGroup
	errCh := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for rec := worker; rec < w.RecordCount; rec += nClients {
				if _, err := c.Put(table, ycsb.Key(rec), Value(w, rec)); err != nil {
					errCh <- fmt.Errorf("load record %d: %w", rec, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}
