package realnode

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ramcloud/internal/ycsb"
)

// LoadOptions configures a real-cluster YCSB run.
type LoadOptions struct {
	Clients int   // concurrent worker goroutines (default 4)
	Ops     int   // total operations across workers (default 10000)
	Seed    int64 // base RNG seed; worker i uses Seed+i
	Load    bool  // run the load phase (insert every record) first

	// Pipeline keeps up to this many operations in flight per worker
	// (async futures over one shared client; default 1 = synchronous).
	// Latency is measured issue-to-resolve, so queueing in the window
	// is charged to the op, exactly like the simulated Window mode.
	Pipeline int
	// Batch groups this many operations into MultiRead/MultiWrite
	// rounds (at most one RPC per owning master per round; default 1 =
	// individual ops). When Batch > 1 it takes precedence over
	// Pipeline, and the load phase also inserts via MultiWrite.
	Batch int
}

func (o LoadOptions) clients() int {
	if o.Clients > 0 {
		return o.Clients
	}
	return 4
}

func (o LoadOptions) ops() int {
	if o.Ops > 0 {
		return o.Ops
	}
	return 10000
}

func (o LoadOptions) pipeline() int {
	if o.Pipeline > 0 {
		return o.Pipeline
	}
	return 1
}

func (o LoadOptions) batch() int {
	if o.Batch > 0 {
		return o.Batch
	}
	return 1
}

// LoadResult summarizes a real-cluster YCSB run. Unlike the simulated
// results these are wall-clock measurements of the local TCP cluster —
// useful as a protocol soak and a sanity scale, not as figures.
type LoadResult struct {
	Ops        int // operations that completed (incl. NotFound)
	Reads      int
	Updates    int
	NotFound   int // reads of keys with no live object
	Errors     int // ErrUnavailable and protocol failures
	Elapsed    time.Duration
	P50, P99   time.Duration // completed-op latency percentiles
	Throughput float64       // completed ops per second
}

// Value renders the deterministic payload for record i: RecordSize bytes
// derived from the key, so any reader can validate what it fetched.
func Value(w ycsb.Workload, i int) []byte {
	key := ycsb.Key(i)
	v := make([]byte, w.RecordSize)
	for j := range v {
		v[j] = key[j%len(key)] ^ byte(j)
	}
	return v
}

// workerTally accumulates one worker's outcomes.
type workerTally struct {
	res  LoadResult
	lats []time.Duration
}

func (t *workerTally) settle(isRead bool, err error, lat time.Duration) {
	if isRead {
		t.res.Reads++
	} else {
		t.res.Updates++
	}
	switch {
	case err == nil:
		t.res.Ops++
		t.lats = append(t.lats, lat)
	case errors.Is(err, ErrNotFound):
		t.res.Ops++
		t.res.NotFound++
		t.lats = append(t.lats, lat)
	default:
		t.res.Errors++
	}
}

// RunYCSB drives the workload mix against a live cluster through c. The
// key distribution and operation mix come from the same internal/ycsb
// generators the simulated runs use. Pipeline and Batch select the
// async-window and multi-op fast paths over the same wire.
func RunYCSB(c *Client, table uint64, w ycsb.Workload, opts LoadOptions) (LoadResult, error) {
	if opts.Load {
		if err := loadPhase(c, table, w, opts); err != nil {
			return LoadResult{}, err
		}
	}

	nClients := opts.clients()
	totalOps := opts.ops()
	var res LoadResult
	var mu sync.Mutex
	lats := make([]time.Duration, 0, totalOps)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < nClients; i++ {
		share := totalOps / nClients
		if i < totalOps%nClients {
			share++
		}
		wg.Add(1)
		go func(worker, nOps int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(worker)))
			ch := w.NewChooser()
			tally := &workerTally{lats: make([]time.Duration, 0, nOps)}
			switch {
			case opts.batch() > 1:
				runBatched(c, table, w, rng, ch, nOps, opts.batch(), tally)
			case opts.pipeline() > 1:
				runPipelined(c, table, w, rng, ch, nOps, opts.pipeline(), tally)
			default:
				runSync(c, table, w, rng, ch, nOps, tally)
			}
			mu.Lock()
			res.Ops += tally.res.Ops
			res.Reads += tally.res.Reads
			res.Updates += tally.res.Updates
			res.NotFound += tally.res.NotFound
			res.Errors += tally.res.Errors
			lats = append(lats, tally.lats...)
			mu.Unlock()
		}(i, share)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		res.P50 = lats[len(lats)/2]
		res.P99 = lats[len(lats)*99/100]
	}
	if res.Elapsed > 0 {
		res.Throughput = float64(res.Ops) / res.Elapsed.Seconds()
	}
	return res, nil
}

// runSync is the classic one-op-at-a-time loop.
func runSync(c *Client, table uint64, w ycsb.Workload, rng *rand.Rand, ch ycsb.Chooser, nOps int, tally *workerTally) {
	for n := 0; n < nOps; n++ {
		rec := ch.Next(rng)
		key := ycsb.Key(rec)
		opStart := time.Now()
		var err error
		isRead := rng.Float64() < w.ReadProp
		if isRead {
			_, _, err = c.Get(table, key)
		} else {
			_, err = c.Put(table, key, Value(w, rec))
		}
		tally.settle(isRead, err, time.Since(opStart))
	}
}

// runPipelined keeps a FIFO window of depth futures in flight: issue
// until the window is full, then reap the oldest before issuing the
// next. One worker goroutine, no goroutine per op — the transport
// coalesces the queued requests into shared flushes.
func runPipelined(c *Client, table uint64, w ycsb.Workload, rng *rand.Rand, ch ycsb.Chooser, nOps, depth int, tally *workerTally) {
	type inflight struct {
		f      *Future
		isRead bool
		issued time.Time
	}
	window := make([]inflight, 0, depth)
	head := 0
	reap := func() {
		op := window[head]
		head++
		_, _, err := op.f.Wait()
		tally.settle(op.isRead, err, time.Since(op.issued))
	}
	for n := 0; n < nOps; n++ {
		if len(window)-head == depth {
			reap()
			if head == len(window) {
				window = window[:0]
				head = 0
			}
		}
		rec := ch.Next(rng)
		key := ycsb.Key(rec)
		isRead := rng.Float64() < w.ReadProp
		var f *Future
		issued := time.Now()
		if isRead {
			f = c.GetAsync(table, key)
		} else {
			f = c.PutAsync(table, key, Value(w, rec))
		}
		window = append(window, inflight{f: f, isRead: isRead, issued: issued})
	}
	for head < len(window) {
		reap()
	}
}

// runBatched groups ops into MultiRead/MultiWrite rounds. Latency is
// charged per round to every op in it (a multiget's caller waits for
// the whole batch).
func runBatched(c *Client, table uint64, w ycsb.Workload, rng *rand.Rand, ch ycsb.Chooser, nOps, batch int, tally *workerTally) {
	for n := 0; n < nOps; {
		b := batch
		if rem := nOps - n; b > rem {
			b = rem
		}
		readKeys := make([][]byte, 0, b)
		writeKeys := make([][]byte, 0, b)
		writeVals := make([][]byte, 0, b)
		for j := 0; j < b; j++ {
			rec := ch.Next(rng)
			if rng.Float64() < w.ReadProp {
				readKeys = append(readKeys, ycsb.Key(rec))
			} else {
				writeKeys = append(writeKeys, ycsb.Key(rec))
				writeVals = append(writeVals, Value(w, rec))
			}
		}
		roundStart := time.Now()
		var rres, wres []MultiResult
		if len(readKeys) > 0 {
			rres = c.MultiRead(table, readKeys)
		}
		if len(writeKeys) > 0 {
			wres = c.MultiWrite(table, writeKeys, writeVals)
		}
		lat := time.Since(roundStart)
		for i := range rres {
			tally.settle(true, rres[i].Err, lat)
		}
		for i := range wres {
			tally.settle(false, wres[i].Err, lat)
		}
		n += b
	}
}

// loadPhase inserts every record, split across workers. With Batch > 1
// it inserts through MultiWrite (one RPC per owner per round).
func loadPhase(c *Client, table uint64, w ycsb.Workload, opts LoadOptions) error {
	nClients := opts.clients()
	batch := opts.batch()
	var wg sync.WaitGroup
	errCh := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			if batch > 1 {
				keys := make([][]byte, 0, batch)
				vals := make([][]byte, 0, batch)
				flush := func() error {
					if len(keys) == 0 {
						return nil
					}
					for _, r := range c.MultiWrite(table, keys, vals) {
						if r.Err != nil {
							return fmt.Errorf("load batch: %w", r.Err)
						}
					}
					keys = keys[:0]
					vals = vals[:0]
					return nil
				}
				for rec := worker; rec < w.RecordCount; rec += nClients {
					keys = append(keys, ycsb.Key(rec))
					vals = append(vals, Value(w, rec))
					if len(keys) == batch {
						if err := flush(); err != nil {
							errCh <- err
							return
						}
					}
				}
				if err := flush(); err != nil {
					errCh <- err
				}
				return
			}
			for rec := worker; rec < w.RecordCount; rec += nClients {
				if _, err := c.Put(table, ycsb.Key(rec), Value(w, rec)); err != nil {
					errCh <- fmt.Errorf("load record %d: %w", rec, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}
