package realnode

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ramcloud/internal/transport"
	"ramcloud/internal/ycsb"
)

// bootCluster starts an in-process coordinator plus n TCP masters on
// loopback ephemeral ports and returns them with a connected client.
func bootCluster(t *testing.T, n int) (*Coordinator, []*Server, *Client) {
	t.Helper()
	tr := &transport.TCP{RedialBase: 2 * time.Millisecond, RedialCap: 50 * time.Millisecond}
	coord := NewCoordinator(tr, CoordConfig{
		PingInterval:  20 * time.Millisecond,
		MissThreshold: 3,
		RPCTimeout:    time.Second,
	})
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	t.Cleanup(coord.Stop)

	servers := make([]*Server, n)
	for i := range servers {
		servers[i] = NewServer(tr, coord.Addr(), ServerConfig{EnlistBackoff: 10 * time.Millisecond})
		if err := servers[i].Start("127.0.0.1:0"); err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Stop()
		}
	})

	client := NewClient(tr, coord.Addr(), ClientConfig{
		RPCTimeout: 500 * time.Millisecond,
		MaxRetries: 80,
		RetryBase:  2 * time.Millisecond,
		RetryCap:   50 * time.Millisecond,
	})
	t.Cleanup(client.Close)
	return coord, servers, client
}

func TestClusterBasicOps(t *testing.T) {
	_, servers, client := bootCluster(t, 3)
	table, err := client.CreateTable("usertable", 3)
	if err != nil {
		t.Fatalf("create table: %v", err)
	}

	// Read-your-write across enough keys to hit all three ranges. FNV
	// key hashes of near-identical short keys share their high bits, so
	// sequential YCSB keys only cover the whole hash space once a few
	// thousand indices are in play (the experiments use >=8K records).
	for i := 0; i < 2000; i++ {
		key := ycsb.Key(i)
		val := []byte(fmt.Sprintf("value-%04d", i))
		if _, err := client.Put(table, key, val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		got, _, err := client.Get(table, key)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("get %d: got %q, want %q", i, got, val)
		}
	}

	// Overwrite bumps the version.
	v1, err := client.Put(table, ycsb.Key(0), []byte("first"))
	if err != nil {
		t.Fatalf("put v1: %v", err)
	}
	v2, err := client.Put(table, ycsb.Key(0), []byte("second"))
	if err != nil {
		t.Fatalf("put v2: %v", err)
	}
	if v2 <= v1 {
		t.Fatalf("version did not advance: %d then %d", v1, v2)
	}
	got, ver, err := client.Get(table, ycsb.Key(0))
	if err != nil || string(got) != "second" || ver != v2 {
		t.Fatalf("read-your-write: %q v%d err=%v, want \"second\" v%d", got, ver, err, v2)
	}

	// Delete, then not-found.
	if err := client.Delete(table, ycsb.Key(0)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, _, err := client.Get(table, ycsb.Key(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v, want ErrNotFound", err)
	}
	if err := client.Delete(table, ycsb.Key(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}

	// All three servers took writes (uniform keys, span 3).
	for i, s := range servers {
		if s.Objects() == 0 {
			t.Fatalf("server %d owns no objects: routing never reached it", i)
		}
	}
}

// TestClusterKillServer is the loopback failover check: a small YCSB-A
// mix runs against 3 masters, one master's listener is severed mid-run,
// and every operation must still terminate as success or an explicit
// NotFound (data lost with the dead, unreplicated master) — never a
// silent loss, a protocol error, or a hang.
func TestClusterKillServer(t *testing.T) {
	coord, servers, client := bootCluster(t, 3)
	table, err := client.CreateTable("usertable", 3)
	if err != nil {
		t.Fatalf("create table: %v", err)
	}

	w := ycsb.WorkloadA(5000, 64) // >=5K records so all three hash ranges carry load
	for i := 0; i < w.RecordCount; i++ {
		if _, err := client.Put(table, ycsb.Key(i), Value(w, i)); err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
	}

	const nWorkers = 4
	const opsPerWorker = 400
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		done     int
		notFound int
		failures []string
	)
	for wkr := 0; wkr < nWorkers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + wkr)))
			ch := w.NewChooser()
			for n := 0; n < opsPerWorker; n++ {
				rec := ch.Next(rng)
				key := ycsb.Key(rec)
				var err error
				if rng.Float64() < w.ReadProp {
					_, _, err = client.Get(table, key)
				} else {
					_, err = client.Put(table, key, Value(w, rec))
				}
				mu.Lock()
				switch {
				case err == nil:
					done++
				case errors.Is(err, ErrNotFound):
					done++
					notFound++
				default:
					failures = append(failures, fmt.Sprintf("worker %d op %d: %v", wkr, n, err))
				}
				mu.Unlock()
			}
		}(wkr)
	}

	// Sever one master mid-run. Its tablets reassign to the survivors
	// once the coordinator's pings miss the threshold.
	time.Sleep(50 * time.Millisecond)
	servers[1].Stop()

	wg.Wait()

	if len(failures) > 0 {
		t.Fatalf("%d ops failed; first: %s", len(failures), failures[0])
	}
	if done != nWorkers*opsPerWorker {
		t.Fatalf("completed %d/%d ops", done, nWorkers*opsPerWorker)
	}
	t.Logf("ops=%d notFound=%d (lost with the killed master) refreshes=%d retries=%d",
		done, notFound, client.Stats().Refreshes.Load(), client.Stats().Retries.Load())

	// The coordinator observed the death.
	deadline := time.Now().Add(2 * time.Second)
	for len(coord.Servers()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator still reports %d servers", len(coord.Servers()))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Post-failover, writes and read-your-write work everywhere again.
	for i := 0; i < 100; i++ {
		key := ycsb.Key(i)
		val := []byte(fmt.Sprintf("after-failover-%04d", i))
		if _, err := client.Put(table, key, val); err != nil {
			t.Fatalf("post-failover put %d: %v", i, err)
		}
		got, _, err := client.Get(table, key)
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("post-failover get %d: %q err=%v", i, got, err)
		}
	}
}

// TestClusterServerRejoin restarts a killed master (new process, same
// enlist path) and checks it re-enters service for new tables.
func TestClusterServerRejoin(t *testing.T) {
	coord, servers, client := bootCluster(t, 2)
	if _, err := client.CreateTable("t1", 2); err != nil {
		t.Fatalf("create: %v", err)
	}
	servers[0].Stop()
	deadline := time.Now().Add(2 * time.Second)
	for len(coord.Servers()) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("death not detected: %d servers", len(coord.Servers()))
		}
		time.Sleep(10 * time.Millisecond)
	}

	tr := &transport.TCP{RedialBase: 2 * time.Millisecond, RedialCap: 50 * time.Millisecond}
	fresh := NewServer(tr, coord.Addr(), ServerConfig{EnlistBackoff: 10 * time.Millisecond})
	if err := fresh.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	t.Cleanup(fresh.Stop)
	deadline = time.Now().Add(2 * time.Second)
	for len(coord.Servers()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("rejoin not observed: %d servers", len(coord.Servers()))
		}
		time.Sleep(10 * time.Millisecond)
	}

	table, err := client.CreateTable("t2", 2)
	if err != nil {
		t.Fatalf("create t2: %v", err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := client.Put(table, ycsb.Key(i), []byte("x")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if fresh.Objects() == 0 {
		t.Fatal("rejoined server serves no objects")
	}
}

// TestRunYCSB exercises the exported load driver end to end.
func TestRunYCSB(t *testing.T) {
	_, _, client := bootCluster(t, 3)
	table, err := client.CreateTable("usertable", 3)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	w := ycsb.WorkloadA(200, 32)
	res, err := RunYCSB(client, table, w, LoadOptions{Clients: 4, Ops: 1000, Seed: 42, Load: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d protocol errors", res.Errors)
	}
	if res.Ops != 1000 {
		t.Fatalf("completed %d/1000", res.Ops)
	}
	if res.NotFound != 0 {
		t.Fatalf("%d not-found after full load phase", res.NotFound)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible latencies p50=%v p99=%v", res.P50, res.P99)
	}
}
