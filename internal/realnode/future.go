package realnode

import (
	"context"

	"ramcloud/internal/hashtable"
	"ramcloud/internal/transport"
	"ramcloud/internal/wire"
)

// Future is one asynchronous operation in flight against the real
// cluster. The request is pipelined onto the owner's connection at
// creation (no goroutine per call on a transport.Starter substrate);
// Wait resolves it. The fast path — request lands on the right server
// and succeeds — costs one pipelined RPC; any retryable outcome falls
// back to the synchronous retry loop inside Wait, so a Future has
// exactly the same semantics as its synchronous counterpart.
//
// A bounded window of Futures per goroutine is how the real path keeps
// the wire full: issue D, then reap-and-replace. See RunYCSB's
// Pipeline option.
type Future struct {
	c *Client

	table uint64
	key   []byte
	mk    func() wire.Message

	pc       transport.PendingCall
	fallback chan asyncResult
	ctx      context.Context
	cancel   context.CancelFunc
	startErr error
}

type asyncResult struct {
	resp wire.Message
	err  error
}

// startOp issues one pipelined attempt toward the owner of (table, key).
// Failures to even start (no tablet, dial error) are remembered and
// surfaced as attempt zero when Wait runs the retry loop.
func (c *Client) startOp(table uint64, key []byte, mk func() wire.Message) *Future {
	f := &Future{c: c, table: table, key: key, mk: mk}
	keyHash := hashtable.HashKey(table, key)
	owner, ok := c.locate(table, keyHash)
	if !ok {
		f.startErr = errNoTablet(table)
		return f
	}
	conn, err := c.serverConn(owner)
	if err != nil {
		f.startErr = err
		return f
	}
	f.ctx, f.cancel = context.WithTimeout(context.Background(), c.cfg.rpcTimeout())
	if st, ok := conn.(transport.Starter); ok {
		pc, err := st.Start(f.ctx, mk())
		if err != nil {
			f.cancel()
			f.startErr = err
			return f
		}
		f.pc = pc
		return f
	}
	// Substrate without pipelining: fall back to one goroutine.
	ch := make(chan asyncResult, 1)
	f.fallback = ch
	go func() {
		resp, err := conn.Call(f.ctx, mk())
		ch <- asyncResult{resp, err}
	}()
	return f
}

// resolve blocks for the pipelined attempt's outcome (attempt zero of
// the retry loop).
func (f *Future) resolve() (wire.Message, wire.Status, error) {
	if f.startErr != nil {
		return nil, 0, f.startErr
	}
	var (
		resp wire.Message
		err  error
	)
	if f.pc != nil {
		resp, err = f.pc.Wait(f.ctx)
	} else {
		r := <-f.fallback
		resp, err = r.resp, r.err
	}
	f.cancel()
	return classify(resp, err)
}

// wait drives the shared retry loop with the pipelined attempt as
// attempt zero.
func (f *Future) wait() (wire.Message, error) {
	return f.c.opResume(f.table, f.key, f.mk, f.resolve)
}

// Wait resolves the operation: (value, version, error) for reads,
// (nil, version, error) for writes and deletes. It must be called
// exactly once per Future.
func (f *Future) Wait() ([]byte, uint64, error) {
	resp, err := f.wait()
	if err != nil {
		return nil, 0, err
	}
	switch m := resp.(type) {
	case *wire.ReadResp:
		return m.Value, m.Version, nil
	case *wire.WriteResp:
		return nil, m.Version, nil
	case *wire.DeleteResp:
		return nil, m.Version, nil
	default:
		// classify already rejected anything else as a protocol error.
		return nil, 0, nil
	}
}

// GetAsync issues a pipelined read. Resolve it with Wait.
func (c *Client) GetAsync(table uint64, key []byte) *Future {
	return c.startOp(table, key, func() wire.Message {
		return &wire.ReadReq{Table: table, Key: key}
	})
}

// PutAsync issues a pipelined write. Resolve it with Wait.
func (c *Client) PutAsync(table uint64, key, value []byte) *Future {
	return c.startOp(table, key, func() wire.Message {
		return &wire.WriteReq{Table: table, Key: key, ValueLen: uint32(len(value)), Value: value}
	})
}

// DeleteAsync issues a pipelined delete. Resolve it with Wait.
func (c *Client) DeleteAsync(table uint64, key []byte) *Future {
	return c.startOp(table, key, func() wire.Message {
		return &wire.DeleteReq{Table: table, Key: key}
	})
}
