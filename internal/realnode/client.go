package realnode

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ramcloud/internal/hashtable"
	"ramcloud/internal/transport"
	"ramcloud/internal/wire"
)

// Client errors.
var (
	// ErrNotFound reports a key with no live object (including keys lost
	// to an unrecovered server failure — see the package comment).
	ErrNotFound = errors.New("realnode: key not found")
	// ErrUnavailable reports an operation that exhausted its retries.
	ErrUnavailable = errors.New("realnode: operation failed after retries")
)

// ClientConfig tunes the real client.
type ClientConfig struct {
	// RPCTimeout is the per-attempt deadline. Default 1s.
	RPCTimeout time.Duration
	// MaxRetries is the attempt budget per operation. Default 60.
	MaxRetries int
	// RetryBase/RetryCap bound the capped exponential backoff between
	// attempts. Defaults 5ms / 500ms.
	RetryBase time.Duration
	RetryCap  time.Duration
}

func (c ClientConfig) rpcTimeout() time.Duration {
	if c.RPCTimeout > 0 {
		return c.RPCTimeout
	}
	return time.Second
}

func (c ClientConfig) maxRetries() int {
	if c.MaxRetries > 0 {
		return c.MaxRetries
	}
	return 60
}

func (c ClientConfig) retryBase() time.Duration {
	if c.RetryBase > 0 {
		return c.RetryBase
	}
	return 5 * time.Millisecond
}

func (c ClientConfig) retryCap() time.Duration {
	if c.RetryCap > 0 {
		return c.RetryCap
	}
	return 500 * time.Millisecond
}

// ClientStats counts operation outcomes; all fields are atomic.
type ClientStats struct {
	Ops       atomic.Uint64 // completed (success or ErrNotFound)
	Retries   atomic.Uint64 // extra attempts beyond the first
	Refreshes atomic.Uint64 // tablet-map refreshes
	Failures  atomic.Uint64 // ErrUnavailable results
}

// Client is the real-transport storage client: it caches the tablet map
// and server list from the coordinator, routes by key hash, and retries
// with capped backoff through server failures and ownership moves. Safe
// for concurrent use.
type Client struct {
	tr        transport.Interface
	cfg       ClientConfig
	coordAddr string

	mu      sync.Mutex
	coord   transport.Conn
	conns   map[int32]transport.Conn
	addrs   map[int32]string
	tablets []wire.Tablet

	stats ClientStats
}

// NewClient creates a client for the cluster at coordAddr.
func NewClient(tr transport.Interface, coordAddr string, cfg ClientConfig) *Client {
	return &Client{
		tr:        tr,
		cfg:       cfg,
		coordAddr: coordAddr,
		conns:     make(map[int32]transport.Conn),
		addrs:     make(map[int32]string),
	}
}

// Stats returns the client's counters.
func (c *Client) Stats() *ClientStats { return &c.stats }

// Close releases every connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.coord != nil {
		c.coord.Close()
		c.coord = nil
	}
	for id, conn := range c.conns {
		conn.Close()
		delete(c.conns, id)
	}
}

func (c *Client) coordConn() (transport.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.coord == nil {
		conn, err := c.tr.Dial(c.coordAddr)
		if err != nil {
			return nil, err
		}
		c.coord = conn
	}
	return c.coord, nil
}

func (c *Client) callCoord(req wire.Message) (wire.Message, error) {
	conn, err := c.coordConn()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.rpcTimeout())
	defer cancel()
	return conn.Call(ctx, req)
}

// CreateTable creates (or opens) a table spanning serverSpan masters and
// refreshes the local map.
func (c *Client) CreateTable(name string, serverSpan int) (uint64, error) {
	for attempt := 0; attempt <= c.cfg.maxRetries(); attempt++ {
		resp, err := c.callCoord(&wire.CreateTableReq{Name: name, ServerSpan: uint32(serverSpan)})
		if err == nil {
			m, ok := resp.(*wire.CreateTableResp)
			if ok && m.Status == wire.StatusOK {
				c.Refresh()
				return m.Table, nil
			}
			if !ok {
				return 0, fmt.Errorf("realnode: create table: unexpected %#v", resp)
			}
		}
		time.Sleep(c.backoff(attempt))
	}
	return 0, ErrUnavailable
}

// Refresh re-fetches the tablet map and the server address list.
func (c *Client) Refresh() {
	c.stats.Refreshes.Add(1)
	tm, err1 := c.callCoord(&wire.GetTabletMapReq{})
	sl, err2 := c.callCoord(&wire.ServerListReq{})
	c.mu.Lock()
	defer c.mu.Unlock()
	if err1 == nil {
		if m, ok := tm.(*wire.GetTabletMapResp); ok && m.Status == wire.StatusOK {
			c.tablets = m.Tablets
		}
	}
	if err2 == nil {
		if m, ok := sl.(*wire.ServerListResp); ok && m.Status == wire.StatusOK {
			fresh := make(map[int32]string, len(m.Servers))
			for _, s := range m.Servers {
				fresh[s.ID] = s.Addr
			}
			// Drop connections to servers that left the list or moved.
			for id, conn := range c.conns {
				if addr, ok := fresh[id]; !ok || addr != c.addrs[id] {
					conn.Close()
					delete(c.conns, id)
				}
			}
			c.addrs = fresh
		}
	}
}

// locate returns the owner of (table, keyHash) from the cached map.
func (c *Client) locate(table, keyHash uint64) (int32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.tablets {
		t := &c.tablets[i]
		if t.Table == table && keyHash >= t.StartHash && keyHash <= t.EndHash {
			return t.Master, true
		}
	}
	return 0, false
}

// serverConn returns (dialing lazily) the connection to server id.
func (c *Client) serverConn(id int32) (transport.Conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if conn, ok := c.conns[id]; ok {
		return conn, nil
	}
	addr, ok := c.addrs[id]
	if !ok {
		return nil, fmt.Errorf("realnode: no address for server %d", id)
	}
	conn, err := c.tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	c.conns[id] = conn
	return conn, nil
}

func errNoTablet(table uint64) error {
	return fmt.Errorf("realnode: no tablet for table %d", table)
}

// backoff returns the pause before attempt n+1 (capped exponential).
func (c *Client) backoff(n int) time.Duration {
	d := c.cfg.retryBase() << n
	if limit := c.cfg.retryCap(); d > limit || d <= 0 {
		d = limit
	}
	return d
}

// classify maps a data-plane response (or transport error) onto the
// (response, status, error) triple the retry loop interprets.
func classify(resp wire.Message, err error) (wire.Message, wire.Status, error) {
	if err != nil {
		return nil, 0, err
	}
	switch m := resp.(type) {
	case *wire.ReadResp:
		return m, m.Status, nil
	case *wire.WriteResp:
		return m, m.Status, nil
	case *wire.DeleteResp:
		return m, m.Status, nil
	default:
		return nil, 0, fmt.Errorf("realnode: unexpected response %#v", resp)
	}
}

// call routes one data-plane request to the owner of (table, key) and
// returns the response status plus the response itself. It performs ONE
// attempt; op drives the retry loop.
func (c *Client) call(table uint64, key []byte, mk func() wire.Message) (wire.Message, wire.Status, error) {
	keyHash := hashtable.HashKey(table, key)
	owner, ok := c.locate(table, keyHash)
	if !ok {
		return nil, 0, errNoTablet(table)
	}
	conn, err := c.serverConn(owner)
	if err != nil {
		return nil, 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.rpcTimeout())
	defer cancel()
	resp, err := conn.Call(ctx, mk())
	return classify(resp, err)
}

// op runs the shared retry loop: transport errors and retryable statuses
// refresh the map and back off; OK and UnknownKey terminate. The
// semantics mirror the simulated client's operation core.
func (c *Client) op(table uint64, key []byte, mk func() wire.Message) (wire.Message, error) {
	return c.opResume(table, key, mk, nil)
}

// opResume is op with a pluggable first attempt: an async operation's
// already-issued RPC resolves as attempt zero (via first), and only the
// uncommon retry path falls back to synchronous attempts. first may be
// nil for a fully synchronous operation.
func (c *Client) opResume(table uint64, key []byte, mk func() wire.Message, first func() (wire.Message, wire.Status, error)) (wire.Message, error) {
	var lastErr error
	for attempt := 0; attempt <= c.cfg.maxRetries(); attempt++ {
		if attempt > 0 {
			c.stats.Retries.Add(1)
			time.Sleep(c.backoff(attempt - 1))
		}
		var (
			resp   wire.Message
			status wire.Status
			err    error
		)
		if attempt == 0 && first != nil {
			resp, status, err = first()
		} else {
			resp, status, err = c.call(table, key, mk)
		}
		if err != nil {
			// Connection lost, dial refused, deadline: the server may be
			// gone — refresh routes and retry.
			lastErr = err
			c.Refresh()
			continue
		}
		switch status {
		case wire.StatusOK:
			c.stats.Ops.Add(1)
			return resp, nil
		case wire.StatusUnknownKey:
			c.stats.Ops.Add(1)
			return resp, ErrNotFound
		case wire.StatusWrongServer:
			lastErr = fmt.Errorf("realnode: wrong server")
			c.Refresh()
		case wire.StatusRetry, wire.StatusRecovering:
			lastErr = fmt.Errorf("realnode: server busy")
		default:
			lastErr = fmt.Errorf("realnode: status %v", status)
			c.Refresh()
		}
	}
	c.stats.Failures.Add(1)
	if lastErr != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, lastErr)
	}
	return nil, ErrUnavailable
}

// Get fetches a value.
func (c *Client) Get(table uint64, key []byte) ([]byte, uint64, error) {
	resp, err := c.op(table, key, func() wire.Message {
		return &wire.ReadReq{Table: table, Key: key}
	})
	if err != nil {
		return nil, 0, err
	}
	m := resp.(*wire.ReadResp)
	return m.Value, m.Version, nil
}

// Put stores value under key. Real transports carry real bytes: value
// must be the actual payload, not a declared length.
func (c *Client) Put(table uint64, key, value []byte) (uint64, error) {
	resp, err := c.op(table, key, func() wire.Message {
		return &wire.WriteReq{Table: table, Key: key, ValueLen: uint32(len(value)), Value: value}
	})
	if err != nil {
		return 0, err
	}
	return resp.(*wire.WriteResp).Version, nil
}

// Delete removes key. Deleting an absent key returns ErrNotFound.
func (c *Client) Delete(table uint64, key []byte) error {
	_, err := c.op(table, key, func() wire.Message {
		return &wire.DeleteReq{Table: table, Key: key}
	})
	return err
}
