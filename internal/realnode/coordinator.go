// Package realnode hosts the storage system on a real transport: a
// coordinator, masters and a client that speak the same wire protocol as
// the simulated cluster but run as ordinary goroutine-based services over
// transport.Interface (normally transport.TCP), so the system boots as a
// multi-process localhost cluster via cmd/rccoord, cmd/rcserver and
// cmd/rcclient.
//
// The real path deliberately carries no replication or crash recovery:
// when the coordinator declares a master dead it reassigns the dead
// server's tablets to survivors and the objects stored there are LOST
// (reads return not-found until rewritten). This keeps the real cluster a
// transport/protocol exercise; durability modeling stays in the simulated
// path where the paper's figures live.
//
// Like internal/transport, this package legitimately uses wall-clock
// time, bare goroutines and map iteration; rcvet's determinism analyzers
// exempt it by package scope (internal/analysis/scope).
package realnode

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ramcloud/internal/transport"
	"ramcloud/internal/wire"
)

// CoordConfig tunes the real coordinator.
type CoordConfig struct {
	// PingInterval is the liveness probe period. Default 500ms.
	PingInterval time.Duration
	// MissThreshold is how many consecutive failed pings declare a
	// server dead. Default 3.
	MissThreshold int
	// RPCTimeout bounds each control-plane call. Default 1s.
	RPCTimeout time.Duration
}

func (c CoordConfig) pingInterval() time.Duration {
	if c.PingInterval > 0 {
		return c.PingInterval
	}
	return 500 * time.Millisecond
}

func (c CoordConfig) missThreshold() int {
	if c.MissThreshold > 0 {
		return c.MissThreshold
	}
	return 3
}

func (c CoordConfig) rpcTimeout() time.Duration {
	if c.RPCTimeout > 0 {
		return c.RPCTimeout
	}
	return time.Second
}

type coordServer struct {
	id     int32
	addr   string
	alive  bool
	missed int
	conn   transport.Conn
}

// Coordinator is the real-transport cluster coordinator: enlistment,
// table creation with hash-range splitting, the tablet map, and
// ping-based failure detection with tablet reassignment.
type Coordinator struct {
	tr  transport.Interface
	cfg CoordConfig
	ln  transport.Listener

	mu          sync.Mutex
	servers     map[int32]*coordServer
	byAddr      map[string]int32
	tables      map[string]uint64
	tablets     map[uint64][]wire.Tablet
	nextID      int32
	nextTableID uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator creates a coordinator (not yet listening).
func NewCoordinator(tr transport.Interface, cfg CoordConfig) *Coordinator {
	return &Coordinator{
		tr:      tr,
		cfg:     cfg,
		servers: make(map[int32]*coordServer),
		byAddr:  make(map[string]int32),
		tables:  make(map[string]uint64),
		tablets: make(map[uint64][]wire.Tablet),
		stop:    make(chan struct{}),
	}
}

// Start binds addr and begins serving and probing.
func (c *Coordinator) Start(addr string) error {
	ln, err := c.tr.Listen(addr, transport.HandlerFunc(c.serve))
	if err != nil {
		return err
	}
	c.ln = ln
	c.wg.Add(1)
	go c.pinger()
	return nil
}

// Addr returns the bound listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr() }

// Stop shuts the coordinator down.
func (c *Coordinator) Stop() {
	close(c.stop)
	c.ln.Close()
	c.wg.Wait()
	c.mu.Lock()
	for _, s := range c.servers {
		if s.conn != nil {
			s.conn.Close()
		}
	}
	c.mu.Unlock()
}

func (c *Coordinator) serve(remote string, msg wire.Message) wire.Message {
	switch m := msg.(type) {
	case *wire.EnlistAddrReq:
		return c.serveEnlist(m)
	case *wire.ServerListReq:
		return c.serveServerList()
	case *wire.GetTabletMapReq:
		return c.serveTabletMap()
	case *wire.CreateTableReq:
		return c.serveCreateTable(m)
	case *wire.DropTableReq:
		return c.serveDropTable(m)
	case *wire.PingReq:
		return &wire.PingResp{Seq: m.Seq}
	default:
		return nil // unknown request: drop, peer times out
	}
}

// serveEnlist registers (or re-registers) a master by its dial address.
// An address that re-enlists keeps its server id, so a restarted process
// is the same logical server with an empty store.
func (c *Coordinator) serveEnlist(m *wire.EnlistAddrReq) wire.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.byAddr[m.Addr]
	if !ok {
		c.nextID++
		id = c.nextID
		c.byAddr[m.Addr] = id
		c.servers[id] = &coordServer{id: id, addr: m.Addr}
	}
	s := c.servers[id]
	s.alive = true
	s.missed = 0
	return &wire.EnlistAddrResp{Status: wire.StatusOK, ServerID: id}
}

func (c *Coordinator) serveServerList() wire.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp := &wire.ServerListResp{Status: wire.StatusOK}
	for id, s := range c.servers {
		if s.alive {
			resp.Servers = append(resp.Servers, wire.ServerAddr{ID: id, Addr: s.addr})
		}
	}
	sort.Slice(resp.Servers, func(i, j int) bool { return resp.Servers[i].ID < resp.Servers[j].ID })
	return resp
}

func (c *Coordinator) serveTabletMap() wire.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp := &wire.GetTabletMapResp{Status: wire.StatusOK}
	ids := make([]uint64, 0, len(c.tablets))
	for id := range c.tablets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		resp.Tablets = append(resp.Tablets, c.tablets[id]...)
	}
	return resp
}

// serveCreateTable splits the hash space into span uniform ranges and
// assigns them round-robin over alive servers — the same layout the
// simulated coordinator produces — then pushes each owner's full
// assignment before replying, so a client that reads the map immediately
// afterward routes to servers that already own their ranges.
func (c *Coordinator) serveCreateTable(m *wire.CreateTableReq) wire.Message {
	c.mu.Lock()
	if id, exists := c.tables[m.Name]; exists {
		c.mu.Unlock()
		return &wire.CreateTableResp{Status: wire.StatusOK, Table: id}
	}
	alive := c.aliveLocked()
	if len(alive) == 0 {
		c.mu.Unlock()
		return &wire.CreateTableResp{Status: wire.StatusRetry}
	}
	span := int(m.ServerSpan)
	if span <= 0 || span > len(alive) {
		span = len(alive)
	}
	c.nextTableID++
	id := c.nextTableID
	c.tables[m.Name] = id
	var tablets []wire.Tablet
	step := ^uint64(0)/uint64(span) + 1
	var start uint64
	for i := 0; i < span; i++ {
		end := start + step - 1
		if i == span-1 || end < start {
			end = ^uint64(0)
		}
		owner := alive[i%len(alive)]
		tablets = append(tablets, wire.Tablet{Table: id, StartHash: start, EndHash: end, Master: owner})
		if end == ^uint64(0) {
			break
		}
		start = end + 1
	}
	c.tablets[id] = tablets
	owners := ownersOf(tablets)
	c.mu.Unlock()

	for _, owner := range owners {
		c.pushAssignment(owner)
	}
	return &wire.CreateTableResp{Status: wire.StatusOK, Table: id}
}

func (c *Coordinator) serveDropTable(m *wire.DropTableReq) wire.Message {
	c.mu.Lock()
	id, ok := c.tables[m.Name]
	if !ok {
		c.mu.Unlock()
		return &wire.DropTableResp{Status: wire.StatusUnknownTable}
	}
	delete(c.tables, m.Name)
	delete(c.tablets, id)
	owners := c.allOwnersLocked()
	c.mu.Unlock()
	for _, owner := range owners {
		c.pushAssignment(owner)
	}
	return &wire.DropTableResp{Status: wire.StatusOK}
}

func (c *Coordinator) aliveLocked() []int32 {
	var ids []int32
	for id, s := range c.servers {
		if s.alive {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func ownersOf(tablets []wire.Tablet) []int32 {
	seen := make(map[int32]bool)
	var out []int32
	for _, t := range tablets {
		if !seen[t.Master] {
			seen[t.Master] = true
			out = append(out, t.Master)
		}
	}
	return out
}

func (c *Coordinator) allOwnersLocked() []int32 {
	seen := make(map[int32]bool)
	var out []int32
	for _, tablets := range c.tablets {
		for _, t := range tablets {
			if !seen[t.Master] {
				seen[t.Master] = true
				out = append(out, t.Master)
			}
		}
	}
	return out
}

// pushAssignment sends a server its complete current ownership
// (replace-all semantics, so a duplicate or stale push is idempotent).
func (c *Coordinator) pushAssignment(owner int32) {
	c.mu.Lock()
	s, ok := c.servers[owner]
	if !ok || !s.alive {
		c.mu.Unlock()
		return
	}
	req := &wire.AssignTabletsReq{}
	for _, tablets := range c.tablets {
		for _, t := range tablets {
			if t.Master == owner {
				req.Tablets = append(req.Tablets, t)
			}
		}
	}
	sort.Slice(req.Tablets, func(i, j int) bool {
		a, b := req.Tablets[i], req.Tablets[j]
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		return a.StartHash < b.StartHash
	})
	conn, err := c.connLocked(s)
	c.mu.Unlock()
	if err != nil {
		return // pinger will retry via miss accounting
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.rpcTimeout())
	defer cancel()
	_, _ = conn.Call(ctx, req) // best-effort: a miss shows up as WrongServer and a later re-push
}

// connLocked returns (dialing lazily) the coordinator's connection to s.
func (c *Coordinator) connLocked(s *coordServer) (transport.Conn, error) {
	if s.conn != nil {
		return s.conn, nil
	}
	conn, err := c.tr.Dial(s.addr)
	if err != nil {
		return nil, err
	}
	s.conn = conn
	return conn, nil
}

// pinger probes every alive server each interval; MissThreshold
// consecutive failures declare it dead and trigger reassignment.
func (c *Coordinator) pinger() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.pingInterval())
	defer ticker.Stop()
	var seq uint64
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		seq++
		c.mu.Lock()
		targets := make([]*coordServer, 0, len(c.servers))
		for _, s := range c.servers {
			if s.alive {
				targets = append(targets, s)
			}
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i].id < targets[j].id })
		c.mu.Unlock()

		for _, s := range targets {
			c.mu.Lock()
			conn, err := c.connLocked(s)
			c.mu.Unlock()
			var dead bool
			if err != nil {
				dead = c.miss(s)
			} else {
				ctx, cancel := context.WithTimeout(context.Background(), c.cfg.pingInterval())
				_, err = conn.Call(ctx, &wire.PingReq{Seq: seq})
				cancel()
				if err != nil {
					dead = c.miss(s)
				} else {
					c.mu.Lock()
					s.missed = 0
					c.mu.Unlock()
				}
			}
			if dead {
				c.declareDead(s.id)
			}
		}
	}
}

// miss records one failed probe; true once the threshold is crossed.
func (c *Coordinator) miss(s *coordServer) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.missed++
	return s.missed >= c.cfg.missThreshold() && s.alive
}

// declareDead reassigns every tablet owned by id to the surviving
// servers round-robin and pushes the updated ownership. The dead
// server's objects are gone: this is failover without recovery, by
// design (see the package comment).
func (c *Coordinator) declareDead(id int32) {
	c.mu.Lock()
	s, ok := c.servers[id]
	if !ok || !s.alive {
		c.mu.Unlock()
		return
	}
	s.alive = false
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	alive := c.aliveLocked()
	touched := make(map[int32]bool)
	if len(alive) > 0 {
		i := 0
		tids := make([]uint64, 0, len(c.tablets))
		for tid := range c.tablets {
			tids = append(tids, tid)
		}
		sort.Slice(tids, func(a, b int) bool { return tids[a] < tids[b] })
		for _, tid := range tids {
			tablets := c.tablets[tid]
			for j := range tablets {
				if tablets[j].Master == id {
					tablets[j].Master = alive[i%len(alive)]
					touched[tablets[j].Master] = true
					i++
				}
			}
		}
	}
	owners := make([]int32, 0, len(touched))
	for o := range touched {
		owners = append(owners, o)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	c.mu.Unlock()

	for _, o := range owners {
		c.pushAssignment(o)
	}
}

// Servers returns the ids of currently-alive servers (for tests and the
// rccoord status loop).
func (c *Coordinator) Servers() []int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aliveLocked()
}

// String summarizes the coordinator state for logs.
func (c *Coordinator) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("coordinator{servers=%d tables=%d}", len(c.aliveLocked()), len(c.tables))
}
