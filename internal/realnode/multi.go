package realnode

import (
	"context"
	"time"

	"ramcloud/internal/hashtable"
	"ramcloud/internal/transport"
	"ramcloud/internal/wire"
)

// MultiResult is one item's outcome in a real-path MultiRead or
// MultiWrite. Err is nil on success, ErrNotFound for a read of an
// absent key, or ErrUnavailable when the item exhausted its retries.
type MultiResult struct {
	Value   []byte // reads only
	Version uint64
	Err     error
}

// multiBatch is one per-owner RPC in flight during a multi-op round.
type multiBatch struct {
	idxs []int // indices (into the caller's item slice) this RPC covers
	pc   transport.PendingCall
	ch   chan asyncResult // fallback when the conn lacks Starter
	ctx  context.Context
	stop context.CancelFunc
}

// MultiRead fetches a batch of keys with at most one RPC per owning
// master per round, the real-path counterpart of the simulated client's
// MultiRead (PR 2). Per-owner RPCs are pipelined concurrently; items
// that come back WrongServer (or whose owner died mid-batch) are
// re-grouped against a refreshed tablet map and retried with backoff,
// so a partial failure costs only the affected items. The result slice
// is positional: result i answers keys[i].
func (c *Client) MultiRead(table uint64, keys [][]byte) []MultiResult {
	res := make([]MultiResult, len(keys))
	c.multiOp(len(keys), func(idxs []int) wire.Message {
		items := make([]wire.MultiReadItem, len(idxs))
		for j, i := range idxs {
			items[j] = wire.MultiReadItem{Table: table, Key: keys[i]}
		}
		return &wire.MultiReadReq{Items: items}
	}, func(i int) uint64 {
		return hashtable.HashKey(table, keys[i])
	}, table, func(resp wire.Message, idxs []int, keep func(int)) bool {
		m, ok := resp.(*wire.MultiReadResp)
		if !ok || len(m.Items) != len(idxs) {
			return false
		}
		for j, i := range idxs {
			it := &m.Items[j]
			switch it.Status {
			case wire.StatusOK:
				res[i] = MultiResult{Value: it.Value, Version: it.Version}
				c.stats.Ops.Add(1)
			case wire.StatusUnknownKey:
				res[i] = MultiResult{Err: ErrNotFound}
				c.stats.Ops.Add(1)
			default:
				keep(i)
			}
		}
		return true
	}, res)
	return res
}

// MultiWrite stores a batch of key/value pairs with at most one RPC per
// owning master per round. values must be positional with keys. The
// server appends each batch under one log-head acquisition, which is
// where batching wins back the per-op dispatch cost.
func (c *Client) MultiWrite(table uint64, keys, values [][]byte) []MultiResult {
	res := make([]MultiResult, len(keys))
	c.multiOp(len(keys), func(idxs []int) wire.Message {
		items := make([]wire.MultiWriteItem, len(idxs))
		for j, i := range idxs {
			items[j] = wire.MultiWriteItem{
				Table:    table,
				Key:      keys[i],
				ValueLen: uint32(len(values[i])),
				Value:    values[i],
			}
		}
		return &wire.MultiWriteReq{Items: items}
	}, func(i int) uint64 {
		return hashtable.HashKey(table, keys[i])
	}, table, func(resp wire.Message, idxs []int, keep func(int)) bool {
		m, ok := resp.(*wire.MultiWriteResp)
		if !ok || len(m.Items) != len(idxs) {
			return false
		}
		for j, i := range idxs {
			it := &m.Items[j]
			switch it.Status {
			case wire.StatusOK:
				res[i] = MultiResult{Version: it.Version}
				c.stats.Ops.Add(1)
			case wire.StatusUnknownKey:
				res[i] = MultiResult{Err: ErrNotFound}
				c.stats.Ops.Add(1)
			default:
				keep(i)
			}
		}
		return true
	}, res)
	return res
}

// multiOp drives the shared multi-op retry loop: group the pending
// items by owning master, issue one pipelined RPC per owner, settle
// per-item outcomes, and retry the survivors against a refreshed map
// with capped backoff. Items still unsettled after the retry budget are
// marked ErrUnavailable in res.
func (c *Client) multiOp(
	n int,
	build func(idxs []int) wire.Message,
	hash func(i int) uint64,
	table uint64,
	settle func(resp wire.Message, idxs []int, keep func(int)) bool,
	res []MultiResult,
) {
	pending := make([]int, n)
	for i := range pending {
		pending[i] = i
	}
	for attempt := 0; attempt <= c.cfg.maxRetries() && len(pending) > 0; attempt++ {
		if attempt > 0 {
			c.stats.Retries.Add(uint64(len(pending)))
			time.Sleep(c.backoff(attempt - 1))
		}
		next := pending[:0]
		keep := func(i int) { next = append(next, i) }

		// Group pending items by owner. Unroutable items wait for a
		// fresh tablet map.
		groups := make(map[int32][]int)
		stale := false
		for _, i := range pending {
			owner, ok := c.locate(table, hash(i))
			if !ok {
				stale = true
				keep(i)
				continue
			}
			groups[owner] = append(groups[owner], i)
		}

		// One RPC per owner, all in flight together.
		batches := make([]multiBatch, 0, len(groups))
		for owner, idxs := range groups {
			b, ok := c.startBatch(owner, build(idxs), idxs)
			if !ok {
				stale = true
				for _, i := range idxs {
					keep(i)
				}
				continue
			}
			batches = append(batches, b)
		}
		for _, b := range batches {
			var resp wire.Message
			var err error
			if b.pc != nil {
				resp, err = b.pc.Wait(b.ctx)
			} else {
				r := <-b.ch
				resp, err = r.resp, r.err
			}
			b.stop()
			if err != nil || !settle(resp, b.idxs, keep) {
				// Connection lost, deadline, or a malformed response:
				// every item in the batch retries.
				stale = true
				for _, i := range b.idxs {
					keep(i)
				}
			}
		}
		if stale {
			c.Refresh()
		}
		pending = next
	}
	for _, i := range pending {
		res[i] = MultiResult{Err: ErrUnavailable}
		c.stats.Failures.Add(1)
	}
}

// startBatch issues one multi-op RPC toward owner, pipelined when the
// substrate allows it.
func (c *Client) startBatch(owner int32, req wire.Message, idxs []int) (multiBatch, bool) {
	conn, err := c.serverConn(owner)
	if err != nil {
		return multiBatch{}, false
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.rpcTimeout())
	b := multiBatch{idxs: idxs, ctx: ctx, stop: cancel}
	if st, ok := conn.(transport.Starter); ok {
		pc, err := st.Start(ctx, req)
		if err != nil {
			cancel()
			return multiBatch{}, false
		}
		b.pc = pc
		return b, true
	}
	ch := make(chan asyncResult, 1)
	b.ch = ch
	go func() {
		resp, err := conn.Call(ctx, req)
		ch <- asyncResult{resp, err}
	}()
	return b, true
}
