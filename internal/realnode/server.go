package realnode

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ramcloud/internal/hashtable"
	"ramcloud/internal/logstore"
	"ramcloud/internal/transport"
	"ramcloud/internal/wire"
)

// ServerConfig tunes a real master.
type ServerConfig struct {
	// MemoryBytes is advertised at enlistment. Default 1 GiB.
	MemoryBytes int64
	// EnlistTimeout bounds one enlist attempt. Default 1s.
	EnlistTimeout time.Duration
	// EnlistBackoff paces enlist retries. Default 200ms.
	EnlistBackoff time.Duration
}

func (c ServerConfig) memoryBytes() int64 {
	if c.MemoryBytes > 0 {
		return c.MemoryBytes
	}
	return 1 << 30
}

func (c ServerConfig) enlistTimeout() time.Duration {
	if c.EnlistTimeout > 0 {
		return c.EnlistTimeout
	}
	return time.Second
}

func (c ServerConfig) enlistBackoff() time.Duration {
	if c.EnlistBackoff > 0 {
		return c.EnlistBackoff
	}
	return 200 * time.Millisecond
}

// Server is a real-transport master: the same log-structured store the
// simulated master uses (hashtable index over an append-only log), but
// serialized behind a sync mutex instead of sim time, and carrying real
// value bytes — virtual (length-only) payloads cannot cross a real wire.
type Server struct {
	tr        transport.Interface
	cfg       ServerConfig
	coordAddr string

	ln transport.Listener
	id int32

	mu          sync.Mutex
	ht          *hashtable.Table
	log         *logstore.Log
	nextVersion uint64
	tablets     []wire.Tablet

	readsOK, writesOK, deletesOK uint64
	wrongServer                  uint64
}

// NewServer creates a master (not yet listening or enlisted).
func NewServer(tr transport.Interface, coordAddr string, cfg ServerConfig) *Server {
	return &Server{
		tr:        tr,
		cfg:       cfg,
		coordAddr: coordAddr,
		ht:        hashtable.New(1 << 12),
		log:       logstore.NewLog(logstore.DefaultConfig()),
	}
}

// Start binds addr and enlists with the coordinator, retrying with
// backoff until the coordinator answers (so boot order doesn't matter).
func (s *Server) Start(addr string) error {
	ln, err := s.tr.Listen(addr, transport.HandlerFunc(s.serve))
	if err != nil {
		return err
	}
	s.ln = ln
	conn, err := s.tr.Dial(s.coordAddr)
	if err != nil {
		ln.Close()
		return err
	}
	defer conn.Close()
	req := &wire.EnlistAddrReq{Addr: ln.Addr(), MemoryBytes: s.cfg.memoryBytes()}
	for attempt := 0; ; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.enlistTimeout())
		resp, err := conn.Call(ctx, req)
		cancel()
		if err == nil {
			m, ok := resp.(*wire.EnlistAddrResp)
			if !ok || m.Status != wire.StatusOK {
				ln.Close()
				return fmt.Errorf("realnode: enlist rejected: %#v", resp)
			}
			s.id = m.ServerID
			return nil
		}
		if attempt >= 50 {
			ln.Close()
			return fmt.Errorf("realnode: enlist with %s: %w", s.coordAddr, err)
		}
		time.Sleep(s.cfg.enlistBackoff())
	}
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr() }

// ID returns the coordinator-assigned server id (valid after Start).
func (s *Server) ID() int32 { return s.id }

// Stop severs the listener; in-flight peers see connection loss. The
// store is discarded with the process — there is no recovery path.
func (s *Server) Stop() { s.ln.Close() }

func (s *Server) serve(remote string, msg wire.Message) wire.Message {
	switch m := msg.(type) {
	case *wire.ReadReq:
		return s.serveRead(m)
	case *wire.WriteReq:
		return s.serveWrite(m)
	case *wire.DeleteReq:
		return s.serveDelete(m)
	case *wire.MultiReadReq:
		return s.serveMultiRead(m)
	case *wire.MultiWriteReq:
		return s.serveMultiWrite(m)
	case *wire.AssignTabletsReq:
		return s.serveAssign(m)
	case *wire.PingReq:
		return &wire.PingResp{Seq: m.Seq}
	default:
		return nil // unknown request: drop, peer times out
	}
}

// serveAssign installs the replace-all ownership pushed by the
// coordinator.
func (s *Server) serveAssign(m *wire.AssignTabletsReq) wire.Message {
	s.mu.Lock()
	s.tablets = append([]wire.Tablet(nil), m.Tablets...)
	s.mu.Unlock()
	return &wire.AssignTabletsResp{Status: wire.StatusOK}
}

func (s *Server) ownsLocked(table, keyHash uint64) bool {
	for _, t := range s.tablets {
		if t.Table == table && keyHash >= t.StartHash && keyHash <= t.EndHash {
			return true
		}
	}
	return false
}

// keyEq matches the hash-table candidate whose log entry carries exactly
// (table, key). Caller holds s.mu.
func (s *Server) keyEq(table uint64, key []byte) hashtable.EqualFunc {
	return func(packed uint64) bool {
		e, err := s.log.Get(logstore.UnpackRef(packed))
		if err != nil {
			return false
		}
		return e.Table == table && string(e.Key) == string(key)
	}
}

// indexEntry mirrors the simulated master: update the index, mark the
// displaced version dead. Caller holds s.mu.
func (s *Server) indexEntry(entry logstore.Entry, ref logstore.Ref) {
	eq := s.keyEq(entry.Table, entry.Key)
	if entry.Type == logstore.EntryTombstone {
		if old, ok := s.ht.Delete(entry.KeyHash, eq); ok {
			_ = s.log.MarkDead(logstore.UnpackRef(old))
		}
		return
	}
	if old, ok := s.ht.Replace(entry.KeyHash, eq, ref.Packed()); ok {
		_ = s.log.MarkDead(logstore.UnpackRef(old))
	} else {
		s.ht.Insert(entry.KeyHash, ref.Packed())
	}
}

// appendLocked rolls the head if needed and appends. Caller holds s.mu.
func (s *Server) appendLocked(entry logstore.Entry) (logstore.Ref, error) {
	if s.log.NeedsRoll(entry.StorageSize()) {
		s.log.Roll()
	}
	return s.log.Append(entry)
}

func (s *Server) serveRead(m *wire.ReadReq) wire.Message {
	keyHash := hashtable.HashKey(m.Table, m.Key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ownsLocked(m.Table, keyHash) {
		s.wrongServer++
		return &wire.ReadResp{Status: wire.StatusWrongServer}
	}
	packed, ok := s.ht.Lookup(keyHash, s.keyEq(m.Table, m.Key))
	if !ok {
		return &wire.ReadResp{Status: wire.StatusUnknownKey}
	}
	e, err := s.log.Get(logstore.UnpackRef(packed))
	if err != nil || e.Type != logstore.EntryObject {
		return &wire.ReadResp{Status: wire.StatusUnknownKey}
	}
	s.readsOK++
	return &wire.ReadResp{
		Status:   wire.StatusOK,
		Version:  e.Version,
		ValueLen: e.ValueLen,
		Value:    append([]byte(nil), e.Value...),
	}
}

func (s *Server) serveWrite(m *wire.WriteReq) wire.Message {
	keyHash := hashtable.HashKey(m.Table, m.Key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ownsLocked(m.Table, keyHash) {
		s.wrongServer++
		return &wire.WriteResp{Status: wire.StatusWrongServer}
	}
	s.nextVersion++
	entry := logstore.Entry{
		Type:     logstore.EntryObject,
		Table:    m.Table,
		KeyHash:  keyHash,
		Key:      append([]byte(nil), m.Key...),
		ValueLen: m.ValueLen,
		Value:    append([]byte(nil), m.Value...),
		Version:  s.nextVersion,
	}
	ref, err := s.appendLocked(entry)
	if err != nil {
		return &wire.WriteResp{Status: wire.StatusError}
	}
	s.indexEntry(entry, ref)
	s.writesOK++
	return &wire.WriteResp{Status: wire.StatusOK, Version: entry.Version}
}

func (s *Server) serveDelete(m *wire.DeleteReq) wire.Message {
	keyHash := hashtable.HashKey(m.Table, m.Key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ownsLocked(m.Table, keyHash) {
		s.wrongServer++
		return &wire.DeleteResp{Status: wire.StatusWrongServer}
	}
	eq := s.keyEq(m.Table, m.Key)
	packed, ok := s.ht.Lookup(keyHash, eq)
	if !ok {
		return &wire.DeleteResp{Status: wire.StatusUnknownKey}
	}
	oldRef := logstore.UnpackRef(packed)
	s.nextVersion++
	tomb := logstore.Entry{
		Type:          logstore.EntryTombstone,
		Table:         m.Table,
		KeyHash:       keyHash,
		Key:           append([]byte(nil), m.Key...),
		Version:       s.nextVersion,
		ObjectSegment: oldRef.Segment,
	}
	ref, err := s.appendLocked(tomb)
	if err != nil {
		return &wire.DeleteResp{Status: wire.StatusError}
	}
	s.indexEntry(tomb, ref)
	s.deletesOK++
	return &wire.DeleteResp{Status: wire.StatusOK, Version: tomb.Version}
}

func (s *Server) serveMultiRead(m *wire.MultiReadReq) wire.Message {
	items := make([]wire.MultiReadResult, len(m.Items))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range m.Items {
		it := &m.Items[i]
		keyHash := hashtable.HashKey(it.Table, it.Key)
		if !s.ownsLocked(it.Table, keyHash) {
			s.wrongServer++
			items[i].Status = wire.StatusWrongServer
			continue
		}
		packed, ok := s.ht.Lookup(keyHash, s.keyEq(it.Table, it.Key))
		if !ok {
			items[i].Status = wire.StatusUnknownKey
			continue
		}
		e, err := s.log.Get(logstore.UnpackRef(packed))
		if err != nil || e.Type != logstore.EntryObject {
			items[i].Status = wire.StatusUnknownKey
			continue
		}
		s.readsOK++
		items[i] = wire.MultiReadResult{
			Status:   wire.StatusOK,
			Version:  e.Version,
			ValueLen: e.ValueLen,
			Value:    append([]byte(nil), e.Value...),
		}
	}
	return &wire.MultiReadResp{Status: wire.StatusOK, Items: items}
}

func (s *Server) serveMultiWrite(m *wire.MultiWriteReq) wire.Message {
	items := make([]wire.MultiWriteResult, len(m.Items))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range m.Items {
		it := &m.Items[i]
		keyHash := hashtable.HashKey(it.Table, it.Key)
		if !s.ownsLocked(it.Table, keyHash) {
			s.wrongServer++
			items[i].Status = wire.StatusWrongServer
			continue
		}
		s.nextVersion++
		entry := logstore.Entry{
			Type:     logstore.EntryObject,
			Table:    it.Table,
			KeyHash:  keyHash,
			Key:      append([]byte(nil), it.Key...),
			ValueLen: it.ValueLen,
			Value:    append([]byte(nil), it.Value...),
			Version:  s.nextVersion,
		}
		ref, err := s.appendLocked(entry)
		if err != nil {
			items[i].Status = wire.StatusError
			continue
		}
		s.indexEntry(entry, ref)
		s.writesOK++
		items[i] = wire.MultiWriteResult{Status: wire.StatusOK, Version: entry.Version}
	}
	return &wire.MultiWriteResp{Status: wire.StatusOK, Items: items}
}

// Counters reports (reads, writes, deletes, wrong-server) served OK.
func (s *Server) Counters() (reads, writes, deletes, wrongServer uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readsOK, s.writesOK, s.deletesOK, s.wrongServer
}

// Objects returns the number of live objects indexed.
func (s *Server) Objects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ht.Len()
}
