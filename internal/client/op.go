package client

import (
	"ramcloud/internal/hashtable"
	"ramcloud/internal/metrics"
	"ramcloud/internal/rpc"
	"ramcloud/internal/sim"
	"ramcloud/internal/wire"
)

// This file implements the client's single operation-execution core. One
// retry loop (Op.Wait) serves Read, Write and Delete — synchronous and
// asynchronous alike — replacing the three copy-pasted locate/backoff/retry
// loops the client used to carry. The synchronous methods are just
// startOp + Wait back to back, so their event sequence (and therefore every
// recorded latency and experiment rendering) is unchanged.

// opKind selects the operation an Op executes.
type opKind uint8

const (
	opRead opKind = iota + 1
	opWrite
	opDelete
)

// Op is one asynchronous operation future. It is created by
// ReadAsync/WriteAsync/DeleteAsync (or internally by the synchronous
// methods); Wait(p) blocks until the operation completes, driving retries
// through recoveries and server changes exactly like the synchronous path.
//
// The first RPC attempt is issued at creation time when the route is
// already known, so the wire time of an async op overlaps whatever the
// caller does between issue and Wait — that overlap is the pipelining win.
type Op struct {
	c       *Client
	kind    opKind
	table   uint64
	key     []byte
	keyHash uint64

	valueLen uint32
	value    []byte

	start sim.Time

	call     rpc.Call // valid while inflight
	inflight bool

	finished  bool
	resultLen uint32
	resultVal []byte
	err       error
}

// startOp allocates an Op and initializes it; the synchronous methods use
// initOp directly on a stack value instead, keeping the hot path free of
// the extra allocation.
func (c *Client) startOp(p *sim.Proc, kind opKind, table uint64, key []byte, valueLen uint32, value []byte, overhead sim.Duration) *Op {
	o := &Op{}
	c.initOp(p, o, kind, table, key, valueLen, value, overhead)
	return o
}

// initOp pays the client-side per-op overhead, stamps the operation's
// start time and issues the first RPC attempt if the tablet map already
// routes the key. Retries and unroutable keys are handled in Wait.
func (c *Client) initOp(p *sim.Proc, o *Op, kind opKind, table uint64, key []byte, valueLen uint32, value []byte, overhead sim.Duration) {
	if overhead > 0 {
		p.Sleep(overhead)
	}
	*o = Op{
		c:        c,
		kind:     kind,
		table:    table,
		key:      key,
		keyHash:  hashtable.HashKey(table, key),
		valueLen: valueLen,
		value:    value,
		start:    p.Now(),
	}
	if master, recovering, found := c.locate(table, o.keyHash); found && !recovering {
		o.call = c.ep.StartCall(master, o.request())
		o.inflight = true
	}
}

// request builds the wire message for one attempt.
func (o *Op) request() wire.Message {
	switch o.kind {
	case opRead:
		return &wire.ReadReq{Table: o.table, Key: o.key}
	case opWrite:
		return &wire.WriteReq{Table: o.table, Key: o.key, ValueLen: o.valueLen, Value: o.value}
	default:
		return &wire.DeleteReq{Table: o.table, Key: o.key}
	}
}

// hist returns the latency sink for this op kind.
func (o *Op) hist() *metrics.Histogram {
	if o.kind == opRead {
		return o.c.stats.ReadLatency
	}
	return o.c.stats.WriteLatency
}

// classify extracts the status and payload from a response message.
func (o *Op) classify(resp wire.Message) (st wire.Status, valueLen uint32, value []byte) {
	switch m := resp.(type) {
	case *wire.ReadResp:
		return m.Status, m.ValueLen, m.Value
	case *wire.WriteResp:
		return m.Status, 0, nil
	case *wire.DeleteResp:
		return m.Status, 0, nil
	default:
		return wire.StatusError, 0, nil
	}
}

// finish memoizes the op's outcome so repeated Waits return it.
func (o *Op) finish(valueLen uint32, value []byte, err error) (uint32, []byte, error) {
	o.finished = true
	o.resultLen, o.resultVal, o.err = valueLen, value, err
	o.inflight = false
	return valueLen, value, err
}

// Done reports whether the current attempt's response has arrived (or the
// op already finished). It is a readiness hint: Wait usually returns
// immediately after Done is true, but a response carrying a retryable
// status (e.g. a moved tablet) still makes Wait drive further attempts.
func (o *Op) Done() bool {
	return o.finished || (o.inflight && o.call.Done())
}

// Err returns the op's error; valid once Wait has returned.
func (o *Op) Err() error { return o.err }

// Wait blocks until the operation completes and returns its result. For a
// read, valueLen is the declared length and value the bytes (nil under
// virtual payloads); writes and deletes return zero values. The recorded
// latency covers the whole operation from issue, retries included.
func (o *Op) Wait(p *sim.Proc) (valueLen uint32, value []byte, err error) {
	if o.finished {
		return o.resultLen, o.resultVal, o.err
	}
	c := o.c
	fails := 0 // consecutive retryable failures, drives exponential backoff
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if !o.inflight {
			master, recovering, found := c.locate(o.table, o.keyHash)
			if !found {
				c.refreshTablets(p)
				if _, _, again := c.locate(o.table, o.keyHash); !again {
					return o.finish(0, nil, ErrNoTable)
				}
				continue
			}
			if recovering {
				p.Sleep(c.cfg.RecoveringBackoff)
				c.refreshTablets(p)
				continue
			}
			o.call = c.ep.StartCall(master, o.request())
			o.inflight = true
		}
		resp, ok := o.call.WaitTimeout(p, c.cfg.RPCTimeout)
		o.inflight = false
		if !ok {
			c.stats.Timeouts.Inc()
			if c.cfg.Backoff.Base > 0 {
				// Legacy clients retry a timeout immediately (the refresh
				// round trip is their only pacing); hardened clients back
				// off so a lossy fabric is not amplified by retries.
				p.Sleep(c.backoffDelay(fails))
				fails++
			}
			c.refreshTablets(p)
			continue
		}
		st, valueLen, value := o.classify(resp)
		switch st {
		case wire.StatusOK:
			c.recordCompleted(o.start, o.call.ResolvedAt(), o.hist())
			return o.finish(valueLen, value, nil)
		case wire.StatusUnknownKey:
			if o.kind == opWrite {
				// A write never legitimately sees UnknownKey; retry it.
				c.stats.Retries.Inc()
				c.retryPause(p, fails)
				fails++
				continue
			}
			c.recordCompleted(o.start, o.call.ResolvedAt(), o.hist())
			return o.finish(0, nil, ErrNotFound)
		case wire.StatusWrongServer:
			c.stats.Retries.Inc()
			c.refreshTablets(p)
			fails = 0 // progress: the map moved, not a failure of the op
		default:
			c.stats.Retries.Inc()
			c.retryPause(p, fails)
			fails++
		}
	}
	c.stats.Failures.Inc()
	return o.finish(0, nil, ErrUnavailable)
}

// ReadAsync issues a read without waiting for its completion and returns a
// future. The per-op client overhead is still paid up front (it models CPU
// spent building the request), but the RPC round trip overlaps whatever the
// caller does before Wait.
func (c *Client) ReadAsync(p *sim.Proc, table uint64, key []byte) *Op {
	c.stats.AsyncOps.Inc()
	return c.startOp(p, opRead, table, key, 0, nil, c.cfg.ReadOverhead)
}

// WriteAsync issues a write without waiting for durability. Wait returns
// once the write is durable (replicated when the cluster replicates).
func (c *Client) WriteAsync(p *sim.Proc, table uint64, key []byte, valueLen uint32, value []byte) *Op {
	c.stats.AsyncOps.Inc()
	return c.startOp(p, opWrite, table, key, valueLen, value, c.cfg.UpdateOverhead)
}

// DeleteAsync issues a delete without waiting for its completion.
func (c *Client) DeleteAsync(p *sim.Proc, table uint64, key []byte) *Op {
	c.stats.AsyncOps.Inc()
	return c.startOp(p, opDelete, table, key, 0, nil, c.cfg.UpdateOverhead)
}
