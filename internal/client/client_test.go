package client

import (
	"errors"
	"testing"

	"ramcloud/internal/rpc"
	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// fakeCluster is a scripted coordinator + master endpoint pair that lets
// the client's routing, retry and timeout logic be tested in isolation.
type fakeCluster struct {
	eng    *sim.Engine
	net    *simnet.Network
	coord  *rpc.Endpoint
	master *rpc.Endpoint

	tablets     []wire.Tablet
	mapRequests int

	readStatus  wire.Status // status the master returns for reads
	masterMute  bool        // drop all master replies (simulates death)
	readsServed int
}

func newFake(t *testing.T) *fakeCluster {
	t.Helper()
	eng := sim.New(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	f := &fakeCluster{
		eng:        eng,
		net:        net,
		coord:      rpc.NewEndpoint(eng, net, simnet.NodeID(-1)),
		master:     rpc.NewEndpoint(eng, net, simnet.NodeID(1)),
		readStatus: wire.StatusOK,
	}
	f.tablets = []wire.Tablet{{Table: 1, StartHash: 0, EndHash: ^uint64(0), Master: 1}}
	eng.Go("fake-coord", func(p *sim.Proc) {
		for {
			req := f.coord.Inbound.Pop(p)
			switch req.Msg.(type) {
			case *wire.GetTabletMapReq:
				f.mapRequests++
				f.coord.Reply(req, &wire.GetTabletMapResp{Status: wire.StatusOK, Tablets: f.tablets})
			case *wire.CreateTableReq:
				f.coord.Reply(req, &wire.CreateTableResp{Status: wire.StatusOK, Table: 1})
			}
		}
	})
	eng.Go("fake-master", func(p *sim.Proc) {
		for {
			req := f.master.Inbound.Pop(p)
			if f.masterMute {
				continue
			}
			switch req.Msg.(type) {
			case *wire.ReadReq:
				f.readsServed++
				f.master.Reply(req, &wire.ReadResp{Status: f.readStatus, ValueLen: 9, Version: 1})
			case *wire.WriteReq:
				f.master.Reply(req, &wire.WriteResp{Status: wire.StatusOK, Version: 2})
			case *wire.DeleteReq:
				f.master.Reply(req, &wire.DeleteResp{Status: wire.StatusOK, Version: 3})
			}
		}
	})
	return f
}

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.RPCTimeout = 20 * sim.Millisecond
	cfg.MaxRetries = 3
	cfg.ReadOverhead = 0
	cfg.UpdateOverhead = 0
	return cfg
}

func (f *fakeCluster) newClient() *Client {
	return New(f.eng, f.net, simnet.NodeID(100), f.coord.Node(), testCfg())
}

func TestClientBasicOps(t *testing.T) {
	f := newFake(t)
	c := f.newClient()
	var errs []error
	f.eng.Go("app", func(p *sim.Proc) {
		id, err := c.CreateTable(p, "t", 1)
		errs = append(errs, err)
		n, _, err := c.Read(p, id, []byte("k"))
		if n != 9 {
			errs = append(errs, errors.New("value len mismatch"))
		}
		errs = append(errs, err)
		errs = append(errs, c.Write(p, id, []byte("k"), 5, nil))
		errs = append(errs, c.Delete(p, id, []byte("k")))
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if c.Stats().Ops.Value() != 3 {
		t.Fatalf("ops = %d", c.Stats().Ops.Value())
	}
}

func TestClientNotFound(t *testing.T) {
	f := newFake(t)
	f.readStatus = wire.StatusUnknownKey
	c := f.newClient()
	var err error
	f.eng.Go("app", func(p *sim.Proc) {
		_, _, err = c.Read(p, 1, []byte("missing"))
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestClientTimesOutAndGivesUp(t *testing.T) {
	f := newFake(t)
	f.masterMute = true
	c := f.newClient()
	var err error
	f.eng.Go("app", func(p *sim.Proc) {
		_, _, err = c.Read(p, 1, []byte("k"))
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
	if c.Stats().Timeouts.Value() == 0 || c.Stats().Failures.Value() != 1 {
		t.Fatalf("timeouts=%d failures=%d", c.Stats().Timeouts.Value(), c.Stats().Failures.Value())
	}
}

func TestClientBlocksWhileRecoveringThenSucceeds(t *testing.T) {
	f := newFake(t)
	f.tablets[0].Recovering = true
	cfg := testCfg()
	cfg.MaxRetries = 20 // recovery polling consumes one attempt per backoff
	c := New(f.eng, f.net, simnet.NodeID(100), f.coord.Node(), cfg)
	var err error
	var elapsed sim.Duration
	// Tablet leaves recovery after 300ms.
	f.eng.Schedule(300*sim.Millisecond, func() { f.tablets[0].Recovering = false })
	f.eng.Go("app", func(p *sim.Proc) {
		start := p.Now()
		_, _, err = c.Read(p, 1, []byte("k"))
		elapsed = p.Now().Sub(start)
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed < 300*sim.Millisecond {
		t.Fatalf("returned in %v; should have waited out the recovery", elapsed)
	}
	if f.mapRequests < 2 {
		t.Fatalf("client refreshed the map %d times; expected polling", f.mapRequests)
	}
}

func TestClientUnknownTable(t *testing.T) {
	f := newFake(t)
	c := f.newClient()
	var err error
	f.eng.Go("app", func(p *sim.Proc) {
		_, _, err = c.Read(p, 99, []byte("k"))
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	if !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestClientOverheadPacing(t *testing.T) {
	f := newFake(t)
	cfg := testCfg()
	cfg.ReadOverhead = 100 * sim.Microsecond
	c := New(f.eng, f.net, simnet.NodeID(101), f.coord.Node(), cfg)
	var elapsed sim.Duration
	f.eng.Go("app", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 10; i++ {
			if _, _, err := c.Read(p, 1, []byte("k")); err != nil {
				t.Errorf("read: %v", err)
			}
		}
		elapsed = p.Now().Sub(start)
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	if elapsed < sim.Millisecond {
		t.Fatalf("10 reads with 100us overhead took %v; overhead not applied", elapsed)
	}
}
