package client

import (
	"errors"
	"fmt"
	"testing"

	"ramcloud/internal/hashtable"
	"ramcloud/internal/rpc"
	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// fakeCluster is a scripted coordinator + master endpoint pair that lets
// the client's routing, retry and timeout logic be tested in isolation.
type fakeCluster struct {
	eng    *sim.Engine
	net    *simnet.Network
	coord  *rpc.Endpoint
	master *rpc.Endpoint

	tablets     []wire.Tablet
	mapRequests int

	readStatus  wire.Status // status the master returns for reads
	masterMute  bool        // drop all master replies (simulates death)
	readsServed int
}

func newFake(t *testing.T) *fakeCluster {
	t.Helper()
	eng := sim.New(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	f := &fakeCluster{
		eng:        eng,
		net:        net,
		coord:      rpc.NewEndpoint(eng, net, simnet.NodeID(-1)),
		master:     rpc.NewEndpoint(eng, net, simnet.NodeID(1)),
		readStatus: wire.StatusOK,
	}
	f.tablets = []wire.Tablet{{Table: 1, StartHash: 0, EndHash: ^uint64(0), Master: 1}}
	eng.Go("fake-coord", func(p *sim.Proc) {
		for {
			req := f.coord.Inbound.Pop(p)
			switch req.Msg.(type) {
			case *wire.GetTabletMapReq:
				f.mapRequests++
				f.coord.Reply(req, &wire.GetTabletMapResp{Status: wire.StatusOK, Tablets: f.tablets})
			case *wire.CreateTableReq:
				f.coord.Reply(req, &wire.CreateTableResp{Status: wire.StatusOK, Table: 1})
			}
		}
	})
	eng.Go("fake-master", func(p *sim.Proc) {
		for {
			req := f.master.Inbound.Pop(p)
			if f.masterMute {
				continue
			}
			switch req.Msg.(type) {
			case *wire.ReadReq:
				f.readsServed++
				f.master.Reply(req, &wire.ReadResp{Status: f.readStatus, ValueLen: 9, Version: 1})
			case *wire.WriteReq:
				f.master.Reply(req, &wire.WriteResp{Status: wire.StatusOK, Version: 2})
			case *wire.DeleteReq:
				f.master.Reply(req, &wire.DeleteResp{Status: wire.StatusOK, Version: 3})
			}
		}
	})
	return f
}

func testCfg() Config {
	cfg := DefaultConfig()
	cfg.RPCTimeout = 20 * sim.Millisecond
	cfg.MaxRetries = 3
	cfg.ReadOverhead = 0
	cfg.UpdateOverhead = 0
	return cfg
}

func (f *fakeCluster) newClient() *Client {
	return New(f.eng, f.net, simnet.NodeID(100), f.coord.Node(), testCfg())
}

func TestClientBasicOps(t *testing.T) {
	f := newFake(t)
	c := f.newClient()
	var errs []error
	f.eng.Go("app", func(p *sim.Proc) {
		id, err := c.CreateTable(p, "t", 1)
		errs = append(errs, err)
		n, _, err := c.Read(p, id, []byte("k"))
		if n != 9 {
			errs = append(errs, errors.New("value len mismatch"))
		}
		errs = append(errs, err)
		errs = append(errs, c.Write(p, id, []byte("k"), 5, nil))
		errs = append(errs, c.Delete(p, id, []byte("k")))
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if c.Stats().Ops.Value() != 3 {
		t.Fatalf("ops = %d", c.Stats().Ops.Value())
	}
}

func TestClientNotFound(t *testing.T) {
	f := newFake(t)
	f.readStatus = wire.StatusUnknownKey
	c := f.newClient()
	var err error
	f.eng.Go("app", func(p *sim.Proc) {
		_, _, err = c.Read(p, 1, []byte("missing"))
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestClientTimesOutAndGivesUp(t *testing.T) {
	f := newFake(t)
	f.masterMute = true
	c := f.newClient()
	var err error
	f.eng.Go("app", func(p *sim.Proc) {
		_, _, err = c.Read(p, 1, []byte("k"))
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
	if c.Stats().Timeouts.Value() == 0 || c.Stats().Failures.Value() != 1 {
		t.Fatalf("timeouts=%d failures=%d", c.Stats().Timeouts.Value(), c.Stats().Failures.Value())
	}
}

func TestClientBlocksWhileRecoveringThenSucceeds(t *testing.T) {
	f := newFake(t)
	f.tablets[0].Recovering = true
	cfg := testCfg()
	cfg.MaxRetries = 20 // recovery polling consumes one attempt per backoff
	c := New(f.eng, f.net, simnet.NodeID(100), f.coord.Node(), cfg)
	var err error
	var elapsed sim.Duration
	// Tablet leaves recovery after 300ms.
	f.eng.Schedule(300*sim.Millisecond, func() { f.tablets[0].Recovering = false })
	f.eng.Go("app", func(p *sim.Proc) {
		start := p.Now()
		_, _, err = c.Read(p, 1, []byte("k"))
		elapsed = p.Now().Sub(start)
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed < 300*sim.Millisecond {
		t.Fatalf("returned in %v; should have waited out the recovery", elapsed)
	}
	if f.mapRequests < 2 {
		t.Fatalf("client refreshed the map %d times; expected polling", f.mapRequests)
	}
}

func TestClientUnknownTable(t *testing.T) {
	f := newFake(t)
	c := f.newClient()
	var err error
	f.eng.Go("app", func(p *sim.Proc) {
		_, _, err = c.Read(p, 99, []byte("k"))
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	if !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
}

// splitFake is a scripted coordinator plus two masters sharing table 1,
// split at the middle of the hash space. The coordinator can serve a stale
// map (everything owned by master 1) until told otherwise, which lets tests
// exercise WrongServer retries mid-batch.
type splitFake struct {
	eng     *sim.Engine
	net     *simnet.Network
	coord   *rpc.Endpoint
	masters [2]*rpc.Endpoint

	staleMap   bool // serve the pre-split map (all keys -> master 1)
	multiRPCs  [2]int
	multiItems [2][]int // items per multi RPC received, per master
}

const splitMid = uint64(1) << 63

func newSplitFake(t *testing.T) *splitFake {
	t.Helper()
	eng := sim.New(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	f := &splitFake{
		eng:   eng,
		net:   net,
		coord: rpc.NewEndpoint(eng, net, simnet.NodeID(-1)),
	}
	f.masters[0] = rpc.NewEndpoint(eng, net, simnet.NodeID(1))
	f.masters[1] = rpc.NewEndpoint(eng, net, simnet.NodeID(2))
	eng.Go("split-coord", func(p *sim.Proc) {
		for {
			req := f.coord.Inbound.Pop(p)
			switch req.Msg.(type) {
			case *wire.GetTabletMapReq:
				var tablets []wire.Tablet
				if f.staleMap {
					tablets = []wire.Tablet{{Table: 1, StartHash: 0, EndHash: ^uint64(0), Master: 1}}
				} else {
					tablets = []wire.Tablet{
						{Table: 1, StartHash: 0, EndHash: splitMid - 1, Master: 1},
						{Table: 1, StartHash: splitMid, EndHash: ^uint64(0), Master: 2},
					}
				}
				f.coord.Reply(req, &wire.GetTabletMapResp{Status: wire.StatusOK, Tablets: tablets})
			}
		}
	})
	for mi := 0; mi < 2; mi++ {
		mi := mi
		ep := f.masters[mi]
		owns := func(h uint64) bool {
			if mi == 0 {
				return h < splitMid
			}
			return h >= splitMid
		}
		eng.Go(fmt.Sprintf("split-master%d", mi+1), func(p *sim.Proc) {
			for {
				req := ep.Inbound.Pop(p)
				switch m := req.Msg.(type) {
				case *wire.MultiReadReq:
					f.multiRPCs[mi]++
					f.multiItems[mi] = append(f.multiItems[mi], len(m.Items))
					items := make([]wire.MultiReadResult, len(m.Items))
					for i := range m.Items {
						if owns(hashtable.HashKey(m.Items[i].Table, m.Items[i].Key)) {
							items[i] = wire.MultiReadResult{Status: wire.StatusOK, Version: 1, ValueLen: 7}
						} else {
							items[i].Status = wire.StatusWrongServer
						}
					}
					ep.Reply(req, &wire.MultiReadResp{Status: wire.StatusOK, Items: items})
				case *wire.MultiWriteReq:
					f.multiRPCs[mi]++
					f.multiItems[mi] = append(f.multiItems[mi], len(m.Items))
					items := make([]wire.MultiWriteResult, len(m.Items))
					for i := range m.Items {
						if owns(hashtable.HashKey(m.Items[i].Table, m.Items[i].Key)) {
							items[i] = wire.MultiWriteResult{Status: wire.StatusOK, Version: 2}
						} else {
							items[i].Status = wire.StatusWrongServer
						}
					}
					ep.Reply(req, &wire.MultiWriteResp{Status: wire.StatusOK, Items: items})
				case *wire.ReadReq:
					ep.Reply(req, &wire.ReadResp{Status: wire.StatusOK, Version: 1, ValueLen: 7})
				}
			}
		})
	}
	return f
}

// splitKeys returns n keys per side of the hash split for table 1.
func splitKeys(t *testing.T, n int) (low, high [][]byte) {
	t.Helper()
	for i := 0; len(low) < n || len(high) < n; i++ {
		key := []byte(fmt.Sprintf("user%010d", i))
		if hashtable.HashKey(1, key) < splitMid {
			if len(low) < n {
				low = append(low, key)
			}
		} else if len(high) < n {
			high = append(high, key)
		}
		if i > 10_000 {
			t.Fatal("could not find keys on both sides of the split")
		}
	}
	return low, high
}

// TestMultiReadOneRPCPerMaster asserts the acceptance criterion: a
// MultiRead of N keys spanning two masters issues exactly one data RPC per
// involved master (counted at the client's endpoint and at the masters).
func TestMultiReadOneRPCPerMaster(t *testing.T) {
	f := newSplitFake(t)
	c := New(f.eng, f.net, simnet.NodeID(100), f.coord.Node(), testCfg())
	low, high := splitKeys(t, 4)
	keys := append(append([][]byte{}, low...), high...)
	var results []MultiResult
	var sentDelta uint64
	f.eng.Go("app", func(p *sim.Proc) {
		c.refreshTablets(p) // warm the tablet map
		before := c.SentRPCs()
		results = c.MultiRead(p, 1, keys)
		sentDelta = c.SentRPCs() - before
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	for i, r := range results {
		if r.Err != nil || r.ValueLen != 7 {
			t.Fatalf("item %d: len=%d err=%v", i, r.ValueLen, r.Err)
		}
	}
	if sentDelta != 2 {
		t.Fatalf("MultiRead of %d keys across 2 masters issued %d RPCs, want 2", len(keys), sentDelta)
	}
	if f.multiRPCs[0] != 1 || f.multiRPCs[1] != 1 {
		t.Fatalf("multi RPCs per master = %v, want one each", f.multiRPCs)
	}
	if f.multiItems[0][0] != 4 || f.multiItems[1][0] != 4 {
		t.Fatalf("items per RPC = %v/%v, want 4 each", f.multiItems[0], f.multiItems[1])
	}
	if got := c.Stats().BatchedOps.Value(); got != int64(len(keys)) {
		t.Fatalf("BatchedOps = %d, want %d", got, len(keys))
	}
	if got := c.Stats().BatchRPCs.Value(); got != 2 {
		t.Fatalf("BatchRPCs = %d, want 2", got)
	}
}

// TestMultiReadWrongServerRetryMidBatch starts the client on a stale
// one-master map: the first batch RPC goes wholly to master 1, which
// answers WrongServer for the keys that live across the split. The client
// must refresh and reissue only the moved items to master 2.
func TestMultiReadWrongServerRetryMidBatch(t *testing.T) {
	f := newSplitFake(t)
	f.staleMap = true
	c := New(f.eng, f.net, simnet.NodeID(100), f.coord.Node(), testCfg())
	low, high := splitKeys(t, 3)
	keys := append(append([][]byte{}, low...), high...)
	var results []MultiResult
	f.eng.Go("app", func(p *sim.Proc) {
		c.refreshTablets(p) // warm with the STALE map
		f.staleMap = false  // the next refresh sees the split
		results = c.MultiRead(p, 1, keys)
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	for i, r := range results {
		if r.Err != nil || r.ValueLen != 7 {
			t.Fatalf("item %d: len=%d err=%v", i, r.ValueLen, r.Err)
		}
	}
	// First attempt: all 6 items to master 1. Second attempt: the 3 moved
	// items to master 2 only.
	if f.multiRPCs[0] != 1 || f.multiRPCs[1] != 1 {
		t.Fatalf("multi RPCs per master = %v, want one each", f.multiRPCs)
	}
	if f.multiItems[0][0] != 6 {
		t.Fatalf("first batch carried %d items, want all 6", f.multiItems[0][0])
	}
	if f.multiItems[1][0] != 3 {
		t.Fatalf("retry batch carried %d items, want only the 3 moved", f.multiItems[1][0])
	}
	if c.Stats().Retries.Value() != 3 {
		t.Fatalf("retries = %d, want 3 (one per moved item)", c.Stats().Retries.Value())
	}
}

// TestMultiWritePartitioned checks MultiWrite splits a batch across owners
// and reports per-item versions.
func TestMultiWritePartitioned(t *testing.T) {
	f := newSplitFake(t)
	c := New(f.eng, f.net, simnet.NodeID(100), f.coord.Node(), testCfg())
	low, high := splitKeys(t, 2)
	ops := []MultiWriteOp{
		{Key: low[0], ValueLen: 100},
		{Key: high[0], ValueLen: 100},
		{Key: low[1], ValueLen: 100},
		{Key: high[1], ValueLen: 100},
	}
	var results []MultiResult
	f.eng.Go("app", func(p *sim.Proc) {
		c.refreshTablets(p)
		results = c.MultiWrite(p, 1, ops)
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	for i, r := range results {
		if r.Err != nil || r.Version != 2 {
			t.Fatalf("item %d: version=%d err=%v", i, r.Version, r.Err)
		}
	}
	if f.multiRPCs[0] != 1 || f.multiRPCs[1] != 1 {
		t.Fatalf("multi RPCs per master = %v, want one each", f.multiRPCs)
	}
}

// TestAsyncOpsPipeline checks that async ops overlap their round trips:
// four pipelined reads finish faster than four sequential ones.
func TestAsyncOpsPipeline(t *testing.T) {
	f := newFake(t)
	c := f.newClient()
	var seqD, pipeD sim.Duration
	f.eng.Go("app", func(p *sim.Proc) {
		key := []byte("k")
		start := p.Now()
		for i := 0; i < 4; i++ {
			if _, _, err := c.Read(p, 1, key); err != nil {
				t.Errorf("read: %v", err)
			}
		}
		seqD = p.Now().Sub(start)

		start = p.Now()
		ops := make([]*Op, 4)
		for i := range ops {
			ops[i] = c.ReadAsync(p, 1, key)
		}
		for _, op := range ops {
			if n, _, err := op.Wait(p); err != nil || n != 9 {
				t.Errorf("async read: n=%d err=%v", n, err)
			}
			// Wait twice must return the memoized result.
			if n2, _, err2 := op.Wait(p); err2 != nil || n2 != 9 {
				t.Errorf("re-wait: n=%d err=%v", n2, err2)
			}
		}
		pipeD = p.Now().Sub(start)
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	if pipeD >= seqD {
		t.Fatalf("pipelined 4 reads took %v, sequential %v; no overlap", pipeD, seqD)
	}
	if c.Stats().AsyncOps.Value() != 4 {
		t.Fatalf("AsyncOps = %d", c.Stats().AsyncOps.Value())
	}
}

// TestAsyncNotFound checks error propagation through the future.
func TestAsyncNotFound(t *testing.T) {
	f := newFake(t)
	f.readStatus = wire.StatusUnknownKey
	c := f.newClient()
	var err error
	f.eng.Go("app", func(p *sim.Proc) {
		op := c.ReadAsync(p, 1, []byte("missing"))
		_, _, err = op.Wait(p)
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

// TestMultiReadUnknownTable: a batch against a table absent from the map
// fails every item with ErrNoTable after one refresh, like the single-op
// path.
func TestMultiReadUnknownTable(t *testing.T) {
	f := newFake(t)
	c := f.newClient()
	var results []MultiResult
	f.eng.Go("app", func(p *sim.Proc) {
		results = c.MultiRead(p, 99, [][]byte{[]byte("a"), []byte("b")})
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	for i, r := range results {
		if !errors.Is(r.Err, ErrNoTable) {
			t.Fatalf("item %d err = %v, want ErrNoTable", i, r.Err)
		}
	}
}

func TestClientOverheadPacing(t *testing.T) {
	f := newFake(t)
	cfg := testCfg()
	cfg.ReadOverhead = 100 * sim.Microsecond
	c := New(f.eng, f.net, simnet.NodeID(101), f.coord.Node(), cfg)
	var elapsed sim.Duration
	f.eng.Go("app", func(p *sim.Proc) {
		start := p.Now()
		for i := 0; i < 10; i++ {
			if _, _, err := c.Read(p, 1, []byte("k")); err != nil {
				t.Errorf("read: %v", err)
			}
		}
		elapsed = p.Now().Sub(start)
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	if elapsed < sim.Millisecond {
		t.Fatalf("10 reads with 100us overhead took %v; overhead not applied", elapsed)
	}
}
