package client

import (
	"ramcloud/internal/hashtable"
	"ramcloud/internal/rpc"
	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// This file implements multi-op batching: MultiRead and MultiWrite
// partition a key batch by tablet owner and issue one RPC per involved
// master (real RAMCloud's MultiRead/MultiWrite). Items that hit a moved
// tablet or a timeout are retried individually while the rest of the batch
// completes, so a split or crash mid-batch degrades to extra round trips,
// never to wrong results.

// MultiResult is one item's outcome in a MultiRead or MultiWrite batch.
// Results are positional: result i answers keys[i] (or ops[i]).
type MultiResult struct {
	ValueLen uint32
	Value    []byte // nil under virtual payloads
	Version  uint64
	Err      error
}

// MultiWriteOp is one write in a MultiWrite batch. Value may be nil for a
// virtual payload of ValueLen declared bytes.
type MultiWriteOp struct {
	Key      []byte
	ValueLen uint32
	Value    []byte
}

// batchOverhead is the client CPU burned assembling an n-item multi-op
// batch: the full per-op cost for the first item plus the marginal
// BatchItemOverhead for each further item. This amortization is what lets
// a batched client exceed the paper's per-client closed-loop ceiling.
func (c *Client) batchOverhead(base sim.Duration, n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return base + sim.Duration(int64(c.cfg.BatchItemOverhead)*int64(n-1))
}

// resolveBatch maps each pending item index to its owning master,
// refreshing the tablet map at most once for unknown tablets. Items that
// stay unknown after the refresh fail through the fail callback (ErrNoTable
// semantics of the single-op path). If any involved tablet is recovering,
// the whole remainder backs off and retries: retry=true, consuming one
// attempt, like the single-op recovery poll.
//
// Groups preserve first-contact order — no map iteration — so batch RPC
// issue order is deterministic.
func (c *Client) resolveBatch(p *sim.Proc, table uint64, hashes []uint64, pending []int, fail func(i int)) (masters []simnet.NodeID, groups [][]int, remaining []int, retry bool) {
	remaining = pending
	for pass := 0; ; pass++ {
		unknown, recovering := false, false
		for _, i := range remaining {
			_, rec, found := c.locate(table, hashes[i])
			if !found {
				unknown = true
			} else if rec {
				recovering = true
			}
		}
		if recovering {
			p.Sleep(c.cfg.RecoveringBackoff)
			c.refreshTablets(p)
			return nil, nil, remaining, true
		}
		if !unknown {
			break
		}
		if pass == 0 {
			c.refreshTablets(p)
			continue
		}
		// Still unknown after a refresh: fail those items, keep the rest.
		kept := remaining[:0]
		for _, i := range remaining {
			if _, _, found := c.locate(table, hashes[i]); found {
				kept = append(kept, i)
			} else {
				fail(i)
			}
		}
		remaining = kept
		break
	}
	for _, i := range remaining {
		master, _, _ := c.locate(table, hashes[i])
		g := -1
		for j := range masters {
			if masters[j] == master {
				g = j
				break
			}
		}
		if g < 0 {
			masters = append(masters, master)
			groups = append(groups, nil)
			g = len(masters) - 1
		}
		groups[g] = append(groups[g], i)
	}
	return masters, groups, remaining, false
}

// multiRound carries one attempt's retry bookkeeping between the shared
// execution loop and the per-kind response handlers.
type multiRound struct {
	retry       []int // item indices to try again next attempt
	needRefresh bool  // a timeout or WrongServer invalidated the tablet map
	backoff     bool  // a retryable error asks for RetryBackoff
}

// fail marks item i for another attempt. wrongServer distinguishes the
// refresh-the-map case from the plain-backoff case.
func (r *multiRound) fail(i int, wrongServer bool) {
	r.retry = append(r.retry, i)
	if wrongServer {
		r.needRefresh = true
	} else {
		r.backoff = true
	}
}

// multiExec is the shared retry loop behind MultiRead and MultiWrite: it
// resolves pending items to masters, issues one RPC per master per attempt
// (in first-contact order), gathers the responses in the same order, and
// retries whatever the handlers put back. issue builds and sends the
// multi-op request for one group; handle distributes one response's items.
func (c *Client) multiExec(p *sim.Proc, table uint64, hashes []uint64, out []MultiResult,
	issue func(master simnet.NodeID, idx []int) rpc.Call,
	handle func(resp wire.Message, idx []int, round *multiRound)) {
	pending := make([]int, len(hashes))
	for i := range pending {
		pending[i] = i
	}
	for attempt := 0; attempt <= c.cfg.MaxRetries && len(pending) > 0; attempt++ {
		masters, groups, remaining, retry := c.resolveBatch(p, table, hashes, pending, func(i int) {
			out[i].Err = ErrNoTable
		})
		pending = remaining
		if retry || len(pending) == 0 {
			continue
		}
		calls := make([]rpc.Call, len(groups))
		for g := range groups {
			calls[g] = issue(masters[g], groups[g])
			c.stats.BatchRPCs.Inc()
		}
		var round multiRound
		for g := range calls {
			resp, ok := calls[g].WaitTimeout(p, c.cfg.RPCTimeout)
			if !ok {
				c.stats.Timeouts.Inc()
				round.needRefresh = true
				round.retry = append(round.retry, groups[g]...)
				continue
			}
			handle(resp, groups[g], &round)
		}
		// Refresh and backoff are independent, mirroring the single-op
		// policy per item: WrongServer/timeout invalidates the map,
		// retryable errors pace the next attempt.
		if round.needRefresh {
			c.refreshTablets(p)
		}
		if round.backoff && len(round.retry) > 0 {
			c.retryPause(p, attempt)
		}
		pending = round.retry
	}
	for _, i := range pending {
		out[i].Err = ErrUnavailable
		c.stats.Failures.Inc()
	}
}

// MultiRead fetches a batch of keys, issuing at most one RPC per involved
// master per attempt. The returned slice is positional. Latency is
// recorded per item, covering the whole batch operation from issue.
func (c *Client) MultiRead(p *sim.Proc, table uint64, keys [][]byte) []MultiResult {
	n := len(keys)
	out := make([]MultiResult, n)
	if n == 0 {
		return out
	}
	if d := c.batchOverhead(c.cfg.ReadOverhead, n); d > 0 {
		p.Sleep(d)
	}
	start := p.Now()
	hashes := make([]uint64, n)
	for i := range keys {
		hashes[i] = hashtable.HashKey(table, keys[i])
	}
	c.multiExec(p, table, hashes, out,
		func(master simnet.NodeID, idx []int) rpc.Call {
			items := make([]wire.MultiReadItem, len(idx))
			for j, i := range idx {
				items[j] = wire.MultiReadItem{Table: table, Key: keys[i]}
			}
			return c.ep.StartCall(master, &wire.MultiReadReq{Items: items})
		},
		func(resp wire.Message, idx []int, round *multiRound) {
			m, isMulti := resp.(*wire.MultiReadResp)
			for j, i := range idx {
				if !isMulti || j >= len(m.Items) {
					round.fail(i, false)
					continue
				}
				it := &m.Items[j]
				switch it.Status {
				case wire.StatusOK:
					out[i] = MultiResult{ValueLen: it.ValueLen, Value: it.Value, Version: it.Version}
					c.record(start, c.stats.ReadLatency)
					c.stats.BatchedOps.Inc()
				case wire.StatusUnknownKey:
					out[i].Err = ErrNotFound
					c.record(start, c.stats.ReadLatency)
					c.stats.BatchedOps.Inc()
				default:
					c.stats.Retries.Inc()
					round.fail(i, it.Status == wire.StatusWrongServer)
				}
			}
		})
	return out
}

// MultiWrite stores a batch of objects, issuing at most one RPC per
// involved master per attempt. Each receiving master appends its share of
// the batch under a single log-head acquisition and replicates it in one
// fan-out per segment. The returned slice is positional; a nil Err means
// that item is durably written.
func (c *Client) MultiWrite(p *sim.Proc, table uint64, ops []MultiWriteOp) []MultiResult {
	n := len(ops)
	out := make([]MultiResult, n)
	if n == 0 {
		return out
	}
	if d := c.batchOverhead(c.cfg.UpdateOverhead, n); d > 0 {
		p.Sleep(d)
	}
	start := p.Now()
	hashes := make([]uint64, n)
	for i := range ops {
		hashes[i] = hashtable.HashKey(table, ops[i].Key)
	}
	c.multiExec(p, table, hashes, out,
		func(master simnet.NodeID, idx []int) rpc.Call {
			items := make([]wire.MultiWriteItem, len(idx))
			for j, i := range idx {
				items[j] = wire.MultiWriteItem{Table: table, Key: ops[i].Key, ValueLen: ops[i].ValueLen, Value: ops[i].Value}
			}
			return c.ep.StartCall(master, &wire.MultiWriteReq{Items: items})
		},
		func(resp wire.Message, idx []int, round *multiRound) {
			m, isMulti := resp.(*wire.MultiWriteResp)
			for j, i := range idx {
				if !isMulti || j >= len(m.Items) {
					round.fail(i, false)
					continue
				}
				it := &m.Items[j]
				if it.Status == wire.StatusOK {
					out[i] = MultiResult{Version: it.Version}
					c.record(start, c.stats.WriteLatency)
					c.stats.BatchedOps.Inc()
					continue
				}
				c.stats.Retries.Inc()
				round.fail(i, it.Status == wire.StatusWrongServer)
			}
		})
	return out
}
