// Package client implements the storage client: tablet-map caching,
// request routing, timeouts, retries and backoff. Its per-operation
// overhead constants model the YCSB Java client's own CPU cost, which
// dominates the closed-loop rate per client observed in the paper
// (~23-37 Kop/s for reads).
package client

import (
	"errors"
	"fmt"

	"ramcloud/internal/hashtable"
	"ramcloud/internal/metrics"
	"ramcloud/internal/rpc"
	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// Client errors.
var (
	ErrNotFound    = errors.New("client: key not found")
	ErrUnavailable = errors.New("client: operation failed after retries")
	ErrNoTable     = errors.New("client: unknown table")
)

// Config tunes the client.
type Config struct {
	RPCTimeout        sim.Duration // per-attempt deadline
	RetryBackoff      sim.Duration // backoff after timeout/error
	RecoveringBackoff sim.Duration // poll interval while data recovers
	MaxRetries        int          // attempts before ErrUnavailable

	// ReadOverhead / UpdateOverhead are the client-side per-op costs
	// (request generation, serialization, bookkeeping) of the YCSB client.
	ReadOverhead   sim.Duration
	UpdateOverhead sim.Duration
}

// DefaultConfig mirrors the calibrated YCSB client behaviour.
func DefaultConfig() Config {
	return Config{
		RPCTimeout:        1 * sim.Second,
		RetryBackoff:      10 * sim.Millisecond,
		RecoveringBackoff: 50 * sim.Millisecond,
		MaxRetries:        400,
		ReadOverhead:      33 * sim.Microsecond,
		UpdateOverhead:    130 * sim.Microsecond,
	}
}

// Stats collects client-side measurements.
type Stats struct {
	ReadLatency  *metrics.Histogram // ns
	WriteLatency *metrics.Histogram // ns
	OpsBySecond  metrics.Series     // completed ops per second
	LatSumSecond metrics.Series     // summed latency (ns) per second
	LatCntSecond metrics.Series     // latency samples per second
	Timeouts     metrics.Counter
	Retries      metrics.Counter
	Failures     metrics.Counter
	Ops          metrics.Counter
}

// NewStats returns empty stats.
func NewStats() *Stats {
	return &Stats{ReadLatency: metrics.NewHistogram(), WriteLatency: metrics.NewHistogram()}
}

// Client is one application client bound to a fabric node.
type Client struct {
	eng   *sim.Engine
	ep    *rpc.Endpoint
	coord simnet.NodeID
	cfg   Config

	tablets []wire.Tablet
	stats   *Stats
}

// New creates a client attached to the fabric at addr.
func New(e *sim.Engine, net *simnet.Network, addr simnet.NodeID, coord simnet.NodeID, cfg Config) *Client {
	return &Client{
		eng:   e,
		ep:    rpc.NewEndpoint(e, net, addr),
		coord: coord,
		cfg:   cfg,
		stats: NewStats(),
	}
}

// Stats returns the client's measurement sink.
func (c *Client) Stats() *Stats { return c.stats }

// Addr returns the client's fabric address.
func (c *Client) Addr() simnet.NodeID { return c.ep.Node() }

// CreateTable creates (or opens) a table spanning the given number of
// servers.
func (c *Client) CreateTable(p *sim.Proc, name string, serverSpan int) (uint64, error) {
	resp, ok := c.ep.CallTimeout(p, c.coord, &wire.CreateTableReq{Name: name, ServerSpan: uint32(serverSpan)}, c.cfg.RPCTimeout)
	if !ok {
		return 0, ErrUnavailable
	}
	m := resp.(*wire.CreateTableResp)
	if m.Status != wire.StatusOK {
		return 0, fmt.Errorf("client: create table: %v", m.Status)
	}
	c.refreshTablets(p)
	return m.Table, nil
}

// DropTable removes a table.
func (c *Client) DropTable(p *sim.Proc, name string) error {
	resp, ok := c.ep.CallTimeout(p, c.coord, &wire.DropTableReq{Name: name}, c.cfg.RPCTimeout)
	if !ok {
		return ErrUnavailable
	}
	if st := resp.(*wire.DropTableResp).Status; st != wire.StatusOK {
		return fmt.Errorf("client: drop table: %v", st)
	}
	return nil
}

func (c *Client) refreshTablets(p *sim.Proc) {
	resp, ok := c.ep.CallTimeout(p, c.coord, &wire.GetTabletMapReq{}, c.cfg.RPCTimeout)
	if !ok {
		return
	}
	c.tablets = resp.(*wire.GetTabletMapResp).Tablets
}

// locate returns the master for (table, keyHash).
func (c *Client) locate(table, keyHash uint64) (master simnet.NodeID, recovering, found bool) {
	for i := range c.tablets {
		t := &c.tablets[i]
		if t.Table == table && keyHash >= t.StartHash && keyHash <= t.EndHash {
			return simnet.NodeID(t.Master), t.Recovering, true
		}
	}
	return 0, false, false
}

// record registers a completed op's latency.
func (c *Client) record(start sim.Time, hist *metrics.Histogram) {
	now := c.eng.Now()
	lat := int64(now.Sub(start))
	hist.Record(lat)
	sec := int(int64(now) / int64(sim.Second))
	c.stats.OpsBySecond.Add(sec, 1)
	c.stats.LatSumSecond.Add(sec, float64(lat))
	c.stats.LatCntSecond.Add(sec, 1)
	c.stats.Ops.Inc()
}

// Read fetches a value's declared length (and bytes when real payloads are
// in use). It retries through recoveries and server changes; the recorded
// latency covers the whole operation, retries included.
func (c *Client) Read(p *sim.Proc, table uint64, key []byte) (uint32, []byte, error) {
	if c.cfg.ReadOverhead > 0 {
		p.Sleep(c.cfg.ReadOverhead)
	}
	start := p.Now()
	keyHash := hashtable.HashKey(table, key)
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		master, recovering, found := c.locate(table, keyHash)
		if !found {
			c.refreshTablets(p)
			if _, _, again := c.locate(table, keyHash); !again {
				return 0, nil, ErrNoTable
			}
			continue
		}
		if recovering {
			p.Sleep(c.cfg.RecoveringBackoff)
			c.refreshTablets(p)
			continue
		}
		resp, ok := c.ep.CallTimeout(p, master, &wire.ReadReq{Table: table, Key: key}, c.cfg.RPCTimeout)
		if !ok {
			c.stats.Timeouts.Inc()
			c.refreshTablets(p)
			continue
		}
		m := resp.(*wire.ReadResp)
		switch m.Status {
		case wire.StatusOK:
			c.record(start, c.stats.ReadLatency)
			return m.ValueLen, m.Value, nil
		case wire.StatusUnknownKey:
			c.record(start, c.stats.ReadLatency)
			return 0, nil, ErrNotFound
		case wire.StatusWrongServer:
			c.stats.Retries.Inc()
			c.refreshTablets(p)
		default:
			c.stats.Retries.Inc()
			p.Sleep(c.cfg.RetryBackoff)
		}
	}
	c.stats.Failures.Inc()
	return 0, nil, ErrUnavailable
}

// Write stores a value (virtual when value is nil: only valueLen crosses
// the simulated wire).
func (c *Client) Write(p *sim.Proc, table uint64, key []byte, valueLen uint32, value []byte) error {
	if c.cfg.UpdateOverhead > 0 {
		p.Sleep(c.cfg.UpdateOverhead)
	}
	start := p.Now()
	keyHash := hashtable.HashKey(table, key)
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		master, recovering, found := c.locate(table, keyHash)
		if !found {
			c.refreshTablets(p)
			if _, _, again := c.locate(table, keyHash); !again {
				return ErrNoTable
			}
			continue
		}
		if recovering {
			p.Sleep(c.cfg.RecoveringBackoff)
			c.refreshTablets(p)
			continue
		}
		resp, ok := c.ep.CallTimeout(p, master, &wire.WriteReq{Table: table, Key: key, ValueLen: valueLen, Value: value}, c.cfg.RPCTimeout)
		if !ok {
			c.stats.Timeouts.Inc()
			c.refreshTablets(p)
			continue
		}
		m := resp.(*wire.WriteResp)
		switch m.Status {
		case wire.StatusOK:
			c.record(start, c.stats.WriteLatency)
			return nil
		case wire.StatusWrongServer:
			c.stats.Retries.Inc()
			c.refreshTablets(p)
		default:
			c.stats.Retries.Inc()
			p.Sleep(c.cfg.RetryBackoff)
		}
	}
	c.stats.Failures.Inc()
	return ErrUnavailable
}

// Delete removes a key.
func (c *Client) Delete(p *sim.Proc, table uint64, key []byte) error {
	if c.cfg.UpdateOverhead > 0 {
		p.Sleep(c.cfg.UpdateOverhead)
	}
	start := p.Now()
	keyHash := hashtable.HashKey(table, key)
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		master, recovering, found := c.locate(table, keyHash)
		if !found {
			c.refreshTablets(p)
			if _, _, again := c.locate(table, keyHash); !again {
				return ErrNoTable
			}
			continue
		}
		if recovering {
			p.Sleep(c.cfg.RecoveringBackoff)
			c.refreshTablets(p)
			continue
		}
		resp, ok := c.ep.CallTimeout(p, master, &wire.DeleteReq{Table: table, Key: key}, c.cfg.RPCTimeout)
		if !ok {
			c.stats.Timeouts.Inc()
			c.refreshTablets(p)
			continue
		}
		m := resp.(*wire.DeleteResp)
		switch m.Status {
		case wire.StatusOK:
			c.record(start, c.stats.WriteLatency)
			return nil
		case wire.StatusUnknownKey:
			c.record(start, c.stats.WriteLatency)
			return ErrNotFound
		case wire.StatusWrongServer:
			c.stats.Retries.Inc()
			c.refreshTablets(p)
		default:
			c.stats.Retries.Inc()
			p.Sleep(c.cfg.RetryBackoff)
		}
	}
	c.stats.Failures.Inc()
	return ErrUnavailable
}
