// Package client implements the storage client: tablet-map caching,
// request routing, timeouts, retries and backoff. Its per-operation
// overhead constants model the YCSB Java client's own CPU cost, which
// dominates the closed-loop rate per client observed in the paper
// (~23-37 Kop/s for reads).
package client

import (
	"errors"
	"fmt"

	"ramcloud/internal/metrics"
	"ramcloud/internal/rpc"
	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// Client errors.
var (
	ErrNotFound    = errors.New("client: key not found")
	ErrUnavailable = errors.New("client: operation failed after retries")
	ErrNoTable     = errors.New("client: unknown table")
)

// Config tunes the client.
type Config struct {
	RPCTimeout        sim.Duration // per-attempt deadline
	RetryBackoff      sim.Duration // backoff after timeout/error
	RecoveringBackoff sim.Duration // poll interval while data recovers
	MaxRetries        int          // attempts before ErrUnavailable

	// ReadOverhead / UpdateOverhead are the client-side per-op costs
	// (request generation, serialization, bookkeeping) of the YCSB client.
	ReadOverhead   sim.Duration
	UpdateOverhead sim.Duration

	// BatchItemOverhead is the marginal client CPU per additional item in
	// a MultiRead/MultiWrite batch (the first item pays the full per-op
	// overhead). Batching amortizes request generation, which is why a
	// batched client can exceed the paper's closed-loop per-client rate.
	BatchItemOverhead sim.Duration

	// Backoff, when its Base is non-zero, replaces the fixed RetryBackoff
	// pacing with capped exponential backoff plus deterministic jitter and
	// also paces timeout retries (which legacy clients retry immediately).
	// Zero Base keeps the legacy behaviour exactly.
	Backoff BackoffConfig
}

// BackoffConfig tunes capped exponential retry backoff. Delay n is
// Base * Multiplier^n, clamped to Cap, then jittered by a uniform factor in
// [1-JitterFrac, 1+JitterFrac] drawn from the client's private deterministic
// sequence (never the engine RNG, so enabling backoff cannot perturb any
// other random choice in the simulation).
type BackoffConfig struct {
	Base       sim.Duration
	Cap        sim.Duration
	Multiplier float64 // <=1 means 2
	JitterFrac float64
}

// DefaultConfig mirrors the calibrated YCSB client behaviour.
func DefaultConfig() Config {
	return Config{
		RPCTimeout:        1 * sim.Second,
		RetryBackoff:      10 * sim.Millisecond,
		RecoveringBackoff: 50 * sim.Millisecond,
		MaxRetries:        400,
		ReadOverhead:      33 * sim.Microsecond,
		UpdateOverhead:    130 * sim.Microsecond,
		BatchItemOverhead: 2 * sim.Microsecond,
	}
}

// Stats collects client-side measurements.
type Stats struct {
	ReadLatency  *metrics.Histogram // ns
	WriteLatency *metrics.Histogram // ns
	OpsBySecond  metrics.Series     // completed ops per second
	LatSumSecond metrics.Series     // summed latency (ns) per second
	LatCntSecond metrics.Series     // latency samples per second
	Timeouts     metrics.Counter
	Retries      metrics.Counter
	Failures     metrics.Counter
	Ops          metrics.Counter

	// Batch/async accounting.
	BatchRPCs  metrics.Counter // multi-op RPCs issued
	BatchedOps metrics.Counter // items completed through multi-op RPCs
	AsyncOps   metrics.Counter // operations issued through the async API
}

// NewStats returns empty stats.
func NewStats() *Stats {
	return &Stats{ReadLatency: metrics.NewHistogram(), WriteLatency: metrics.NewHistogram()}
}

// Client is one application client bound to a fabric node. Its
// operation core speaks rpc.Caller — the substrate-facing interface —
// rather than the concrete simulated endpoint.
type Client struct {
	eng   *sim.Engine
	ep    rpc.Caller
	coord simnet.NodeID
	cfg   Config

	tablets []wire.Tablet
	stats   *Stats

	// boState drives the backoff jitter sequence: a splitmix64 stream
	// seeded from the client's address, so jitter is deterministic per
	// client and independent of everything else.
	boState uint64
}

// New creates a client attached to the fabric at addr.
func New(e *sim.Engine, net *simnet.Network, addr simnet.NodeID, coord simnet.NodeID, cfg Config) *Client {
	return &Client{
		eng:     e,
		ep:      rpc.NewEndpoint(e, net, addr),
		coord:   coord,
		cfg:     cfg,
		stats:   NewStats(),
		boState: uint64(addr)*0x9E3779B97F4A7C15 + 1,
	}
}

// nextJitter draws the next uniform [0,1) value from the client's private
// jitter stream (splitmix64).
func (c *Client) nextJitter() float64 {
	c.boState += 0x9E3779B97F4A7C15
	z := c.boState
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// backoffDelay returns the n-th (0-based) consecutive-failure delay under
// the capped exponential policy.
func (c *Client) backoffDelay(n int) sim.Duration {
	b := c.cfg.Backoff
	mult := b.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(b.Base)
	for i := 0; i < n; i++ {
		d *= mult
		if b.Cap > 0 && d >= float64(b.Cap) {
			break
		}
	}
	if b.Cap > 0 && d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	if b.JitterFrac > 0 {
		d *= 1 + b.JitterFrac*(2*c.nextJitter()-1)
	}
	if d < 1 {
		d = 1
	}
	return sim.Duration(d)
}

// retryPause sleeps before the next attempt: capped exponential backoff
// when configured, else the legacy fixed RetryBackoff.
func (c *Client) retryPause(p *sim.Proc, fails int) {
	if c.cfg.Backoff.Base > 0 {
		p.Sleep(c.backoffDelay(fails))
		return
	}
	p.Sleep(c.cfg.RetryBackoff)
}

// Stats returns the client's measurement sink.
func (c *Client) Stats() *Stats { return c.stats }

// Addr returns the client's fabric address.
func (c *Client) Addr() simnet.NodeID { return c.ep.Node() }

// SentRPCs returns the number of requests this client has issued on the
// fabric (data plane and tablet-map refreshes alike). Tests use it to
// assert batching actually collapses RPC counts.
func (c *Client) SentRPCs() uint64 { return c.ep.Sent() }

// CreateTable creates (or opens) a table spanning the given number of
// servers.
func (c *Client) CreateTable(p *sim.Proc, name string, serverSpan int) (uint64, error) {
	resp, ok := c.ep.CallTimeout(p, c.coord, &wire.CreateTableReq{Name: name, ServerSpan: uint32(serverSpan)}, c.cfg.RPCTimeout)
	if !ok {
		return 0, ErrUnavailable
	}
	m := resp.(*wire.CreateTableResp)
	if m.Status != wire.StatusOK {
		return 0, fmt.Errorf("client: create table: %v", m.Status)
	}
	c.refreshTablets(p)
	return m.Table, nil
}

// DropTable removes a table.
func (c *Client) DropTable(p *sim.Proc, name string) error {
	resp, ok := c.ep.CallTimeout(p, c.coord, &wire.DropTableReq{Name: name}, c.cfg.RPCTimeout)
	if !ok {
		return ErrUnavailable
	}
	if st := resp.(*wire.DropTableResp).Status; st != wire.StatusOK {
		return fmt.Errorf("client: drop table: %v", st)
	}
	return nil
}

// WarmRoutes fetches the tablet map up front. An async op issued while
// the map is cold starts no RPC until its Wait is driven, so an open-loop
// client that begins issuing against a cold map accumulates hundreds of
// RPC-less operations before the first forced reap warms the map —
// recorded as a spurious quarter-second latency band. Clients that issue
// asynchronously from the first operation warm the map explicitly instead.
func (c *Client) WarmRoutes(p *sim.Proc) { c.refreshTablets(p) }

func (c *Client) refreshTablets(p *sim.Proc) {
	resp, ok := c.ep.CallTimeout(p, c.coord, &wire.GetTabletMapReq{}, c.cfg.RPCTimeout)
	if !ok {
		return
	}
	c.tablets = resp.(*wire.GetTabletMapResp).Tablets
}

// locate returns the master for (table, keyHash).
func (c *Client) locate(table, keyHash uint64) (master simnet.NodeID, recovering, found bool) {
	for i := range c.tablets {
		t := &c.tablets[i]
		if t.Table == table && keyHash >= t.StartHash && keyHash <= t.EndHash {
			return simnet.NodeID(t.Master), t.Recovering, true
		}
	}
	return 0, false, false
}

// record registers a completed op's latency.
func (c *Client) record(start sim.Time, hist *metrics.Histogram) {
	c.recordCompleted(start, c.eng.Now(), hist)
}

// recordCompleted notes an operation that completed (its final response
// arrived) at done but is being observed now. Latency runs from issue to
// completion, so an async op reaped lazily does not accrue the reap
// delay — without this, an open-loop client's measured "latency" at low
// load is just its inter-arrival gap. The per-second series keep
// attributing to the observation instant (identical for synchronous ops,
// where done == now), preserving the established accounting of batched
// and phase-sliced runs.
func (c *Client) recordCompleted(start, done sim.Time, hist *metrics.Histogram) {
	now := c.eng.Now()
	lat := int64(done.Sub(start))
	hist.Record(lat)
	sec := int(int64(now) / int64(sim.Second))
	c.stats.OpsBySecond.Add(sec, 1)
	c.stats.LatSumSecond.Add(sec, float64(lat))
	c.stats.LatCntSecond.Add(sec, 1)
	c.stats.Ops.Inc()
}

// Read fetches a value's declared length (and bytes when real payloads are
// in use). It retries through recoveries and server changes; the recorded
// latency covers the whole operation, retries included.
func (c *Client) Read(p *sim.Proc, table uint64, key []byte) (uint32, []byte, error) {
	var o Op
	c.initOp(p, &o, opRead, table, key, 0, nil, c.cfg.ReadOverhead)
	return o.Wait(p)
}

// Write stores a value (virtual when value is nil: only valueLen crosses
// the simulated wire).
func (c *Client) Write(p *sim.Proc, table uint64, key []byte, valueLen uint32, value []byte) error {
	var o Op
	c.initOp(p, &o, opWrite, table, key, valueLen, value, c.cfg.UpdateOverhead)
	_, _, err := o.Wait(p)
	return err
}

// Delete removes a key.
func (c *Client) Delete(p *sim.Proc, table uint64, key []byte) error {
	var o Op
	c.initOp(p, &o, opDelete, table, key, 0, nil, c.cfg.UpdateOverhead)
	_, _, err := o.Wait(p)
	return err
}
