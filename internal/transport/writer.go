package transport

import (
	"net"
	"sync"
	"time"

	"ramcloud/internal/wire"
)

// connWriter coalesces outbound frames on one socket. Callers encode
// their envelope straight into the pending buffer under a short lock;
// a single flusher goroutine swaps the buffer out and writes it with
// one syscall. Under load many frames accumulate while the previous
// write is in flight, so the syscall cost amortizes across the batch
// (smallbatching: the flush boundary is "whatever queued since the
// last write", with no added latency on an idle connection — the
// flusher is kicked on the first byte and writes immediately).
//
// The first write error poisons the writer and invokes onDead exactly
// once, so a dead socket is torn down instead of accepting more frames
// (the pre-coalescing server dropped WriteFrame errors on the floor and
// kept serving reads until the read side noticed).
type connWriter struct {
	nc net.Conn
	// writeTimeout bounds one flush; a peer that stops reading long
	// enough to stall a flush this long is treated as dead.
	writeTimeout time.Duration
	onDead       func() // called once, off the caller's goroutine

	mu    sync.Mutex
	buf   []byte // frames queued for the next flush
	spare []byte // the previously flushed buffer, recycled
	err   error  // first write error (or ErrClosed); sticky

	kick chan struct{} // buffered(1): "buf is non-empty"
	done chan struct{}
	once sync.Once
}

// maxRetainedWriteBuf caps the coalescing buffers kept across flushes,
// so one jumbo frame doesn't pin megabytes on an idle connection.
const maxRetainedWriteBuf = 1 << 20

func newConnWriter(nc net.Conn, writeTimeout time.Duration, onDead func()) *connWriter {
	w := &connWriter{
		nc:           nc,
		writeTimeout: writeTimeout,
		onDead:       onDead,
		kick:         make(chan struct{}, 1),
		done:         make(chan struct{}),
	}
	go w.loop()
	return w
}

// enqueue encodes one frame into the pending buffer and wakes the
// flusher. It returns the sticky error if the socket already failed:
// the frame is then guaranteed not to have been queued.
func (w *connWriter) enqueue(id uint64, msg wire.Message) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	buf, err := wire.AppendEnvelope(w.buf, wire.Envelope{RPCID: id, Msg: msg})
	if err != nil {
		w.mu.Unlock()
		return err
	}
	w.buf = buf
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default: // flusher already signaled
	}
	return nil
}

// close poisons the writer and stops the flusher. Queued-but-unflushed
// frames are dropped; by the time close runs the socket is being torn
// down and their callers are failing with ErrConnLost anyway.
func (w *connWriter) close() {
	w.mu.Lock()
	if w.err == nil {
		w.err = ErrClosed
	}
	w.mu.Unlock()
	w.once.Do(func() { close(w.done) })
}

func (w *connWriter) loop() {
	for {
		select {
		case <-w.kick:
		case <-w.done:
			return
		}
		for {
			w.mu.Lock()
			if w.err != nil {
				w.mu.Unlock()
				return
			}
			if len(w.buf) == 0 {
				w.mu.Unlock()
				break
			}
			out := w.buf
			w.buf = w.spare[:0]
			w.spare = nil
			w.mu.Unlock()

			if w.writeTimeout > 0 {
				w.nc.SetWriteDeadline(time.Now().Add(w.writeTimeout))
			}
			_, err := w.nc.Write(out)
			if err != nil {
				w.mu.Lock()
				w.err = err
				w.mu.Unlock()
				w.onDead()
				return
			}
			if cap(out) <= maxRetainedWriteBuf {
				w.mu.Lock()
				w.spare = out[:0]
				w.mu.Unlock()
			}
		}
	}
}
