// Package transport abstracts the RPC substrate behind a dial/listen
// interface carrying wire.Message values, with two backends:
//
//   - TCP (tcp.go): real sockets, goroutines and context deadlines.
//     Frames are the self-framing wire.Envelope encoding (frame.go),
//     responses are correlated to requests by RPC id so they may return
//     out of order, connections are reused across calls and redialed
//     with capped backoff after a failure.
//   - simnet (sim.go): the existing simulated fabric adapted behind the
//     same interface. Calls run on a sim.Proc carried in the context,
//     so the deterministic figure path is untouched.
//
// The real backend legitimately uses bare goroutines, wall-clock time
// and OS scheduling; rcvet's determinism analyzers exempt this package
// by scope (internal/analysis/scope), not by per-line suppression.
package transport

import (
	"context"
	"errors"

	"ramcloud/internal/wire"
)

// Transport errors.
var (
	// ErrClosed reports a call on a closed connection or listener.
	ErrClosed = errors.New("transport: closed")
	// ErrConnLost reports an in-flight call whose connection died
	// before the response arrived. The caller cannot know whether the
	// request executed; retry only idempotent operations.
	ErrConnLost = errors.New("transport: connection lost")
)

// Handler services one inbound request. remote identifies the peer (a
// host:port for TCP, a node id for simnet). A nil response drops the
// request without replying — the peer sees a timeout, exactly like a
// lost datagram.
type Handler interface {
	ServeRPC(remote string, msg wire.Message) wire.Message
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(remote string, msg wire.Message) wire.Message

// ServeRPC calls f.
func (f HandlerFunc) ServeRPC(remote string, msg wire.Message) wire.Message {
	return f(remote, msg)
}

// Conn is a client connection to one peer. Calls are safe for
// concurrent use and may complete out of order; each call's deadline
// comes from its context.
type Conn interface {
	// Call sends msg and blocks until its correlated response arrives,
	// the context expires, or the connection fails.
	Call(ctx context.Context, msg wire.Message) (wire.Message, error)
	// Close tears the connection down; in-flight calls fail.
	Close() error
}

// PendingCall is one pipelined in-flight request: the send has been
// queued, the response has not necessarily arrived.
type PendingCall interface {
	// Wait blocks until the correlated response arrives, the context
	// expires, or the connection fails. It must be called exactly once.
	Wait(ctx context.Context) (wire.Message, error)
}

// Starter is implemented by connections that support pipelining: many
// requests in flight on one connection without a goroutine per call.
// The TCP backend implements it; callers should type-assert and fall
// back to a goroutine around Call when the substrate doesn't.
type Starter interface {
	// Start queues msg and returns without waiting for the response.
	Start(ctx context.Context, msg wire.Message) (PendingCall, error)
}

// Listener is a bound service endpoint.
type Listener interface {
	// Addr returns the bound address in the transport's dial format.
	Addr() string
	// Close stops accepting and severs established connections.
	Close() error
}

// Interface is the substrate: dial peers, host services.
type Interface interface {
	Dial(addr string) (Conn, error)
	Listen(addr string, h Handler) (Listener, error)
}
