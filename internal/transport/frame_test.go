package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"ramcloud/internal/wire"
)

func frameBytes(t *testing.T, env wire.Envelope) []byte {
	t.Helper()
	b, err := wire.Marshal(env)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func TestFrameRoundTrip(t *testing.T) {
	msgs := []wire.Message{
		&wire.PingReq{},
		&wire.ReadReq{Table: 3, Key: []byte("user0000000042")},
		&wire.WriteResp{Status: wire.StatusOK, Version: 9},
		&wire.ServerListResp{Status: wire.StatusOK, Servers: []wire.ServerAddr{{ID: 1, Addr: "127.0.0.1:4242"}}},
	}
	var buf bytes.Buffer
	for i, m := range msgs {
		if err := WriteFrame(&buf, wire.Envelope{RPCID: uint64(i + 1), Msg: m}); err != nil {
			t.Fatalf("write frame %d: %v", i, err)
		}
	}
	for i, m := range msgs {
		env, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if env.RPCID != uint64(i+1) {
			t.Fatalf("frame %d: rpc id %d, want %d", i, env.RPCID, i+1)
		}
		got, err := wire.Marshal(env)
		if err != nil {
			t.Fatalf("re-marshal frame %d: %v", i, err)
		}
		want := frameBytes(t, wire.Envelope{RPCID: uint64(i + 1), Msg: m})
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d did not round-trip", i)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("exhausted stream: got %v, want io.EOF", err)
	}
}

func TestFrameTornReads(t *testing.T) {
	full := frameBytes(t, wire.Envelope{RPCID: 7, Msg: &wire.ReadReq{Table: 1, Key: []byte("k")}})
	for cut := 1; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d/%d: got %v, want io.ErrUnexpectedEOF", cut, len(full), err)
		}
	}
}

func TestFrameHostileLength(t *testing.T) {
	full := frameBytes(t, wire.Envelope{RPCID: 1, Msg: &wire.PingReq{}})

	// Length field claiming a multi-gigabyte frame must be rejected
	// before any allocation sized by it.
	huge := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(huge[9:13], 0xFFFF_FFF0)
	if _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, wire.ErrTooLarge) {
		t.Fatalf("huge length: got %v, want wire.ErrTooLarge", err)
	}

	// Length shorter than the header itself.
	tiny := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(tiny[9:13], wire.HeaderSize-1)
	if _, err := ReadFrame(bytes.NewReader(tiny)); !errors.Is(err, wire.ErrBadLength) {
		t.Fatalf("tiny length: got %v, want wire.ErrBadLength", err)
	}

	// Zero length.
	zero := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(zero[9:13], 0)
	if _, err := ReadFrame(bytes.NewReader(zero)); !errors.Is(err, wire.ErrBadLength) {
		t.Fatalf("zero length: got %v, want wire.ErrBadLength", err)
	}
}

func TestFrameGarbageAfterValidEnvelope(t *testing.T) {
	valid := frameBytes(t, wire.Envelope{RPCID: 3, Msg: &wire.DeleteReq{Table: 2, Key: []byte("gone")}})
	stream := append(append([]byte(nil), valid...), 0xDE, 0xAD, 0xBE)
	r := bytes.NewReader(stream)
	env, err := ReadFrame(r)
	if err != nil {
		t.Fatalf("valid prefix: %v", err)
	}
	if env.RPCID != 3 {
		t.Fatalf("rpc id %d, want 3", env.RPCID)
	}
	// The trailing garbage is shorter than a header: torn, not EOF.
	if _, err := ReadFrame(r); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("trailing garbage: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestFrameUnknownOpcode(t *testing.T) {
	full := frameBytes(t, wire.Envelope{RPCID: 1, Msg: &wire.PingReq{}})
	bad := append([]byte(nil), full...)
	bad[0] = 0xFF
	if _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Fatal("unknown opcode decoded successfully")
	}
}
