package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ramcloud/internal/wire"
)

// echoHandler answers ReadReq with a ReadResp carrying the key back as
// the value; everything else gets a StatusRetry ping.
func echoHandler() Handler {
	return HandlerFunc(func(remote string, msg wire.Message) wire.Message {
		if r, ok := msg.(*wire.ReadReq); ok {
			return &wire.ReadResp{Status: wire.StatusOK, Value: append([]byte(nil), r.Key...), ValueLen: uint32(len(r.Key))}
		}
		return &wire.PingResp{}
	})
}

func TestTCPEcho(t *testing.T) {
	tr := &TCP{}
	ln, err := tr.Listen("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	conn, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		key := []byte{byte('a' + i)}
		resp, err := conn.Call(ctx, &wire.ReadReq{Table: 1, Key: key})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		rr, ok := resp.(*wire.ReadResp)
		if !ok || string(rr.Value) != string(key) {
			t.Fatalf("call %d: bad echo %#v", i, resp)
		}
	}
}

// TestTCPOutOfOrder proves responses are correlated by RPC id, not
// arrival order: a slow request issued first must not delay or corrupt a
// fast one issued after it on the same connection.
func TestTCPOutOfOrder(t *testing.T) {
	release := make(chan struct{})
	h := HandlerFunc(func(remote string, msg wire.Message) wire.Message {
		r := msg.(*wire.ReadReq)
		if string(r.Key) == "slow" {
			<-release
		}
		return &wire.ReadResp{Status: wire.StatusOK, Value: append([]byte(nil), r.Key...), ValueLen: uint32(len(r.Key))}
	})
	tr := &TCP{}
	ln, err := tr.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	conn, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	slowDone := make(chan error, 1)
	go func() {
		defer wg.Done()
		resp, err := conn.Call(ctx, &wire.ReadReq{Table: 1, Key: []byte("slow")})
		if err == nil {
			if string(resp.(*wire.ReadResp).Value) != "slow" {
				err = errors.New("slow call got wrong value")
			}
		}
		slowDone <- err
	}()

	// The fast call completes while the slow one is still parked.
	resp, err := conn.Call(ctx, &wire.ReadReq{Table: 1, Key: []byte("fast")})
	if err != nil {
		t.Fatalf("fast call: %v", err)
	}
	if string(resp.(*wire.ReadResp).Value) != "fast" {
		t.Fatalf("fast call got %q", resp.(*wire.ReadResp).Value)
	}

	close(release)
	wg.Wait()
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

func TestTCPDeadline(t *testing.T) {
	// Handler that never replies: the caller's context deadline must fire.
	h := HandlerFunc(func(remote string, msg wire.Message) wire.Message { return nil })
	tr := &TCP{}
	ln, err := tr.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	conn, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = conn.Call(ctx, &wire.PingReq{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestTCPReconnect kills the listener mid-session and restarts it on the
// same port: the same Conn must fail fast on the dead socket, then
// transparently redial and succeed once the service is back.
func TestTCPReconnect(t *testing.T) {
	tr := &TCP{RedialBase: 5 * time.Millisecond, RedialCap: 50 * time.Millisecond}
	ln, err := tr.Listen("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr()
	conn, err := tr.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := conn.Call(ctx, &wire.ReadReq{Table: 1, Key: []byte("x")}); err != nil {
		t.Fatalf("warm call: %v", err)
	}

	ln.Close()

	// Calls while the service is down fail (conn lost or dial refused) —
	// they must not hang.
	failCtx, failCancel := context.WithTimeout(context.Background(), 2*time.Second)
	_, err = conn.Call(failCtx, &wire.ReadReq{Table: 1, Key: []byte("down")})
	failCancel()
	if err == nil {
		t.Fatal("call against dead listener succeeded")
	}

	ln2, err := tr.Listen(addr, echoHandler())
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	defer ln2.Close()

	// The same Conn recovers without any explicit reset. Allow a few
	// attempts for the backoff gate to expire.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := conn.Call(ctx, &wire.ReadReq{Table: 1, Key: []byte("back")})
		if err == nil {
			if string(resp.(*wire.ReadResp).Value) != "back" {
				t.Fatalf("post-reconnect echo got %q", resp.(*wire.ReadResp).Value)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("conn never recovered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTCPClosedConn(t *testing.T) {
	tr := &TCP{}
	ln, err := tr.Listen("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	conn, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	conn.Close()
	_, err = conn.Call(context.Background(), &wire.PingReq{})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// TestTCPFlusherStressTeardown hammers one Conn with a mix of
// synchronous Calls and pipelined Start/Wait windows while the listener
// is repeatedly killed and restarted on the same port. This is the
// -race soak for the coalescing writer: enqueues racing a mid-flight
// teardown, waiter slots recycling through the pool across ErrConnLost
// deliveries, and ctx-deadline deregistration racing the read loop.
// Every call must terminate — with a correctly-correlated echo or a
// connection-level error — and the Conn must still work afterwards.
func TestTCPFlusherStressTeardown(t *testing.T) {
	tr := &TCP{
		RedialBase:   time.Millisecond,
		RedialCap:    20 * time.Millisecond,
		FlushTimeout: 2 * time.Second,
	}
	ln, err := tr.Listen("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr()
	conn, err := tr.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	st := conn.(Starter)

	// Chaos: bounce the listener a few times while callers are active,
	// leaving the final incarnation up so callers can drain successfully.
	finalLn := make(chan Listener, 1)
	go func() {
		cur := ln
		for i := 0; i < 5; i++ {
			time.Sleep(15 * time.Millisecond)
			cur.Close()
			for {
				next, err := tr.Listen(addr, echoHandler())
				if err == nil {
					cur = next
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
		finalLn <- cur
	}()

	var wg sync.WaitGroup
	fatal := make(chan error, 64)
	check := func(key []byte, resp wire.Message, err error) {
		if err != nil {
			return // conn lost / deadline / dial refused: legal under chaos
		}
		rr, ok := resp.(*wire.ReadResp)
		if !ok || string(rr.Value) != string(key) {
			fatal <- errors.New("cross-correlated or corrupt response under teardown")
		}
	}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				if i%3 == 0 {
					// Pipelined window of 4 on the shared flusher.
					type issued struct {
						pc  PendingCall
						key []byte
					}
					win := make([]issued, 0, 4)
					for j := 0; j < 4; j++ {
						key := []byte{byte(g), byte(i), byte(j)}
						pc, err := st.Start(ctx, &wire.ReadReq{Table: 1, Key: key})
						if err != nil {
							continue
						}
						win = append(win, issued{pc, key})
					}
					for _, is := range win {
						resp, err := is.pc.Wait(ctx)
						check(is.key, resp, err)
					}
				} else {
					key := []byte{byte(g), byte(i), 0xff}
					resp, err := conn.Call(ctx, &wire.ReadReq{Table: 1, Key: key})
					check(key, resp, err)
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()
	defer func() { (<-finalLn).Close() }()
	close(fatal)
	for err := range fatal {
		t.Fatal(err)
	}

	// The Conn must recover against the final listener.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		resp, err := conn.Call(ctx, &wire.ReadReq{Table: 1, Key: []byte("alive")})
		cancel()
		if err == nil {
			if string(resp.(*wire.ReadResp).Value) != "alive" {
				t.Fatalf("post-chaos echo got %q", resp.(*wire.ReadResp).Value)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("conn never recovered after chaos: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTCPConcurrentCalls hammers one Conn from many goroutines; under
// -race this doubles as the data-race check on the correlation table.
func TestTCPConcurrentCalls(t *testing.T) {
	tr := &TCP{}
	ln, err := tr.Listen("127.0.0.1:0", echoHandler())
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	conn, err := tr.Dial(ln.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := []byte{byte(g), byte(i)}
				resp, err := conn.Call(ctx, &wire.ReadReq{Table: 1, Key: key})
				if err != nil {
					errs <- err
					return
				}
				if string(resp.(*wire.ReadResp).Value) != string(key) {
					errs <- errors.New("cross-correlated response")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
