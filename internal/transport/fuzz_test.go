package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"ramcloud/internal/wire"
)

// FuzzFrame throws arbitrary byte streams at the frame reader. The
// invariants: no panic, no runaway allocation (a hostile length field is
// bounded by MaxEnvelopeSize before make), and any frame that decodes
// successfully re-marshals byte-identically — so an attacker cannot craft
// two distinct byte strings the reader conflates.
func FuzzFrame(f *testing.F) {
	seed := func(env wire.Envelope) []byte {
		b, err := wire.Marshal(env)
		if err != nil {
			f.Fatalf("seed marshal: %v", err)
		}
		return b
	}
	valid := seed(wire.Envelope{RPCID: 1, Msg: &wire.ReadReq{Table: 1, Key: []byte("user0000000001")}})
	f.Add(valid)
	f.Add(seed(wire.Envelope{RPCID: 99, Msg: &wire.ServerListResp{Status: wire.StatusOK, Servers: []wire.ServerAddr{{ID: 2, Addr: "127.0.0.1:1"}}}}))
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add(valid[:7])                           // torn header
	f.Add(valid[:len(valid)-1])                // torn body
	f.Add(append(append([]byte{}, valid...), valid...)) // two frames back to back
	f.Add(append(append([]byte{}, valid...), 0xFF, 0x00, 0x13)) // garbage tail
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[9:13], 0xFFFFFFFE) // hostile length
	f.Add(huge)
	zero := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(zero[9:13], 0) // zero length
	f.Add(zero)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			env, err := ReadFrame(r)
			if err != nil {
				if err == io.EOF {
					return // clean boundary
				}
				// Every failure must be a typed decode error or a torn
				// read — never a panic (implicit) and never success with
				// garbage attached.
				if !errors.Is(err, io.ErrUnexpectedEOF) &&
					!errors.Is(err, wire.ErrTooLarge) &&
					!errors.Is(err, wire.ErrBadLength) &&
					!errors.Is(err, wire.ErrTruncated) &&
					!errors.Is(err, wire.ErrUnknownOp) {
					t.Fatalf("untyped frame error: %v", err)
				}
				return
			}
			// Accepted frames must survive a marshal round trip.
			b, err := wire.Marshal(env)
			if err != nil {
				t.Fatalf("accepted frame does not re-marshal: %v", err)
			}
			env2, err := wire.Unmarshal(b)
			if err != nil {
				t.Fatalf("re-marshaled frame does not decode: %v", err)
			}
			b2, err := wire.Marshal(env2)
			if err != nil || !bytes.Equal(b, b2) {
				t.Fatal("marshal/unmarshal not a fixed point")
			}
		}
	})
}
