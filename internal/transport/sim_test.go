package transport

import (
	"context"
	"errors"
	"testing"

	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// TestSimConformance runs the same request/response conversation the TCP
// tests run, through the sim backend: dial by node id, out-of-order
// completion, timeout on a silent handler. The two backends must present
// identical semantics at the Interface seam.
func TestSimConformance(t *testing.T) {
	e := sim.New(1)
	n := simnet.New(e, simnet.Config{PropagationDelay: 2 * sim.Microsecond, Bandwidth: 1e9})
	tr := &Sim{Eng: e, Net: n, CallTimeout: 10 * sim.Millisecond}

	_, err := tr.Listen("7", echoHandler())
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	// A second service that never replies, for the timeout leg.
	if _, err := tr.Listen("8", HandlerFunc(func(string, wire.Message) wire.Message { return nil })); err != nil {
		t.Fatalf("listen silent: %v", err)
	}

	conn, err := tr.Dial("7")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	silent, err := tr.Dial("8")
	if err != nil {
		t.Fatalf("dial silent: %v", err)
	}

	var echoErr, timeoutErr error
	var echoed string
	e.Go("caller", func(p *sim.Proc) {
		ctx := WithProc(context.Background(), p)
		resp, err := conn.Call(ctx, &wire.ReadReq{Table: 1, Key: []byte("sim")})
		if err != nil {
			echoErr = err
			return
		}
		echoed = string(resp.(*wire.ReadResp).Value)
		_, timeoutErr = silent.Call(ctx, &wire.PingReq{})
	})
	e.Run()
	e.Shutdown()

	if echoErr != nil {
		t.Fatalf("echo: %v", echoErr)
	}
	if echoed != "sim" {
		t.Fatalf("echo got %q", echoed)
	}
	if !errors.Is(timeoutErr, context.DeadlineExceeded) {
		t.Fatalf("silent peer: got %v, want context.DeadlineExceeded", timeoutErr)
	}
}

func TestSimCallWithoutProc(t *testing.T) {
	e := sim.New(1)
	n := simnet.New(e, simnet.Config{PropagationDelay: sim.Microsecond, Bandwidth: 1e9})
	tr := &Sim{Eng: e, Net: n}
	conn, err := tr.Dial("5")
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := conn.Call(context.Background(), &wire.PingReq{}); err == nil {
		t.Fatal("call without WithProc succeeded")
	}
}

func TestSimBadAddress(t *testing.T) {
	tr := &Sim{}
	if _, err := tr.Dial("not-a-node"); err == nil {
		t.Fatal("dial of non-numeric sim address succeeded")
	}
}
