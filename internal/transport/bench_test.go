package transport

import (
	"context"
	"testing"
	"time"

	"ramcloud/internal/wire"
)

// Loopback micro-benchmarks for the real TCP path. These quantify the
// fast-path work per RPC — framing, coalescing, correlation, dispatch —
// with allocs/op as the regression canary (BENCH_10.json records the
// before/after). The handler answers reads with a fixed 8-byte value.

var benchValue = []byte("8bytesXY")

func benchServer(b *testing.B) (Conn, func()) {
	b.Helper()
	tr := &TCP{}
	ln, err := tr.Listen("127.0.0.1:0", HandlerFunc(func(remote string, msg wire.Message) wire.Message {
		switch m := msg.(type) {
		case *wire.ReadReq:
			return &wire.ReadResp{Status: wire.StatusOK, Version: 1, ValueLen: 8, Value: benchValue}
		case *wire.MultiReadReq:
			items := make([]wire.MultiReadResult, len(m.Items))
			for i := range items {
				items[i] = wire.MultiReadResult{Status: wire.StatusOK, Version: 1, ValueLen: 8, Value: benchValue}
			}
			return &wire.MultiReadResp{Status: wire.StatusOK, Items: items}
		default:
			return &wire.PingResp{}
		}
	}))
	if err != nil {
		b.Fatalf("listen: %v", err)
	}
	conn, err := tr.Dial(ln.Addr())
	if err != nil {
		b.Fatalf("dial: %v", err)
	}
	return conn, func() { conn.Close(); ln.Close() }
}

// BenchmarkTCPCall is one synchronous request-response at a time: the
// latency floor of the real path.
func BenchmarkTCPCall(b *testing.B) {
	conn, done := benchServer(b)
	defer done()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	req := &wire.ReadReq{Table: 1, Key: []byte("user0000000042")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Call(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPPipelined keeps a 16-deep window of Start()ed calls in
// flight on one connection — the coalescing flusher batches their
// frames into shared writes, so this is the throughput configuration.
func BenchmarkTCPPipelined(b *testing.B) {
	conn, done := benchServer(b)
	defer done()
	st, ok := conn.(Starter)
	if !ok {
		b.Fatal("TCP conn does not implement Starter")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	req := &wire.ReadReq{Table: 1, Key: []byte("user0000000042")}
	const window = 16
	ring := make([]PendingCall, 0, window)
	head := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ring)-head == window {
			if _, err := ring[head].Wait(ctx); err != nil {
				b.Fatal(err)
			}
			head++
			if head == len(ring) {
				ring = ring[:0]
				head = 0
			}
		}
		p, err := st.Start(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		ring = append(ring, p)
	}
	for ; head < len(ring); head++ {
		if _, err := ring[head].Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPMultiRead amortizes one RPC over a 16-item batch;
// per-item cost is ns/op divided by 16.
func BenchmarkTCPMultiRead(b *testing.B) {
	conn, done := benchServer(b)
	defer done()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	const batch = 16
	items := make([]wire.MultiReadItem, batch)
	for i := range items {
		items[i] = wire.MultiReadItem{Table: 1, Key: []byte("user0000000042")}
	}
	req := &wire.MultiReadReq{Items: items}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Call(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
