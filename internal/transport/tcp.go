package transport

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"ramcloud/internal/wire"
)

// TCP is the real-socket backend. The zero value is usable; the fields
// tune connection management.
type TCP struct {
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// RedialBase is the pause after the first failed attempt; each
	// consecutive failure doubles it up to RedialCap. Defaults 50ms / 2s.
	RedialBase time.Duration
	RedialCap  time.Duration
	// FlushTimeout bounds one coalesced write; a peer that stalls a
	// flush this long is treated as dead. Default 30s.
	FlushTimeout time.Duration
	// Workers bounds the per-listener dispatch pool. Default
	// 8*GOMAXPROCS clamped to [8, 64]. When every worker is busy the
	// reader goroutine serves overflow requests inline, so a request
	// flood degrades into backpressure instead of a goroutine per
	// request.
	Workers int
}

func (t *TCP) dialTimeout() time.Duration {
	if t.DialTimeout > 0 {
		return t.DialTimeout
	}
	return 2 * time.Second
}

func (t *TCP) redialBase() time.Duration {
	if t.RedialBase > 0 {
		return t.RedialBase
	}
	return 50 * time.Millisecond
}

func (t *TCP) redialCap() time.Duration {
	if t.RedialCap > 0 {
		return t.RedialCap
	}
	return 2 * time.Second
}

func (t *TCP) flushTimeout() time.Duration {
	if t.FlushTimeout > 0 {
		return t.FlushTimeout
	}
	return 30 * time.Second
}

func (t *TCP) workers() int {
	if t.Workers > 0 {
		return t.Workers
	}
	n := 8 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	if n > 64 {
		n = 64
	}
	return n
}

// waiter is one pending-call slot: the buffered channel a response (or
// the nil that reports connection loss) is delivered on, plus the
// conn/id pair needed to deregister on a deadline. It doubles as the
// PendingCall handed back by Start, so the whole in-flight bookkeeping
// for one RPC is a single pooled object — the pre-pooling transport
// allocated a fresh channel AND a call struct per RPC. The protocol
// guarantees exactly one send per slot taken out of the pending map by
// the read loop or teardown, so a slot is back in the pool as soon as
// its call resolves.
type waiter struct {
	ch chan wire.Message
	c  *tcpConn
	id uint64
}

var waiterPool = sync.Pool{
	New: func() any { return &waiter{ch: make(chan wire.Message, 1)} },
}

// Dial returns a connection to addr. The socket is established lazily
// on the first Call and re-established transparently (with capped
// exponential backoff) after failures, so a Conn survives a peer
// restart.
func (t *TCP) Dial(addr string) (Conn, error) {
	return &tcpConn{tr: t, addr: addr, pending: make(map[uint64]*waiter)}, nil
}

// tcpConn is one logical client connection: a socket that is redialed
// as needed, its coalescing writer, and the RPC-id correlation table.
type tcpConn struct {
	tr   *TCP
	addr string

	mu        sync.Mutex
	nc        net.Conn    // nil while down
	w         *connWriter // writer for the current socket generation
	pending   map[uint64]*waiter
	nextID    uint64
	fails     int       // consecutive failed dials, drives backoff
	notBefore time.Time // no redial attempt before this instant
	closed    bool
}

// ensure returns the current socket generation's writer, dialing (with
// the backoff gate) if the connection is down. Callers must NOT hold
// c.mu.
func (c *tcpConn) ensure(ctx context.Context) (*connWriter, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		if c.nc != nil {
			w := c.w
			c.mu.Unlock()
			return w, nil
		}
		if wait := time.Until(c.notBefore); wait > 0 {
			c.mu.Unlock()
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			c.mu.Lock()
			continue
		}
		// Dial under the lock: concurrent callers queue behind one
		// attempt instead of racing several sockets. The attempt is
		// bounded by DialTimeout.
		nc, err := net.DialTimeout("tcp", c.addr, c.tr.dialTimeout())
		if err != nil {
			backoff := c.tr.redialBase() << c.fails
			if limit := c.tr.redialCap(); backoff > limit || backoff <= 0 {
				backoff = limit
			}
			if c.fails < 30 {
				c.fails++
			}
			c.notBefore = time.Now().Add(backoff)
			c.mu.Unlock()
			return nil, fmt.Errorf("transport: dial %s: %w", c.addr, err)
		}
		c.fails = 0
		c.nc = nc
		c.w = newConnWriter(nc, c.tr.flushTimeout(), func() { c.teardown(nc) })
		go c.readLoop(nc)
		c.mu.Unlock()
		return c.w, nil
	}
}

// readLoop drains response frames from one socket generation and
// resolves pending calls by RPC id. Any read or decode error retires
// the socket: every call still pending on it fails with ErrConnLost,
// and the next Call redials.
func (c *tcpConn) readLoop(nc net.Conn) {
	br := bufio.NewReaderSize(nc, 64<<10)
	for {
		env, err := ReadFrame(br)
		if err != nil {
			c.teardown(nc)
			return
		}
		c.mu.Lock()
		w, ok := c.pending[env.RPCID]
		if ok {
			delete(c.pending, env.RPCID)
		}
		c.mu.Unlock()
		if ok {
			w.ch <- env.Msg // buffered; never blocks
		}
		// Unknown id: a response that outlived its caller's deadline.
		// Dropped, exactly like the simulated endpoint does.
	}
}

// teardown retires one socket generation, failing its pending calls
// with a nil delivery (the waiter-pool analogue of a closed channel).
func (c *tcpConn) teardown(nc net.Conn) {
	nc.Close()
	c.mu.Lock()
	var w *connWriter
	var failed []*waiter
	if c.nc == nc {
		c.nc = nil
		w = c.w
		c.w = nil
		c.notBefore = time.Now().Add(c.tr.redialBase())
		failed = make([]*waiter, 0, len(c.pending))
		for id, pw := range c.pending {
			delete(c.pending, id)
			failed = append(failed, pw)
		}
	}
	c.mu.Unlock()
	if w != nil {
		w.close()
	}
	for _, pw := range failed {
		pw.ch <- nil
	}
}

// Start implements Starter: it queues msg for the coalesced flush and
// returns immediately, so a caller can keep a window of requests in
// flight on one connection without a goroutine per call.
func (c *tcpConn) Start(ctx context.Context, msg wire.Message) (PendingCall, error) {
	w, err := c.ensure(ctx)
	if err != nil {
		return nil, err
	}
	pw := waiterPool.Get().(*waiter)
	pw.c = c
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	pw.id = id
	c.pending[id] = pw
	c.mu.Unlock()

	if err := w.enqueue(id, msg); err != nil {
		// Writer already poisoned: the frame was never queued. Remove
		// the slot if teardown hasn't already claimed it.
		c.mu.Lock()
		if c.pending[id] == pw {
			delete(c.pending, id)
			c.mu.Unlock()
			waiterPool.Put(pw)
		} else {
			c.mu.Unlock()
			<-pw.ch // teardown's nil delivery is guaranteed
			waiterPool.Put(pw)
		}
		return nil, fmt.Errorf("%w: write: %v", ErrConnLost, err)
	}
	return pw, nil
}

// Wait implements PendingCall. It may be called at most once: resolving
// returns the slot to the pool.
func (p *waiter) Wait(ctx context.Context) (wire.Message, error) {
	select {
	case msg := <-p.ch:
		waiterPool.Put(p)
		if msg == nil {
			return nil, ErrConnLost
		}
		return msg, nil
	case <-ctx.Done():
		c := p.c
		c.mu.Lock()
		if c.pending[p.id] == p {
			// Still registered: deregister, nobody will ever send.
			delete(c.pending, p.id)
			c.mu.Unlock()
			waiterPool.Put(p)
			return nil, ctx.Err()
		}
		c.mu.Unlock()
		// The read loop or teardown claimed the slot between the
		// deadline firing and the delete: its single send is in flight
		// on a buffered channel, so this receive cannot block.
		msg := <-p.ch
		waiterPool.Put(p)
		if msg == nil {
			return nil, ErrConnLost
		}
		return msg, nil // response beat the deadline; deliver it
	}
}

// Call implements Conn.
func (c *tcpConn) Call(ctx context.Context, msg wire.Message) (wire.Message, error) {
	p, err := c.Start(ctx, msg)
	if err != nil {
		return nil, err
	}
	return p.Wait(ctx)
}

// Close implements Conn.
func (c *tcpConn) Close() error {
	c.mu.Lock()
	c.closed = true
	nc := c.nc
	c.mu.Unlock()
	if nc != nil {
		c.teardown(nc)
	}
	return nil
}

// Listen implements Interface: it binds addr (":0" allocates a port)
// and services each accepted connection with one reader goroutine
// feeding a listener-wide bounded worker pool. Responses are coalesced
// per connection by connWriter, and the first write error tears the
// connection down. Pings are answered inline on the reader goroutine
// (they never block), and when every pool worker is busy the reader
// serves overflow requests inline too — bounded backpressure instead
// of a goroutine per request. A torn or hostile frame closes that
// connection (log-and-drop); well-behaved peers redial.
func (t *TCP) Listen(addr string, h Handler) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &tcpListener{
		ln:    ln,
		h:     h,
		tr:    t,
		conns: make(map[net.Conn]struct{}),
		work:  make(chan srvReq, 4*t.workers()),
		done:  make(chan struct{}),
	}
	for i := 0; i < t.workers(); i++ {
		go l.worker()
	}
	go l.acceptLoop()
	return l, nil
}

type tcpListener struct {
	ln net.Listener
	h  Handler
	tr *TCP

	work chan srvReq
	done chan struct{}

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// srvReq is one decoded request awaiting dispatch.
type srvReq struct {
	sc  *srvConn
	env wire.Envelope
}

// srvConn is the server side of one accepted connection: the socket
// plus its coalescing writer.
type srvConn struct {
	nc     net.Conn
	w      *connWriter
	remote string
}

// Addr implements Listener.
func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

// Close implements Listener: stops accepting, retires the worker pool
// and severs every established connection, so in-flight peers observe
// the failure immediately (the loopback kill test depends on this).
func (l *tcpListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	conns := make([]net.Conn, 0, len(l.conns))
	for nc := range l.conns {
		conns = append(conns, nc)
	}
	l.mu.Unlock()
	close(l.done)
	err := l.ln.Close()
	for _, nc := range conns {
		nc.Close()
	}
	return err
}

func (l *tcpListener) acceptLoop() {
	for {
		nc, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			nc.Close()
			return
		}
		l.conns[nc] = struct{}{}
		l.mu.Unlock()
		go l.serveConn(nc)
	}
}

// worker drains the shared dispatch queue until the listener closes.
func (l *tcpListener) worker() {
	for {
		select {
		case req := <-l.work:
			l.serve(req)
		case <-l.done:
			return
		}
	}
}

// serve runs one request through the handler and queues the response on
// the connection's coalescing writer. Enqueue errors mean the socket
// already failed and teardown is underway; the response is dropped like
// the request never arrived.
func (l *tcpListener) serve(req srvReq) {
	resp := l.h.ServeRPC(req.sc.remote, req.env.Msg)
	if resp == nil {
		return
	}
	_ = req.sc.w.enqueue(req.env.RPCID, resp)
}

func (l *tcpListener) serveConn(nc net.Conn) {
	sc := &srvConn{
		nc:     nc,
		remote: nc.RemoteAddr().String(),
	}
	// The first write error closes the socket, which fails the read
	// loop below and tears the whole connection down — a dead peer
	// stops consuming cycles instead of accumulating doomed responses.
	sc.w = newConnWriter(nc, l.tr.flushTimeout(), func() { nc.Close() })
	defer func() {
		l.mu.Lock()
		delete(l.conns, nc)
		l.mu.Unlock()
		sc.w.close()
		nc.Close()
	}()
	br := bufio.NewReaderSize(nc, 64<<10)
	for {
		env, err := ReadFrame(br)
		if err != nil {
			return // torn/hostile frame or peer hangup: drop the connection
		}
		if _, ok := env.Msg.(*wire.PingReq); ok {
			// Fast path: failure-detector probes are answered inline —
			// a ping must not queue behind a flood of data requests.
			l.serve(srvReq{sc: sc, env: env})
			continue
		}
		select {
		case l.work <- srvReq{sc: sc, env: env}:
		default:
			// Pool saturated: serve inline on the reader goroutine.
			// This bounds concurrency at workers + connections and
			// applies natural backpressure to the flooding peer.
			l.serve(srvReq{sc: sc, env: env})
		}
	}
}
