package transport

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"ramcloud/internal/wire"
)

// TCP is the real-socket backend. The zero value is usable; the fields
// tune connection management.
type TCP struct {
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// RedialBase is the pause after the first failed attempt; each
	// consecutive failure doubles it up to RedialCap. Defaults 50ms / 2s.
	RedialBase time.Duration
	RedialCap  time.Duration
}

func (t *TCP) dialTimeout() time.Duration {
	if t.DialTimeout > 0 {
		return t.DialTimeout
	}
	return 2 * time.Second
}

func (t *TCP) redialBase() time.Duration {
	if t.RedialBase > 0 {
		return t.RedialBase
	}
	return 50 * time.Millisecond
}

func (t *TCP) redialCap() time.Duration {
	if t.RedialCap > 0 {
		return t.RedialCap
	}
	return 2 * time.Second
}

// Dial returns a connection to addr. The socket is established lazily
// on the first Call and re-established transparently (with capped
// exponential backoff) after failures, so a Conn survives a peer
// restart.
func (t *TCP) Dial(addr string) (Conn, error) {
	return &tcpConn{tr: t, addr: addr, pending: make(map[uint64]chan wire.Message)}, nil
}

// tcpConn is one logical client connection: a socket that is redialed
// as needed plus the RPC-id correlation table.
type tcpConn struct {
	tr   *TCP
	addr string

	mu        sync.Mutex
	nc        net.Conn // nil while down
	pending   map[uint64]chan wire.Message
	nextID    uint64
	fails     int       // consecutive failed dials, drives backoff
	notBefore time.Time // no redial attempt before this instant
	closed    bool

	wmu sync.Mutex // serializes frame writes on nc
}

// ensure returns a live socket, dialing (with the backoff gate) if the
// connection is down. Callers must NOT hold c.mu.
func (c *tcpConn) ensure(ctx context.Context) (net.Conn, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		if c.nc != nil {
			nc := c.nc
			c.mu.Unlock()
			return nc, nil
		}
		if wait := time.Until(c.notBefore); wait > 0 {
			c.mu.Unlock()
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			c.mu.Lock()
			continue
		}
		// Dial under the lock: concurrent callers queue behind one
		// attempt instead of racing several sockets. The attempt is
		// bounded by DialTimeout.
		nc, err := net.DialTimeout("tcp", c.addr, c.tr.dialTimeout())
		if err != nil {
			backoff := c.tr.redialBase() << c.fails
			if limit := c.tr.redialCap(); backoff > limit || backoff <= 0 {
				backoff = limit
			}
			if c.fails < 30 {
				c.fails++
			}
			c.notBefore = time.Now().Add(backoff)
			c.mu.Unlock()
			return nil, fmt.Errorf("transport: dial %s: %w", c.addr, err)
		}
		c.fails = 0
		c.nc = nc
		go c.readLoop(nc)
		c.mu.Unlock()
		return nc, nil
	}
}

// readLoop drains response frames from one socket generation and
// resolves pending calls by RPC id. Any read or decode error retires
// the socket: every call still pending on it fails with ErrConnLost,
// and the next Call redials.
func (c *tcpConn) readLoop(nc net.Conn) {
	br := bufio.NewReaderSize(nc, 64<<10)
	for {
		env, err := ReadFrame(br)
		if err != nil {
			c.teardown(nc)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[env.RPCID]
		if ok {
			delete(c.pending, env.RPCID)
		}
		c.mu.Unlock()
		if ok {
			ch <- env.Msg // buffered; never blocks
		}
		// Unknown id: a response that outlived its caller's deadline.
		// Dropped, exactly like the simulated endpoint does.
	}
}

// teardown retires one socket generation, failing its pending calls.
func (c *tcpConn) teardown(nc net.Conn) {
	nc.Close()
	c.mu.Lock()
	if c.nc == nc {
		c.nc = nil
		c.notBefore = time.Now().Add(c.tr.redialBase())
		for id, ch := range c.pending {
			delete(c.pending, id)
			close(ch)
		}
	}
	c.mu.Unlock()
}

// Call implements Conn.
func (c *tcpConn) Call(ctx context.Context, msg wire.Message) (wire.Message, error) {
	nc, err := c.ensure(ctx)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	ch := make(chan wire.Message, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	if deadline, ok := ctx.Deadline(); ok {
		nc.SetWriteDeadline(deadline)
	} else {
		nc.SetWriteDeadline(time.Time{})
	}
	err = WriteFrame(nc, wire.Envelope{RPCID: id, Msg: msg})
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		c.teardown(nc)
		return nil, fmt.Errorf("%w: write: %v", ErrConnLost, err)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, ErrConnLost
		}
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Close implements Conn.
func (c *tcpConn) Close() error {
	c.mu.Lock()
	c.closed = true
	nc := c.nc
	c.mu.Unlock()
	if nc != nil {
		c.teardown(nc)
	}
	return nil
}

// Listen implements Interface: it binds addr (":0" allocates a port)
// and services each accepted connection with one reader goroutine plus
// one goroutine per request, so slow requests do not convoy fast ones
// and responses return out of order. A torn or hostile frame closes
// that connection (log-and-drop); well-behaved peers redial.
func (t *TCP) Listen(addr string, h Handler) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &tcpListener{ln: ln, h: h, conns: make(map[net.Conn]struct{})}
	go l.acceptLoop()
	return l, nil
}

type tcpListener struct {
	ln net.Listener
	h  Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Addr implements Listener.
func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

// Close implements Listener: stops accepting and severs every
// established connection, so in-flight peers observe the failure
// immediately (the loopback kill test depends on this).
func (l *tcpListener) Close() error {
	l.mu.Lock()
	l.closed = true
	conns := make([]net.Conn, 0, len(l.conns))
	for nc := range l.conns {
		conns = append(conns, nc)
	}
	l.mu.Unlock()
	err := l.ln.Close()
	for _, nc := range conns {
		nc.Close()
	}
	return err
}

func (l *tcpListener) acceptLoop() {
	for {
		nc, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			nc.Close()
			return
		}
		l.conns[nc] = struct{}{}
		l.mu.Unlock()
		go l.serveConn(nc)
	}
}

func (l *tcpListener) serveConn(nc net.Conn) {
	defer func() {
		l.mu.Lock()
		delete(l.conns, nc)
		l.mu.Unlock()
		nc.Close()
	}()
	remote := nc.RemoteAddr().String()
	var wmu sync.Mutex
	br := bufio.NewReaderSize(nc, 64<<10)
	for {
		env, err := ReadFrame(br)
		if err != nil {
			return // torn/hostile frame or peer hangup: drop the connection
		}
		go func(env wire.Envelope) {
			resp := l.h.ServeRPC(remote, env.Msg)
			if resp == nil {
				return
			}
			wmu.Lock()
			WriteFrame(nc, wire.Envelope{RPCID: env.RPCID, Msg: resp})
			wmu.Unlock()
		}(env)
	}
}
