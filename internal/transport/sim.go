package transport

import (
	"context"
	"fmt"
	"strconv"

	"ramcloud/internal/rpc"
	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// Sim adapts the simulated fabric behind the Transport interface.
// Addresses are decimal simnet.NodeIDs. Calls must run on a simulation
// proc, carried in the context via WithProc: the adapter is a veneer
// over rpc.Endpoint, so anything speaking the interface against the
// sim backend produces exactly the event sequence the endpoint would —
// the deterministic figure path is unchanged by construction.
type Sim struct {
	Eng *sim.Engine
	Net *simnet.Network

	// CallTimeout is the per-call deadline in simulated time (contexts
	// carry wall-clock deadlines, which are meaningless in-sim).
	// Default 1 simulated second.
	CallTimeout sim.Duration

	// nextNode allocates fabric addresses for dialer endpoints, placed
	// far above any server/client node id.
	nextNode simnet.NodeID
}

type procKey struct{}

// WithProc binds the calling simulation proc into ctx for Sim conns.
func WithProc(ctx context.Context, p *sim.Proc) context.Context {
	return context.WithValue(ctx, procKey{}, p)
}

// ProcFrom extracts the simulation proc bound by WithProc.
func ProcFrom(ctx context.Context) (*sim.Proc, bool) {
	p, ok := ctx.Value(procKey{}).(*sim.Proc)
	return p, ok
}

// dialerBase is where dialer endpoints start allocating node ids.
const dialerBase simnet.NodeID = 1 << 20

func (s *Sim) timeout() sim.Duration {
	if s.CallTimeout > 0 {
		return s.CallTimeout
	}
	return 1 * sim.Second
}

func parseNode(addr string) (simnet.NodeID, error) {
	n, err := strconv.Atoi(addr)
	if err != nil {
		return 0, fmt.Errorf("transport: sim address %q is not a node id: %w", addr, err)
	}
	return simnet.NodeID(n), nil
}

// Dial implements Interface. Each conn gets its own fabric endpoint so
// concurrent callers on distinct conns keep distinct NICs, mirroring
// one socket per peer.
func (s *Sim) Dial(addr string) (Conn, error) {
	to, err := parseNode(addr)
	if err != nil {
		return nil, err
	}
	id := dialerBase + s.nextNode
	s.nextNode++
	return &simConn{s: s, ep: rpc.NewEndpoint(s.Eng, s.Net, id), to: to}, nil
}

type simConn struct {
	s  *Sim
	ep *rpc.Endpoint
	to simnet.NodeID
}

// Call implements Conn. The proc must be bound with WithProc; a context
// cancel cannot preempt a parked proc, so the per-call deadline is the
// transport's simulated CallTimeout.
func (c *simConn) Call(ctx context.Context, msg wire.Message) (wire.Message, error) {
	p, ok := ProcFrom(ctx)
	if !ok {
		return nil, fmt.Errorf("transport: sim call without a proc in context (use transport.WithProc)")
	}
	resp, ok := c.ep.CallTimeout(p, c.to, msg, c.s.timeout())
	if !ok {
		return nil, context.DeadlineExceeded
	}
	return resp, nil
}

// Close implements Conn. Fabric endpoints have no teardown; late
// responses are dropped by the endpoint itself.
func (c *simConn) Close() error { return nil }

// Listen implements Interface: it attaches an endpoint at the given
// node id and services its inbound queue on a dedicated proc. Handlers
// run in proc context and may not block on OS resources; they should be
// pure request -> response functions.
func (s *Sim) Listen(addr string, h Handler) (Listener, error) {
	node, err := parseNode(addr)
	if err != nil {
		return nil, err
	}
	ep := rpc.NewEndpoint(s.Eng, s.Net, node)
	s.Eng.Go("transport-listen-"+addr, func(p *sim.Proc) {
		for {
			req := ep.Inbound.Pop(p)
			if req.Msg == nil {
				return // poison pill from Close
			}
			resp := h.ServeRPC(strconv.Itoa(int(req.From)), req.Msg)
			if resp != nil {
				ep.Reply(req, resp)
			}
		}
	})
	return &simListener{addr: addr, ep: ep}, nil
}

type simListener struct {
	addr string
	ep   *rpc.Endpoint
}

// Addr implements Listener.
func (l *simListener) Addr() string { return l.addr }

// Close implements Listener: the service proc exits at its next
// scheduling point via a poison pill.
func (l *simListener) Close() error {
	l.ep.Inbound.Push(rpc.Request{})
	return nil
}
