package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"ramcloud/internal/wire"
)

// A marshaled wire.Envelope is self-framing: its header carries the
// opcode (1 byte), the RPC id (8) and the total frame length (4,
// little-endian), so the frame reader needs no extra prefix — it reads
// the header, validates the length field against hard bounds, and then
// reads exactly the remaining bytes. The length bytes come off the
// network and are validated BEFORE any allocation sized by them: a
// hostile prefix is rejected with wire.ErrTooLarge / wire.ErrBadLength
// instead of driving a multi-gigabyte make([]byte, ...).

// frameBufPool recycles the scratch buffers frames are read into and
// (for the plain WriteFrame path) encoded into. wire.Unmarshal copies
// every byte a decoded message references, so a buffer is reusable the
// moment the call that borrowed it returns.
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4<<10)
		return &b
	},
}

// maxPooledBuf caps the capacity of buffers returned to the pool. The
// rare jumbo frames (recovery segments, up to MaxEnvelopeSize) would
// otherwise pin tens of megabytes per idle connection.
const maxPooledBuf = 1 << 20

func getFrameBuf(n int) *[]byte {
	bp := frameBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	return bp
}

func putFrameBuf(bp *[]byte) {
	if cap(*bp) <= maxPooledBuf {
		*bp = (*bp)[:0]
		frameBufPool.Put(bp)
	}
}

// ReadFrame reads one envelope frame from r. io.EOF is returned only at
// a clean frame boundary; a frame torn mid-read surfaces as
// io.ErrUnexpectedEOF. Decode failures carry the wire package's typed
// errors so callers can log-and-drop. The scratch buffer the frame
// lands in is pooled: the returned message owns its bytes.
func ReadFrame(r io.Reader) (wire.Envelope, error) {
	// The header lands in the pooled buffer too — a stack [HeaderSize]
	// array would escape through the io.ReadFull interface call and cost
	// a heap allocation per frame.
	bp := getFrameBuf(wire.HeaderSize)
	hdr := (*bp)[:wire.HeaderSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		putFrameBuf(bp)
		if err == io.EOF {
			return wire.Envelope{}, io.EOF
		}
		return wire.Envelope{}, fmt.Errorf("transport: torn frame header: %w", io.ErrUnexpectedEOF)
	}
	total := binary.LittleEndian.Uint32(hdr[9:13])
	if total < wire.HeaderSize {
		putFrameBuf(bp)
		return wire.Envelope{}, fmt.Errorf("%w: frame length %d < header %d", wire.ErrBadLength, total, wire.HeaderSize)
	}
	if total > wire.MaxEnvelopeSize {
		putFrameBuf(bp)
		return wire.Envelope{}, fmt.Errorf("%w: frame length %d", wire.ErrTooLarge, total)
	}
	if cap(*bp) < int(total) {
		nb := make([]byte, total)
		copy(nb, hdr)
		*bp = nb[:0]
	}
	buf := (*bp)[:total]
	if _, err := io.ReadFull(r, buf[wire.HeaderSize:]); err != nil {
		putFrameBuf(bp)
		return wire.Envelope{}, fmt.Errorf("transport: torn frame body: %w", io.ErrUnexpectedEOF)
	}
	env, err := wire.Unmarshal(buf)
	putFrameBuf(bp)
	return env, err
}

// WriteFrame marshals env and writes it as one frame through a pooled
// scratch buffer. The TCP backend's hot path does not use it — frames
// there are coalesced into per-connection buffers by connWriter — but
// it remains the simple one-shot primitive for tests and tools.
func WriteFrame(w io.Writer, env wire.Envelope) error {
	bp := getFrameBuf(0)
	b, err := wire.AppendEnvelope((*bp)[:0], env)
	if err != nil {
		putFrameBuf(bp)
		return err
	}
	*bp = b[:0]
	_, err = w.Write(b)
	putFrameBuf(bp)
	return err
}
