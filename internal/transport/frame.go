package transport

import (
	"encoding/binary"
	"fmt"
	"io"

	"ramcloud/internal/wire"
)

// A marshaled wire.Envelope is self-framing: its header carries the
// opcode (1 byte), the RPC id (8) and the total frame length (4,
// little-endian), so the frame reader needs no extra prefix — it reads
// the header, validates the length field against hard bounds, and then
// reads exactly the remaining bytes. The length bytes come off the
// network and are validated BEFORE any allocation sized by them: a
// hostile prefix is rejected with wire.ErrTooLarge / wire.ErrBadLength
// instead of driving a multi-gigabyte make([]byte, ...).

// ReadFrame reads one envelope frame from r. io.EOF is returned only at
// a clean frame boundary; a frame torn mid-read surfaces as
// io.ErrUnexpectedEOF. Decode failures carry the wire package's typed
// errors so callers can log-and-drop.
func ReadFrame(r io.Reader) (wire.Envelope, error) {
	var hdr [wire.HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return wire.Envelope{}, io.EOF
		}
		return wire.Envelope{}, fmt.Errorf("transport: torn frame header: %w", io.ErrUnexpectedEOF)
	}
	total := binary.LittleEndian.Uint32(hdr[9:13])
	if total < wire.HeaderSize {
		return wire.Envelope{}, fmt.Errorf("%w: frame length %d < header %d", wire.ErrBadLength, total, wire.HeaderSize)
	}
	if total > wire.MaxEnvelopeSize {
		return wire.Envelope{}, fmt.Errorf("%w: frame length %d", wire.ErrTooLarge, total)
	}
	buf := make([]byte, total)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[wire.HeaderSize:]); err != nil {
		return wire.Envelope{}, fmt.Errorf("transport: torn frame body: %w", io.ErrUnexpectedEOF)
	}
	return wire.Unmarshal(buf)
}

// WriteFrame marshals env and writes it as one frame.
func WriteFrame(w io.Writer, env wire.Envelope) error {
	b, err := wire.Marshal(env)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
