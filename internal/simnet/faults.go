package simnet

import (
	"math/rand"

	"ramcloud/internal/sim"
)

// This file adds deterministic fault injection to the fabric: per-link and
// per-node loss/jitter/duplication models, and symmetric partitions between
// node sets. All stochastic draws come from a dedicated fault RNG — never
// the engine RNG, which the servers consume for backup scatter — and no
// draw happens unless a fault rule has been installed, so a fault-free run
// is bit-for-bit identical to one on a build without this file.
//
// Fault rules are ordinary engine-time state: install or clear them from a
// scheduled callback to open and close loss windows, partitions and
// slow-node episodes at exact virtual times.

// FaultModel describes the stochastic impairments applied to messages on a
// link. The zero value is a healthy link.
type FaultModel struct {
	Loss   float64      // probability a message is dropped in the fabric
	Dup    float64      // probability a second copy is delivered
	Jitter sim.Duration // extra delivery delay, uniform in [0, Jitter)
}

// active reports whether the model impairs anything.
func (f FaultModel) active() bool { return f.Loss > 0 || f.Dup > 0 || f.Jitter > 0 }

type linkKey struct{ from, to NodeID }

// faultState holds the fabric's installed fault rules. It lives behind a
// nil pointer until the first rule is installed, keeping the fault-free
// send path free of map lookups.
type faultState struct {
	rng *rand.Rand

	def   FaultModel
	nodes map[NodeID]FaultModel
	links map[linkKey]FaultModel

	// partSide labels the isolated side of the active partition; when
	// partActive, messages between a labeled and an unlabeled node (or
	// between differently-labeled nodes) are dropped.
	partSide   map[NodeID]bool
	partActive bool

	droppedFault int64
	duplicated   int64
}

// faults returns the fault state, creating it on first use. The RNG is
// seeded deterministically; SeedFaults re-seeds it per scenario.
func (n *Network) faults() *faultState {
	if n.fault == nil {
		n.fault = &faultState{
			rng:      rand.New(rand.NewSource(1)),
			nodes:    make(map[NodeID]FaultModel),
			links:    make(map[linkKey]FaultModel),
			partSide: make(map[NodeID]bool),
		}
	}
	return n.fault
}

// SeedFaults re-seeds the fault RNG. Scenarios call it with their seed so a
// fault schedule is a pure function of (scenario, seed) regardless of what
// else the process has run.
func (n *Network) SeedFaults(seed int64) {
	n.faults().rng = rand.New(rand.NewSource(seed))
}

// SetDefaultFaults installs a fault model on every link without a more
// specific rule.
func (n *Network) SetDefaultFaults(f FaultModel) { n.faults().def = f }

// SetNodeFaults installs a fault model on every message to or from id.
// A zero model clears the rule.
func (n *Network) SetNodeFaults(id NodeID, f FaultModel) {
	fs := n.faults()
	if f.active() {
		fs.nodes[id] = f
	} else {
		delete(fs.nodes, id)
	}
}

// SetLinkFaults installs a fault model on the directed link from -> to,
// overriding node and default rules. A zero model clears the override.
func (n *Network) SetLinkFaults(from, to NodeID, f FaultModel) {
	fs := n.faults()
	k := linkKey{from, to}
	if f.active() {
		fs.links[k] = f
	} else {
		delete(fs.links, k)
	}
}

// Partition isolates the given nodes from the rest of the fabric: messages
// between a listed and an unlisted node are dropped in both directions;
// traffic within either side still flows. A new call replaces the previous
// partition.
func (n *Network) Partition(side []NodeID) {
	fs := n.faults()
	fs.partSide = make(map[NodeID]bool, len(side))
	for _, id := range side {
		fs.partSide[id] = true
	}
	fs.partActive = len(side) > 0
}

// Heal removes the active partition.
func (n *Network) Heal() {
	if n.fault != nil {
		n.fault.partActive = false
	}
}

// DroppedByFault returns the number of messages dropped by injected faults
// (loss models and partitions), not counting dead-node drops.
func (n *Network) DroppedByFault() int64 {
	if n.fault == nil {
		return 0
	}
	return n.fault.droppedFault
}

// Duplicated returns the number of extra message copies delivered by
// duplication models.
func (n *Network) Duplicated() int64 {
	if n.fault == nil {
		return 0
	}
	return n.fault.duplicated
}

// Detach removes a node's handler so a restarted process can Attach at the
// same address. The NIC record survives: its transmit history belongs to
// the machine, not the process.
func (n *Network) Detach(id NodeID) {
	delete(n.handlers, id)
}

// model resolves the fault model for one message: link override first, then
// the destination node's rule, then the source node's, then the default.
func (fs *faultState) model(from, to NodeID) FaultModel {
	if f, ok := fs.links[linkKey{from, to}]; ok {
		return f
	}
	if f, ok := fs.nodes[to]; ok {
		return f
	}
	if f, ok := fs.nodes[from]; ok {
		return f
	}
	return fs.def
}

// apply decides one message's fate: dropped (false), or delivered at the
// (possibly jittered) time with dup reporting whether a second copy must be
// delivered too. Draw order is fixed — loss, jitter, duplication — so the
// RNG stream is a pure function of the message sequence.
func (fs *faultState) apply(from, to NodeID, at sim.Time) (deliverAt sim.Time, dup bool, ok bool) {
	if fs.partActive && fs.partSide[from] != fs.partSide[to] {
		fs.droppedFault++
		return 0, false, false
	}
	f := fs.model(from, to)
	if !f.active() {
		return at, false, true
	}
	if f.Loss > 0 && fs.rng.Float64() < f.Loss {
		fs.droppedFault++
		return 0, false, false
	}
	if f.Jitter > 0 {
		at = at.Add(sim.Duration(fs.rng.Int63n(int64(f.Jitter))))
	}
	if f.Dup > 0 && fs.rng.Float64() < f.Dup {
		fs.duplicated++
		dup = true
	}
	return at, dup, true
}
