package simnet

import (
	"testing"

	"ramcloud/internal/sim"
)

// send schedules count messages 1 -> 2 at t=0 and runs the engine.
func sendMany(e *sim.Engine, n *Network, count int) (delivered int) {
	n.Attach(1, func(m Message) {})
	n.Attach(2, func(m Message) { delivered++ })
	e.Schedule(0, func() {
		for i := 0; i < count; i++ {
			n.Send(Message{From: 1, To: 2, Size: 100})
		}
	})
	e.Run()
	return delivered
}

func TestFaultLossDropsAndCounts(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	n.SeedFaults(7)
	n.SetLinkFaults(1, 2, FaultModel{Loss: 0.5})
	got := sendMany(e, n, 1000)
	if got == 0 || got == 1000 {
		t.Fatalf("delivered = %d, want a lossy fraction", got)
	}
	if n.DroppedByFault() != int64(1000-got) {
		t.Fatalf("dropped = %d, delivered = %d", n.DroppedByFault(), got)
	}
}

func TestFaultLossDeterministic(t *testing.T) {
	run := func() (int, int64) {
		e := sim.New(1)
		n := New(e, netCfg())
		n.SeedFaults(42)
		n.SetDefaultFaults(FaultModel{Loss: 0.3})
		got := sendMany(e, n, 500)
		return got, n.DroppedByFault()
	}
	g1, d1 := run()
	g2, d2 := run()
	if g1 != g2 || d1 != d2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", g1, d1, g2, d2)
	}
}

func TestFaultDupDeliversTwice(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	n.SeedFaults(1)
	n.SetNodeFaults(2, FaultModel{Dup: 1.0})
	got := sendMany(e, n, 10)
	if got != 20 {
		t.Fatalf("delivered = %d, want 20 (every message duplicated)", got)
	}
	if n.Duplicated() != 10 {
		t.Fatalf("duplicated = %d", n.Duplicated())
	}
}

func TestFaultJitterDelaysWithinBound(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	n.SeedFaults(3)
	jitter := 50 * sim.Microsecond
	n.SetLinkFaults(1, 2, FaultModel{Jitter: jitter})
	var times []sim.Time
	n.Attach(1, func(m Message) {})
	n.Attach(2, func(m Message) { times = append(times, e.Now()) })
	e.Schedule(0, func() {
		for i := 0; i < 100; i++ {
			n.Send(Message{From: 1, To: 2, Size: 100})
		}
	})
	e.Run()
	if len(times) != 100 {
		t.Fatalf("delivered = %d", len(times))
	}
	// Base arrival for message i: (i+1)*0.1us tx serialization + 5us prop.
	jittered := 0
	for i, at := range times {
		base := sim.Time(sim.Duration(i+1)*100*sim.Nanosecond + 5*sim.Microsecond)
		d := at.Sub(base)
		if d < 0 || d >= jitter {
			t.Fatalf("message %d: delay %v outside [0, %v)", i, d, jitter)
		}
		if d > 0 {
			jittered++
		}
	}
	if jittered == 0 {
		t.Fatal("no message was jittered")
	}
}

func TestPartitionDropsCrossTrafficBothWays(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	var got12, got21, got13 int
	n.Attach(1, func(m Message) { got21++ })
	n.Attach(2, func(m Message) {
		if m.From == 1 {
			got12++
		} else {
			got13++
		}
	})
	n.Attach(3, func(m Message) {})
	n.Partition([]NodeID{1})
	e.Schedule(0, func() {
		n.Send(Message{From: 1, To: 2, Size: 10}) // cross: dropped
		n.Send(Message{From: 2, To: 1, Size: 10}) // cross: dropped
		n.Send(Message{From: 3, To: 2, Size: 10}) // same side: delivered
	})
	e.Run()
	if got12 != 0 || got21 != 0 {
		t.Fatalf("cross-partition traffic delivered: 1->2 %d, 2->1 %d", got12, got21)
	}
	if got13 != 1 {
		t.Fatalf("same-side traffic dropped: 3->2 delivered %d", got13)
	}
	if n.DroppedByFault() != 2 {
		t.Fatalf("dropped = %d, want 2", n.DroppedByFault())
	}
}

func TestHealRestoresDelivery(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	delivered := 0
	n.Attach(1, func(m Message) {})
	n.Attach(2, func(m Message) { delivered++ })
	n.Partition([]NodeID{1})
	e.Schedule(0, func() { n.Send(Message{From: 1, To: 2, Size: 10}) })
	e.Schedule(sim.Millisecond, func() {
		n.Heal()
		n.Send(Message{From: 1, To: 2, Size: 10})
	})
	e.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (only the post-heal send)", delivered)
	}
}

func TestFaultModelPrecedenceLinkOverNode(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	n.SeedFaults(5)
	// Node 2 drops everything, but the specific 1->2 link only duplicates:
	// the link rule must win, so every message arrives (twice).
	n.SetNodeFaults(2, FaultModel{Loss: 1.0})
	n.SetLinkFaults(1, 2, FaultModel{Dup: 1.0})
	got := sendMany(e, n, 10)
	if got != 20 {
		t.Fatalf("delivered = %d, want 20 (link rule overrides node rule)", got)
	}
}

func TestClearNodeFaults(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	n.SeedFaults(5)
	delivered := 0
	n.Attach(1, func(m Message) {})
	n.Attach(2, func(m Message) { delivered++ })
	n.SetNodeFaults(2, FaultModel{Loss: 1.0})
	e.Schedule(0, func() { n.Send(Message{From: 1, To: 2, Size: 10}) })
	e.Schedule(sim.Millisecond, func() {
		n.SetNodeFaults(2, FaultModel{}) // zero model clears the rule
		n.Send(Message{From: 1, To: 2, Size: 10})
	})
	e.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (only after the window closed)", delivered)
	}
	if n.DroppedByFault() != 1 {
		t.Fatalf("dropped = %d, want 1", n.DroppedByFault())
	}
}

func TestDetachAllowsReattach(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	delivered := 0
	n.Attach(1, func(m Message) {})
	n.Attach(2, func(m Message) { t.Error("old handler invoked") })
	n.Detach(2)
	n.Attach(2, func(m Message) { delivered++ }) // must not panic
	e.Schedule(0, func() { n.Send(Message{From: 1, To: 2, Size: 10}) })
	e.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
}
