package simnet

import (
	"math"
	"testing"

	"ramcloud/internal/sim"
	"ramcloud/internal/wire"
)

func netCfg() Config {
	return Config{PropagationDelay: 5 * sim.Microsecond, Bandwidth: 1e9}
}

func TestDeliveryLatency(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	var at sim.Time
	var got Message
	n.Attach(1, func(m Message) {})
	n.Attach(2, func(m Message) { at = e.Now(); got = m })
	// 1000 bytes at 1 GB/s = 1us tx + 5us propagation.
	e.Schedule(0, func() {
		n.Send(Message{From: 1, To: 2, Size: 1000, Payload: &wire.PingReq{Seq: 7}})
	})
	e.Run()
	if at != sim.Time(6*sim.Microsecond) {
		t.Fatalf("delivered at %v, want 6us", at)
	}
	if m, ok := got.Payload.(*wire.PingReq); !ok || m.Seq != 7 || got.From != 1 {
		t.Fatalf("message = %+v", got)
	}
	if n.Delivered() != 1 {
		t.Fatalf("delivered = %d", n.Delivered())
	}
}

func TestNICTxSerialization(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	var times []sim.Time
	n.Attach(1, func(m Message) {})
	n.Attach(2, func(m Message) { times = append(times, e.Now()) })
	e.Schedule(0, func() {
		n.Send(Message{From: 1, To: 2, Size: 1000}) // tx [0,1us], arrive 6us
		n.Send(Message{From: 1, To: 2, Size: 1000}) // tx [1us,2us], arrive 7us
	})
	e.Run()
	if len(times) != 2 {
		t.Fatalf("deliveries = %d", len(times))
	}
	if times[0] != sim.Time(6*sim.Microsecond) || times[1] != sim.Time(7*sim.Microsecond) {
		t.Fatalf("times = %v", times)
	}
}

func TestDownNodeDropsMessages(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	delivered := 0
	n.Attach(1, func(m Message) {})
	n.Attach(2, func(m Message) { delivered++ })
	n.SetDown(2, true)
	e.Schedule(0, func() { n.Send(Message{From: 1, To: 2, Size: 10}) })
	e.Run()
	if delivered != 0 || n.Dropped() != 1 {
		t.Fatalf("delivered=%d dropped=%d", delivered, n.Dropped())
	}
	if !n.IsDown(2) {
		t.Fatal("IsDown(2) = false")
	}
}

func TestDeathMidFlightDrops(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	delivered := 0
	n.Attach(1, func(m Message) {})
	n.Attach(2, func(m Message) { delivered++ })
	e.Schedule(0, func() { n.Send(Message{From: 1, To: 2, Size: 1000}) })
	// Node dies while the message is in flight (arrives at 6us).
	e.Schedule(2*sim.Microsecond, func() { n.SetDown(2, true) })
	e.Run()
	if delivered != 0 || n.Dropped() != 1 {
		t.Fatalf("delivered=%d dropped=%d", delivered, n.Dropped())
	}
}

func TestSendFromUnattachedPanics(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	n.Attach(2, func(m Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Send(Message{From: 1, To: 2, Size: 1})
}

func TestDoubleAttachPanics(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	n.Attach(1, func(m Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Attach(1, func(m Message) {})
}

func TestByteAccounting(t *testing.T) {
	e := sim.New(1)
	n := New(e, netCfg())
	n.Attach(1, func(m Message) {})
	n.Attach(2, func(m Message) {})
	e.Schedule(0, func() { n.Send(Message{From: 1, To: 2, Size: 500e6}) }) // 0.5s tx
	e.Run()
	if math.Abs(n.TxBytesSecond(1, 0)-500e6) > 1 {
		t.Fatalf("tx bytes = %v", n.TxBytesSecond(1, 0))
	}
	if math.Abs(n.RxBytesSecond(2, 0)-500e6) > 1 {
		t.Fatalf("rx bytes = %v", n.RxBytesSecond(2, 0))
	}
	if f := n.TxBusyFracSecond(1, 0); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("tx busy frac = %v", f)
	}
	if n.TxBusyFracSecond(99, 0) != 0 {
		t.Fatal("unknown node busy frac should be 0")
	}
}

func TestRoundTripThroughQueues(t *testing.T) {
	// Simulates the standard usage pattern: handler pushes into a queue, a
	// proc services it and replies.
	e := sim.New(1)
	n := New(e, netCfg())
	serverQ := sim.NewQueue[Message](e)
	reply := sim.NewFuture[uint64](e)
	n.Attach(1, func(m Message) { reply.Set(m.Payload.(*wire.PingResp).Seq) })
	n.Attach(2, func(m Message) { serverQ.Push(m) })
	e.Go("server", func(p *sim.Proc) {
		m := serverQ.Pop(p)
		p.Sleep(2 * sim.Microsecond) // service time
		n.Send(Message{From: 2, To: 1, Size: 100, Payload: &wire.PingResp{Seq: m.Payload.(*wire.PingReq).Seq}})
	})
	var got uint64
	var rtt sim.Duration
	e.Go("client", func(p *sim.Proc) {
		start := p.Now()
		n.Send(Message{From: 1, To: 2, Size: 100, Payload: &wire.PingReq{Seq: 41}})
		got = reply.Get(p)
		rtt = p.Now().Sub(start)
	})
	e.Run()
	e.Shutdown()
	if got != 41 {
		t.Fatalf("got %d", got)
	}
	// 2x (0.1us tx + 5us prop) + 2us service = 12.2us
	want := sim.Duration(12200)
	if rtt != want {
		t.Fatalf("rtt = %v, want %v", rtt, want)
	}
}
