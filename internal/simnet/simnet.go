// Package simnet models the cluster fabric: an Infiniband-20G-class network
// with per-NIC transmit serialization and a fixed propagation delay. The
// paper uses RAMCloud's Infiniband transport exclusively; the network is
// deliberately fast enough never to be the primary bottleneck (the authors
// study network effects in a companion paper), but transfer times matter
// during crash recovery when whole segments cross the wire.
package simnet

import (
	"fmt"

	"ramcloud/internal/metrics"
	"ramcloud/internal/sim"
	"ramcloud/internal/wire"
)

// NodeID identifies an endpoint on the fabric.
type NodeID int

// Message is one datagram. Size is the on-wire size in bytes (computed from
// the wire encoding of the payload); Payload is delivered by reference to
// keep the simulator fast. RPCID and Resp are the RPC layer's correlation
// header, carried as plain fields so a send costs no wrapper allocation or
// `any` boxing on the fast path.
type Message struct {
	From    NodeID
	To      NodeID
	Size    int
	RPCID   uint64
	Resp    bool
	Payload wire.Message
}

// Handler receives delivered messages in engine (callback) context. It must
// not block; typically it pushes into a sim.Queue serviced by a dispatch
// proc.
type Handler func(msg Message)

// Config sets fabric characteristics.
type Config struct {
	PropagationDelay sim.Duration // one-way latency, switch included
	Bandwidth        float64      // per-NIC bytes/second
}

// DefaultConfig models Infiniband-20G (~2.3 GB/s usable, ~2.3 us one-way).
func DefaultConfig() Config {
	return Config{
		PropagationDelay: 2300 * sim.Nanosecond,
		Bandwidth:        2.3e9,
	}
}

type nic struct {
	// eng is the node's home event lane. Under the sharded engine every
	// node lives on exactly one lane: transmit state (txBusyUntil,
	// txBytes, txBusy) is only touched by sends *from* the node — its own
	// lane — and rxBytes only by deliveries *to* it, which execute on the
	// same lane. A standalone engine is the 1-lane special case.
	eng *sim.Engine

	// msgSeq counts messages sent by this node; it keys same-instant
	// delivery ordering (see deliverySeq), so it must be node-local, not
	// lane-local.
	msgSeq uint64

	txBusyUntil sim.Time
	txBytes     metrics.Series
	rxBytes     metrics.Series
	txBusy      metrics.Series // busy ns per second
}

// deliverySeq builds the sequence key for one delivery: deliveries that
// land at the same instant on the same node execute in (sender node,
// per-sender send order) order. Both components are properties of the
// simulated cluster — never of the lane partition — so the execution
// order of colliding deliveries is identical at any lane count. The
// sender id occupies bits 62..31 and the per-sender counter bits 30..0
// (2^31 sends per node outlasts any simulated run by orders of
// magnitude).
func deliverySeq(from NodeID, counter uint64) uint64 {
	return sim.KeyedSeqBit | uint64(uint32(from))<<31 | (counter & 0x7FFFFFFF)
}

// Network is the shared fabric.
type Network struct {
	eng *sim.Engine
	cfg Config

	nics     map[NodeID]*nic
	handlers map[NodeID]Handler
	down     map[NodeID]bool

	// free holds per-lane freelists of delivery records, indexed by lane
	// id. Each record's closure is created once and rescheduled forever
	// after, so a steady-state send allocates nothing. A sender pops from
	// its own lane's list and the record is returned to the *destination*
	// lane's list after delivery: every pop and push is lane-local, so no
	// lock is needed even though records migrate between lists.
	free []*delivery

	// delivered/dropped are incremented from whichever lane runs the
	// delivery; addition commutes, so atomic totals stay deterministic.
	delivered metrics.AtomicCounter
	dropped   metrics.AtomicCounter

	// fault holds injected fault rules (faults.go); nil until the first
	// rule is installed, so the healthy fast path pays one nil check.
	fault *faultState
}

// delivery is one in-flight message's arrival event.
type delivery struct {
	n    *Network
	msg  Message
	at   sim.Time
	fn   func() // bound to run once at construction; reused across sends
	next *delivery
}

// run delivers the message and returns the record to the destination
// lane's freelist (run always executes on the destination's lane).
func (d *delivery) run() {
	n := d.n
	msg := d.msg
	at := d.at
	dst := n.nics[msg.To]
	d.msg = Message{} // drop the payload reference before pooling
	lane := dst.eng.LaneID()
	d.next = n.free[lane]
	n.free[lane] = d
	if n.down[msg.To] || n.down[msg.From] {
		n.dropped.Inc()
		return
	}
	spreadBytes(&dst.rxBytes, at, at, float64(msg.Size))
	n.delivered.Inc()
	n.handlers[msg.To](msg)
}

// newDelivery pops a record from the given lane's freelist or makes one.
// Only call for the sender's own lane; the freelist slice was sized at
// attach time, so no lane ever mutates its header.
func (n *Network) newDelivery(lane int) *delivery {
	d := n.free[lane]
	if d == nil {
		d = &delivery{n: n}
		d.fn = d.run
		return d
	}
	n.free[lane] = d.next
	d.next = nil
	return d
}

// New returns an empty fabric.
func New(e *sim.Engine, cfg Config) *Network {
	if cfg.Bandwidth <= 0 {
		panic("simnet: bandwidth must be positive")
	}
	return &Network{
		eng:      e,
		cfg:      cfg,
		nics:     make(map[NodeID]*nic),
		handlers: make(map[NodeID]Handler),
		down:     make(map[NodeID]bool),
	}
}

// Attach registers a node and its message handler on the network's
// default lane. Attaching the same node twice panics: handlers must not
// be silently replaced — a restarted process must Detach first. The NIC
// record is reused across restarts so the node's transmit accounting
// stays continuous.
func (n *Network) Attach(id NodeID, h Handler) {
	n.AttachOn(n.eng, id, h)
}

// AttachOn registers a node on a specific event lane: every delivery to
// the node is scheduled on e, and sends from it read its clock. Under a
// standalone engine e is the network's own engine and AttachOn is exactly
// Attach. Must be called during setup (before the lanes run).
func (n *Network) AttachOn(e *sim.Engine, id NodeID, h Handler) {
	if _, ok := n.handlers[id]; ok {
		panic(fmt.Sprintf("simnet: node %d attached twice", id))
	}
	if n.nics[id] == nil {
		n.nics[id] = &nic{}
	}
	n.nics[id].eng = e
	for len(n.free) <= e.LaneID() {
		n.free = append(n.free, nil)
	}
	n.handlers[id] = h
}

// SetDown marks a node unreachable (crashed). Messages to or from it are
// dropped silently, like a dead NIC.
func (n *Network) SetDown(id NodeID, down bool) { n.down[id] = down }

// IsDown reports whether a node is marked unreachable.
func (n *Network) IsDown(id NodeID) bool { return n.down[id] }

// Send transmits a message. Transmission serializes on the sender's NIC;
// delivery happens one propagation delay after the last byte leaves. It
// must be called from the sender's engine context: the clock is the
// sender lane's, and when the destination lives on another lane the
// delivery crosses through that lane's mailbox with a sender-assigned
// sequence number — always at least PropagationDelay in the future, which
// is exactly the sharded engine's lookahead window.
func (n *Network) Send(msg Message) {
	if n.down[msg.From] || n.down[msg.To] {
		n.dropped.Inc()
		return
	}
	src, ok := n.nics[msg.From]
	if !ok {
		panic(fmt.Sprintf("simnet: send from unattached node %d", msg.From))
	}
	if _, ok := n.handlers[msg.To]; !ok {
		panic(fmt.Sprintf("simnet: send to unattached node %d", msg.To))
	}
	srcEng := src.eng
	now := srcEng.Now()
	start := src.txBusyUntil
	if start < now {
		start = now
	}
	txDur := sim.Duration(float64(msg.Size) / n.cfg.Bandwidth * float64(sim.Second))
	end := start.Add(txDur)
	src.txBusyUntil = end
	accountSpan(&src.txBusy, start, end)
	spreadBytes(&src.txBytes, start, end, float64(msg.Size))

	deliverAt := end.Add(n.cfg.PropagationDelay)
	dstEng := n.nics[msg.To].eng
	if n.fault != nil {
		at, dup, ok := n.fault.apply(msg.From, msg.To, deliverAt)
		if !ok {
			return // lost in the fabric; the sender still paid tx time
		}
		deliverAt = at
		if dup {
			src.msgSeq++
			d2 := n.newDelivery(srcEng.LaneID())
			d2.msg = msg
			d2.at = deliverAt
			n.schedule(srcEng, dstEng, deliverAt, deliverySeq(msg.From, src.msgSeq), d2)
		}
	}
	src.msgSeq++
	d := n.newDelivery(srcEng.LaneID())
	d.msg = msg
	d.at = deliverAt
	n.schedule(srcEng, dstEng, deliverAt, deliverySeq(msg.From, src.msgSeq), d)
}

// schedule routes a delivery to the destination's lane: directly into the
// destination's event heap when sender and destination share a lane,
// through the destination lane's mailbox otherwise. Both paths use the
// same sender-keyed sequence number, so a colliding pair of deliveries
// executes in the same order whether or not a lane boundary separates
// their senders.
func (n *Network) schedule(srcEng, dstEng *sim.Engine, at sim.Time, seq uint64, d *delivery) {
	if dstEng == srcEng {
		srcEng.ScheduleKeyedAt(at, seq, d.fn)
		return
	}
	dstEng.CrossScheduleAt(at, seq, d.fn)
}

func accountSpan(s *metrics.Series, from, to sim.Time) {
	for t := from; t < to; {
		second := int64(t) / int64(sim.Second)
		bucketEnd := sim.Time((second + 1) * int64(sim.Second))
		end := to
		if bucketEnd < end {
			end = bucketEnd
		}
		s.Add(int(second), float64(end-t))
		t = end
	}
}

func spreadBytes(s *metrics.Series, from, to sim.Time, bytes float64) {
	span := float64(to - from)
	if span <= 0 {
		s.Add(int(int64(from)/int64(sim.Second)), bytes)
		return
	}
	for t := from; t < to; {
		second := int64(t) / int64(sim.Second)
		bucketEnd := sim.Time((second + 1) * int64(sim.Second))
		end := to
		if bucketEnd < end {
			end = bucketEnd
		}
		s.Add(int(second), bytes*float64(end-t)/span)
		t = end
	}
}

// TxBusyFracSecond returns the fraction of second k node id spent
// transmitting.
func (n *Network) TxBusyFracSecond(id NodeID, k int) float64 {
	nc, ok := n.nics[id]
	if !ok {
		return 0
	}
	f := nc.txBusy.At(k) / float64(sim.Second)
	if f > 1 {
		return 1
	}
	return f
}

// TxBytesSecond returns bytes transmitted by id during second k.
func (n *Network) TxBytesSecond(id NodeID, k int) float64 {
	if nc, ok := n.nics[id]; ok {
		return nc.txBytes.At(k)
	}
	return 0
}

// RxBytesSecond returns bytes received by id during second k.
func (n *Network) RxBytesSecond(id NodeID, k int) float64 {
	if nc, ok := n.nics[id]; ok {
		return nc.rxBytes.At(k)
	}
	return 0
}

// Delivered returns the total number of delivered messages.
func (n *Network) Delivered() int64 { return n.delivered.Value() }

// Dropped returns the total number of dropped messages.
func (n *Network) Dropped() int64 { return n.dropped.Value() }
