package simdisk

import (
	"math"
	"testing"

	"ramcloud/internal/sim"
)

func cfg() Config {
	return Config{ReadBandwidth: 100e6, WriteBandwidth: 50e6, SeekPenalty: 10 * sim.Millisecond}
}

func TestReadDuration(t *testing.T) {
	e := sim.New(1)
	d := New(e, cfg())
	var done sim.Time
	e.Go("r", func(p *sim.Proc) {
		d.Read(p, 100e6) // 10ms seek + 1 second at 100 MB/s
		done = p.Now()
	})
	e.Run()
	if done != sim.Time(sim.Second+10*sim.Millisecond) {
		t.Fatalf("read finished at %v, want 1.01s", done)
	}
	if d.TotalRead() != 100e6 {
		t.Fatalf("total read = %d", d.TotalRead())
	}
}

func TestFIFOSerialization(t *testing.T) {
	e := sim.New(1)
	d := New(e, cfg())
	var t1, t2 sim.Time
	e.Go("a", func(p *sim.Proc) { d.Read(p, 50e6); t1 = p.Now() }) // seek + 0.5s
	e.Go("b", func(p *sim.Proc) { d.Read(p, 50e6); t2 = p.Now() }) // queued behind a
	e.Run()
	if t1 != sim.Time(510*sim.Millisecond) {
		t.Fatalf("t1 = %v", t1)
	}
	if t2 != sim.Time(sim.Second+20*sim.Millisecond) {
		t.Fatalf("t2 = %v, want 1.02s (serialized)", t2)
	}
}

func TestSeekPenaltyPerRequest(t *testing.T) {
	e := sim.New(1)
	d := New(e, cfg())
	var done sim.Time
	e.Go("rw", func(p *sim.Proc) {
		d.Read(p, 100e6) // seek + 1s
		d.Write(p, 50e6) // seek + 1s at 50MB/s
		d.Read(p, 100e6) // seek + 1s
		done = p.Now()
	})
	e.Run()
	want := sim.Time(3*sim.Second + 30*sim.Millisecond)
	if done != want {
		t.Fatalf("done at %v, want %v", done, want)
	}
}

func TestSeekChargedSameDirectionToo(t *testing.T) {
	e := sim.New(1)
	d := New(e, cfg())
	var done sim.Time
	e.Go("ww", func(p *sim.Proc) {
		d.Write(p, 50e6)
		d.Write(p, 50e6)
		done = p.Now()
	})
	e.Run()
	if done != sim.Time(2*sim.Second+20*sim.Millisecond) {
		t.Fatalf("done at %v, want 2.02s", done)
	}
}

func TestWriteAsync(t *testing.T) {
	e := sim.New(1)
	d := New(e, cfg())
	var doneAt sim.Time
	d.WriteAsync(50e6, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != sim.Time(sim.Second+10*sim.Millisecond) {
		t.Fatalf("async write done at %v, want 1.01s", doneAt)
	}
	if d.TotalWritten() != 50e6 {
		t.Fatalf("total written = %d", d.TotalWritten())
	}
}

func TestQueueDelay(t *testing.T) {
	e := sim.New(1)
	d := New(e, cfg())
	if d.QueueDelay() != 0 {
		t.Fatal("idle disk should have zero queue delay")
	}
	var delay sim.Duration
	e.Go("x", func(p *sim.Proc) {
		d.WriteAsync(50e6, func() {})
		delay = d.QueueDelay()
	})
	e.Run()
	if delay != sim.Second+10*sim.Millisecond {
		t.Fatalf("queue delay = %v, want 1.01s", delay)
	}
}

func TestByteAccountingSpread(t *testing.T) {
	e := sim.New(1)
	d := New(e, cfg())
	e.Go("r", func(p *sim.Proc) {
		d.Read(p, 200e6) // 10ms seek + 2 seconds
	})
	e.Run()
	if d.ReadBytesSecond(0) < 90e6 || d.ReadBytesSecond(1) < 90e6 {
		t.Fatalf("read spread = %v / %v", d.ReadBytesSecond(0), d.ReadBytesSecond(1))
	}
	if d.BusyFracSecond(0) < 0.98 {
		t.Fatalf("busy frac = %v", d.BusyFracSecond(0))
	}
	if d.BusyFracSecond(5) != 0 {
		t.Fatal("idle second should be 0")
	}
}

func TestWriteBytesSecond(t *testing.T) {
	e := sim.New(1)
	d := New(e, cfg())
	e.Go("w", func(p *sim.Proc) { d.Write(p, 25e6) }) // seek + 0.5s
	e.Run()
	if math.Abs(d.WriteBytesSecond(0)-25e6) > 1 {
		t.Fatalf("write bytes = %v", d.WriteBytesSecond(0))
	}
	if d.BusyFracSecond(0) != 0.5 {
		t.Fatalf("busy = %v", d.BusyFracSecond(0))
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.New(1), Config{ReadBandwidth: 0, WriteBandwidth: 1})
}

func TestDefaultConfigSane(t *testing.T) {
	c := DefaultConfig()
	if c.ReadBandwidth < 50e6 || c.WriteBandwidth < 50e6 || c.SeekPenalty <= 0 {
		t.Fatalf("default config %+v", c)
	}
}
