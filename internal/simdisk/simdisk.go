// Package simdisk models the 298 GB HDD of each testbed node as a FIFO
// device with separate sequential read and write bandwidths and a seek
// penalty whenever the access direction alternates. The alternation penalty
// is what makes recovery reads interfere with re-replication writes
// (Fig. 12 and Finding 6 of the paper).
package simdisk

import (
	"ramcloud/internal/metrics"
	"ramcloud/internal/sim"
)

type opKind uint8

const (
	opNone opKind = iota
	opRead
	opWrite
)

// Config sets disk performance characteristics.
type Config struct {
	ReadBandwidth  float64 // bytes/second sequential
	WriteBandwidth float64 // bytes/second sequential
	// SeekPenalty is the positioning delay charged per request: distinct
	// requests target distinct segments/replicas on the platter. It is
	// what makes many small segments slower to recover than few large
	// ones (the paper's Section IX segment-size discussion) and what
	// makes recovery reads interfere with re-replication writes.
	SeekPenalty sim.Duration
}

// DefaultConfig models the Grid'5000 Nancy 298 GB HDDs.
func DefaultConfig() Config {
	return Config{
		ReadBandwidth:  130e6,
		WriteBandwidth: 110e6,
		SeekPenalty:    6 * sim.Millisecond,
	}
}

// Disk is one node's drive. Requests are serviced FIFO: each new request
// starts when the previous one finishes.
type Disk struct {
	eng *sim.Engine
	cfg Config

	busyUntil sim.Time
	lastOp    opKind

	readBytes  metrics.Series // bytes read per second (attributed at start)
	writeBytes metrics.Series
	busy       metrics.Series // busy nanoseconds per second

	totalRead    metrics.Counter
	totalWritten metrics.Counter
}

// New returns an idle disk.
func New(e *sim.Engine, cfg Config) *Disk {
	if cfg.ReadBandwidth <= 0 || cfg.WriteBandwidth <= 0 {
		panic("simdisk: bandwidth must be positive")
	}
	return &Disk{eng: e, cfg: cfg}
}

// schedule books an operation and returns its completion time.
func (d *Disk) schedule(kind opKind, size int64) sim.Time {
	now := d.eng.Now()
	start := d.busyUntil
	if start < now {
		start = now
	}
	start = start.Add(d.cfg.SeekPenalty)
	bw := d.cfg.ReadBandwidth
	if kind == opWrite {
		bw = d.cfg.WriteBandwidth
	}
	dur := sim.Duration(float64(size) / bw * float64(sim.Second))
	end := start.Add(dur)
	d.lastOp = kind
	d.busyUntil = end
	d.accountBusy(start, end)
	d.accountBytes(kind, start, end, size)
	return end
}

func (d *Disk) accountBusy(from, to sim.Time) {
	for t := from; t < to; {
		second := int64(t) / int64(sim.Second)
		bucketEnd := sim.Time((second + 1) * int64(sim.Second))
		end := to
		if bucketEnd < end {
			end = bucketEnd
		}
		d.busy.Add(int(second), float64(end-t))
		t = end
	}
}

// accountBytes spreads the transferred bytes across the seconds the
// operation spans, so the Fig. 12 I/O-rate series is smooth.
func (d *Disk) accountBytes(kind opKind, from, to sim.Time, size int64) {
	series := &d.readBytes
	counter := &d.totalRead
	if kind == opWrite {
		series = &d.writeBytes
		counter = &d.totalWritten
	}
	counter.Add(size)
	span := float64(to - from)
	if span <= 0 {
		series.Add(int(int64(from)/int64(sim.Second)), float64(size))
		return
	}
	for t := from; t < to; {
		second := int64(t) / int64(sim.Second)
		bucketEnd := sim.Time((second + 1) * int64(sim.Second))
		end := to
		if bucketEnd < end {
			end = bucketEnd
		}
		series.Add(int(second), float64(size)*float64(end-t)/span)
		t = end
	}
}

// Read blocks the proc for a sequential read of size bytes.
func (d *Disk) Read(p *sim.Proc, size int64) {
	end := d.schedule(opRead, size)
	p.Sleep(end.Sub(p.Now()))
}

// Write blocks the proc for a sequential write of size bytes.
func (d *Disk) Write(p *sim.Proc, size int64) {
	end := d.schedule(opWrite, size)
	p.Sleep(end.Sub(p.Now()))
}

// WriteAsync books a write and invokes done (in callback context) when it
// completes. Used by the backup flush path so workers never block on disk.
func (d *Disk) WriteAsync(size int64, done func()) {
	end := d.schedule(opWrite, size)
	d.eng.ScheduleAt(end, done)
}

// QueueDelay returns how long a request issued now would wait before
// starting service.
func (d *Disk) QueueDelay() sim.Duration {
	now := d.eng.Now()
	if d.busyUntil <= now {
		return 0
	}
	return d.busyUntil.Sub(now)
}

// BusyFracSecond returns the fraction of second k the disk spent busy.
func (d *Disk) BusyFracSecond(k int) float64 {
	f := d.busy.At(k) / float64(sim.Second)
	if f > 1 {
		return 1
	}
	return f
}

// ReadBytesSecond returns bytes read during second k.
func (d *Disk) ReadBytesSecond(k int) float64 { return d.readBytes.At(k) }

// WriteBytesSecond returns bytes written during second k.
func (d *Disk) WriteBytesSecond(k int) float64 { return d.writeBytes.At(k) }

// TotalRead returns total bytes read.
func (d *Disk) TotalRead() int64 { return d.totalRead.Value() }

// TotalWritten returns total bytes written.
func (d *Disk) TotalWritten() int64 { return d.totalWritten.Value() }
