package server

import (
	"fmt"

	"ramcloud/internal/hashtable"
	"ramcloud/internal/logstore"
	"ramcloud/internal/rpc"
	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// This file implements the master role: tablet ownership, the read path,
// the durable write path (log append + synchronous primary-backup
// replication), deletes via tombstones, will maintenance and bulk loading.

// AssignTablet gives the master ownership of a key-hash range. Called by
// the coordinator's configuration plane.
func (s *Server) AssignTablet(t wire.Tablet) {
	t.Master = s.id
	s.tablets = append(s.tablets, t)
}

// DropTablets removes ownership of every tablet of a table.
func (s *Server) DropTablets(table uint64) {
	out := s.tablets[:0]
	for _, t := range s.tablets {
		if t.Table != table {
			out = append(out, t)
		}
	}
	s.tablets = out
}

// Tablets returns a copy of the master's owned tablets.
func (s *Server) Tablets() []wire.Tablet {
	return append([]wire.Tablet(nil), s.tablets...)
}

// ownsKey reports whether the master owns (table, keyHash).
func (s *Server) ownsKey(table uint64, keyHash uint64) bool {
	for _, t := range s.tablets {
		if t.Table == table && keyHash >= t.StartHash && keyHash <= t.EndHash {
			return true
		}
	}
	return false
}

// keyEq returns an equality callback that matches the hash-table candidate
// whose log entry carries exactly (table, key).
func (s *Server) keyEq(table uint64, key []byte) hashtable.EqualFunc {
	return func(packed uint64) bool {
		e, err := s.log.Get(logstore.UnpackRef(packed))
		if err != nil {
			return false
		}
		return e.Table == table && string(e.Key) == string(key)
	}
}

func (s *Server) serveRead(p *sim.Proc, req rpc.Request, m *wire.ReadReq) {
	keyHash := hashtable.HashKey(m.Table, m.Key)
	if !s.ownsKey(m.Table, keyHash) {
		s.stats.WrongServer.Inc()
		s.ep.Reply(req, &wire.ReadResp{Status: wire.StatusWrongServer})
		return
	}
	if s.frozenKey(m.Table, keyHash) {
		s.ep.Reply(req, &wire.ReadResp{Status: wire.StatusRetry})
		return
	}
	s.busy(p, sim.Scale(s.cfg.Costs.Read, s.interference()))
	packed, ok := s.ht.Lookup(keyHash, s.keyEq(m.Table, m.Key))
	if !ok {
		s.ep.Reply(req, &wire.ReadResp{Status: wire.StatusUnknownKey})
		return
	}
	e, err := s.log.Get(logstore.UnpackRef(packed))
	if err != nil || e.Type != logstore.EntryObject {
		s.ep.Reply(req, &wire.ReadResp{Status: wire.StatusUnknownKey})
		return
	}
	s.stats.ReadsOK.Inc()
	s.ep.Reply(req, &wire.ReadResp{
		Status:   wire.StatusOK,
		Version:  e.Version,
		ValueLen: e.ValueLen,
		Value:    e.Value,
	})
}

func (s *Server) serveWrite(p *sim.Proc, req rpc.Request, m *wire.WriteReq) {
	keyHash := hashtable.HashKey(m.Table, m.Key)
	if !s.ownsKey(m.Table, keyHash) {
		s.stats.WrongServer.Inc()
		s.ep.Reply(req, &wire.WriteResp{Status: wire.StatusWrongServer})
		return
	}
	if s.frozenKey(m.Table, keyHash) {
		s.ep.Reply(req, &wire.WriteResp{Status: wire.StatusRetry})
		return
	}
	entry := logstore.Entry{
		Type:     logstore.EntryObject,
		Table:    m.Table,
		KeyHash:  keyHash,
		Key:      m.Key,
		ValueLen: m.ValueLen,
		Value:    m.Value,
	}
	version, seg, ok := s.appendLocked(p, entry, 0, true)
	if !ok {
		s.ep.Reply(req, &wire.WriteResp{Status: wire.StatusError})
		return
	}
	s.replicateObject(p, seg, wire.Object{
		Table:    m.Table,
		KeyHash:  keyHash,
		Key:      m.Key,
		ValueLen: m.ValueLen,
		Version:  version,
	})
	s.stats.WritesOK.Inc()
	s.ep.Reply(req, &wire.WriteResp{Status: wire.StatusOK, Version: version})
}

func (s *Server) serveDelete(p *sim.Proc, req rpc.Request, m *wire.DeleteReq) {
	keyHash := hashtable.HashKey(m.Table, m.Key)
	if !s.ownsKey(m.Table, keyHash) {
		s.stats.WrongServer.Inc()
		s.ep.Reply(req, &wire.DeleteResp{Status: wire.StatusWrongServer})
		return
	}
	if s.frozenKey(m.Table, keyHash) {
		s.ep.Reply(req, &wire.DeleteResp{Status: wire.StatusRetry})
		return
	}
	version, seg, status := s.deleteLocked(p, m.Table, keyHash, m.Key)
	if status != wire.StatusOK {
		s.ep.Reply(req, &wire.DeleteResp{Status: status})
		return
	}
	s.replicateObject(p, seg, wire.Object{
		Table:     m.Table,
		KeyHash:   keyHash,
		Key:       m.Key,
		Version:   version,
		Tombstone: true,
	})
	s.stats.DeletesOK.Inc()
	s.ep.Reply(req, &wire.DeleteResp{Status: wire.StatusOK, Version: version})
}

// serveMultiRead services a read batch. The dispatch cost was paid once
// for the whole RPC (that is the point of batching); the worker burns the
// per-item read cost as one contiguous busy span, then answers every item.
// Items this master does not own come back StatusWrongServer individually
// so a tablet move mid-batch costs the client one regroup, not the batch.
func (s *Server) serveMultiRead(p *sim.Proc, req rpc.Request, m *wire.MultiReadReq) {
	items := make([]wire.MultiReadResult, len(m.Items))
	hashes := make([]uint64, len(m.Items))
	var cost sim.Duration
	for i := range m.Items {
		it := &m.Items[i]
		hashes[i] = hashtable.HashKey(it.Table, it.Key)
		if !s.ownsKey(it.Table, hashes[i]) {
			s.stats.WrongServer.Inc()
			items[i].Status = wire.StatusWrongServer
			continue
		}
		if s.frozenKey(it.Table, hashes[i]) {
			items[i].Status = wire.StatusRetry
			continue
		}
		cost += s.cfg.Costs.Read
	}
	s.busy(p, sim.Scale(cost, s.interference()))
	for i := range m.Items {
		if items[i].Status != 0 {
			continue
		}
		it := &m.Items[i]
		packed, ok := s.ht.Lookup(hashes[i], s.keyEq(it.Table, it.Key))
		if !ok {
			items[i].Status = wire.StatusUnknownKey
			continue
		}
		e, err := s.log.Get(logstore.UnpackRef(packed))
		if err != nil || e.Type != logstore.EntryObject {
			items[i].Status = wire.StatusUnknownKey
			continue
		}
		s.stats.ReadsOK.Inc()
		items[i] = wire.MultiReadResult{
			Status:   wire.StatusOK,
			Version:  e.Version,
			ValueLen: e.ValueLen,
			Value:    e.Value,
		}
	}
	s.ep.Reply(req, &wire.MultiReadResp{Status: wire.StatusOK, Items: items})
}

// serveMultiWrite services a write batch: every owned item is appended
// under a single log-head acquisition (one contention tax for the whole
// batch instead of one per op — the quadratic "nanoscheduling" cost of
// Finding 2 is paid once), and replication fans out one RPC per backup per
// touched segment carrying all of that segment's new objects.
func (s *Server) serveMultiWrite(p *sim.Proc, req rpc.Request, m *wire.MultiWriteReq) {
	items := make([]wire.MultiWriteResult, len(m.Items))
	hashes := make([]uint64, len(m.Items))
	var owned int
	var cost sim.Duration
	for i := range m.Items {
		it := &m.Items[i]
		hashes[i] = hashtable.HashKey(it.Table, it.Key)
		if !s.ownsKey(it.Table, hashes[i]) {
			s.stats.WrongServer.Inc()
			items[i].Status = wire.StatusWrongServer
			continue
		}
		if s.frozenKey(it.Table, hashes[i]) {
			items[i].Status = wire.StatusRetry
			continue
		}
		owned++
		cost += s.cfg.Costs.WriteBase + sim.Scale(s.cfg.Costs.PerKByte, float64(it.ValueLen)/1024)
	}
	if owned == 0 {
		s.busy(p, sim.Scale(s.cfg.Costs.Read, s.interference()))
		s.ep.Reply(req, &wire.MultiWriteResp{Status: wire.StatusOK, Items: items})
		return
	}
	waiters := s.logMu.Waiters()
	s.lockWithSpin(p, s.logMu)
	cost += sim.Duration(int64(s.cfg.Costs.WriteContention) * int64(waiters*waiters))
	s.busy(p, sim.Scale(cost, s.interference()))
	if s.dead {
		s.logMu.Unlock()
		for i := range items {
			if items[i].Status == 0 {
				items[i].Status = wire.StatusError
			}
		}
		// Like the single-op path: answer StatusError (the downed NIC drops
		// the reply anyway, but the two paths stay symmetric).
		s.ep.Reply(req, &wire.MultiWriteResp{Status: wire.StatusError, Items: items})
		return
	}
	// Append every owned item, gathering replication objects per segment in
	// append order.
	var segOrder []uint64
	segObjs := make(map[uint64][]wire.Object)
	for i := range m.Items {
		if items[i].Status != 0 {
			continue
		}
		it := &m.Items[i]
		s.nextVersion++
		entry := logstore.Entry{
			Type:     logstore.EntryObject,
			Table:    it.Table,
			KeyHash:  hashes[i],
			Key:      it.Key,
			ValueLen: it.ValueLen,
			Value:    it.Value,
			Version:  s.nextVersion,
		}
		if s.log.NeedsRoll(entry.StorageSize()) {
			s.rollLocked(p)
		}
		ref, err := s.log.Append(entry)
		if err != nil {
			items[i].Status = wire.StatusError
			continue
		}
		s.indexEntry(entry, ref)
		items[i] = wire.MultiWriteResult{Status: wire.StatusOK, Version: entry.Version}
		s.stats.WritesOK.Inc()
		if s.cfg.ReplicationFactor > 0 {
			if _, ok := segObjs[ref.Segment]; !ok {
				segOrder = append(segOrder, ref.Segment)
			}
			segObjs[ref.Segment] = append(segObjs[ref.Segment], wire.Object{
				Table:    it.Table,
				KeyHash:  hashes[i],
				Key:      it.Key,
				ValueLen: it.ValueLen,
				Version:  entry.Version,
			})
		}
	}
	s.logMu.Unlock()
	for _, seg := range segOrder {
		s.replicateBatch(p, seg, segObjs[seg])
	}
	s.ep.Reply(req, &wire.MultiWriteResp{Status: wire.StatusOK, Items: items})
}

// appendLocked runs the serialized section of the write path: contention-
// inflated service cost, segment roll (with replica open/close), log
// append and hash-table update. It returns the assigned version and the
// segment the entry landed in. forceVersion > 0 pins the version (replay).
func (s *Server) appendLocked(p *sim.Proc, entry logstore.Entry, forceVersion uint64, bumpVersion bool) (uint64, uint64, bool) {
	waiters := s.logMu.Waiters()
	s.lockWithSpin(p, s.logMu)
	cost := s.cfg.Costs.WriteBase +
		sim.Duration(int64(s.cfg.Costs.WriteContention)*int64(waiters*waiters)) +
		sim.Scale(s.cfg.Costs.PerKByte, float64(entry.ValueLen)/1024)
	s.busy(p, sim.Scale(cost, s.interference()))
	if s.dead {
		s.logMu.Unlock()
		return 0, 0, false
	}

	if forceVersion > 0 {
		entry.Version = forceVersion
	} else if bumpVersion {
		s.nextVersion++
		entry.Version = s.nextVersion
	}

	if s.log.NeedsRoll(entry.StorageSize()) {
		s.rollLocked(p)
	}
	ref, err := s.log.Append(entry)
	if err != nil {
		s.logMu.Unlock()
		return 0, 0, false
	}
	s.indexEntry(entry, ref)
	s.logMu.Unlock()
	return entry.Version, ref.Segment, true
}

// indexEntry updates the hash table for a freshly appended entry and marks
// any previous version dead.
func (s *Server) indexEntry(entry logstore.Entry, ref logstore.Ref) {
	eq := s.keyEq(entry.Table, entry.Key)
	if entry.Type == logstore.EntryTombstone {
		if old, ok := s.ht.Delete(entry.KeyHash, eq); ok {
			_ = s.log.MarkDead(logstore.UnpackRef(old))
		}
		return
	}
	if old, ok := s.ht.Replace(entry.KeyHash, eq, ref.Packed()); ok {
		_ = s.log.MarkDead(logstore.UnpackRef(old))
	} else {
		s.ht.Insert(entry.KeyHash, ref.Packed())
	}
}

// deleteLocked appends a tombstone for an existing key.
func (s *Server) deleteLocked(p *sim.Proc, table, keyHash uint64, key []byte) (uint64, uint64, wire.Status) {
	waiters := s.logMu.Waiters()
	s.lockWithSpin(p, s.logMu)
	cost := s.cfg.Costs.WriteBase +
		sim.Duration(int64(s.cfg.Costs.WriteContention)*int64(waiters*waiters))
	s.busy(p, sim.Scale(cost, s.interference()))
	if s.dead {
		s.logMu.Unlock()
		return 0, 0, wire.StatusError
	}
	eq := s.keyEq(table, key)
	packed, ok := s.ht.Lookup(keyHash, eq)
	if !ok {
		s.logMu.Unlock()
		return 0, 0, wire.StatusUnknownKey
	}
	oldRef := logstore.UnpackRef(packed)
	s.nextVersion++
	tomb := logstore.Entry{
		Type:          logstore.EntryTombstone,
		Table:         table,
		KeyHash:       keyHash,
		Key:           key,
		Version:       s.nextVersion,
		ObjectSegment: oldRef.Segment,
	}
	if s.log.NeedsRoll(tomb.StorageSize()) {
		s.rollLocked(p)
	}
	ref, err := s.log.Append(tomb)
	if err != nil {
		s.logMu.Unlock()
		return 0, 0, wire.StatusError
	}
	s.indexEntry(tomb, ref)
	seg := ref.Segment
	version := tomb.Version
	s.logMu.Unlock()
	return version, seg, wire.StatusOK
}

// rollLocked seals the head segment and opens a new one, closing the old
// replicas (async) and opening fresh ones (synchronously, so the new head
// is durable before use). Caller holds logMu.
func (s *Server) rollLocked(p *sim.Proc) {
	sealed, head := s.log.Roll()
	rf := s.cfg.ReplicationFactor
	if rf <= 0 {
		return
	}
	if sealed != nil {
		for _, b := range s.replicas[sealed.ID()] {
			s.ep.AsyncCall(b, &wire.CloseSegmentReq{
				Master: s.id, Segment: sealed.ID(), SegmentBytes: uint32(sealed.Accounted()),
			})
		}
		s.stats.SegmentsSealed.Inc()
	}
	backups := s.chooseBackups(rf)
	s.replicas[head.ID()] = backups
	futures := make([]*sim.Future[wire.Message], 0, len(backups))
	for _, b := range backups {
		s.busy(p, s.cfg.Costs.SendOverhead)
		futures = append(futures, s.ep.AsyncCall(b, &wire.OpenSegmentReq{Master: s.id, Segment: head.ID()}))
	}
	for i, f := range futures {
		if _, ok := f.GetTimeout(p, s.cfg.ReplicationTimeout); !ok {
			s.handleBackupFailure(p, backups[i], head.ID())
		}
	}
	// Update the will: the partition layout depends on data volume.
	s.sendWill()
}

// chooseBackups picks rf distinct random backups, never self. RAMCloud
// scatters each segment independently so recovery parallelizes across the
// whole cluster. If fewer candidates exist than rf, all are used. With
// FixedBackups the scatter is replaced by ring order (ablation mode).
func (s *Server) chooseBackups(rf int) []simnet.NodeID {
	cands := s.aliveBackupCandidates()
	if s.cfg.FixedBackups {
		// Rotate so the ring starts just after this server.
		for i, c := range cands {
			if c > s.ep.Node() {
				cands = append(cands[i:], cands[:i]...)
				break
			}
		}
	} else {
		rng := s.eng.Rand()
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	}
	if len(cands) > rf {
		cands = cands[:rf]
	}
	return cands
}

// replicateObject forwards one appended object to the backups of its
// segment and waits for every ack — the synchronous path that provides
// strong consistency and costs Finding 3's throughput.
func (s *Server) replicateObject(p *sim.Proc, segment uint64, obj wire.Object) {
	rf := s.cfg.ReplicationFactor
	if rf <= 0 {
		return
	}
	backups := s.replicas[segment]
	futures := make([]*sim.Future[wire.Message], 0, len(backups))
	for _, b := range backups {
		s.busy(p, s.replicationPostCost())
		futures = append(futures, s.ep.AsyncCall(b, s.replicationMsg(segment, []wire.Object{obj})))
	}
	if s.cfg.AsyncReplication {
		return // relaxed consistency: do not wait for backup acks
	}
	for i, f := range futures {
		if _, ok := f.GetTimeout(p, s.cfg.ReplicationTimeout); !ok {
			s.handleBackupFailure(p, backups[i], segment)
		}
	}
}

// replicateBatch sends a batch of replayed objects to the given segment's
// backups and waits for acks.
func (s *Server) replicateBatch(p *sim.Proc, segment uint64, objs []wire.Object) {
	rf := s.cfg.ReplicationFactor
	if rf <= 0 || len(objs) == 0 {
		return
	}
	backups := s.replicas[segment]
	futures := make([]*sim.Future[wire.Message], 0, len(backups))
	for _, b := range backups {
		s.busy(p, s.replicationPostCost())
		futures = append(futures, s.ep.AsyncCall(b, s.replicationMsg(segment, objs)))
	}
	if s.cfg.AsyncReplication {
		return
	}
	for i, f := range futures {
		if _, ok := f.GetTimeout(p, s.cfg.ReplicationTimeout); !ok {
			s.handleBackupFailure(p, backups[i], segment)
		}
	}
}

// replicationPostCost is the master CPU burned to issue one replication
// request: a full RPC send, or a cheap one-sided RDMA post (Sec. IX.B).
func (s *Server) replicationPostCost() sim.Duration {
	if s.cfg.RDMAReplication {
		return s.cfg.Costs.RDMAPost
	}
	return s.cfg.Costs.SendOverhead
}

// replicationMsg builds the replication request for the configured mode.
func (s *Server) replicationMsg(segment uint64, objs []wire.Object) wire.Message {
	if s.cfg.RDMAReplication {
		return &wire.RDMAWriteReq{Master: s.id, Segment: segment, Objects: objs}
	}
	return &wire.ReplicateReq{Master: s.id, Segment: segment, Objects: objs}
}

// handleBackupFailure replaces a dead backup for the currently open
// segment: pick a substitute, open a replica there and resend the open
// segment's content so the replication factor is restored.
func (s *Server) handleBackupFailure(p *sim.Proc, failed simnet.NodeID, segment uint64) {
	s.deadPeers[failed] = true
	s.stats.BackupFailures.Inc()
	seg, ok := s.log.Segment(segment)
	if !ok || seg.Sealed() {
		// Sealed segments keep their surviving replicas; full backup
		// recovery (re-replicating sealed segments) is out of scope.
		s.removeReplica(segment, failed)
		return
	}
	cands := s.aliveBackupCandidates()
	var sub simnet.NodeID = -1
	current := s.replicas[segment]
	for _, c := range cands {
		inUse := false
		for _, cur := range current {
			if cur == c {
				inUse = true
				break
			}
		}
		if !inUse {
			sub = c
			break
		}
	}
	s.removeReplica(segment, failed)
	if sub < 0 {
		return // no substitute available; degraded durability
	}
	if _, ok := s.ep.CallTimeout(p, sub, &wire.OpenSegmentReq{Master: s.id, Segment: segment}, s.cfg.ReplicationTimeout); !ok {
		return
	}
	// Resend everything appended to the open segment so far.
	objs := make([]wire.Object, 0, seg.Entries())
	for i := 0; i < seg.Entries(); i++ {
		e, err := seg.EntryAt(i)
		if err != nil {
			continue
		}
		objs = append(objs, entryToObject(e))
	}
	if _, ok := s.ep.CallTimeout(p, sub, &wire.ReplicateReq{Master: s.id, Segment: segment, Objects: objs}, s.cfg.ReplicationTimeout); !ok {
		return
	}
	s.replicas[segment] = append(s.replicas[segment], sub)
}

func (s *Server) removeReplica(segment uint64, backup simnet.NodeID) {
	cur := s.replicas[segment]
	out := cur[:0]
	for _, b := range cur {
		if b != backup {
			out = append(out, b)
		}
	}
	s.replicas[segment] = out
}

func entryToObject(e *logstore.Entry) wire.Object {
	return wire.Object{
		Table:     e.Table,
		KeyHash:   e.KeyHash,
		Key:       e.Key,
		ValueLen:  e.ValueLen,
		Value:     e.Value,
		Version:   e.Version,
		Tombstone: e.Type == logstore.EntryTombstone,
	}
}

// sendWill pushes an updated recovery will to the coordinator: the owned
// hash space split into partitions of roughly PartitionBytes of live data.
func (s *Server) sendWill() {
	parts := s.computeWill()
	s.ep.AsyncCall(s.coordinator, &wire.SetWillReq{Master: s.id, Partitions: parts})
}

// computeWill splits the master's owned ranges into partitions sized so
// each holds about PartitionBytes of live data — but never fewer than the
// number of peer servers: RAMCloud scatters recovery "to have as many
// machines performing the crash-recovery as possible" (paper Sec. II-B).
func (s *Server) computeWill() []wire.WillPartition {
	nParts := int(s.log.LiveBytes()/s.cfg.PartitionBytes) + 1
	if peers := len(s.peers) - 1; nParts < peers {
		nParts = peers
	}
	if nParts > 64 {
		nParts = 64
	}
	return SplitRanges(s.tablets, nParts)
}

// SplitRanges cuts the union of tablet hash ranges into n partitions of
// roughly equal hash-space size. Exported for the coordinator and tests.
func SplitRanges(tablets []wire.Tablet, n int) []wire.WillPartition {
	if len(tablets) == 0 || n <= 0 {
		return nil
	}
	var total uint64
	for _, t := range tablets {
		total += t.EndHash - t.StartHash + 1
	}
	if n > len(tablets) {
		// Split each tablet proportionally to reach ~n partitions.
		perTablet := (n + len(tablets) - 1) / len(tablets)
		var out []wire.WillPartition
		for _, t := range tablets {
			span := t.EndHash - t.StartHash + 1
			step := span / uint64(perTablet)
			if step == 0 {
				step = 1
			}
			start := t.StartHash
			for i := 0; i < perTablet; i++ {
				end := start + step - 1
				if i == perTablet-1 || end > t.EndHash || end < start {
					end = t.EndHash
				}
				out = append(out, wire.WillPartition{FirstHash: start, LastHash: end})
				if end == t.EndHash {
					break
				}
				start = end + 1
			}
		}
		return out
	}
	// n <= tablets: one partition per tablet (coarse but correct).
	out := make([]wire.WillPartition, 0, len(tablets))
	for _, t := range tablets {
		out = append(out, wire.WillPartition{FirstHash: t.StartHash, LastHash: t.EndHash})
	}
	return out
}

// FastLoad inserts a record directly into the master's log, hash table and
// replica sets without consuming simulated time. It reproduces the state a
// YCSB load phase would build so experiments can start from a full store.
// Returns the segments sealed during the load so callers can verify.
func (s *Server) FastLoad(table uint64, key []byte, valueLen uint32) error {
	if s.dead {
		return fmt.Errorf("server %d is dead", s.id)
	}
	keyHash := hashtable.HashKey(table, key)
	s.nextVersion++
	entry := logstore.Entry{
		Type:     logstore.EntryObject,
		Table:    table,
		KeyHash:  keyHash,
		Key:      key,
		ValueLen: valueLen,
		Version:  s.nextVersion,
	}
	if s.log.NeedsRoll(entry.StorageSize()) {
		sealed, head := s.log.Roll()
		rf := s.cfg.ReplicationFactor
		if rf > 0 {
			if sealed != nil {
				s.fastSealReplicas(sealed)
			}
			backups := s.chooseBackups(rf)
			s.replicas[head.ID()] = backups
			for _, b := range backups {
				s.fastOpenReplica(b, head.ID())
			}
		}
	}
	ref, err := s.log.Append(entry)
	if err != nil {
		return err
	}
	s.indexEntry(entry, ref)
	if s.cfg.ReplicationFactor > 0 {
		obj := entryToObject(&entry)
		for _, b := range s.replicas[ref.Segment] {
			s.fastAppendReplica(b, ref.Segment, obj)
		}
	}
	return nil
}
