package server

import (
	"fmt"

	"ramcloud/internal/logstore"
	"ramcloud/internal/rpc"
	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// This file implements tablet migration, the mechanism behind re-spreading
// load onto a restarted server: the coordinator asks the current owner to
// MigrateTablet a hash range to a destination master. The source freezes the
// range (clients get StatusRetry), walks its log for the range's live
// objects, ships them in batches (TakeTabletReq) and finally drops ownership
// so subsequent client ops re-route via the coordinator.

const migrateBatchTimeout = 5 * sim.Second

// migrateBatch is the number of objects shipped per TakeTabletReq. Larger
// than ReplayBatch (often 1) because migration is a bulk transfer, not a
// latency-sensitive replay.
const migrateBatch = 64

// PeerRejoined clears the permanent dead mark for a restarted peer so it
// becomes a backup candidate again.
func (s *Server) PeerRejoined(addr simnet.NodeID) {
	delete(s.deadPeers, addr)
}

// frozenKey reports whether (table, keyHash) is inside a range currently
// being migrated away. Frozen keys answer StatusRetry: the client backs off
// and retries, and after the migration lands it is re-routed by the
// WrongServer path.
func (s *Server) frozenKey(table, keyHash uint64) bool {
	for _, t := range s.frozen {
		if t.Table == table && keyHash >= t.StartHash && keyHash <= t.EndHash {
			return true
		}
	}
	return false
}

// serveMigrateTablet hands the transfer to a dedicated proc so the backup
// service thread is not captive for the whole migration (replication
// requests from other masters keep flowing). The reply is sent when the
// migration completes.
func (s *Server) serveMigrateTablet(req rpc.Request, m *wire.MigrateTabletReq) {
	s.eng.Go(fmt.Sprintf("srv%d-migrate-%x", s.id, m.FirstHash), func(p *sim.Proc) {
		s.migrateTablet(p, req, m)
	})
}

func (s *Server) migrateTablet(p *sim.Proc, req rpc.Request, m *wire.MigrateTabletReq) {
	if s.dead {
		return
	}
	if !s.ownsKey(m.Table, m.FirstHash) || !s.ownsKey(m.Table, m.LastHash) {
		s.ep.Reply(req, &wire.MigrateTabletResp{Status: wire.StatusWrongServer})
		return
	}
	rng := wire.Tablet{Table: m.Table, StartHash: m.FirstHash, EndHash: m.LastHash, Master: s.id}
	s.frozen = append(s.frozen, rng)
	defer s.unfreeze(rng)

	objs, _ := s.collectRange(p, m.Table, m.FirstHash, m.LastHash)
	for off := 0; off < len(objs); off += migrateBatch {
		end := off + migrateBatch
		if end > len(objs) {
			end = len(objs)
		}
		s.busy(p, s.cfg.Costs.SendOverhead)
		resp, ok := s.ep.CallTimeout(p, simnet.NodeID(m.Dst), &wire.TakeTabletReq{
			Table:     m.Table,
			FirstHash: m.FirstHash,
			LastHash:  m.LastHash,
			Objects:   objs[off:end],
		}, migrateBatchTimeout)
		if s.dead {
			return
		}
		if !ok {
			s.ep.Reply(req, &wire.MigrateTabletResp{Status: wire.StatusError})
			return
		}
		if tr, good := resp.(*wire.TakeTabletResp); !good || tr.Status != wire.StatusOK {
			s.ep.Reply(req, &wire.MigrateTabletResp{Status: wire.StatusError})
			return
		}
	}
	s.dropRange(p, m.Table, m.FirstHash, m.LastHash, objs)
	s.stats.TabletsMigratedOut.Inc()
	s.ep.Reply(req, &wire.MigrateTabletResp{Status: wire.StatusOK, Moved: uint32(len(objs))})
}

// collectRange snapshots the live objects of [first, last] under the log
// lock, using the cleaner's liveness test (hash-table entry still points at
// this exact log position). The scan CPU is charged after the lock drops so
// writers outside the frozen range are not stalled for the whole walk.
func (s *Server) collectRange(p *sim.Proc, table, first, last uint64) ([]wire.Object, []logstore.Ref) {
	s.lockWithSpin(p, s.logMu)
	var objs []wire.Object
	var refs []logstore.Ref
	head := s.log.Head()
	if head == nil {
		s.logMu.Unlock()
		return nil, nil
	}
	for id := uint64(0); id <= head.ID(); id++ {
		seg, ok := s.log.Segment(id)
		if !ok {
			continue
		}
		for i := 0; i < seg.Entries(); i++ {
			e, err := seg.EntryAt(i)
			if err != nil || e.Type != logstore.EntryObject {
				continue
			}
			if e.Table != table || e.KeyHash < first || e.KeyHash > last {
				continue
			}
			ref := logstore.Ref{Segment: id, Index: i}
			cur, found := s.ht.Lookup(e.KeyHash, s.keyEq(e.Table, e.Key))
			if !found || logstore.UnpackRef(cur) != ref {
				continue
			}
			objs = append(objs, entryToObject(e))
			refs = append(refs, ref)
		}
	}
	s.logMu.Unlock()
	s.busy(p, sim.Scale(s.cfg.Costs.Read, float64(len(objs))))
	return objs, refs
}

// dropRange removes ownership of [first, last] (splitting any tablet the
// range cuts through) and unindexes the moved objects so their log space is
// reclaimable. The range is frozen, so no writer raced the collect.
func (s *Server) dropRange(p *sim.Proc, table, first, last uint64, moved []wire.Object) {
	s.lockWithSpin(p, s.logMu)
	var out []wire.Tablet
	for _, t := range s.tablets {
		if t.Table != table || t.EndHash < first || t.StartHash > last {
			out = append(out, t)
			continue
		}
		if t.StartHash < first {
			out = append(out, wire.Tablet{Table: table, StartHash: t.StartHash, EndHash: first - 1, Master: s.id})
		}
		if t.EndHash > last {
			out = append(out, wire.Tablet{Table: table, StartHash: last + 1, EndHash: t.EndHash, Master: s.id})
		}
	}
	s.tablets = out
	for i := range moved {
		o := &moved[i]
		if old, ok := s.ht.Delete(o.KeyHash, s.keyEq(o.Table, o.Key)); ok {
			_ = s.log.MarkDead(logstore.UnpackRef(old))
		}
	}
	s.logMu.Unlock()
}

func (s *Server) unfreeze(rng wire.Tablet) {
	out := s.frozen[:0]
	for _, t := range s.frozen {
		if t != rng {
			out = append(out, t)
		}
	}
	s.frozen = out
}

// serveTakeTablet receives one batch of a migrating tablet. Objects are
// re-inserted through the replay path (versions preserved, staleness
// checked) and re-replicated to this master's own backups; the version
// counter is pulled forward so post-migration writes never regress below a
// migrated version.
func (s *Server) serveTakeTablet(p *sim.Proc, req rpc.Request, m *wire.TakeTabletReq) {
	if s.dead {
		return
	}
	var batch []wire.Object
	var batchSeg uint64
	flush := func() {
		if len(batch) > 0 {
			s.replicateReplaySerial(p, batchSeg, batch)
			batch = nil
		}
	}
	for i := range m.Objects {
		obj := &m.Objects[i]
		if obj.Version > s.nextVersion {
			s.nextVersion = obj.Version
		}
		seg, replayed := s.replayObject(p, obj)
		if !replayed {
			continue
		}
		s.stats.ObjectsMigrated.Inc()
		if seg != batchSeg {
			flush()
			batchSeg = seg
		}
		batch = append(batch, *obj)
		if len(batch) >= migrateBatch {
			flush()
		}
		if s.dead {
			return
		}
	}
	flush()
	s.ep.Reply(req, &wire.TakeTabletResp{Status: wire.StatusOK})
}
