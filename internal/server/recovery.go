package server

import (
	"fmt"

	"ramcloud/internal/logstore"
	"ramcloud/internal/rpc"
	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// This file implements the recovery-master role: replaying one partition
// of a crashed master's log. Segments are fetched from backups (disk read
// + network transfer) and each object is re-inserted through the normal
// write path — including re-replication to fresh backups at the configured
// replication factor. That "replayed data is re-inserted in the same
// fashion" property is why higher replication factors lengthen recovery
// (Finding 6).

const recoveryFetchTimeout = 20 * sim.Second

func (s *Server) serveRecover(p *sim.Proc, req rpc.Request, m *wire.RecoverReq) {
	s.ep.Reply(req, &wire.RecoverResp{Status: wire.StatusOK})
	s.eng.Go(fmt.Sprintf("srv%d-replay-%x", s.id, m.FirstHash), func(rp *sim.Proc) {
		s.replayPartition(rp, m)
	})
}

func (s *Server) replayPartition(p *sim.Proc, m *wire.RecoverReq) {
	s.recoveryActive++
	if s.recoveryActive == 1 && !s.dead {
		// The replay pipeline (fetch + replay threads) busy-polls for the
		// whole recovery, like RAMCloud's recovery threads: CPU jumps to
		// ~92% on the survivors (paper Fig. 9a).
		s.node.PinCores(2)
	}
	defer func() {
		s.recoveryActive--
		if s.recoveryActive == 0 && !s.dead {
			s.node.PinCores(-2)
		}
	}()

	ok := true
	var batch []wire.Object
	var batchSeg uint64

	flush := func() {
		if len(batch) > 0 {
			s.replicateReplaySerial(p, batchSeg, batch)
			batch = nil
		}
	}

	for _, loc := range m.Segments {
		resp, got := s.ep.CallTimeout(p, simnet.NodeID(loc.Backup), &wire.GetRecoveryDataReq{
			Master:    m.Crashed,
			Segment:   loc.Segment,
			FirstHash: m.FirstHash,
			LastHash:  m.LastHash,
		}, recoveryFetchTimeout)
		if !got {
			ok = false // backup died mid-recovery; partition incomplete
			continue
		}
		data := resp.(*wire.GetRecoveryDataResp)
		if data.Status != wire.StatusOK {
			ok = false
			continue
		}
		for i := range data.Objects {
			obj := &data.Objects[i]
			seg, replayed := s.replayObject(p, obj)
			if !replayed {
				continue
			}
			if seg != batchSeg {
				flush()
				batchSeg = seg
			}
			batch = append(batch, *obj)
			if len(batch) >= s.cfg.ReplayBatch {
				flush()
			}
			if s.dead {
				return
			}
		}
	}
	flush()
	s.stats.ReplaysDone.Inc()
	s.ep.CallTimeout(p, s.coordinator, &wire.RecoveryDoneReq{
		Crashed:   m.Crashed,
		FirstHash: m.FirstHash,
		Ok:        ok,
	}, 5*sim.Second)
}

// replayObject re-inserts one recovered object (or tombstone). Versions
// are preserved; an object older than what the master already holds for
// that key is skipped. Returns the segment the entry landed in.
func (s *Server) replayObject(p *sim.Proc, obj *wire.Object) (uint64, bool) {
	s.busy(p, s.cfg.Costs.ReplayObject)
	entry := logstore.Entry{
		Type:     logstore.EntryObject,
		Table:    obj.Table,
		KeyHash:  obj.KeyHash,
		Key:      obj.Key,
		ValueLen: obj.ValueLen,
		Value:    obj.Value,
	}
	if obj.Tombstone {
		entry.Type = logstore.EntryTombstone
		entry.ValueLen = 0
		entry.Value = nil
	}

	// Staleness check: replay may deliver older versions after newer ones
	// when segments interleave; never regress.
	eq := s.keyEq(obj.Table, obj.Key)
	if packed, found := s.ht.Lookup(obj.KeyHash, eq); found {
		if cur, err := s.log.Get(logstore.UnpackRef(packed)); err == nil && cur.Version >= obj.Version {
			return 0, false
		}
	}

	_, seg, appended := s.appendLocked(p, entry, obj.Version, false)
	if !appended {
		return 0, false
	}
	s.stats.ObjectsReplay.Inc()
	return seg, true
}

// replicateReplaySerial re-replicates replayed objects one backup at a
// time, waiting for each acknowledgement before contacting the next —
// the paper's description of recovery: "inserting in DRAM, replicating it
// to backup replicas, waiting for acknowledgement and so on". This serial
// chain is what makes recovery time grow with the replication factor
// (Finding 6).
func (s *Server) replicateReplaySerial(p *sim.Proc, segment uint64, objs []wire.Object) {
	if s.cfg.ReplicationFactor <= 0 || len(objs) == 0 {
		return
	}
	backups := s.replicas[segment]
	for _, b := range backups {
		s.busy(p, s.replicationPostCost())
		resp, ok := s.ep.CallTimeout(p, b, s.replicationMsg(segment, objs), s.cfg.ReplicationTimeout)
		if !ok || resp == nil {
			s.handleBackupFailure(p, b, segment)
		}
	}
}
