package server

import (
	"fmt"

	"ramcloud/internal/logstore"
	"ramcloud/internal/sim"
)

// This file runs the log cleaner as a background proc: when memory
// utilization passes the threshold, live entries are compacted out of the
// emptiest sealed segments. Relocation happens under the log-head lock and
// burns worker-class CPU, so cleaning visibly competes with foreground
// writes — the effect the paper avoided by sizing workloads below the
// threshold, and which the cleaner ablation bench quantifies.
//
// Compaction here is in-memory (RAMCloud's first cleaning level): backup
// replicas of freed segments are not rewritten, which trades some disk
// space for not re-replicating survivors.

const cleanerCheckInterval = 50 * sim.Millisecond

// cleanerLoop polls utilization and compacts when needed.
func (s *Server) cleanerLoop(p *sim.Proc) {
	if s.cfg.CleanerThreshold <= 0 {
		return
	}
	for {
		p.Sleep(cleanerCheckInterval)
		if s.dead {
			return
		}
		if s.log.MemoryUtilization() < s.cfg.CleanerThreshold {
			continue
		}
		s.cleanOnce(p)
		if s.dead {
			return
		}
	}
}

// cleanOnce runs one cleaning pass of up to four victim segments.
func (s *Server) cleanOnce(p *sim.Proc) {
	s.lockWithSpin(p, s.logMu)
	isLive := func(ref logstore.Ref, e *logstore.Entry) bool {
		cur, ok := s.ht.Lookup(e.KeyHash, s.keyEq(e.Table, e.Key))
		return ok && logstore.UnpackRef(cur) == ref
	}
	relocated := func(old, new logstore.Ref, e *logstore.Entry) {
		if e.Type != logstore.EntryObject {
			return
		}
		s.ht.Replace(e.KeyHash, func(r uint64) bool { return logstore.UnpackRef(r) == old }, new.Packed())
	}
	stats, err := s.log.Clean(4, isLive, relocated)
	if err != nil {
		s.logMu.Unlock()
		panic(fmt.Sprintf("server %d: cleaner: %v", s.id, err))
	}
	// CPU cost of the copy: per relocated entry plus per byte moved.
	moved := stats.EntriesRelocated + stats.TombstonesRelocated
	cost := sim.Duration(int64(2*sim.Microsecond)*int64(moved)) +
		sim.Scale(s.cfg.Costs.PerKByte, float64(stats.BytesRelocated)/1024)
	s.busy(p, cost)
	s.logMu.Unlock()
	s.stats.CleanerPasses.Inc()
	s.stats.CleanerFreed.Add(int64(stats.SegmentsFreed))
	s.stats.CleanerRelocated.Add(int64(moved))
}
