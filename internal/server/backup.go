package server

import (
	"sort"

	"ramcloud/internal/rpc"
	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// This file implements the backup role: open replicas staged in DRAM,
// sealed replicas spilled to disk by a flush proc, and the recovery read
// path. Backup requests run on the same worker pool as client requests —
// the collocation whose contention the paper measures.

// Registry resolves a fabric address to its server object, used only by
// the zero-time bulk loader (FastLoad) to build cluster state directly.
type Registry func(simnet.NodeID) *Server

// SetRegistry installs the cluster's server lookup for bulk loading.
func (s *Server) SetRegistry(r Registry) { s.registry = r }

func (s *Server) serveOpenSegment(p *sim.Proc, req rpc.Request, m *wire.OpenSegmentReq) {
	s.busy(p, sim.Scale(s.cfg.Costs.SegmentOpen, s.interference()))
	key := replicaKey{master: m.Master, segment: m.Segment}
	if _, exists := s.openReplicas[key]; !exists {
		s.openReplicas[key] = &replica{key: key}
		s.stats.SegmentsOpened.Inc()
	}
	s.ep.Reply(req, &wire.OpenSegmentResp{Status: wire.StatusOK})
}

func (s *Server) serveReplicate(p *sim.Proc, req rpc.Request, m *wire.ReplicateReq) {
	key := replicaKey{master: m.Master, segment: m.Segment}
	r, ok := s.openReplicas[key]
	if !ok {
		s.ep.Reply(req, &wire.ReplicateResp{Status: wire.StatusError})
		return
	}
	var bytes int
	for i := range m.Objects {
		bytes += objectStorageBytes(&m.Objects[i])
	}
	cost := sim.Duration(int64(s.cfg.Costs.ReplicaAppend)*int64(len(m.Objects))) +
		sim.Scale(s.cfg.Costs.PerKByte, float64(bytes)/1024)
	s.busy(p, sim.Scale(cost, s.interference()))
	r.objects = append(r.objects, m.Objects...)
	r.bytes += bytes
	s.stats.ReplicaAppends.Add(int64(len(m.Objects)))
	s.ep.Reply(req, &wire.ReplicateResp{Status: wire.StatusOK})
}

func (s *Server) serveCloseSegment(p *sim.Proc, req rpc.Request, m *wire.CloseSegmentReq) {
	key := replicaKey{master: m.Master, segment: m.Segment}
	r, ok := s.openReplicas[key]
	if !ok {
		s.ep.Reply(req, &wire.CloseSegmentResp{Status: wire.StatusError})
		return
	}
	delete(s.openReplicas, key)
	r.sealed = true
	s.sealReplicaLocked(r)
	s.flushQ.Push(r)
	s.ep.Reply(req, &wire.CloseSegmentResp{Status: wire.StatusOK})
}

func (s *Server) sealReplicaLocked(r *replica) {
	byMaster, ok := s.sealedReplicas[r.key.master]
	if !ok {
		byMaster = make(map[uint64]*replica)
		s.sealedReplicas[r.key.master] = byMaster
	}
	byMaster[r.key.segment] = r
}

// flushLoop spills sealed replicas to disk. The disk write contends with
// recovery reads (Finding 6's disk interference).
func (s *Server) flushLoop(p *sim.Proc) {
	for {
		r := s.flushQ.Pop(p)
		if s.dead {
			return
		}
		if r == nil {
			continue
		}
		s.disk.Write(p, int64(r.bytes))
		if s.dead {
			return
		}
		r.onDisk = true
		s.stats.SegmentsFlush.Inc()
	}
}

func (s *Server) serveFreeReplicas(p *sim.Proc, req rpc.Request, m *wire.FreeReplicasReq) {
	s.busy(p, s.cfg.Costs.SegmentOpen)
	delete(s.sealedReplicas, m.Master)
	for key := range s.openReplicas {
		if key.master == m.Master {
			delete(s.openReplicas, key)
		}
	}
	for key := range s.recoveryReads {
		if key.master == m.Master {
			delete(s.recoveryReads, key)
		}
	}
	s.ep.Reply(req, &wire.FreeReplicasResp{Status: wire.StatusOK})
}

func (s *Server) serveInventory(p *sim.Proc, req rpc.Request, m *wire.SegmentInventoryReq) {
	s.busy(p, s.cfg.Costs.SegmentOpen)
	var infos []wire.SegmentInfo
	for segID, r := range s.sealedReplicas[m.Master] {
		infos = append(infos, wire.SegmentInfo{Segment: segID, Bytes: uint32(r.bytes)})
	}
	for key, r := range s.openReplicas {
		if key.master == m.Master {
			infos = append(infos, wire.SegmentInfo{Segment: key.segment, Bytes: uint32(r.bytes)})
		}
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Segment < infos[j].Segment })
	s.ep.Reply(req, &wire.SegmentInventoryResp{Status: wire.StatusOK, Segments: infos})
}

// serveGetRecoveryData returns a crashed master's segment content filtered
// to a key-hash partition. The replica is read from disk once per recovery
// and then served from memory for the other partitions' requests, like
// RAMCloud backups that read each segment once and split it.
func (s *Server) serveGetRecoveryData(p *sim.Proc, req rpc.Request, m *wire.GetRecoveryDataReq) {
	key := replicaKey{master: m.Master, segment: m.Segment}
	r := s.findReplica(key)
	if r == nil {
		s.ep.Reply(req, &wire.GetRecoveryDataResp{Status: wire.StatusError})
		return
	}
	if r.onDisk && !s.recoveryReads[key] {
		s.disk.Read(p, int64(r.bytes))
		if s.dead {
			return
		}
		s.recoveryReads[key] = true
	}
	var objs []wire.Object
	var filtered int
	for i := range r.objects {
		o := &r.objects[i]
		if o.KeyHash >= m.FirstHash && o.KeyHash <= m.LastHash {
			objs = append(objs, *o)
			filtered += objectStorageBytes(o)
		}
	}
	s.busy(p, sim.Scale(s.cfg.Costs.PerKByte, float64(filtered)/1024))
	s.ep.Reply(req, &wire.GetRecoveryDataResp{
		Status:       wire.StatusOK,
		SegmentBytes: uint32(r.bytes),
		Objects:      objs,
	})
}

func (s *Server) findReplica(key replicaKey) *replica {
	if r, ok := s.openReplicas[key]; ok {
		return r
	}
	if byMaster, ok := s.sealedReplicas[key.master]; ok {
		if r, ok := byMaster[key.segment]; ok {
			return r
		}
	}
	return nil
}

// objectStorageBytes mirrors logstore's accounted entry size for a wire
// object.
func objectStorageBytes(o *wire.Object) int {
	const header = 45 // logstore entryHeaderBytes
	return header + len(o.Key) + int(o.ValueLen)
}

// ReplicaCount reports how many replicas (open + sealed) this backup holds
// for the given master. Used by tests and verification tooling.
func (s *Server) ReplicaCount(master int32) int {
	n := len(s.sealedReplicas[master])
	for key := range s.openReplicas {
		if key.master == master {
			n++
		}
	}
	return n
}

// DiskBacklog returns how many sealed replicas have not yet been flushed.
func (s *Server) DiskBacklog() int {
	n := 0
	for _, byMaster := range s.sealedReplicas {
		for _, r := range byMaster {
			if !r.onDisk {
				n++
			}
		}
	}
	return n
}

// Fast (zero-time) replica construction for bulk loading -------------------

func (s *Server) fastOpenReplica(backup simnet.NodeID, segment uint64) {
	b := s.registry(backup)
	key := replicaKey{master: s.id, segment: segment}
	b.openReplicas[key] = &replica{key: key}
	b.stats.SegmentsOpened.Inc()
}

func (s *Server) fastAppendReplica(backup simnet.NodeID, segment uint64, obj wire.Object) {
	b := s.registry(backup)
	key := replicaKey{master: s.id, segment: segment}
	r, ok := b.openReplicas[key]
	if !ok {
		return
	}
	r.objects = append(r.objects, obj)
	r.bytes += objectStorageBytes(&obj)
	b.stats.ReplicaAppends.Inc()
}

// fastSealReplicas seals the replicas of a just-rolled segment on their
// backups and marks them on disk (the load phase's flushes are assumed
// complete before the experiment starts).
func (s *Server) fastSealReplicas(sealed interface{ ID() uint64 }) {
	segID := sealed.ID()
	for _, backup := range s.replicas[segID] {
		b := s.registry(backup)
		key := replicaKey{master: s.id, segment: segID}
		if r, ok := b.openReplicas[key]; ok {
			delete(b.openReplicas, key)
			r.sealed = true
			r.onDisk = true
			b.sealReplicaLocked(r)
		}
	}
}

// applyRDMAWrite deposits one-sided RDMA replication data directly into
// the target replica buffer. It runs at NIC level: no dispatch cost, no
// worker, no CPU accounting beyond the transfer time already paid on the
// fabric — the zero-CPU replication path the paper's Discussion proposes.
func (s *Server) applyRDMAWrite(m *wire.RDMAWriteReq) {
	key := replicaKey{master: m.Master, segment: m.Segment}
	r, ok := s.openReplicas[key]
	if !ok {
		// The buffer must be registered (opened) first; a miss means the
		// master raced a roll. The object is dropped at the NIC, exactly
		// like a one-sided write to an unregistered region.
		return
	}
	for i := range m.Objects {
		r.bytes += objectStorageBytes(&m.Objects[i])
	}
	r.objects = append(r.objects, m.Objects...)
	s.stats.ReplicaAppends.Add(int64(len(m.Objects)))
}
