package server

import (
	"testing"

	"ramcloud/internal/hashtable"
	"ramcloud/internal/logstore"
	"ramcloud/internal/machine"
	"ramcloud/internal/rpc"
	"ramcloud/internal/sim"
	"ramcloud/internal/simdisk"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// testRig wires a few servers with a stub coordinator endpoint that
// swallows wills and pings.
type testRig struct {
	eng     *sim.Engine
	net     *simnet.Network
	servers []*Server
	client  *rpc.Endpoint
}

func newRig(t *testing.T, n int, cfg Config) *testRig {
	t.Helper()
	eng := sim.New(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	coord := rpc.NewEndpoint(eng, net, simnet.NodeID(-1))
	eng.Go("stub-coord", func(p *sim.Proc) {
		for {
			req := coord.Inbound.Pop(p)
			switch req.Msg.(type) {
			case *wire.SetWillReq:
				coord.Reply(req, &wire.SetWillResp{Status: wire.StatusOK})
			case *wire.RecoveryDoneReq:
				coord.Reply(req, &wire.RecoveryDoneResp{Status: wire.StatusOK})
			}
		}
	})
	rig := &testRig{eng: eng, net: net}
	var addrs []simnet.NodeID
	reg := map[simnet.NodeID]*Server{}
	for i := 0; i < n; i++ {
		node := machine.NewNode(eng, i+1, machine.Grid5000Nancy())
		disk := simdisk.New(eng, simdisk.DefaultConfig())
		s := New(eng, node, net, disk, simnet.NodeID(-1), cfg)
		rig.servers = append(rig.servers, s)
		addrs = append(addrs, s.Addr())
		reg[s.Addr()] = s
	}
	for _, s := range rig.servers {
		s.SetPeers(addrs)
		s.SetRegistry(func(id simnet.NodeID) *Server { return reg[id] })
		s.AssignTablet(wire.Tablet{Table: 1, StartHash: 0, EndHash: ^uint64(0)})
		s.Start()
	}
	rig.client = rpc.NewEndpoint(eng, net, simnet.NodeID(999))
	return rig
}

func smallCfg(rf int) Config {
	cfg := DefaultConfig()
	cfg.ReplicationFactor = rf
	cfg.Log.SegmentBytes = 16 << 10
	cfg.Log.TotalBytes = 16 << 20
	return cfg
}

func TestServerWriteReadDeleteRPC(t *testing.T) {
	rig := newRig(t, 1, smallCfg(0))
	srv := rig.servers[0].Addr()
	var failures []string
	rig.eng.Go("client", func(p *sim.Proc) {
		w := rig.client.Call(p, srv, &wire.WriteReq{Table: 1, Key: []byte("k"), ValueLen: 100}).(*wire.WriteResp)
		if w.Status != wire.StatusOK || w.Version != 1 {
			failures = append(failures, "write status/version")
		}
		r := rig.client.Call(p, srv, &wire.ReadReq{Table: 1, Key: []byte("k")}).(*wire.ReadResp)
		if r.Status != wire.StatusOK || r.ValueLen != 100 || r.Version != 1 {
			failures = append(failures, "read mismatch")
		}
		w2 := rig.client.Call(p, srv, &wire.WriteReq{Table: 1, Key: []byte("k"), ValueLen: 50}).(*wire.WriteResp)
		if w2.Version != 2 {
			failures = append(failures, "overwrite version not bumped")
		}
		d := rig.client.Call(p, srv, &wire.DeleteReq{Table: 1, Key: []byte("k")}).(*wire.DeleteResp)
		if d.Status != wire.StatusOK {
			failures = append(failures, "delete failed")
		}
		r2 := rig.client.Call(p, srv, &wire.ReadReq{Table: 1, Key: []byte("k")}).(*wire.ReadResp)
		if r2.Status != wire.StatusUnknownKey {
			failures = append(failures, "read after delete should be UNKNOWN_KEY")
		}
		rig.eng.Stop()
	})
	rig.eng.Run()
	rig.eng.Shutdown()
	for _, f := range failures {
		t.Error(f)
	}
}

// TestServerMultiOpRPC drives the batch handlers directly: a MultiWrite
// batch appends everything under one lock (versions are consecutive), a
// MultiRead returns every item, and non-owned keys fail per item with
// WrongServer while the rest of the batch succeeds.
func TestServerMultiOpRPC(t *testing.T) {
	rig := newRig(t, 1, smallCfg(0))
	srv := rig.servers[0].Addr()
	var failures []string
	rig.eng.Go("client", func(p *sim.Proc) {
		items := []wire.MultiWriteItem{
			{Table: 1, Key: []byte("a"), ValueLen: 100},
			{Table: 1, Key: []byte("b"), ValueLen: 200},
			{Table: 1, Key: []byte("c"), ValueLen: 300},
		}
		w := rig.client.Call(p, srv, &wire.MultiWriteReq{Items: items}).(*wire.MultiWriteResp)
		for i, it := range w.Items {
			if it.Status != wire.StatusOK {
				failures = append(failures, "multiwrite item status")
			}
			if it.Version != uint64(i+1) {
				failures = append(failures, "multiwrite versions not consecutive")
			}
		}
		r := rig.client.Call(p, srv, &wire.MultiReadReq{Items: []wire.MultiReadItem{
			{Table: 1, Key: []byte("b")},
			{Table: 1, Key: []byte("missing")},
			{Table: 1, Key: []byte("c")},
		}}).(*wire.MultiReadResp)
		if r.Items[0].Status != wire.StatusOK || r.Items[0].ValueLen != 200 {
			failures = append(failures, "multiread item 0")
		}
		if r.Items[1].Status != wire.StatusUnknownKey {
			failures = append(failures, "multiread missing key should be UNKNOWN_KEY")
		}
		if r.Items[2].Status != wire.StatusOK || r.Items[2].ValueLen != 300 {
			failures = append(failures, "multiread item 2")
		}

		// Shrink ownership: "b" keys hash outside [0,10] with overwhelming
		// likelihood, so a mixed batch must fail only the moved items.
		rig.servers[0].DropTablets(1)
		rig.servers[0].AssignTablet(wire.Tablet{Table: 1, StartHash: 0, EndHash: 10})
		r2 := rig.client.Call(p, srv, &wire.MultiReadReq{Items: []wire.MultiReadItem{
			{Table: 1, Key: []byte("b")},
		}}).(*wire.MultiReadResp)
		if r2.Status != wire.StatusOK || r2.Items[0].Status != wire.StatusWrongServer {
			failures = append(failures, "moved item should be WRONG_SERVER per item")
		}
		rig.eng.Stop()
	})
	rig.eng.Run()
	rig.eng.Shutdown()
	for _, f := range failures {
		t.Error(f)
	}
	if got := rig.servers[0].Stats().WritesOK.Value(); got != 3 {
		t.Errorf("WritesOK = %d, want 3", got)
	}
	if got := rig.servers[0].Stats().ReadsOK.Value(); got != 2 {
		t.Errorf("ReadsOK = %d, want 2", got)
	}
}

func TestServerWrongServerStatus(t *testing.T) {
	rig := newRig(t, 1, smallCfg(0))
	rig.servers[0].DropTablets(1)
	rig.servers[0].AssignTablet(wire.Tablet{Table: 1, StartHash: 0, EndHash: 10})
	srv := rig.servers[0].Addr()
	var status wire.Status
	rig.eng.Go("client", func(p *sim.Proc) {
		// Most keys hash far above 10.
		resp := rig.client.Call(p, srv, &wire.ReadReq{Table: 1, Key: []byte("somekey")}).(*wire.ReadResp)
		status = resp.Status
		rig.eng.Stop()
	})
	rig.eng.Run()
	rig.eng.Shutdown()
	if status != wire.StatusWrongServer {
		t.Fatalf("status = %v", status)
	}
	if rig.servers[0].Stats().WrongServer.Value() != 1 {
		t.Fatal("WrongServer counter not bumped")
	}
}

func TestReplicationWaitsForAllBackups(t *testing.T) {
	rig := newRig(t, 4, smallCfg(3))
	srv := rig.servers[0].Addr()
	rig.eng.Go("client", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			resp := rig.client.Call(p, srv, &wire.WriteReq{Table: 1, Key: []byte{byte(i)}, ValueLen: 64}).(*wire.WriteResp)
			if resp.Status != wire.StatusOK {
				t.Errorf("write %d: %v", i, resp.Status)
			}
		}
		rig.eng.Stop()
	})
	rig.eng.Run()
	rig.eng.Shutdown()
	total := int64(0)
	for _, s := range rig.servers[1:] {
		total += s.Stats().ReplicaAppends.Value()
	}
	if total != 50*3 {
		t.Fatalf("replica appends = %d, want 150", total)
	}
	// Replicas never land on the master itself.
	if rig.servers[0].ReplicaCount(rig.servers[0].ID()) != 0 {
		t.Fatal("master replicated to itself")
	}
}

func TestSegmentRollClosesAndFlushesReplicas(t *testing.T) {
	cfg := smallCfg(2)
	rig := newRig(t, 3, cfg)
	srv := rig.servers[0].Addr()
	rig.eng.Go("client", func(p *sim.Proc) {
		// Each entry ~1KB + overhead; 16KB segments roll every ~15 writes.
		for i := 0; i < 100; i++ {
			rig.client.Call(p, srv, &wire.WriteReq{Table: 1, Key: ycsbKey(i), ValueLen: 1024})
		}
		p.Sleep(2 * sim.Second) // allow async flushes
		rig.eng.Stop()
	})
	rig.eng.Run()
	rig.eng.Shutdown()
	if rig.servers[0].Stats().SegmentsSealed.Value() == 0 {
		t.Fatal("no segments sealed despite rolling writes")
	}
	flushed := int64(0)
	for _, s := range rig.servers {
		flushed += s.Stats().SegmentsFlush.Value()
	}
	if flushed == 0 {
		t.Fatal("no replica flushed to disk")
	}
}

func TestBackupFailureReplacement(t *testing.T) {
	cfg := smallCfg(2)
	cfg.ReplicationTimeout = 50 * sim.Millisecond
	rig := newRig(t, 4, cfg)
	srv := rig.servers[0].Addr()
	rig.eng.Go("client", func(p *sim.Proc) {
		rig.client.Call(p, srv, &wire.WriteReq{Table: 1, Key: []byte("a"), ValueLen: 64})
		// Kill every other server's candidacy except one by killing one
		// current backup; the master must replace it and keep writing.
		var victim *Server
		for _, s := range rig.servers[1:] {
			if s.ReplicaCount(rig.servers[0].ID()) > 0 {
				victim = s
				break
			}
		}
		if victim == nil {
			t.Error("no backup found")
			rig.eng.Stop()
			return
		}
		victim.Kill()
		resp := rig.client.Call(p, srv, &wire.WriteReq{Table: 1, Key: []byte("b"), ValueLen: 64}).(*wire.WriteResp)
		if resp.Status != wire.StatusOK {
			t.Errorf("write after backup death: %v", resp.Status)
		}
		rig.eng.Stop()
	})
	rig.eng.Run()
	rig.eng.Shutdown()
	if rig.servers[0].Stats().BackupFailures.Value() == 0 {
		t.Fatal("backup failure not detected")
	}
}

func TestCleanerReclaimsUnderPressure(t *testing.T) {
	cfg := smallCfg(0)
	cfg.Log.SegmentBytes = 8 << 10
	cfg.Log.TotalBytes = 96 << 10 // 12 segments
	cfg.CleanerThreshold = 0.6
	rig := newRig(t, 1, cfg)
	srv := rig.servers[0].Addr()
	rig.eng.Go("client", func(p *sim.Proc) {
		// Overwrite 8 keys repeatedly: log churns, cleaner must keep up.
		for round := 0; round < 200; round++ {
			k := []byte{byte(round % 8)}
			resp := rig.client.Call(p, srv, &wire.WriteReq{Table: 1, Key: k, ValueLen: 900}).(*wire.WriteResp)
			if resp.Status != wire.StatusOK {
				t.Errorf("write %d failed: %v (log full? cleaner stuck?)", round, resp.Status)
				break
			}
			p.Sleep(2 * sim.Millisecond)
		}
		rig.eng.Stop()
	})
	rig.eng.Run()
	rig.eng.Shutdown()
	s := rig.servers[0]
	if s.Stats().CleanerPasses.Value() == 0 || s.Stats().CleanerFreed.Value() == 0 {
		t.Fatalf("cleaner never ran: passes=%d freed=%d",
			s.Stats().CleanerPasses.Value(), s.Stats().CleanerFreed.Value())
	}
	// All 8 keys still readable with their latest size.
	if s.Log().MemoryUtilization() > 1.0 {
		t.Fatal("log over capacity")
	}
}

func TestSplitRanges(t *testing.T) {
	tablets := []wire.Tablet{{Table: 1, StartHash: 0, EndHash: 999}}
	parts := SplitRanges(tablets, 4)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	// Contiguous, non-overlapping, full coverage.
	if parts[0].FirstHash != 0 || parts[len(parts)-1].LastHash != 999 {
		t.Fatalf("bad bounds: %+v", parts)
	}
	for i := 1; i < len(parts); i++ {
		if parts[i].FirstHash != parts[i-1].LastHash+1 {
			t.Fatalf("gap between %d and %d: %+v", i-1, i, parts)
		}
	}
	if got := SplitRanges(nil, 3); got != nil {
		t.Fatal("nil tablets should give nil will")
	}
}

func TestKillReleasesPinnedCores(t *testing.T) {
	rig := newRig(t, 1, smallCfg(0))
	s := rig.servers[0]
	rig.eng.Go("killer", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		s.Kill()
		rig.eng.Stop()
	})
	rig.eng.Run()
	rig.eng.Shutdown()
	if !s.Dead() {
		t.Fatal("server should be dead")
	}
	if s.node.PinnedCores() != 0 {
		t.Fatalf("pinned cores = %d after kill", s.node.PinnedCores())
	}
}

func ycsbKey(i int) []byte {
	return []byte{byte(i), byte(i >> 8), 'k', 'e', 'y'}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Workers+1 > machine.Grid5000Nancy().Cores {
		t.Fatal("workers + dispatch exceed node cores")
	}
	if cfg.Log.SegmentBytes != 8<<20 {
		t.Fatalf("segment size = %d, want 8MB (paper)", cfg.Log.SegmentBytes)
	}
	if cfg.Costs.InterferenceFactor < 1 {
		t.Fatal("interference factor must be >= 1")
	}
}

func TestEntryToObject(t *testing.T) {
	e := logstore.Entry{
		Type:     logstore.EntryObject,
		Table:    3,
		KeyHash:  hashtable.HashKey(3, []byte("kk")),
		Key:      []byte("kk"),
		ValueLen: 77,
		Version:  9,
	}
	o := entryToObject(&e)
	if o.Table != 3 || o.ValueLen != 77 || o.Version != 9 || o.Tombstone {
		t.Fatalf("object = %+v", o)
	}
	e.Type = logstore.EntryTombstone
	if !entryToObject(&e).Tombstone {
		t.Fatal("tombstone flag lost")
	}
}
