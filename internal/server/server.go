// Package server implements a RAMCloud storage server: a master service
// (log-structured memory + hash table, serving reads and writes) collocated
// with a backup service (replica staging in DRAM, spill to disk) in a
// single process, sharing one dispatch thread and one worker pool — the
// arrangement whose contention effects the paper measures.
//
// Threading model, mirroring RAMCloud:
//
//   - One dispatch thread busy-polls the NIC. It permanently pins a core
//     (the paper's 25% CPU floor on 4-core nodes) and serializes request
//     hand-off at a fixed per-request cost.
//   - N worker threads (cores-1) execute requests. An idle worker spins
//     for Costs.SpinTimeout before sleeping, and the dispatch wakes the
//     most-recently-active worker first (cache affinity). Both choices are
//     what make CPU usage saturate long before throughput does (Finding 1).
//   - Writes serialize on the log head; queueing there inflates service
//     time quadratically (the "nanoscheduling" thrash of Finding 2).
//   - Replication requests from other masters run through the same
//     dispatch and worker pool, which is exactly why replication costs
//     client throughput (Finding 3).
package server

import (
	"fmt"

	"ramcloud/internal/hashtable"
	"ramcloud/internal/logstore"
	"ramcloud/internal/machine"
	"ramcloud/internal/rpc"
	"ramcloud/internal/sim"
	"ramcloud/internal/simdisk"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// Server is one storage server process.
type Server struct {
	id   int32
	eng  *sim.Engine
	node *machine.Node
	net  *simnet.Network
	ep   *rpc.Endpoint
	disk *simdisk.Disk
	cfg  Config

	coordinator simnet.NodeID
	peers       []simnet.NodeID // all servers in the cluster (including self)
	deadPeers   map[simnet.NodeID]bool

	dead bool

	// Master state.
	log         *logstore.Log
	ht          *hashtable.Table
	logMu       *sim.Mutex
	tablets     []wire.Tablet
	frozen      []wire.Tablet // ranges mid-migration; ops answer StatusRetry
	nextVersion uint64
	replicas    map[uint64][]simnet.NodeID // segment id -> backup set

	// workQs holds one queue per worker. The dispatch thread routes each
	// client request to the worker owning its connection (hash of the
	// source), RAMCloud's cache-affinity scheduling: one active client
	// connection keeps exactly one worker spin-hot (Table I's +25% CPU
	// per client).
	workQs []*sim.Queue[rpc.Request]

	// backupQ feeds the backup service thread, which handles the whole
	// replication and recovery plane. Keeping it off the client workers
	// prevents replication RPCs from convoying behind a worker that is
	// itself blocked waiting for acks; its CPU still lands on the same
	// node, which is the contention the paper measures (Finding 3).
	backupQ *sim.Queue[rpc.Request]

	// Backup state.
	openReplicas   map[replicaKey]*replica
	sealedReplicas map[int32]map[uint64]*replica
	flushQ         *sim.Queue[*replica]
	recoveryReads  map[replicaKey]bool // segments already read from disk this recovery

	// recoveryActive > 0 while this node replays a partition.
	recoveryActive int

	// registry resolves peer addresses for zero-time bulk loading.
	registry Registry

	stats Stats
}

type replicaKey struct {
	master  int32
	segment uint64
}

// replica is one segment replica held by the backup role.
type replica struct {
	key     replicaKey
	objects []wire.Object
	bytes   int
	sealed  bool
	onDisk  bool
}

// New creates a server on the given node and attaches it to the fabric.
// Call Start to launch its dispatch and worker procs.
func New(e *sim.Engine, node *machine.Node, net *simnet.Network, disk *simdisk.Disk,
	coordinator simnet.NodeID, cfg Config) *Server {
	if cfg.Workers < 1 {
		panic("server: need at least one worker")
	}
	if cfg.Workers+1 > node.Spec.Cores {
		panic(fmt.Sprintf("server: %d workers + dispatch exceed %d cores", cfg.Workers, node.Spec.Cores))
	}
	s := &Server{
		id:             int32(node.ID),
		eng:            e,
		node:           node,
		net:            net,
		disk:           disk,
		cfg:            cfg,
		coordinator:    coordinator,
		deadPeers:      make(map[simnet.NodeID]bool),
		log:            logstore.NewLog(cfg.Log),
		ht:             hashtable.New(1 << 16),
		logMu:          sim.NewMutex(e),
		replicas:       make(map[uint64][]simnet.NodeID),
		openReplicas:   make(map[replicaKey]*replica),
		sealedReplicas: make(map[int32]map[uint64]*replica),
		flushQ:         sim.NewQueue[*replica](e),
		recoveryReads:  make(map[replicaKey]bool),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workQs = append(s.workQs, sim.NewQueue[rpc.Request](e))
	}
	s.backupQ = sim.NewQueue[rpc.Request](e)
	s.ep = rpc.NewEndpoint(e, net, simnet.NodeID(node.ID))
	return s
}

// ID returns the server's cluster id (== its node id).
func (s *Server) ID() int32 { return s.id }

// Addr returns the server's fabric address.
func (s *Server) Addr() simnet.NodeID { return s.ep.Node() }

// Stats exposes the server's counters.
func (s *Server) Stats() *Stats { return &s.stats }

// Log exposes the master's log (for verification in tests and tools).
func (s *Server) Log() *logstore.Log { return s.log }

// SetPeers tells the server which nodes can host its replicas. The list
// may include the server itself; selection always excludes self.
func (s *Server) SetPeers(peers []simnet.NodeID) {
	s.peers = append([]simnet.NodeID(nil), peers...)
}

// Start launches the dispatch thread (pinning one core) and the worker and
// flush procs.
func (s *Server) Start() {
	s.node.PinCores(1)
	s.eng.Go(fmt.Sprintf("srv%d-dispatch", s.id), s.dispatchLoop)
	for i := 0; i < s.cfg.Workers; i++ {
		i := i
		s.eng.Go(fmt.Sprintf("srv%d-worker%d", s.id, i), func(p *sim.Proc) {
			s.workerLoop(p, s.workQs[i])
		})
	}
	s.eng.Go(fmt.Sprintf("srv%d-backupsvc", s.id), func(p *sim.Proc) {
		s.workerLoop(p, s.backupQ)
	})
	s.eng.Go(fmt.Sprintf("srv%d-flush", s.id), s.flushLoop)
	if s.cfg.CleanerThreshold > 0 {
		s.eng.Go(fmt.Sprintf("srv%d-cleaner", s.id), s.cleanerLoop)
	}
}

// Kill crashes the server process: the NIC goes silent, accounting stops,
// and service procs exit at their next scheduling point. In-flight
// requests are lost, exactly like a process kill.
func (s *Server) Kill() {
	s.dead = true
	s.node.Kill()
	s.net.SetDown(s.ep.Node(), true)
	// Wake parked procs with poison pills so their goroutines exit.
	for _, q := range s.workQs {
		q.Push(rpc.Request{})
	}
	s.backupQ.Push(rpc.Request{})
	s.ep.Inbound.Push(rpc.Request{})
	s.flushQ.Push(nil)
}

// Dead reports whether the server was killed.
func (s *Server) Dead() bool { return s.dead }

// dispatchLoop is the polling thread: it serializes inbound requests onto
// the worker queue at a fixed per-request cost. Its CPU is covered by the
// pinned core.
func (s *Server) dispatchLoop(p *sim.Proc) {
	for {
		req := s.ep.Inbound.Pop(p)
		if s.dead {
			return
		}
		p.Sleep(s.cfg.Costs.Dispatch)
		if s.recoveryActive > 0 && s.cfg.Costs.RecoveryPenalty > 0 {
			// Recovery traffic (segment fetches, re-replication, replay
			// bookkeeping) competes for the dispatch thread; foreground
			// requests pay the paper's 1.4-2.4x latency inflation.
			p.Sleep(s.cfg.Costs.RecoveryPenalty)
		}
		if s.dead {
			return
		}
		switch m := req.Msg.(type) {
		case *wire.ReadReq, *wire.WriteReq, *wire.DeleteReq,
			*wire.MultiReadReq, *wire.MultiWriteReq:
			s.workQs[connWorker(req.From, len(s.workQs))].Push(req)
		case *wire.RDMAWriteReq:
			// One-sided RDMA write: the NIC deposits the objects into the
			// replica buffer with no thread involvement; the completion
			// is generated immediately (Sec. IX.B proposal).
			s.applyRDMAWrite(m)
			s.ep.Reply(req, &wire.RDMAWriteResp{Status: wire.StatusOK})
		default:
			s.backupQ.Push(req)
		}
	}
}

// connWorker maps a connection to its affine worker.
func connWorker(from simnet.NodeID, workers int) int {
	h := uint64(from) * 0x9E3779B97F4A7C15
	return int(h % uint64(workers))
}

// workerLoop services requests from this worker's queue. Idle workers
// spin for SpinTimeout before sleeping; the spin is accounted
// optimistically and corrected when work arrives earlier.
func (s *Server) workerLoop(p *sim.Proc, workQ *sim.Queue[rpc.Request]) {
	spin := s.cfg.Costs.SpinTimeout
	for {
		t0 := p.Now()
		if !s.dead && spin > 0 {
			s.node.AddBusy(t0, t0.Add(spin))
		}
		req := workQ.Pop(p)
		if s.dead {
			return
		}
		if waited := p.Now().Sub(t0); waited < spin {
			s.node.SubBusy(p.Now(), t0.Add(spin))
		}
		s.serve(p, req)
		if s.dead {
			return
		}
	}
}

// busy burns worker CPU: the span is accounted on the node and simulated
// time advances.
func (s *Server) busy(p *sim.Proc, d sim.Duration) {
	if d <= 0 {
		return
	}
	now := p.Now()
	s.node.AddBusy(now, now.Add(d))
	p.Sleep(d)
}

// lockWithSpin acquires mu, accounting up to SpinTimeout of the wait as
// CPU burn: a worker contending for the log head spins and context-
// switches rather than idling, which is what drives the paper's power
// increase under update-heavy load (Fig. 4a).
func (s *Server) lockWithSpin(p *sim.Proc, mu *sim.Mutex) {
	spin := s.cfg.Costs.SpinTimeout
	t0 := p.Now()
	if !s.dead && spin > 0 && mu.Locked() {
		s.node.AddBusy(t0, t0.Add(spin))
	} else {
		spin = 0
	}
	mu.Lock(p)
	if spin > 0 {
		if waited := p.Now().Sub(t0); waited < spin {
			s.node.SubBusy(p.Now(), t0.Add(spin))
		}
	}
}

// interference returns the service-cost multiplier: >1 while a recovery
// replay is running on this node.
func (s *Server) interference() float64 {
	if s.recoveryActive > 0 {
		return s.cfg.Costs.InterferenceFactor
	}
	return 1
}

// serve executes one request on a worker.
func (s *Server) serve(p *sim.Proc, req rpc.Request) {
	switch m := req.Msg.(type) {
	case *wire.ReadReq:
		s.serveRead(p, req, m)
	case *wire.WriteReq:
		s.serveWrite(p, req, m)
	case *wire.DeleteReq:
		s.serveDelete(p, req, m)
	case *wire.MultiReadReq:
		s.serveMultiRead(p, req, m)
	case *wire.MultiWriteReq:
		s.serveMultiWrite(p, req, m)
	case *wire.OpenSegmentReq:
		s.serveOpenSegment(p, req, m)
	case *wire.ReplicateReq:
		s.serveReplicate(p, req, m)
	case *wire.CloseSegmentReq:
		s.serveCloseSegment(p, req, m)
	case *wire.FreeReplicasReq:
		s.serveFreeReplicas(p, req, m)
	case *wire.SegmentInventoryReq:
		s.serveInventory(p, req, m)
	case *wire.GetRecoveryDataReq:
		s.serveGetRecoveryData(p, req, m)
	case *wire.RecoverReq:
		s.serveRecover(p, req, m)
	case *wire.MigrateTabletReq:
		s.serveMigrateTablet(req, m)
	case *wire.TakeTabletReq:
		s.serveTakeTablet(p, req, m)
	case *wire.PingReq:
		s.ep.Reply(req, &wire.PingResp{Seq: m.Seq})
	case nil:
		// poison pill from Kill
	default:
		panic(fmt.Sprintf("server %d: unexpected request %T", s.id, req.Msg))
	}
}

// aliveBackupCandidates returns peers that can host a replica: not self,
// not known dead.
func (s *Server) aliveBackupCandidates() []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(s.peers))
	for _, id := range s.peers {
		if id != s.ep.Node() && !s.deadPeers[id] && !s.net.IsDown(id) {
			out = append(out, id)
		}
	}
	return out
}
