package server

import (
	"ramcloud/internal/logstore"
	"ramcloud/internal/metrics"
	"ramcloud/internal/sim"
)

// Costs are the calibrated CPU costs of the server's request paths. They
// substitute for the physical Xeon X3440: each constant is fitted to the
// paper's measurements (see internal/core/calibration.go for the fitting
// evidence).
type Costs struct {
	// Dispatch is the per-request cost on the dispatch thread. It
	// serializes all requests entering a server and sets the single-server
	// throughput ceiling (~372 Kop/s in the paper).
	Dispatch sim.Duration

	// Read is the worker cost of a read: hash-table lookup plus reply
	// construction.
	Read sim.Duration

	// WriteBase is the worker cost of a write at zero contention: log
	// append, hash-table update, version bump.
	WriteBase sim.Duration

	// WriteContention is the extra cost per squared log-head waiter,
	// modeling the context-switch and handoff thrash RAMCloud developers
	// call the "nanoscheduling" problem. effective = WriteBase +
	// WriteContention * waiters^2.
	WriteContention sim.Duration

	// ReplicaAppend is the backup worker cost of appending one replicated
	// object to an open replica (per object, plus PerKByte for the copy).
	ReplicaAppend sim.Duration

	// PerKByte is the memory-copy cost per KiB of value moved (applies to
	// writes, replica appends and replay).
	PerKByte sim.Duration

	// SendOverhead is the worker cost of issuing one outbound RPC
	// (replication fan-out).
	SendOverhead sim.Duration

	// SegmentOpen is the backup worker cost of opening a replica.
	SegmentOpen sim.Duration

	// ReplayObject is the recovery-master cost of replaying one object on
	// top of the write path costs.
	ReplayObject sim.Duration

	// SpinTimeout is how long an idle worker busy-polls for new work
	// before sleeping. Together with LIFO worker wake-up it produces the
	// paper's Table I CPU floor behaviour.
	SpinTimeout sim.Duration

	// InterferenceFactor inflates service costs while the node hosts an
	// active recovery, reproducing the paper's 1.4-2.4x latency increase
	// on live data during crash recovery.
	InterferenceFactor float64

	// RecoveryPenalty is extra dispatch delay per request while a
	// recovery replay runs on the node (recovery traffic shares the
	// dispatch thread).
	RecoveryPenalty sim.Duration

	// RDMAPost is the master CPU cost of posting one one-sided RDMA
	// write, replacing SendOverhead when RDMAReplication is on. Posting a
	// work request to the NIC is far cheaper than a full RPC send.
	RDMAPost sim.Duration
}

// DefaultCosts returns the calibration fitted to the paper's testbed.
func DefaultCosts() Costs {
	return Costs{
		Dispatch:           2600 * sim.Nanosecond,
		Read:               1700 * sim.Nanosecond,
		WriteBase:          14 * sim.Microsecond,
		WriteContention:    260 * sim.Microsecond,
		ReplicaAppend:      12 * sim.Microsecond,
		PerKByte:           250 * sim.Nanosecond,
		SendOverhead:       42 * sim.Microsecond,
		SegmentOpen:        2 * sim.Microsecond,
		ReplayObject:       2 * sim.Microsecond,
		SpinTimeout:        400 * sim.Microsecond,
		InterferenceFactor: 2.0,
		RecoveryPenalty:    8 * sim.Microsecond,
		RDMAPost:           2 * sim.Microsecond,
	}
}

// Config describes one server process (master + backup roles).
type Config struct {
	// Workers is the number of worker threads; the dispatch thread pins a
	// further core. The paper's nodes have 4 cores: 1 dispatch + 3 workers.
	Workers int

	// ReplicationFactor is the number of backup replicas per segment
	// (0 disables replication, as in the paper's Sections IV and V).
	ReplicationFactor int

	Log logstore.Config

	Costs Costs

	// ReplicationTimeout bounds the wait for one backup ack before the
	// master declares the backup dead and re-replicates.
	ReplicationTimeout sim.Duration

	// ReplayBatch is the number of replayed objects replicated per RPC
	// during recovery (RAMCloud batches recovery re-replication).
	ReplayBatch int

	// PartitionBytes is the target size of one will partition (RAMCloud
	// uses ~500-600 MB so multiple recovery masters share the load).
	PartitionBytes int64

	// CleanerThreshold is the memory utilization above which the log
	// cleaner runs (RAMCloud default ~0.90). Zero disables cleaning; the
	// paper sizes every workload to stay below the threshold.
	CleanerThreshold float64

	// AsyncReplication, when true, acknowledges writes without waiting
	// for backup acks — the relaxed-consistency variant the paper's
	// Discussion (Section IX.B) proposes. Durability weakens: a master
	// crash can lose the last unacknowledged appends.
	AsyncReplication bool

	// FixedBackups, when true, replaces random segment scatter with a
	// fixed backup set (the next RF servers in ring order). Recovery
	// loses its cluster-wide parallelism; used by the scatter ablation.
	FixedBackups bool

	// RDMAReplication, when true, replicates with one-sided RDMA writes
	// (the paper's Section IX.B "better communication for replication"
	// proposal): objects land directly in the backup's replica buffer,
	// consuming no backup dispatch or worker CPU, and the NIC-level
	// completion is still awaited, so consistency stays strong.
	RDMAReplication bool
}

// DefaultConfig mirrors the paper's server setup: 10 GB of log on a 4-core
// node with 8 MB segments.
func DefaultConfig() Config {
	return Config{
		Workers:            3,
		ReplicationFactor:  0,
		Log:                logstore.DefaultConfig(),
		Costs:              DefaultCosts(),
		ReplicationTimeout: 400 * sim.Millisecond,
		ReplayBatch:        1,
		PartitionBytes:     600 << 20,
		CleanerThreshold:   0.90,
	}
}

// Stats counts the work a server has done.
type Stats struct {
	ReadsOK        metrics.Counter
	WritesOK       metrics.Counter
	DeletesOK      metrics.Counter
	WrongServer    metrics.Counter
	ReplicaAppends metrics.Counter
	SegmentsOpened metrics.Counter
	SegmentsSealed metrics.Counter
	SegmentsFlush  metrics.Counter
	ReplaysDone    metrics.Counter
	ObjectsReplay  metrics.Counter
	BackupFailures metrics.Counter

	TabletsMigratedOut metrics.Counter // migrations completed as source
	ObjectsMigrated    metrics.Counter // objects taken in as destination

	CleanerPasses    metrics.Counter
	CleanerFreed     metrics.Counter // segments reclaimed
	CleanerRelocated metrics.Counter // entries moved
}
