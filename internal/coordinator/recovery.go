package coordinator

import (
	"fmt"
	"sort"

	"ramcloud/internal/rpc"
	"ramcloud/internal/server"
	"ramcloud/internal/sim"
	"ramcloud/internal/wire"
)

// This file implements crash-recovery orchestration: on a declared death
// the coordinator collects the crashed master's segment inventory from all
// backups, splits the lost key space per the master's will, assigns the
// partitions to recovery masters and tracks completion. Tablets flip to
// their new owners partition by partition; lost data stays unavailable
// (clients see Recovering) until its partition finishes — the paper's
// Fig. 10 blocked-client behaviour.

func (c *Coordinator) declareDead(id int32) {
	info := c.servers[id]
	if info == nil || !info.alive {
		return
	}
	info.alive = false
	// Declaring a live server dead is a detector false positive. With
	// EnforceDeath the coordinator also kills the process (RAMCloud's
	// "server is dead once we say so" rule — no split-brain); without it
	// the declaration is only recorded, matching the calibrated paper
	// renderings where replay-overloaded servers can be spuriously
	// declared without losing their replay work.
	if s := c.registry[id]; s != nil && !s.Dead() {
		c.falsePositives++
		if c.cfg.EnforceDeath {
			s.Kill()
		}
	}
	if c.onDeath != nil {
		c.onDeath(id)
	}
	// If the deceased was acting as a recovery master, its unfinished
	// partitions must be restarted on a survivor (RAMCloud restarts the
	// recovery; replayed-but-unflipped data on the dead node is garbage).
	c.reassignPartitions(id)
	if _, already := c.recoveries[id]; already {
		return
	}

	// Mark the dead master's tablets as recovering, fragmented along the
	// will's partition boundaries so each fragment can flip independently.
	// Without a stored will (e.g. a bulk-loaded cluster that never rolled
	// a segment over RPC), split across every survivor — RAMCloud's goal
	// of "as many machines performing the crash-recovery as possible".
	// A stored will can also be stale: ranges the master acquired through
	// an earlier recovery may be missing, so gaps are filled from the
	// master's actual tablets — otherwise that data would silently drop
	// out of the tablet map.
	owned := c.deadTablets(id)
	will := fillWillGaps(owned, info.will)
	if len(will) == 0 {
		will = server.SplitRanges(owned, len(c.AliveServers()))
	}
	if len(will) == 0 {
		return // master owned nothing; nothing to recover
	}
	c.fragmentTablets(id, will)

	rec := &recoveryState{crashed: id, detectedAt: c.eng.Now()}
	for _, w := range will {
		rec.partitions = append(rec.partitions, &partitionState{rng: w})
	}
	rec.pending = len(rec.partitions)
	c.recoveries[id] = rec

	c.eng.Go(fmt.Sprintf("coord-recover-%d", id), func(p *sim.Proc) {
		c.runRecovery(p, rec)
	})
}

// deadTablets returns the tablets owned by a master, in table-ID order
// so the RecoverReq tablet list is the same every run.
func (c *Coordinator) deadTablets(id int32) []wire.Tablet {
	var out []wire.Tablet
	for _, tableID := range c.sortedTableIDs() {
		for _, t := range c.tablets[tableID] {
			if t.Master == id {
				out = append(out, t)
			}
		}
	}
	return out
}

// fragmentTablets splits every tablet of the dead master along partition
// boundaries and marks the fragments recovering.
func (c *Coordinator) fragmentTablets(dead int32, will []wire.WillPartition) {
	for tableID, ts := range c.tablets {
		var out []wire.Tablet
		for _, t := range ts {
			if t.Master != dead {
				out = append(out, t)
				continue
			}
			for _, w := range will {
				lo := max64(t.StartHash, w.FirstHash)
				hi := min64(t.EndHash, w.LastHash)
				if lo > hi {
					continue
				}
				out = append(out, wire.Tablet{
					Table: tableID, StartHash: lo, EndHash: hi,
					Master: dead, Recovering: true,
				})
			}
		}
		c.tablets[tableID] = out
	}
}

// runRecovery drives one crashed master's recovery to completion.
func (c *Coordinator) runRecovery(p *sim.Proc, rec *recoveryState) {
	// Phase 1: find the lost segments on the surviving backups.
	type holder struct {
		backup int32
		bytes  uint32
	}
	segs := make(map[uint64]holder)
	for _, id := range c.order {
		info := c.servers[id]
		if !info.alive {
			continue
		}
		resp, ok := c.ep.CallTimeout(p, info.addr, &wire.SegmentInventoryReq{Master: rec.crashed}, 2*sim.Second)
		if !ok {
			continue
		}
		for _, si := range resp.(*wire.SegmentInventoryResp).Segments {
			if _, have := segs[si.Segment]; !have {
				segs[si.Segment] = holder{backup: id, bytes: si.Bytes}
			}
		}
	}
	// Replay in segment order: versions were assigned monotonically, so
	// ascending segment ids deliver newest-last.
	segIDs := make([]uint64, 0, len(segs))
	for id := range segs {
		segIDs = append(segIDs, id)
	}
	sort.Slice(segIDs, func(i, j int) bool { return segIDs[i] < segIDs[j] })
	locs := make([]wire.SegmentLoc, 0, len(segIDs))
	for _, sid := range segIDs {
		h := segs[sid]
		locs = append(locs, wire.SegmentLoc{Segment: sid, Backup: h.backup, Bytes: h.bytes})
	}
	rec.locs = locs

	// Phase 2: assign partitions to recovery masters round-robin.
	alive := c.AliveServers()
	if len(alive) == 0 {
		return // total cluster loss; nothing to do
	}
	for i, part := range rec.partitions {
		part.master = alive[i%len(alive)]
	}

	// Phase 3: start the replays. A recovery master that fails to accept
	// is replaced by the next alive candidate before giving up.
	for _, part := range rec.partitions {
		started := false
		for attempt := 0; attempt < len(alive)+1 && !started; attempt++ {
			info := c.servers[part.master]
			if info == nil || !info.alive {
				cand := c.AliveServers()
				if len(cand) == 0 {
					break
				}
				part.master = cand[attempt%len(cand)]
				continue
			}
			_, started = c.ep.CallTimeout(p, info.addr, &wire.RecoverReq{
				Crashed:   rec.crashed,
				FirstHash: part.rng.FirstHash,
				LastHash:  part.rng.LastHash,
				Segments:  locs,
			}, 2*sim.Second)
			if !started {
				cand := c.AliveServers()
				if len(cand) == 0 {
					break
				}
				part.master = cand[attempt%len(cand)]
			}
		}
		if !started && !part.done {
			part.done = true
			part.ok = false
			rec.pending--
		}
	}
	c.maybeFinishRecovery(rec)
}

// serveRecoveryDone flips the finished partition's tablets to the recovery
// master and closes the recovery when the last partition completes.
func (c *Coordinator) serveRecoveryDone(req rpc.Request, m *wire.RecoveryDoneReq) {
	defer c.ep.Reply(req, &wire.RecoveryDoneResp{Status: wire.StatusOK})
	rec, ok := c.recoveries[m.Crashed]
	if !ok {
		return
	}
	for _, part := range rec.partitions {
		if part.rng.FirstHash != m.FirstHash || part.done {
			continue
		}
		part.done = true
		part.ok = m.Ok
		rec.pending--
		c.flipPartition(rec.crashed, part)
	}
	c.maybeFinishRecovery(rec)
}

// flipPartition transfers ownership of a recovered hash range from the
// crashed master to its recovery master, both in the coordinator map and
// on the recovery master itself.
func (c *Coordinator) flipPartition(crashed int32, part *partitionState) {
	newOwner := c.registry[part.master]
	for tableID, ts := range c.tablets {
		for i := range ts {
			t := &ts[i]
			if t.Master != crashed || !t.Recovering {
				continue
			}
			if t.StartHash >= part.rng.FirstHash && t.EndHash <= part.rng.LastHash {
				t.Master = part.master
				t.Recovering = false
				if newOwner != nil {
					newOwner.AssignTablet(wire.Tablet{
						Table: tableID, StartHash: t.StartHash, EndHash: t.EndHash,
					})
				}
			}
		}
	}
}

// maybeFinishRecovery closes the recovery once every partition reported:
// old replicas are freed cluster-wide and the record is logged.
func (c *Coordinator) maybeFinishRecovery(rec *recoveryState) {
	if rec.pending > 0 {
		return
	}
	if _, open := c.recoveries[rec.crashed]; !open {
		return
	}
	delete(c.recoveries, rec.crashed)
	allOK := true
	for _, part := range rec.partitions {
		if !part.ok {
			allOK = false
		}
	}
	c.records = append(c.records, RecoveryRecord{
		Crashed:    rec.crashed,
		DetectedAt: rec.detectedAt,
		DoneAt:     c.eng.Now(),
		Partitions: len(rec.partitions),
		AllOK:      allOK,
	})
	for _, id := range c.order {
		info := c.servers[id]
		if info.alive {
			c.ep.AsyncCall(info.addr, &wire.FreeReplicasReq{Master: rec.crashed})
		}
	}
}

// reassignPartitions restarts, on a survivor, every unfinished recovery
// partition whose recovery master just died. Recoveries are visited in
// crashed-ID order: the replacement master round-robin and the spawn
// order of the re-recovery procs must not depend on map iteration.
func (c *Coordinator) reassignPartitions(dead int32) {
	crashed := make([]int32, 0, len(c.recoveries))
	for id := range c.recoveries {
		crashed = append(crashed, id)
	}
	sort.Slice(crashed, func(i, j int) bool { return crashed[i] < crashed[j] })
	for _, id := range crashed {
		rec := c.recoveries[id]
		alive := c.AliveServers()
		if len(alive) == 0 {
			continue
		}
		next := 0
		for _, part := range rec.partitions {
			if part.done || part.master != dead {
				continue
			}
			part.master = alive[next%len(alive)]
			next++
			rec, part := rec, part
			c.eng.Go(fmt.Sprintf("coord-rerecover-%d-%x", rec.crashed, part.rng.FirstHash), func(p *sim.Proc) {
				info := c.servers[part.master]
				_, ok := c.ep.CallTimeout(p, info.addr, &wire.RecoverReq{
					Crashed:   rec.crashed,
					FirstHash: part.rng.FirstHash,
					LastHash:  part.rng.LastHash,
					Segments:  rec.locs,
				}, 2*sim.Second)
				if !ok && !part.done {
					part.done = true
					part.ok = false
					rec.pending--
					c.maybeFinishRecovery(rec)
				}
			})
		}
	}
}

// fillWillGaps returns the will extended with one partition per hash
// range that the owned tablets cover but the will does not.
func fillWillGaps(owned []wire.Tablet, will []wire.WillPartition) []wire.WillPartition {
	if len(will) == 0 {
		return nil
	}
	out := append([]wire.WillPartition(nil), will...)
	for _, t := range owned {
		var ivs []wire.WillPartition
		for _, w := range will {
			lo := max64(t.StartHash, w.FirstHash)
			hi := min64(t.EndHash, w.LastHash)
			if lo <= hi {
				ivs = append(ivs, wire.WillPartition{FirstHash: lo, LastHash: hi})
			}
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].FirstHash < ivs[j].FirstHash })
		cur := t.StartHash
		covered := false
		for _, iv := range ivs {
			if iv.FirstHash > cur {
				out = append(out, wire.WillPartition{FirstHash: cur, LastHash: iv.FirstHash - 1})
			}
			if iv.LastHash >= t.EndHash {
				covered = true
				break
			}
			if iv.LastHash+1 > cur {
				cur = iv.LastHash + 1
			}
		}
		if !covered && cur <= t.EndHash {
			out = append(out, wire.WillPartition{FirstHash: cur, LastHash: t.EndHash})
		}
	}
	return out
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
