// Package coordinator implements the RAMCloud coordinator: cluster
// membership, the table/tablet map, wills, ping-based failure detection
// and crash-recovery orchestration.
//
// The coordinator runs on its own node, which — like in the paper's
// deployment — is not power-metered (the 40 PDU-equipped nodes run only
// masters/backups).
package coordinator

import (
	"fmt"
	"sort"

	"ramcloud/internal/rpc"
	"ramcloud/internal/server"
	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// Config tunes the failure detector and recovery.
type Config struct {
	PingInterval  sim.Duration // gap between probes to one server
	PingTimeout   sim.Duration // per-probe response deadline
	MissThreshold int          // consecutive misses before declaring death

	// EnforceDeath kills a server the moment it is declared dead, even if
	// the declaration was a false positive (a live server that missed
	// pings while overloaded). False means the legacy behaviour: the
	// declaration is recorded and recovery runs, but a live "dead" server
	// keeps serving. Chaos profiles enable enforcement so a trigger-happy
	// detector has a visible cost instead of a silent split-brain.
	EnforceDeath bool
}

// DefaultConfig returns a detector that declares death within ~1 second.
func DefaultConfig() Config {
	return Config{
		PingInterval:  200 * sim.Millisecond,
		PingTimeout:   150 * sim.Millisecond,
		MissThreshold: 3,
	}
}

type serverInfo struct {
	id     int32
	addr   simnet.NodeID
	alive  bool
	misses int
	will   []wire.WillPartition
}

type partitionState struct {
	rng    wire.WillPartition
	master int32 // recovery master
	done   bool
	ok     bool
}

type recoveryState struct {
	crashed    int32
	partitions []*partitionState
	pending    int
	detectedAt sim.Time
	locs       []wire.SegmentLoc // where the lost segments live
}

// RecoveryRecord summarizes one completed crash recovery.
type RecoveryRecord struct {
	Crashed    int32
	DetectedAt sim.Time
	DoneAt     sim.Time
	Partitions int
	AllOK      bool
}

// Coordinator is the cluster's configuration and recovery manager.
type Coordinator struct {
	eng *sim.Engine
	net *simnet.Network
	ep  *rpc.Endpoint
	cfg Config

	servers map[int32]*serverInfo
	order   []int32 // deterministic iteration

	registry map[int32]*server.Server

	tables      map[string]uint64
	tablets     map[uint64][]wire.Tablet // table id -> tablets
	nextTableID uint64

	recoveries map[int32]*recoveryState
	records    []RecoveryRecord

	// Detector bookkeeping: every ping miss is a suspicion; a death
	// declared against a server that was actually alive is a false
	// positive (it is still enforced — see declareDead).
	suspicions     int64
	falsePositives int64

	// Re-spread bookkeeping (rejoin.go).
	respreadsPending int
	tabletsMigrated  int64

	onDeath func(id int32) // test/experiment hook
}

// New creates a coordinator attached to the fabric at addr.
func New(e *sim.Engine, net *simnet.Network, addr simnet.NodeID, cfg Config) *Coordinator {
	c := &Coordinator{
		eng:        e,
		net:        net,
		cfg:        cfg,
		servers:    make(map[int32]*serverInfo),
		registry:   make(map[int32]*server.Server),
		tables:     make(map[string]uint64),
		tablets:    make(map[uint64][]wire.Tablet),
		recoveries: make(map[int32]*recoveryState),
	}
	c.ep = rpc.NewEndpoint(e, net, addr)
	return c
}

// Addr returns the coordinator's fabric address.
func (c *Coordinator) Addr() simnet.NodeID { return c.ep.Node() }

// Records returns completed recovery summaries.
func (c *Coordinator) Records() []RecoveryRecord {
	return append([]RecoveryRecord(nil), c.records...)
}

// SetOnDeath installs a hook invoked when a server is declared dead.
func (c *Coordinator) SetOnDeath(fn func(id int32)) { c.onDeath = fn }

// Suspicions returns the number of ping misses the detector has seen.
func (c *Coordinator) Suspicions() int64 { return c.suspicions }

// FalsePositives returns how many declared deaths hit a live server.
func (c *Coordinator) FalsePositives() int64 { return c.falsePositives }

// RespreadsPending returns the number of rejoin re-spreads still running.
func (c *Coordinator) RespreadsPending() int { return c.respreadsPending }

// TabletsMigrated returns the number of tablets moved by rejoin re-spreads.
func (c *Coordinator) TabletsMigrated() int64 { return c.tabletsMigrated }

// AddServer registers a server with the coordinator's configuration plane
// (the equivalent of server enlistment at cluster bring-up).
func (c *Coordinator) AddServer(s *server.Server) {
	info := &serverInfo{id: s.ID(), addr: s.Addr(), alive: true}
	c.servers[s.ID()] = info
	c.registry[s.ID()] = s
	c.order = append(c.order, s.ID())
	sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })
}

// Registry returns the server lookup used for zero-time bulk loading.
func (c *Coordinator) Registry() server.Registry {
	return func(addr simnet.NodeID) *server.Server {
		return c.registry[int32(addr)]
	}
}

// Start launches the coordinator's service loop and one pinger per server.
func (c *Coordinator) Start() {
	c.eng.Go("coord-service", c.serviceLoop)
	for _, id := range c.order {
		id := id
		c.eng.Go(fmt.Sprintf("coord-ping-%d", id), func(p *sim.Proc) { c.pingLoop(p, id) })
	}
}

// AliveServers returns the ids of servers currently believed alive.
func (c *Coordinator) AliveServers() []int32 {
	var out []int32
	for _, id := range c.order {
		if c.servers[id].alive {
			out = append(out, id)
		}
	}
	return out
}

// serviceLoop handles control-plane RPCs. Coordinator CPU is not modeled:
// it is never the measured bottleneck in the paper's experiments.
func (c *Coordinator) serviceLoop(p *sim.Proc) {
	for {
		req := c.ep.Inbound.Pop(p)
		p.Sleep(2 * sim.Microsecond)
		switch m := req.Msg.(type) {
		case *wire.CreateTableReq:
			c.serveCreateTable(req, m)
		case *wire.DropTableReq:
			c.serveDropTable(req, m)
		case *wire.GetTabletMapReq:
			c.serveTabletMap(req)
		case *wire.EnlistReq:
			c.ep.Reply(req, &wire.EnlistResp{Status: wire.StatusOK, ServerID: m.Node})
		case *wire.SetWillReq:
			if info, ok := c.servers[m.Master]; ok {
				info.will = m.Partitions
			}
			c.ep.Reply(req, &wire.SetWillResp{Status: wire.StatusOK})
		case *wire.RecoveryDoneReq:
			c.serveRecoveryDone(req, m)
		case *wire.PingReq:
			c.ep.Reply(req, &wire.PingResp{Seq: m.Seq})
		default:
			panic(fmt.Sprintf("coordinator: unexpected request %T", req.Msg))
		}
	}
}

func (c *Coordinator) serveCreateTable(req rpc.Request, m *wire.CreateTableReq) {
	id, ok := c.createTable(m.Name, int(m.ServerSpan))
	if !ok {
		c.ep.Reply(req, &wire.CreateTableResp{Status: wire.StatusError})
		return
	}
	c.ep.Reply(req, &wire.CreateTableResp{Status: wire.StatusOK, Table: id})
}

// CreateTableDirect creates a table through the configuration plane
// without RPC; used at cluster bring-up before any client exists.
func (c *Coordinator) CreateTableDirect(name string, serverSpan int) uint64 {
	id, ok := c.createTable(name, serverSpan)
	if !ok {
		panic("coordinator: create table with no alive servers")
	}
	return id
}

// TabletMapDirect returns a snapshot of the full tablet map.
func (c *Coordinator) TabletMapDirect() []wire.Tablet {
	var all []wire.Tablet
	for _, id := range c.sortedTableIDs() {
		all = append(all, c.tablets[id]...)
	}
	return all
}

// sortedTableIDs returns the table IDs in ascending order; every walk of
// c.tablets that can reach rendered output or the wire must use it.
func (c *Coordinator) sortedTableIDs() []uint64 {
	ids := make([]uint64, 0, len(c.tablets))
	for id := range c.tablets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (c *Coordinator) createTable(name string, span int) (uint64, bool) {
	if id, exists := c.tables[name]; exists {
		return id, true
	}
	alive := c.AliveServers()
	if len(alive) == 0 {
		return 0, false
	}
	if span <= 0 || span > len(alive) {
		span = len(alive)
	}
	c.nextTableID++
	id := c.nextTableID
	c.tables[name] = id

	// Split the hash space into span uniform ranges, assigned round-robin
	// (the paper's ServerSpan configuration for uniform distribution).
	var tablets []wire.Tablet
	step := ^uint64(0)/uint64(span) + 1
	var start uint64
	for i := 0; i < span; i++ {
		end := start + step - 1
		if i == span-1 || end < start {
			end = ^uint64(0)
		}
		owner := alive[i%len(alive)]
		t := wire.Tablet{Table: id, StartHash: start, EndHash: end, Master: owner}
		tablets = append(tablets, t)
		c.registry[owner].AssignTablet(t)
		if end == ^uint64(0) {
			break
		}
		start = end + 1
	}
	c.tablets[id] = tablets
	return id, true
}

func (c *Coordinator) serveDropTable(req rpc.Request, m *wire.DropTableReq) {
	id, ok := c.tables[m.Name]
	if !ok {
		c.ep.Reply(req, &wire.DropTableResp{Status: wire.StatusUnknownTable})
		return
	}
	delete(c.tables, m.Name)
	delete(c.tablets, id)
	for _, s := range c.registry {
		s.DropTablets(id)
	}
	c.ep.Reply(req, &wire.DropTableResp{Status: wire.StatusOK})
}

func (c *Coordinator) serveTabletMap(req rpc.Request) {
	var all []wire.Tablet
	for _, id := range c.sortedTableIDs() {
		all = append(all, c.tablets[id]...)
	}
	c.ep.Reply(req, &wire.GetTabletMapResp{Status: wire.StatusOK, Tablets: all})
}

// pingLoop probes one server until it is declared dead.
func (c *Coordinator) pingLoop(p *sim.Proc, id int32) {
	info := c.servers[id]
	seq := uint64(0)
	for info.alive {
		p.Sleep(c.cfg.PingInterval)
		if !info.alive {
			return
		}
		seq++
		_, ok := c.ep.CallTimeout(p, info.addr, &wire.PingReq{Seq: seq}, c.cfg.PingTimeout)
		if ok {
			info.misses = 0
			continue
		}
		info.misses++
		c.suspicions++
		if info.misses >= c.cfg.MissThreshold {
			c.declareDead(id)
			return
		}
	}
}
