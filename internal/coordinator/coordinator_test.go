package coordinator

import (
	"errors"
	"fmt"
	"testing"

	"ramcloud/internal/client"
	"ramcloud/internal/machine"
	"ramcloud/internal/server"
	"ramcloud/internal/sim"
	"ramcloud/internal/simdisk"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

type rig struct {
	eng     *sim.Engine
	net     *simnet.Network
	coord   *Coordinator
	servers []*server.Server
}

func newRig(t *testing.T, n, rf int) *rig {
	t.Helper()
	eng := sim.New(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	coord := New(eng, net, simnet.NodeID(-1), DefaultConfig())
	cfg := server.DefaultConfig()
	cfg.ReplicationFactor = rf
	cfg.Log.SegmentBytes = 32 << 10
	cfg.Log.TotalBytes = 32 << 20
	cfg.PartitionBytes = 1 << 20
	r := &rig{eng: eng, net: net, coord: coord}
	var addrs []simnet.NodeID
	for i := 0; i < n; i++ {
		node := machine.NewNode(eng, i+1, machine.Grid5000Nancy())
		disk := simdisk.New(eng, simdisk.DefaultConfig())
		s := server.New(eng, node, net, disk, coord.Addr(), cfg)
		coord.AddServer(s)
		r.servers = append(r.servers, s)
		addrs = append(addrs, s.Addr())
	}
	for _, s := range r.servers {
		s.SetPeers(addrs)
		s.SetRegistry(coord.Registry())
	}
	coord.Start()
	for _, s := range r.servers {
		s.Start()
	}
	return r
}

func (r *rig) newClient() *client.Client {
	return client.New(r.eng, r.net, simnet.NodeID(1000+len(r.servers)), r.coord.Addr(), client.DefaultConfig())
}

func TestCreateTableSpansServers(t *testing.T) {
	r := newRig(t, 4, 0)
	id := r.coord.CreateTableDirect("t", 4)
	tablets := r.coord.TabletMapDirect()
	if len(tablets) != 4 {
		t.Fatalf("tablets = %d, want 4", len(tablets))
	}
	owners := map[int32]bool{}
	var covered uint64
	for _, tb := range tablets {
		if tb.Table != id {
			t.Fatalf("tablet for wrong table: %+v", tb)
		}
		owners[tb.Master] = true
		covered += tb.EndHash - tb.StartHash
	}
	if len(owners) != 4 {
		t.Fatalf("owners = %d, want 4 (round-robin)", len(owners))
	}
	// Re-creating returns the same table.
	if again := r.coord.CreateTableDirect("t", 4); again != id {
		t.Fatalf("recreate returned %d, want %d", again, id)
	}
	r.eng.Shutdown()
}

func TestClientTableRPCs(t *testing.T) {
	r := newRig(t, 2, 0)
	c := r.newClient()
	var tableID uint64
	var errs []error
	r.eng.Go("app", func(p *sim.Proc) {
		var err error
		tableID, err = c.CreateTable(p, "users", 2)
		errs = append(errs, err)
		errs = append(errs, c.Write(p, tableID, []byte("k"), 10, nil))
		_, _, err = c.Read(p, tableID, []byte("k"))
		errs = append(errs, err)
		errs = append(errs, c.DropTable(p, "users"))
		_, _, err = c.Read(p, tableID, []byte("k"))
		if !errors.Is(err, client.ErrNoTable) && !errors.Is(err, client.ErrUnavailable) {
			errs = append(errs, fmt.Errorf("read after drop: %v", err))
		}
		r.eng.Stop()
	})
	r.eng.Run()
	r.eng.Shutdown()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

func TestFailureDetectionAndRecoveryRecord(t *testing.T) {
	r := newRig(t, 4, 2)
	r.coord.CreateTableDirect("t", 4)
	// Seed data so the dead server has something to recover.
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("user%010d", i))
		for _, s := range r.servers {
			if err := s.FastLoad(1, key, 512); err == nil {
				break
			}
		}
	}
	var died int32 = -1
	r.coord.SetOnDeath(func(id int32) { died = id })
	r.eng.Schedule(2*sim.Second, func() { r.servers[1].Kill() })
	r.eng.Go("waiter", func(p *sim.Proc) {
		for len(r.coord.Records()) == 0 {
			p.Sleep(250 * sim.Millisecond)
			if p.Now() > sim.Time(sim.Minute) {
				break
			}
		}
		r.eng.Stop()
	})
	r.eng.Run()
	r.eng.Shutdown()
	if died != r.servers[1].ID() {
		t.Fatalf("death hook got %d, want %d", died, r.servers[1].ID())
	}
	recs := r.coord.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Crashed != r.servers[1].ID() || recs[0].DoneAt <= recs[0].DetectedAt {
		t.Fatalf("bad record %+v", recs[0])
	}
	// Dead server's tablets must have new owners, none recovering.
	for _, tb := range r.coord.TabletMapDirect() {
		if tb.Recovering {
			t.Fatalf("tablet still recovering: %+v", tb)
		}
		if tb.Master == r.servers[1].ID() {
			t.Fatalf("tablet still owned by dead server: %+v", tb)
		}
	}
	if got := len(r.coord.AliveServers()); got != 3 {
		t.Fatalf("alive = %d, want 3", got)
	}
}

func TestClientRetriesThroughRecovery(t *testing.T) {
	r := newRig(t, 3, 2)
	r.coord.CreateTableDirect("t", 3)
	c := r.newClient()
	var finalErr error
	r.eng.Go("app", func(p *sim.Proc) {
		// Write a key, find its owner, kill it, then read the key again:
		// the client must block through recovery and then succeed.
		key := []byte("persistent-key")
		if err := c.Write(p, 1, key, 64, nil); err != nil {
			finalErr = err
			r.eng.Stop()
			return
		}
		// The owner is the server whose log received the append.
		var owner *server.Server
		for _, s := range r.servers {
			if s.Log().Appends() > 0 {
				owner = s
				break
			}
		}
		owner.Kill()
		_, _, finalErr = c.Read(p, 1, key)
		r.eng.Stop()
	})
	r.eng.Run()
	r.eng.Shutdown()
	if finalErr != nil {
		t.Fatalf("read through recovery: %v", finalErr)
	}
	if c.Stats().Timeouts.Value() == 0 && c.Stats().Retries.Value() == 0 {
		t.Fatal("client should have retried through the crash")
	}
}

func TestSplitRangesUsedForWill(t *testing.T) {
	parts := server.SplitRanges([]wire.Tablet{{Table: 1, StartHash: 0, EndHash: ^uint64(0)}}, 8)
	if len(parts) != 8 {
		t.Fatalf("parts = %d", len(parts))
	}
	if parts[7].LastHash != ^uint64(0) {
		t.Fatal("last partition must end at max hash")
	}
}

func TestFillWillGaps(t *testing.T) {
	owned := []wire.Tablet{{Table: 1, StartHash: 0, EndHash: 999}}
	// Stale will covers only [100..399] and [600..899].
	will := []wire.WillPartition{{FirstHash: 100, LastHash: 399}, {FirstHash: 600, LastHash: 899}}
	got := fillWillGaps(owned, will)
	// Expect the original two plus gaps [0..99], [400..599], [900..999].
	if len(got) != 5 {
		t.Fatalf("partitions = %d (%+v), want 5", len(got), got)
	}
	// Verify full coverage with no overlap gaps.
	covered := make([]bool, 1000)
	for _, w := range got {
		for h := w.FirstHash; h <= w.LastHash && h < 1000; h++ {
			covered[h] = true
		}
	}
	for h, ok := range covered {
		if !ok {
			t.Fatalf("hash %d not covered", h)
		}
	}
}

func TestFillWillGapsFullCoverageUnchanged(t *testing.T) {
	owned := []wire.Tablet{{Table: 1, StartHash: 0, EndHash: ^uint64(0)}}
	will := server.SplitRanges(owned, 8)
	got := fillWillGaps(owned, will)
	if len(got) != len(will) {
		t.Fatalf("complete will gained gap partitions: %d -> %d", len(will), len(got))
	}
}

func TestFillWillGapsEmptyWill(t *testing.T) {
	owned := []wire.Tablet{{Table: 1, StartHash: 0, EndHash: 10}}
	if got := fillWillGaps(owned, nil); got != nil {
		t.Fatalf("empty will should stay empty (fallback path), got %+v", got)
	}
}

func TestFillWillGapsMaxHashBoundary(t *testing.T) {
	owned := []wire.Tablet{{Table: 1, StartHash: ^uint64(0) - 10, EndHash: ^uint64(0)}}
	will := []wire.WillPartition{{FirstHash: 0, LastHash: ^uint64(0)}}
	got := fillWillGaps(owned, will)
	if len(got) != 1 {
		t.Fatalf("full-range will must not grow: %+v", got)
	}
}
