package coordinator

import (
	"fmt"
	"sort"

	"ramcloud/internal/server"
	"ramcloud/internal/sim"
	"ramcloud/internal/wire"
)

// This file implements server rejoin: a restarted server re-enlists with
// the coordinator, which re-admits it (fresh registry entry, ping loop
// restarted, peers clear their dead marks) and then re-spreads load onto it
// by migrating tablets from the most-loaded masters until the newcomer
// holds a fair share.

const migrateTimeout = 30 * sim.Second

// Readmit re-enlists a restarted server. The caller has already rebuilt
// the server process (fresh Server on the same node and fabric address) and
// started it; Readmit flips coordinator-side state and kicks off the
// re-spread in its own proc. RespreadsPending reflects the re-spread
// immediately, so a caller observing Readmit's return can wait on it.
func (c *Coordinator) Readmit(s *server.Server) {
	id := s.ID()
	info := c.servers[id]
	if info == nil {
		c.AddServer(s)
		info = c.servers[id]
	} else {
		c.registry[id] = s
		info.addr = s.Addr()
	}
	info.will = nil // the old will described data the restart lost
	info.misses = 0
	if !info.alive {
		info.alive = true
		c.eng.Go(fmt.Sprintf("coord-ping-%d", id), func(p *sim.Proc) { c.pingLoop(p, id) })
	}
	// Peers that saw replication timeouts while the server was down hold a
	// permanent dead mark; clear it so the newcomer hosts replicas again.
	for _, sid := range c.order {
		if sid == id {
			continue
		}
		if peer := c.registry[sid]; peer != nil && c.servers[sid].alive {
			peer.PeerRejoined(s.Addr())
		}
	}
	c.respreadsPending++
	c.eng.Go(fmt.Sprintf("coord-respread-%d", id), func(p *sim.Proc) {
		defer func() { c.respreadsPending-- }()
		c.rebalanceToward(p, id)
	})
}

// rebalanceToward migrates tablets from the most-loaded masters to target
// until target holds at least the floor of a fair share. One tablet moves
// at a time; state is recomputed between moves because recoveries and
// client-driven table changes may run concurrently.
func (c *Coordinator) rebalanceToward(p *sim.Proc, target int32) {
	for {
		tableIDs := make([]uint64, 0, len(c.tablets))
		for tid := range c.tablets {
			tableIDs = append(tableIDs, tid)
		}
		sort.Slice(tableIDs, func(i, j int) bool { return tableIDs[i] < tableIDs[j] })

		counts := make(map[int32]int)
		total := 0
		for _, tid := range tableIDs {
			for _, t := range c.tablets[tid] {
				if t.Recovering {
					continue
				}
				counts[t.Master]++
				total++
			}
		}
		alive := c.AliveServers()
		if len(alive) == 0 || total == 0 {
			return
		}
		fair := total / len(alive)
		if counts[target] >= fair || fair == 0 {
			return
		}

		// Donor: most tablets, lowest id on ties. Must be alive, not the
		// target, and have something to spare.
		var donor int32 = -1
		for _, id := range alive {
			if id == target {
				continue
			}
			if donor < 0 || counts[id] > counts[donor] {
				donor = id
			}
		}
		if donor < 0 || counts[donor] <= counts[target]+1 {
			return // moving one more would just swap the imbalance
		}

		// First donor-owned tablet in deterministic map order.
		var pickTable uint64
		var pick *wire.Tablet
		for _, tid := range tableIDs {
			ts := c.tablets[tid]
			for i := range ts {
				if ts[i].Master == donor && !ts[i].Recovering {
					pickTable, pick = tid, &ts[i]
					break
				}
			}
			if pick != nil {
				break
			}
		}
		if pick == nil {
			return
		}
		rng := *pick // the slice may be reallocated while we wait
		resp, ok := c.ep.CallTimeout(p, c.servers[donor].addr, &wire.MigrateTabletReq{
			Table:     rng.Table,
			FirstHash: rng.StartHash,
			LastHash:  rng.EndHash,
			Dst:       target,
		}, migrateTimeout)
		if !ok {
			return
		}
		mr, good := resp.(*wire.MigrateTabletResp)
		if !good || mr.Status != wire.StatusOK {
			return
		}
		// The source has dropped the range; hand it to the target and flip
		// the map so client refreshes re-route.
		if dst := c.registry[target]; dst != nil {
			dst.AssignTablet(wire.Tablet{Table: pickTable, StartHash: rng.StartHash, EndHash: rng.EndHash})
		}
		for i := range c.tablets[pickTable] {
			t := &c.tablets[pickTable][i]
			if t.StartHash == rng.StartHash && t.EndHash == rng.EndHash && t.Master == donor {
				t.Master = target
				break
			}
		}
		c.tabletsMigrated++
	}
}
