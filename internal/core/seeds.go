package core

import "ramcloud/internal/metrics"

// RunSeeds executes the scenario with n different seeds and aggregates
// throughput, power and efficiency distributions. Options go through the
// same normalization path as experiments: o.Seed is the sweep's base seed
// (the scenario's own Seed wins when set) and o.Profile fills in a
// scenario without one, so a seed sweep measures exactly what a
// same-options experiment run would.
func RunSeeds(s Scenario, n int, o Options) *SeedSweep {
	o = o.normalize()
	sweep := &SeedSweep{Scenario: s.Name, Runs: n}
	if s.Profile.Machine.Cores == 0 {
		s.Profile = o.Profile
	}
	base := s.Seed
	if base == 0 {
		base = o.Seed
	}
	for i := 0; i < n; i++ {
		s.Seed = base + int64(i)*104729
		r := Run(s)
		sweep.Throughput.Add(r.Throughput)
		sweep.PowerPerServer.Add(r.AvgPowerPerServer)
		sweep.OpsPerJoule.Add(r.OpsPerJoule)
		if r.Recovered {
			sweep.RecoverySeconds.Add(r.RecoveryTime.Seconds())
		}
	}
	return sweep
}

// SeedSweep holds the per-metric distributions of a multi-seed run.
type SeedSweep struct {
	Scenario string
	Runs     int

	Throughput      metrics.Distribution
	PowerPerServer  metrics.Distribution
	OpsPerJoule     metrics.Distribution
	RecoverySeconds metrics.Distribution
}
