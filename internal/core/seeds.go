package core

import "ramcloud/internal/metrics"

// RunSeeds executes the scenario with n different seeds and aggregates
// throughput, power and efficiency distributions. Options go through the
// same normalization path as experiments: o.Seed is the sweep's base seed
// (the scenario's own Seed wins when set) and o.Profile fills in a
// scenario without one, so a seed sweep measures exactly what a
// same-options experiment run would.
//
// The per-seed runs execute on a worker pool sized by Parallelism() (the
// -j flag of the cmd binaries). Each run is reduced to its four summary
// scalars as soon as it completes — at most Parallelism() full Results
// are live at once — and the scalars are folded into the distributions in
// ascending seed order, so the sweep's statistics are bit-identical
// whether it ran on one worker or many.
func RunSeeds(s Scenario, n int, o Options) *SeedSweep {
	o = o.normalize()
	sweep := &SeedSweep{Scenario: s.Name, Runs: n}
	if s.Profile.Machine.Cores == 0 {
		s.Profile = o.Profile
	}
	base := s.Seed
	if base == 0 {
		base = o.Seed
	}
	type point struct {
		throughput float64
		power      float64
		opsPerJ    float64
		recovery   float64
		recovered  bool
	}
	pts := make([]point, n)
	NewRunner(0).each(n, func(i int) {
		run := s
		run.Seed = base + int64(i)*104729
		r := Run(run)
		pts[i] = point{
			throughput: r.Throughput,
			power:      r.AvgPowerPerServer,
			opsPerJ:    r.OpsPerJoule,
			recovery:   r.RecoveryTime.Seconds(),
			recovered:  r.Recovered,
		}
	})
	for _, p := range pts {
		sweep.Throughput.Add(p.throughput)
		sweep.PowerPerServer.Add(p.power)
		sweep.OpsPerJoule.Add(p.opsPerJ)
		if p.recovered {
			sweep.RecoverySeconds.Add(p.recovery)
		}
	}
	return sweep
}

// SeedSweep holds the per-metric distributions of a multi-seed run.
type SeedSweep struct {
	Scenario string
	Runs     int

	Throughput      metrics.Distribution
	PowerPerServer  metrics.Distribution
	OpsPerJoule     metrics.Distribution
	RecoverySeconds metrics.Distribution
}
