package core

import "ramcloud/internal/metrics"

// RunSeeds executes the scenario with n different seeds and aggregates
// throughput, power and efficiency distributions.
func RunSeeds(s Scenario, n int) *SeedSweep {
	sweep := &SeedSweep{Scenario: s.Name, Runs: n}
	base := s.Seed
	if base == 0 {
		base = 42
	}
	for i := 0; i < n; i++ {
		s.Seed = base + int64(i)*104729
		r := Run(s)
		sweep.Throughput.Add(r.Throughput)
		sweep.PowerPerServer.Add(r.AvgPowerPerServer)
		sweep.OpsPerJoule.Add(r.OpsPerJoule)
		if r.Recovered {
			sweep.RecoverySeconds.Add(r.RecoveryTime.Seconds())
		}
	}
	return sweep
}

// SeedSweep holds the per-metric distributions of a multi-seed run.
type SeedSweep struct {
	Scenario string
	Runs     int

	Throughput      metrics.Distribution
	PowerPerServer  metrics.Distribution
	OpsPerJoule     metrics.Distribution
	RecoverySeconds metrics.Distribution
}
