package core

import (
	"reflect"
	"sync"
	"testing"

	"ramcloud/internal/ycsb"
)

// tinyScenario is a cheap distinct scenario for concurrency tests: one
// server, one client, a few hundred ops.
func tinyScenario(seed int64) Scenario {
	return Scenario{
		Name:              "runner-tiny",
		Servers:           1,
		Clients:           1,
		Workload:          ycsb.WorkloadC(1_000, 1024),
		RequestsPerClient: 300,
		Seed:              seed,
	}
}

// TestRunMemoSingleflight hammers the memo from many goroutines (run
// under -race in CI) and asserts exactly one simulation per distinct
// scenario, with every caller sharing that run's Result pointer.
func TestRunMemoSingleflight(t *testing.T) {
	ResetMemo()
	scens := []Scenario{tinyScenario(1), tinyScenario(2), tinyScenario(3)}
	before := MemoRuns()

	const goroutines = 48
	results := make([][]*Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rs := make([]*Result, len(scens))
			for i := range scens {
				rs[i] = runMemo(scens[(g+i)%len(scens)])
			}
			results[g] = rs
		}(g)
	}
	wg.Wait()

	if runs := MemoRuns() - before; runs != int64(len(scens)) {
		t.Fatalf("%d goroutines x %d scenarios executed %d simulations, want %d (singleflight broken)",
			goroutines, len(scens), runs, len(scens))
	}
	canonical := map[string]*Result{}
	for g := range results {
		for i, r := range results[g] {
			s := scens[(g+i)%len(scens)]
			if r == nil {
				t.Fatalf("goroutine %d got nil result", g)
			}
			key := memoKey(s)
			if prev, ok := canonical[key]; ok && prev != r {
				t.Fatalf("scenario seed %d returned two distinct Result pointers", s.Seed)
			} else if !ok {
				canonical[key] = r
			}
		}
	}
}

func TestResetMemoForcesRerun(t *testing.T) {
	ResetMemo()
	s := tinyScenario(11)
	a := runMemo(s)
	before := MemoRuns()
	if runMemo(s) != a {
		t.Fatal("memo hit returned a different pointer")
	}
	if MemoRuns() != before {
		t.Fatal("memo hit executed a simulation")
	}
	ResetMemo()
	b := runMemo(s)
	if MemoRuns() != before+1 {
		t.Fatal("ResetMemo did not force a re-run")
	}
	if a == b {
		t.Fatal("post-reset run returned the old Result pointer")
	}
}

// TestPrewarmWarmsTheMemo runs a fake experiment's grid through the pool
// and asserts the subsequent render path (runMemo per cell) simulates
// nothing new — the prewarm + singleflight + memo interaction the
// parallel rcgold render depends on.
func TestPrewarmWarmsTheMemo(t *testing.T) {
	ResetMemo()
	grid := []Scenario{tinyScenario(21), tinyScenario(22)}
	exp := Experiment{
		ID: "prewarm-test", Title: "t", Setup: "s",
		Scenarios: func(Options) []Scenario { return grid },
	}
	before := MemoRuns()
	// The same experiment twice: the dedup must collapse the doubled grid.
	NewRunner(4).Prewarm([]Experiment{exp, exp}, Options{})
	if runs := MemoRuns() - before; runs != int64(len(grid)) {
		t.Fatalf("prewarm executed %d simulations, want %d", runs, len(grid))
	}
	for _, s := range grid {
		runMemo(s)
	}
	if runs := MemoRuns() - before; runs != int64(len(grid)) {
		t.Fatalf("render after prewarm re-simulated: %d runs total, want %d", runs, len(grid))
	}
}

// TestRunSeedsParallelMatchesSerial asserts a seed sweep aggregates
// bit-identical distributions at -j 1 and -j 8: per-seed runs are
// independent simulations and the scalars fold in ascending seed order
// regardless of completion order.
func TestRunSeedsParallelMatchesSerial(t *testing.T) {
	s := Scenario{
		Name:              "sweep-par",
		Servers:           2,
		Clients:           2,
		Workload:          ycsb.WorkloadB(2_000, 1024),
		RequestsPerClient: 500,
	}
	prev := SetParallelism(1)
	defer SetParallelism(prev)
	serial := RunSeeds(s, 8, Options{})
	SetParallelism(8)
	parallel := RunSeeds(s, 8, Options{})
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("seed sweep differs between -j 1 and -j 8:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if serial.Throughput.N() != 8 || serial.Throughput.Stddev() == 0 {
		t.Fatalf("sweep degenerate: %+v", serial)
	}
}

func TestParallelismDefaultsAndOverride(t *testing.T) {
	prev := SetParallelism(0)
	defer SetParallelism(prev)
	if Parallelism() < 1 {
		t.Fatalf("default parallelism %d", Parallelism())
	}
	if SetParallelism(3) != 0 {
		t.Fatal("SetParallelism did not report the previous default")
	}
	if Parallelism() != 3 {
		t.Fatalf("override ignored: %d", Parallelism())
	}
	if NewRunner(0).Workers() != 3 {
		t.Fatal("NewRunner(0) ignored the process default")
	}
	if NewRunner(7).Workers() != 7 {
		t.Fatal("NewRunner(7) ignored its argument")
	}
}

// TestRunnerPropagatesPanics: a scenario that panics inside Run (here a
// windowed group without a window, a programming error) must re-raise on
// the RunAll caller — not kill an anonymous pool goroutine — and its
// dropped memo entry must leave the memo usable: the next request
// re-attempts the run and hits the same panic, rather than returning a
// stale nil result.
func TestRunnerPropagatesPanics(t *testing.T) {
	ResetMemo()
	bad := Scenario{
		Name:    "runner-panic",
		Servers: 1,
		Groups: []ClientGroup{{
			Name: "bad", Clients: 1,
			Workload:          ycsb.WorkloadC(1_000, 1024),
			RequestsPerClient: 10,
			Arrival:           ArrivalWindowed, // Window < 2: runOptionsFor panics
		}},
		Seed: 1,
	}
	mustPanic := func(fn func()) (p any) {
		t.Helper()
		defer func() { p = recover() }()
		fn()
		t.Fatal("no panic propagated")
		return nil
	}
	first := mustPanic(func() { NewRunner(4).RunAll([]Scenario{bad, tinyScenario(41)}) })
	before := MemoRuns()
	second := mustPanic(func() { runMemo(bad) })
	if first == nil || second == nil || first != second {
		t.Fatalf("panic values differ: %v vs %v", first, second)
	}
	// The dropped entry means the retry re-panicked by running again (one
	// more simulation attempt), not by returning a stale nil result.
	if MemoRuns() != before+1 {
		t.Fatalf("expected exactly one re-attempt after the dropped entry, got %d", MemoRuns()-before)
	}
}

// TestRunAllOrderAndDedup checks RunAll returns results in input order
// and that duplicate scenarios share one simulation and one pointer.
func TestRunAllOrderAndDedup(t *testing.T) {
	ResetMemo()
	s1, s2 := tinyScenario(31), tinyScenario(32)
	before := MemoRuns()
	rs := NewRunner(4).RunAll([]Scenario{s1, s2, s1})
	if MemoRuns()-before != 2 {
		t.Fatalf("RunAll simulated %d scenarios, want 2", MemoRuns()-before)
	}
	if rs[0] == nil || rs[1] == nil || rs[0] == rs[1] {
		t.Fatal("distinct scenarios shared a result")
	}
	if rs[0] != rs[2] {
		t.Fatal("duplicate scenario did not share its result")
	}
	if rs[0].Scenario != s1.Name {
		t.Fatalf("result order broken: %q", rs[0].Scenario)
	}
}
