package core

import (
	"fmt"

	"ramcloud/internal/client"
	"ramcloud/internal/coordinator"
	"ramcloud/internal/energy"
	"ramcloud/internal/hashtable"
	"ramcloud/internal/machine"
	"ramcloud/internal/server"
	"ramcloud/internal/sim"
	"ramcloud/internal/simdisk"
	"ramcloud/internal/simnet"
	"ramcloud/internal/ycsb"
)

// Fabric addressing: servers occupy node ids 1..N (so server id == node
// id), the coordinator sits at CoordinatorAddr and clients at
// ClientAddrBase+i. Only server nodes are power-metered, mirroring the
// paper's 40 PDU-equipped machines.
const (
	// CoordinatorAddr is the coordinator's fabric address.
	CoordinatorAddr simnet.NodeID = -1
	// ClientAddrBase is the first client fabric address.
	ClientAddrBase simnet.NodeID = 10_000
)

// Cluster is a fully wired simulated testbed: N storage servers
// (master+backup), one coordinator, PDUs, disks and the fabric.
type Cluster struct {
	Profile Profile

	Eng     *sim.Engine
	Net     *simnet.Network
	Coord   *coordinator.Coordinator
	Servers []*server.Server
	Nodes   []*machine.Node
	Disks   []*simdisk.Disk
	PDUs    []*energy.PDU

	Clients []*client.Client

	addrs []simnet.NodeID // server fabric addresses, by index
	rf    int             // replication factor servers were built with

	// sh is non-nil when the cluster runs on a sharded engine: servers
	// are spread round-robin over lanes 1..L-1, clients over all lanes,
	// and the coordinator (plus the fabric's default lane) stays on lane
	// 0. Eng is then lane 0's engine.
	sh *sim.Sharded

	meter   *sim.Ticker
	meterX  *sim.ExclusiveTicker
	started bool
}

// NewCluster wires a cluster of n servers with the profile's hardware and
// the given replication factor. Call Start before running workload procs.
func NewCluster(eng *sim.Engine, p Profile, n int, replicationFactor int) *Cluster {
	return buildCluster(eng, nil, p, n, replicationFactor)
}

// NewShardedCluster wires the same cluster on a sharded engine: server i
// lives on lane 1 + i mod (L-1) — lane 0 is reserved for the coordinator
// so ping fan-in never contends with a server's dispatch — and clients
// are assigned round-robin across all lanes as they are created. With one
// lane this is exactly NewCluster on sh.Lane(0).
func NewShardedCluster(sh *sim.Sharded, p Profile, n int, replicationFactor int) *Cluster {
	return buildCluster(sh.Lane(0), sh, p, n, replicationFactor)
}

// serverLane maps server index i to its home lane.
func serverLane(sh *sim.Sharded, i int) int {
	if sh == nil || sh.Lanes() == 1 {
		return 0
	}
	return 1 + i%(sh.Lanes()-1)
}

func buildCluster(eng *sim.Engine, sh *sim.Sharded, p Profile, n int, replicationFactor int) *Cluster {
	if n < 1 {
		panic("core: cluster needs at least one server")
	}
	c := &Cluster{Profile: p, Eng: eng, sh: sh}
	c.Net = simnet.New(eng, p.Net)
	c.Coord = coordinator.New(eng, c.Net, CoordinatorAddr, p.Coordinator)

	srvCfg := p.Server
	srvCfg.ReplicationFactor = replicationFactor

	var addrs []simnet.NodeID
	for i := 0; i < n; i++ {
		seng := eng
		if sh != nil {
			seng = sh.Lane(serverLane(sh, i))
		}
		node := machine.NewNode(seng, i+1, p.Machine)
		disk := simdisk.New(seng, p.Disk)
		srv := server.New(seng, node, c.Net, disk, CoordinatorAddr, srvCfg)
		c.Nodes = append(c.Nodes, node)
		c.Disks = append(c.Disks, disk)
		c.Servers = append(c.Servers, srv)
		c.Coord.AddServer(srv)
		addrs = append(addrs, srv.Addr())
	}
	c.addrs = addrs
	c.rf = replicationFactor
	for i, srv := range c.Servers {
		srv.SetPeers(addrs)
		srv.SetRegistry(c.Coord.Registry())

		node, disk, addr := c.Nodes[i], c.Disks[i], addrs[i]
		pdu := energy.NewPDU(p.Power,
			func(k int) float64 { return node.UtilSecond(k) },
			func(k int) float64 { return disk.BusyFracSecond(k) },
			func(k int) float64 { return c.Net.TxBusyFracSecond(addr, k) },
		)
		c.PDUs = append(c.PDUs, pdu)
	}
	return c
}

// Start launches the coordinator, all servers and the 1 Hz PDU metering.
func (c *Cluster) Start() {
	if c.started {
		panic("core: cluster started twice")
	}
	c.started = true
	c.Coord.Start()
	for _, s := range c.Servers {
		s.Start()
	}
	meter := func(now sim.Time) {
		k := int(int64(now)/int64(sim.Second)) - 1
		for i, node := range c.Nodes {
			node.FlushAccounting(now)
			c.PDUs[i].Sample(k)
		}
	}
	if c.sh != nil && c.sh.Lanes() > 1 {
		// The meter reads every node's accounting, so under a sharded
		// engine it must run at an exclusive instant: all lanes parked,
		// clocks aligned at the tick time. The tick at (k+1)s reads only
		// bucket k, which no same-instant lane event can still touch, so
		// exclusive-vs-lane ordering is unobservable in the samples.
		c.meterX = c.sh.NewExclusiveTicker(sim.Second, meter)
	} else {
		c.meter = sim.NewTicker(c.Eng, sim.Second, meter)
	}
}

// StopMetering halts the PDU ticker so the event queue can drain.
func (c *Cluster) StopMetering() {
	if c.meter != nil {
		c.meter.Stop()
	}
	if c.meterX != nil {
		c.meterX.Stop()
	}
}

// NewClient adds a client at the next client address. Under a sharded
// engine clients are spread round-robin over all lanes: client think time
// dominates eligible workloads, so distributing clients — not just
// servers — is what buys the wall-clock speedup.
func (c *Cluster) NewClient() *client.Client {
	idx := len(c.Clients)
	addr := ClientAddrBase + simnet.NodeID(idx)
	cl := client.New(c.clientEngine(idx), c.Net, addr, CoordinatorAddr, c.Profile.Client)
	c.Clients = append(c.Clients, cl)
	return cl
}

// clientEngine returns client index i's home lane engine (the engine its
// workload proc must run on).
func (c *Cluster) clientEngine(i int) *sim.Engine {
	if c.sh != nil {
		return c.sh.Lane(i % c.sh.Lanes())
	}
	return c.Eng
}

// CreateTable creates a table spanning all servers (the paper's
// ServerSpan = cluster size) through the configuration plane.
func (c *Cluster) CreateTable(name string) uint64 {
	return c.Coord.CreateTableDirect(name, len(c.Servers))
}

// BulkLoad fills a table with records of the given size in zero simulated
// time, building the same log, hash-table and replica state a YCSB load
// phase would. Replicas of sealed segments are marked flushed.
func (c *Cluster) BulkLoad(table uint64, records, recordSize int) {
	tablets := c.Coord.TabletMapDirect()
	reg := c.Coord.Registry()
	for i := 0; i < records; i++ {
		key := ycsb.Key(i)
		keyHash := hashtable.HashKey(table, key)
		var owner *server.Server
		for j := range tablets {
			t := &tablets[j]
			if t.Table == table && keyHash >= t.StartHash && keyHash <= t.EndHash {
				owner = reg(simnet.NodeID(t.Master))
				break
			}
		}
		if owner == nil {
			panic(fmt.Sprintf("core: no owner for record %d", i))
		}
		if err := owner.FastLoad(table, key, uint32(recordSize)); err != nil {
			panic(fmt.Sprintf("core: bulk load: %v", err))
		}
	}
}

// KillServer crashes server index i (0-based). The coordinator's failure
// detector will notice within its ping budget.
func (c *Cluster) KillServer(i int) {
	c.Servers[i].Kill()
}

// RestartServer rebuilds a killed server process on its original node and
// fabric address, starts it and re-admits it with the coordinator (which
// re-spreads tablets onto it). The restarted process is empty: DRAM
// contents and backup replica metadata died with the old process, exactly
// like a real restart. Returns false if the server was not dead.
func (c *Cluster) RestartServer(i int) bool {
	if !c.Servers[i].Dead() {
		return false
	}
	addr := c.addrs[i]
	c.Net.Detach(addr)
	c.Net.SetDown(addr, false)
	c.Nodes[i].Revive()

	srvCfg := c.Profile.Server
	srvCfg.ReplicationFactor = c.rf
	srv := server.New(c.Eng, c.Nodes[i], c.Net, c.Disks[i], CoordinatorAddr, srvCfg)
	srv.SetPeers(c.addrs)
	srv.SetRegistry(c.Coord.Registry())
	c.Servers[i] = srv
	srv.Start()
	c.Coord.Readmit(srv)
	return true
}

// LiveBytesOn returns the live log bytes held by server index i.
func (c *Cluster) LiveBytesOn(i int) int64 {
	return c.Servers[i].Log().LiveBytes()
}

// EnergyReport aggregates PDU data over seconds [from, to).
func (c *Cluster) EnergyReport(from, to int, ops int64) energy.Report {
	return energy.WindowReport(c.PDUs, from, to, ops)
}
