package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ramcloud/internal/metrics"
	"ramcloud/internal/ycsb"
)

// Options scale and seed an experiment run. Scale multiplies the paper's
// record counts and this reproduction's standard request counts; 1.0 is
// the default used for EXPERIMENTS.md, larger values approach paper-scale
// durations at proportional wall-clock cost.
type Options struct {
	Scale   float64
	Seed    int64
	Profile Profile
}

func (o Options) normalize() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Profile.Machine.Cores == 0 {
		o.Profile = DefaultProfile()
	}
	return o
}

// requests scales one of this reproduction's standard request counts.
func (o Options) requests(std int) int {
	n := int(float64(std) * o.Scale)
	if n < 2000 {
		n = 2000
	}
	return n
}

// records scales a record count published in the paper. The floor keeps
// datasets large enough to span many segments.
func (o Options) records(paper int) int {
	n := int(float64(paper) * o.Scale * recordScale)
	if n < 20_000 {
		n = 20_000
	}
	return n
}

// recordScale maps the paper's 10M-record recovery datasets to a default
// that runs in seconds rather than hours; Options.Scale multiplies it.
const recordScale = 0.1

// Table is one rendered result table.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// ExpResult is the outcome of one experiment.
type ExpResult struct {
	ID     string
	Title  string
	Setup  string
	Tables []Table
	Series map[string]*metrics.Series
	Notes  []string
}

// Render formats the result as plain text.
func (r *ExpResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n%s\n\n", r.ID, r.Title, r.Setup)
	for _, t := range r.Tables {
		if t.Caption != "" {
			fmt.Fprintf(&b, "%s\n", t.Caption)
		}
		b.WriteString(metrics.FormatTable(t.Header, t.Rows))
		b.WriteString("\n")
	}
	if len(r.Series) > 0 {
		keys := make([]string, 0, len(r.Series))
		for k := range r.Series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := r.Series[k]
			fmt.Fprintf(&b, "series %s (per second): ", k)
			for i := 0; i < s.Len(); i++ {
				fmt.Fprintf(&b, "%.1f ", s.At(i))
			}
			b.WriteString("\n")
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment regenerates one of the paper's tables or figures.
type Experiment struct {
	ID    string
	Title string
	Setup string
	Run   func(Options) *ExpResult
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig1a", Title: "Aggregated read-only throughput vs cluster size", Setup: "workload C, RF 0, servers {1,5,10} x clients {1,10,30}", Run: runFig1a},
		{ID: "fig1b", Title: "Average power per server (read-only)", Setup: "same grid as fig1a", Run: runFig1b},
		{ID: "fig2", Title: "Energy efficiency (op/J) of read-only runs", Setup: "same grid as fig1a", Run: runFig2},
		{ID: "table1", Title: "Min-max CPU usage per node (read-only)", Setup: "servers {1,5,10} x clients {0..5,10,30}", Run: runTable1},
		{ID: "table2", Title: "Throughput of workloads A/B/C on 10 servers", Setup: "RF 0, 100K records, clients {10..90}", Run: runTable2},
		{ID: "fig3", Title: "Scalability factor vs 10-client baseline", Setup: "derived from table2", Run: runFig3},
		{ID: "fig4a", Title: "Average power per node, 20 servers", Setup: "A/B/C x clients {10..90}", Run: runFig4a},
		{ID: "fig4b", Title: "Total energy at 90 clients by workload", Setup: "20 servers", Run: runFig4b},
		{ID: "fig5", Title: "Throughput vs replication factor, 20 servers", Setup: "update-heavy A, RF {1..4} x clients {10,30,60}", Run: runFig5},
		{ID: "fig6a", Title: "Throughput vs servers and RF, 60 clients", Setup: "A, servers {10..40} x RF {1..4}", Run: runFig6a},
		{ID: "fig6b", Title: "Total energy vs servers and RF, 60 clients", Setup: "same grid as fig6a", Run: runFig6b},
		{ID: "fig7", Title: "Average power vs RF, 40 servers, 60 clients", Setup: "A", Run: runFig7},
		{ID: "fig8", Title: "Energy efficiency vs RF, {20,30,40} servers", Setup: "A, 60 clients", Run: runFig8},
		{ID: "fig9a", Title: "CPU usage around a crash (10 idle servers)", Setup: "RF 4, 10M records (scaled), kill at 15s", Run: runFig9a},
		{ID: "fig9b", Title: "Power around a crash (10 idle servers)", Setup: "same run as fig9a", Run: runFig9b},
		{ID: "fig10", Title: "Client latency across a crash", Setup: "client 1 targets lost data, client 2 live data", Run: runFig10},
		{ID: "fig11a", Title: "Recovery time vs replication factor", Setup: "9 servers, ~1/9 of data per server, RF {1..5}", Run: runFig11a},
		{ID: "fig11b", Title: "Per-node energy during recovery vs RF", Setup: "same grid as fig11a", Run: runFig11b},
		{ID: "fig12", Title: "Aggregate disk I/O during recovery", Setup: "9 servers, RF 3", Run: runFig12},
		{ID: "fig13", Title: "Throttled clients avoid collapse", Setup: "10 servers, RF 2, A, rate {200,500} op/s", Run: runFig13},
		{ID: "seg", Title: "Segment-size sweep (Sec. IX): recovery time", Setup: "9 servers, RF 2, segment {1..32} MB", Run: runSegSweep},
		{ID: "cleaner", Title: "Ablation: log cleaner under memory pressure", Setup: "4 servers, RF 0, log sized to force cleaning", Run: runCleanerAblation},
		{ID: "consistency", Title: "Ablation: replication communication (Sec. IX.B)", Setup: "20 servers, A, RF 3: sync RPC vs async RPC vs one-sided RDMA", Run: runConsistencyAblation},
		{ID: "scatter", Title: "Ablation: random scatter vs fixed backups", Setup: "9 servers, RF 2, recovery time", Run: runScatterAblation},
		{ID: "dist", Title: "Extension: request distributions (Sec. X)", Setup: "10 servers, uniform vs zipfian", Run: runDistributionStudy},
		{ID: "batch", Title: "Extension: multi-op batching and async pipelining", Setup: "10 servers, C and A, batch {1,4,16,64}, window {1,4,16}", Run: runBatchSweep},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Shared memoized scenario runner: several figures reuse the same grid
// (e.g. fig1a/fig1b/fig2), so identical scenarios run once per process.
var (
	memoMu sync.Mutex
	memo   = map[string]*Result{}
)

func runMemo(s Scenario) *Result {
	key := fmt.Sprintf("%s|srv%d|cl%d|rf%d|wl%s|rec%d|req%d|rate%g|seed%d|kill%d|idle%d|seg%d|bs%d|win%d",
		s.Name, s.Servers, s.Clients, s.RF, s.Workload.Name, s.Workload.RecordCount,
		s.RequestsPerClient, s.Rate, s.Seed, s.KillAfter, s.IdleSeconds, s.Profile.Server.Log.SegmentBytes,
		s.BatchSize, s.Window)
	memoMu.Lock()
	if r, ok := memo[key]; ok {
		memoMu.Unlock()
		return r
	}
	memoMu.Unlock()
	r := Run(s)
	memoMu.Lock()
	memo[key] = r
	memoMu.Unlock()
	return r
}

// kops formats an ops/s number in Kop/s like the paper.
func kops(v float64) string { return fmt.Sprintf("%.0fK", v/1000) }

// paperVs builds a "paper -> measured" cell.
func paperVs(paper string, measured string) string {
	return paper + " / " + measured
}

func workloadFor(name string, records, size int) ycsb.Workload {
	w, err := ycsb.ByName(name, records, size)
	if err != nil {
		panic(err)
	}
	return w
}
