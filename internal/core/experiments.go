package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ramcloud/internal/metrics"
	"ramcloud/internal/ycsb"
)

// Options scale and seed an experiment run. Scale multiplies the paper's
// record counts and this reproduction's standard request counts; 1.0 is
// the default used for EXPERIMENTS.md, larger values approach paper-scale
// durations at proportional wall-clock cost.
type Options struct {
	Scale   float64
	Seed    int64
	Profile Profile
}

func (o Options) normalize() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Profile.Machine.Cores == 0 {
		o.Profile = DefaultProfile()
	}
	return o
}

// requests scales one of this reproduction's standard request counts.
func (o Options) requests(std int) int {
	n := int(float64(std) * o.Scale)
	if n < 2000 {
		n = 2000
	}
	return n
}

// records scales a record count published in the paper. The floor keeps
// datasets large enough to span many segments.
func (o Options) records(paper int) int {
	n := int(float64(paper) * o.Scale * recordScale)
	if n < 20_000 {
		n = 20_000
	}
	return n
}

// recordScale maps the paper's 10M-record recovery datasets to a default
// that runs in seconds rather than hours; Options.Scale multiplies it.
const recordScale = 0.1

// Table is one rendered result table.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// ExpResult is the outcome of one experiment.
type ExpResult struct {
	ID     string
	Title  string
	Setup  string
	Tables []Table
	Series map[string]*metrics.Series
	Notes  []string
}

// Render formats the result as plain text.
func (r *ExpResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n%s\n\n", r.ID, r.Title, r.Setup)
	for _, t := range r.Tables {
		if t.Caption != "" {
			fmt.Fprintf(&b, "%s\n", t.Caption)
		}
		b.WriteString(metrics.FormatTable(t.Header, t.Rows))
		b.WriteString("\n")
	}
	if len(r.Series) > 0 {
		keys := make([]string, 0, len(r.Series))
		for k := range r.Series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := r.Series[k]
			fmt.Fprintf(&b, "series %s (per second): ", k)
			for i := 0; i < s.Len(); i++ {
				fmt.Fprintf(&b, "%.1f ", s.At(i))
			}
			b.WriteString("\n")
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment regenerates one of the paper's tables or figures, or an
// extension registered on top of them.
type Experiment struct {
	ID    string
	Title string
	Setup string
	// Order fixes the experiment's position in Experiments(): the paper's
	// artifacts use 10, 20, ... in paper order, so extensions can slot
	// anywhere without renumbering. Ties break by registration order.
	Order int
	Run   func(Options) *ExpResult
	// Scenarios enumerates the exact scenario grid Run will execute, so
	// Runner.Prewarm can pump every cell through the worker pool before a
	// sequential render. Nil for experiments that drive a custom
	// simulation loop (fig10) — those cannot be prewarmed.
	Scenarios func(Options) []Scenario
}

// The experiment registry. Each experiments_*.go file registers its
// entries from init(), so adding an experiment is one Register call in
// the file that implements it — no central list to edit.
var (
	regMu    sync.Mutex
	registry []Experiment
)

// Register adds an experiment to the registry. It panics on a duplicate
// or incomplete registration — both are programming errors caught at
// process start because all registration happens in init().
func Register(e Experiment) {
	if e.ID == "" || e.Title == "" || e.Run == nil {
		panic(fmt.Sprintf("core: incomplete experiment registration %+v", e))
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, have := range registry {
		if have.ID == e.ID {
			panic(fmt.Sprintf("core: duplicate experiment id %q", e.ID))
		}
	}
	registry = append(registry, e)
}

// Experiments returns every registered experiment in paper order
// (ascending Order, stable on ties).
func Experiments() []Experiment {
	regMu.Lock()
	out := make([]Experiment, len(registry))
	copy(out, registry)
	regMu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Order < out[j].Order })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// The scenario memo lives in runner.go: runMemo is singleflight (the key
// is the canonical memoKey rendering of the full scenario — every field,
// including KillTarget, Deadline, groups, phases and the whole Profile —
// so two scenarios differing anywhere never share a memoized Result,
// while concurrent requests for the same scenario share one run).

// kops formats an ops/s number in Kop/s like the paper.
func kops(v float64) string { return fmt.Sprintf("%.0fK", v/1000) }

// paperVs builds a "paper -> measured" cell.
func paperVs(paper string, measured string) string {
	return paper + " / " + measured
}

func workloadFor(name string, records, size int) ycsb.Workload {
	w, err := ycsb.ByName(name, records, size)
	if err != nil {
		panic(err)
	}
	return w
}
