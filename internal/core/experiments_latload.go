package core

import (
	"fmt"

	"ramcloud/internal/sim"
)

// This file registers the open-loop latency-vs-load study the ROADMAP
// names as the complement to the closed-loop Table II: offered load is
// swept from a light trough past the single-server saturation point with
// Poisson arrivals, so measured latency includes the queueing delay a
// closed loop hides (its clients self-throttle instead of queueing). The
// rendered curves are the classic hockey stick: flat service-time p50,
// p99 bending upward near the knee, then queueing blow-up past capacity —
// the methodology of the workload sweeps in Niemann et al.'s
// energy-vs-performance study, with energy per op reported across the
// same sweep. The sweep is a 3x12 scenario grid built for the parallel
// Runner: every cell is enumerated by latLoadGrid, so a prewarmed render
// runs the whole study concurrently.

func init() {
	Register(Experiment{ID: "latload", Order: 290, Title: "Extension: open-loop latency vs offered load", Setup: "1 server, open-loop Poisson clients, A/B/C swept from 0.1x capacity past saturation", Run: runLatLoad, Scenarios: latLoadGrid})
}

// latLoadSweep is one workload's sweep configuration. Capacity is the
// nominal single-server saturation throughput (aggregate ops/s, measured
// closed-loop at seed 42): the write path's quadratic log-head contention
// caps A well below the read-only dispatch ceiling. Client counts differ
// because each client's issue loop serializes behind its per-op CPU
// overhead (~33 us reads): C needs 90 generators to push offered load
// past the 380 Kop/s dispatch ceiling, while A's 8 Kop/s write knee is
// reachable with 30. Fractions cross each knee decisively: B's write
// path is bistable just above its knee (a borderline arrival sequence
// may or may not tip it into the contention collapse within the window),
// so its sweep jumps from the last stable point straight into the
// firmly-collapsed region instead of sampling the boundary.
type latLoadSweep struct {
	wl        string
	clients   int
	capacity  float64
	fractions []float64
	// windowMult stretches the issuing window: A's capacity is three
	// orders below C's, so its trough cells see too few operations for a
	// stable p99 tail in the base window; a longer window costs nothing
	// there and keeps the rendered curve monotone.
	windowMult int
}

var latLoadSweeps = []latLoadSweep{
	{wl: "A", clients: 30, capacity: 8_000, windowMult: 4,
		fractions: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2, 1.5}},
	{wl: "B", clients: 30, capacity: 210_000, windowMult: 1,
		fractions: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 1.1, 1.2, 1.35, 1.5}},
	{wl: "C", clients: 90, capacity: 380_000, windowMult: 1,
		fractions: []float64{0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0, 1.15, 1.3, 1.5}},
}

// latLoadSeconds is the per-cell issuing window; Options.Scale stretches
// it (the rates themselves must not scale or the knee would move).
func latLoadSeconds(o Options) int {
	secs := int(3*o.Scale + 0.5)
	if secs < 2 {
		secs = 2
	}
	return secs
}

func latLoadScenario(o Options, sw latLoadSweep, frac float64) Scenario {
	return Scenario{
		Name:    "latload",
		Profile: o.Profile,
		Servers: 1,
		Seed:    o.Seed,
		Groups: []ClientGroup{{
			Name:     "latload-" + sw.wl,
			Clients:  sw.clients,
			Workload: workloadFor(sw.wl, 100_000, 1024),
			Arrival:  ArrivalOpen,
			Rate:     sw.capacity * frac / float64(sw.clients),
			Stop:     sim.Duration(latLoadSeconds(o)*sw.windowMult) * sim.Second,
			Warmup:   true,
		}},
	}
}

func latLoadGrid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for _, sw := range latLoadSweeps {
		for _, frac := range sw.fractions {
			out = append(out, latLoadScenario(o, sw, frac))
		}
	}
	return out
}

func runLatLoad(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "latload",
		Title: "Open-loop latency vs offered load (hockey-stick curves)",
		Setup: "1 server, RF 0, open-loop Poisson clients, 100K records; per-sweep client count and issuing window in each caption"}

	for _, sw := range latLoadSweeps {
		t := Table{
			Caption: fmt.Sprintf("workload %s, %d clients, %ds window per cell (nominal capacity %s)",
				sw.wl, sw.clients, latLoadSeconds(o)*sw.windowMult, kops(sw.capacity)),
			Header:  []string{"offered x", "offered", "delivered", "p50 read us", "p99 read us", "p99 write us", "W/server", "mJ/op"},
		}
		var kneeFrac float64
		var p99AtTrough, p99AtPeak float64
		for i, frac := range sw.fractions {
			r := runMemo(latLoadScenario(o, sw, frac))
			offered := sw.capacity * frac
			p99 := float64(r.ReadLatency.Quantile(0.99)) / 1000
			wp99 := "-"
			if r.WriteLatency.Count() > 0 {
				wp99 = fmt.Sprintf("%.1f", float64(r.WriteLatency.Quantile(0.99))/1000)
			}
			mJ := "-"
			if r.OpsPerJoule > 0 {
				mJ = fmt.Sprintf("%.2f", 1000/r.OpsPerJoule)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.2f", frac),
				kops(offered),
				kops(r.Throughput),
				fmt.Sprintf("%.1f", float64(r.ReadLatency.Quantile(0.50))/1000),
				fmt.Sprintf("%.1f", p99),
				wp99,
				fmt.Sprintf("%.1f", r.AvgPowerPerServer),
				mJ,
			})
			if i == 0 {
				p99AtTrough = p99
			}
			p99AtPeak = p99
			// The knee: first offered fraction whose p99 exceeds 10x the
			// trough's (queueing departs from the flat service-time floor).
			if kneeFrac == 0 && i > 0 && p99AtTrough > 0 && p99 > 10*p99AtTrough {
				kneeFrac = frac
			}
		}
		res.Tables = append(res.Tables, t)
		if kneeFrac > 0 && p99AtTrough > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"workload %s: p99 knee at %.2fx capacity; %.0fx p99 inflation from trough to %.1fx (%.0fus -> %.0fus)",
				sw.wl, kneeFrac, p99AtPeak/p99AtTrough, sw.fractions[len(sw.fractions)-1], p99AtTrough, p99AtPeak))
		}
	}
	res.Notes = append(res.Notes,
		"open-loop Poisson arrivals queue when the server saturates (latency includes queueing delay); the closed-loop Table II instead self-throttles at the same point, reporting capacity but hiding the latency cliff",
		"energy per op mirrors the paper's non-proportionality: mJ/op is highest at the trough (idle watts spread over few ops) and lowest just below the knee")
	return res
}
