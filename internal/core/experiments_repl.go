package core

import (
	"fmt"

	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

// This file regenerates the replication study (Section VI): Figs. 5-8 and
// the throttling mitigation (Fig. 13).

func init() {
	Register(Experiment{ID: "fig5", Order: 90, Title: "Throughput vs replication factor, 20 servers", Setup: "update-heavy A, RF {1..4} x clients {10,30,60}", Run: runFig5, Scenarios: fig5Grid})
	Register(Experiment{ID: "fig6a", Order: 100, Title: "Throughput vs servers and RF, 60 clients", Setup: "A, servers {10..40} x RF {1..4}", Run: runFig6a, Scenarios: fig6Grid})
	Register(Experiment{ID: "fig6b", Order: 110, Title: "Total energy vs servers and RF, 60 clients", Setup: "same grid as fig6a", Run: runFig6b, Scenarios: fig6Grid})
	Register(Experiment{ID: "fig7", Order: 120, Title: "Average power vs RF, 40 servers, 60 clients", Setup: "A", Run: runFig7, Scenarios: fig7Grid})
	Register(Experiment{ID: "fig8", Order: 130, Title: "Energy efficiency vs RF, {20,30,40} servers", Setup: "A, 60 clients", Run: runFig8, Scenarios: fig8Grid})
	Register(Experiment{ID: "fig13", Order: 200, Title: "Throttled clients avoid collapse", Setup: "10 servers, RF 2, A, rate {200,500} op/s", Run: runFig13, Scenarios: fig13Grid})
	Register(Experiment{ID: "consistency", Order: 230, Title: "Ablation: replication communication (Sec. IX.B)", Setup: "20 servers, A, RF 3: sync RPC vs async RPC vs one-sided RDMA", Run: runConsistencyAblation, Scenarios: consistencyGrid})
	Register(Experiment{ID: "dist", Order: 250, Title: "Extension: request distributions (Sec. X)", Setup: "10 servers, uniform vs zipfian", Run: runDistributionStudy, Scenarios: distGrid})
}

func replScenario(o Options, servers, clients, rf int) Scenario {
	return Scenario{
		Name:              "repl",
		Profile:           o.Profile,
		Servers:           servers,
		Clients:           clients,
		RF:                rf,
		Workload:          ycsb.WorkloadA(100_000, 1024),
		RequestsPerClient: o.requests(10_000),
		Seed:              o.Seed,
		Deadline:          20 * sim.Minute,
	}
}

func replCell(o Options, servers, clients, rf int) *Result {
	return runMemo(replScenario(o, servers, clients, rf))
}

func fig5Grid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for rf := 1; rf <= 4; rf++ {
		for _, cl := range []int{10, 30, 60} {
			out = append(out, replScenario(o, 20, cl, rf))
		}
	}
	return out
}

func fig6Grid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for _, srv := range fig6Servers {
		for rf := 1; rf <= 4; rf++ {
			out = append(out, replScenario(o, srv, 60, rf))
		}
	}
	return out
}

func fig7Grid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for rf := 1; rf <= 4; rf++ {
		out = append(out, replScenario(o, 40, 60, rf))
	}
	return out
}

func fig8Grid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for rf := 1; rf <= 4; rf++ {
		for _, srv := range []int{20, 30, 40} {
			out = append(out, replScenario(o, srv, 60, rf))
		}
	}
	return out
}

func runFig5(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "fig5", Title: "Throughput vs RF (Kop/s), 20 servers, update-heavy",
		Setup: "paper / measured"}
	paper := map[int]map[int]string{
		10: {1: "78", 2: "65", 3: "55", 4: "43"},
		30: {1: "95", 2: "75", 3: "55", 4: "41"},
		60: {1: "115", 2: "90", 3: "65", 4: "50"},
	}
	t := Table{Header: []string{"rf", "10 clients", "30 clients", "60 clients"}}
	for rf := 1; rf <= 4; rf++ {
		row := []string{itoa(rf)}
		for _, cl := range []int{10, 30, 60} {
			r := replCell(o, 20, cl, rf)
			row = append(row, paperVs(paper[cl][rf]+"K", kops(r.Throughput)))
		}
		t.Rows = append(t.Rows, row)
	}
	res.Tables = []Table{t}
	ten1 := replCell(o, 20, 10, 1).Throughput
	ten4 := replCell(o, 20, 10, 4).Throughput
	if ten1 > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"RF1->RF4 drop at 10 clients = %.0f%% (paper: 45%%)", 100*(1-ten4/ten1)))
	}
	return res
}

var fig6Servers = []int{10, 20, 30, 40}

func runFig6a(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "fig6a", Title: "Throughput vs servers and RF (Kop/s), 60 clients",
		Setup: "update-heavy A; paper reports 10-server RF>=3 cells as crashed"}
	paper := map[int]map[int]string{
		10: {1: "128", 2: "95", 3: "crash", 4: "crash"},
		20: {1: "165", 2: "120", 3: "85", 4: "60"},
		30: {1: "205", 2: "150", 3: "105", 4: "75"},
		40: {1: "237", 2: "170", 3: "120", 4: "85"},
	}
	t := Table{Header: []string{"servers", "RF1", "RF2", "RF3", "RF4"}}
	for _, srv := range fig6Servers {
		row := []string{itoa(srv)}
		for rf := 1; rf <= 4; rf++ {
			r := replCell(o, srv, 60, rf)
			cell := kops(r.Throughput)
			if r.Crashed {
				cell = "crash"
			} else if r.Timeouts > 0 {
				cell += fmt.Sprintf(" (%d timeouts)", r.Timeouts)
			}
			row = append(row, paperVs(paper[srv][rf], cell))
		}
		t.Rows = append(t.Rows, row)
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"paper shape: more servers relieve the replication contention; 10 servers cannot sustain RF>=3 at 60 clients")
	return res
}

func runFig6b(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "fig6b", Title: "Total energy vs servers and RF (KJ), 60 clients",
		Setup: "update-heavy A"}
	t := Table{Header: []string{"servers", "RF1", "RF2", "RF3", "RF4"}}
	for _, srv := range fig6Servers {
		row := []string{itoa(srv)}
		for rf := 1; rf <= 4; rf++ {
			r := replCell(o, srv, 60, rf)
			if r.Crashed {
				row = append(row, "crash")
				continue
			}
			row = append(row, fmt.Sprintf("%.1fKJ", r.TotalJoules/1000))
		}
		t.Rows = append(t.Rows, row)
	}
	res.Tables = []Table{t}
	twenty1 := replCell(o, 20, 60, 1).TotalJoules
	twenty4 := replCell(o, 20, 60, 4).TotalJoules
	if twenty1 > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"20 servers RF1->RF4 energy increase = %.0f%% (paper: 351%%, i.e. ~3.5x)",
			100*(twenty4/twenty1-1)))
	}
	return res
}

func runFig7(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "fig7", Title: "Average power per node vs RF (W), 40 servers, 60 clients",
		Setup: "update-heavy A; paper / measured"}
	paper := map[int]string{1: "103", 2: "108", 3: "112", 4: "115"}
	t := Table{Header: []string{"rf", "watts/node"}}
	for rf := 1; rf <= 4; rf++ {
		r := replCell(o, 40, 60, rf)
		t.Rows = append(t.Rows, []string{itoa(rf),
			paperVs(paper[rf]+"W", fmt.Sprintf("%.1fW", r.AvgPowerPerServer))})
	}
	res.Tables = []Table{t}
	return res
}

func runFig8(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "fig8", Title: "Energy efficiency vs RF (Kop/J), 60 clients",
		Setup: "update-heavy A; paper / measured"}
	paper := map[int]map[int]string{
		20: {1: "1.5", 2: "1.1", 3: "0.8", 4: "0.6"},
		30: {1: "1.9", 2: "1.3", 3: "0.9", 4: "0.7"},
		40: {1: "2.3", 2: "1.5", 3: "1.0", 4: "0.75"},
	}
	t := Table{Header: []string{"rf", "20 servers", "30 servers", "40 servers"}}
	for rf := 1; rf <= 4; rf++ {
		row := []string{itoa(rf)}
		for _, srv := range []int{20, 30, 40} {
			r := replCell(o, srv, 60, rf)
			// The paper's Fig. 8 metric is aggregated throughput divided
			// by the power of ONE node (their 20-server RF1 value of
			// ~1500 op/J reconciles exactly with Fig. 6a's 165 Kop/s over
			// Fig. 4a's ~105 W); cluster-wide ops/joule is r.OpsPerJoule.
			eff := r.Throughput / r.AvgPowerPerServer
			row = append(row, paperVs(paper[srv][rf], fmt.Sprintf("%.2f", eff/1000)))
		}
		t.Rows = append(t.Rows, row)
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"paper shape (Finding 4): with replication + update-heavy load, MORE servers are MORE energy-efficient; the gap narrows as RF grows",
		"metric note: Fig. 8 normalizes by one node's power, not cluster energy; both are reported by cmd/rcsim")
	return res
}

func fig13Scenario(o Options, clients int, rate float64) Scenario {
	return Scenario{
		Name:              "fig13",
		Profile:           o.Profile,
		Servers:           10,
		Clients:           clients,
		RF:                2,
		Workload:          ycsb.WorkloadA(100_000, 1024),
		RequestsPerClient: int(rate * 20),
		Rate:              rate,
		Seed:              o.Seed,
	}
}

func fig13Grid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for _, cl := range []int{10, 30, 60} {
		for _, rate := range []float64{200, 500} {
			out = append(out, fig13Scenario(o, cl, rate))
		}
	}
	return out
}

func runFig13(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "fig13", Title: "Throttled update-heavy throughput (op/s), 10 servers, RF 2",
		Setup: "client-side token pacing; ~20s of paced load per run"}
	t := Table{Header: []string{"clients", "rate 200/s", "rate 500/s", "ideal 200", "ideal 500"}}
	for _, cl := range []int{10, 30, 60} {
		row := []string{itoa(cl)}
		for _, rate := range []float64{200, 500} {
			r := runMemo(fig13Scenario(o, cl, rate))
			row = append(row, fmt.Sprintf("%.0f", r.Throughput))
		}
		row = append(row, fmt.Sprintf("%.0f", float64(cl)*200), fmt.Sprintf("%.0f", float64(cl)*500))
		t.Rows = append(t.Rows, row)
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"paper shape: with throttling, throughput scales linearly in the client count and no runs crash")
	return res
}

var consistencyModes = []struct {
	name  string
	async bool
	rdma  bool
}{
	{"sync RPC (strong consistency, RAMCloud)", false, false},
	{"async RPC (relaxed consistency)", true, false},
	{"one-sided RDMA (strong, zero backup CPU)", false, true},
}

func consistencyScenario(o Options, async, rdma bool) Scenario {
	p := o.Profile
	p.Server.AsyncReplication = async
	p.Server.RDMAReplication = rdma
	return Scenario{
		Name:              fmt.Sprintf("consistency-async=%v-rdma=%v", async, rdma),
		Profile:           p,
		Servers:           20,
		Clients:           30,
		RF:                3,
		Workload:          ycsb.WorkloadA(100_000, 1024),
		RequestsPerClient: o.requests(10_000),
		Seed:              o.Seed,
	}
}

func consistencyGrid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for _, mode := range consistencyModes {
		out = append(out, consistencyScenario(o, mode.async, mode.rdma))
	}
	return out
}

func runConsistencyAblation(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "consistency", Title: "Replication communication ablation (Sec. IX.B)",
		Setup: "20 servers, 30 clients, update-heavy A, RF 3"}
	t := Table{Header: []string{"mode", "throughput", "watts/node", "op/J"}}
	for _, mode := range consistencyModes {
		r := runMemo(consistencyScenario(o, mode.async, mode.rdma))
		t.Rows = append(t.Rows, []string{mode.name, kops(r.Throughput),
			fmt.Sprintf("%.1f", r.AvgPowerPerServer), fmt.Sprintf("%.0f", r.OpsPerJoule)})
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"the paper's Discussion proposes both paths: relaxing consistency (no ack wait) and one-sided RDMA writes that remove the replication CPU from backups while keeping strong consistency")
	return res
}

func distScenario(o Options, wl string, dist ycsb.Distribution) Scenario {
	w := workloadFor(wl, 100_000, 1024)
	w.Dist = dist
	name := "uniform"
	if dist == ycsb.Zipfian {
		name = "zipfian"
	}
	return Scenario{
		Name:              "dist-" + wl + "-" + name,
		Profile:           o.Profile,
		Servers:           10,
		Clients:           30,
		RF:                0,
		Workload:          w,
		RequestsPerClient: o.requests(10_000),
		Seed:              o.Seed,
	}
}

func distGrid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for _, wl := range []string{"C", "B"} {
		for _, dist := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
			out = append(out, distScenario(o, wl, dist))
		}
	}
	return out
}

func runDistributionStudy(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "dist", Title: "Request-distribution study (Sec. X future work)",
		Setup: "10 servers, 30 clients, RF 0; uniform vs zipfian(0.99)"}
	t := Table{Header: []string{"workload", "distribution", "throughput", "read p99 (us)"}}
	for _, wl := range []string{"C", "B"} {
		for _, dist := range []ycsb.Distribution{ycsb.Uniform, ycsb.Zipfian} {
			r := runMemo(distScenario(o, wl, dist))
			name := "uniform"
			if dist == ycsb.Zipfian {
				name = "zipfian"
			}
			t.Rows = append(t.Rows, []string{wl, name, kops(r.Throughput),
				fmt.Sprintf("%.1f", float64(r.ReadLatency.Quantile(0.99))/1000)})
		}
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"the paper evaluates uniform only and names other distributions as future work",
		"YCSB's scrambled zipfian spreads hot keys across servers, so at client-limited load the aggregate barely moves; the skew shows up as a fatter read tail under workload B")
	return res
}
