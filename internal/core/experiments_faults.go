package core

import (
	"fmt"

	"ramcloud/internal/sim"
)

// This file registers the two fault-injection studies riding on the
// FaultEvent schedule: faultload (kill + restart a loaded server and
// watch the cluster detect, recover and re-admit it) and lossy (sweep
// frontend packet loss and measure what the retry paths cost). Both use
// a hardened client profile — capped exponential backoff and a tight
// RPC timeout — because the defaults (1 s timeout, fixed 10 ms retry
// pause) date from a world where the only failure was a clean crash.

func init() {
	Register(Experiment{ID: "faultload", Order: 300, Title: "Extension: kill + restart under load", Setup: "5 servers, RF 2, 16 closed-loop clients, workload B; server 2 killed at 8s, restarted at 20s, run ends at 30s", Run: runFaultLoad, Scenarios: faultLoadGrid})
	Register(Experiment{ID: "lossy", Order: 310, Title: "Extension: goodput and retry cost under packet loss", Setup: "3 servers, RF 2, 12 closed-loop clients; loss injected on every frontend link (clients + coordinator)", Run: runLossy, Scenarios: lossyGrid})
}

// hardenedClient enables the capped-backoff retry policy, a timeout tight
// enough that a lost RPC costs milliseconds (not the legacy 1 s), and
// detector death enforcement: a false-positive declaration really kills
// its target, so chaos runs surface the cost instead of split-braining.
func hardenedClient(p Profile, rpcTimeout sim.Duration) Profile {
	p.Client.RPCTimeout = rpcTimeout
	p.Client.Backoff.Base = sim.Millisecond
	p.Client.Backoff.Cap = 100 * sim.Millisecond
	p.Client.Backoff.Multiplier = 2
	p.Client.Backoff.JitterFrac = 0.2
	p.Coordinator.EnforceDeath = true
	return p
}

// The faultload timeline is fixed in simulated time — Options.Scale must
// not stretch it, or the kill and restart would drift relative to the
// detector and recovery constants being measured.
const (
	faultLoadKillAt    = 8 * sim.Second
	faultLoadRestartAt = 20 * sim.Second
	faultLoadStop      = 30 * sim.Second
	faultLoadTarget    = 2
)

func faultLoadScenario(o Options) Scenario {
	return Scenario{
		Name:    "faultload",
		Profile: hardenedClient(o.Profile, 100*sim.Millisecond),
		Servers: 5,
		RF:      2,
		Seed:    o.Seed,
		Groups: []ClientGroup{{
			Name:     "faultload",
			Clients:  16,
			Workload: workloadFor("B", 100_000, 1024),
			Arrival:  ArrivalClosed,
			Stop:     faultLoadStop,
			Warmup:   true,
		}},
		// Constant unit phases carry no rate modulation (the group is an
		// unthrottled closed loop); they exist to slice the run into the
		// windows the table reports: steady state, the outage, and the
		// post-restart rebalance.
		Phases: []LoadPhase{
			{Name: "before", Duration: faultLoadKillAt, Shape: ShapeConstant, From: 1},
			{Name: "outage", Duration: faultLoadRestartAt - faultLoadKillAt, Shape: ShapeConstant, From: 1},
			{Name: "recovered", Duration: faultLoadStop - faultLoadRestartAt, Shape: ShapeConstant, From: 1},
		},
		Faults: []FaultEvent{
			{At: faultLoadKillAt, Kind: FaultKill, Target: faultLoadTarget},
			{At: faultLoadRestartAt, Kind: FaultRestart, Target: faultLoadTarget},
		},
	}
}

func faultLoadGrid(o Options) []Scenario {
	o = o.normalize()
	return []Scenario{faultLoadScenario(o)}
}

func runFaultLoad(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "faultload",
		Title: "Kill + restart a loaded server (detect -> recover -> rejoin)",
		Setup: "5 servers, RF 2, 16 closed-loop clients on workload B, 100K records; server 2 killed at 8s, restarted at 20s, clients stop at 30s"}

	r := runMemo(faultLoadScenario(o))

	win := Table{
		Caption: "per-window delivered load and power",
		Header:  []string{"window", "seconds", "ops", "Kop/s", "W/server", "mJ/op"},
	}
	for _, ph := range r.Phases {
		mJ := "-"
		if ph.OpsPerJoule > 0 {
			mJ = fmt.Sprintf("%.2f", 1000/ph.OpsPerJoule)
		}
		win.Rows = append(win.Rows, []string{
			ph.Phase,
			fmt.Sprintf("%d-%d", ph.StartSec, ph.EndSec),
			fmt.Sprintf("%d", ph.Ops),
			fmt.Sprintf("%.1f", ph.Throughput/1000),
			fmt.Sprintf("%.1f", ph.AvgPowerPerServer),
			mJ,
		})
	}
	res.Tables = append(res.Tables, win)

	rec := Table{
		Caption: "failure handling",
		Header:  []string{"detect ms", "recover ms", "rejoined", "tablets migrated", "timeouts", "retries", "p50 read us", "p99 read us"},
	}
	rejoined := "no"
	if r.Rejoined {
		rejoined = fmt.Sprintf("at %.1fs", sim.Duration(r.RejoinedAt).Seconds())
	}
	rec.Rows = append(rec.Rows, []string{
		fmt.Sprintf("%.0f", r.DetectTime.Seconds()*1000),
		fmt.Sprintf("%.0f", r.RecoveryTime.Seconds()*1000),
		rejoined,
		fmt.Sprintf("%d", r.TabletsMigrated),
		fmt.Sprintf("%d", r.Timeouts),
		fmt.Sprintf("%d", r.Retries),
		fmt.Sprintf("%.1f", float64(r.ReadLatency.Quantile(0.50))/1000),
		fmt.Sprintf("%.1f", float64(r.ReadLatency.Quantile(0.99))/1000),
	})
	res.Tables = append(res.Tables, rec)

	if r.Recovered && !r.RecoveryTimedOut {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"death detected %.0fms after the kill (3 missed 200ms pings) and the survivors replayed its log in %.0fms more",
			r.DetectTime.Seconds()*1000, (r.RecoveryTime-r.DetectTime).Seconds()*1000))
	}
	if r.Rejoined && r.TabletsMigrated > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"the restarted server re-enlisted empty and was rebalanced back to a fair share: %d tablets migrated in while clients kept running",
			r.TabletsMigrated))
	}
	if r.RecoveryTimedOut {
		res.Notes = append(res.Notes, "WARNING: recovery or rebalance did not complete within the controller budget")
	}
	return res
}

// lossySweep: loss fractions per workload. Dup rides along at a fifth of
// the loss rate so the duplicate-delivery paths get exercised too.
var (
	lossyWorkloads = []string{"A", "C"}
	lossyFractions = []float64{0, 0.005, 0.01, 0.02, 0.05}
)

func lossyScenario(o Options, wl string, loss float64) Scenario {
	s := Scenario{
		Name:              "lossy",
		Profile:           hardenedClient(o.Profile, 25*sim.Millisecond),
		Servers:           3,
		RF:                2,
		Clients:           12,
		Workload:          workloadFor(wl, 50_000, 1024),
		RequestsPerClient: o.requests(3000),
		Seed:              o.Seed,
	}
	if loss > 0 {
		// Target -1 = every frontend link (clients + coordinator), so both
		// the data path and the failure detector's pings ride lossy links.
		s.Faults = []FaultEvent{{
			At: sim.Millisecond, Kind: FaultLoss, Target: -1,
			Loss: loss, Dup: loss / 5,
		}}
	}
	return s
}

func lossyGrid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for _, wl := range lossyWorkloads {
		for _, loss := range lossyFractions {
			out = append(out, lossyScenario(o, wl, loss))
		}
	}
	return out
}

func runLossy(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "lossy",
		Title: "Goodput and retry amplification vs frontend packet loss",
		Setup: fmt.Sprintf("3 servers, RF 2, 12 closed-loop clients, %d ops/client, 50K records; loss + dup on every client and coordinator link, capped-backoff retries, 25ms RPC timeout", o.requests(3000))}

	for _, wl := range lossyWorkloads {
		t := Table{
			Caption: fmt.Sprintf("workload %s", wl),
			Header:  []string{"loss %", "goodput Kop/s", "retry amp", "timeouts", "dropped", "dup'd", "suspicions", "FP deaths", "p99 read us", "mJ/op"},
		}
		monotone := true
		var prevGoodput, baseGoodput, peakAmp float64
		fpBelowThreshold := int64(0)
		for i, loss := range lossyFractions {
			r := runMemo(lossyScenario(o, wl, loss))
			amp := 1.0
			if r.TotalOps > 0 {
				amp = 1 + float64(r.Timeouts+r.Retries)/float64(r.TotalOps)
			}
			mJ := "-"
			if r.OpsPerJoule > 0 {
				mJ = fmt.Sprintf("%.2f", 1000/r.OpsPerJoule)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.1f", loss*100),
				fmt.Sprintf("%.1f", r.Throughput/1000),
				fmt.Sprintf("%.3f", amp),
				fmt.Sprintf("%d", r.Timeouts),
				fmt.Sprintf("%d", r.NetDroppedFault),
				fmt.Sprintf("%d", r.NetDuplicated),
				fmt.Sprintf("%d", r.Suspicions),
				fmt.Sprintf("%d", r.FalsePositiveDeaths),
				fmt.Sprintf("%.1f", float64(r.ReadLatency.Quantile(0.99))/1000),
				mJ,
			})
			if i == 0 {
				baseGoodput = r.Throughput
			} else if r.Throughput > prevGoodput {
				monotone = false
			}
			prevGoodput = r.Throughput
			if amp > peakAmp {
				peakAmp = amp
			}
			if loss <= 0.01 {
				fpBelowThreshold += r.FalsePositiveDeaths
			}
		}
		res.Tables = append(res.Tables, t)
		if monotone && baseGoodput > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"workload %s: goodput degrades monotonically, retaining %.0f%% at 5%% loss; peak retry amplification %.3fx",
				wl, 100*prevGoodput/baseGoodput, peakAmp))
		}
		if fpBelowThreshold == 0 {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"workload %s: zero false-positive deaths at <=1%% loss — three consecutive ping misses at 1%% is a ~1e-5 event per window",
				wl))
		} else {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"workload %s: WARNING: %d false-positive death(s) at <=1%% loss", wl, fpBelowThreshold))
		}
	}
	res.Notes = append(res.Notes,
		"every lost request or response costs the client a 25ms timeout plus capped exponential backoff; the closed loop converts that into the goodput slope",
		"the detector shares the lossy links: suspicions (missed pings) climb with loss, but declaring death takes 3 consecutive misses, so false positives stay rare until loss is extreme")
	return res
}
