package core

import (
	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
)

// FaultKind enumerates the scheduled fault events a scenario can inject.
type FaultKind int

// Fault kinds. Start at one so a zero value is detectably invalid.
const (
	// FaultKill crashes server Target at At (the generalization of the
	// legacy KillAfter/KillTarget pair).
	FaultKill FaultKind = iota + 1
	// FaultRestart restarts a previously killed server Target: the process
	// comes back empty on the same node and address, re-enlists with the
	// coordinator and receives a fair share of tablets by migration.
	FaultRestart
	// FaultPartition isolates the servers listed in Peers from everyone
	// else (symmetric drop) until a FaultHeal.
	FaultPartition
	// FaultHeal removes the active partition.
	FaultHeal
	// FaultLoss opens a packet-loss/duplication/jitter window: on the
	// frontend links (every client plus the coordinator) when Target < 0,
	// or on server Target's links otherwise. Until closes the window; zero
	// keeps it for the rest of the run.
	FaultLoss
	// FaultSlow is FaultLoss with intent: a slow-node episode expressed as
	// delay jitter on one server's links. Same mechanics, separate kind so
	// schedules read naturally.
	FaultSlow
)

// FaultEvent is one scheduled fault.
type FaultEvent struct {
	At   sim.Duration
	Kind FaultKind

	// Target is a server index for Kill/Restart/Loss/Slow. For Loss/Slow,
	// -1 targets the frontend links instead (clients + coordinator).
	Target int

	// Peers lists server indexes for FaultPartition (the isolated side).
	Peers []int

	// Stochastic impairment parameters for Loss/Slow windows.
	Loss   float64
	Dup    float64
	Jitter sim.Duration

	// Until ends a Loss/Slow window. Zero means never.
	Until sim.Duration
}

// faultSchedule returns the scenario's effective fault schedule: the
// explicit Faults when present, else the legacy KillAfter/KillTarget pair
// lowered onto a single FaultKill, else nil.
func (s *Scenario) faultSchedule() []FaultEvent {
	if len(s.Faults) > 0 {
		return s.Faults
	}
	if s.KillAfter > 0 {
		return []FaultEvent{{At: s.KillAfter, Kind: FaultKill, Target: s.KillTarget}}
	}
	return nil
}

// resolveTarget maps a fault target to a server index, applying the legacy
// convention: negative picks one deterministically from the seed.
func (s *Scenario) resolveTarget(target int) int {
	if target < 0 {
		target = int(s.Seed) % s.Servers
		if target < 0 {
			target += s.Servers
		}
	}
	return target
}

// stochastic reports whether the schedule needs the fabric's fault RNG.
func stochastic(faults []FaultEvent) bool {
	for _, ev := range faults {
		if ev.Kind == FaultLoss || ev.Kind == FaultSlow {
			return true
		}
	}
	return false
}

// frontendAddrs returns every client address plus the coordinator's: the
// links a FaultLoss with Target < 0 impairs. Server-to-server replication
// links are deliberately excluded — masters permanently blacklist a backup
// after a replication timeout, so sustained random loss there would degrade
// durability as a side effect rather than measure the retry paths.
func frontendAddrs(cl *Cluster) []simnet.NodeID {
	out := make([]simnet.NodeID, 0, len(cl.Clients)+1)
	for _, c := range cl.Clients {
		out = append(out, c.Addr())
	}
	out = append(out, CoordinatorAddr)
	return out
}

// armFaults schedules every fault event against the running cluster. Called
// after clients exist (frontend addressing) and before eng.Run.
func armFaults(eng *sim.Engine, cl *Cluster, s *Scenario, faults []FaultEvent, res *Result) {
	if stochastic(faults) {
		cl.Net.SeedFaults(s.Seed)
	}
	for _, ev := range faults {
		ev := ev
		switch ev.Kind {
		case FaultKill:
			target := s.resolveTarget(ev.Target)
			eng.Schedule(ev.At, func() {
				if res.KilledAt == 0 {
					res.KilledAt = eng.Now()
				}
				cl.KillServer(target)
			})
		case FaultRestart:
			target := s.resolveTarget(ev.Target)
			eng.Schedule(ev.At, func() {
				if cl.RestartServer(target) {
					res.Rejoined = true
					res.RejoinedAt = eng.Now()
				}
			})
		case FaultPartition:
			side := make([]simnet.NodeID, 0, len(ev.Peers))
			for _, i := range ev.Peers {
				side = append(side, cl.Servers[s.resolveTarget(i)].Addr())
			}
			eng.Schedule(ev.At, func() { cl.Net.Partition(side) })
		case FaultHeal:
			eng.Schedule(ev.At, func() { cl.Net.Heal() })
		case FaultLoss, FaultSlow:
			model := simnet.FaultModel{Loss: ev.Loss, Dup: ev.Dup, Jitter: ev.Jitter}
			var addrs []simnet.NodeID
			if ev.Target < 0 {
				addrs = frontendAddrs(cl)
			} else {
				addrs = []simnet.NodeID{cl.Servers[ev.Target].Addr()}
			}
			eng.Schedule(ev.At, func() {
				for _, a := range addrs {
					cl.Net.SetNodeFaults(a, model)
				}
			})
			if ev.Until > ev.At {
				eng.Schedule(ev.Until, func() {
					for _, a := range addrs {
						cl.Net.SetNodeFaults(a, simnet.FaultModel{})
					}
				})
			}
		}
	}
}

// faultCounts summarizes a schedule for the run controller.
func faultCounts(faults []FaultEvent) (kills, restarts int, lastRestart sim.Duration) {
	for _, ev := range faults {
		switch ev.Kind {
		case FaultKill:
			kills++
		case FaultRestart:
			restarts++
			if ev.At > lastRestart {
				lastRestart = ev.At
			}
		}
	}
	return kills, restarts, lastRestart
}
