package core

import (
	"testing"

	"ramcloud/internal/client"
	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

// smallProfile shrinks segments and the failure detector for fast tests.
func smallProfile() Profile {
	p := DefaultProfile()
	p.Server.Log.SegmentBytes = 64 << 10
	p.Server.Log.TotalBytes = 64 << 20
	p.Server.PartitionBytes = 1 << 20
	return p
}

func TestClusterReadWriteDelete(t *testing.T) {
	eng := sim.New(1)
	cl := NewCluster(eng, smallProfile(), 3, 0)
	cl.Start()
	table := cl.CreateTable("t")
	c := cl.NewClient()
	var failures []string
	eng.Go("app", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			if err := c.Write(p, table, ycsb.Key(i), 1024, nil); err != nil {
				failures = append(failures, "write: "+err.Error())
			}
		}
		for i := 0; i < 50; i++ {
			n, _, err := c.Read(p, table, ycsb.Key(i))
			if err != nil || n != 1024 {
				failures = append(failures, "read mismatch")
			}
		}
		if _, _, err := c.Read(p, table, []byte("missing")); err != client.ErrNotFound {
			failures = append(failures, "expected ErrNotFound")
		}
		if err := c.Delete(p, table, ycsb.Key(3)); err != nil {
			failures = append(failures, "delete: "+err.Error())
		}
		if _, _, err := c.Read(p, table, ycsb.Key(3)); err != client.ErrNotFound {
			failures = append(failures, "read after delete should fail")
		}
		cl.StopMetering()
		eng.Stop()
	})
	eng.Run()
	eng.Shutdown()
	for _, f := range failures {
		t.Error(f)
	}
}

func TestClusterReplicationCreatesReplicas(t *testing.T) {
	eng := sim.New(2)
	cl := NewCluster(eng, smallProfile(), 4, 3)
	cl.Start()
	table := cl.CreateTable("t")
	c := cl.NewClient()
	eng.Go("app", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			if err := c.Write(p, table, ycsb.Key(i), 1024, nil); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}
		cl.StopMetering()
		eng.Stop()
	})
	eng.Run()
	eng.Shutdown()
	// Every master's open/sealed segments must have replicas on peers.
	totalReplicaObjects := int64(0)
	for _, s := range cl.Servers {
		totalReplicaObjects += s.Stats().ReplicaAppends.Value()
	}
	if totalReplicaObjects != 200*3 {
		t.Fatalf("replica appends = %d, want %d", totalReplicaObjects, 200*3)
	}
}

func TestBulkLoadMatchesClientView(t *testing.T) {
	eng := sim.New(3)
	cl := NewCluster(eng, smallProfile(), 3, 2)
	cl.Start()
	table := cl.CreateTable("t")
	cl.BulkLoad(table, 300, 512)
	c := cl.NewClient()
	bad := 0
	eng.Go("app", func(p *sim.Proc) {
		for i := 0; i < 300; i++ {
			n, _, err := c.Read(p, table, ycsb.Key(i))
			if err != nil || n != 512 {
				bad++
			}
		}
		cl.StopMetering()
		eng.Stop()
	})
	eng.Run()
	eng.Shutdown()
	if bad != 0 {
		t.Fatalf("%d of 300 bulk-loaded records unreadable", bad)
	}
	// Bulk load must have created replicas on backups too.
	replicas := 0
	for _, s := range cl.Servers {
		for _, other := range cl.Servers {
			if s != other {
				replicas += s.ReplicaCount(other.ID())
			}
		}
	}
	if replicas == 0 {
		t.Fatal("bulk load created no replicas")
	}
}

func TestCrashRecoveryPreservesAckedWrites(t *testing.T) {
	eng := sim.New(4)
	cl := NewCluster(eng, smallProfile(), 4, 2)
	cl.Start()
	table := cl.CreateTable("t")
	cl.BulkLoad(table, 400, 512)

	c := cl.NewClient()
	var unreadable []int
	var recovered bool
	eng.Go("app", func(p *sim.Proc) {
		// Overwrite some records through the RPC path so both loaded and
		// written data must survive.
		for i := 0; i < 100; i++ {
			if err := c.Write(p, table, ycsb.Key(i), 256, nil); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}
		cl.KillServer(1)
		// Wait for recovery to complete.
		for len(cl.Coord.Records()) == 0 {
			p.Sleep(200 * sim.Millisecond)
			if p.Now() > sim.Time(2*sim.Minute) {
				t.Error("recovery did not complete within 2 minutes")
				break
			}
		}
		recovered = len(cl.Coord.Records()) > 0
		for i := 0; i < 400; i++ {
			want := uint32(512)
			if i < 100 {
				want = 256
			}
			n, _, err := c.Read(p, table, ycsb.Key(i))
			if err != nil || n != want {
				unreadable = append(unreadable, i)
			}
		}
		cl.StopMetering()
		eng.Stop()
	})
	eng.Run()
	eng.Shutdown()
	if !recovered {
		t.Fatal("no recovery record")
	}
	if len(unreadable) != 0 {
		t.Fatalf("%d records lost after crash recovery: %v", len(unreadable), unreadable[:min(10, len(unreadable))])
	}
}

func TestScenarioRunBasics(t *testing.T) {
	res := Run(Scenario{
		Name:              "smoke",
		Profile:           smallProfile(),
		Servers:           2,
		Clients:           4,
		RF:                0,
		Workload:          ycsb.WorkloadB(200, 1024),
		RequestsPerClient: 500,
		Seed:              7,
	})
	if res.TotalOps != 4*500 {
		t.Fatalf("ops = %d", res.TotalOps)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not positive")
	}
	if res.AvgPowerPerServer < 61 || res.AvgPowerPerServer > 131 {
		t.Fatalf("power = %v W implausible", res.AvgPowerPerServer)
	}
	if res.OpsPerJoule <= 0 {
		t.Fatal("efficiency not positive")
	}
	if res.ReadLatency.Count() == 0 || res.WriteLatency.Count() == 0 {
		t.Fatal("latency histograms empty")
	}
	if res.Crashed {
		t.Fatal("run should not be marked crashed")
	}
}

func TestScenarioDeterminism(t *testing.T) {
	s := Scenario{
		Name:              "det",
		Profile:           smallProfile(),
		Servers:           2,
		Clients:           3,
		Workload:          ycsb.WorkloadA(100, 1024),
		RequestsPerClient: 200,
		Seed:              99,
	}
	a := Run(s)
	b := Run(s)
	if a.TotalOps != b.TotalOps || a.Duration != b.Duration || a.TotalJoules != b.TotalJoules {
		t.Fatalf("same seed diverged: ops %d/%d dur %v/%v joules %v/%v",
			a.TotalOps, b.TotalOps, a.Duration, b.Duration, a.TotalJoules, b.TotalJoules)
	}
	s.Seed = 100
	c := Run(s)
	if a.Duration == c.Duration && a.TotalJoules == c.TotalJoules {
		t.Fatal("different seeds produced identical run; randomness unplumbed")
	}
}

func TestScenarioWithKillMeasuresRecovery(t *testing.T) {
	res := Run(Scenario{
		Name:        "kill",
		Profile:     smallProfile(),
		Servers:     4,
		Clients:     0,
		RF:          2,
		Workload:    ycsb.Workload{RecordCount: 500, RecordSize: 512},
		KillAfter:   2 * sim.Second,
		KillTarget:  1,
		IdleSeconds: 2,
		Seed:        5,
	})
	if !res.Recovered {
		t.Fatal("recovery did not complete")
	}
	if res.RecoveryTime <= 0 {
		t.Fatalf("recovery time = %v", res.RecoveryTime)
	}
	if res.CPUSeries.Len() == 0 || res.PowerSeries.Len() == 0 {
		t.Fatal("series empty")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
