package core

import (
	"fmt"
)

// This file extends the characterization beyond the paper: the paper's
// closed-loop clients cap at ~23-37 Kop/s each (Finding: client-limited
// scaling in Fig. 1a), and real RAMCloud breaks that ceiling with
// MultiRead/MultiWrite batches and asynchronous RPCs. The sweep
// characterizes both levers — throughput AND energy per op vs batch size —
// in the spirit of LaKe (batched/pipelined request handling drives both
// speed and energy efficiency) and Niemann's observation that workload
// shape dominates the energy picture.

func init() {
	Register(Experiment{ID: "batch", Order: 260, Title: "Extension: multi-op batching and async pipelining", Setup: "10 servers, C and A, batch {1,4,16,64}, window {1,4,16}", Run: runBatchSweep, Scenarios: batchGrid})
}

var batchSizes = []int{1, 4, 16, 64}
var windowSizes = []int{1, 4, 16}

// batchScenario is one batched cell: 10 servers, 10 clients, like the
// Table II grid, but with clients batching BatchSize ops per RPC round.
func batchScenario(o Options, wl string, batch int) Scenario {
	s := Scenario{
		Name:              "batch",
		Profile:           o.Profile,
		Servers:           10,
		Clients:           10,
		RF:                0,
		Workload:          workloadFor(wl, 100_000, 1024),
		RequestsPerClient: o.requests(20_000),
		Seed:              o.Seed,
	}
	if batch > 1 {
		s.BatchSize = batch
	}
	return s
}

func batchCell(o Options, wl string, batch int) *Result {
	return runMemo(batchScenario(o, wl, batch))
}

// windowScenario is one pipelined cell: the same grid, async window
// instead of multi-op batching. The Name matches batchScenario so the
// window=1 / batch=1 baseline (identical scenarios) is memoized once per
// process.
func windowScenario(o Options, wl string, window int) Scenario {
	s := batchScenario(o, wl, 1)
	if window > 1 {
		s.Window = window
	}
	return s
}

func windowCell(o Options, wl string, window int) *Result {
	return runMemo(windowScenario(o, wl, window))
}

func batchGrid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for _, wl := range []string{"C", "A"} {
		for _, bs := range batchSizes {
			out = append(out, batchScenario(o, wl, bs))
		}
	}
	for _, win := range windowSizes {
		out = append(out, windowScenario(o, "C", win))
	}
	return out
}

func runBatchSweep(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "batch",
		Title: "Multi-op batching and async pipelining: throughput and energy per op",
		Setup: fmt.Sprintf("10 servers, 10 clients, RF 0, %d reqs/client", o.requests(20_000))}

	for _, wl := range []string{"C", "A"} {
		t := Table{
			Caption: fmt.Sprintf("workload %s vs batch size (MultiRead/MultiWrite)", wl),
			Header:  []string{"batch", "throughput", "speedup", "W/server", "op/J", "J/op (mJ)"},
		}
		base := batchCell(o, wl, 1).Throughput
		for _, bs := range batchSizes {
			r := batchCell(o, wl, bs)
			jPerOp := "-"
			if r.OpsPerJoule > 0 {
				jPerOp = fmt.Sprintf("%.3f", 1000/r.OpsPerJoule)
			}
			t.Rows = append(t.Rows, []string{
				itoa(bs), kops(r.Throughput),
				fmt.Sprintf("%.2fx", r.Throughput/base),
				fmt.Sprintf("%.1f", r.AvgPowerPerServer),
				fmt.Sprintf("%.0f", r.OpsPerJoule),
				jPerOp,
			})
		}
		res.Tables = append(res.Tables, t)
	}

	tw := Table{
		Caption: "workload C vs async window (pipelined closed loop)",
		Header:  []string{"window", "throughput", "speedup", "op/J"},
	}
	base := windowCell(o, "C", 1).Throughput
	for _, win := range windowSizes {
		r := windowCell(o, "C", win)
		tw.Rows = append(tw.Rows, []string{
			itoa(win), kops(r.Throughput),
			fmt.Sprintf("%.2fx", r.Throughput/base),
			fmt.Sprintf("%.0f", r.OpsPerJoule),
		})
	}
	res.Tables = append(res.Tables, tw)

	c1 := batchCell(o, "C", 1)
	c16 := batchCell(o, "C", 16)
	if c1.Throughput > 0 && c16.OpsPerJoule > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"batch-16 reads: %.1fx throughput and %.1fx op/J vs per-op RPCs",
			c16.Throughput/c1.Throughput, c16.OpsPerJoule/c1.OpsPerJoule))
	}
	res.Notes = append(res.Notes,
		"batching amortizes client request generation, server dispatch and the log-head lock; energy per op falls because fixed node power is spread over more ops/s (paper Finding 1: power is non-proportional)")
	return res
}
