package core

import (
	"reflect"
	"testing"
)

// applyMutations perturbs one leaf of s per input byte, the byte picking
// which leaf. Repeated bytes accumulate on the same leaf, so two
// different schedules can still converge on deep-equal scenarios —
// exactly the case the key must map to the same entry.
func applyMutations(s *Scenario, data []byte, leaves int) {
	for _, c := range data {
		idx := 0
		perturbLeaf(reflect.ValueOf(s).Elem(), &idx, int(c)%leaves, "Scenario")
	}
}

// countLeaves probes the perturbation walker until it runs out of leaf
// fields for this scenario value.
func countLeaves() int {
	leaves := 0
	for {
		s := memoKeyBase()
		idx := 0
		if _, ok := perturbLeaf(reflect.ValueOf(&s).Elem(), &idx, leaves, "Scenario"); !ok {
			return leaves
		}
		leaves++
	}
}

// FuzzMemoKey checks the memo key is injective on scenarios: two
// scenarios share a key exactly when they are deep-equal. A collision
// between distinct scenarios would silently serve one simulation's
// result for the other (see LINTS.md, memokey).
func FuzzMemoKey(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0}, []byte{1})
	f.Add([]byte{7, 7}, []byte{7, 7})
	f.Add([]byte{3, 9, 3}, []byte{9, 3, 3})
	f.Add([]byte{255, 128, 0, 42}, []byte{42, 0, 128})

	leaves := countLeaves()
	if leaves == 0 {
		f.Fatal("no perturbable leaves in Scenario")
	}

	f.Fuzz(func(t *testing.T, a, b []byte) {
		// Slice-length leaves append an element per hit, so the walk cost
		// grows with the schedule; cap it to keep every exec fast.
		const maxMutations = 64
		if len(a) > maxMutations {
			a = a[:maxMutations]
		}
		if len(b) > maxMutations {
			b = b[:maxMutations]
		}
		s1, s2 := memoKeyBase(), memoKeyBase()
		applyMutations(&s1, a, leaves)
		applyMutations(&s2, b, leaves)
		k1, k2 := memoKey(s1), memoKey(s2)
		if eq := reflect.DeepEqual(s1, s2); eq != (k1 == k2) {
			if eq {
				t.Fatalf("deep-equal scenarios got different keys:\n%q\n%q", k1, k2)
			}
			t.Fatalf("distinct scenarios collided on key %q\nmutations a=%v b=%v", k1, a, b)
		}
	})
}
