package core

import (
	"fmt"

	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

// This file extends the characterization with the composable scenario
// API: loadshape drives a diurnal sine-plus-burst schedule through
// open-loop Poisson clients to measure energy proportionality phase by
// phase (the regime where the paper's Fig. 1b/Fig. 2 near-flat power
// curve hurts most), and mixed runs two tenant groups concurrently to
// measure per-tenant throughput, latency and attributed energy.

func init() {
	Register(Experiment{ID: "loadshape", Order: 270, Title: "Extension: energy proportionality under shaped load", Setup: "10 servers, 10 open-loop clients, diurnal sine + burst phases", Run: runLoadShape, Scenarios: loadShapeGrid})
	Register(Experiment{ID: "mixed", Order: 280, Title: "Extension: mixed tenants (A + C) on one cluster", Setup: "10 servers, 20+20 closed-loop clients, per-group isolation", Run: runMixedTenants, Scenarios: mixedGrid})
}

// loadShapePhases is the diurnal schedule: a night trough, a morning
// ramp, a daytime sine, an evening burst and a ramp back down. Durations
// are whole seconds so phase slices align with the PDU sampling grain.
func loadShapePhases() []LoadPhase {
	return []LoadPhase{
		{Name: "night", Shape: ShapeConstant, Duration: 4 * sim.Second, From: 0.15},
		{Name: "morning", Shape: ShapeRamp, Duration: 6 * sim.Second, From: 0.15, To: 1.0},
		{Name: "day", Shape: ShapeSine, Duration: 8 * sim.Second, From: 0.7, To: 1.0, Period: 8 * sim.Second},
		{Name: "burst", Shape: ShapeStep, Duration: 3 * sim.Second, From: 1.0, To: 1.6, Steps: 3},
		{Name: "evening", Shape: ShapeRamp, Duration: 5 * sim.Second, From: 1.0, To: 0.25},
	}
}

// loadShapeRate is the per-client Poisson rate at full load (phase
// multiplier 1.0); the 10-client aggregate peaks around 2x this in the
// burst phase.
func loadShapeRate(o Options) float64 {
	rate := 20_000 * o.Scale
	if rate < 1_000 {
		rate = 1_000
	}
	return rate
}

func loadShapeScenario(o Options) Scenario {
	return Scenario{
		Name:    "loadshape",
		Profile: o.Profile,
		Servers: 10,
		Seed:    o.Seed,
		Groups: []ClientGroup{{
			Name:     "diurnal",
			Clients:  10,
			Workload: ycsb.WorkloadC(100_000, 1024),
			Arrival:  ArrivalOpen,
			Rate:     loadShapeRate(o),
		}},
		Phases: loadShapePhases(),
	}
}

func loadShapeGrid(o Options) []Scenario {
	o = o.normalize()
	return []Scenario{loadShapeScenario(o)}
}

func runLoadShape(o Options) *ExpResult {
	o = o.normalize()
	rate := loadShapeRate(o)
	r := runMemo(loadShapeScenario(o))

	res := &ExpResult{ID: "loadshape",
		Title: "Energy proportionality under shaped load (diurnal sine + burst)",
		Setup: fmt.Sprintf("10 servers, RF 0, 10 open-loop Poisson clients, %.0f op/s/client at load 1.0", rate)}

	t := Table{
		Caption: "per-phase delivery and energy (ideal proportionality: op/J constant across rows)",
		Header:  []string{"phase", "shape", "offered x", "Kop/s", "W/server", "KJ", "op/J"},
	}
	var minEff, maxEff float64
	var minPow, maxPow float64
	var minLoad, maxLoad float64
	for i, ph := range r.Phases {
		t.Rows = append(t.Rows, []string{
			ph.Phase, ph.Shape,
			fmt.Sprintf("%.2f", ph.OfferedScale),
			kops(ph.Throughput),
			fmt.Sprintf("%.1f", ph.AvgPowerPerServer),
			fmt.Sprintf("%.2f", ph.Joules/1000),
			fmt.Sprintf("%.0f", ph.OpsPerJoule),
		})
		if i == 0 || ph.OpsPerJoule < minEff {
			minEff = ph.OpsPerJoule
		}
		if ph.OpsPerJoule > maxEff {
			maxEff = ph.OpsPerJoule
		}
		if i == 0 || ph.AvgPowerPerServer < minPow {
			minPow = ph.AvgPowerPerServer
		}
		if ph.AvgPowerPerServer > maxPow {
			maxPow = ph.AvgPowerPerServer
		}
		if i == 0 || ph.Throughput < minLoad {
			minLoad = ph.Throughput
		}
		if ph.Throughput > maxLoad {
			maxLoad = ph.Throughput
		}
	}
	res.Tables = []Table{t}

	if maxLoad > 0 && maxPow > 0 && minEff > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"power dynamic range %.0f%% vs load dynamic range %.0f%%: the gap is the paper's non-proportionality (Fig. 1b)",
			(maxPow-minPow)/maxPow*100, (maxLoad-minLoad)/maxLoad*100))
		res.Notes = append(res.Notes, fmt.Sprintf(
			"efficiency swings %.1fx between trough and peak phases (%.0f to %.0f op/J): idle watts dominate at low load",
			maxEff/minEff, minEff, maxEff))
	}
	res.Notes = append(res.Notes,
		"open-loop Poisson arrivals keep offered load fixed per phase; a closed loop would silently self-throttle and hide the trough")
	return res
}

// mixedScenarios builds the three mixed-tenant runs: both tenants
// together, then each tenant solo on the same cluster.
func mixedScenarios(o Options) (mixed, soloA, soloC Scenario) {
	reqs := o.requests(10_000)
	tenantA := ClientGroup{
		Name: "tenantA", Clients: 20,
		Workload:          ycsb.WorkloadA(100_000, 1024),
		RequestsPerClient: reqs,
	}
	tenantC := ClientGroup{
		Name: "tenantC", Clients: 20,
		Workload:          ycsb.WorkloadC(100_000, 1024),
		RequestsPerClient: reqs,
	}
	mixed = Scenario{
		Name: "mixed", Profile: o.Profile, Servers: 10, Seed: o.Seed,
		Groups: []ClientGroup{tenantA, tenantC},
	}
	soloA = Scenario{
		Name: "mixed-soloA", Profile: o.Profile, Servers: 10, Seed: o.Seed,
		Groups: []ClientGroup{tenantA},
	}
	soloC = Scenario{
		Name: "mixed-soloC", Profile: o.Profile, Servers: 10, Seed: o.Seed,
		Groups: []ClientGroup{tenantC},
	}
	return mixed, soloA, soloC
}

func mixedGrid(o Options) []Scenario {
	o = o.normalize()
	a, b, c := mixedScenarios(o)
	return []Scenario{a, b, c}
}

func runMixedTenants(o Options) *ExpResult {
	o = o.normalize()
	reqs := o.requests(10_000)
	sMixed, sSoloA, sSoloC := mixedScenarios(o)
	mixed := runMemo(sMixed)
	soloA := runMemo(sSoloA)
	soloC := runMemo(sSoloC)

	res := &ExpResult{ID: "mixed",
		Title: "Mixed tenants: update-heavy A and read-only C share 10 servers",
		Setup: fmt.Sprintf("RF 0, 100K records, 20 clients per tenant, %d reqs/client; solo = same tenant alone", reqs)}

	solo := map[string]*Result{"tenantA": soloA, "tenantC": soloC}
	t := Table{
		Caption: "per-tenant breakdown (joules attributed by per-second delivered-op share)",
		Header:  []string{"tenant", "wl", "Kop/s", "solo Kop/s", "retained", "p99 read us", "solo p99", "KJ", "op/J"},
	}
	for _, g := range mixed.Groups {
		sg := solo[g.Group].Groups[0]
		wl := "A"
		if g.Group == "tenantC" {
			wl = "C"
		}
		t.Rows = append(t.Rows, []string{
			g.Group, wl,
			kops(g.Throughput), kops(sg.Throughput),
			fmt.Sprintf("%.0f%%", g.Throughput/sg.Throughput*100),
			fmt.Sprintf("%.0f", float64(g.ReadLatency.Quantile(0.99))/1000),
			fmt.Sprintf("%.0f", float64(sg.ReadLatency.Quantile(0.99))/1000),
			fmt.Sprintf("%.2f", g.Joules/1000),
			fmt.Sprintf("%.0f", g.OpsPerJoule),
		})
	}
	res.Tables = []Table{t}

	gA, gC := mixed.Groups[0], mixed.Groups[1]
	if gA.Joules > 0 && gC.Joules > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"equal op budgets: tenantC finishes in less cluster time and is billed %.1fx tenantA's joules (%.0f vs %.0f op/J) — per-run accounting would split energy evenly",
			gC.Joules/gA.Joules, gC.OpsPerJoule, gA.OpsPerJoule))
	}
	res.Notes = append(res.Notes,
		"paper context: workload A saturates the write path (Table II collapse); colocated read-only tenants pay for contention in latency (p99 vs solo p99) before throughput")
	return res
}
