package core

import (
	"strings"
	"testing"

	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 31 {
		t.Fatalf("experiments = %d, want 31", len(exps))
	}
	// Paper ordering is preserved by Order: the original 26 artifacts
	// first (fig1a ... batch), then the registered extensions.
	wantOrder := []string{"fig1a", "fig1b", "fig2", "table1", "table2", "fig3", "fig4a", "fig4b",
		"fig5", "fig6a", "fig6b", "fig7", "fig8", "fig9a", "fig9b", "fig10", "fig11a", "fig11b",
		"fig12", "fig13", "seg", "cleaner", "consistency", "scatter", "dist", "batch",
		"loadshape", "mixed", "latload", "faultload", "lossy"}
	for i, e := range exps {
		if e.ID != wantOrder[i] {
			t.Fatalf("experiment %d = %q, want %q (paper order broken)", i, e.ID, wantOrder[i])
		}
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Setup == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		// Every grid-driven experiment must enumerate its scenarios so the
		// parallel prewarm covers it; fig10 drives a custom simulation.
		if e.Scenarios == nil && e.ID != "fig10" {
			t.Errorf("experiment %q declares no Scenarios (prewarm cannot parallelize it)", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) should fail")
	}
}

func TestRegisterRejectsDuplicatesAndIncomplete(t *testing.T) {
	mustPanic := func(name string, e Experiment) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		Register(e)
	}
	mustPanic("duplicate id", Experiment{ID: "fig1a", Title: "dup", Setup: "x", Run: runFig1a})
	mustPanic("missing run", Experiment{ID: "new-exp", Title: "t", Setup: "x"})
	mustPanic("missing id", Experiment{Title: "t", Setup: "x", Run: runFig1a})
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.Scale != 1.0 || o.Seed != 42 || o.Profile.Machine.Cores == 0 {
		t.Fatalf("normalized = %+v", o)
	}
	if (Options{Scale: 2, Seed: 7}).normalize().Scale != 2 {
		t.Fatal("explicit scale overridden")
	}
	if got := (Options{Scale: 0.5}).requests(10_000); got != 5000 {
		t.Fatalf("requests = %d", got)
	}
	if got := (Options{Scale: 0.0001}).normalize().requests(10_000); got != 2000 {
		t.Fatalf("requests floor = %d", got)
	}
	if got := (Options{Scale: 1}).records(10_000_000); got != 1_000_000 {
		t.Fatalf("records = %d (recordScale %v)", got, recordScale)
	}
}

func TestRenderContainsTables(t *testing.T) {
	r := &ExpResult{
		ID: "x", Title: "T", Setup: "S",
		Tables: []Table{{Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}},
		Notes:  []string{"hello"},
	}
	out := r.Render()
	for _, want := range []string{"=== x: T ===", "a", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMemoReturnsSameResult(t *testing.T) {
	s := Scenario{
		Name: "memo-test", Servers: 2, Clients: 2,
		Workload:          ycsb.WorkloadC(20_000, 1024),
		RequestsPerClient: 2000, Seed: 3,
	}
	a := runMemo(s)
	b := runMemo(s)
	if a != b {
		t.Fatal("memo did not deduplicate identical scenarios")
	}
	s.RequestsPerClient = 2001
	if c := runMemo(s); c == a {
		t.Fatal("memo conflated distinct scenarios")
	}
}

// Regression: the memo key used to omit KillTarget, Deadline and every
// Profile field except SegmentBytes, so scenarios differing only there
// wrongly shared one *Result. The key now covers the whole scenario.
func TestMemoKeyCoversFullScenario(t *testing.T) {
	base := Scenario{
		Name: "memo-key", Servers: 3, Clients: 0, RF: 1,
		Workload:    ycsb.Workload{Name: "load", RecordCount: 20_000, RecordSize: 1024},
		KillAfter:   2 * sim.Second,
		KillTarget:  0,
		IdleSeconds: 2,
		Seed:        5,
		Profile:     DefaultProfile(),
	}
	a := runMemo(base)

	other := base
	other.KillTarget = 2
	if runMemo(other) == a {
		t.Fatal("memo conflated scenarios differing only in KillTarget")
	}

	deadline := base
	deadline.Deadline = 30 * sim.Minute
	if runMemo(deadline) == a {
		t.Fatal("memo conflated scenarios differing only in Deadline")
	}

	hotter := base
	hotter.Profile.Power.IdleWatts = 100
	if runMemo(hotter) == a {
		t.Fatal("memo conflated scenarios differing only in Profile.Power")
	}

	grouped := base
	grouped.Groups = []ClientGroup{{Name: "g", Clients: 1,
		Workload: ycsb.WorkloadC(20_000, 1024), RequestsPerClient: 2000}}
	if runMemo(grouped) == a {
		t.Fatal("memo conflated scenarios differing only in Groups")
	}
}

func TestRunSeedsDistributions(t *testing.T) {
	sweep := RunSeeds(Scenario{
		Name: "sweep", Servers: 2, Clients: 3,
		Workload:          ycsb.WorkloadB(20_000, 1024),
		RequestsPerClient: 2000,
	}, 3, Options{})
	if sweep.Runs != 3 || sweep.Throughput.N() != 3 {
		t.Fatalf("sweep runs = %d, samples = %d", sweep.Runs, sweep.Throughput.N())
	}
	if sweep.Throughput.Mean() <= 0 || sweep.PowerPerServer.Mean() < 61 {
		t.Fatalf("sweep means: thr=%v pow=%v", sweep.Throughput.Mean(), sweep.PowerPerServer.Mean())
	}
	// Different seeds must produce at least slightly different runs.
	if sweep.Throughput.Stddev() == 0 {
		t.Fatal("zero variance across seeds; seeds not plumbed")
	}
}

func TestKopsFormat(t *testing.T) {
	if kops(2_004_000) != "2004K" {
		t.Fatalf("kops = %q", kops(2_004_000))
	}
	if paperVs("a", "b") != "a / b" {
		t.Fatal("paperVs format")
	}
}

func TestWorkloadForPanicsOnJunk(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	workloadFor("zz", 1, 1)
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", -3: "-3", 1000: "1000"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}
