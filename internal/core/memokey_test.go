package core

import (
	"fmt"
	"reflect"
	"testing"

	"ramcloud/internal/client"
	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

// memoKeyBase builds a scenario exercising every part of the key: flat
// fields, a group, a phase and a full profile. Field values are chosen
// non-zero and pairwise distinct where cheap, so a perturbation cannot
// collide with a neighbouring field's encoding by accident.
func memoKeyBase() Scenario {
	prof := DefaultProfile()
	prof.Client.Backoff = client.BackoffConfig{
		Base: sim.Millisecond, Cap: 40 * sim.Millisecond,
		Multiplier: 2, JitterFrac: 0.25,
	}
	return Scenario{
		Name:              "memokey",
		Profile:           prof,
		Servers:           3,
		Clients:           2,
		RF:                1,
		Workload:          ycsb.WorkloadB(1000, 512),
		RequestsPerClient: 100,
		Rate:              50,
		BatchSize:         2,
		Window:            3,
		Groups: []ClientGroup{{
			Name: "g1", Clients: 4,
			Workload:          ycsb.WorkloadC(500, 256),
			RequestsPerClient: 10,
			Arrival:           ArrivalOpen,
			Rate:              5,
			BatchSize:         6,
			Window:            7,
			Start:             sim.Second,
			Stop:              2 * sim.Second,
			Warmup:            true,
		}},
		Phases: []LoadPhase{{
			Name: "p1", Duration: sim.Second, Shape: ShapeSine,
			From: 0.5, To: 1.5, Period: 3 * sim.Second, Steps: 2,
		}},
		Seed:       7,
		KillAfter:  4 * sim.Second,
		KillTarget: 1,
		Faults: []FaultEvent{{
			At: 5 * sim.Second, Kind: FaultLoss, Target: 2,
			Peers: []int{1, 2}, Loss: 0.01, Dup: 0.002,
			Jitter: 100 * sim.Microsecond, Until: 6 * sim.Second,
		}},
		IdleSeconds: 3,
		Deadline:    sim.Minute,
	}
}

// perturbLeaf walks v's leaf fields in a fixed order and mutates the
// target'th one, returning its dotted path. Slice lengths count as leaves
// too (an appended element must change the key). idx carries the running
// leaf counter across the recursion.
func perturbLeaf(v reflect.Value, idx *int, target int, path string) (string, bool) {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < v.NumField(); i++ {
			if p, ok := perturbLeaf(v.Field(i), idx, target, path+"."+t.Field(i).Name); ok {
				return p, true
			}
		}
		return "", false
	case reflect.Slice:
		if *idx == target {
			v.Set(reflect.Append(v, reflect.Zero(v.Type().Elem())))
			return path + ".len", true
		}
		*idx++
		for i := 0; i < v.Len(); i++ {
			if p, ok := perturbLeaf(v.Index(i), idx, target, fmt.Sprintf("%s[%d]", path, i)); ok {
				return p, true
			}
		}
		return "", false
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if *idx == target {
			v.SetInt(v.Int() + 1)
			return path, true
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if *idx == target {
			v.SetUint(v.Uint() + 1)
			return path, true
		}
	case reflect.Float64, reflect.Float32:
		if *idx == target {
			v.SetFloat(v.Float() + 0.5)
			return path, true
		}
	case reflect.Bool:
		if *idx == target {
			v.SetBool(!v.Bool())
			return path, true
		}
	case reflect.String:
		if *idx == target {
			v.SetString(v.String() + "x")
			return path, true
		}
	default:
		panic("memokey test: unhandled kind " + v.Kind().String() + " at " + path)
	}
	*idx++
	return "", false
}

// TestMemoKeyDistinguishesEveryField perturbs every leaf field of a fully
// populated scenario — including nested Group, Phase and Profile fields —
// and asserts each perturbation changes the memo key. A field added to
// Scenario (or any struct it embeds) without a matching memoKey line
// fails here, because its perturbation leaves the key unchanged.
func TestMemoKeyDistinguishesEveryField(t *testing.T) {
	base := memoKey(memoKeyBase())

	// Count the leaves by probing until the walker runs out.
	leaves := 0
	for {
		s := memoKeyBase()
		idx := 0
		if _, ok := perturbLeaf(reflect.ValueOf(&s).Elem(), &idx, leaves, "Scenario"); !ok {
			break
		}
		leaves++
	}
	if leaves < 80 {
		t.Fatalf("leaf walker found only %d leaves; the scenario struct should have far more", leaves)
	}

	seen := map[string]string{base: "<base>"}
	for target := 0; target < leaves; target++ {
		s := memoKeyBase()
		idx := 0
		path, ok := perturbLeaf(reflect.ValueOf(&s).Elem(), &idx, target, "Scenario")
		if !ok {
			t.Fatalf("leaf %d vanished on the second walk", target)
		}
		key := memoKey(s)
		if prev, dup := seen[key]; dup {
			t.Errorf("perturbing %s produced the same key as %s", path, prev)
			continue
		}
		seen[key] = path
	}
}

func TestMemoKeyStable(t *testing.T) {
	a, b := memoKey(memoKeyBase()), memoKey(memoKeyBase())
	if a != b {
		t.Fatalf("memoKey not deterministic:\n%q\n%q", a, b)
	}
}
