package core

import (
	"fmt"
	"math"

	"ramcloud/internal/metrics"
	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

// This file is the composable half of the scenario API: heterogeneous
// client groups (each with its own workload, arrival mode and lifetime)
// and load phases (time-varying rate shapes shared by every group). The
// flat Scenario fields lower losslessly onto a single implicit group, so
// every experiment written against the one-population API keeps its exact
// event sequence.

// ArrivalMode selects how a group's clients issue requests.
type ArrivalMode uint8

// Arrival modes. ArrivalDefault infers the mode from the group's knobs
// the same way the flat Scenario fields always did: BatchSize > 1 means
// batched, Window > 1 means windowed, otherwise the paper's closed loop.
const (
	ArrivalDefault ArrivalMode = iota
	ArrivalClosed              // issue, wait, repeat (the paper's loop)
	ArrivalOpen                // open-loop Poisson arrivals at Rate ops/s
	ArrivalBatched             // closed loop over MultiRead/MultiWrite batches
	ArrivalWindowed            // closed loop with an async pipeline window
)

// String names the mode for renderings.
func (m ArrivalMode) String() string {
	switch m {
	case ArrivalOpen:
		return "open"
	case ArrivalBatched:
		return "batched"
	case ArrivalWindowed:
		return "windowed"
	default:
		return "closed"
	}
}

// ClientGroup is one homogeneous client population inside a scenario.
// A scenario may run several groups concurrently (mixed tenants), each
// with its own workload, arrival mode and lifetime.
type ClientGroup struct {
	Name    string
	Clients int

	Workload          ycsb.Workload
	RequestsPerClient int // per client; 0 = bounded by Stop / phase span

	Arrival ArrivalMode
	// Rate is the per-client target in ops/s: a closed-loop throttle
	// (ArrivalClosed/Batched/Windowed; 0 = unthrottled) or the Poisson
	// arrival rate (ArrivalOpen, required). Load phases modulate it.
	Rate      float64
	BatchSize int // ArrivalBatched: ops per MultiRead/MultiWrite round
	Window    int // ArrivalWindowed: outstanding ops per client

	// Start delays the group's clients by this offset from scenario
	// start; Stop (when > 0) ends issuing at that absolute offset even if
	// requests remain. Together they stagger tenants within one run.
	Start sim.Duration
	Stop  sim.Duration

	// Warmup fetches the tablet map before the group's first operation
	// (see ycsb.RunOptions.Warmup). Latency-vs-load sweeps set it so the
	// first arrivals ride a warm route instead of parking RPC-less.
	Warmup bool
}

// mode resolves ArrivalDefault against the group's knobs.
func (g ClientGroup) mode() ArrivalMode {
	if g.Arrival != ArrivalDefault {
		return g.Arrival
	}
	switch {
	case g.BatchSize > 1:
		return ArrivalBatched
	case g.Window > 1:
		return ArrivalWindowed
	default:
		return ArrivalClosed
	}
}

// LoadShape selects the wave form of a LoadPhase.
type LoadShape uint8

// Load shapes. Each phase evaluates to a rate multiplier over [0, 1]
// of its span; x is the fraction of the phase elapsed.
const (
	ShapeConstant LoadShape = iota // From throughout
	ShapeRamp                      // linear From -> To
	ShapeStep                      // From -> To in Steps discrete jumps
	ShapeSine                      // half-cosine wave From -> To -> From per Period
)

// String names the shape for renderings.
func (s LoadShape) String() string {
	switch s {
	case ShapeRamp:
		return "ramp"
	case ShapeStep:
		return "step"
	case ShapeSine:
		return "sine"
	default:
		return "const"
	}
}

// LoadPhase modulates every group's Rate over one span of simulated
// time. Phases run back to back from scenario start; a scenario with
// phases derives its default stop time from their total span.
type LoadPhase struct {
	Name     string
	Duration sim.Duration
	Shape    LoadShape

	// From and To are rate multipliers (1.0 = the group's base Rate).
	// Constant uses From only. Sine oscillates between From and To,
	// starting and ending at From with its crest at To.
	From, To float64

	// Period is the sine wavelength (default: the phase duration).
	Period sim.Duration

	// Steps is the jump count for ShapeStep (default 4).
	Steps int
}

// scaleAt evaluates the phase multiplier at fraction x in [0, 1] of the
// phase, with elapsed absolute time into the phase for periodic shapes.
func (ph LoadPhase) scaleAt(x float64, elapsed sim.Duration) float64 {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	switch ph.Shape {
	case ShapeRamp:
		return ph.From + (ph.To-ph.From)*x
	case ShapeStep:
		steps := ph.Steps
		if steps <= 0 {
			steps = 4
		}
		k := int(x * float64(steps))
		if k >= steps {
			k = steps - 1
		}
		if steps == 1 {
			return ph.To
		}
		return ph.From + (ph.To-ph.From)*float64(k)/float64(steps-1)
	case ShapeSine:
		period := ph.Period
		if period <= 0 {
			period = ph.Duration
		}
		if period <= 0 {
			return ph.From
		}
		mid := (ph.From + ph.To) / 2
		amp := (ph.To - ph.From) / 2
		theta := 2 * math.Pi * float64(elapsed) / float64(period)
		return mid - amp*math.Cos(theta)
	default:
		return ph.From
	}
}

// PhaseSpan returns the total duration of a phase list.
func PhaseSpan(phases []LoadPhase) sim.Duration {
	var total sim.Duration
	for _, ph := range phases {
		total += ph.Duration
	}
	return total
}

// PhaseScaleAt evaluates the active phase's rate multiplier at offset t
// from scenario start. Before the first phase the multiplier is 1; after
// the last phase it holds the final phase's end value. Phases without a
// positive duration contribute no time and are skipped. An empty (or
// all-zero-duration) phase list always yields 1.
func PhaseScaleAt(phases []LoadPhase, t sim.Duration) float64 {
	var start sim.Duration
	for _, ph := range phases {
		if ph.Duration <= 0 {
			continue
		}
		end := start + ph.Duration
		if t < end {
			return ph.scaleAt(float64(t-start)/float64(ph.Duration), t-start)
		}
		start = end
	}
	for i := len(phases) - 1; i >= 0; i-- {
		if ph := phases[i]; ph.Duration > 0 {
			return ph.scaleAt(1, ph.Duration)
		}
	}
	return 1
}

// groups lowers the scenario onto its client groups: explicit Groups win;
// otherwise the flat fields become a single implicit group carrying the
// exact same knobs, so pre-redesign scenarios replay byte-identically.
func (s Scenario) groups() []ClientGroup {
	if len(s.Groups) > 0 {
		return s.Groups
	}
	return []ClientGroup{{
		Name:              s.Name,
		Clients:           s.Clients,
		Workload:          s.Workload,
		RequestsPerClient: s.RequestsPerClient,
		Rate:              s.Rate,
		BatchSize:         s.BatchSize,
		Window:            s.Window,
	}}
}

// runOptionsFor builds the ycsb options for client clientIdx (global
// index across groups) of group g. The implicit lowered group produces
// exactly the options the flat path always built.
func (s Scenario) runOptionsFor(g ClientGroup, table uint64, clientIdx int) ycsb.RunOptions {
	opts := ycsb.RunOptions{
		Table:    table,
		Requests: g.RequestsPerClient,
		Rate:     g.Rate,
		Seed:     s.Seed + int64(clientIdx)*7919,
		Warmup:   g.Warmup,
	}
	// The resolved arrival mode is authoritative: only its knobs are
	// forwarded, so a group declared closed never silently batches and a
	// group declared batched without a batch size fails loudly.
	switch g.mode() {
	case ArrivalOpen:
		opts.OpenLoop = true
	case ArrivalBatched:
		if g.BatchSize < 2 {
			panic(fmt.Sprintf("core: batched group %q needs BatchSize > 1", g.Name))
		}
		opts.BatchSize = g.BatchSize
	case ArrivalWindowed:
		if g.Window < 2 {
			panic(fmt.Sprintf("core: windowed group %q needs Window > 1", g.Name))
		}
		opts.Window = g.Window
	}
	// A group without a request budget is bounded by its stop time,
	// defaulting to the end of the phase schedule. (An open-loop group
	// with neither is rejected by ycsb with a clear panic.)
	stop := g.Stop
	if stop == 0 && g.RequestsPerClient <= 0 {
		stop = PhaseSpan(s.Phases)
	}
	if stop > 0 {
		opts.Stop = sim.Time(stop)
	}
	if len(s.Phases) > 0 && g.Rate > 0 {
		phases := s.Phases
		base := g.Rate
		opts.RateFunc = func(now sim.Time) float64 {
			return base * PhaseScaleAt(phases, sim.Duration(now))
		}
	}
	return opts
}

// GroupResult is one client group's share of a run's measurements.
// Joules are attributed activity-proportionally: for every completed
// second the cluster's energy is split across groups by their share of
// delivered operations, so an idle tenant is not billed for a busy one.
type GroupResult struct {
	Group   string
	Arrival string
	Clients int

	TotalOps   int64
	Throughput float64 // ops/s over the group's active seconds

	ReadLatency  *metrics.Histogram
	WriteLatency *metrics.Histogram

	Timeouts int64
	Failures int64

	Joules      float64 // activity-proportional share of cluster energy
	OpsPerJoule float64
}

// PhaseResult is one load phase's slice of the run, second-aligned.
type PhaseResult struct {
	Phase string
	Shape string

	StartSec, EndSec int // covered seconds [StartSec, EndSec)

	OfferedScale float64 // mean rate multiplier across the phase

	Ops               int64
	Throughput        float64 // delivered ops/s across the phase
	AvgPowerPerServer float64
	Joules            float64
	OpsPerJoule       float64
}

// buildGroupResults aggregates per-group breakdowns after a run.
// groupOf[i] is the group index of client i.
func buildGroupResults(cl *Cluster, groups []ClientGroup, groupOf []int, seriesEnd int) []GroupResult {
	out := make([]GroupResult, len(groups))
	opsBySec := make([]*metrics.Series, len(groups))
	for gi, g := range groups {
		out[gi] = GroupResult{
			Group:        g.Name,
			Arrival:      g.mode().String(),
			Clients:      g.Clients,
			ReadLatency:  metrics.NewHistogram(),
			WriteLatency: metrics.NewHistogram(),
		}
		opsBySec[gi] = &metrics.Series{}
	}
	for i, c := range cl.Clients {
		gi := groupOf[i]
		st := c.Stats()
		out[gi].TotalOps += st.Ops.Value()
		out[gi].Timeouts += st.Timeouts.Value()
		out[gi].Failures += st.Failures.Value()
		out[gi].ReadLatency.Merge(st.ReadLatency)
		out[gi].WriteLatency.Merge(st.WriteLatency)
		for k := 0; k < st.OpsBySecond.Len(); k++ {
			opsBySec[gi].Add(k, st.OpsBySecond.At(k))
		}
	}

	// Cluster-wide watts and delivered ops per second for attribution.
	watts := make([]float64, seriesEnd)
	totals := make([]float64, seriesEnd)
	for k := 0; k < seriesEnd; k++ {
		for _, pdu := range cl.PDUs {
			watts[k] += pdu.WattsAt(k)
		}
		for _, series := range opsBySec {
			totals[k] += series.At(k)
		}
	}

	for gi := range out {
		g := &out[gi]
		series := opsBySec[gi]
		first, last := -1, -1
		for k := 0; k < series.Len(); k++ {
			if series.At(k) > 0 {
				if first < 0 {
					first = k
				}
				last = k
			}
		}
		if first >= 0 {
			g.Throughput = float64(g.TotalOps) / float64(last-first+1)
		}
		for k := 0; k < seriesEnd; k++ {
			if totals[k] <= 0 {
				continue
			}
			g.Joules += watts[k] * series.At(k) / totals[k]
		}
		if g.Joules > 0 {
			g.OpsPerJoule = float64(g.TotalOps) / g.Joules
		}
	}
	return out
}

// buildPhaseResults slices the run along its load phases. Phase
// boundaries are truncated to whole seconds (the PDU sampling grain), so
// phase durations should be multiples of a second for clean attribution.
func buildPhaseResults(s Scenario, cl *Cluster, seriesEnd int) []PhaseResult {
	if len(s.Phases) == 0 {
		return nil
	}
	// Delivered ops per second across all clients.
	var ops metrics.Series
	for _, c := range cl.Clients {
		st := c.Stats()
		for k := 0; k < st.OpsBySecond.Len(); k++ {
			ops.Add(k, st.OpsBySecond.At(k))
		}
	}
	out := make([]PhaseResult, 0, len(s.Phases))
	var cursor sim.Duration
	for _, ph := range s.Phases {
		from := int(int64(cursor) / int64(sim.Second))
		cursor += ph.Duration
		to := int(int64(cursor) / int64(sim.Second))
		if to > seriesEnd {
			to = seriesEnd
		}
		pr := PhaseResult{
			Phase:    ph.Name,
			Shape:    ph.Shape.String(),
			StartSec: from,
			EndSec:   to,
		}
		if to <= from {
			out = append(out, pr)
			continue
		}
		// Mean offered multiplier: sample the shape at second midpoints.
		scaleSum := 0.0
		for k := from; k < to; k++ {
			t := sim.Duration(k)*sim.Second + sim.Second/2
			scaleSum += PhaseScaleAt(s.Phases, t)
		}
		pr.OfferedScale = scaleSum / float64(to-from)
		pr.Ops = int64(ops.Sum(from, to))
		pr.Throughput = float64(pr.Ops) / float64(to-from)
		rep := cl.EnergyReport(from, to, pr.Ops)
		pr.AvgPowerPerServer = rep.MeanNodeWatts()
		pr.Joules = rep.TotalJoules
		pr.OpsPerJoule = rep.EnergyEfficiency()
		out = append(out, pr)
	}
	return out
}
