package core

import (
	"fmt"

	"ramcloud/internal/hashtable"
	"ramcloud/internal/metrics"
	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

// This file regenerates the crash-recovery study (Section VII): Figs. 9-12,
// the Section IX segment-size sweep, and the scatter/cleaner ablations.

func init() {
	Register(Experiment{ID: "fig9a", Order: 140, Title: "CPU usage around a crash (10 idle servers)", Setup: "RF 4, 10M records (scaled), kill at 15s", Run: runFig9a, Scenarios: fig9Grid})
	Register(Experiment{ID: "fig9b", Order: 150, Title: "Power around a crash (10 idle servers)", Setup: "same run as fig9a", Run: runFig9b, Scenarios: fig9Grid})
	Register(Experiment{ID: "fig10", Order: 160, Title: "Client latency across a crash", Setup: "client 1 targets lost data, client 2 live data", Run: runFig10})
	Register(Experiment{ID: "fig11a", Order: 170, Title: "Recovery time vs replication factor", Setup: "9 servers, ~1/9 of data per server, RF {1..5}", Run: runFig11a, Scenarios: fig11Grid})
	Register(Experiment{ID: "fig11b", Order: 180, Title: "Per-node energy during recovery vs RF", Setup: "same grid as fig11a", Run: runFig11b, Scenarios: fig11Grid})
	Register(Experiment{ID: "fig12", Order: 190, Title: "Aggregate disk I/O during recovery", Setup: "9 servers, RF 3", Run: runFig12, Scenarios: fig12Grid})
	Register(Experiment{ID: "seg", Order: 210, Title: "Segment-size sweep (Sec. IX): recovery time", Setup: "9 servers, RF 2, segment {1..32} MB", Run: runSegSweep, Scenarios: segGrid})
	Register(Experiment{ID: "cleaner", Order: 220, Title: "Ablation: log cleaner under memory pressure", Setup: "4 servers, RF 0, log sized to force cleaning", Run: runCleanerAblation, Scenarios: cleanerGrid})
	Register(Experiment{ID: "scatter", Order: 240, Title: "Ablation: random scatter vs fixed backups", Setup: "9 servers, RF 2, recovery time", Run: runScatterAblation, Scenarios: scatterGrid})
}

const killAt = 15 * sim.Second // paper kills at 60s; timeline compressed

func recoveryScenario(o Options, servers, rf, records, segBytes int, fixed bool) Scenario {
	p := o.Profile
	if segBytes > 0 {
		p.Server.Log.SegmentBytes = segBytes
	}
	p.Server.FixedBackups = fixed
	return Scenario{
		Name:        fmt.Sprintf("recovery-fixed=%v", fixed),
		Profile:     p,
		Servers:     servers,
		Clients:     0,
		RF:          rf,
		Workload:    ycsb.Workload{Name: "load", RecordCount: records, RecordSize: 1024},
		KillAfter:   killAt,
		KillTarget:  servers / 2,
		IdleSeconds: 8,
		Seed:        o.Seed,
	}
}

func recoveryCell(o Options, servers, rf, records, segBytes int, fixed bool) *Result {
	return runMemo(recoveryScenario(o, servers, rf, records, segBytes, fixed))
}

func fig9Grid(o Options) []Scenario {
	o = o.normalize()
	return []Scenario{recoveryScenario(o, 10, 4, o.records(10_000_000), 0, false)}
}

func fig11Grid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for rf := 1; rf <= 5; rf++ {
		out = append(out, recoveryScenario(o, 9, rf, o.records(10_000_000), 0, false))
	}
	return out
}

func fig12Grid(o Options) []Scenario {
	o = o.normalize()
	return []Scenario{recoveryScenario(o, 9, 3, o.records(10_000_000), 0, false)}
}

func segGrid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for _, mb := range []int{1, 2, 4, 8, 16, 32} {
		out = append(out, recoveryScenario(o, 9, 2, o.records(10_000_000)/2, mb<<20, false))
	}
	return out
}

func scatterGrid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for _, fixed := range []bool{false, true} {
		out = append(out, recoveryScenario(o, 9, 2, o.records(10_000_000)/2, 0, fixed))
	}
	return out
}

func runFig9a(o Options) *ExpResult {
	o = o.normalize()
	records := o.records(10_000_000)
	r := recoveryCell(o, 10, 4, records, 0, false)
	res := &ExpResult{ID: "fig9a", Title: "Average CPU usage around a crash (%)",
		Setup: fmt.Sprintf("10 servers, RF 4, %d records, kill at %v", records, killAt)}
	cpu := &metrics.Series{}
	for k := 0; k < r.CPUSeries.Len(); k++ {
		cpu.Set(k, r.CPUSeries.At(k)*100)
	}
	res.Series = map[string]*metrics.Series{"cpu_percent": cpu}
	res.Tables = []Table{{
		Header: []string{"metric", "paper", "measured"},
		Rows: [][]string{
			{"idle CPU before crash", "25%", fmt.Sprintf("%.0f%%", cpu.At(int(killAt/sim.Second)-2))},
			{"peak CPU during recovery", "92%", fmt.Sprintf("%.0f%%", cpu.Max(int(killAt/sim.Second), cpu.Len()))},
			{"recovery time", "~40s (1GB/server)", r.RecoveryTime.String()},
		},
	}}
	res.Notes = append(res.Notes,
		"paper shape: CPU jumps from the 25% floor to ~92% at the crash, then decays as partitions finish",
		"the dead node reports 0% after the kill, lowering the 10-node average vs the paper's 9 survivors")
	return res
}

func runFig9b(o Options) *ExpResult {
	o = o.normalize()
	records := o.records(10_000_000)
	r := recoveryCell(o, 10, 4, records, 0, false)
	res := &ExpResult{ID: "fig9b", Title: "Average power per node around a crash (W)",
		Setup: "same run as fig9a"}
	res.Series = map[string]*metrics.Series{"watts": r.PowerSeries}
	res.Tables = []Table{{
		Header: []string{"metric", "paper", "measured"},
		Rows: [][]string{
			{"power before crash", "~77W (idle, polling)", fmt.Sprintf("%.0fW", r.PowerSeries.At(int(killAt/sim.Second)-2))},
			{"peak power during recovery", "119W", fmt.Sprintf("%.0fW", r.PowerSeries.Max(int(killAt/sim.Second), r.PowerSeries.Len()))},
		},
	}}
	return res
}

var paperFig11a = map[int]string{1: "10s", 2: "20s", 3: "30s", 4: "40s", 5: "55s"}

func runFig11a(o Options) *ExpResult {
	o = o.normalize()
	records := o.records(10_000_000)
	res := &ExpResult{ID: "fig11a", Title: "Recovery time vs replication factor",
		Setup: fmt.Sprintf("9 servers, %d records (paper: 10M, 1.085GB/server), kill 1", records)}
	t := Table{Header: []string{"rf", "paper", "measured", "measured/RF1"}}
	var rf1 sim.Duration
	for rf := 1; rf <= 5; rf++ {
		r := recoveryCell(o, 9, rf, records, 0, false)
		if rf == 1 {
			rf1 = r.RecoveryTime
		}
		ratio := "-"
		if rf1 > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(r.RecoveryTime)/float64(rf1))
		}
		t.Rows = append(t.Rows, []string{itoa(rf), paperFig11a[rf], r.RecoveryTime.String(), ratio})
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"paper shape (Finding 6): recovery time grows roughly linearly with RF (10s -> 55s); absolute values scale with the data volume",
		"mechanism: replayed data is re-replicated through the contended write path while backups' disks interleave reads and writes")
	return res
}

func runFig11b(o Options) *ExpResult {
	o = o.normalize()
	records := o.records(10_000_000)
	res := &ExpResult{ID: "fig11b", Title: "Per-node energy during recovery vs RF",
		Setup: "same grid as fig11a; energy integrated over the recovery window"}
	t := Table{Header: []string{"rf", "paper", "measured", "mean watts in window"}}
	paper := map[int]string{1: "~1.2KJ", 2: "~2.3KJ", 3: "~3.5KJ", 4: "~4.7KJ", 5: "~6.4KJ"}
	for rf := 1; rf <= 5; rf++ {
		r := recoveryCell(o, 9, rf, records, 0, false)
		killSec := int(int64(r.KilledAt) / int64(sim.Second))
		endSec := killSec + int(int64(r.RecoveryTime)/int64(sim.Second)) + 1
		joules := r.PowerSeries.Sum(killSec, endSec)
		watts := r.PowerSeries.Mean(killSec, endSec)
		t.Rows = append(t.Rows, []string{itoa(rf), paper[rf],
			fmt.Sprintf("%.2fKJ", joules/1000), fmt.Sprintf("%.0fW", watts)})
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"paper: per-node power stays 114-117W during recovery; energy grows with RF because recovery takes longer, not because power rises")
	return res
}

func runFig12(o Options) *ExpResult {
	o = o.normalize()
	records := o.records(10_000_000)
	r := recoveryCell(o, 9, 3, records, 0, false)
	res := &ExpResult{ID: "fig12", Title: "Aggregate disk I/O during recovery (MB/s)",
		Setup: "9 servers, RF 3, kill 1; read burst then overlapping re-replication writes"}
	res.Series = map[string]*metrics.Series{
		"read_MBps":  r.DiskReadMBs,
		"write_MBps": r.DiskWriteMBs,
	}
	killSec := int(int64(r.KilledAt) / int64(sim.Second))
	res.Tables = []Table{{
		Header: []string{"metric", "paper", "measured"},
		Rows: [][]string{
			{"peak aggregate write", "~350-400 MB/s", fmt.Sprintf("%.0f MB/s", r.DiskWriteMBs.Max(killSec, r.DiskWriteMBs.Len()))},
			{"peak aggregate read", "~150 MB/s", fmt.Sprintf("%.0f MB/s", r.DiskReadMBs.Max(killSec, r.DiskReadMBs.Len()))},
			{"reads overlap writes", "yes", "yes (see series)"},
		},
	}}
	return res
}

func runSegSweep(o Options) *ExpResult {
	o = o.normalize()
	records := o.records(10_000_000) / 2
	res := &ExpResult{ID: "seg", Title: "Recovery time vs segment size (Sec. IX)",
		Setup: fmt.Sprintf("9 servers, RF 2, %d records", records)}
	t := Table{Header: []string{"segment", "recovery time"}}
	for _, mb := range []int{1, 2, 4, 8, 16, 32} {
		r := recoveryCell(o, 9, 2, records, mb<<20, false)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%dMB", mb), r.RecoveryTime.String()})
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"paper: 8MB (the hard-coded default) gave the best recovery times on their HDDs; 1MB suffers per-segment seek overhead")
	return res
}

func runScatterAblation(o Options) *ExpResult {
	o = o.normalize()
	records := o.records(10_000_000) / 2
	res := &ExpResult{ID: "scatter", Title: "Random segment scatter vs fixed backup set",
		Setup: fmt.Sprintf("9 servers, RF 2, %d records", records)}
	t := Table{Header: []string{"placement", "recovery time"}}
	for _, fixed := range []bool{false, true} {
		r := recoveryCell(o, 9, 2, records, 0, fixed)
		name := "random scatter (RAMCloud)"
		if fixed {
			name = "fixed ring backups"
		}
		t.Rows = append(t.Rows, []string{name, r.RecoveryTime.String()})
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"random scatter spreads recovery reads over every surviving disk; a fixed set bottlenecks on RF disks (Section II-B's design rationale)")
	return res
}

func cleanerScenario(o Options, tight bool) Scenario {
	p := o.Profile
	if tight {
		// ~15MB of live data per server in a 24MB log: the cleaner
		// must continuously reclaim overwritten space.
		p.Server.Log.TotalBytes = 24 << 20
	}
	return Scenario{
		Name:              fmt.Sprintf("cleaner-tight=%v", tight),
		Profile:           p,
		Servers:           4,
		Clients:           25,
		RF:                0,
		Workload:          ycsb.WorkloadA(60_000, 1024),
		RequestsPerClient: o.requests(10_000),
		Seed:              o.Seed,
	}
}

func cleanerGrid(o Options) []Scenario {
	o = o.normalize()
	return []Scenario{cleanerScenario(o, false), cleanerScenario(o, true)}
}

func runCleanerAblation(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "cleaner", Title: "Log cleaner under memory pressure",
		Setup: "4 servers, RF 0, 25 clients, update-heavy on 60K x 1KB records"}
	t := Table{Header: []string{"log capacity", "throughput", "cleaner passes", "segments freed"}}
	for _, tight := range []bool{false, true} {
		r := runMemo(cleanerScenario(o, tight))
		label := "10GB (paper setup: cleaner idle)"
		if tight {
			label = "24MB (forced cleaning)"
		}
		t.Rows = append(t.Rows, []string{label, kops(r.Throughput),
			fmt.Sprintf("%d", r.CleanerPasses), fmt.Sprintf("%d", r.CleanerFreed)})
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"the paper sized datasets so cleaning never triggered (Sec. III-C); this shows the cost had it run")
	return res
}

// runFig10 is a custom two-client run: client 1 reads only keys owned by
// the victim server, client 2 reads the rest. It reproduces the paper's
// blocked-client and latency-interference measurements.
func runFig10(o Options) *ExpResult {
	o = o.normalize()
	records := o.records(10_000_000) / 2
	eng := sim.New(o.Seed)
	p := o.Profile
	cl := NewCluster(eng, p, 10, 4)
	cl.Start()
	table := cl.CreateTable("usertable")
	cl.BulkLoad(table, records, 1024)

	victim := 5 // server index (id 6)
	victimID := cl.Servers[victim].ID()
	tablets := cl.Coord.TabletMapDirect()
	var victimKeys, otherKeys [][]byte
	for i := 0; i < records && (len(victimKeys) < 20_000 || len(otherKeys) < 20_000); i++ {
		key := ycsb.Key(i)
		h := hashtable.HashKey(table, key)
		owned := false
		for j := range tablets {
			t := &tablets[j]
			if t.Table == table && h >= t.StartHash && h <= t.EndHash {
				owned = t.Master == victimID
				break
			}
		}
		if owned {
			victimKeys = append(victimKeys, key)
		} else {
			otherKeys = append(otherKeys, key)
		}
	}

	stop := false
	runReader := func(name string, keys [][]byte) *sim.Proc {
		c := cl.NewClient()
		return eng.Go(name, func(pr *sim.Proc) {
			for i := 0; !stop; i++ {
				_, _, _ = c.Read(pr, table, keys[i%len(keys)])
			}
		})
	}
	runReader("client1-lost-data", victimKeys)
	runReader("client2-live-data", otherKeys)

	eng.Schedule(killAt, func() { cl.KillServer(victim) })
	eng.Go("controller", func(pr *sim.Proc) {
		for len(cl.Coord.Records()) == 0 {
			pr.Sleep(200 * sim.Millisecond)
			if pr.Now() > sim.Time(10*sim.Minute) {
				break
			}
		}
		pr.Sleep(4 * sim.Second)
		stop = true
		cl.StopMetering()
		pr.Sleep(sim.Second)
		eng.Stop()
	})
	eng.Run()
	eng.Shutdown()

	res := &ExpResult{ID: "fig10", Title: "Per-op latency across a crash (us)",
		Setup: fmt.Sprintf("10 servers, RF 4, %d records, kill server %d at %v", records, victim+1, killAt)}
	res.Series = map[string]*metrics.Series{}
	killSec := int(killAt / sim.Second)
	var gap int
	var before, during []float64
	for ci, c := range cl.Clients {
		st := c.Stats()
		lat := &metrics.Series{}
		for k := 0; k < st.LatCntSecond.Len(); k++ {
			if n := st.LatCntSecond.At(k); n > 0 {
				lat.Set(k, st.LatSumSecond.At(k)/n/1000)
			}
		}
		res.Series[fmt.Sprintf("client%d_latency_us", ci+1)] = lat
		if ci == 0 {
			// availability gap: consecutive seconds with no completed ops
			run := 0
			for k := killSec; k < st.OpsBySecond.Len(); k++ {
				if st.OpsBySecond.At(k) == 0 {
					run++
					if run > gap {
						gap = run
					}
				} else {
					run = 0
				}
			}
		} else {
			for k := 2; k < killSec-1; k++ {
				before = append(before, lat.At(k))
			}
			recs := cl.Coord.Records()
			endSec := lat.Len()
			if len(recs) > 0 {
				endSec = int(int64(recs[0].DoneAt)/int64(sim.Second)) + 1
			}
			for k := killSec + 1; k < endSec; k++ {
				if lat.At(k) > 0 {
					during = append(during, lat.At(k))
				}
			}
		}
	}
	mean := func(v []float64) float64 {
		if len(v) == 0 {
			return 0
		}
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	recTime := sim.Duration(0)
	if recs := cl.Coord.Records(); len(recs) > 0 {
		recTime = recs[0].DoneAt.Sub(sim.Time(killAt))
	}
	inflation := 0.0
	if mean(before) > 0 {
		inflation = mean(during) / mean(before)
	}
	res.Tables = []Table{{
		Header: []string{"metric", "paper", "measured"},
		Rows: [][]string{
			{"client 1 blocked (availability gap)", "~40s (= recovery time)", fmt.Sprintf("%ds (recovery %v)", gap, recTime)},
			{"client 2 latency before crash", "~15us", fmt.Sprintf("%.1fus", mean(before))},
			{"client 2 latency during recovery", "~35us (1.4-2.4x)", fmt.Sprintf("%.1fus (%.1fx)", mean(during), inflation)},
		},
	}}
	res.Notes = append(res.Notes,
		"paper shape (Finding 5): lost data is unavailable for the whole recovery; live-data latency inflates 1.4-2.4x from CPU interference")
	return res
}
