package core

import (
	"math"
	"testing"

	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

func TestPhaseScaleAtShapes(t *testing.T) {
	phases := []LoadPhase{
		{Name: "const", Shape: ShapeConstant, Duration: 4 * sim.Second, From: 0.5},
		{Name: "ramp", Shape: ShapeRamp, Duration: 10 * sim.Second, From: 0.5, To: 1.5},
		{Name: "step", Shape: ShapeStep, Duration: 4 * sim.Second, From: 1.0, To: 2.0, Steps: 2},
		{Name: "sine", Shape: ShapeSine, Duration: 8 * sim.Second, From: 0.6, To: 1.0, Period: 8 * sim.Second},
	}
	approx := func(name string, t0 sim.Duration, want float64) {
		t.Helper()
		if got := PhaseScaleAt(phases, t0); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: scale(%v) = %v, want %v", name, t0, got, want)
		}
	}
	approx("const start", 0, 0.5)
	approx("const mid", 2*sim.Second, 0.5)
	// Ramp: linear from 0.5 at 4s to 1.5 at 14s.
	approx("ramp start", 4*sim.Second, 0.5)
	approx("ramp mid", 9*sim.Second, 1.0)
	// Step with 2 levels: first half 1.0, second half 2.0.
	approx("step lo", 14*sim.Second, 1.0)
	approx("step hi", 17*sim.Second, 2.0)
	// Sine starts at From, crests at To half a period in.
	approx("sine trough", 18*sim.Second, 0.6)
	approx("sine crest", 22*sim.Second, 1.0)
	// Past the schedule: hold the last phase's end value (full period -> From).
	approx("after end", 60*sim.Second, 0.6)

	if got := PhaseScaleAt(nil, 5*sim.Second); got != 1 {
		t.Errorf("empty phases scale = %v, want 1", got)
	}
	if got := PhaseSpan(phases); got != 26*sim.Second {
		t.Errorf("span = %v, want 26s", got)
	}
}

// The flat one-population fields must lower losslessly onto a single
// implicit group: old Scenario literals produce identical Results.
func TestFlatFieldsLowerToSingleGroup(t *testing.T) {
	flat := Scenario{
		Name: "lowering", Servers: 2, Clients: 3,
		Workload:          ycsb.WorkloadB(20_000, 1024),
		RequestsPerClient: 2000,
		Rate:              5000,
		Seed:              11,
	}
	explicit := flat
	explicit.Clients, explicit.Workload, explicit.RequestsPerClient, explicit.Rate = 0, ycsb.Workload{}, 0, 0
	explicit.Groups = []ClientGroup{{
		Name: "lowering", Clients: 3,
		Workload:          ycsb.WorkloadB(20_000, 1024),
		RequestsPerClient: 2000,
		Rate:              5000,
	}}

	a, b := Run(flat), Run(explicit)
	if a.TotalOps != b.TotalOps || a.Duration != b.Duration || a.Throughput != b.Throughput {
		t.Fatalf("flat vs explicit group diverged: ops %d/%d dur %v/%v thr %v/%v",
			a.TotalOps, b.TotalOps, a.Duration, b.Duration, a.Throughput, b.Throughput)
	}
	if a.TotalJoules != b.TotalJoules || a.AvgPowerPerServer != b.AvgPowerPerServer {
		t.Fatalf("energy diverged: %v/%v J, %v/%v W",
			a.TotalJoules, b.TotalJoules, a.AvgPowerPerServer, b.AvgPowerPerServer)
	}
	if a.ReadLatency.Count() != b.ReadLatency.Count() || a.ReadLatency.Mean() != b.ReadLatency.Mean() {
		t.Fatalf("read latency diverged: %d/%d samples, mean %v/%v",
			a.ReadLatency.Count(), b.ReadLatency.Count(), a.ReadLatency.Mean(), b.ReadLatency.Mean())
	}
	if len(a.Groups) != 1 || len(b.Groups) != 1 {
		t.Fatalf("groups = %d/%d, want 1/1", len(a.Groups), len(b.Groups))
	}
	if a.Groups[0].TotalOps != a.TotalOps {
		t.Fatalf("implicit group ops %d != total %d", a.Groups[0].TotalOps, a.TotalOps)
	}
}

// Open-loop Poisson arrivals are deterministic at a fixed seed and
// diverge across seeds.
func TestOpenLoopPoissonDeterminism(t *testing.T) {
	scenario := func(seed int64) Scenario {
		return Scenario{
			Name: "poisson", Servers: 2, Seed: seed,
			Groups: []ClientGroup{{
				Name: "open", Clients: 3,
				Workload: ycsb.WorkloadC(20_000, 1024),
				Arrival:  ArrivalOpen,
				Rate:     2000,
				Stop:     3 * sim.Second,
			}},
		}
	}
	a, b := Run(scenario(9)), Run(scenario(9))
	if a.TotalOps != b.TotalOps || a.Duration != b.Duration ||
		a.ReadLatency.Mean() != b.ReadLatency.Mean() || a.TotalJoules != b.TotalJoules {
		t.Fatalf("same seed diverged: ops %d/%d dur %v/%v", a.TotalOps, b.TotalOps, a.Duration, b.Duration)
	}
	c := Run(scenario(10))
	if a.TotalOps == c.TotalOps && a.ReadLatency.Mean() == c.ReadLatency.Mean() {
		t.Fatal("different seeds produced identical open-loop runs; seed not plumbed")
	}
	// ~3 clients x 2000 op/s x 3s = 18K expected arrivals.
	if a.TotalOps < 12_000 || a.TotalOps > 24_000 {
		t.Fatalf("open-loop ops = %d, want ~18K", a.TotalOps)
	}
}

// A phase boundary must re-target the offered rate mid-run: a 4x step in
// the phase multiplier should roughly quadruple per-phase throughput.
func TestPhaseBoundaryRateTransition(t *testing.T) {
	r := Run(Scenario{
		Name: "phase-step", Servers: 2, Seed: 7,
		Groups: []ClientGroup{{
			Name: "open", Clients: 2,
			Workload: ycsb.WorkloadC(20_000, 1024),
			Arrival:  ArrivalOpen,
			Rate:     2000,
		}},
		Phases: []LoadPhase{
			{Name: "low", Shape: ShapeConstant, Duration: 3 * sim.Second, From: 0.25},
			{Name: "high", Shape: ShapeConstant, Duration: 3 * sim.Second, From: 1.0},
		},
	})
	if len(r.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(r.Phases))
	}
	low, high := r.Phases[0], r.Phases[1]
	if low.Ops == 0 || high.Ops == 0 {
		t.Fatalf("empty phase: low %d, high %d", low.Ops, high.Ops)
	}
	ratio := high.Throughput / low.Throughput
	if ratio < 3 || ratio > 5 {
		t.Fatalf("high/low throughput = %.2f, want ~4 (low %.0f, high %.0f)",
			ratio, low.Throughput, high.Throughput)
	}
	if high.Joules <= 0 || low.Joules <= 0 {
		t.Fatalf("per-phase joules not attributed: %v / %v", low.Joules, high.Joules)
	}
	// Throttled closed loops re-target too: same shape through a throttle.
	rc := Run(Scenario{
		Name: "phase-step-closed", Servers: 2, Seed: 7,
		Groups: []ClientGroup{{
			Name: "closed", Clients: 2,
			Workload: ycsb.WorkloadC(20_000, 1024),
			Rate:     2000,
		}},
		Phases: []LoadPhase{
			{Name: "low", Shape: ShapeConstant, Duration: 3 * sim.Second, From: 0.25},
			{Name: "high", Shape: ShapeConstant, Duration: 3 * sim.Second, From: 1.0},
		},
	})
	ratio = rc.Phases[1].Throughput / rc.Phases[0].Throughput
	if ratio < 3 || ratio > 5 {
		t.Fatalf("closed-loop high/low throughput = %.2f, want ~4", ratio)
	}
}

// Two concurrent tenant groups are measured separately: per-group ops
// sum to the run's total and energy attribution splits the cluster's
// joules across tenants.
func TestMixedGroupsBreakdown(t *testing.T) {
	r := Run(Scenario{
		Name: "two-tenants", Servers: 2, Seed: 21,
		Groups: []ClientGroup{
			{Name: "alpha", Clients: 2, Workload: ycsb.WorkloadA(20_000, 1024), RequestsPerClient: 2000},
			{Name: "gamma", Clients: 3, Workload: ycsb.WorkloadC(20_000, 1024), RequestsPerClient: 2000},
		},
	})
	if len(r.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(r.Groups))
	}
	alpha, gamma := r.Groups[0], r.Groups[1]
	if alpha.Group != "alpha" || gamma.Group != "gamma" {
		t.Fatalf("group names = %q, %q", alpha.Group, gamma.Group)
	}
	if alpha.TotalOps+gamma.TotalOps != r.TotalOps {
		t.Fatalf("group ops %d + %d != total %d", alpha.TotalOps, gamma.TotalOps, r.TotalOps)
	}
	if alpha.TotalOps != 2*2000 || gamma.TotalOps != 3*2000 {
		t.Fatalf("group ops = %d, %d", alpha.TotalOps, gamma.TotalOps)
	}
	if alpha.WriteLatency.Count() == 0 {
		t.Fatal("update-heavy tenant recorded no write latency")
	}
	if gamma.WriteLatency.Count() != 0 {
		t.Fatal("read-only tenant recorded write latency")
	}
	if alpha.Joules <= 0 || gamma.Joules <= 0 {
		t.Fatalf("joule attribution: %v, %v", alpha.Joules, gamma.Joules)
	}
	if alpha.OpsPerJoule <= 0 || gamma.OpsPerJoule <= 0 {
		t.Fatalf("ops/J: %v, %v", alpha.OpsPerJoule, gamma.OpsPerJoule)
	}
}

// Zero-duration phases contribute no time: they must not swallow the
// rest of the schedule or divide by zero at their boundary.
func TestPhaseScaleAtSkipsZeroDurationPhases(t *testing.T) {
	phases := []LoadPhase{
		{Shape: ShapeConstant, Duration: 5 * sim.Second, From: 0.5},
		{Shape: ShapeRamp, Duration: 0, From: 0.1, To: 1.0},
		{Shape: ShapeConstant, Duration: 5 * sim.Second, From: 2.0},
	}
	if got := PhaseScaleAt(phases, 5*sim.Second); got != 2.0 {
		t.Fatalf("scale at zero-duration boundary = %v, want 2.0", got)
	}
	if got := PhaseScaleAt(phases, 7*sim.Second); got != 2.0 {
		t.Fatalf("scale past zero-duration phase = %v, want 2.0", got)
	}
	if got := PhaseScaleAt(phases, 20*sim.Second); got != 2.0 {
		t.Fatalf("scale after schedule = %v, want last positive phase's 2.0", got)
	}
	onlyZero := []LoadPhase{{Shape: ShapeRamp, Duration: 0, From: 3, To: 4}}
	if got := PhaseScaleAt(onlyZero, sim.Second); got != 1 {
		t.Fatalf("all-zero-duration schedule scale = %v, want 1", got)
	}
}

// A batched (or windowed) group without a request budget is bounded by
// the phase span like every other mode, not silently empty.
func TestBatchedGroupBoundedByPhases(t *testing.T) {
	r := Run(Scenario{
		Name: "batched-span", Servers: 2, Seed: 5,
		Groups: []ClientGroup{{
			Name: "bulk", Clients: 2,
			Workload:  ycsb.WorkloadC(20_000, 1024),
			BatchSize: 8,
			Rate:      2000,
		}},
		Phases: []LoadPhase{
			{Name: "on", Shape: ShapeConstant, Duration: 2 * sim.Second, From: 1.0},
		},
	})
	if r.TotalOps == 0 {
		t.Fatal("batched group with Requests=0 under phases issued nothing")
	}
	// ~2 clients x 2000 op/s x 2s = 8K ops.
	if r.TotalOps < 6000 || r.TotalOps > 10_000 {
		t.Fatalf("batched span-bounded ops = %d, want ~8K", r.TotalOps)
	}
}

// An explicitly declared arrival mode is authoritative: closed ignores a
// stray BatchSize, and batched/windowed without their knob fail loudly.
func TestArrivalModeAuthoritative(t *testing.T) {
	s := Scenario{Seed: 1}
	closed := s.runOptionsFor(ClientGroup{
		Arrival: ArrivalClosed, BatchSize: 8, Window: 4, RequestsPerClient: 10,
	}, 1, 0)
	if closed.BatchSize != 0 || closed.Window != 0 || closed.OpenLoop {
		t.Fatalf("closed group forwarded batching knobs: %+v", closed)
	}
	open := s.runOptionsFor(ClientGroup{
		Arrival: ArrivalOpen, Rate: 100, BatchSize: 8, RequestsPerClient: 10,
	}, 1, 0)
	if !open.OpenLoop || open.BatchSize != 0 {
		t.Fatalf("open group options: %+v", open)
	}
	mustPanic := func(name string, g ClientGroup) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		s.runOptionsFor(g, 1, 0)
	}
	mustPanic("batched without size", ClientGroup{Arrival: ArrivalBatched, RequestsPerClient: 10})
	mustPanic("windowed without window", ClientGroup{Arrival: ArrivalWindowed, RequestsPerClient: 10})
}

// A group Start offset delays its clients relative to scenario start.
func TestGroupStartOffset(t *testing.T) {
	r := Run(Scenario{
		Name: "staggered", Servers: 2, Seed: 3,
		Groups: []ClientGroup{
			{Name: "early", Clients: 1, Workload: ycsb.WorkloadC(20_000, 1024), RequestsPerClient: 1000},
			{Name: "late", Clients: 1, Workload: ycsb.WorkloadC(20_000, 1024), RequestsPerClient: 1000,
				Start: 2 * sim.Second},
		},
	})
	if r.TotalOps != 2000 {
		t.Fatalf("ops = %d, want 2000", r.TotalOps)
	}
	// The late group's ops land at least 2s into the run.
	if r.Duration < 2*sim.Second {
		t.Fatalf("duration = %v, want >= 2s (late group delayed)", r.Duration)
	}
}
