package core

import (
	"testing"

	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

// TestSequentialCrashesSurvive kills two servers one after the other with
// RF 2: the first recovery re-replicates the lost data, so the second
// crash must not lose anything either.
func TestSequentialCrashesSurvive(t *testing.T) {
	eng := sim.New(8)
	cl := NewCluster(eng, smallProfile(), 5, 2)
	cl.Start()
	table := cl.CreateTable("t")
	cl.BulkLoad(table, 600, 512)
	c := cl.NewClient()
	lost := 0
	eng.Go("app", func(p *sim.Proc) {
		waitRecoveries := func(n int) bool {
			for len(cl.Coord.Records()) < n {
				p.Sleep(250 * sim.Millisecond)
				if p.Now() > sim.Time(3*sim.Minute) {
					return false
				}
			}
			return true
		}
		cl.KillServer(1)
		if !waitRecoveries(1) {
			t.Error("first recovery stalled")
		}
		cl.KillServer(3)
		if !waitRecoveries(2) {
			t.Error("second recovery stalled")
		}
		for i := 0; i < 600; i++ {
			if n, _, err := c.Read(p, table, ycsb.Key(i)); err != nil || n != 512 {
				lost++
			}
		}
		cl.StopMetering()
		eng.Stop()
	})
	eng.Run()
	eng.Shutdown()
	if lost != 0 {
		t.Fatalf("%d records lost after two sequential crashes", lost)
	}
}

// TestCrashDuringRecovery kills a second server while the first recovery
// is still running. The cluster must converge: no panics, no permanently
// recovering tablets, and data that survived both crashes stays readable.
func TestCrashDuringRecovery(t *testing.T) {
	eng := sim.New(9)
	cl := NewCluster(eng, smallProfile(), 6, 3)
	cl.Start()
	table := cl.CreateTable("t")
	cl.BulkLoad(table, 800, 512)
	c := cl.NewClient()
	readable := 0
	eng.Go("app", func(p *sim.Proc) {
		cl.KillServer(1)
		// Kill another server shortly after detection, mid-recovery.
		p.Sleep(1200 * sim.Millisecond)
		cl.KillServer(2)
		for len(cl.Coord.Records()) < 2 {
			p.Sleep(500 * sim.Millisecond)
			if p.Now() > sim.Time(4*sim.Minute) {
				break
			}
		}
		p.Sleep(2 * sim.Second)
		for i := 0; i < 800; i++ {
			if n, _, err := c.Read(p, table, ycsb.Key(i)); err == nil && n == 512 {
				readable++
			}
		}
		cl.StopMetering()
		eng.Stop()
	})
	eng.Run()
	eng.Shutdown()
	// With RF 3 and two deaths, every record still has at least one
	// replica; requiring >= 95% readable allows partitions whose recovery
	// master died mid-replay and was re-recovered.
	if readable < 760 {
		t.Fatalf("only %d/800 records readable after overlapping crashes", readable)
	}
	if len(cl.Coord.AliveServers()) != 4 {
		t.Fatalf("alive = %d, want 4", len(cl.Coord.AliveServers()))
	}
}

// TestScenarioDeadlineMarksCrashed verifies the harness's "experiment
// crashed" detection (paper Fig. 6a cells).
func TestScenarioDeadlineMarksCrashed(t *testing.T) {
	res := Run(Scenario{
		Name:              "deadline",
		Profile:           smallProfile(),
		Servers:           2,
		Clients:           4,
		Workload:          ycsb.WorkloadA(5_000, 1024),
		RequestsPerClient: 1_000_000, // cannot finish before the deadline
		Deadline:          2 * sim.Second,
		Seed:              3,
	})
	if !res.Crashed {
		t.Fatal("deadline run not marked crashed")
	}
}

// TestFig10StyleTargetedReads checks the custom fig10 helper path: keys
// split by owner, victim's keys blocked during recovery.
func TestFig10StyleTargetedReads(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full custom recovery scenario")
	}
	res := runFig10(Options{Scale: 0.05, Seed: 4})
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	if len(res.Tables) == 0 || len(res.Tables[0].Rows) != 3 {
		t.Fatalf("tables malformed: %+v", res.Tables)
	}
}
