package core

import (
	"fmt"
	"os"
	"sync"

	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

// laneStatsEnabled gates a per-run window-shape report on stderr
// (RC_LANE_STATS=1), used when tuning lane counts: the mean active-lane
// count is the ceiling on parallel speedup. Stderr only — stdout must
// stay byte-identical across lane counts.
var laneStatsEnabled = sync.OnceValue(func() bool {
	return os.Getenv("RC_LANE_STATS") != ""
})

// This file is the intra-scenario parallel execution path: one scenario's
// event work spread over N lanes of a sim.Sharded engine (the -lanes
// flag), with the conservative lookahead set to the fabric's propagation
// delay. The contract is strict: an eligible scenario must render
// byte-identically at any lane count, so the path mirrors the serial
// Run's timeline exactly — same bring-up, same client proc names and
// sleeps, same one-second settle before the stop — and hands the finished
// cluster to the same collectResults.

// effectiveLanes returns the lane count a scenario may use: the
// process-wide -lanes setting when the scenario is parallel-eligible,
// else 1. Eligibility is intentionally narrow — every feature that runs
// zero-latency cross-node logic outside the fabric stays on the proven
// serial path:
//
//   - RF > 0: replication draws backup choices from the engine RNG; lanes
//     have partitioned RNG streams, so the draws would differ.
//   - Faults/KillAfter: the fault arm schedules engine-level callbacks
//     that mutate remote nodes at zero latency.
//   - Deadline, IdleSeconds: controller timelines that interleave with
//     recovery polling.
//   - No clients: idle runs measure the whole tail; the endgame below is
//     keyed off client completion.
func effectiveLanes(s *Scenario) int {
	lanes := Lanes()
	if lanes <= 1 {
		return 1
	}
	if s.RF != 0 || s.KillAfter != 0 || len(s.Faults) != 0 ||
		s.IdleSeconds != 0 || s.Deadline != 0 {
		return 1
	}
	total := 0
	for _, g := range s.groups() {
		total += g.Clients
	}
	if total == 0 {
		return 1
	}
	if s.Profile.Net.PropagationDelay <= 0 {
		return 1 // no lookahead margin to exploit
	}
	return lanes
}

// completionTracker is the cross-lane analogue of the serial controller's
// WaitGroup: clients on any lane report completion, and the last one
// observes the maximum completion time. Max is commutative, so the value
// is independent of which lane's client happens to report last.
type completionTracker struct {
	mu        sync.Mutex
	left      int
	maxDoneAt sim.Time
	onLast    func(last sim.Time)
}

func (t *completionTracker) done(at sim.Time) {
	t.mu.Lock()
	if at > t.maxDoneAt {
		t.maxDoneAt = at
	}
	t.left--
	last := t.left == 0
	max := t.maxDoneAt
	t.mu.Unlock()
	if last {
		t.onLast(max)
	}
}

// runSharded executes an eligible scenario on lanes event lanes. The
// serial controller proc is replaced by an exclusive endgame event one
// second after the last client completes — the same instant the serial
// controller's post-wait Sleep(Second) lands its finish.
func runSharded(s Scenario, lanes int) *Result {
	sh := sim.NewSharded(s.Seed, lanes, s.Profile.Net.PropagationDelay)
	cl := NewShardedCluster(sh, s.Profile, s.Servers, s.RF)
	cl.Start()

	groups := s.groups()
	totalClients := 0
	for _, g := range groups {
		totalClients += g.Clients
	}

	table := cl.CreateTable("usertable")
	loadRecords, loadSize := 0, 0
	for _, g := range groups {
		if g.Workload.RecordCount > loadRecords {
			loadRecords, loadSize = g.Workload.RecordCount, g.Workload.RecordSize
		}
	}
	if loadRecords > 0 {
		cl.BulkLoad(table, loadRecords, loadSize)
	}

	res := &Result{Scenario: s.Name}
	var workStart, workEnd sim.Time

	tracker := &completionTracker{left: totalClients}
	tracker.onLast = func(last sim.Time) {
		// Runs on the lane of whichever client reported last, mid-window.
		// The endgame instant is a full second out — far beyond the window
		// end (windows are one propagation delay wide) — so registering it
		// from lane context is safe under the lookahead contract.
		sh.ScheduleExclusiveAt(last.Add(sim.Second), func() {
			workEnd = last
			cl.StopMetering()
			sh.Stop()
		})
	}

	groupOf := make([]int, 0, totalClients)
	idx := 0
	for gi, g := range groups {
		for j := 0; j < g.Clients; j++ {
			i := idx
			idx++
			groupOf = append(groupOf, gi)
			c := cl.NewClient()
			opts := s.runOptionsFor(g, table, i)
			wl, start := g.Workload, g.Start
			// The proc runs on its client's home lane; name and sleep
			// pattern match the serial path so a 1-lane sharded run spawns
			// the exact legacy sequence.
			cl.clientEngine(i).Go("client-"+itoa(i), func(p *sim.Proc) {
				defer func() { tracker.done(p.Now()) }()
				p.Sleep(sim.Millisecond) // allow bring-up to settle
				if start > 0 {
					p.Sleep(start)
				}
				ycsb.RunClient(p, c, wl, opts)
			})
		}
	}

	sh.Run()
	finalNow := sh.Now()
	if laneStatsEnabled() {
		w, solo, mean, excl := sh.WindowStats()
		fmt.Fprintf(os.Stderr, "lanestats %s: lanes=%d windows=%d solo=%d meanActive=%.2f excl=%d events=%d\n",
			s.Name, lanes, w, solo, mean, excl, sh.EventsRun())
	}
	sh.Shutdown()
	for _, node := range cl.Nodes {
		node.FlushAccounting(finalNow)
	}

	collectResults(s, cl, res, groups, groupOf, totalClients, workStart, workEnd, finalNow)
	return res
}
