package core

import (
	"reflect"
	"runtime"
	"testing"

	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

// forceParallelLanes raises GOMAXPROCS so the sharded engine picks the
// worker barrier even on a single-core host, then pins the process-wide
// lane count. The -race CI job leans on this test: it is the only place
// the full cluster stack (fabric, servers, metering tick, endgame) runs
// across genuinely parallel lane goroutines.
func forceParallelLanes(t testing.TB, lanes int) {
	prevProcs := runtime.GOMAXPROCS(4)
	prevLanes := SetLanes(lanes)
	t.Cleanup(func() {
		SetLanes(prevLanes)
		runtime.GOMAXPROCS(prevProcs)
	})
}

// TestShardedSixteenServerLaneInvariance is the tentpole's acceptance
// test at unit scale: a 16-server, 32-client scenario must produce a
// deeply equal Result on the serial engine and on 8 parallel lanes.
// Equality is over the whole Result — series, histograms, per-group
// breakdowns — not just headline scalars, so any lane-dependent
// reordering that survives the keyed merge shows up here.
func TestShardedSixteenServerLaneInvariance(t *testing.T) {
	s := Scenario{
		Name:              "sharded-16s",
		Servers:           16,
		Clients:           32,
		Workload:          ycsb.WorkloadB(2_000, 1024),
		RequestsPerClient: 200,
		Seed:              42,
	}
	prev := SetLanes(1)
	defer SetLanes(prev)
	serial := Run(s)

	forceParallelLanes(t, 8)
	sharded := Run(s)

	if !reflect.DeepEqual(serial, sharded) {
		t.Fatalf("16-server run differs between -lanes 1 and -lanes 8:\nserial:  %+v\nsharded: %+v", serial, sharded)
	}
	if serial.TotalOps != 32*200 {
		t.Fatalf("degenerate run: %d ops", serial.TotalOps)
	}
}

// TestEffectiveLanesGate pins the eligibility rules: every feature that
// runs zero-latency cross-node logic outside the fabric must force the
// serial path no matter what -lanes asks for.
func TestEffectiveLanesGate(t *testing.T) {
	prev := SetLanes(8)
	defer SetLanes(prev)
	base := Scenario{
		Servers:           4,
		Clients:           4,
		Workload:          ycsb.WorkloadC(1_000, 1024),
		RequestsPerClient: 10,
		Profile:           DefaultProfile(),
	}
	if got := effectiveLanes(&base); got != 8 {
		t.Fatalf("eligible scenario got %d lanes, want 8", got)
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"replication", func(s *Scenario) { s.RF = 3 }},
		{"kill", func(s *Scenario) { s.KillAfter = sim.Second }},
		{"faults", func(s *Scenario) { s.Faults = []FaultEvent{{At: sim.Second, Kind: FaultKill}} }},
		{"idle", func(s *Scenario) { s.IdleSeconds = 5 }},
		{"deadline", func(s *Scenario) { s.Deadline = sim.Second }},
		{"no clients", func(s *Scenario) { s.Clients = 0 }},
		{"no propagation delay", func(s *Scenario) { s.Profile.Net.PropagationDelay = 0 }},
	}
	for _, c := range cases {
		s := base
		c.mut(&s)
		if got := effectiveLanes(&s); got != 1 {
			t.Fatalf("%s: got %d lanes, want serial fallback", c.name, got)
		}
	}
	SetLanes(1)
	if got := effectiveLanes(&base); got != 1 {
		t.Fatalf("-lanes 1 got %d lanes", got)
	}
}
