package core

import (
	"ramcloud/internal/metrics"
	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

// Scenario describes one measured run: cluster shape, workload, load
// level, replication factor and optional fault injection — the knobs the
// paper sweeps across its experiments.
//
// The client population is described either by the flat fields (Clients,
// Workload, RequestsPerClient, Rate, BatchSize, Window — one homogeneous
// closed-loop population, the paper's setup) or by explicit Groups.
// When Groups is non-empty it wins and the flat fields are ignored;
// otherwise the flat fields lower onto a single implicit group with
// identical behavior. Phases apply to both forms.
type Scenario struct {
	Name    string
	Profile Profile

	Servers int
	Clients int
	RF      int // replication factor; 0 disables replication

	Workload          ycsb.Workload
	RequestsPerClient int
	Rate              float64 // per-client throttle (ops/s); 0 = unthrottled

	// BatchSize > 1 drives clients through MultiRead/MultiWrite batches;
	// Window > 1 pipelines through the async API (see ycsb.RunOptions).
	BatchSize int
	Window    int

	// Groups, when non-empty, replaces the flat client fields with
	// heterogeneous client populations (mixed tenants, staggered starts,
	// per-group arrival modes).
	Groups []ClientGroup

	// Phases modulate every group's Rate over simulated time (ramps,
	// steps, diurnal sines). Groups whose Rate is 0 (unthrottled closed
	// loops) are not modulated.
	Phases []LoadPhase

	Seed int64

	// KillAfter, when > 0, crashes one server at that simulated time.
	// It is the legacy single-kill form: when Faults is empty it lowers
	// onto a one-event schedule ([{At: KillAfter, Kind: FaultKill,
	// Target: KillTarget}]) with identical behaviour.
	KillAfter  sim.Duration
	KillTarget int // server index to kill; -1 picks one deterministically

	// Faults, when non-empty, is the full fault schedule (kills, restarts,
	// partitions, loss windows, slow nodes) and overrides KillAfter.
	Faults []FaultEvent

	// IdleSeconds runs the cluster without client load for this long
	// (after the kill, recovery is awaited) — the Fig. 9 setup.
	IdleSeconds int

	// Deadline aborts the run and marks it crashed — reproducing the
	// paper's "experiments were always crashing because of excessive
	// timeouts" cells. Zero means no deadline.
	Deadline sim.Duration
}

// Result is everything a scenario run measures.
type Result struct {
	Scenario string

	TotalOps   int64
	Duration   sim.Duration // first workload op to last completion
	Throughput float64      // ops/s aggregate

	AvgPowerPerServer float64
	TotalJoules       float64
	OpsPerJoule       float64

	CPUMeanPerNode []float64 // mean utilization per server over the window
	CPUMin, CPUMax float64   // min/max of per-node means (Table I)

	// Per-second series averaged across server nodes (Figs. 9a, 9b).
	CPUSeries   *metrics.Series // utilization fraction
	PowerSeries *metrics.Series // watts

	// Aggregate disk I/O across servers (Fig. 12), MB/s per second.
	DiskReadMBs  *metrics.Series
	DiskWriteMBs *metrics.Series

	// Per-client average latency per second in microseconds (Fig. 10).
	ClientLatencyUs []*metrics.Series

	ReadLatency  *metrics.Histogram
	WriteLatency *metrics.Histogram

	Timeouts int64
	Failures int64
	Retries  int64

	// Recovery, when a kill was injected.
	KilledAt         sim.Time
	RecoveryTime     sim.Duration // kill -> last partition flipped
	Recovered        bool
	RecoveryTimedOut bool         // controller gave up waiting (10 min)
	DetectTime       sim.Duration // kill -> detector declared death

	// Rejoin, when a restart was injected.
	Rejoined        bool
	RejoinedAt      sim.Time
	TabletsMigrated int64 // tablets re-spread onto restarted servers

	// Fault-injection and detector accounting.
	NetDroppedFault     int64 // messages lost to injected faults
	NetDuplicated       int64 // extra copies delivered by dup models
	Suspicions          int64 // detector ping misses
	FalsePositiveDeaths int64 // live servers declared dead

	// Cleaner activity across all servers.
	CleanerPasses int64
	CleanerFreed  int64

	Crashed bool // deadline exceeded

	// Groups breaks the run down per client group (always at least the
	// implicit flat-field group); Phases slices it along the scenario's
	// load phases (empty without phases).
	Groups []GroupResult
	Phases []PhaseResult
}

// Run executes a scenario to completion and collects its measurements.
func Run(s Scenario) *Result {
	if s.Profile.Machine.Cores == 0 {
		s.Profile = DefaultProfile()
	}
	if lanes := effectiveLanes(&s); lanes > 1 {
		return runSharded(s, lanes)
	}
	eng := sim.New(s.Seed)
	cl := NewCluster(eng, s.Profile, s.Servers, s.RF)
	cl.Start()

	groups := s.groups()
	totalClients := 0
	for _, g := range groups {
		totalClients += g.Clients
	}

	table := cl.CreateTable("usertable")
	// Load the largest dataset any group addresses; groups share the table.
	loadRecords, loadSize := 0, 0
	for _, g := range groups {
		if g.Workload.RecordCount > loadRecords {
			loadRecords, loadSize = g.Workload.RecordCount, g.Workload.RecordSize
		}
	}
	if loadRecords > 0 {
		cl.BulkLoad(table, loadRecords, loadSize)
	}

	res := &Result{Scenario: s.Name}
	wg := sim.NewWaitGroup(eng)
	var workStart, workEnd sim.Time

	// Clients: one proc per client, numbered globally across groups so
	// the lowered single-group form spawns the exact legacy sequence.
	groupOf := make([]int, 0, totalClients)
	idx := 0
	for gi, g := range groups {
		for j := 0; j < g.Clients; j++ {
			i := idx
			idx++
			groupOf = append(groupOf, gi)
			c := cl.NewClient()
			wg.Add(1)
			opts := s.runOptionsFor(g, table, i)
			wl, start := g.Workload, g.Start
			eng.Go("client-"+itoa(i), func(p *sim.Proc) {
				defer wg.Done()
				p.Sleep(sim.Millisecond) // allow bring-up to settle
				if start > 0 {
					p.Sleep(start)
				}
				ycsb.RunClient(p, c, wl, opts)
			})
		}
	}

	// Fault injection: the explicit schedule, or KillAfter lowered onto a
	// single kill event.
	faults := s.faultSchedule()
	nKills, nRestarts, lastRestart := faultCounts(faults)
	if len(faults) > 0 {
		armFaults(eng, cl, &s, faults, res)
	}

	// Controller: decide when the run is over.
	done := false
	finish := func() {
		if done {
			return
		}
		done = true
		if workEnd == 0 {
			workEnd = eng.Now()
		}
		cl.StopMetering()
		eng.Stop()
	}
	if s.Deadline > 0 {
		eng.Schedule(s.Deadline, func() {
			if !done {
				res.Crashed = true
				finish()
			}
		})
	}
	eng.Go("controller", func(p *sim.Proc) {
		workStart = p.Now()
		wg.Wait(p)
		workEnd = p.Now()
		if nKills > 0 {
			// Await recovery completion (poll the coordinator's records).
			for len(cl.Coord.Records()) < nKills {
				p.Sleep(100 * sim.Millisecond)
				if p.Now() > sim.Time(10*sim.Minute) {
					res.RecoveryTimedOut = true
					break // recovery never finished; report as-is
				}
			}
		}
		if nRestarts > 0 {
			// Await the last restart and the drain of its tablet re-spread.
			// <= keeps polling until we are strictly past the restart event,
			// so a poll landing exactly on it cannot observe pending == 0
			// before Readmit has run.
			for p.Now() <= sim.Time(lastRestart) || cl.Coord.RespreadsPending() > 0 {
				p.Sleep(100 * sim.Millisecond)
				if p.Now() > sim.Time(10*sim.Minute) {
					res.RecoveryTimedOut = true
					break
				}
			}
		}
		if s.IdleSeconds > 0 {
			p.Sleep(sim.Duration(s.IdleSeconds) * sim.Second)
		}
		// Let the final PDU tick cover the last full second.
		p.Sleep(sim.Second)
		finish()
	})

	eng.Run()
	finalNow := eng.Now()
	eng.Shutdown()
	for _, node := range cl.Nodes {
		node.FlushAccounting(finalNow)
	}

	collectResults(s, cl, res, groups, groupOf, totalClients, workStart, workEnd, finalNow)
	return res
}

// collectResults computes every measurement from the finished cluster into
// res. It is shared verbatim by the serial and sharded run paths: both end
// with the same cluster state, work window and final clock, so the
// aggregation (and therefore the rendered output) cannot depend on which
// path executed the events.
func collectResults(s Scenario, cl *Cluster, res *Result, groups []ClientGroup, groupOf []int, totalClients int, workStart, workEnd, finalNow sim.Time) {
	// Measurement window: whole seconds covered by the workload (power
	// and CPU means are computed there, so an idle tail does not dilute
	// them). Series cover the entire run, recovery included.
	startSec := 0
	endSec := int(int64(workEnd) / int64(sim.Second))
	if endSec < 1 {
		endSec = 1
	}
	seriesEnd := int(int64(finalNow) / int64(sim.Second))
	if seriesEnd < endSec {
		seriesEnd = endSec
	}
	if totalClients == 0 {
		// Idle/recovery scenarios: measure over the whole run.
		endSec = seriesEnd
	}
	res.Duration = workEnd.Sub(workStart)

	// Client-side aggregation.
	res.ReadLatency = metrics.NewHistogram()
	res.WriteLatency = metrics.NewHistogram()
	var lastDone sim.Time
	for _, c := range cl.Clients {
		st := c.Stats()
		res.TotalOps += st.Ops.Value()
		res.Timeouts += st.Timeouts.Value()
		res.Failures += st.Failures.Value()
		res.Retries += st.Retries.Value()
		res.ReadLatency.Merge(st.ReadLatency)
		res.WriteLatency.Merge(st.WriteLatency)
		var lat metrics.Series
		for k := 0; k < st.LatCntSecond.Len(); k++ {
			if n := st.LatCntSecond.At(k); n > 0 {
				lat.Set(k, st.LatSumSecond.At(k)/n/1000) // us
			}
		}
		res.ClientLatencyUs = append(res.ClientLatencyUs, &lat)
	}
	_ = lastDone
	if totalClients > 0 && res.Duration > 0 {
		res.Throughput = float64(res.TotalOps) / res.Duration.Seconds()
	}

	// Server-side aggregation.
	rep := cl.EnergyReport(startSec, endSec, res.TotalOps)
	res.AvgPowerPerServer = rep.MeanNodeWatts()
	res.TotalJoules = rep.TotalJoules
	res.OpsPerJoule = rep.EnergyEfficiency()

	res.CPUMin, res.CPUMax = 2, -1
	cpuSeries := &metrics.Series{}
	powSeries := &metrics.Series{}
	readMB := &metrics.Series{}
	writeMB := &metrics.Series{}
	for i, node := range cl.Nodes {
		m := node.MeanUtil(startSec, endSec)
		res.CPUMeanPerNode = append(res.CPUMeanPerNode, m)
		if m < res.CPUMin {
			res.CPUMin = m
		}
		if m > res.CPUMax {
			res.CPUMax = m
		}
		for k := 0; k < seriesEnd; k++ {
			cpuSeries.Add(k, node.UtilSecond(k)/float64(len(cl.Nodes)))
			powSeries.Add(k, cl.PDUs[i].WattsAt(k)/float64(len(cl.Nodes)))
			readMB.Add(k, cl.Disks[i].ReadBytesSecond(k)/1e6)
			writeMB.Add(k, cl.Disks[i].WriteBytesSecond(k)/1e6)
		}
	}
	res.CPUSeries = cpuSeries
	res.PowerSeries = powSeries
	res.DiskReadMBs = readMB
	res.DiskWriteMBs = writeMB

	for _, srv := range cl.Servers {
		res.CleanerPasses += srv.Stats().CleanerPasses.Value()
		res.CleanerFreed += srv.Stats().CleanerFreed.Value()
	}

	// Recovery bookkeeping.
	if recs := cl.Coord.Records(); len(recs) > 0 && res.KilledAt > 0 {
		res.Recovered = true
		res.RecoveryTime = recs[0].DoneAt.Sub(res.KilledAt)
		res.DetectTime = recs[0].DetectedAt.Sub(res.KilledAt)
	}

	// Fault-injection and detector accounting.
	res.NetDroppedFault = cl.Net.DroppedByFault()
	res.NetDuplicated = cl.Net.Duplicated()
	res.Suspicions = cl.Coord.Suspicions()
	res.FalsePositiveDeaths = cl.Coord.FalsePositives()
	res.TabletsMigrated = cl.Coord.TabletsMigrated()

	// Composable-scenario breakdowns: per-group and per-phase slices.
	res.Groups = buildGroupResults(cl, groups, groupOf, seriesEnd)
	res.Phases = buildPhaseResults(s, cl, seriesEnd)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		b[pos] = '-'
	}
	return string(b[pos:])
}
