package core

import (
	"strconv"

	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

// This file renders a Scenario into its canonical memo key. The key must
// be injective — two scenarios differing in ANY field, however nested,
// must get distinct keys — because the singleflight memo (runner.go)
// shares one *Result per key across the whole process. It replaces the
// old fmt.Sprintf("%+v", s) key: reflection formatting allocated ~2 KB
// per lookup on the hot path and its output is not guaranteed stable
// across Go releases, which would silently split or merge memo entries.
//
// Injectivity comes from three rules: every field is appended in a fixed
// order with a terminator, strings are length-prefixed (a Name containing
// the separator cannot forge field boundaries), and slices are count-
// prefixed. TestMemoKeyDistinguishesEveryField walks every leaf field by
// reflection and fails if a perturbation does not change the key, so a
// field added to Scenario (or any struct it embeds) without a matching
// line here is caught at test time.

// keyEnc accumulates the canonical encoding.
type keyEnc struct {
	b []byte
}

func (e *keyEnc) str(s string) {
	e.b = strconv.AppendInt(e.b, int64(len(s)), 10)
	e.b = append(e.b, ':')
	e.b = append(e.b, s...)
	e.b = append(e.b, '|')
}

func (e *keyEnc) i64(v int64) {
	e.b = strconv.AppendInt(e.b, v, 10)
	e.b = append(e.b, '|')
}

func (e *keyEnc) i(v int) { e.i64(int64(v)) }

func (e *keyEnc) f64(v float64) {
	e.b = strconv.AppendFloat(e.b, v, 'g', -1, 64)
	e.b = append(e.b, '|')
}

func (e *keyEnc) boolean(v bool) {
	if v {
		e.b = append(e.b, '1', '|')
	} else {
		e.b = append(e.b, '0', '|')
	}
}

func (e *keyEnc) dur(d sim.Duration) { e.i64(int64(d)) }

func (e *keyEnc) workload(w ycsb.Workload) {
	e.str(w.Name)
	e.f64(w.ReadProp)
	e.f64(w.UpdateProp)
	e.i(w.RecordCount)
	e.i(w.RecordSize)
	e.i64(int64(w.Dist))
}

func (e *keyEnc) group(g ClientGroup) {
	e.str(g.Name)
	e.i(g.Clients)
	e.workload(g.Workload)
	e.i(g.RequestsPerClient)
	e.i64(int64(g.Arrival))
	e.f64(g.Rate)
	e.i(g.BatchSize)
	e.i(g.Window)
	e.dur(g.Start)
	e.dur(g.Stop)
	e.boolean(g.Warmup)
}

func (e *keyEnc) fault(f FaultEvent) {
	e.dur(f.At)
	e.i64(int64(f.Kind))
	e.i(f.Target)
	e.i(len(f.Peers))
	for _, p := range f.Peers {
		e.i(p)
	}
	e.f64(f.Loss)
	e.f64(f.Dup)
	e.dur(f.Jitter)
	e.dur(f.Until)
}

func (e *keyEnc) phase(ph LoadPhase) {
	e.str(ph.Name)
	e.dur(ph.Duration)
	e.i64(int64(ph.Shape))
	e.f64(ph.From)
	e.f64(ph.To)
	e.dur(ph.Period)
	e.i(ph.Steps)
}

func (e *keyEnc) profile(p Profile) {
	e.str(p.Machine.Name)
	e.i(p.Machine.Cores)
	e.i64(p.Machine.DRAMBytes)
	e.i64(p.Machine.DiskBytes)

	e.f64(p.Power.IdleWatts)
	e.f64(p.Power.CPUWatts)
	e.f64(p.Power.DiskWatts)
	e.f64(p.Power.NICWatts)

	e.dur(p.Net.PropagationDelay)
	e.f64(p.Net.Bandwidth)

	e.f64(p.Disk.ReadBandwidth)
	e.f64(p.Disk.WriteBandwidth)
	e.dur(p.Disk.SeekPenalty)

	e.i(p.Server.Workers)
	e.i(p.Server.ReplicationFactor)
	e.i(p.Server.Log.SegmentBytes)
	e.i64(p.Server.Log.TotalBytes)
	e.dur(p.Server.Costs.Dispatch)
	e.dur(p.Server.Costs.Read)
	e.dur(p.Server.Costs.WriteBase)
	e.dur(p.Server.Costs.WriteContention)
	e.dur(p.Server.Costs.ReplicaAppend)
	e.dur(p.Server.Costs.PerKByte)
	e.dur(p.Server.Costs.SendOverhead)
	e.dur(p.Server.Costs.SegmentOpen)
	e.dur(p.Server.Costs.ReplayObject)
	e.dur(p.Server.Costs.SpinTimeout)
	e.f64(p.Server.Costs.InterferenceFactor)
	e.dur(p.Server.Costs.RecoveryPenalty)
	e.dur(p.Server.Costs.RDMAPost)
	e.dur(p.Server.ReplicationTimeout)
	e.i(p.Server.ReplayBatch)
	e.i64(p.Server.PartitionBytes)
	e.f64(p.Server.CleanerThreshold)
	e.boolean(p.Server.AsyncReplication)
	e.boolean(p.Server.FixedBackups)
	e.boolean(p.Server.RDMAReplication)

	e.dur(p.Client.RPCTimeout)
	e.dur(p.Client.RetryBackoff)
	e.dur(p.Client.RecoveringBackoff)
	e.i(p.Client.MaxRetries)
	e.dur(p.Client.ReadOverhead)
	e.dur(p.Client.UpdateOverhead)
	e.dur(p.Client.BatchItemOverhead)
	e.dur(p.Client.Backoff.Base)
	e.dur(p.Client.Backoff.Cap)
	e.f64(p.Client.Backoff.Multiplier)
	e.f64(p.Client.Backoff.JitterFrac)

	e.dur(p.Coordinator.PingInterval)
	e.dur(p.Coordinator.PingTimeout)
	e.i(p.Coordinator.MissThreshold)
	e.boolean(p.Coordinator.EnforceDeath)
}

// memoKey renders the fully-specified scenario — every field, including
// nested groups, phases and the whole calibration profile — into its
// canonical key.
func memoKey(s Scenario) string {
	e := keyEnc{b: make([]byte, 0, 512)}
	e.str(s.Name)
	e.profile(s.Profile)
	e.i(s.Servers)
	e.i(s.Clients)
	e.i(s.RF)
	e.workload(s.Workload)
	e.i(s.RequestsPerClient)
	e.f64(s.Rate)
	e.i(s.BatchSize)
	e.i(s.Window)
	e.i(len(s.Groups))
	for _, g := range s.Groups {
		e.group(g)
	}
	e.i(len(s.Phases))
	for _, ph := range s.Phases {
		e.phase(ph)
	}
	e.i64(s.Seed)
	e.dur(s.KillAfter)
	e.i(s.KillTarget)
	e.i(len(s.Faults))
	for _, f := range s.Faults {
		e.fault(f)
	}
	e.i(s.IdleSeconds)
	e.dur(s.Deadline)
	return string(e.b)
}
