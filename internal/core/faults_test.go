package core

import (
	"testing"

	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/ycsb"
)

// idleRun lets the cluster sit for d of simulated time, then stops.
func idleRun(eng *sim.Engine, cl *Cluster, d sim.Duration) {
	eng.Go("idle", func(p *sim.Proc) {
		p.Sleep(d)
		cl.StopMetering()
		eng.Stop()
	})
	eng.Run()
	eng.Shutdown()
}

// TestDetectorZeroFalsePositivesAtLowLoss injects 1% loss on the
// coordinator's links — every failure-detector ping and ack rides them —
// and verifies that 60 seconds of windows produce suspicions but no
// declared deaths: one miss is common, three consecutive misses at 1%
// loss is a ~1e-5 event per window.
func TestDetectorZeroFalsePositivesAtLowLoss(t *testing.T) {
	eng := sim.New(11)
	cl := NewCluster(eng, smallProfile(), 3, 0)
	cl.Start()
	cl.Net.SeedFaults(11)
	cl.Net.SetNodeFaults(CoordinatorAddr, simnet.FaultModel{Loss: 0.01})
	idleRun(eng, cl, 60*sim.Second)

	if fp := cl.Coord.FalsePositives(); fp != 0 {
		t.Fatalf("false positives = %d at 1%% loss, want 0", fp)
	}
	if n := len(cl.Coord.AliveServers()); n != 3 {
		t.Fatalf("alive = %d, want 3", n)
	}
	if cl.Coord.Suspicions() == 0 {
		t.Fatal("no suspicions recorded — loss never hit the ping path")
	}
	if cl.Net.DroppedByFault() == 0 {
		t.Fatal("no messages dropped — fault model not applied")
	}
}

// TestDetectorDeclaresDeadUnderExtremeLoss drowns the coordinator's links
// in 60% loss: three consecutive misses become likely (~0.59 per window),
// so the detector must declare deaths — and enforce them, so a falsely
// declared server is really dead afterwards (no split-brain).
func TestDetectorDeclaresDeadUnderExtremeLoss(t *testing.T) {
	eng := sim.New(12)
	p := smallProfile()
	p.Coordinator.EnforceDeath = true
	cl := NewCluster(eng, p, 3, 2)
	cl.Start()
	table := cl.CreateTable("t")
	cl.BulkLoad(table, 300, 512)
	cl.Net.SeedFaults(12)
	cl.Net.SetNodeFaults(CoordinatorAddr, simnet.FaultModel{Loss: 0.6})
	idleRun(eng, cl, 30*sim.Second)

	fp := cl.Coord.FalsePositives()
	if fp == 0 {
		t.Fatal("no false positives at 60% loss — detector never fired")
	}
	// Enforcement: every false positive killed a live server, so the dead
	// count and the false-positive count agree.
	dead := 0
	for _, s := range cl.Servers {
		if s.Dead() {
			dead++
		}
	}
	if int64(dead) != fp {
		t.Fatalf("dead servers = %d, false positives = %d — declared-dead servers must be enforced dead", dead, fp)
	}
	// Bounded detection latency: the first declaration happened within a
	// few ping windows of the start, not at the end of the run.
	recs := cl.Coord.Records()
	if len(recs) == 0 {
		t.Fatal("no recovery records despite declared deaths")
	}
	if recs[0].DetectedAt > sim.Time(10*sim.Second) {
		t.Fatalf("first detection at %v, want within 10s", recs[0].DetectedAt)
	}
}

// TestRestartRejoinsAndRebalances kills a loaded server, waits for
// recovery, restarts it and verifies the full rejoin path: the process
// re-enlists, receives tablets by migration, and the data stays readable
// and writable afterwards.
func TestRestartRejoinsAndRebalances(t *testing.T) {
	eng := sim.New(13)
	cl := NewCluster(eng, smallProfile(), 4, 2)
	cl.Start()
	table := cl.CreateTable("t")
	cl.BulkLoad(table, 800, 512)
	c := cl.NewClient()
	eng.Go("app", func(p *sim.Proc) {
		cl.KillServer(1)
		for len(cl.Coord.Records()) < 1 {
			p.Sleep(250 * sim.Millisecond)
			if p.Now() > sim.Time(3*sim.Minute) {
				t.Error("recovery stalled")
				break
			}
		}
		if !cl.RestartServer(1) {
			t.Error("RestartServer returned false for a dead server")
		}
		for cl.Coord.RespreadsPending() > 0 {
			p.Sleep(250 * sim.Millisecond)
			if p.Now() > sim.Time(5*sim.Minute) {
				t.Error("tablet re-spread stalled")
				break
			}
		}
		for i := 0; i < 800; i++ {
			if n, _, err := c.Read(p, table, ycsb.Key(i)); err != nil || n != 512 {
				t.Errorf("record %d unreadable after rejoin: n=%d err=%v", i, n, err)
				break
			}
		}
		// Writes must land too — including on migrated tablets.
		for i := 0; i < 100; i++ {
			if err := c.Write(p, table, ycsb.Key(i), 256, nil); err != nil {
				t.Errorf("write %d after rejoin: %v", i, err)
				break
			}
		}
		cl.StopMetering()
		eng.Stop()
	})
	eng.Run()
	eng.Shutdown()

	if cl.Servers[1].Dead() {
		t.Fatal("restarted server is dead")
	}
	if cl.Coord.TabletsMigrated() == 0 {
		t.Fatal("no tablets migrated to the restarted server")
	}
	owned := 0
	for _, tb := range cl.Coord.TabletMapDirect() {
		if tb.Master == 2 { // server index 1 = id 2
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("restarted server owns no tablets after rebalance")
	}
	if n := len(cl.Coord.AliveServers()); n != 4 {
		t.Fatalf("alive = %d, want 4", n)
	}
}

// TestRestartLiveServerRefuses: restarting a server that never died is a
// no-op returning false.
func TestRestartLiveServerRefuses(t *testing.T) {
	eng := sim.New(14)
	cl := NewCluster(eng, smallProfile(), 2, 0)
	cl.Start()
	restarted := true
	eng.Go("app", func(p *sim.Proc) {
		p.Sleep(sim.Second)
		restarted = cl.RestartServer(0)
		cl.StopMetering()
		eng.Stop()
	})
	eng.Run()
	eng.Shutdown()
	if restarted {
		t.Fatal("RestartServer(live) returned true")
	}
}

// TestScenarioFaultScheduleKillRestart drives the whole FaultEvent path
// through Run: a scenario-level kill at 2s and restart at 5s must produce
// a detected death, a completed recovery, a successful rejoin with
// migrated tablets, and no controller timeout.
func TestScenarioFaultScheduleKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an 8s fault scenario")
	}
	res := Run(Scenario{
		Name:    "faults-kill-restart",
		Profile: smallProfile(),
		Servers: 3,
		RF:      2,
		Seed:    5,
		Groups: []ClientGroup{{
			Name: "load", Clients: 4,
			Workload: ycsb.WorkloadB(5_000, 512),
			Stop:     8 * sim.Second,
		}},
		Faults: []FaultEvent{
			{At: 2 * sim.Second, Kind: FaultKill, Target: 1},
			{At: 5 * sim.Second, Kind: FaultRestart, Target: 1},
		},
	})
	if res.KilledAt != sim.Time(2*sim.Second) {
		t.Fatalf("KilledAt = %v, want 2s", res.KilledAt)
	}
	if !res.Recovered || res.RecoveryTimedOut {
		t.Fatalf("recovered=%v timedOut=%v", res.Recovered, res.RecoveryTimedOut)
	}
	if res.DetectTime <= 0 || res.DetectTime > 2*sim.Second {
		t.Fatalf("DetectTime = %v, want (0, 2s]", res.DetectTime)
	}
	if !res.Rejoined || res.RejoinedAt < sim.Time(5*sim.Second) {
		t.Fatalf("rejoined=%v at %v", res.Rejoined, res.RejoinedAt)
	}
	if res.TabletsMigrated == 0 {
		t.Fatal("no tablets migrated after rejoin")
	}
	if res.TotalOps == 0 {
		t.Fatal("no operations completed")
	}
}

// TestScenarioKillAfterLowersOntoFaults: the legacy pair and the explicit
// one-event schedule must run the exact same simulation.
func TestScenarioKillAfterLowersOntoFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two kill scenarios")
	}
	base := Scenario{
		Name:              "lowered-kill",
		Profile:           smallProfile(),
		Servers:           3,
		RF:                2,
		Clients:           4,
		Workload:          ycsb.WorkloadB(5_000, 512),
		RequestsPerClient: 2_000,
		Seed:              6,
	}
	legacy := base
	legacy.KillAfter, legacy.KillTarget = 2*sim.Second, 1
	explicit := base
	explicit.Faults = []FaultEvent{{At: 2 * sim.Second, Kind: FaultKill, Target: 1}}

	a, b := Run(legacy), Run(explicit)
	if a.TotalOps != b.TotalOps || a.KilledAt != b.KilledAt ||
		a.RecoveryTime != b.RecoveryTime || a.DetectTime != b.DetectTime {
		t.Fatalf("legacy and explicit kill diverge:\nlegacy:   ops=%d killed=%v rec=%v det=%v\nexplicit: ops=%d killed=%v rec=%v det=%v",
			a.TotalOps, a.KilledAt, a.RecoveryTime, a.DetectTime,
			b.TotalOps, b.KilledAt, b.RecoveryTime, b.DetectTime)
	}
}
