package core

import (
	"fmt"

	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

// This file regenerates the read-only characterization: Fig. 1a/1b,
// Fig. 2 and Table I (Section IV of the paper).

func init() {
	Register(Experiment{ID: "fig1a", Order: 10, Title: "Aggregated read-only throughput vs cluster size", Setup: "workload C, RF 0, servers {1,5,10} x clients {1,10,30}", Run: runFig1a, Scenarios: fig1Grid})
	Register(Experiment{ID: "fig1b", Order: 20, Title: "Average power per server (read-only)", Setup: "same grid as fig1a", Run: runFig1b, Scenarios: fig1Grid})
	Register(Experiment{ID: "fig2", Order: 30, Title: "Energy efficiency (op/J) of read-only runs", Setup: "same grid as fig1a", Run: runFig2, Scenarios: fig1Grid})
	Register(Experiment{ID: "table1", Order: 40, Title: "Min-max CPU usage per node (read-only)", Setup: "servers {1,5,10} x clients {0..5,10,30}", Run: runTable1, Scenarios: table1Grid})
	Register(Experiment{ID: "table2", Order: 50, Title: "Throughput of workloads A/B/C on 10 servers", Setup: "RF 0, 100K records, clients {10..90}", Run: runTable2, Scenarios: table2Grid})
	Register(Experiment{ID: "fig3", Order: 60, Title: "Scalability factor vs 10-client baseline", Setup: "derived from table2", Run: runFig3, Scenarios: table2Grid})
	Register(Experiment{ID: "fig4a", Order: 70, Title: "Average power per node, 20 servers", Setup: "A/B/C x clients {10..90}", Run: runFig4a, Scenarios: fig4Grid})
	Register(Experiment{ID: "fig4b", Order: 80, Title: "Total energy at 90 clients by workload", Setup: "20 servers", Run: runFig4b, Scenarios: fig4Grid})
}

var fig1Servers = []int{1, 5, 10}
var fig1Clients = []int{1, 10, 30}

// fig1Scenario is one cell of the Fig. 1 grid (shared by fig1a/1b/2).
func fig1Scenario(o Options, servers, clients int) Scenario {
	return Scenario{
		Name:              "fig1",
		Profile:           o.Profile,
		Servers:           servers,
		Clients:           clients,
		RF:                0,
		Workload:          ycsb.WorkloadC(o.records(5_000_000), 1024),
		RequestsPerClient: o.requests(40_000),
		Seed:              o.Seed,
	}
}

func fig1Cell(o Options, servers, clients int) *Result {
	return runMemo(fig1Scenario(o, servers, clients))
}

func fig1Grid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for _, srv := range fig1Servers {
		for _, cl := range fig1Clients {
			out = append(out, fig1Scenario(o, srv, cl))
		}
	}
	return out
}

// paperFig1a holds the paper's approximate Fig. 1a readings (Kop/s);
// negative means the paper does not report the cell numerically.
var paperFig1a = map[[2]int]float64{
	{1, 30}: 372, // "reaches its limit at 30 clients for ... 372Kreq/s"
}

func runFig1a(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "fig1a", Title: "Read-only aggregated throughput",
		Setup: fmt.Sprintf("workload C, RF 0, %d reqs/client, scale %.2f", o.requests(40_000), o.Scale)}
	t := Table{Header: []string{"servers", "clients", "throughput", "paper"}}
	for _, srv := range fig1Servers {
		for _, cl := range fig1Clients {
			r := fig1Cell(o, srv, cl)
			paper := "-"
			if v, ok := paperFig1a[[2]int{srv, cl}]; ok {
				paper = fmt.Sprintf("%.0fK", v)
			}
			t.Rows = append(t.Rows, []string{
				itoa(srv), itoa(cl), kops(r.Throughput), paper,
			})
		}
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"paper shape: single server saturates ~372K; 5 servers scale linearly; 10 servers add nothing (client-limited)")
	return res
}

func runFig1b(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "fig1b", Title: "Average power per server (read-only)",
		Setup: "same grid as fig1a"}
	paper := map[[2]int]string{
		{1, 1}: "92W", {5, 1}: "93W", {10, 1}: "95W",
		{1, 10}: "122-127W", {5, 10}: "122-127W", {10, 10}: "122-127W",
		{1, 30}: "122-127W", {5, 30}: "122-127W", {10, 30}: "122-127W",
	}
	t := Table{Header: []string{"servers", "clients", "watts/server", "paper"}}
	for _, srv := range fig1Servers {
		for _, cl := range fig1Clients {
			r := fig1Cell(o, srv, cl)
			p := paper[[2]int{srv, cl}]
			t.Rows = append(t.Rows, []string{
				itoa(srv), itoa(cl), fmt.Sprintf("%.1fW", r.AvgPowerPerServer), p,
			})
		}
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"paper shape: power rises with load but is non-proportional - same watts for different throughputs")
	return res
}

func runFig2(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "fig2", Title: "Energy efficiency (op/J), read-only",
		Setup: "same grid as fig1a"}
	t := Table{Header: []string{"servers", "clients", "op/J", "paper"}}
	paper := map[[2]int]string{{1, 30}: "~3000"}
	for _, srv := range fig1Servers {
		for _, cl := range fig1Clients {
			r := fig1Cell(o, srv, cl)
			p := paper[[2]int{srv, cl}]
			if p == "" {
				p = "-"
			}
			t.Rows = append(t.Rows, []string{
				itoa(srv), itoa(cl), fmt.Sprintf("%.0f", r.OpsPerJoule), p,
			})
		}
	}
	// Headline ratio: single server vs 10 servers at 30 clients.
	one := fig1Cell(o, 1, 30).OpsPerJoule
	ten := fig1Cell(o, 10, 30).OpsPerJoule
	res.Tables = []Table{t}
	if ten > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"efficiency(1 server)/efficiency(10 servers) at 30 clients = %.1fx (paper: ~7.6x)", one/ten))
	}
	res.Notes = append(res.Notes,
		"paper shape: best efficiency with the fewest servers at the highest load")
	return res
}

// paperTable1 holds Table I's per-cell CPU ranges (single-server column
// uses avg; multi-server columns min-max).
var paperTable1 = map[int][3]string{
	0:  {"25", "25 - 25", "25 - 25"},
	1:  {"49.8", "49.7 - 49.8", "49.6 - 49.9"},
	2:  {"74.2", "72.1 - 72.7", "62.6 - 63.9"},
	3:  {"79.7", "74.0 - 74.4", "72.2 - 73.3"},
	4:  {"89.8", "77.8 - 78.7", "74.3 - 75.3"},
	5:  {"94.3", "84.9 - 86.0", "75.9 - 77.0"},
	10: {"98.4", "96.9 - 97.4", "91.9 - 93.1"},
	30: {"99.3", "96.8 - 97.2", "94.9 - 96.0"},
}

var table1Clients = []int{0, 1, 2, 3, 4, 5, 10, 30}

// table1Scenario is one cell of Table I: clients == 0 is the idle
// measurement (5 s without load), otherwise a loaded run.
func table1Scenario(o Options, servers, clients int) Scenario {
	if clients == 0 {
		return Scenario{
			Name: "table1-idle", Profile: o.Profile, Servers: servers, Clients: 0,
			Workload:    ycsb.WorkloadC(o.records(5_000_000), 1024),
			IdleSeconds: 5, Seed: o.Seed,
		}
	}
	return Scenario{
		Name: "table1", Profile: o.Profile, Servers: servers, Clients: clients,
		Workload:          ycsb.WorkloadC(o.records(5_000_000), 1024),
		RequestsPerClient: o.requests(40_000),
		Seed:              o.Seed,
	}
}

func table1Grid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for _, cl := range table1Clients {
		for _, srv := range fig1Servers {
			out = append(out, table1Scenario(o, srv, cl))
		}
	}
	return out
}

func runTable1(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "table1", Title: "Min-max CPU usage (%), read-only",
		Setup: "workload C, RF 0; paper / measured per cell"}
	t := Table{Header: []string{"clients", "1 server", "5 servers", "10 servers"}}
	for _, cl := range table1Clients {
		row := []string{itoa(cl)}
		for i, srv := range fig1Servers {
			r := runMemo(table1Scenario(o, srv, cl))
			var cell string
			if cl == 0 {
				cell = fmt.Sprintf("%.1f", r.CPUMax*100)
			} else {
				cell = fmt.Sprintf("%.1f - %.1f", r.CPUMin*100, r.CPUMax*100)
			}
			row = append(row, paperVs(paperTable1[cl][i], cell))
		}
		t.Rows = append(t.Rows, row)
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"paper shape: 25% floor when idle (pinned dispatch core); ~+25% per active worker; CPU saturates before throughput")
	return res
}

// tableTwoScenario is one cell of the Table II grid (10 servers, shared
// by table2 and fig3).
func tableTwoScenario(o Options, servers, clients int, wl string) Scenario {
	return Scenario{
		Name:              "table2",
		Profile:           o.Profile,
		Servers:           servers,
		Clients:           clients,
		RF:                0,
		Workload:          workloadFor(wl, 100_000, 1024),
		RequestsPerClient: o.requests(20_000),
		Seed:              o.Seed,
	}
}

func tableTwoCell(o Options, servers, clients int, wl string) *Result {
	return runMemo(tableTwoScenario(o, servers, clients, wl))
}

func table2Grid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for _, cl := range table2Clients {
		for _, wl := range []string{"A", "B", "C"} {
			out = append(out, tableTwoScenario(o, 10, cl, wl))
		}
	}
	return out
}

// paperTable2 holds Table II (Kop/s) for 10 servers.
var paperTable2 = map[string]map[int]float64{
	"A": {10: 98, 20: 106, 30: 64, 60: 63, 90: 64},
	"B": {10: 236, 20: 454, 30: 622, 60: 816, 90: 844},
	"C": {10: 236, 20: 482, 30: 753, 60: 1433, 90: 2004},
}

var table2Clients = []int{10, 20, 30, 60, 90}

func runTable2(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "table2", Title: "Aggregated throughput (Kop/s), 10 servers",
		Setup: fmt.Sprintf("RF 0, 100K records, %d reqs/client; paper / measured", o.requests(20_000))}
	t := Table{Header: []string{"clients", "A", "B", "C"}}
	for _, cl := range table2Clients {
		row := []string{itoa(cl)}
		for _, wl := range []string{"A", "B", "C"} {
			r := tableTwoCell(o, 10, cl, wl)
			row = append(row, paperVs(fmt.Sprintf("%.0fK", paperTable2[wl][cl]), kops(r.Throughput)))
		}
		t.Rows = append(t.Rows, row)
	}
	res.Tables = []Table{t}
	a90 := tableTwoCell(o, 10, 90, "A").Throughput
	c90 := tableTwoCell(o, 10, 90, "C").Throughput
	if a90 > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"C/A throughput ratio at 90 clients = %.0fx (paper: 31x)", c90/a90))
	}
	return res
}

func runFig3(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "fig3", Title: "Scalability factor (baseline: 10 clients)",
		Setup: "derived from table2 runs"}
	t := Table{Header: []string{"clients", "read-only", "read-heavy", "update-heavy", "perfect"}}
	base := map[string]float64{}
	for _, wl := range []string{"A", "B", "C"} {
		base[wl] = tableTwoCell(o, 10, 10, wl).Throughput
	}
	for _, cl := range table2Clients {
		row := []string{itoa(cl)}
		for _, wl := range []string{"C", "B", "A"} {
			r := tableTwoCell(o, 10, cl, wl)
			row = append(row, fmt.Sprintf("%.2f", r.Throughput/base[wl]))
		}
		row = append(row, fmt.Sprintf("%.1f", float64(cl)/10))
		t.Rows = append(t.Rows, row)
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"paper shape: read-only tracks perfect scaling; read-heavy collapses between 30 and 60; update-heavy never scales")
	return res
}

func fig4Scenario(o Options, clients int, wl string) Scenario {
	return Scenario{
		Name:              "fig4",
		Profile:           o.Profile,
		Servers:           20,
		Clients:           clients,
		RF:                0,
		Workload:          workloadFor(wl, 100_000, 1024),
		RequestsPerClient: o.requests(20_000),
		Seed:              o.Seed,
	}
}

func fig4Cell(o Options, clients int, wl string) *Result {
	return runMemo(fig4Scenario(o, clients, wl))
}

func fig4Grid(o Options) []Scenario {
	o = o.normalize()
	var out []Scenario
	for _, cl := range table2Clients {
		for _, wl := range []string{"C", "B", "A"} {
			out = append(out, fig4Scenario(o, cl, wl))
		}
	}
	return out
}

func runFig4a(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "fig4a", Title: "Average power per node (W), 20 servers",
		Setup: "RF 0; paper / measured"}
	paper := map[string]map[int]string{
		"C": {10: "82", 20: "82", 30: "82", 60: "82", 90: "93"},
		"B": {10: "92", 20: "92", 30: "92", 60: "92", 90: "100"},
		"A": {10: "90", 20: "90", 30: "95", 60: "100", 90: "110"},
	}
	t := Table{Header: []string{"clients", "read-only C", "read-heavy B", "update-heavy A"}}
	for _, cl := range table2Clients {
		row := []string{itoa(cl)}
		for _, wl := range []string{"C", "B", "A"} {
			r := fig4Cell(o, cl, wl)
			row = append(row, paperVs(paper[wl][cl], fmt.Sprintf("%.0f", r.AvgPowerPerServer)))
		}
		t.Rows = append(t.Rows, row)
	}
	res.Tables = []Table{t}
	return res
}

func runFig4b(o Options) *ExpResult {
	o = o.normalize()
	res := &ExpResult{ID: "fig4b", Title: "Total energy at 90 clients (KJ), 20 servers",
		Setup: "RF 0; same requests per run for all workloads"}
	t := Table{Header: []string{"workload", "energy", "vs C"}}
	energies := map[string]float64{}
	for _, wl := range []string{"C", "B", "A"} {
		r := fig4Cell(o, 90, wl)
		energies[wl] = r.TotalJoules
	}
	for _, wl := range []string{"C", "B", "A"} {
		t.Rows = append(t.Rows, []string{
			wl, fmt.Sprintf("%.1fKJ", energies[wl]/1000),
			fmt.Sprintf("%.2fx", energies[wl]/energies["C"]),
		})
	}
	res.Tables = []Table{t}
	res.Notes = append(res.Notes,
		"paper: B consumes 1.28x the energy of C; A consumes 4.92x (Finding 2)")
	return res
}

var _ = sim.Second // keep sim imported for scenario literals in this file
