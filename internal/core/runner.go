package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the concurrent scenario execution layer. Every figure and
// table is produced from independent sim.Engine instances, so distinct
// scenarios can run on separate OS threads; what must stay serial is only
// the rendering (output order) and the aggregation of multi-seed sweeps
// (float summation order). Three pieces cooperate:
//
//   - The scenario memo is singleflight: the first request for a key runs
//     it, concurrent requests for the same key park on the entry's done
//     channel and share the one *Result. Prewarming and rendering can
//     therefore overlap without ever duplicating a simulation.
//   - Runner is a bounded worker pool. The bound is also the peak-memory
//     budget for sweeps: at most Workers() un-rendered Results are in
//     flight at once (a 40-point seed sweep reduces each Result to four
//     scalars as it completes instead of holding 40 histogram sets live).
//   - Experiments declare their scenario grid up-front (Experiment.
//     Scenarios), so Prewarm can pump every cell of every requested
//     experiment through the pool before the sequential render pass,
//     which then finds a warm memo and emits byte-identical output in
//     the exact order a serial run would.

// Default process-wide parallelism; 0 means GOMAXPROCS at the time of use.
var defaultParallelism atomic.Int32

// Parallelism returns the process-wide default for concurrent scenario
// simulations (GOMAXPROCS unless SetParallelism overrode it).
func Parallelism() int {
	if n := defaultParallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetParallelism sets the process-wide default for concurrent scenario
// simulations (the -j flag of the cmd binaries); n <= 0 restores the
// GOMAXPROCS default. It returns the previous setting (0 = GOMAXPROCS).
func SetParallelism(n int) int {
	if n < 0 {
		n = 0
	}
	return int(defaultParallelism.Swap(int32(n)))
}

// Process-wide intra-scenario parallelism: the number of event lanes one
// scenario's sharded engine may use (the -lanes flag; 1 = the classic
// single-threaded engine). Unlike -j this is a pure execution knob, not a
// scenario parameter: an eligible scenario renders byte-identically at
// any lane count (CI diffs -lanes 1 vs 8 full captures), and scenarios
// outside the eligible set run the exact legacy path regardless, so the
// memo key deliberately does not cover it.
var defaultLanes atomic.Int32

// Lanes returns the process-wide intra-scenario lane count (>= 1).
func Lanes() int {
	if n := defaultLanes.Load(); n > 1 {
		return int(n)
	}
	return 1
}

// SetLanes sets the process-wide intra-scenario lane count; n <= 1
// restores the single-threaded engine. It returns the previous setting.
func SetLanes(n int) int {
	if n < 1 {
		n = 1
	}
	prev := int(defaultLanes.Swap(int32(n)))
	if prev < 1 {
		prev = 1
	}
	return prev
}

// Scenario memo with singleflight semantics. Several figures reuse the
// same grid (e.g. fig1a/fig1b/fig2), so identical scenarios run once per
// process; concurrent requests for an in-flight scenario share that run.
var (
	memoMu   sync.Mutex
	memo     = map[string]*memoEntry{}
	memoRuns atomic.Int64 // simulations actually executed (not joined)
)

type memoEntry struct {
	done     chan struct{}
	res      *Result // set before done is closed; nil if the run panicked
	panicked any     // the owning run's panic value, re-raised on joiners
}

func runMemo(s Scenario) *Result {
	key := memoKey(s)
	memoMu.Lock()
	if e, ok := memo[key]; ok {
		memoMu.Unlock()
		<-e.done
		if e.panicked != nil {
			// The owning run panicked (a programming error in the scenario):
			// surface the same panic on every joiner instead of re-paying
			// the simulation just to hit it again.
			panic(e.panicked)
		}
		return e.res
	}
	e := &memoEntry{done: make(chan struct{})}
	memo[key] = e
	memoMu.Unlock()

	defer func() {
		if p := recover(); p != nil { // Run panicked: drop the entry, re-raise
			e.panicked = p
			memoMu.Lock()
			if memo[key] == e {
				delete(memo, key)
			}
			memoMu.Unlock()
			close(e.done)
			panic(p)
		}
		close(e.done)
	}()
	memoRuns.Add(1)
	e.res = Run(s)
	return e.res
}

// MemoRuns reports how many scenario simulations have actually executed
// (memo misses). The singleflight tests assert on its deltas.
func MemoRuns() int64 { return memoRuns.Load() }

// ResetMemo drops every memoized scenario result, releasing their
// histograms and series for garbage collection. Long-lived embedders that
// render many one-off experiments (the memo is process-global and grows
// with every distinct scenario) call this between batches. Runs already
// in flight complete against their old entries — joined callers still get
// their shared Result — but are not re-added, so a concurrent ResetMemo
// never hands out a stale entry for a new request.
func ResetMemo() {
	memoMu.Lock()
	memo = map[string]*memoEntry{}
	memoMu.Unlock()
}

// Runner executes distinct scenarios concurrently on a bounded worker
// pool. The zero worker count (and NewRunner(0)) means GOMAXPROCS; a
// one-worker Runner degenerates to the serial path with no goroutines.
type Runner struct {
	workers int
}

// NewRunner returns a pool that runs at most workers scenario simulations
// at a time; workers <= 0 selects the process default (Parallelism()).
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = Parallelism()
	}
	return &Runner{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (r *Runner) Workers() int { return r.workers }

// each executes fn(i) for every i in [0, n) with at most r.workers calls
// in flight. Workers pull indices from a shared counter, so early-
// finishing workers steal remaining cells instead of idling. A panic in
// fn is re-raised on the calling goroutine after the pool drains, so an
// embedder's recover sees it exactly as it would on the serial path (a
// panicking worker stops pulling cells; the rest finish theirs).
func (r *Runner) each(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	w := r.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	for k := 0; k < w; k++ {
		wg.Add(1)
		//rcvet:allow goroutine pool workers run whole simulations, each on its own private Engine; results are folded in deterministic index order after wg.Wait, so scheduling cannot reach rendered output
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicked = p })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// RunAll pumps the scenarios through the singleflight memo, at most
// Workers() at a time, and returns their results in input order.
// Duplicate scenarios in the input share one simulation.
func (r *Runner) RunAll(scenarios []Scenario) []*Result {
	out := make([]*Result, len(scenarios))
	r.each(len(scenarios), func(i int) {
		out[i] = runMemo(scenarios[i])
	})
	return out
}

// Prewarm enumerates the scenario grids of the given experiments (those
// that declare one — custom-simulation experiments like fig10 have none)
// and pumps the deduplicated set through the pool. A subsequent
// sequential Run/Render pass finds every cell memoized, so the output is
// byte-identical to a serial run while the simulations themselves used
// every worker.
func (r *Runner) Prewarm(exps []Experiment, o Options) {
	// Normalize once: grids enumerated from raw Options would otherwise
	// key on a zero Profile/Scale/Seed and never match the cells the
	// normalized Run path requests (wasted simulations, serial render).
	o = o.normalize()
	var grid []Scenario
	seen := map[string]bool{}
	for _, e := range exps {
		if e.Scenarios == nil {
			continue
		}
		for _, s := range e.Scenarios(o) {
			key := memoKey(s)
			if seen[key] {
				continue
			}
			seen[key] = true
			grid = append(grid, s)
		}
	}
	r.each(len(grid), func(i int) {
		runMemo(grid[i])
	})
}
