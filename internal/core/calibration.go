// Package core is the characterization engine — the paper's contribution.
// It assembles simulated Grid'5000 clusters, runs the paper's measurement
// scenarios on them (YCSB workloads, replication sweeps, crash-recovery
// drills), and regenerates every table and figure of the evaluation.
package core

import (
	"ramcloud/internal/client"
	"ramcloud/internal/coordinator"
	"ramcloud/internal/energy"
	"ramcloud/internal/machine"
	"ramcloud/internal/server"
	"ramcloud/internal/simdisk"
	"ramcloud/internal/simnet"
)

// Profile bundles every calibrated constant that substitutes for the
// physical testbed. Each value is fitted to evidence in the paper:
//
//   - Power: P = 61 + 62*cpu ( +5*disk +3*nic ) watts, fitted to
//     (49.8% CPU, 92 W) and (98.4% CPU, 122 W) from Fig. 1b / Table I.
//   - Dispatch cost ~2.4 us: single-server read ceiling ~372 Kop/s.
//   - Client read overhead ~30 us: per-client closed-loop read rate of
//     ~23-28 Kop/s (Table II workload C).
//   - Client update overhead ~95 us and write-path contention: Table II
//     workload A (98K -> 106K -> 64K collapse).
//   - Worker spin 400 us + LIFO wake: Table I CPU floors (25% idle, ~50%
//     at 1 client, ~75% at 2, saturating near 100%).
//   - Disk 130/110 MB/s + 6 ms alternation seek: Figs. 11-12 recovery
//     behaviour.
//   - Infiniband-20G: 2.3 us one-way, 2.3 GB/s per NIC.
type Profile struct {
	Machine     machine.Spec
	Power       energy.PowerModel
	Net         simnet.Config
	Disk        simdisk.Config
	Server      server.Config
	Client      client.Config
	Coordinator coordinator.Config
}

// DefaultProfile returns the Grid'5000 Nancy calibration used for every
// experiment in EXPERIMENTS.md.
func DefaultProfile() Profile {
	return Profile{
		Machine:     machine.Grid5000Nancy(),
		Power:       energy.DefaultPowerModel(),
		Net:         simnet.DefaultConfig(),
		Disk:        simdisk.DefaultConfig(),
		Server:      server.DefaultConfig(),
		Client:      client.DefaultConfig(),
		Coordinator: coordinator.DefaultConfig(),
	}
}
