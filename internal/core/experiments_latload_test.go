package core

import "testing"

// The latload acceptance properties at a cheap scale: p99 read latency is
// monotone in offered load with a decisive saturation knee. Workload A's
// knee is cheap (8 Kop/s capacity), so its whole sweep is checked; B and
// C are spot-checked below capacity vs past it to bound test cost.
func TestLatLoadHockeyStick(t *testing.T) {
	o := Options{Scale: 0.2, Seed: 42}.normalize()

	sweepA := latLoadSweeps[0]
	if sweepA.wl != "A" {
		t.Fatalf("sweep 0 is %q, want A", sweepA.wl)
	}
	var prev int64 = -1
	var first, last int64
	for i, frac := range sweepA.fractions {
		r := runMemo(latLoadScenario(o, sweepA, frac))
		p99 := r.ReadLatency.Quantile(0.99)
		if p99 < prev {
			t.Errorf("workload A p99 not monotone: %dns at %.2fx < %dns at %.2fx",
				p99, frac, prev, sweepA.fractions[i-1])
		}
		prev = p99
		if i == 0 {
			first = p99
		}
		last = p99
	}
	if first <= 0 || last < 20*first {
		t.Errorf("workload A knee not visible: trough p99 %dns, peak p99 %dns", first, last)
	}

	for _, sw := range latLoadSweeps[1:] {
		lo := runMemo(latLoadScenario(o, sw, sw.fractions[2]))
		hi := runMemo(latLoadScenario(o, sw, sw.fractions[len(sw.fractions)-1]))
		lo99 := lo.ReadLatency.Quantile(0.99)
		hi99 := hi.ReadLatency.Quantile(0.99)
		if lo99 <= 0 || hi99 < 100*lo99 {
			t.Errorf("workload %s knee not visible: p99 %dns below capacity vs %dns past it", sw.wl, lo99, hi99)
		}
		// Past saturation the server must be delivering at (or below) its
		// capacity while the sweep offers more: the open loop queues.
		offered := sw.capacity * sw.fractions[len(sw.fractions)-1]
		if hi.Throughput >= offered {
			t.Errorf("workload %s delivered %.0f >= offered %.0f past the knee", sw.wl, hi.Throughput, offered)
		}
	}
}
