// Package wire defines the RPC message vocabulary of the storage system and
// a compact binary codec for it. The simulated fabric passes message structs
// by reference for speed, but every message has an exact on-wire size
// (computed by Size) that drives network transfer timing, and Marshal /
// Unmarshal implement the real encoding for fidelity tests and external
// tooling.
//
// Values may be "virtual": a message can declare ValueLen without carrying
// the bytes (Value == nil). Size always accounts the declared length, which
// lets large experiments run without materializing gigabytes of payload
// while keeping transfer times faithful.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op identifies a message type on the wire.
type Op uint8

// Message opcodes. Start at one so an accidental zero is caught.
const (
	OpReadReq Op = iota + 1
	OpReadResp
	OpWriteReq
	OpWriteResp
	OpDeleteReq
	OpDeleteResp
	OpCreateTableReq
	OpCreateTableResp
	OpDropTableReq
	OpDropTableResp
	OpGetTabletMapReq
	OpGetTabletMapResp
	OpEnlistReq
	OpEnlistResp
	OpPingReq
	OpPingResp
	OpSetWillReq
	OpSetWillResp
	OpOpenSegmentReq
	OpOpenSegmentResp
	OpReplicateReq
	OpReplicateResp
	OpCloseSegmentReq
	OpCloseSegmentResp
	OpFreeReplicasReq
	OpFreeReplicasResp
	OpSegmentInventoryReq
	OpSegmentInventoryResp
	OpGetRecoveryDataReq
	OpGetRecoveryDataResp
	OpRecoverReq
	OpRecoverResp
	OpRecoveryDoneReq
	OpRecoveryDoneResp
	OpRDMAWriteReq
	OpRDMAWriteResp
	OpMultiReadReq
	OpMultiReadResp
	OpMultiWriteReq
	OpMultiWriteResp
	OpMigrateTabletReq
	OpMigrateTabletResp
	OpTakeTabletReq
	OpTakeTabletResp
	OpEnlistAddrReq
	OpEnlistAddrResp
	OpServerListReq
	OpServerListResp
	OpAssignTabletsReq
	OpAssignTabletsResp
)

// Status is the result code carried by every response.
type Status uint8

// Response status codes.
const (
	StatusOK Status = iota + 1
	StatusUnknownTable
	StatusUnknownKey
	StatusWrongServer
	StatusRecovering
	StatusRetry
	StatusError
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusUnknownTable:
		return "UNKNOWN_TABLE"
	case StatusUnknownKey:
		return "UNKNOWN_KEY"
	case StatusWrongServer:
		return "WRONG_SERVER"
	case StatusRecovering:
		return "RECOVERING"
	case StatusRetry:
		return "RETRY"
	case StatusError:
		return "ERROR"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// headerSize covers op (1), rpc id (8) and total length (4).
const headerSize = 1 + 8 + 4

// HeaderSize is the envelope header length: opcode (1 byte), RPC id (8)
// and total frame length (4). The length field makes a marshaled
// envelope self-framing, which is what the transport's frame reader
// relies on.
const HeaderSize = headerSize

// MaxEnvelopeSize is the hard upper bound on a marshaled envelope. The
// largest legitimate frames are recovery responses carrying one 8 MB
// segment's objects; 64 MiB leaves generous headroom while keeping a
// hostile length prefix from driving an arbitrary-size allocation in
// the frame reader.
const MaxEnvelopeSize = 64 << 20

// Object is one log record crossing the wire (replication, recovery).
type Object struct {
	Table     uint64
	KeyHash   uint64
	Key       []byte
	ValueLen  uint32
	Value     []byte // nil when the payload is virtual
	Version   uint64
	Tombstone bool
}

// Tablet describes one key-hash range of a table and its owning master.
type Tablet struct {
	Table      uint64
	StartHash  uint64
	EndHash    uint64 // inclusive
	Master     int32
	Recovering bool
}

// SegmentInfo identifies a sealed replica held by a backup.
type SegmentInfo struct {
	Segment uint64
	Bytes   uint32
}

// SegmentLoc tells a recovery master where to fetch a segment from.
type SegmentLoc struct {
	Segment uint64
	Backup  int32
	Bytes   uint32
}

// WillPartition is one key-hash range in a master's recovery will.
type WillPartition struct {
	FirstHash uint64
	LastHash  uint64
}

// Client data plane --------------------------------------------------------

// ReadReq fetches one object.
type ReadReq struct {
	Table uint64
	Key   []byte
}

// ReadResp returns one object's value.
type ReadResp struct {
	Status   Status
	Version  uint64
	ValueLen uint32
	Value    []byte
}

// WriteReq inserts or overwrites one object.
type WriteReq struct {
	Table    uint64
	Key      []byte
	ValueLen uint32
	Value    []byte
}

// WriteResp acknowledges a durable write.
type WriteResp struct {
	Status  Status
	Version uint64
}

// DeleteReq removes one object.
type DeleteReq struct {
	Table uint64
	Key   []byte
}

// DeleteResp acknowledges a delete.
type DeleteResp struct {
	Status  Status
	Version uint64
}

// MultiReadItem is one lookup in a MultiRead batch.
type MultiReadItem struct {
	Table uint64
	Key   []byte
}

// MultiReadResult is one item's outcome in a MultiReadResp. Items are
// positional: result i answers request item i.
type MultiReadResult struct {
	Status   Status
	Version  uint64
	ValueLen uint32
	Value    []byte // nil when the payload is virtual
}

// MultiReadReq fetches a batch of objects in one RPC. The client partitions
// a multi-read by tablet owner, so every item addresses (or is believed to
// address) the receiving master; items that moved come back with
// StatusWrongServer individually while the rest of the batch succeeds.
type MultiReadReq struct {
	Items []MultiReadItem
}

// MultiReadResp carries per-item results. Status is the RPC-level status;
// per-item codes live in the items themselves.
type MultiReadResp struct {
	Status Status
	Items  []MultiReadResult
}

// MultiWriteItem is one insert/overwrite in a MultiWrite batch.
type MultiWriteItem struct {
	Table    uint64
	Key      []byte
	ValueLen uint32
	Value    []byte // nil when the payload is virtual
}

// MultiWriteResult is one item's outcome in a MultiWriteResp (positional).
type MultiWriteResult struct {
	Status  Status
	Version uint64
}

// MultiWriteReq writes a batch of objects in one RPC. The whole batch is
// appended under a single log-head acquisition and replicated in one
// fan-out per segment, which is where batching recovers the throughput the
// paper's per-op writes lose to contention.
type MultiWriteReq struct {
	Items []MultiWriteItem
}

// MultiWriteResp carries per-item results.
type MultiWriteResp struct {
	Status Status
	Items  []MultiWriteResult
}

// Coordinator control plane ------------------------------------------------

// CreateTableReq creates a table spanning ServerSpan masters (the paper sets
// ServerSpan equal to the cluster size for uniform distribution).
type CreateTableReq struct {
	Name       string
	ServerSpan uint32
}

// CreateTableResp returns the new table's id.
type CreateTableResp struct {
	Status Status
	Table  uint64
}

// DropTableReq removes a table by name.
type DropTableReq struct {
	Name string
}

// DropTableResp acknowledges a drop.
type DropTableResp struct {
	Status Status
}

// GetTabletMapReq fetches the current tablet configuration.
type GetTabletMapReq struct{}

// GetTabletMapResp carries the full tablet map.
type GetTabletMapResp struct {
	Status  Status
	Tablets []Tablet
}

// EnlistReq registers a server with the coordinator.
type EnlistReq struct {
	Node        int32
	MemoryBytes int64
	HasBackup   bool
}

// EnlistResp returns the server's cluster id.
type EnlistResp struct {
	Status   Status
	ServerID int32
}

// PingReq is the failure-detector probe.
type PingReq struct {
	Seq uint64
}

// PingResp answers a probe.
type PingResp struct {
	Seq uint64
}

// SetWillReq updates a master's recovery will.
type SetWillReq struct {
	Master     int32
	Partitions []WillPartition
}

// SetWillResp acknowledges a will update.
type SetWillResp struct {
	Status Status
}

// Replication plane ---------------------------------------------------------

// OpenSegmentReq opens a replica for a new head segment.
type OpenSegmentReq struct {
	Master  int32
	Segment uint64
}

// OpenSegmentResp acknowledges the open.
type OpenSegmentResp struct {
	Status Status
}

// ReplicateReq appends objects to an open replica.
type ReplicateReq struct {
	Master  int32
	Segment uint64
	Objects []Object
}

// ReplicateResp acknowledges a durable (in-DRAM) replica append.
type ReplicateResp struct {
	Status Status
}

// CloseSegmentReq seals a replica; the backup then flushes it to disk.
type CloseSegmentReq struct {
	Master       int32
	Segment      uint64
	SegmentBytes uint32
}

// CloseSegmentResp acknowledges the close.
type CloseSegmentResp struct {
	Status Status
}

// FreeReplicasReq discards all replicas belonging to a master (after its
// data has been re-replicated post-recovery).
type FreeReplicasReq struct {
	Master int32
}

// FreeReplicasResp acknowledges the free.
type FreeReplicasResp struct {
	Status Status
}

// RDMAWriteReq models the paper's Section IX.B proposal: replicate with
// one-sided RDMA writes that deposit objects directly into the backup's
// open replica buffer, bypassing its dispatch and worker threads
// entirely. The ack is NIC-level.
type RDMAWriteReq struct {
	Master  int32
	Segment uint64
	Objects []Object
}

// RDMAWriteResp is the NIC-level completion.
type RDMAWriteResp struct {
	Status Status
}

// Recovery plane -------------------------------------------------------------

// SegmentInventoryReq asks a backup which replicas it holds for a master.
type SegmentInventoryReq struct {
	Master int32
}

// SegmentInventoryResp lists replicas held.
type SegmentInventoryResp struct {
	Status   Status
	Segments []SegmentInfo
}

// GetRecoveryDataReq fetches a crashed master's segment, filtered to a
// key-hash partition.
type GetRecoveryDataReq struct {
	Master    int32
	Segment   uint64
	FirstHash uint64
	LastHash  uint64
}

// GetRecoveryDataResp returns the filtered objects. SegmentBytes is the full
// replica size read from disk (the disk does not filter).
type GetRecoveryDataResp struct {
	Status       Status
	SegmentBytes uint32
	Objects      []Object
}

// RecoverReq instructs a recovery master to replay one partition of a
// crashed master.
type RecoverReq struct {
	Crashed   int32
	FirstHash uint64
	LastHash  uint64
	Tablets   []Tablet
	Segments  []SegmentLoc
}

// RecoverResp acknowledges that recovery started.
type RecoverResp struct {
	Status Status
}

// RecoveryDoneReq reports a finished partition replay to the coordinator.
type RecoveryDoneReq struct {
	Crashed   int32
	FirstHash uint64
	Ok        bool
}

// RecoveryDoneResp acknowledges completion.
type RecoveryDoneResp struct {
	Status Status
}

// Migration plane ------------------------------------------------------------

// MigrateTabletReq instructs the current owner of a tablet to transfer its
// live objects in [FirstHash, LastHash] of Table to Dst and release
// ownership. Issued by the coordinator when tablets re-spread onto a
// rejoined server.
type MigrateTabletReq struct {
	Table     uint64
	FirstHash uint64
	LastHash  uint64
	Dst       int32
}

// MigrateTabletResp acknowledges a completed migration.
type MigrateTabletResp struct {
	Status Status
	Moved  uint32 // live objects transferred
}

// TakeTabletReq carries one batch of migrated objects to the tablet's new
// owner, which replays them through its write path (re-replicating at its
// configured factor).
type TakeTabletReq struct {
	Table     uint64
	FirstHash uint64
	LastHash  uint64
	Objects   []Object
}

// TakeTabletResp acknowledges a migration batch.
type TakeTabletResp struct {
	Status Status
}

// Real-transport control plane ----------------------------------------------
//
// The simulated fabric addresses nodes by integer NodeID, which doubles
// as the server id. A real cluster needs one more indirection: servers
// enlist with a dialable address, clients resolve master ids to
// addresses, and the coordinator pushes tablet ownership over the wire
// instead of through in-process registry calls. These messages exist
// only for that path; nothing on the simulated fabric sends them, so
// every pre-existing rendering is untouched.

// ServerAddr binds a cluster server id to its dialable address.
type ServerAddr struct {
	ID   int32
	Addr string
}

// EnlistAddrReq registers a server with the coordinator by its listen
// address. The coordinator assigns the server id (re-enlisting with a
// known address keeps the old id).
type EnlistAddrReq struct {
	Addr        string
	MemoryBytes int64
}

// EnlistAddrResp returns the assigned server id.
type EnlistAddrResp struct {
	Status   Status
	ServerID int32
}

// ServerListReq fetches the id-to-address map of alive servers.
type ServerListReq struct{}

// ServerListResp lists alive servers in ascending id order.
type ServerListResp struct {
	Status  Status
	Servers []ServerAddr
}

// AssignTabletsReq replaces the receiving server's tablet ownership set
// with exactly the tablets carried. Replace semantics keep the push
// idempotent: re-delivery after a retry cannot double-assign.
type AssignTabletsReq struct {
	Tablets []Tablet
}

// AssignTabletsResp acknowledges an ownership update.
type AssignTabletsResp struct {
	Status Status
}

// Codec ----------------------------------------------------------------------

// ErrTruncated reports a message shorter than its encoding requires.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTooLarge reports a frame whose declared length exceeds
// MaxEnvelopeSize. A transport must reject the frame before allocating
// for it: the length prefix is attacker-controlled bytes.
var ErrTooLarge = errors.New("wire: envelope exceeds MaxEnvelopeSize")

// ErrBadLength reports a length field that disagrees with the bytes
// actually presented (truncated tail, garbage after a valid envelope,
// or a length smaller than the fixed header).
var ErrBadLength = errors.New("wire: length field mismatch")

// ErrUnknownOp reports an unrecognized opcode.
var ErrUnknownOp = errors.New("wire: unknown opcode")

// ErrVirtualValue reports an attempt to marshal a message whose declared
// value length disagrees with the bytes it carries.
var ErrVirtualValue = errors.New("wire: cannot marshal virtual value")

type encoder struct{ b []byte }

func (e *encoder) u8(v uint8)   { e.b = append(e.b, v) }
func (e *encoder) b1(v bool)    { e.u8(boolByte(v)) }
func (e *encoder) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) i32(v int32)  { e.u32(uint32(v)) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}
func (e *encoder) str(v string) { e.bytes([]byte(v)) }

func boolByte(v bool) uint8 {
	if v {
		return 1
	}
	return 0
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *decoder) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) b1() bool { return d.u8() != 0 }

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) i32() int32 { return int32(d.u32()) }
func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil || d.off+int(n) > len(d.b) {
		d.fail()
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b[d.off:])
	d.off += int(n)
	return v
}

func (d *decoder) str() string { return string(d.bytes()) }
