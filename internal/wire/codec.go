package wire

import (
	"fmt"
	"sync"
)

// Envelope wraps a message with its RPC correlation id.
type Envelope struct {
	RPCID uint64
	Msg   Message
}

const objectFixed = 8 + 8 + 4 + 4 + 8 + 1 // table, keyhash, keylen, valuelen, version, tombstone

func objectSize(o *Object) int { return objectFixed + len(o.Key) + int(o.ValueLen) }

const tabletSize = 8 + 8 + 8 + 4 + 1
const segInfoSize = 8 + 4
const segLocSize = 8 + 4 + 4
const willPartSize = 8 + 8

// encPool recycles encoder headers so the append-style encoding path
// allocates nothing beyond the destination buffer's own growth. The
// encoder escapes into the Message interface call, so without the pool
// every frame would heap-allocate one.
var encPool = sync.Pool{New: func() any { return new(encoder) }}

// Marshal encodes the envelope. Messages carrying virtual values (declared
// length without bytes) return ErrVirtualValue: they can cross the simulated
// fabric but not a real one.
func Marshal(env Envelope) ([]byte, error) {
	if env.Msg == nil {
		return nil, fmt.Errorf("%w: nil message", ErrUnknownOp)
	}
	return AppendEnvelope(make([]byte, 0, env.Msg.WireSize()), env)
}

// AppendEnvelope encodes env onto the end of dst and returns the
// extended slice, exactly as Marshal would but reusing dst's capacity.
// This is the transport's coalescing path: many envelopes encode into
// one per-connection buffer that is flushed with a single write. On
// error dst is returned unchanged (no partial frame is ever appended).
func AppendEnvelope(dst []byte, env Envelope) ([]byte, error) {
	if env.Msg == nil {
		return dst, fmt.Errorf("%w: nil message", ErrUnknownOp)
	}
	start := len(dst)
	e := encPool.Get().(*encoder)
	e.b = dst
	e.u8(uint8(env.Msg.Op()))
	e.u64(env.RPCID)
	e.u32(0) // length back-patched below
	if err := env.Msg.encodeBody(e); err != nil {
		e.b = nil
		encPool.Put(e)
		return dst, err
	}
	out := e.b
	e.b = nil
	encPool.Put(e)
	// Back-patch total length (of this frame, not the whole buffer).
	total := uint32(len(out) - start)
	out[start+9] = byte(total)
	out[start+10] = byte(total >> 8)
	out[start+11] = byte(total >> 16)
	out[start+12] = byte(total >> 24)
	return out, nil
}

func encodeValue(e *encoder, declared uint32, value []byte) error {
	if int(declared) != len(value) {
		return fmt.Errorf("%w: declared %d bytes, carrying %d", ErrVirtualValue, declared, len(value))
	}
	e.bytes(value)
	return nil
}

func encodeTablet(e *encoder, t *Tablet) {
	e.u64(t.Table)
	e.u64(t.StartHash)
	e.u64(t.EndHash)
	e.i32(t.Master)
	e.b1(t.Recovering)
}

func encodeObject(e *encoder, o *Object) error {
	if int(o.ValueLen) != len(o.Value) {
		return fmt.Errorf("%w: object declares %d bytes, carries %d", ErrVirtualValue, o.ValueLen, len(o.Value))
	}
	e.u64(o.Table)
	e.u64(o.KeyHash)
	e.bytes(o.Key)
	e.bytes(o.Value)
	e.u64(o.Version)
	e.b1(o.Tombstone)
	return nil
}

func decodeTablet(d *decoder) Tablet {
	return Tablet{
		Table:      d.u64(),
		StartHash:  d.u64(),
		EndHash:    d.u64(),
		Master:     d.i32(),
		Recovering: d.b1(),
	}
}

func decodeObject(d *decoder) Object {
	o := Object{Table: d.u64(), KeyHash: d.u64(), Key: d.bytes()}
	o.Value = d.bytes()
	o.ValueLen = uint32(len(o.Value))
	o.Version = d.u64()
	o.Tombstone = d.b1()
	return o
}

// decPool recycles decoder headers across Unmarshal calls; every byte a
// decoded message references is copied out of b, so the decoder itself
// holds no state worth keeping.
var decPool = sync.Pool{New: func() any { return new(decoder) }}

// Unmarshal decodes a message produced by Marshal. Inputs that cannot
// be a valid envelope are rejected with typed errors (ErrTruncated,
// ErrTooLarge, ErrBadLength, ErrUnknownOp) before any message-body
// decoding, so a transport facing network bytes can log-and-drop
// without allocating for hostile frames. The decoded message owns its
// bytes: b may be reused immediately.
func Unmarshal(b []byte) (Envelope, error) {
	if len(b) < headerSize {
		return Envelope{}, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(b), headerSize)
	}
	if len(b) > MaxEnvelopeSize {
		return Envelope{}, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(b))
	}
	d := decPool.Get().(*decoder)
	*d = decoder{b: b}
	env, err := unmarshalBody(d)
	d.b = nil
	decPool.Put(d)
	return env, err
}

func unmarshalBody(d *decoder) (Envelope, error) {
	b := d.b
	op := Op(d.u8())
	rpcID := d.u64()
	total := d.u32()
	if int64(total) != int64(len(b)) {
		return Envelope{}, fmt.Errorf("%w: length field %d != buffer %d", ErrBadLength, total, len(b))
	}
	var msg Message
	switch op {
	case OpReadReq:
		msg = &ReadReq{Table: d.u64(), Key: d.bytes()}
	case OpReadResp:
		m := &ReadResp{Status: Status(d.u8()), Version: d.u64()}
		m.Value = d.bytes()
		m.ValueLen = uint32(len(m.Value))
		msg = m
	case OpWriteReq:
		m := &WriteReq{Table: d.u64(), Key: d.bytes()}
		m.Value = d.bytes()
		m.ValueLen = uint32(len(m.Value))
		msg = m
	case OpWriteResp:
		msg = &WriteResp{Status: Status(d.u8()), Version: d.u64()}
	case OpDeleteReq:
		msg = &DeleteReq{Table: d.u64(), Key: d.bytes()}
	case OpDeleteResp:
		msg = &DeleteResp{Status: Status(d.u8()), Version: d.u64()}
	case OpCreateTableReq:
		msg = &CreateTableReq{Name: d.str(), ServerSpan: d.u32()}
	case OpCreateTableResp:
		msg = &CreateTableResp{Status: Status(d.u8()), Table: d.u64()}
	case OpDropTableReq:
		msg = &DropTableReq{Name: d.str()}
	case OpDropTableResp:
		msg = &DropTableResp{Status: Status(d.u8())}
	case OpGetTabletMapReq:
		msg = &GetTabletMapReq{}
	case OpGetTabletMapResp:
		m := &GetTabletMapResp{Status: Status(d.u8())}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Tablets = append(m.Tablets, decodeTablet(d))
		}
		msg = m
	case OpEnlistReq:
		msg = &EnlistReq{Node: d.i32(), MemoryBytes: d.i64(), HasBackup: d.b1()}
	case OpEnlistResp:
		msg = &EnlistResp{Status: Status(d.u8()), ServerID: d.i32()}
	case OpPingReq:
		msg = &PingReq{Seq: d.u64()}
	case OpPingResp:
		msg = &PingResp{Seq: d.u64()}
	case OpSetWillReq:
		m := &SetWillReq{Master: d.i32()}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Partitions = append(m.Partitions, WillPartition{FirstHash: d.u64(), LastHash: d.u64()})
		}
		msg = m
	case OpSetWillResp:
		msg = &SetWillResp{Status: Status(d.u8())}
	case OpOpenSegmentReq:
		msg = &OpenSegmentReq{Master: d.i32(), Segment: d.u64()}
	case OpOpenSegmentResp:
		msg = &OpenSegmentResp{Status: Status(d.u8())}
	case OpReplicateReq:
		m := &ReplicateReq{Master: d.i32(), Segment: d.u64()}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Objects = append(m.Objects, decodeObject(d))
		}
		msg = m
	case OpReplicateResp:
		msg = &ReplicateResp{Status: Status(d.u8())}
	case OpCloseSegmentReq:
		msg = &CloseSegmentReq{Master: d.i32(), Segment: d.u64(), SegmentBytes: d.u32()}
	case OpCloseSegmentResp:
		msg = &CloseSegmentResp{Status: Status(d.u8())}
	case OpFreeReplicasReq:
		msg = &FreeReplicasReq{Master: d.i32()}
	case OpFreeReplicasResp:
		msg = &FreeReplicasResp{Status: Status(d.u8())}
	case OpSegmentInventoryReq:
		msg = &SegmentInventoryReq{Master: d.i32()}
	case OpSegmentInventoryResp:
		m := &SegmentInventoryResp{Status: Status(d.u8())}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Segments = append(m.Segments, SegmentInfo{Segment: d.u64(), Bytes: d.u32()})
		}
		msg = m
	case OpGetRecoveryDataReq:
		msg = &GetRecoveryDataReq{Master: d.i32(), Segment: d.u64(), FirstHash: d.u64(), LastHash: d.u64()}
	case OpGetRecoveryDataResp:
		m := &GetRecoveryDataResp{Status: Status(d.u8()), SegmentBytes: d.u32()}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Objects = append(m.Objects, decodeObject(d))
		}
		msg = m
	case OpRecoverReq:
		m := &RecoverReq{Crashed: d.i32(), FirstHash: d.u64(), LastHash: d.u64()}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Tablets = append(m.Tablets, decodeTablet(d))
		}
		n = d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Segments = append(m.Segments, SegmentLoc{Segment: d.u64(), Backup: d.i32(), Bytes: d.u32()})
		}
		msg = m
	case OpRecoverResp:
		msg = &RecoverResp{Status: Status(d.u8())}
	case OpRecoveryDoneReq:
		msg = &RecoveryDoneReq{Crashed: d.i32(), FirstHash: d.u64(), Ok: d.b1()}
	case OpRecoveryDoneResp:
		msg = &RecoveryDoneResp{Status: Status(d.u8())}
	case OpRDMAWriteReq:
		m := &RDMAWriteReq{Master: d.i32(), Segment: d.u64()}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Objects = append(m.Objects, decodeObject(d))
		}
		msg = m
	case OpRDMAWriteResp:
		msg = &RDMAWriteResp{Status: Status(d.u8())}
	case OpMultiReadReq:
		m := &MultiReadReq{}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Items = append(m.Items, MultiReadItem{Table: d.u64(), Key: d.bytes()})
		}
		msg = m
	case OpMultiReadResp:
		m := &MultiReadResp{Status: Status(d.u8())}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			it := MultiReadResult{Status: Status(d.u8()), Version: d.u64()}
			it.Value = d.bytes()
			it.ValueLen = uint32(len(it.Value))
			m.Items = append(m.Items, it)
		}
		msg = m
	case OpMultiWriteReq:
		m := &MultiWriteReq{}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			it := MultiWriteItem{Table: d.u64(), Key: d.bytes()}
			it.Value = d.bytes()
			it.ValueLen = uint32(len(it.Value))
			m.Items = append(m.Items, it)
		}
		msg = m
	case OpMultiWriteResp:
		m := &MultiWriteResp{Status: Status(d.u8())}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Items = append(m.Items, MultiWriteResult{Status: Status(d.u8()), Version: d.u64()})
		}
		msg = m
	case OpMigrateTabletReq:
		msg = &MigrateTabletReq{Table: d.u64(), FirstHash: d.u64(), LastHash: d.u64(), Dst: d.i32()}
	case OpMigrateTabletResp:
		msg = &MigrateTabletResp{Status: Status(d.u8()), Moved: d.u32()}
	case OpTakeTabletReq:
		m := &TakeTabletReq{Table: d.u64(), FirstHash: d.u64(), LastHash: d.u64()}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Objects = append(m.Objects, decodeObject(d))
		}
		msg = m
	case OpTakeTabletResp:
		msg = &TakeTabletResp{Status: Status(d.u8())}
	case OpEnlistAddrReq:
		msg = &EnlistAddrReq{Addr: d.str(), MemoryBytes: d.i64()}
	case OpEnlistAddrResp:
		msg = &EnlistAddrResp{Status: Status(d.u8()), ServerID: d.i32()}
	case OpServerListReq:
		msg = &ServerListReq{}
	case OpServerListResp:
		m := &ServerListResp{Status: Status(d.u8())}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Servers = append(m.Servers, ServerAddr{ID: d.i32(), Addr: d.str()})
		}
		msg = m
	case OpAssignTabletsReq:
		m := &AssignTabletsReq{}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Tablets = append(m.Tablets, decodeTablet(d))
		}
		msg = m
	case OpAssignTabletsResp:
		msg = &AssignTabletsResp{Status: Status(d.u8())}
	default:
		return Envelope{}, fmt.Errorf("%w: %d", ErrUnknownOp, op)
	}
	if d.err != nil {
		return Envelope{}, d.err
	}
	return Envelope{RPCID: rpcID, Msg: msg}, nil
}
