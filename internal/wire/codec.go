package wire

import "fmt"

// Envelope wraps a message with its RPC correlation id.
type Envelope struct {
	RPCID uint64
	Msg   any
}

// OpOf returns the opcode for a message struct pointer-or-value, or 0 when
// the type is not a wire message.
func OpOf(msg any) Op {
	switch msg.(type) {
	case *ReadReq:
		return OpReadReq
	case *ReadResp:
		return OpReadResp
	case *WriteReq:
		return OpWriteReq
	case *WriteResp:
		return OpWriteResp
	case *DeleteReq:
		return OpDeleteReq
	case *DeleteResp:
		return OpDeleteResp
	case *CreateTableReq:
		return OpCreateTableReq
	case *CreateTableResp:
		return OpCreateTableResp
	case *DropTableReq:
		return OpDropTableReq
	case *DropTableResp:
		return OpDropTableResp
	case *GetTabletMapReq:
		return OpGetTabletMapReq
	case *GetTabletMapResp:
		return OpGetTabletMapResp
	case *EnlistReq:
		return OpEnlistReq
	case *EnlistResp:
		return OpEnlistResp
	case *PingReq:
		return OpPingReq
	case *PingResp:
		return OpPingResp
	case *SetWillReq:
		return OpSetWillReq
	case *SetWillResp:
		return OpSetWillResp
	case *OpenSegmentReq:
		return OpOpenSegmentReq
	case *OpenSegmentResp:
		return OpOpenSegmentResp
	case *ReplicateReq:
		return OpReplicateReq
	case *ReplicateResp:
		return OpReplicateResp
	case *CloseSegmentReq:
		return OpCloseSegmentReq
	case *CloseSegmentResp:
		return OpCloseSegmentResp
	case *FreeReplicasReq:
		return OpFreeReplicasReq
	case *FreeReplicasResp:
		return OpFreeReplicasResp
	case *SegmentInventoryReq:
		return OpSegmentInventoryReq
	case *SegmentInventoryResp:
		return OpSegmentInventoryResp
	case *GetRecoveryDataReq:
		return OpGetRecoveryDataReq
	case *GetRecoveryDataResp:
		return OpGetRecoveryDataResp
	case *RecoverReq:
		return OpRecoverReq
	case *RecoverResp:
		return OpRecoverResp
	case *RecoveryDoneReq:
		return OpRecoveryDoneReq
	case *RecoveryDoneResp:
		return OpRecoveryDoneResp
	case *RDMAWriteReq:
		return OpRDMAWriteReq
	case *RDMAWriteResp:
		return OpRDMAWriteResp
	default:
		return 0
	}
}

const objectFixed = 8 + 8 + 4 + 4 + 8 + 1 // table, keyhash, keylen, valuelen, version, tombstone

func objectSize(o *Object) int { return objectFixed + len(o.Key) + int(o.ValueLen) }

const tabletSize = 8 + 8 + 8 + 4 + 1
const segInfoSize = 8 + 4
const segLocSize = 8 + 4 + 4
const willPartSize = 8 + 8

// Size returns the exact on-wire size of the envelope in bytes, counting
// declared value lengths for virtual payloads.
func Size(env Envelope) int {
	body := 0
	switch m := env.Msg.(type) {
	case *ReadReq:
		body = 8 + 4 + len(m.Key)
	case *ReadResp:
		body = 1 + 8 + 4 + int(m.ValueLen)
	case *WriteReq:
		body = 8 + 4 + len(m.Key) + 4 + int(m.ValueLen)
	case *WriteResp:
		body = 1 + 8
	case *DeleteReq:
		body = 8 + 4 + len(m.Key)
	case *DeleteResp:
		body = 1 + 8
	case *CreateTableReq:
		body = 4 + len(m.Name) + 4
	case *CreateTableResp:
		body = 1 + 8
	case *DropTableReq:
		body = 4 + len(m.Name)
	case *DropTableResp:
		body = 1
	case *GetTabletMapReq:
		body = 0
	case *GetTabletMapResp:
		body = 1 + 4 + len(m.Tablets)*tabletSize
	case *EnlistReq:
		body = 4 + 8 + 1
	case *EnlistResp:
		body = 1 + 4
	case *PingReq:
		body = 8
	case *PingResp:
		body = 8
	case *SetWillReq:
		body = 4 + 4 + len(m.Partitions)*willPartSize
	case *SetWillResp:
		body = 1
	case *OpenSegmentReq:
		body = 4 + 8
	case *OpenSegmentResp:
		body = 1
	case *ReplicateReq:
		body = 4 + 8 + 4
		for i := range m.Objects {
			body += objectSize(&m.Objects[i])
		}
	case *ReplicateResp:
		body = 1
	case *CloseSegmentReq:
		body = 4 + 8 + 4
	case *CloseSegmentResp:
		body = 1
	case *FreeReplicasReq:
		body = 4
	case *FreeReplicasResp:
		body = 1
	case *SegmentInventoryReq:
		body = 4
	case *SegmentInventoryResp:
		body = 1 + 4 + len(m.Segments)*segInfoSize
	case *GetRecoveryDataReq:
		body = 4 + 8 + 8 + 8
	case *GetRecoveryDataResp:
		body = 1 + 4 + 4
		for i := range m.Objects {
			body += objectSize(&m.Objects[i])
		}
	case *RecoverReq:
		body = 4 + 8 + 8 + 4 + len(m.Tablets)*tabletSize + 4 + len(m.Segments)*segLocSize
	case *RecoverResp:
		body = 1
	case *RecoveryDoneReq:
		body = 4 + 8 + 1
	case *RecoveryDoneResp:
		body = 1
	case *RDMAWriteReq:
		body = 4 + 8 + 4
		for i := range m.Objects {
			body += objectSize(&m.Objects[i])
		}
	case *RDMAWriteResp:
		body = 1
	default:
		panic(fmt.Sprintf("wire: Size of unknown message %T", env.Msg))
	}
	return headerSize + body
}

// Marshal encodes the envelope. Messages carrying virtual values (declared
// length without bytes) return ErrVirtualValue: they can cross the simulated
// fabric but not a real one.
func Marshal(env Envelope) ([]byte, error) {
	op := OpOf(env.Msg)
	if op == 0 {
		return nil, fmt.Errorf("%w: %T", ErrUnknownOp, env.Msg)
	}
	e := &encoder{b: make([]byte, 0, Size(env))}
	e.u8(uint8(op))
	e.u64(env.RPCID)
	e.u32(0) // length back-patched below
	var err error
	switch m := env.Msg.(type) {
	case *ReadReq:
		e.u64(m.Table)
		e.bytes(m.Key)
	case *ReadResp:
		e.u8(uint8(m.Status))
		e.u64(m.Version)
		err = encodeValue(e, m.ValueLen, m.Value)
	case *WriteReq:
		e.u64(m.Table)
		e.bytes(m.Key)
		err = encodeValue(e, m.ValueLen, m.Value)
	case *WriteResp:
		e.u8(uint8(m.Status))
		e.u64(m.Version)
	case *DeleteReq:
		e.u64(m.Table)
		e.bytes(m.Key)
	case *DeleteResp:
		e.u8(uint8(m.Status))
		e.u64(m.Version)
	case *CreateTableReq:
		e.str(m.Name)
		e.u32(m.ServerSpan)
	case *CreateTableResp:
		e.u8(uint8(m.Status))
		e.u64(m.Table)
	case *DropTableReq:
		e.str(m.Name)
	case *DropTableResp:
		e.u8(uint8(m.Status))
	case *GetTabletMapReq:
	case *GetTabletMapResp:
		e.u8(uint8(m.Status))
		e.u32(uint32(len(m.Tablets)))
		for i := range m.Tablets {
			encodeTablet(e, &m.Tablets[i])
		}
	case *EnlistReq:
		e.i32(m.Node)
		e.i64(m.MemoryBytes)
		e.b1(m.HasBackup)
	case *EnlistResp:
		e.u8(uint8(m.Status))
		e.i32(m.ServerID)
	case *PingReq:
		e.u64(m.Seq)
	case *PingResp:
		e.u64(m.Seq)
	case *SetWillReq:
		e.i32(m.Master)
		e.u32(uint32(len(m.Partitions)))
		for _, pt := range m.Partitions {
			e.u64(pt.FirstHash)
			e.u64(pt.LastHash)
		}
	case *SetWillResp:
		e.u8(uint8(m.Status))
	case *OpenSegmentReq:
		e.i32(m.Master)
		e.u64(m.Segment)
	case *OpenSegmentResp:
		e.u8(uint8(m.Status))
	case *ReplicateReq:
		e.i32(m.Master)
		e.u64(m.Segment)
		e.u32(uint32(len(m.Objects)))
		for i := range m.Objects {
			if err = encodeObject(e, &m.Objects[i]); err != nil {
				break
			}
		}
	case *ReplicateResp:
		e.u8(uint8(m.Status))
	case *CloseSegmentReq:
		e.i32(m.Master)
		e.u64(m.Segment)
		e.u32(m.SegmentBytes)
	case *CloseSegmentResp:
		e.u8(uint8(m.Status))
	case *FreeReplicasReq:
		e.i32(m.Master)
	case *FreeReplicasResp:
		e.u8(uint8(m.Status))
	case *SegmentInventoryReq:
		e.i32(m.Master)
	case *SegmentInventoryResp:
		e.u8(uint8(m.Status))
		e.u32(uint32(len(m.Segments)))
		for _, s := range m.Segments {
			e.u64(s.Segment)
			e.u32(s.Bytes)
		}
	case *GetRecoveryDataReq:
		e.i32(m.Master)
		e.u64(m.Segment)
		e.u64(m.FirstHash)
		e.u64(m.LastHash)
	case *GetRecoveryDataResp:
		e.u8(uint8(m.Status))
		e.u32(m.SegmentBytes)
		e.u32(uint32(len(m.Objects)))
		for i := range m.Objects {
			if err = encodeObject(e, &m.Objects[i]); err != nil {
				break
			}
		}
	case *RecoverReq:
		e.i32(m.Crashed)
		e.u64(m.FirstHash)
		e.u64(m.LastHash)
		e.u32(uint32(len(m.Tablets)))
		for i := range m.Tablets {
			encodeTablet(e, &m.Tablets[i])
		}
		e.u32(uint32(len(m.Segments)))
		for _, s := range m.Segments {
			e.u64(s.Segment)
			e.i32(s.Backup)
			e.u32(s.Bytes)
		}
	case *RecoverResp:
		e.u8(uint8(m.Status))
	case *RecoveryDoneReq:
		e.i32(m.Crashed)
		e.u64(m.FirstHash)
		e.b1(m.Ok)
	case *RecoveryDoneResp:
		e.u8(uint8(m.Status))
	case *RDMAWriteReq:
		e.i32(m.Master)
		e.u64(m.Segment)
		e.u32(uint32(len(m.Objects)))
		for i := range m.Objects {
			if err = encodeObject(e, &m.Objects[i]); err != nil {
				break
			}
		}
	case *RDMAWriteResp:
		e.u8(uint8(m.Status))
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownOp, env.Msg)
	}
	if err != nil {
		return nil, err
	}
	// Back-patch total length.
	total := uint32(len(e.b))
	e.b[9] = byte(total)
	e.b[10] = byte(total >> 8)
	e.b[11] = byte(total >> 16)
	e.b[12] = byte(total >> 24)
	return e.b, nil
}

func encodeValue(e *encoder, declared uint32, value []byte) error {
	if int(declared) != len(value) {
		return fmt.Errorf("%w: declared %d bytes, carrying %d", ErrVirtualValue, declared, len(value))
	}
	e.bytes(value)
	return nil
}

func encodeTablet(e *encoder, t *Tablet) {
	e.u64(t.Table)
	e.u64(t.StartHash)
	e.u64(t.EndHash)
	e.i32(t.Master)
	e.b1(t.Recovering)
}

func encodeObject(e *encoder, o *Object) error {
	if int(o.ValueLen) != len(o.Value) {
		return fmt.Errorf("%w: object declares %d bytes, carries %d", ErrVirtualValue, o.ValueLen, len(o.Value))
	}
	e.u64(o.Table)
	e.u64(o.KeyHash)
	e.bytes(o.Key)
	e.bytes(o.Value)
	e.u64(o.Version)
	e.b1(o.Tombstone)
	return nil
}

func decodeTablet(d *decoder) Tablet {
	return Tablet{
		Table:      d.u64(),
		StartHash:  d.u64(),
		EndHash:    d.u64(),
		Master:     d.i32(),
		Recovering: d.b1(),
	}
}

func decodeObject(d *decoder) Object {
	o := Object{Table: d.u64(), KeyHash: d.u64(), Key: d.bytes()}
	o.Value = d.bytes()
	o.ValueLen = uint32(len(o.Value))
	o.Version = d.u64()
	o.Tombstone = d.b1()
	return o
}

// Unmarshal decodes a message produced by Marshal.
func Unmarshal(b []byte) (Envelope, error) {
	d := &decoder{b: b}
	op := Op(d.u8())
	rpcID := d.u64()
	total := d.u32()
	if d.err == nil && int(total) != len(b) {
		return Envelope{}, fmt.Errorf("wire: length field %d != buffer %d", total, len(b))
	}
	var msg any
	switch op {
	case OpReadReq:
		msg = &ReadReq{Table: d.u64(), Key: d.bytes()}
	case OpReadResp:
		m := &ReadResp{Status: Status(d.u8()), Version: d.u64()}
		m.Value = d.bytes()
		m.ValueLen = uint32(len(m.Value))
		msg = m
	case OpWriteReq:
		m := &WriteReq{Table: d.u64(), Key: d.bytes()}
		m.Value = d.bytes()
		m.ValueLen = uint32(len(m.Value))
		msg = m
	case OpWriteResp:
		msg = &WriteResp{Status: Status(d.u8()), Version: d.u64()}
	case OpDeleteReq:
		msg = &DeleteReq{Table: d.u64(), Key: d.bytes()}
	case OpDeleteResp:
		msg = &DeleteResp{Status: Status(d.u8()), Version: d.u64()}
	case OpCreateTableReq:
		msg = &CreateTableReq{Name: d.str(), ServerSpan: d.u32()}
	case OpCreateTableResp:
		msg = &CreateTableResp{Status: Status(d.u8()), Table: d.u64()}
	case OpDropTableReq:
		msg = &DropTableReq{Name: d.str()}
	case OpDropTableResp:
		msg = &DropTableResp{Status: Status(d.u8())}
	case OpGetTabletMapReq:
		msg = &GetTabletMapReq{}
	case OpGetTabletMapResp:
		m := &GetTabletMapResp{Status: Status(d.u8())}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Tablets = append(m.Tablets, decodeTablet(d))
		}
		msg = m
	case OpEnlistReq:
		msg = &EnlistReq{Node: d.i32(), MemoryBytes: d.i64(), HasBackup: d.b1()}
	case OpEnlistResp:
		msg = &EnlistResp{Status: Status(d.u8()), ServerID: d.i32()}
	case OpPingReq:
		msg = &PingReq{Seq: d.u64()}
	case OpPingResp:
		msg = &PingResp{Seq: d.u64()}
	case OpSetWillReq:
		m := &SetWillReq{Master: d.i32()}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Partitions = append(m.Partitions, WillPartition{FirstHash: d.u64(), LastHash: d.u64()})
		}
		msg = m
	case OpSetWillResp:
		msg = &SetWillResp{Status: Status(d.u8())}
	case OpOpenSegmentReq:
		msg = &OpenSegmentReq{Master: d.i32(), Segment: d.u64()}
	case OpOpenSegmentResp:
		msg = &OpenSegmentResp{Status: Status(d.u8())}
	case OpReplicateReq:
		m := &ReplicateReq{Master: d.i32(), Segment: d.u64()}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Objects = append(m.Objects, decodeObject(d))
		}
		msg = m
	case OpReplicateResp:
		msg = &ReplicateResp{Status: Status(d.u8())}
	case OpCloseSegmentReq:
		msg = &CloseSegmentReq{Master: d.i32(), Segment: d.u64(), SegmentBytes: d.u32()}
	case OpCloseSegmentResp:
		msg = &CloseSegmentResp{Status: Status(d.u8())}
	case OpFreeReplicasReq:
		msg = &FreeReplicasReq{Master: d.i32()}
	case OpFreeReplicasResp:
		msg = &FreeReplicasResp{Status: Status(d.u8())}
	case OpSegmentInventoryReq:
		msg = &SegmentInventoryReq{Master: d.i32()}
	case OpSegmentInventoryResp:
		m := &SegmentInventoryResp{Status: Status(d.u8())}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Segments = append(m.Segments, SegmentInfo{Segment: d.u64(), Bytes: d.u32()})
		}
		msg = m
	case OpGetRecoveryDataReq:
		msg = &GetRecoveryDataReq{Master: d.i32(), Segment: d.u64(), FirstHash: d.u64(), LastHash: d.u64()}
	case OpGetRecoveryDataResp:
		m := &GetRecoveryDataResp{Status: Status(d.u8()), SegmentBytes: d.u32()}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Objects = append(m.Objects, decodeObject(d))
		}
		msg = m
	case OpRecoverReq:
		m := &RecoverReq{Crashed: d.i32(), FirstHash: d.u64(), LastHash: d.u64()}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Tablets = append(m.Tablets, decodeTablet(d))
		}
		n = d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Segments = append(m.Segments, SegmentLoc{Segment: d.u64(), Backup: d.i32(), Bytes: d.u32()})
		}
		msg = m
	case OpRecoverResp:
		msg = &RecoverResp{Status: Status(d.u8())}
	case OpRecoveryDoneReq:
		msg = &RecoveryDoneReq{Crashed: d.i32(), FirstHash: d.u64(), Ok: d.b1()}
	case OpRecoveryDoneResp:
		msg = &RecoveryDoneResp{Status: Status(d.u8())}
	case OpRDMAWriteReq:
		m := &RDMAWriteReq{Master: d.i32(), Segment: d.u64()}
		n := d.u32()
		for i := uint32(0); i < n && d.err == nil; i++ {
			m.Objects = append(m.Objects, decodeObject(d))
		}
		msg = m
	case OpRDMAWriteResp:
		msg = &RDMAWriteResp{Status: Status(d.u8())}
	default:
		return Envelope{}, fmt.Errorf("%w: %d", ErrUnknownOp, op)
	}
	if d.err != nil {
		return Envelope{}, d.err
	}
	return Envelope{RPCID: rpcID, Msg: msg}, nil
}
