package wire

import "testing"

var (
	benchSizeSink int
	benchBufSink  []byte
)

func benchMessages() []Envelope {
	return []Envelope{
		{RPCID: 1, Msg: &ReadReq{Table: 3, Key: []byte("user0000000007")}},
		{RPCID: 2, Msg: &ReadResp{Status: StatusOK, Version: 9, ValueLen: 4, Value: []byte("abcd")}},
		{RPCID: 3, Msg: &WriteReq{Table: 3, Key: []byte("user0000000007"), ValueLen: 4, Value: []byte("abcd")}},
		{RPCID: 4, Msg: &WriteResp{Status: StatusOK, Version: 10}},
		{RPCID: 5, Msg: &ReplicateReq{Master: 2, Segment: 7, Objects: []Object{
			{Table: 3, KeyHash: 0xDEAD, Key: []byte("k"), ValueLen: 1, Value: []byte("v"), Version: 1},
		}}},
		{RPCID: 6, Msg: &PingReq{Seq: 99}},
	}
}

// BenchmarkWireSize measures on-wire size computation, which runs once per
// RPC send on the simulated fabric.
func BenchmarkWireSize(b *testing.B) {
	envs := benchMessages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSizeSink += envs[i%len(envs)].Msg.WireSize()
	}
}

// BenchmarkMarshal measures the real binary encoding (fidelity tests and
// external tooling; not on the simulated fast path).
func BenchmarkMarshal(b *testing.B) {
	envs := benchMessages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := Marshal(envs[i%len(envs)])
		if err != nil {
			b.Fatal(err)
		}
		benchBufSink = buf
	}
}
