package wire

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// allMessages returns one representative of every message type with
// non-trivial field values.
func allMessages() []Message {
	obj := Object{Table: 3, KeyHash: 0xdeadbeef, Key: []byte("user42"),
		ValueLen: 5, Value: []byte("hello"), Version: 9, Tombstone: false}
	tomb := Object{Table: 3, KeyHash: 1, Key: []byte("k"), Version: 2, Tombstone: true}
	tab := Tablet{Table: 1, StartHash: 0, EndHash: ^uint64(0), Master: 4, Recovering: true}
	return []Message{
		&ReadReq{Table: 1, Key: []byte("user1")},
		&ReadResp{Status: StatusOK, Version: 3, ValueLen: 4, Value: []byte("data")},
		&WriteReq{Table: 2, Key: []byte("k"), ValueLen: 3, Value: []byte("abc")},
		&WriteResp{Status: StatusOK, Version: 11},
		&DeleteReq{Table: 1, Key: []byte("gone")},
		&DeleteResp{Status: StatusUnknownKey, Version: 0},
		&CreateTableReq{Name: "usertable", ServerSpan: 10},
		&CreateTableResp{Status: StatusOK, Table: 7},
		&DropTableReq{Name: "usertable"},
		&DropTableResp{Status: StatusOK},
		&GetTabletMapReq{},
		&GetTabletMapResp{Status: StatusOK, Tablets: []Tablet{tab, {Table: 2, Master: 1}}},
		&EnlistReq{Node: 5, MemoryBytes: 10 << 30, HasBackup: true},
		&EnlistResp{Status: StatusOK, ServerID: 5},
		&PingReq{Seq: 99},
		&PingResp{Seq: 99},
		&SetWillReq{Master: 2, Partitions: []WillPartition{{0, 100}, {101, 200}}},
		&SetWillResp{Status: StatusOK},
		&OpenSegmentReq{Master: 1, Segment: 42},
		&OpenSegmentResp{Status: StatusOK},
		&ReplicateReq{Master: 1, Segment: 42, Objects: []Object{obj, tomb}},
		&ReplicateResp{Status: StatusOK},
		&CloseSegmentReq{Master: 1, Segment: 42, SegmentBytes: 8 << 20},
		&CloseSegmentResp{Status: StatusOK},
		&FreeReplicasReq{Master: 3},
		&FreeReplicasResp{Status: StatusOK},
		&SegmentInventoryReq{Master: 3},
		&SegmentInventoryResp{Status: StatusOK, Segments: []SegmentInfo{{1, 100}, {2, 200}}},
		&GetRecoveryDataReq{Master: 3, Segment: 2, FirstHash: 10, LastHash: 20},
		&GetRecoveryDataResp{Status: StatusOK, SegmentBytes: 8 << 20, Objects: []Object{obj}},
		&RecoverReq{Crashed: 3, FirstHash: 0, LastHash: 99, Tablets: []Tablet{tab},
			Segments: []SegmentLoc{{Segment: 1, Backup: 2, Bytes: 100}}},
		&RecoverResp{Status: StatusOK},
		&RecoveryDoneReq{Crashed: 3, FirstHash: 0, Ok: true},
		&RecoveryDoneResp{Status: StatusOK},
		&RDMAWriteReq{Master: 1, Segment: 5, Objects: []Object{obj}},
		&RDMAWriteResp{Status: StatusOK},
		&MultiReadReq{Items: []MultiReadItem{
			{Table: 1, Key: []byte("user1")}, {Table: 2, Key: []byte("user2")}}},
		&MultiReadResp{Status: StatusOK, Items: []MultiReadResult{
			{Status: StatusOK, Version: 3, ValueLen: 4, Value: []byte("data")},
			{Status: StatusUnknownKey},
			{Status: StatusWrongServer}}},
		&MultiWriteReq{Items: []MultiWriteItem{
			{Table: 1, Key: []byte("k1"), ValueLen: 3, Value: []byte("abc")},
			{Table: 1, Key: []byte("k2")}}},
		&MultiWriteResp{Status: StatusOK, Items: []MultiWriteResult{
			{Status: StatusOK, Version: 7}, {Status: StatusWrongServer}}},
		&MigrateTabletReq{Table: 1, FirstHash: 100, LastHash: 200, Dst: 4},
		&MigrateTabletResp{Status: StatusOK, Moved: 321},
		&TakeTabletReq{Table: 1, FirstHash: 100, LastHash: 200, Objects: []Object{obj, tomb}},
		&TakeTabletResp{Status: StatusOK},
		&EnlistAddrReq{Addr: "127.0.0.1:7071", MemoryBytes: 10 << 30},
		&EnlistAddrResp{Status: StatusOK, ServerID: 3},
		&ServerListReq{},
		&ServerListResp{Status: StatusOK, Servers: []ServerAddr{
			{ID: 1, Addr: "127.0.0.1:7071"}, {ID: 2, Addr: "127.0.0.1:7072"}}},
		&AssignTabletsReq{Tablets: []Tablet{tab, {Table: 2, Master: 1}}},
		&AssignTabletsResp{Status: StatusOK},
	}
}

func TestRoundTripAllMessages(t *testing.T) {
	for _, msg := range allMessages() {
		msg := msg
		t.Run(fmt.Sprintf("%T", msg), func(t *testing.T) {
			env := Envelope{RPCID: 12345, Msg: msg}
			b, err := Marshal(env)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			got, err := Unmarshal(b)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if got.RPCID != 12345 {
				t.Fatalf("rpc id = %d", got.RPCID)
			}
			if !reflect.DeepEqual(normalize(got.Msg), normalize(msg)) {
				t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got.Msg, msg)
			}
		})
	}
}

// normalize maps nil and empty slices to a canonical form for comparison.
func normalize(msg any) string {
	return strings.ReplaceAll(fmt.Sprintf("%#v", msg), "[]uint8{}", "[]uint8(nil)")
}

func TestWireSizeMatchesMarshal(t *testing.T) {
	for _, msg := range allMessages() {
		b, err := Marshal(Envelope{RPCID: 1, Msg: msg})
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		if got, want := msg.WireSize(), len(b); got != want {
			t.Errorf("%T: WireSize = %d, Marshal produced %d bytes", msg, got, want)
		}
	}
}

// TestOpCoversAllMessages asserts that allMessages carries exactly one
// representative of every declared opcode, so the round-trip and size
// tests above cannot silently drop a message type.
func TestOpCoversAllMessages(t *testing.T) {
	seen := map[Op]bool{}
	for _, msg := range allMessages() {
		op := msg.Op()
		if op == 0 {
			t.Fatalf("(%T).Op() = 0", msg)
		}
		if seen[op] {
			t.Fatalf("duplicate op %d for %T", op, msg)
		}
		seen[op] = true
	}
	for op := OpReadReq; op <= OpAssignTabletsResp; op++ {
		if !seen[op] {
			t.Errorf("opcode %d has no representative in allMessages", op)
		}
	}
}

// TestResponsesCarryStatus asserts every *Resp message except PingResp
// implements Response, so rpc.MustStatus keeps working as types migrate.
func TestResponsesCarryStatus(t *testing.T) {
	for _, msg := range allMessages() {
		name := fmt.Sprintf("%T", msg)
		_, isResp := msg.(Response)
		wantResp := strings.HasSuffix(name, "Resp") && name != "*wire.PingResp"
		if isResp != wantResp {
			t.Errorf("%s: implements Response = %v, want %v", name, isResp, wantResp)
		}
	}
}

func TestVirtualValueSizeCounted(t *testing.T) {
	real := Envelope{Msg: &WriteReq{Table: 1, Key: []byte("k"), ValueLen: 1024, Value: make([]byte, 1024)}}
	virtual := Envelope{Msg: &WriteReq{Table: 1, Key: []byte("k"), ValueLen: 1024, Value: nil}}
	if real.Msg.WireSize() != virtual.Msg.WireSize() {
		t.Fatalf("virtual size %d != real size %d", virtual.Msg.WireSize(), real.Msg.WireSize())
	}
}

func TestVirtualValueMarshalFails(t *testing.T) {
	_, err := Marshal(Envelope{Msg: &WriteReq{Table: 1, Key: []byte("k"), ValueLen: 10}})
	if !errors.Is(err, ErrVirtualValue) {
		t.Fatalf("err = %v, want ErrVirtualValue", err)
	}
	_, err = Marshal(Envelope{Msg: &ReplicateReq{Objects: []Object{{ValueLen: 5}}}})
	if !errors.Is(err, ErrVirtualValue) {
		t.Fatalf("err = %v, want ErrVirtualValue", err)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	b, err := Marshal(Envelope{RPCID: 7, Msg: &WriteReq{Table: 1, Key: []byte("key"), ValueLen: 3, Value: []byte("abc")}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut++ {
		if _, err := Unmarshal(b[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d not detected", cut, len(b))
		}
	}
}

func TestUnmarshalUnknownOp(t *testing.T) {
	b := []byte{255, 0, 0, 0, 0, 0, 0, 0, 0, 13, 0, 0, 0}
	if _, err := Unmarshal(b); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("err = %v, want ErrUnknownOp", err)
	}
}

func TestUnmarshalLengthMismatch(t *testing.T) {
	b, _ := Marshal(Envelope{Msg: &PingReq{Seq: 1}})
	b = append(b, 0) // extra trailing byte
	if _, err := Unmarshal(b); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

func TestMarshalNilMessage(t *testing.T) {
	if _, err := Marshal(Envelope{}); !errors.Is(err, ErrUnknownOp) {
		t.Fatalf("err = %v", err)
	}
}

func TestStatusStrings(t *testing.T) {
	for s := StatusOK; s <= StatusError; s++ {
		if strings.HasPrefix(s.String(), "Status(") {
			t.Errorf("status %d has no name", s)
		}
	}
	if Status(200).String() != "Status(200)" {
		t.Fatalf("unknown status = %q", Status(200).String())
	}
}

func TestQuickWriteReqRoundTrip(t *testing.T) {
	f := func(table uint64, key []byte, value []byte, rpc uint64) bool {
		env := Envelope{RPCID: rpc, Msg: &WriteReq{
			Table: table, Key: key, ValueLen: uint32(len(value)), Value: value}}
		b, err := Marshal(env)
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil || got.RPCID != rpc {
			return false
		}
		m := got.Msg.(*WriteReq)
		return m.Table == table && bytes.Equal(m.Key, key) && bytes.Equal(m.Value, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReplicateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 100; iter++ {
		var objs []Object
		for i := 0; i < rng.Intn(5); i++ {
			val := make([]byte, rng.Intn(64))
			rng.Read(val)
			key := make([]byte, 1+rng.Intn(16))
			rng.Read(key)
			objs = append(objs, Object{
				Table:     rng.Uint64(),
				KeyHash:   rng.Uint64(),
				Key:       key,
				ValueLen:  uint32(len(val)),
				Value:     val,
				Version:   rng.Uint64(),
				Tombstone: rng.Intn(2) == 0,
			})
		}
		env := Envelope{RPCID: rng.Uint64(), Msg: &ReplicateReq{Master: 1, Segment: 2, Objects: objs}}
		b, err := Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatal(err)
		}
		m := got.Msg.(*ReplicateReq)
		if len(m.Objects) != len(objs) {
			t.Fatalf("objects = %d, want %d", len(m.Objects), len(objs))
		}
		for i := range objs {
			a, b := objs[i], m.Objects[i]
			if a.Table != b.Table || a.KeyHash != b.KeyHash || !bytes.Equal(a.Key, b.Key) ||
				!bytes.Equal(a.Value, b.Value) || a.Version != b.Version || a.Tombstone != b.Tombstone {
				t.Fatalf("object %d mismatch: %+v vs %+v", i, a, b)
			}
		}
	}
}

// TestMultiOpVirtualValues checks the multi-op messages inherit the
// virtual-payload contract: declared lengths count toward WireSize whether
// or not bytes are carried, and marshaling a virtual value fails.
func TestMultiOpVirtualValues(t *testing.T) {
	real := &MultiWriteReq{Items: []MultiWriteItem{
		{Table: 1, Key: []byte("k"), ValueLen: 1024, Value: make([]byte, 1024)}}}
	virtual := &MultiWriteReq{Items: []MultiWriteItem{
		{Table: 1, Key: []byte("k"), ValueLen: 1024, Value: nil}}}
	if real.WireSize() != virtual.WireSize() {
		t.Fatalf("virtual size %d != real size %d", virtual.WireSize(), real.WireSize())
	}
	if _, err := Marshal(Envelope{Msg: virtual}); !errors.Is(err, ErrVirtualValue) {
		t.Fatalf("MultiWriteReq marshal err = %v, want ErrVirtualValue", err)
	}

	realResp := &MultiReadResp{Status: StatusOK, Items: []MultiReadResult{
		{Status: StatusOK, ValueLen: 512, Value: make([]byte, 512)}}}
	virtualResp := &MultiReadResp{Status: StatusOK, Items: []MultiReadResult{
		{Status: StatusOK, ValueLen: 512, Value: nil}}}
	if realResp.WireSize() != virtualResp.WireSize() {
		t.Fatalf("virtual resp size %d != real %d", virtualResp.WireSize(), realResp.WireSize())
	}
	if _, err := Marshal(Envelope{Msg: virtualResp}); !errors.Is(err, ErrVirtualValue) {
		t.Fatalf("MultiReadResp marshal err = %v, want ErrVirtualValue", err)
	}
}

// TestMultiOpPerItemStatuses round-trips a mixed batch of per-item codes
// (the WrongServer-mid-batch case the client's retry loop depends on).
func TestMultiOpPerItemStatuses(t *testing.T) {
	resp := &MultiReadResp{Status: StatusOK, Items: []MultiReadResult{
		{Status: StatusOK, Version: 1, ValueLen: 2, Value: []byte("ab")},
		{Status: StatusWrongServer},
		{Status: StatusUnknownKey},
		{Status: StatusOK, Version: 4},
	}}
	b, err := Marshal(Envelope{RPCID: 9, Msg: resp})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	m := got.Msg.(*MultiReadResp)
	if len(m.Items) != 4 {
		t.Fatalf("items = %d", len(m.Items))
	}
	want := []Status{StatusOK, StatusWrongServer, StatusUnknownKey, StatusOK}
	for i, st := range want {
		if m.Items[i].Status != st {
			t.Errorf("item %d status = %v, want %v", i, m.Items[i].Status, st)
		}
	}
	if m.Items[0].Version != 1 || string(m.Items[0].Value) != "ab" {
		t.Fatalf("item 0 = %+v", m.Items[0])
	}

	wresp := &MultiWriteResp{Status: StatusOK, Items: []MultiWriteResult{
		{Status: StatusOK, Version: 10}, {Status: StatusError}, {Status: StatusOK, Version: 12},
	}}
	b, err = Marshal(Envelope{RPCID: 10, Msg: wresp})
	if err != nil {
		t.Fatal(err)
	}
	got, err = Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	wm := got.Msg.(*MultiWriteResp)
	if len(wm.Items) != 3 || wm.Items[1].Status != StatusError || wm.Items[2].Version != 12 {
		t.Fatalf("write items = %+v", wm.Items)
	}
}

func TestQuickMultiReadReqRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		var items []MultiReadItem
		for i := 0; i < rng.Intn(8); i++ {
			key := make([]byte, 1+rng.Intn(20))
			rng.Read(key)
			items = append(items, MultiReadItem{Table: rng.Uint64(), Key: key})
		}
		env := Envelope{RPCID: rng.Uint64(), Msg: &MultiReadReq{Items: items}}
		b, err := Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatal(err)
		}
		m := got.Msg.(*MultiReadReq)
		if len(m.Items) != len(items) {
			t.Fatalf("items = %d, want %d", len(m.Items), len(items))
		}
		for i := range items {
			if m.Items[i].Table != items[i].Table || !bytes.Equal(m.Items[i].Key, items[i].Key) {
				t.Fatalf("item %d mismatch", i)
			}
		}
	}
}

func TestHeaderLayout(t *testing.T) {
	b, err := Marshal(Envelope{RPCID: 0x1122334455667788, Msg: &PingReq{Seq: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if Op(b[0]) != OpPingReq {
		t.Fatalf("op byte = %d", b[0])
	}
	if b[1] != 0x88 || b[8] != 0x11 {
		t.Fatal("rpc id not little-endian in header")
	}
}
