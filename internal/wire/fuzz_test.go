package wire

import "testing"

// FuzzDecode feeds arbitrary bytes to Unmarshal: it must never panic or
// over-read, and anything it accepts must re-encode and decode to the same
// opcode. This is the groundwork for a real-transport backend, where the
// decoder faces bytes from the network rather than from Marshal.
func FuzzDecode(f *testing.F) {
	for _, msg := range allMessages() {
		if b, err := Marshal(Envelope{RPCID: 7, Msg: msg}); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{255, 1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		env, err := Unmarshal(b)
		if err != nil {
			return // rejected input; all that matters is no panic
		}
		// Accepted messages are canonical: decoded value lengths always
		// match the carried bytes, so a re-encode must succeed and survive
		// a second decode.
		out, err := Marshal(env)
		if err != nil {
			t.Fatalf("re-Marshal of accepted input failed: %v", err)
		}
		env2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-Unmarshal failed: %v", err)
		}
		if env2.Msg.Op() != env.Msg.Op() || env2.RPCID != env.RPCID {
			t.Fatalf("round trip changed identity: op %d/%d id %d/%d",
				env.Msg.Op(), env2.Msg.Op(), env.RPCID, env2.RPCID)
		}
	})
}
