package wire

// Message is implemented by every wire message struct (pointer receivers).
// The interface replaces the package's former OpOf and Size type switches:
// the RPC fast path dispatches through two devirtualizable methods instead
// of walking a ~34-case switch twice per RPC, and messages cross the
// simulated fabric without any `any` boxing.
//
// The unexported encodeBody method seals the interface: only types declared
// in this package can be wire messages, so the codec (and the round-trip
// test over all opcodes) is guaranteed to cover every implementation.
type Message interface {
	// Op returns the message's opcode.
	Op() Op
	// WireSize returns the exact on-wire size in bytes, header included,
	// counting declared value lengths for virtual payloads.
	WireSize() int
	// encodeBody appends the message body (everything after the header)
	// to the encoder.
	encodeBody(e *encoder) error
}

// Response is implemented by every response message that carries a Status.
type Response interface {
	Message
	// RespStatus returns the response's status code.
	RespStatus() Status
}

// Client data plane --------------------------------------------------------

func (*ReadReq) Op() Op          { return OpReadReq }
func (m *ReadReq) WireSize() int { return headerSize + 8 + 4 + len(m.Key) }
func (m *ReadReq) encodeBody(e *encoder) error {
	e.u64(m.Table)
	e.bytes(m.Key)
	return nil
}

func (*ReadResp) Op() Op               { return OpReadResp }
func (m *ReadResp) WireSize() int      { return headerSize + 1 + 8 + 4 + int(m.ValueLen) }
func (m *ReadResp) RespStatus() Status { return m.Status }
func (m *ReadResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	e.u64(m.Version)
	return encodeValue(e, m.ValueLen, m.Value)
}

func (*WriteReq) Op() Op          { return OpWriteReq }
func (m *WriteReq) WireSize() int { return headerSize + 8 + 4 + len(m.Key) + 4 + int(m.ValueLen) }
func (m *WriteReq) encodeBody(e *encoder) error {
	e.u64(m.Table)
	e.bytes(m.Key)
	return encodeValue(e, m.ValueLen, m.Value)
}

func (*WriteResp) Op() Op               { return OpWriteResp }
func (*WriteResp) WireSize() int        { return headerSize + 1 + 8 }
func (m *WriteResp) RespStatus() Status { return m.Status }
func (m *WriteResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	e.u64(m.Version)
	return nil
}

func (*DeleteReq) Op() Op          { return OpDeleteReq }
func (m *DeleteReq) WireSize() int { return headerSize + 8 + 4 + len(m.Key) }
func (m *DeleteReq) encodeBody(e *encoder) error {
	e.u64(m.Table)
	e.bytes(m.Key)
	return nil
}

func (*DeleteResp) Op() Op               { return OpDeleteResp }
func (*DeleteResp) WireSize() int        { return headerSize + 1 + 8 }
func (m *DeleteResp) RespStatus() Status { return m.Status }
func (m *DeleteResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	e.u64(m.Version)
	return nil
}

func (*MultiReadReq) Op() Op { return OpMultiReadReq }
func (m *MultiReadReq) WireSize() int {
	body := 4
	for i := range m.Items {
		body += 8 + 4 + len(m.Items[i].Key)
	}
	return headerSize + body
}
func (m *MultiReadReq) encodeBody(e *encoder) error {
	e.u32(uint32(len(m.Items)))
	for i := range m.Items {
		e.u64(m.Items[i].Table)
		e.bytes(m.Items[i].Key)
	}
	return nil
}

func (*MultiReadResp) Op() Op { return OpMultiReadResp }
func (m *MultiReadResp) WireSize() int {
	body := 1 + 4
	for i := range m.Items {
		body += 1 + 8 + 4 + int(m.Items[i].ValueLen)
	}
	return headerSize + body
}
func (m *MultiReadResp) RespStatus() Status { return m.Status }
func (m *MultiReadResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	e.u32(uint32(len(m.Items)))
	for i := range m.Items {
		it := &m.Items[i]
		e.u8(uint8(it.Status))
		e.u64(it.Version)
		if err := encodeValue(e, it.ValueLen, it.Value); err != nil {
			return err
		}
	}
	return nil
}

func (*MultiWriteReq) Op() Op { return OpMultiWriteReq }
func (m *MultiWriteReq) WireSize() int {
	body := 4
	for i := range m.Items {
		body += 8 + 4 + len(m.Items[i].Key) + 4 + int(m.Items[i].ValueLen)
	}
	return headerSize + body
}
func (m *MultiWriteReq) encodeBody(e *encoder) error {
	e.u32(uint32(len(m.Items)))
	for i := range m.Items {
		it := &m.Items[i]
		e.u64(it.Table)
		e.bytes(it.Key)
		if err := encodeValue(e, it.ValueLen, it.Value); err != nil {
			return err
		}
	}
	return nil
}

func (*MultiWriteResp) Op() Op { return OpMultiWriteResp }
func (m *MultiWriteResp) WireSize() int {
	return headerSize + 1 + 4 + len(m.Items)*(1+8)
}
func (m *MultiWriteResp) RespStatus() Status { return m.Status }
func (m *MultiWriteResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	e.u32(uint32(len(m.Items)))
	for i := range m.Items {
		e.u8(uint8(m.Items[i].Status))
		e.u64(m.Items[i].Version)
	}
	return nil
}

// Coordinator control plane ------------------------------------------------

func (*CreateTableReq) Op() Op          { return OpCreateTableReq }
func (m *CreateTableReq) WireSize() int { return headerSize + 4 + len(m.Name) + 4 }
func (m *CreateTableReq) encodeBody(e *encoder) error {
	e.str(m.Name)
	e.u32(m.ServerSpan)
	return nil
}

func (*CreateTableResp) Op() Op               { return OpCreateTableResp }
func (*CreateTableResp) WireSize() int        { return headerSize + 1 + 8 }
func (m *CreateTableResp) RespStatus() Status { return m.Status }
func (m *CreateTableResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	e.u64(m.Table)
	return nil
}

func (*DropTableReq) Op() Op          { return OpDropTableReq }
func (m *DropTableReq) WireSize() int { return headerSize + 4 + len(m.Name) }
func (m *DropTableReq) encodeBody(e *encoder) error {
	e.str(m.Name)
	return nil
}

func (*DropTableResp) Op() Op               { return OpDropTableResp }
func (*DropTableResp) WireSize() int        { return headerSize + 1 }
func (m *DropTableResp) RespStatus() Status { return m.Status }
func (m *DropTableResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	return nil
}

func (*GetTabletMapReq) Op() Op                      { return OpGetTabletMapReq }
func (*GetTabletMapReq) WireSize() int               { return headerSize }
func (*GetTabletMapReq) encodeBody(e *encoder) error { return nil }

func (*GetTabletMapResp) Op() Op { return OpGetTabletMapResp }
func (m *GetTabletMapResp) WireSize() int {
	return headerSize + 1 + 4 + len(m.Tablets)*tabletSize
}
func (m *GetTabletMapResp) RespStatus() Status { return m.Status }
func (m *GetTabletMapResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	e.u32(uint32(len(m.Tablets)))
	for i := range m.Tablets {
		encodeTablet(e, &m.Tablets[i])
	}
	return nil
}

func (*EnlistReq) Op() Op        { return OpEnlistReq }
func (*EnlistReq) WireSize() int { return headerSize + 4 + 8 + 1 }
func (m *EnlistReq) encodeBody(e *encoder) error {
	e.i32(m.Node)
	e.i64(m.MemoryBytes)
	e.b1(m.HasBackup)
	return nil
}

func (*EnlistResp) Op() Op               { return OpEnlistResp }
func (*EnlistResp) WireSize() int        { return headerSize + 1 + 4 }
func (m *EnlistResp) RespStatus() Status { return m.Status }
func (m *EnlistResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	e.i32(m.ServerID)
	return nil
}

func (*PingReq) Op() Op        { return OpPingReq }
func (*PingReq) WireSize() int { return headerSize + 8 }
func (m *PingReq) encodeBody(e *encoder) error {
	e.u64(m.Seq)
	return nil
}

func (*PingResp) Op() Op        { return OpPingResp }
func (*PingResp) WireSize() int { return headerSize + 8 }
func (m *PingResp) encodeBody(e *encoder) error {
	e.u64(m.Seq)
	return nil
}

func (*SetWillReq) Op() Op          { return OpSetWillReq }
func (m *SetWillReq) WireSize() int { return headerSize + 4 + 4 + len(m.Partitions)*willPartSize }
func (m *SetWillReq) encodeBody(e *encoder) error {
	e.i32(m.Master)
	e.u32(uint32(len(m.Partitions)))
	for _, pt := range m.Partitions {
		e.u64(pt.FirstHash)
		e.u64(pt.LastHash)
	}
	return nil
}

func (*SetWillResp) Op() Op               { return OpSetWillResp }
func (*SetWillResp) WireSize() int        { return headerSize + 1 }
func (m *SetWillResp) RespStatus() Status { return m.Status }
func (m *SetWillResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	return nil
}

// Replication plane ---------------------------------------------------------

func (*OpenSegmentReq) Op() Op        { return OpOpenSegmentReq }
func (*OpenSegmentReq) WireSize() int { return headerSize + 4 + 8 }
func (m *OpenSegmentReq) encodeBody(e *encoder) error {
	e.i32(m.Master)
	e.u64(m.Segment)
	return nil
}

func (*OpenSegmentResp) Op() Op               { return OpOpenSegmentResp }
func (*OpenSegmentResp) WireSize() int        { return headerSize + 1 }
func (m *OpenSegmentResp) RespStatus() Status { return m.Status }
func (m *OpenSegmentResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	return nil
}

func (*ReplicateReq) Op() Op { return OpReplicateReq }
func (m *ReplicateReq) WireSize() int {
	body := 4 + 8 + 4
	for i := range m.Objects {
		body += objectSize(&m.Objects[i])
	}
	return headerSize + body
}
func (m *ReplicateReq) encodeBody(e *encoder) error {
	e.i32(m.Master)
	e.u64(m.Segment)
	e.u32(uint32(len(m.Objects)))
	for i := range m.Objects {
		if err := encodeObject(e, &m.Objects[i]); err != nil {
			return err
		}
	}
	return nil
}

func (*ReplicateResp) Op() Op               { return OpReplicateResp }
func (*ReplicateResp) WireSize() int        { return headerSize + 1 }
func (m *ReplicateResp) RespStatus() Status { return m.Status }
func (m *ReplicateResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	return nil
}

func (*CloseSegmentReq) Op() Op        { return OpCloseSegmentReq }
func (*CloseSegmentReq) WireSize() int { return headerSize + 4 + 8 + 4 }
func (m *CloseSegmentReq) encodeBody(e *encoder) error {
	e.i32(m.Master)
	e.u64(m.Segment)
	e.u32(m.SegmentBytes)
	return nil
}

func (*CloseSegmentResp) Op() Op               { return OpCloseSegmentResp }
func (*CloseSegmentResp) WireSize() int        { return headerSize + 1 }
func (m *CloseSegmentResp) RespStatus() Status { return m.Status }
func (m *CloseSegmentResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	return nil
}

func (*FreeReplicasReq) Op() Op        { return OpFreeReplicasReq }
func (*FreeReplicasReq) WireSize() int { return headerSize + 4 }
func (m *FreeReplicasReq) encodeBody(e *encoder) error {
	e.i32(m.Master)
	return nil
}

func (*FreeReplicasResp) Op() Op               { return OpFreeReplicasResp }
func (*FreeReplicasResp) WireSize() int        { return headerSize + 1 }
func (m *FreeReplicasResp) RespStatus() Status { return m.Status }
func (m *FreeReplicasResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	return nil
}

func (*RDMAWriteReq) Op() Op { return OpRDMAWriteReq }
func (m *RDMAWriteReq) WireSize() int {
	body := 4 + 8 + 4
	for i := range m.Objects {
		body += objectSize(&m.Objects[i])
	}
	return headerSize + body
}
func (m *RDMAWriteReq) encodeBody(e *encoder) error {
	e.i32(m.Master)
	e.u64(m.Segment)
	e.u32(uint32(len(m.Objects)))
	for i := range m.Objects {
		if err := encodeObject(e, &m.Objects[i]); err != nil {
			return err
		}
	}
	return nil
}

func (*RDMAWriteResp) Op() Op               { return OpRDMAWriteResp }
func (*RDMAWriteResp) WireSize() int        { return headerSize + 1 }
func (m *RDMAWriteResp) RespStatus() Status { return m.Status }
func (m *RDMAWriteResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	return nil
}

// Recovery plane -------------------------------------------------------------

func (*SegmentInventoryReq) Op() Op        { return OpSegmentInventoryReq }
func (*SegmentInventoryReq) WireSize() int { return headerSize + 4 }
func (m *SegmentInventoryReq) encodeBody(e *encoder) error {
	e.i32(m.Master)
	return nil
}

func (*SegmentInventoryResp) Op() Op { return OpSegmentInventoryResp }
func (m *SegmentInventoryResp) WireSize() int {
	return headerSize + 1 + 4 + len(m.Segments)*segInfoSize
}
func (m *SegmentInventoryResp) RespStatus() Status { return m.Status }
func (m *SegmentInventoryResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	e.u32(uint32(len(m.Segments)))
	for _, s := range m.Segments {
		e.u64(s.Segment)
		e.u32(s.Bytes)
	}
	return nil
}

func (*GetRecoveryDataReq) Op() Op        { return OpGetRecoveryDataReq }
func (*GetRecoveryDataReq) WireSize() int { return headerSize + 4 + 8 + 8 + 8 }
func (m *GetRecoveryDataReq) encodeBody(e *encoder) error {
	e.i32(m.Master)
	e.u64(m.Segment)
	e.u64(m.FirstHash)
	e.u64(m.LastHash)
	return nil
}

func (*GetRecoveryDataResp) Op() Op { return OpGetRecoveryDataResp }
func (m *GetRecoveryDataResp) WireSize() int {
	body := 1 + 4 + 4
	for i := range m.Objects {
		body += objectSize(&m.Objects[i])
	}
	return headerSize + body
}
func (m *GetRecoveryDataResp) RespStatus() Status { return m.Status }
func (m *GetRecoveryDataResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	e.u32(m.SegmentBytes)
	e.u32(uint32(len(m.Objects)))
	for i := range m.Objects {
		if err := encodeObject(e, &m.Objects[i]); err != nil {
			return err
		}
	}
	return nil
}

func (*RecoverReq) Op() Op { return OpRecoverReq }
func (m *RecoverReq) WireSize() int {
	return headerSize + 4 + 8 + 8 +
		4 + len(m.Tablets)*tabletSize +
		4 + len(m.Segments)*segLocSize
}
func (m *RecoverReq) encodeBody(e *encoder) error {
	e.i32(m.Crashed)
	e.u64(m.FirstHash)
	e.u64(m.LastHash)
	e.u32(uint32(len(m.Tablets)))
	for i := range m.Tablets {
		encodeTablet(e, &m.Tablets[i])
	}
	e.u32(uint32(len(m.Segments)))
	for _, s := range m.Segments {
		e.u64(s.Segment)
		e.i32(s.Backup)
		e.u32(s.Bytes)
	}
	return nil
}

func (*RecoverResp) Op() Op               { return OpRecoverResp }
func (*RecoverResp) WireSize() int        { return headerSize + 1 }
func (m *RecoverResp) RespStatus() Status { return m.Status }
func (m *RecoverResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	return nil
}

func (*RecoveryDoneReq) Op() Op        { return OpRecoveryDoneReq }
func (*RecoveryDoneReq) WireSize() int { return headerSize + 4 + 8 + 1 }
func (m *RecoveryDoneReq) encodeBody(e *encoder) error {
	e.i32(m.Crashed)
	e.u64(m.FirstHash)
	e.b1(m.Ok)
	return nil
}

func (*RecoveryDoneResp) Op() Op               { return OpRecoveryDoneResp }
func (*RecoveryDoneResp) WireSize() int        { return headerSize + 1 }
func (m *RecoveryDoneResp) RespStatus() Status { return m.Status }
func (m *RecoveryDoneResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	return nil
}

// Migration plane ------------------------------------------------------------

func (*MigrateTabletReq) Op() Op        { return OpMigrateTabletReq }
func (*MigrateTabletReq) WireSize() int { return headerSize + 8 + 8 + 8 + 4 }
func (m *MigrateTabletReq) encodeBody(e *encoder) error {
	e.u64(m.Table)
	e.u64(m.FirstHash)
	e.u64(m.LastHash)
	e.i32(m.Dst)
	return nil
}

func (*MigrateTabletResp) Op() Op               { return OpMigrateTabletResp }
func (*MigrateTabletResp) WireSize() int        { return headerSize + 1 + 4 }
func (m *MigrateTabletResp) RespStatus() Status { return m.Status }
func (m *MigrateTabletResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	e.u32(m.Moved)
	return nil
}

func (*TakeTabletReq) Op() Op { return OpTakeTabletReq }
func (m *TakeTabletReq) WireSize() int {
	body := 8 + 8 + 8 + 4
	for i := range m.Objects {
		body += objectSize(&m.Objects[i])
	}
	return headerSize + body
}
func (m *TakeTabletReq) encodeBody(e *encoder) error {
	e.u64(m.Table)
	e.u64(m.FirstHash)
	e.u64(m.LastHash)
	e.u32(uint32(len(m.Objects)))
	for i := range m.Objects {
		if err := encodeObject(e, &m.Objects[i]); err != nil {
			return err
		}
	}
	return nil
}

func (*TakeTabletResp) Op() Op               { return OpTakeTabletResp }
func (*TakeTabletResp) WireSize() int        { return headerSize + 1 }
func (m *TakeTabletResp) RespStatus() Status { return m.Status }
func (m *TakeTabletResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	return nil
}

// Real-transport control plane ----------------------------------------------

func (*EnlistAddrReq) Op() Op          { return OpEnlistAddrReq }
func (m *EnlistAddrReq) WireSize() int { return headerSize + 4 + len(m.Addr) + 8 }
func (m *EnlistAddrReq) encodeBody(e *encoder) error {
	e.str(m.Addr)
	e.i64(m.MemoryBytes)
	return nil
}

func (*EnlistAddrResp) Op() Op               { return OpEnlistAddrResp }
func (*EnlistAddrResp) WireSize() int        { return headerSize + 1 + 4 }
func (m *EnlistAddrResp) RespStatus() Status { return m.Status }
func (m *EnlistAddrResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	e.i32(m.ServerID)
	return nil
}

func (*ServerListReq) Op() Op                      { return OpServerListReq }
func (*ServerListReq) WireSize() int               { return headerSize }
func (*ServerListReq) encodeBody(e *encoder) error { return nil }

func (*ServerListResp) Op() Op { return OpServerListResp }
func (m *ServerListResp) WireSize() int {
	body := 1 + 4
	for i := range m.Servers {
		body += 4 + 4 + len(m.Servers[i].Addr)
	}
	return headerSize + body
}
func (m *ServerListResp) RespStatus() Status { return m.Status }
func (m *ServerListResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	e.u32(uint32(len(m.Servers)))
	for i := range m.Servers {
		e.i32(m.Servers[i].ID)
		e.str(m.Servers[i].Addr)
	}
	return nil
}

func (*AssignTabletsReq) Op() Op { return OpAssignTabletsReq }
func (m *AssignTabletsReq) WireSize() int {
	return headerSize + 4 + len(m.Tablets)*tabletSize
}
func (m *AssignTabletsReq) encodeBody(e *encoder) error {
	e.u32(uint32(len(m.Tablets)))
	for i := range m.Tablets {
		encodeTablet(e, &m.Tablets[i])
	}
	return nil
}

func (*AssignTabletsResp) Op() Op               { return OpAssignTabletsResp }
func (*AssignTabletsResp) WireSize() int        { return headerSize + 1 }
func (m *AssignTabletsResp) RespStatus() Status { return m.Status }
func (m *AssignTabletsResp) encodeBody(e *encoder) error {
	e.u8(uint8(m.Status))
	return nil
}
