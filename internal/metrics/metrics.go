// Package metrics provides counters, per-second time series and logarithmic
// histograms used to instrument the simulated cluster. The package is
// deliberately independent of the simulation engine: callers index series by
// integer second so the same types serve CPU, power, disk and latency data.
//
// None of these types are safe for concurrent use; the simulation engine's
// strict hand-off makes external locking unnecessary.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter. Negative deltas panic: counters only grow.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative delta on Counter")
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// AtomicCounter is a Counter safe for concurrent increments. Addition is
// commutative, so a total incremented from several event lanes is still
// deterministic — use it for cross-lane aggregates (the fabric's
// delivered/dropped totals) where a plain Counter would race under the
// sharded engine. Everything order-sensitive (series, histograms) must
// stay lane-confined instead.
type AtomicCounter struct {
	n atomic.Int64
}

// Inc adds one to the counter.
func (c *AtomicCounter) Inc() { c.n.Add(1) }

// Add adds delta to the counter. Negative deltas panic: counters only grow.
func (c *AtomicCounter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative delta on AtomicCounter")
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *AtomicCounter) Value() int64 { return c.n.Load() }

// Series is a per-second time series. Index 0 covers simulated time
// [0s, 1s), index 1 covers [1s, 2s), and so on.
type Series struct {
	vals []float64
}

// Add accumulates v into the bucket for the given second, growing the
// series as needed. Negative seconds are ignored.
func (s *Series) Add(second int, v float64) {
	if second < 0 {
		return
	}
	for len(s.vals) <= second {
		s.vals = append(s.vals, 0)
	}
	s.vals[second] += v
}

// Set overwrites the bucket for the given second.
func (s *Series) Set(second int, v float64) {
	if second < 0 {
		return
	}
	for len(s.vals) <= second {
		s.vals = append(s.vals, 0)
	}
	s.vals[second] = v
}

// At returns the value for the given second (0 when out of range).
func (s *Series) At(second int) float64 {
	if second < 0 || second >= len(s.vals) {
		return 0
	}
	return s.vals[second]
}

// Len returns the number of seconds covered.
func (s *Series) Len() int { return len(s.vals) }

// Values returns a copy of the underlying buckets.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Sum returns the sum over [from, to).
func (s *Series) Sum(from, to int) float64 {
	total := 0.0
	for i := max(from, 0); i < to && i < len(s.vals); i++ {
		total += s.vals[i]
	}
	return total
}

// Mean returns the average over [from, to); zero if the range is empty.
func (s *Series) Mean(from, to int) float64 {
	from = max(from, 0)
	to = min(to, len(s.vals))
	if to <= from {
		return 0
	}
	return s.Sum(from, to) / float64(to-from)
}

// Max returns the maximum over [from, to).
func (s *Series) Max(from, to int) float64 {
	m := math.Inf(-1)
	found := false
	for i := max(from, 0); i < to && i < len(s.vals); i++ {
		if s.vals[i] > m {
			m = s.vals[i]
			found = true
		}
	}
	if !found {
		return 0
	}
	return m
}

// Histogram records non-negative int64 samples (typically latencies in
// nanoseconds) in logarithmic buckets: 64 powers of two, each split into 16
// linear sub-buckets, giving a worst-case relative error of ~6%.
type Histogram struct {
	buckets [64 * subBuckets]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

const subBuckets = 16

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v) // exact for tiny values
	}
	exp := 63 - leadingZeros64(uint64(v))
	base := exp * subBuckets
	sub := int((v >> (uint(exp) - 4)) & (subBuckets - 1))
	return base + sub
}

func leadingZeros64(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// bucketLow returns the lower bound of bucket i.
func bucketLow(i int) int64 {
	exp := i / subBuckets
	sub := i % subBuckets
	if exp == 0 {
		return int64(sub)
	}
	return (1 << uint(exp)) + int64(sub)<<(uint(exp)-4)
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the arithmetic mean of the samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest recorded sample, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an approximation of the q-quantile (0 <= q <= 1).
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return h.max
}

// Merge adds all samples from other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Summary renders count/mean/p50/p95/p99/max with a unit divisor (e.g. 1000
// for microseconds from nanosecond samples).
func (h *Histogram) Summary(unitDiv float64, unit string) string {
	if h.count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%.1f%s p50=%.1f%s p95=%.1f%s p99=%.1f%s max=%.1f%s",
		h.count,
		h.Mean()/unitDiv, unit,
		float64(h.Quantile(0.50))/unitDiv, unit,
		float64(h.Quantile(0.95))/unitDiv, unit,
		float64(h.Quantile(0.99))/unitDiv, unit,
		float64(h.max)/unitDiv, unit)
}

// Distribution summarises a float64 sample set (used for run-to-run error
// bars, mirroring the paper's 5-run averages).
type Distribution struct {
	samples []float64
}

// Add appends one sample.
func (d *Distribution) Add(v float64) { d.samples = append(d.samples, v) }

// N returns the sample count.
func (d *Distribution) N() int { return len(d.samples) }

// Mean returns the sample mean.
func (d *Distribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range d.samples {
		s += v
	}
	return s / float64(len(d.samples))
}

// Stddev returns the sample standard deviation (n-1 denominator).
func (d *Distribution) Stddev() float64 {
	n := len(d.samples)
	if n < 2 {
		return 0
	}
	m := d.Mean()
	ss := 0.0
	for _, v := range d.samples {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(n-1))
}

// Median returns the sample median.
func (d *Distribution) Median() float64 {
	n := len(d.samples)
	if n == 0 {
		return 0
	}
	cp := make([]float64, n)
	copy(cp, d.samples)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// FormatTable renders rows of cells as an aligned plain-text table.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
