package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Add(2, 1.5)
	s.Add(2, 0.5)
	s.Add(0, 3)
	if s.At(2) != 2.0 || s.At(0) != 3.0 || s.At(1) != 0 {
		t.Fatalf("series = %v", s.Values())
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Sum(0, 3) != 5.0 {
		t.Fatalf("sum = %v", s.Sum(0, 3))
	}
	if s.Mean(0, 3) != 5.0/3 {
		t.Fatalf("mean = %v", s.Mean(0, 3))
	}
	if s.Max(0, 3) != 3.0 {
		t.Fatalf("max = %v", s.Max(0, 3))
	}
	if s.At(99) != 0 || s.At(-1) != 0 {
		t.Fatal("out-of-range At should be 0")
	}
}

func TestSeriesSetAndNegativeIgnored(t *testing.T) {
	var s Series
	s.Set(1, 7)
	s.Set(1, 9)
	s.Add(-5, 100)
	if s.At(1) != 9 || s.Len() != 2 {
		t.Fatalf("series = %v", s.Values())
	}
}

func TestSeriesEmptyRanges(t *testing.T) {
	var s Series
	if s.Mean(0, 0) != 0 || s.Max(3, 1) != 0 || s.Sum(5, 2) != 0 {
		t.Fatal("empty ranges must be zero")
	}
}

func TestHistogramExactSmall(t *testing.T) {
	h := NewHistogram()
	for i := int64(0); i < 16; i++ {
		h.Record(i)
	}
	if h.Count() != 16 || h.Min() != 0 || h.Max() != 15 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if h.Quantile(0) != 0 {
		t.Fatalf("q0 = %d", h.Quantile(0))
	}
	if h.Quantile(1) != 15 {
		t.Fatalf("q1 = %d", h.Quantile(1))
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	var samples []int64
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * 50_000) // exponential latencies ~50us
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := h.Quantile(q)
		if exact == 0 {
			continue
		}
		relErr := math.Abs(float64(got-exact)) / float64(exact)
		if relErr > 0.10 {
			t.Errorf("q%.2f: got %d, exact %d, rel err %.3f", q, got, exact, relErr)
		}
	}
	mean := 0.0
	for _, v := range samples {
		mean += float64(v)
	}
	mean /= float64(len(samples))
	if math.Abs(h.Mean()-mean) > 1e-6 {
		t.Errorf("mean: got %v, want %v", h.Mean(), mean)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		h.Record(int64(rng.Intn(1_000_000)))
	}
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotonic at q=%.2f: %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatalf("min=%d count=%d", h.Min(), h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(1); i <= 100; i++ {
		a.Record(i)
	}
	for i := int64(101); i <= 200; i++ {
		b.Record(i)
	}
	a.Merge(b)
	if a.Count() != 200 || a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged count=%d min=%d max=%d", a.Count(), a.Min(), a.Max())
	}
	empty := NewHistogram()
	a.Merge(empty)
	if a.Count() != 200 {
		t.Fatal("merging empty changed count")
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	if h.Summary(1000, "us") != "no samples" {
		t.Fatal("empty summary")
	}
	h.Record(10_000)
	s := h.Summary(1000, "us")
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "us") {
		t.Fatalf("summary = %q", s)
	}
}

func TestBucketIndexInvariants(t *testing.T) {
	f := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		i := bucketIndex(v)
		if i < 0 || i >= 64*subBuckets {
			return false
		}
		lo := bucketLow(i)
		// Lower bound must not exceed the value, and the next bucket's lower
		// bound must exceed it (within the bucket granularity).
		if lo > v {
			return false
		}
		if i+1 < 64*subBuckets {
			next := bucketLow(i + 1)
			if next <= v && bucketIndex(v) == i && next != lo {
				// v should then have mapped to a later bucket
				return bucketIndex(v) >= i
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	if d.Mean() != 0 || d.Median() != 0 || d.Stddev() != 0 {
		t.Fatal("empty distribution must be zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 100} {
		d.Add(v)
	}
	if d.N() != 5 {
		t.Fatalf("n = %d", d.N())
	}
	if d.Mean() != 22 {
		t.Fatalf("mean = %v", d.Mean())
	}
	if d.Median() != 3 {
		t.Fatalf("median = %v", d.Median())
	}
	if d.Stddev() < 43 || d.Stddev() > 44 {
		t.Fatalf("stddev = %v", d.Stddev())
	}
	var even Distribution
	even.Add(1)
	even.Add(3)
	if even.Median() != 2 {
		t.Fatalf("even median = %v", even.Median())
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "long-header"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a  ") {
		t.Fatalf("header = %q", lines[0])
	}
}
