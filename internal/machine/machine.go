// Package machine models the physical nodes of the testbed: a fixed number
// of cores with per-second busy-time accounting, mirroring the Grid'5000
// Nancy nodes used in the paper (1x Intel Xeon X3440, 4 cores, 16 GB RAM,
// 298 GB HDD, Infiniband-20G).
//
// CPU time is accounted two ways:
//
//   - Pinned cores: RAMCloud's dispatch thread busy-polls the NIC and
//     permanently occupies one core ("RAMCloud hogs one core per machine for
//     its polling mechanism"). Pinned occupancy is integrated lazily as a
//     step function.
//   - Busy spans: workers, cleaners and replay threads add explicit
//     [from, to) busy intervals, including their spin-before-sleep windows.
//
// The per-second utilization series reproduces the paper's Table I and
// Fig. 9a measurements.
package machine

import (
	"fmt"

	"ramcloud/internal/metrics"
	"ramcloud/internal/sim"
)

// Spec describes node hardware.
type Spec struct {
	Name      string
	Cores     int
	DRAMBytes int64
	DiskBytes int64
}

// Grid5000Nancy returns the node type used throughout the paper.
func Grid5000Nancy() Spec {
	return Spec{
		Name:      "grid5000-nancy-x3440",
		Cores:     4,
		DRAMBytes: 16 << 30,
		DiskBytes: 298 << 30,
	}
}

// Node is one simulated machine.
type Node struct {
	ID   int
	Spec Spec

	eng *sim.Engine

	busyNS []int64 // busy core-nanoseconds per simulated second

	pinned      int      // currently pinned cores (step function)
	pinnedSince sim.Time // start of the current pinned level

	alive bool
}

// NewNode returns an alive node with no load.
func NewNode(e *sim.Engine, id int, spec Spec) *Node {
	if spec.Cores <= 0 {
		panic("machine: node must have at least one core")
	}
	return &Node{ID: id, Spec: spec, eng: e, alive: true}
}

// Alive reports whether the node is powered and serving.
func (n *Node) Alive() bool { return n.alive }

// Kill marks the node dead (process crash). Accounting stops: pinned cores
// are flushed and released.
func (n *Node) Kill() {
	n.flushPinned(n.eng.Now())
	n.pinned = 0
	n.alive = false
}

// Revive powers a killed node back on (process restart on the same
// hardware). Accounting resumes from now with no pinned cores; the restarted
// process pins its own.
func (n *Node) Revive() {
	if n.alive {
		return
	}
	n.alive = true
	n.pinned = 0
	n.pinnedSince = n.eng.Now()
}

// String identifies the node in logs.
func (n *Node) String() string { return fmt.Sprintf("node-%d", n.ID) }

func (n *Node) bucketAdd(from, to sim.Time, sign int64) {
	if to <= from {
		return
	}
	for t := from; t < to; {
		second := int64(t) / int64(sim.Second)
		bucketEnd := sim.Time((second + 1) * int64(sim.Second))
		end := to
		if bucketEnd < end {
			end = bucketEnd
		}
		idx := int(second)
		for len(n.busyNS) <= idx {
			n.busyNS = append(n.busyNS, 0)
		}
		n.busyNS[idx] += sign * int64(end-t)
		t = end
	}
}

// AddBusy records one core busy over [from, to). Spans may lie (slightly) in
// the future for optimistic spin accounting.
func (n *Node) AddBusy(from, to sim.Time) { n.bucketAdd(from, to, 1) }

// SubBusy removes previously added busy time (spin over-accounting
// correction).
func (n *Node) SubBusy(from, to sim.Time) { n.bucketAdd(from, to, -1) }

// PinCores changes the number of permanently busy cores by delta (e.g. +1
// when a dispatch thread starts).
func (n *Node) PinCores(delta int) {
	now := n.eng.Now()
	n.flushPinned(now)
	n.pinned += delta
	if n.pinned < 0 {
		panic("machine: negative pinned core count")
	}
	if n.pinned > n.Spec.Cores {
		panic("machine: pinned more cores than the node has")
	}
}

// PinnedCores returns the current pinned-core level.
func (n *Node) PinnedCores() int { return n.pinned }

func (n *Node) flushPinned(now sim.Time) {
	if n.pinned > 0 && now > n.pinnedSince {
		for i := 0; i < n.pinned; i++ {
			n.bucketAdd(n.pinnedSince, now, 1)
		}
	}
	n.pinnedSince = now
}

// FlushAccounting integrates pinned-core time up to now. Samplers call this
// at each tick before reading utilization.
func (n *Node) FlushAccounting(now sim.Time) { n.flushPinned(now) }

// UtilSecond returns the CPU utilization (0..1) during second k. Call
// FlushAccounting first when sampling the just-finished second.
func (n *Node) UtilSecond(k int) float64 {
	if k < 0 || k >= len(n.busyNS) {
		return 0
	}
	u := float64(n.busyNS[k]) / (float64(n.Spec.Cores) * float64(sim.Second))
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// UtilSeries returns the utilization for seconds [0, upto) as a Series.
func (n *Node) UtilSeries(upto int) *metrics.Series {
	var s metrics.Series
	for k := 0; k < upto; k++ {
		s.Set(k, n.UtilSecond(k))
	}
	return &s
}

// MeanUtil returns the average utilization over seconds [from, to).
func (n *Node) MeanUtil(from, to int) float64 {
	if to <= from {
		return 0
	}
	sum := 0.0
	for k := from; k < to; k++ {
		sum += n.UtilSecond(k)
	}
	return sum / float64(to-from)
}
