package machine

import (
	"testing"

	"ramcloud/internal/sim"
)

func newNode(t *testing.T) (*sim.Engine, *Node) {
	t.Helper()
	e := sim.New(1)
	return e, NewNode(e, 0, Grid5000Nancy())
}

func TestSpec(t *testing.T) {
	s := Grid5000Nancy()
	if s.Cores != 4 || s.DRAMBytes != 16<<30 {
		t.Fatalf("unexpected spec %+v", s)
	}
}

func TestAddBusySingleBucket(t *testing.T) {
	_, n := newNode(t)
	n.AddBusy(sim.Time(100*sim.Millisecond), sim.Time(600*sim.Millisecond))
	if got := n.UtilSecond(0); got != 0.5/4 {
		t.Fatalf("util = %v, want %v", got, 0.5/4)
	}
}

func TestAddBusySpansBuckets(t *testing.T) {
	_, n := newNode(t)
	n.AddBusy(sim.Time(500*sim.Millisecond), sim.Time(2500*sim.Millisecond))
	want := []float64{0.5 / 4, 1.0 / 4, 0.5 / 4}
	for k, w := range want {
		if got := n.UtilSecond(k); got != w {
			t.Fatalf("util[%d] = %v, want %v", k, got, w)
		}
	}
}

func TestSubBusyCorrection(t *testing.T) {
	_, n := newNode(t)
	n.AddBusy(0, sim.Time(sim.Second))
	n.SubBusy(sim.Time(500*sim.Millisecond), sim.Time(sim.Second))
	if got := n.UtilSecond(0); got != 0.5/4 {
		t.Fatalf("util = %v, want %v", got, 0.5/4)
	}
}

func TestUtilClamped(t *testing.T) {
	_, n := newNode(t)
	for i := 0; i < 10; i++ { // 10 core-seconds in a 4-core second
		n.AddBusy(0, sim.Time(sim.Second))
	}
	if got := n.UtilSecond(0); got != 1.0 {
		t.Fatalf("util = %v, want clamped to 1", got)
	}
	for i := 0; i < 20; i++ { // drive bucket 0 negative
		n.SubBusy(0, sim.Time(sim.Second))
	}
	if got := n.UtilSecond(0); got != 0 {
		t.Fatalf("util = %v, want clamped to 0", got)
	}
}

func TestPinnedCoresIntegration(t *testing.T) {
	e, n := newNode(t)
	e.Schedule(0, func() { n.PinCores(1) })
	e.Schedule(2*sim.Second, func() { n.PinCores(1) })  // second core pinned at t=2s
	e.Schedule(3*sim.Second, func() { n.PinCores(-2) }) // all released at t=3s
	e.Schedule(4*sim.Second, func() { n.FlushAccounting(e.Now()) })
	e.Run()
	want := []float64{0.25, 0.25, 0.5, 0}
	for k, w := range want {
		if got := n.UtilSecond(k); got != w {
			t.Fatalf("util[%d] = %v, want %v", k, got, w)
		}
	}
}

func TestPinnedFlushMidSecond(t *testing.T) {
	e, n := newNode(t)
	e.Schedule(0, func() { n.PinCores(1) })
	e.Schedule(sim.Duration(1500*sim.Millisecond), func() { n.FlushAccounting(e.Now()) })
	e.Run()
	if got := n.UtilSecond(0); got != 0.25 {
		t.Fatalf("util[0] = %v, want 0.25", got)
	}
	if got := n.UtilSecond(1); got != 0.125 {
		t.Fatalf("util[1] = %v, want 0.125", got)
	}
}

func TestKillStopsPinnedAccounting(t *testing.T) {
	e, n := newNode(t)
	e.Schedule(0, func() { n.PinCores(1) })
	e.Schedule(sim.Duration(sim.Second), func() { n.Kill() })
	e.Schedule(3*sim.Second, func() { n.FlushAccounting(e.Now()) })
	e.Run()
	if n.Alive() {
		t.Fatal("node should be dead")
	}
	if got := n.UtilSecond(0); got != 0.25 {
		t.Fatalf("util[0] = %v, want 0.25", got)
	}
	if got := n.UtilSecond(1); got != 0 {
		t.Fatalf("util[1] = %v, want 0 after kill", got)
	}
	if n.PinnedCores() != 0 {
		t.Fatalf("pinned = %d after kill", n.PinnedCores())
	}
}

func TestPinnedOverCommitPanics(t *testing.T) {
	_, n := newNode(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.PinCores(5)
}

func TestMeanUtilAndSeries(t *testing.T) {
	_, n := newNode(t)
	n.AddBusy(0, sim.Time(sim.Second))                      // 25% in second 0
	n.AddBusy(sim.Time(sim.Second), sim.Time(2*sim.Second)) // 25% in second 1
	n.AddBusy(sim.Time(sim.Second), sim.Time(2*sim.Second)) // +25% in second 1
	if got := n.MeanUtil(0, 2); got != (0.25+0.5)/2 {
		t.Fatalf("mean = %v", got)
	}
	s := n.UtilSeries(2)
	if s.At(0) != 0.25 || s.At(1) != 0.5 {
		t.Fatalf("series = %v", s.Values())
	}
	if n.MeanUtil(2, 2) != 0 {
		t.Fatal("empty mean must be 0")
	}
}
