// Package energy models the power instrumentation of the testbed: each node
// has a Power Distribution Unit (PDU) sampled once per second, exactly like
// the SNMP-polled PDUs on the Grid'5000 Nancy site used in the paper.
//
// Node power is dominated by CPU activity; the model is linear in CPU
// utilization with small additive terms for disk and NIC activity:
//
//	P = Idle + CPU*util + Disk*diskBusyFrac + NIC*nicBusyFrac
//
// The default coefficients are fitted to the paper's own (utilization,
// watts) observations: ~50% CPU -> 92 W and ~98% CPU -> ~122 W (Fig. 1b and
// Table I), giving Idle = 61 W and CPU = 62 W.
package energy

import "ramcloud/internal/metrics"

// PowerModel converts resource activity fractions into watts.
type PowerModel struct {
	IdleWatts float64 // machine powered on, OS idle
	CPUWatts  float64 // additional watts at 100% CPU
	DiskWatts float64 // additional watts with the disk fully busy
	NICWatts  float64 // additional watts with the NIC fully busy
}

// DefaultPowerModel returns the model fitted to the paper's measurements.
func DefaultPowerModel() PowerModel {
	return PowerModel{IdleWatts: 61.0, CPUWatts: 62.0, DiskWatts: 5.0, NICWatts: 3.0}
}

// Power returns instantaneous watts for the given activity fractions, each
// clamped to [0, 1].
func (m PowerModel) Power(cpuUtil, diskBusy, nicBusy float64) float64 {
	return m.IdleWatts +
		m.CPUWatts*clamp01(cpuUtil) +
		m.DiskWatts*clamp01(diskBusy) +
		m.NICWatts*clamp01(nicBusy)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ActivityFunc reports a node's activity fraction for a completed second.
type ActivityFunc func(second int) float64

// PDU samples one node's power once per simulated second. Drive it by
// calling Sample(k) for each completed second k (the cluster's metering
// ticker does this for all PDUs in lockstep, mirroring the paper's
// one-script-per-machine SNMP polling).
type PDU struct {
	model PowerModel

	cpu  ActivityFunc
	disk ActivityFunc
	nic  ActivityFunc

	watts  metrics.Series
	joules float64
	last   int
}

// NewPDU returns a PDU for one node. Nil activity functions read as zero.
func NewPDU(model PowerModel, cpu, disk, nic ActivityFunc) *PDU {
	zero := func(int) float64 { return 0 }
	if cpu == nil {
		cpu = zero
	}
	if disk == nil {
		disk = zero
	}
	if nic == nil {
		nic = zero
	}
	return &PDU{model: model, cpu: cpu, disk: disk, nic: nic, last: -1}
}

// Sample records the average power over second k and integrates energy.
// Seconds must be sampled in increasing order; duplicates are ignored.
func (p *PDU) Sample(k int) {
	if k <= p.last {
		return
	}
	p.last = k
	w := p.model.Power(p.cpu(k), p.disk(k), p.nic(k))
	p.watts.Set(k, w)
	p.joules += w // 1-second samples: watts == joules
}

// Watts returns the sampled power series.
func (p *PDU) Watts() *metrics.Series { return &p.watts }

// WattsAt returns the sampled power for second k (0 if not sampled).
func (p *PDU) WattsAt(k int) float64 { return p.watts.At(k) }

// Joules returns the total energy integrated so far.
func (p *PDU) Joules() float64 { return p.joules }

// MeanWatts returns average power over sampled seconds [from, to).
func (p *PDU) MeanWatts(from, to int) float64 { return p.watts.Mean(from, to) }

// Report aggregates a set of PDUs (one per cluster node).
type Report struct {
	PerNodeWatts []float64 // mean watts per node over the measured window
	TotalJoules  float64
	Ops          int64
}

// WindowReport aggregates the PDU set over sampled seconds [from, to) —
// the per-phase slice of a run's energy. Load-phase attribution calls it
// once per phase window; a whole-run report is just the full window.
func WindowReport(pdus []*PDU, from, to int, ops int64) Report {
	rep := Report{Ops: ops}
	for _, pdu := range pdus {
		rep.PerNodeWatts = append(rep.PerNodeWatts, pdu.MeanWatts(from, to))
		rep.TotalJoules += pdu.Watts().Sum(from, to)
	}
	return rep
}

// EnergyEfficiency returns operations per joule, the paper's efficiency
// metric. Zero when no energy was consumed.
func (r Report) EnergyEfficiency() float64 {
	if r.TotalJoules <= 0 {
		return 0
	}
	return float64(r.Ops) / r.TotalJoules
}

// MeanNodeWatts returns the average of the per-node means.
func (r Report) MeanNodeWatts() float64 {
	if len(r.PerNodeWatts) == 0 {
		return 0
	}
	s := 0.0
	for _, w := range r.PerNodeWatts {
		s += w
	}
	return s / float64(len(r.PerNodeWatts))
}
