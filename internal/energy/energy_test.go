package energy

import (
	"math"
	"testing"
)

func TestPowerModelLinear(t *testing.T) {
	m := PowerModel{IdleWatts: 60, CPUWatts: 60, DiskWatts: 10, NICWatts: 4}
	cases := []struct {
		cpu, disk, nic float64
		want           float64
	}{
		{0, 0, 0, 60},
		{1, 0, 0, 120},
		{0.5, 0, 0, 90},
		{0.5, 1, 0.5, 102},
		{2, -1, 0, 120}, // clamped
	}
	for _, c := range cases {
		if got := m.Power(c.cpu, c.disk, c.nic); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Power(%v,%v,%v) = %v, want %v", c.cpu, c.disk, c.nic, got, c.want)
		}
	}
}

func TestDefaultModelMatchesPaperAnchors(t *testing.T) {
	m := DefaultPowerModel()
	// Paper: 1 server + 1 client -> ~50% CPU -> 92 W.
	if got := m.Power(0.4981, 0, 0); math.Abs(got-92) > 2 {
		t.Errorf("power at 49.8%% CPU = %.1f W, want ~92 W", got)
	}
	// Paper: 1 server + 10 clients -> ~98% CPU -> ~122 W.
	if got := m.Power(0.9835, 0, 0); math.Abs(got-122) > 2 {
		t.Errorf("power at 98.4%% CPU = %.1f W, want ~122 W", got)
	}
	// Idle with RAMCloud running (25% CPU floor) should sit near 76-77 W.
	if got := m.Power(0.25, 0, 0); got < 74 || got > 79 {
		t.Errorf("power at 25%% CPU = %.1f W, want ~76 W", got)
	}
}

func TestPDUSampling(t *testing.T) {
	m := PowerModel{IdleWatts: 100, CPUWatts: 100}
	util := []float64{0.5, 1.0, 0.0}
	pdu := NewPDU(m, func(k int) float64 { return util[k] }, nil, nil)
	for k := 0; k < 3; k++ {
		pdu.Sample(k)
	}
	if pdu.WattsAt(0) != 150 || pdu.WattsAt(1) != 200 || pdu.WattsAt(2) != 100 {
		t.Fatalf("watts = %v", pdu.Watts().Values())
	}
	if pdu.Joules() != 450 {
		t.Fatalf("joules = %v", pdu.Joules())
	}
	if pdu.MeanWatts(0, 3) != 150 {
		t.Fatalf("mean = %v", pdu.MeanWatts(0, 3))
	}
}

func TestPDUDuplicateSampleIgnored(t *testing.T) {
	pdu := NewPDU(PowerModel{IdleWatts: 10}, nil, nil, nil)
	pdu.Sample(0)
	pdu.Sample(0)
	if pdu.Joules() != 10 {
		t.Fatalf("joules = %v, want 10", pdu.Joules())
	}
}

func TestPDUNilSources(t *testing.T) {
	pdu := NewPDU(PowerModel{IdleWatts: 42}, nil, nil, nil)
	pdu.Sample(0)
	if pdu.WattsAt(0) != 42 {
		t.Fatalf("watts = %v", pdu.WattsAt(0))
	}
}

func TestReportEfficiency(t *testing.T) {
	r := Report{TotalJoules: 100, Ops: 300_000}
	if got := r.EnergyEfficiency(); got != 3000 {
		t.Fatalf("efficiency = %v", got)
	}
	empty := Report{}
	if empty.EnergyEfficiency() != 0 {
		t.Fatal("empty report efficiency must be 0")
	}
}

func TestWindowReportSlicesSumToWhole(t *testing.T) {
	m := PowerModel{IdleWatts: 100, CPUWatts: 100}
	util := [][]float64{{0.5, 1.0, 0.0, 0.25}, {0.0, 0.5, 0.5, 1.0}}
	var pdus []*PDU
	for n := 0; n < 2; n++ {
		u := util[n]
		pdu := NewPDU(m, func(k int) float64 { return u[k] }, nil, nil)
		for k := 0; k < 4; k++ {
			pdu.Sample(k)
		}
		pdus = append(pdus, pdu)
	}
	whole := WindowReport(pdus, 0, 4, 400)
	first := WindowReport(pdus, 0, 2, 200)
	second := WindowReport(pdus, 2, 4, 200)
	if math.Abs(first.TotalJoules+second.TotalJoules-whole.TotalJoules) > 1e-9 {
		t.Fatalf("phase slices %v + %v != whole %v",
			first.TotalJoules, second.TotalJoules, whole.TotalJoules)
	}
	// node 0: 150+200 = 350 J over [0,2); node 1: 100+150 = 250 J.
	if first.TotalJoules != 600 {
		t.Fatalf("first window joules = %v, want 600", first.TotalJoules)
	}
	if len(whole.PerNodeWatts) != 2 || whole.PerNodeWatts[0] != 143.75 {
		t.Fatalf("per-node watts = %v", whole.PerNodeWatts)
	}
	if got := first.EnergyEfficiency(); math.Abs(got-200.0/600.0) > 1e-9 {
		t.Fatalf("window efficiency = %v", got)
	}
}

func TestReportMeanNodeWatts(t *testing.T) {
	r := Report{PerNodeWatts: []float64{100, 110, 120}}
	if got := r.MeanNodeWatts(); math.Abs(got-110) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if (Report{}).MeanNodeWatts() != 0 {
		t.Fatal("empty mean must be 0")
	}
}
