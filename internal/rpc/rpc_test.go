package rpc

import (
	"testing"

	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

func pair(t *testing.T) (*sim.Engine, *Endpoint, *Endpoint) {
	t.Helper()
	e := sim.New(1)
	n := simnet.New(e, simnet.Config{PropagationDelay: 2 * sim.Microsecond, Bandwidth: 1e9})
	return e, NewEndpoint(e, n, 1), NewEndpoint(e, n, 2)
}

// echoServer services inbound requests with a fixed delay.
func echoServer(e *sim.Engine, ep *Endpoint, delay sim.Duration) {
	e.Go("echo", func(p *sim.Proc) {
		for {
			req := ep.Inbound.Pop(p)
			p.Sleep(delay)
			switch m := req.Msg.(type) {
			case *wire.PingReq:
				ep.Reply(req, &wire.PingResp{Seq: m.Seq})
			default:
				ep.Reply(req, &wire.PingResp{Seq: 0})
			}
		}
	})
}

func TestCallRoundTrip(t *testing.T) {
	e, cl, srv := pair(t)
	echoServer(e, srv, 3*sim.Microsecond)
	var seq uint64
	e.Go("client", func(p *sim.Proc) {
		resp := cl.Call(p, 2, &wire.PingReq{Seq: 77})
		seq = resp.(*wire.PingResp).Seq
	})
	e.Run()
	e.Shutdown()
	if seq != 77 {
		t.Fatalf("seq = %d", seq)
	}
	if cl.Sent() != 1 || srv.Received() != 1 {
		t.Fatalf("sent=%d received=%d", cl.Sent(), srv.Received())
	}
}

func TestConcurrentCallsCorrelate(t *testing.T) {
	e, cl, srv := pair(t)
	echoServer(e, srv, sim.Microsecond)
	results := map[uint64]uint64{}
	for i := uint64(1); i <= 20; i++ {
		i := i
		e.Go("c", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i) * 100 * sim.Nanosecond)
			resp := cl.Call(p, 2, &wire.PingReq{Seq: i})
			results[i] = resp.(*wire.PingResp).Seq
		})
	}
	e.Run()
	e.Shutdown()
	if len(results) != 20 {
		t.Fatalf("results = %d", len(results))
	}
	for k, v := range results {
		if k != v {
			t.Fatalf("call %d got response %d", k, v)
		}
	}
}

func TestCallTimeoutOnDeadPeer(t *testing.T) {
	e, cl, _ := pair(t)
	// No server proc: requests pile up unanswered.
	var ok bool
	var elapsed sim.Duration
	e.Go("client", func(p *sim.Proc) {
		start := p.Now()
		_, ok = cl.CallTimeout(p, 2, &wire.PingReq{Seq: 1}, 10*sim.Millisecond)
		elapsed = p.Now().Sub(start)
	})
	e.Run()
	e.Shutdown()
	if ok {
		t.Fatal("expected timeout")
	}
	if elapsed != 10*sim.Millisecond {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestLateResponseDropped(t *testing.T) {
	e, cl, srv := pair(t)
	echoServer(e, srv, 20*sim.Millisecond) // slower than the timeout
	var first, second bool
	e.Go("client", func(p *sim.Proc) {
		_, first = cl.CallTimeout(p, 2, &wire.PingReq{Seq: 1}, 5*sim.Millisecond)
		// Wait past the late response arrival; it must be discarded.
		p.Sleep(30 * sim.Millisecond)
		resp, ok := cl.CallTimeout(p, 2, &wire.PingReq{Seq: 2}, 100*sim.Millisecond)
		second = ok && resp.(*wire.PingResp).Seq == 2
	})
	e.Run()
	e.Shutdown()
	if first {
		t.Fatal("first call should have timed out")
	}
	if !second {
		t.Fatal("second call should succeed with its own response")
	}
}

func TestAsyncCallFanOut(t *testing.T) {
	e := sim.New(1)
	n := simnet.New(e, simnet.Config{PropagationDelay: sim.Microsecond, Bandwidth: 1e9})
	cl := NewEndpoint(e, n, 1)
	for id := simnet.NodeID(2); id <= 4; id++ {
		ep := NewEndpoint(e, n, id)
		echoServer(e, ep, sim.Duration(id)*sim.Microsecond)
	}
	var replies int
	e.Go("client", func(p *sim.Proc) {
		var futures []*sim.Future[wire.Message]
		for id := simnet.NodeID(2); id <= 4; id++ {
			futures = append(futures, cl.AsyncCall(id, &wire.PingReq{Seq: uint64(id)}))
		}
		for _, resp := range WaitAll(p, futures) {
			if resp.(*wire.PingResp).Seq != 0 {
				replies++
			}
		}
	})
	e.Run()
	e.Shutdown()
	if replies != 3 {
		t.Fatalf("replies = %d", replies)
	}
}

func TestStartThenWait(t *testing.T) {
	e, cl, srv := pair(t)
	echoServer(e, srv, 5*sim.Microsecond)
	var seq uint64
	var issuedAt, doneAt sim.Time
	e.Go("client", func(p *sim.Proc) {
		call := cl.Start(2, &wire.PingReq{Seq: 42})
		issuedAt = p.Now()
		// The proc is free to do other work while the RPC is in flight.
		p.Sleep(2 * sim.Microsecond)
		if call.Done() {
			t.Error("call done before the echo delay elapsed")
		}
		resp, ok := call.WaitTimeout(p, 10*sim.Millisecond)
		doneAt = p.Now()
		if !ok {
			t.Error("call timed out")
			return
		}
		seq = resp.(*wire.PingResp).Seq
	})
	e.Run()
	e.Shutdown()
	if seq != 42 {
		t.Fatalf("seq = %d", seq)
	}
	if doneAt.Sub(issuedAt) < 5*sim.Microsecond {
		t.Fatalf("completed in %v; echo delay not overlapped", doneAt.Sub(issuedAt))
	}
}

func TestStartTimeoutDropsLateResponse(t *testing.T) {
	e, cl, srv := pair(t)
	echoServer(e, srv, 20*sim.Millisecond)
	var first bool
	var second bool
	e.Go("client", func(p *sim.Proc) {
		call := cl.Start(2, &wire.PingReq{Seq: 1})
		_, first = call.WaitTimeout(p, 5*sim.Millisecond)
		p.Sleep(30 * sim.Millisecond) // late response arrives and must be dropped
		resp, ok := cl.CallTimeout(p, 2, &wire.PingReq{Seq: 2}, 100*sim.Millisecond)
		second = ok && resp.(*wire.PingResp).Seq == 2
	})
	e.Run()
	e.Shutdown()
	if first {
		t.Fatal("first call should have timed out")
	}
	if !second {
		t.Fatal("second call should succeed with its own response")
	}
}

func TestMustStatus(t *testing.T) {
	if MustStatus(&wire.WriteResp{Status: wire.StatusOK}) != wire.StatusOK {
		t.Fatal("wrong status")
	}
	if MustStatus(&wire.ReadResp{Status: wire.StatusUnknownKey}) != wire.StatusUnknownKey {
		t.Fatal("wrong status")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for statusless message")
		}
	}()
	MustStatus(&wire.PingReq{})
}
