// Package rpc layers request/response semantics over the simulated fabric.
// Every node (server, coordinator, client) owns one Endpoint. Outbound
// calls are matched to responses by RPC id through futures; inbound
// requests land in a queue serviced by the node's dispatch proc.
//
// Message sizes on the wire are computed from the real binary encoding
// (wire.Message.WireSize), so transfer timing matches what a physical
// network would see. Messages travel the whole path as wire.Message — no
// `any` boxing, no wrapper allocation per send.
package rpc

import (
	"fmt"

	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// Caller is the outbound-RPC surface the client's operation core runs
// on: issue a request and correlate its response, with or without a
// deadline. Endpoint is the simulated-fabric implementation; extracting
// the interface keeps the op core free of any simnet hard-wiring, so an
// alternative substrate only has to supply these four methods.
type Caller interface {
	// Node returns the caller's fabric address.
	Node() simnet.NodeID
	// Sent returns the number of requests issued.
	Sent() uint64
	// StartCall issues a request without blocking and returns the
	// in-flight handle.
	StartCall(to simnet.NodeID, msg wire.Message) Call
	// CallTimeout issues a request and waits up to d for its response.
	CallTimeout(p *sim.Proc, to simnet.NodeID, msg wire.Message, d sim.Duration) (wire.Message, bool)
}

// Request is an inbound RPC awaiting service.
type Request struct {
	From      simnet.NodeID
	RPCID     uint64
	Msg       wire.Message
	ArrivedAt sim.Time
}

// Endpoint is one node's RPC port.
type Endpoint struct {
	eng  *sim.Engine
	net  *simnet.Network
	node simnet.NodeID

	nextID  uint64
	pending map[uint64]*sim.Future[wire.Message]

	// Inbound holds requests awaiting the dispatch proc.
	Inbound *sim.Queue[Request]

	sent     uint64
	received uint64
}

// NewEndpoint attaches a node to the fabric and returns its endpoint.
func NewEndpoint(e *sim.Engine, net *simnet.Network, node simnet.NodeID) *Endpoint {
	ep := &Endpoint{
		eng:     e,
		net:     net,
		node:    node,
		pending: make(map[uint64]*sim.Future[wire.Message]),
		Inbound: sim.NewQueue[Request](e),
	}
	// AttachOn records the endpoint's engine as the node's home lane, so
	// the fabric routes deliveries onto the lane that owns this node's
	// procs (identical to Attach under a standalone engine).
	net.AttachOn(e, node, ep.deliver)
	return ep
}

// Node returns the endpoint's fabric address.
func (ep *Endpoint) Node() simnet.NodeID { return ep.node }

// Sent returns the number of requests issued.
func (ep *Endpoint) Sent() uint64 { return ep.sent }

// Received returns the number of requests received.
func (ep *Endpoint) Received() uint64 { return ep.received }

func (ep *Endpoint) deliver(m simnet.Message) {
	if m.Resp {
		f, ok := ep.pending[m.RPCID]
		if !ok {
			return // late response after timeout: dropped
		}
		delete(ep.pending, m.RPCID)
		f.Set(m.Payload)
		return
	}
	ep.received++
	ep.Inbound.Push(Request{From: m.From, RPCID: m.RPCID, Msg: m.Payload, ArrivedAt: ep.eng.Now()})
}

// send issues a request, registering a future for its response.
func (ep *Endpoint) send(to simnet.NodeID, msg wire.Message) (uint64, *sim.Future[wire.Message]) {
	ep.nextID++
	id := ep.nextID
	f := sim.NewFuture[wire.Message](ep.eng)
	ep.pending[id] = f
	ep.sent++
	ep.net.Send(simnet.Message{From: ep.node, To: to, Size: msg.WireSize(), RPCID: id, Payload: msg})
	return id, f
}

// AsyncCall issues a request and returns a future for the response. Use
// for fan-out (replication) where the caller gathers several acks.
func (ep *Endpoint) AsyncCall(to simnet.NodeID, msg wire.Message) *sim.Future[wire.Message] {
	_, f := ep.send(to, msg)
	return f
}

// Call is one in-flight request issued with Start. Unlike the bare future
// of AsyncCall it remembers its RPC id, so an abandoned call (timeout) can
// drop its pending entry and a late response is discarded instead of
// resolving a stale future.
type Call struct {
	ep *Endpoint
	id uint64
	f  *sim.Future[wire.Message]
}

// Start issues a request without blocking and returns a handle the caller
// waits on later. This is the client-side async primitive: the send costs
// no simulated time beyond NIC serialization, and the completion wakes
// whichever proc is parked in Wait/WaitTimeout.
func (ep *Endpoint) Start(to simnet.NodeID, msg wire.Message) *Call {
	c := ep.StartCall(to, msg)
	return &c
}

// StartCall is Start returning the handle by value, for callers that embed
// it (the client's op core keeps its in-flight attempt allocation-free
// this way).
func (ep *Endpoint) StartCall(to simnet.NodeID, msg wire.Message) Call {
	id, f := ep.send(to, msg)
	return Call{ep: ep, id: id, f: f}
}

// Done reports whether the response has arrived.
func (c *Call) Done() bool { return c.f.IsSet() }

// ResolvedAt returns the virtual time the response arrived, or zero while
// the call is still in flight. Lazy reapers (async clients) use it to
// record latency to the response's arrival rather than to the reap.
func (c *Call) ResolvedAt() sim.Time { return c.f.ResolvedAt() }

// Wait blocks until the response arrives. It never gives up; use
// WaitTimeout when the peer may be dead.
func (c *Call) Wait(p *sim.Proc) wire.Message { return c.f.Get(p) }

// WaitTimeout blocks up to d for the response. On timeout the pending
// entry is dropped so a late response is discarded, exactly like
// CallTimeout.
func (c *Call) WaitTimeout(p *sim.Proc, d sim.Duration) (wire.Message, bool) {
	resp, ok := c.f.GetTimeout(p, d)
	if !ok {
		delete(c.ep.pending, c.id)
	}
	return resp, ok
}

// Call issues a request and blocks until the response arrives. It never
// gives up; use CallTimeout when the peer may be dead.
func (ep *Endpoint) Call(p *sim.Proc, to simnet.NodeID, msg wire.Message) wire.Message {
	return ep.AsyncCall(to, msg).Get(p)
}

// CallTimeout issues a request and waits up to d for the response. On
// timeout the pending entry is dropped so a late response is discarded.
func (ep *Endpoint) CallTimeout(p *sim.Proc, to simnet.NodeID, msg wire.Message, d sim.Duration) (wire.Message, bool) {
	c := ep.StartCall(to, msg)
	return c.WaitTimeout(p, d)
}

// Reply sends a response for an inbound request.
func (ep *Endpoint) Reply(req Request, msg wire.Message) {
	ep.net.Send(simnet.Message{From: ep.node, To: req.From, Size: msg.WireSize(), RPCID: req.RPCID, Resp: true, Payload: msg})
}

// WaitAll blocks until every future resolves, returning the responses in
// order. Used by the replication fan-out ("wait for acknowledgements from
// all backups").
func WaitAll(p *sim.Proc, futures []*sim.Future[wire.Message]) []wire.Message {
	out := make([]wire.Message, len(futures))
	for i, f := range futures {
		out[i] = f.Get(p)
	}
	return out
}

// MustStatus extracts a status from a response message known to carry one.
func MustStatus(msg wire.Message) wire.Status {
	if r, ok := msg.(wire.Response); ok {
		return r.RespStatus()
	}
	panic(fmt.Sprintf("rpc: message %T carries no status", msg))
}
