// Package rpc layers request/response semantics over the simulated fabric.
// Every node (server, coordinator, client) owns one Endpoint. Outbound
// calls are matched to responses by RPC id through futures; inbound
// requests land in a queue serviced by the node's dispatch proc.
//
// Message sizes on the wire are computed from the real binary encoding
// (wire.Size), so transfer timing matches what a physical network would
// see.
package rpc

import (
	"fmt"

	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

// Request is an inbound RPC awaiting service.
type Request struct {
	From      simnet.NodeID
	RPCID     uint64
	Msg       any
	ArrivedAt sim.Time
}

// packet is the fabric payload: either a request or a response.
type packet struct {
	rpcID uint64
	msg   any
	resp  bool
}

// Endpoint is one node's RPC port.
type Endpoint struct {
	eng  *sim.Engine
	net  *simnet.Network
	node simnet.NodeID

	nextID  uint64
	pending map[uint64]*sim.Future[any]

	// Inbound holds requests awaiting the dispatch proc.
	Inbound *sim.Queue[Request]

	sent     uint64
	received uint64
}

// NewEndpoint attaches a node to the fabric and returns its endpoint.
func NewEndpoint(e *sim.Engine, net *simnet.Network, node simnet.NodeID) *Endpoint {
	ep := &Endpoint{
		eng:     e,
		net:     net,
		node:    node,
		pending: make(map[uint64]*sim.Future[any]),
		Inbound: sim.NewQueue[Request](e),
	}
	net.Attach(node, ep.deliver)
	return ep
}

// Node returns the endpoint's fabric address.
func (ep *Endpoint) Node() simnet.NodeID { return ep.node }

// Sent returns the number of requests issued.
func (ep *Endpoint) Sent() uint64 { return ep.sent }

// Received returns the number of requests received.
func (ep *Endpoint) Received() uint64 { return ep.received }

func (ep *Endpoint) deliver(m simnet.Message) {
	pkt := m.Payload.(packet)
	if pkt.resp {
		f, ok := ep.pending[pkt.rpcID]
		if !ok {
			return // late response after timeout: dropped
		}
		delete(ep.pending, pkt.rpcID)
		f.Set(pkt.msg)
		return
	}
	ep.received++
	ep.Inbound.Push(Request{From: m.From, RPCID: pkt.rpcID, Msg: pkt.msg, ArrivedAt: ep.eng.Now()})
}

// AsyncCall issues a request and returns a future for the response. Use
// for fan-out (replication) where the caller gathers several acks.
func (ep *Endpoint) AsyncCall(to simnet.NodeID, msg any) *sim.Future[any] {
	ep.nextID++
	id := ep.nextID
	f := sim.NewFuture[any](ep.eng)
	ep.pending[id] = f
	ep.sent++
	size := wire.Size(wire.Envelope{RPCID: id, Msg: msg})
	ep.net.Send(simnet.Message{From: ep.node, To: to, Size: size, Payload: packet{rpcID: id, msg: msg}})
	return f
}

// Call issues a request and blocks until the response arrives. It never
// gives up; use CallTimeout when the peer may be dead.
func (ep *Endpoint) Call(p *sim.Proc, to simnet.NodeID, msg any) any {
	return ep.AsyncCall(to, msg).Get(p)
}

// CallTimeout issues a request and waits up to d for the response. On
// timeout the pending entry is dropped so a late response is discarded.
func (ep *Endpoint) CallTimeout(p *sim.Proc, to simnet.NodeID, msg any, d sim.Duration) (any, bool) {
	ep.nextID++
	id := ep.nextID
	f := sim.NewFuture[any](ep.eng)
	ep.pending[id] = f
	ep.sent++
	size := wire.Size(wire.Envelope{RPCID: id, Msg: msg})
	ep.net.Send(simnet.Message{From: ep.node, To: to, Size: size, Payload: packet{rpcID: id, msg: msg}})
	resp, ok := f.GetTimeout(p, d)
	if !ok {
		delete(ep.pending, id)
	}
	return resp, ok
}

// Reply sends a response for an inbound request.
func (ep *Endpoint) Reply(req Request, msg any) {
	size := wire.Size(wire.Envelope{RPCID: req.RPCID, Msg: msg})
	ep.net.Send(simnet.Message{From: ep.node, To: req.From, Size: size, Payload: packet{rpcID: req.RPCID, msg: msg, resp: true}})
}

// WaitAll blocks until every future resolves, returning the responses in
// order. Used by the replication fan-out ("wait for acknowledgements from
// all backups").
func WaitAll(p *sim.Proc, futures []*sim.Future[any]) []any {
	out := make([]any, len(futures))
	for i, f := range futures {
		out[i] = f.Get(p)
	}
	return out
}

// MustStatus extracts a status from a response message known to carry one.
func MustStatus(msg any) wire.Status {
	switch m := msg.(type) {
	case *wire.ReadResp:
		return m.Status
	case *wire.WriteResp:
		return m.Status
	case *wire.DeleteResp:
		return m.Status
	case *wire.CreateTableResp:
		return m.Status
	case *wire.DropTableResp:
		return m.Status
	case *wire.GetTabletMapResp:
		return m.Status
	case *wire.EnlistResp:
		return m.Status
	case *wire.SetWillResp:
		return m.Status
	case *wire.OpenSegmentResp:
		return m.Status
	case *wire.ReplicateResp:
		return m.Status
	case *wire.CloseSegmentResp:
		return m.Status
	case *wire.FreeReplicasResp:
		return m.Status
	case *wire.SegmentInventoryResp:
		return m.Status
	case *wire.GetRecoveryDataResp:
		return m.Status
	case *wire.RecoverResp:
		return m.Status
	case *wire.RecoveryDoneResp:
		return m.Status
	default:
		panic(fmt.Sprintf("rpc: message %T carries no status", msg))
	}
}
