// Package memocfg supplies a cross-package config struct for the
// memokey fixtures; it has no memokey.go so the analyzer skips it.
package memocfg

type Config struct {
	Servers int
	Rate    float64
}
