// Package memook is a memokey fixture whose encoder covers every
// exported field, including those of a struct imported from another
// package — no diagnostics expected.
package memook

import "ramcloud/internal/memocfg"

type Scenario struct {
	Name string
	Cfg  memocfg.Config
}
