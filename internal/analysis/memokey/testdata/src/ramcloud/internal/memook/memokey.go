package memook

import "fmt"

func memoKey(s Scenario) string {
	return fmt.Sprintf("%s|%d|%g", s.Name, s.Cfg.Servers, s.Cfg.Rate)
}
