// Package memobad is a memokey fixture whose encoder misses fields.
package memobad

type Nested struct {
	X int
	Y string // unencoded leaf: reported at Scenario.B below
}

type Deep struct {
	Z int
	W bool // unencoded leaf behind a slice of pointers
}

type Scenario struct {
	Name    string
	A       int
	B       Nested // want `Scenario\.B\.Y is not referenced by the memo-key encoder`
	C       []*Deep // want `Scenario\.C\[\]\.W is not referenced by the memo-key encoder`
	Missing string // want `Scenario\.Missing is not referenced by the memo-key encoder`
	hidden  int    // unexported fields are the encoder's business, not the analyzer's
}

func (s Scenario) use() int { return s.hidden }
