package memobad

// memoKey deliberately skips Scenario.Missing, Nested.Y and Deep.W.
func memoKey(s Scenario) string {
	key := s.Name
	_ = s.A
	_ = s.B.X
	for _, d := range s.C {
		_ = d.Z
	}
	return key
}
