package memokey_test

import (
	"testing"

	"ramcloud/internal/analysis/framework/atest"
	"ramcloud/internal/analysis/memokey"
)

func TestMemokey(t *testing.T) {
	atest.Run(t, memokey.Analyzer, "testdata",
		"ramcloud/internal/memobad",
		"ramcloud/internal/memocfg",
		"ramcloud/internal/memook",
	)
}
