// Package memokey statically verifies that the scenario memo key covers
// every field of core.Scenario. The singleflight memo in internal/core
// shares one simulation result per rendered key, so a Scenario field —
// however deeply nested in ClientGroup, LoadPhase, FaultEvent or the
// calibration Profile — that the encoder in memokey.go never reads
// silently merges distinct scenarios into one cached result. The runtime
// reflection test (TestMemoKeyDistinguishesEveryField) catches that at
// test time; this analyzer catches it at vet time, before a simulation
// ever runs.
//
// The check fires on any package containing a file named memokey.go
// next to a struct type named Scenario: every exported field reachable
// from Scenario through structs, pointers, slices and arrays — across
// package boundaries, so the Profile's machine/energy/server/client
// config structs are all walked — must be referenced at least once
// inside memokey.go. Fields are reported at the top-level Scenario
// field through which the unencoded leaf is reachable.
package memokey

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"ramcloud/internal/analysis/framework"
)

// Analyzer is the memokey check.
var Analyzer = &framework.Analyzer{
	Name: "memokey",
	Doc:  "verify the scenario memo-key encoder reads every Scenario field",
	Run:  run,
}

func run(pass *framework.Pass) error {
	var keyFiles []*ast.File
	for _, f := range pass.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "memokey.go" {
			keyFiles = append(keyFiles, f)
		}
	}
	if len(keyFiles) == 0 {
		return nil
	}
	scenObj, ok := pass.Pkg.Scope().Lookup("Scenario").(*types.TypeName)
	if !ok {
		return nil
	}
	scenStruct, ok := scenObj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}

	// Every struct-field object referenced anywhere in memokey.go —
	// selector expressions and composite-literal keys both resolve
	// through Uses.
	referenced := map[*types.Var]bool{}
	for _, f := range keyFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if v, ok := pass.TypesInfo.Uses[ident].(*types.Var); ok && v.IsField() {
				referenced[v] = true
			}
			return true
		})
	}

	w := &walker{referenced: referenced, visited: map[*types.Named]bool{}}
	for i := 0; i < scenStruct.NumFields(); i++ {
		field := scenStruct.Field(i)
		if !field.Exported() {
			continue
		}
		w.top = field
		w.walkField(field, "Scenario."+field.Name(), pass)
	}
	return nil
}

type walker struct {
	referenced map[*types.Var]bool
	visited    map[*types.Named]bool
	top        *types.Var // current top-level Scenario field, for positions
}

func (w *walker) walkField(field *types.Var, path string, pass *framework.Pass) {
	if !w.referenced[field] {
		pass.Reportf(w.top.Pos(), "%s is not referenced by the memo-key encoder in memokey.go; two scenarios differing only there would share one memoized result", path)
		// The leaf is already unencoded; descending would only repeat
		// the finding for every sub-field.
		return
	}
	w.walkType(field.Type(), path, pass)
}

func (w *walker) walkType(t types.Type, path string, pass *framework.Pass) {
	switch t := t.(type) {
	case *types.Pointer:
		w.walkType(t.Elem(), path, pass)
	case *types.Slice:
		w.walkType(t.Elem(), path+"[]", pass)
	case *types.Array:
		w.walkType(t.Elem(), path+"[]", pass)
	case *types.Named:
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return
		}
		if w.visited[t] {
			return
		}
		w.visited[t] = true
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if !field.Exported() {
				continue
			}
			w.walkField(field, path+"."+field.Name(), pass)
		}
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			field := t.Field(i)
			if !field.Exported() {
				continue
			}
			w.walkField(field, path+"."+field.Name(), pass)
		}
	}
}
