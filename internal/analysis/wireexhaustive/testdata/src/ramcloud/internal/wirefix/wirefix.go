// Package wirefix is a wireexhaustive fixture: a sealed message
// interface with an opcode method and a decode switch that misregisters
// several implementations.
package wirefix

// Op is the opcode type.
type Op uint8

// Opcodes.
const (
	OpA Op = iota + 1
	OpB
	OpC
	OpE
)

// Msg is sealed by the unexported seal method.
type Msg interface {
	Op() Op
	seal()
}

// A is registered correctly.
type A struct{ N int }

func (A) Op() Op { return OpA }
func (A) seal()  {}

// B has no decode case.
type B struct{} // want `B has no case in the decode switch over Op`

func (B) Op() Op { return OpB }
func (B) seal()  {}

// C is registered correctly.
type C struct{}

func (C) Op() Op { return OpC }
func (C) seal()  {}

// D reuses C's opcode, and OpC's decode case builds a C, not a D.
type D struct{} // want `D and C return the same opcode` `the decode case for D's opcode does not construct D`

func (D) Op() Op { return OpC }
func (D) seal()  {}

// E has a decode case, but it constructs the wrong type.
type E struct{} // want `the decode case for E's opcode does not construct E`

func (E) Op() Op { return OpE }
func (E) seal()  {}

// F computes its opcode instead of returning a constant.
type F struct{ alt bool } // want `F\.Op does not return a single opcode constant`

func (f F) Op() Op {
	if f.alt {
		return OpA
	}
	return OpB
}
func (F) seal() {}

// Decode is the decode switch the registration check audits.
func Decode(op Op) Msg {
	switch op {
	case OpA:
		return A{N: 0}
	case OpC:
		return C{}
	case OpE:
		return A{N: 1}
	}
	return nil
}
