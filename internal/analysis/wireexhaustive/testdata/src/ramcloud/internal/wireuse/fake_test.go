package wireuse

import "ramcloud/internal/wirefix"

// Test doubles dispatch on just the messages their test exchanges;
// _test.go files are exempt from the exhaustiveness check.
func fakeDispatch(m wirefix.Msg) int {
	switch m.(type) {
	case wirefix.A:
		return 1
	}
	return 0
}
