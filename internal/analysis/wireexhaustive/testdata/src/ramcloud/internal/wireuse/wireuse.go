// Package wireuse consumes wirefix's sealed interface: type switches
// over it must carry a default case or list every implementation.
package wireuse

import "ramcloud/internal/wirefix"

func partial(m wirefix.Msg) int {
	switch m.(type) { // want `type switch over sealed wirefix\.Msg has no default case and misses: B, D, E, F`
	case wirefix.A:
		return 1
	case *wirefix.C:
		return 2
	case nil:
		return 0
	}
	return -1
}

func withDefault(m wirefix.Msg) int {
	switch m.(type) {
	case wirefix.A:
		return 1
	default:
		return 0
	}
}

func exhaustive(m wirefix.Msg) int {
	switch v := m.(type) {
	case wirefix.A:
		return v.N
	case wirefix.B, wirefix.C, wirefix.D:
		return 2
	case *wirefix.E, *wirefix.F:
		return 3
	}
	return -1
}
