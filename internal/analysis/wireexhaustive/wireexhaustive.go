// Package wireexhaustive enforces the sealed wire.Message contract.
//
// The wire package seals its Message interface with an unexported
// method, so the full set of implementations is known statically. That
// makes two properties checkable at vet time that today only a
// round-trip test approximates:
//
//  1. Registration: in the package declaring a sealed interface with an
//     opcode method (`Op() <named integer>`), every implementation must
//     return a distinct opcode constant, and the package's decode
//     switch over the opcode type must have a case for that constant
//     which constructs that implementation. A message type added
//     without a decode case would marshal but never unmarshal — invisible
//     on the simulated fabric (which passes structs by reference) and
//     fatal on the real-transport backend the roadmap plans.
//
//  2. Exhaustiveness: a type switch over a sealed interface from this
//     module, in any non-test file of any package, must either carry a
//     default case or list every implementation. Without it, a new
//     message silently falls through dispatch. (Test doubles dispatch
//     on just the messages their test exchanges, so _test.go files are
//     exempt.)
//
// Interface-typed cases count as covering every implementation that
// satisfies them; `case nil` is ignored.
package wireexhaustive

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"ramcloud/internal/analysis/framework"
	"ramcloud/internal/analysis/scope"
)

// Analyzer is the wireexhaustive check.
var Analyzer = &framework.Analyzer{
	Name: "wireexhaustive",
	Doc:  "enforce decode coverage and exhaustive type switches for sealed wire messages",
	Run:  run,
}

func run(pass *framework.Pass) error {
	checkSealedDecls(pass)
	checkTypeSwitches(pass)
	return nil
}

// sealed reports whether iface can only be implemented inside its
// declaring package (it has an unexported method).
func sealed(iface *types.Interface) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if !iface.Method(i).Exported() {
			return true
		}
	}
	return false
}

// opcodeType returns the named integer type of the interface's
// `Op() T` method, or nil if it has none.
func opcodeType(iface *types.Interface) *types.Named {
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		if m.Name() != "Op" {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			return nil
		}
		named, ok := sig.Results().At(0).Type().(*types.Named)
		if !ok {
			return nil
		}
		if b, ok := named.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
			return nil
		}
		return named
	}
	return nil
}

// implementations lists the named non-interface types in scope whose
// value or pointer satisfies iface, in declaration-name order.
func implementations(scope *types.Scope, iface *types.Interface) []*types.Named {
	var impls []*types.Named
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if ok && !tn.IsAlias() {
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
				impls = append(impls, named)
			}
		}
	}
	return impls
}

// checkSealedDecls runs the registration checks in packages that
// declare a sealed opcode-carrying interface.
func checkSealedDecls(pass *framework.Pass) {
	for _, name := range pass.Pkg.Scope().Names() {
		tn, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		iface, ok := tn.Type().Underlying().(*types.Interface)
		if !ok || !sealed(iface) {
			continue
		}
		opType := opcodeType(iface)
		if opType == nil {
			continue
		}
		checkRegistration(pass, iface, opType)
	}
}

func checkRegistration(pass *framework.Pass, iface *types.Interface, opType *types.Named) {
	impls := implementations(pass.Pkg.Scope(), iface)
	if len(impls) == 0 {
		return
	}
	decodeCases := decodeSwitchCases(pass, opType)

	byOpcode := map[string]*types.Named{}
	for _, impl := range impls {
		val := opcodeValue(pass, impl)
		if val == nil {
			pass.Reportf(implPos(pass, impl), "%s.Op does not return a single opcode constant; the decode switch cannot be checked against it", impl.Obj().Name())
			continue
		}
		key := val.ExactString()
		if prev, dup := byOpcode[key]; dup {
			pass.Reportf(implPos(pass, impl), "%s and %s return the same opcode (%s); opcodes must be unique so decode is unambiguous", impl.Obj().Name(), prev.Obj().Name(), key)
		} else {
			byOpcode[key] = impl
		}

		clause, ok := decodeCases[key]
		if !ok {
			pass.Reportf(implPos(pass, impl), "%s has no case in the decode switch over %s; it would marshal but never unmarshal", impl.Obj().Name(), opType.Obj().Name())
			continue
		}
		if !constructsType(pass, clause, impl) {
			pass.Reportf(implPos(pass, impl), "the decode case for %s's opcode does not construct %s", impl.Obj().Name(), impl.Obj().Name())
		}
	}
}

// decodeSwitchCases maps each opcode constant (by exact value) to the
// case clause handling it, across every switch over the opcode type in
// the package.
func decodeSwitchCases(pass *framework.Pass, opType *types.Named) map[string]*ast.CaseClause {
	cases := map[string]*ast.CaseClause{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := pass.TypesInfo.Types[sw.Tag].Type
			if tagType == nil || !types.Identical(tagType, opType) {
				return true
			}
			for _, stmt := range sw.Body.List {
				clause := stmt.(*ast.CaseClause)
				for _, expr := range clause.List {
					if v := pass.TypesInfo.Types[expr].Value; v != nil {
						cases[v.ExactString()] = clause
					}
				}
			}
			return true
		})
	}
	return cases
}

// opcodeValue extracts the constant returned by impl's Op method, by
// reading the method body (export data does not carry bodies, but the
// registration check only runs in the declaring package).
func opcodeValue(pass *framework.Pass, impl *types.Named) constant.Value {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Op" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recvType := pass.TypesInfo.Defs[fd.Name].(*types.Func).Signature().Recv().Type()
			if p, ok := recvType.(*types.Pointer); ok {
				recvType = p.Elem()
			}
			named, ok := recvType.(*types.Named)
			if !ok || named.Obj() != impl.Obj() {
				continue
			}
			if len(fd.Body.List) != 1 {
				return nil
			}
			ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return nil
			}
			return pass.TypesInfo.Types[ret.Results[0]].Value
		}
	}
	return nil
}

// constructsType reports whether the clause body contains a composite
// literal of the implementation type.
func constructsType(pass *framework.Pass, clause *ast.CaseClause, impl *types.Named) bool {
	found := false
	for _, stmt := range clause.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return !found
			}
			t := pass.TypesInfo.Types[lit].Type
			if named, ok := t.(*types.Named); ok && named.Obj() == impl.Obj() {
				found = true
			}
			return !found
		})
	}
	return found
}

func implPos(pass *framework.Pass, impl *types.Named) token.Pos {
	if pos := impl.Obj().Pos(); pos.IsValid() {
		return pos
	}
	return pass.Files[0].Pos()
}

// checkTypeSwitches enforces exhaustiveness on type switches over
// sealed module interfaces, in whatever package they appear. Test files
// are exempt: fakes legitimately dispatch on the few messages their
// test exchanges.
func checkTypeSwitches(pass *framework.Pass) {
	for _, f := range pass.Files {
		if scope.TestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			iface, named := switchSubject(pass, sw)
			if iface == nil || !sealed(iface) || !strings.HasPrefix(named.Obj().Pkg().Path(), "ramcloud/") {
				return true
			}

			impls := implementations(named.Obj().Pkg().Scope(), iface)
			covered := map[*types.TypeName]bool{}
			for _, stmt := range sw.Body.List {
				clause := stmt.(*ast.CaseClause)
				if clause.List == nil {
					return true // default case handles the remainder
				}
				for _, expr := range clause.List {
					tv := pass.TypesInfo.Types[expr]
					if tv.IsNil() || tv.Type == nil {
						continue
					}
					t := tv.Type
					if p, ok := t.(*types.Pointer); ok {
						t = p.Elem()
					}
					if caseNamed, ok := t.(*types.Named); ok {
						if caseIface, ok := caseNamed.Underlying().(*types.Interface); ok {
							// An interface case covers everything satisfying it.
							for _, impl := range impls {
								if types.Implements(impl, caseIface) || types.Implements(types.NewPointer(impl), caseIface) {
									covered[impl.Obj()] = true
								}
							}
						} else {
							covered[caseNamed.Obj()] = true
						}
					}
				}
			}
			var missing []string
			for _, impl := range impls {
				if !covered[impl.Obj()] {
					missing = append(missing, impl.Obj().Name())
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(), "type switch over sealed %s.%s has no default case and misses: %s", named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// switchSubject resolves the static type of a type switch's subject
// expression, returning it when it is a named sealed-able interface.
func switchSubject(pass *framework.Pass, sw *ast.TypeSwitchStmt) (*types.Interface, *types.Named) {
	var expr ast.Expr
	switch s := sw.Assign.(type) {
	case *ast.AssignStmt:
		ta := s.Rhs[0].(*ast.TypeAssertExpr)
		expr = ta.X
	case *ast.ExprStmt:
		ta := s.X.(*ast.TypeAssertExpr)
		expr = ta.X
	}
	if expr == nil {
		return nil, nil
	}
	t := pass.TypesInfo.Types[expr].Type
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, nil
	}
	iface, ok := named.Underlying().(*types.Interface)
	if !ok {
		return nil, nil
	}
	return iface, named
}
