package wireexhaustive_test

import (
	"testing"

	"ramcloud/internal/analysis/framework/atest"
	"ramcloud/internal/analysis/wireexhaustive"
)

func TestWireexhaustive(t *testing.T) {
	atest.Run(t, wireexhaustive.Analyzer, "testdata",
		"ramcloud/internal/wirefix",
		"ramcloud/internal/wireuse",
	)
}
