// Package maporder flags range statements over maps whose bodies
// produce order-dependent results. Go randomizes map iteration order
// per loop, so a map range that appends to a slice, writes indexed
// state, emits output, sends on a channel, or accumulates floats makes
// the result depend on the runtime's coin flips — exactly what the
// byte-identical rendering contract forbids.
//
// The standard sorted-keys idiom stays legal: a loop that only collects
// keys (or values) into a slice which a sort.* / slices.* call orders
// later in the same block is recognized and not flagged. Anything else
// needs either a sort or an
//
//	//rcvet:allow maporder <justification>
//
// annotation explaining why order cannot leak into rendered output.
// Test files are exempt.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"ramcloud/internal/analysis/framework"
	"ramcloud/internal/analysis/scope"
)

// Analyzer is the maporder check.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc:  "flag order-dependent work inside range-over-map loops",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if !scope.Deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if scope.TestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch s := n.(type) {
			case *ast.BlockStmt:
				list = s.List
			case *ast.CaseClause:
				list = s.Body
			case *ast.CommClause:
				list = s.Body
			default:
				return true
			}
			for i, stmt := range list {
				if ls, ok := stmt.(*ast.LabeledStmt); ok {
					stmt = ls.Stmt
				}
				rs, ok := stmt.(*ast.RangeStmt)
				if ok && isMapType(pass, rs.X) {
					checkMapRange(pass, rs, list[i+1:])
				}
			}
			return true
		})
	}
	return nil
}

func isMapType(pass *framework.Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange inspects one map-range body. following holds the
// statements after the loop in its enclosing block, searched for the
// sort call that legitimizes the collect-then-sort idiom.
func checkMapRange(pass *framework.Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		// Nested map ranges are analyzed against their own block.
		if inner, ok := n.(*ast.RangeStmt); ok && inner != rs && isMapType(pass, inner.X) {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rs, s, following)
		case *ast.SendStmt:
			pass.Reportf(s.Pos(), "send on a channel inside range over a map delivers in random order; iterate sorted keys instead")
		case *ast.CallExpr:
			checkCall(pass, s)
		}
		return true
	})
}

func checkAssign(pass *framework.Pass, rs *ast.RangeStmt, s *ast.AssignStmt, following []ast.Stmt) {
	// v = append(v, ...) — legal only as the collect half of
	// collect-then-sort, or when v lives per-iteration.
	if len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
			target := rootIdentObj(pass, s.Lhs[0])
			if target != nil && declaredInside(rs, target) {
				return // fresh slice every iteration; order cannot leak
			}
			if target == nil || !sortedAfter(pass, target, following) {
				pass.Reportf(s.Pos(), "append inside range over a map collects in random order; sort the result before it is used (sort.*/slices.* in the same block), or annotate //rcvet:allow maporder <why>")
			}
			return
		}
	}
	for _, lhs := range s.Lhs {
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			switch pass.TypesInfo.Types[ix.X].Type.Underlying().(type) {
			case *types.Slice, *types.Array:
				pass.Reportf(s.Pos(), "indexed write into a slice inside range over a map depends on iteration order; iterate sorted keys instead")
			}
		}
	}
	// Floating-point accumulation is not associative: x += v over a map
	// sums in random order and the low bits differ run to run.
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if obj := rootIdentObj(pass, s.Lhs[0]); obj != nil && declaredInside(rs, obj) {
			return // per-iteration accumulator
		}
		if t := pass.TypesInfo.Types[s.Lhs[0]].Type; t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				pass.Reportf(s.Pos(), "floating-point accumulation inside range over a map is order-dependent (float addition is not associative); iterate sorted keys instead")
			}
		}
	}
}

// declaredInside reports whether obj is declared within the loop — a
// per-iteration variable whose contents never observe more than one
// iteration's order.
func declaredInside(rs *ast.RangeStmt, obj types.Object) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if ident, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.TypesInfo.Uses[ident].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s inside range over a map emits in random order; iterate sorted keys instead", sel.Sel.Name)
			return
		}
	}
	// Writer-style methods build ordered byte streams.
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if _, ok := pass.TypesInfo.Selections[sel]; ok {
			pass.Reportf(call.Pos(), "%s inside range over a map emits in random order; iterate sorted keys instead", sel.Sel.Name)
		}
	}
}

func isBuiltinAppend(pass *framework.Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[ident].(*types.Builtin)
	return ok && b.Name() == "append"
}

// rootIdentObj resolves the assigned variable of an append target.
func rootIdentObj(pass *framework.Pass, e ast.Expr) types.Object {
	if ident, ok := e.(*ast.Ident); ok {
		return pass.TypesInfo.ObjectOf(ident)
	}
	return nil
}

// sortedAfter reports whether a sort.* or slices.* call mentioning obj
// follows the loop in the same block.
func sortedAfter(pass *framework.Pass, obj types.Object, following []ast.Stmt) bool {
	for _, stmt := range following {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			continue
		}
		pn, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			continue
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			continue
		}
		mentions := false
		for _, arg := range call.Args {
			ast.Inspect(arg, func(n ast.Node) bool {
				if ident, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(ident) == obj {
					mentions = true
				}
				return !mentions
			})
		}
		if mentions {
			return true
		}
	}
	return false
}
