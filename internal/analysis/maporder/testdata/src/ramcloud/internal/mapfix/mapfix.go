// Package mapfix is a maporder fixture: order-dependent and order-safe
// range-over-map bodies.
package mapfix

import (
	"fmt"
	"sort"
	"strings"
)

func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append inside range over a map collects in random order`
	}
	return out
}

func collectThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func perIteration(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var batch []int
		for _, v := range vs {
			batch = append(batch, v) // fresh slice per iteration: order-safe
		}
		total += len(batch)
	}
	return total
}

func indexedWrite(m map[int]string, out []string) {
	for i, v := range m {
		out[i%len(out)] = v // want `indexed write into a slice inside range over a map`
	}
}

func floatAccum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `floating-point accumulation inside range over a map is order-dependent`
	}
	return sum
}

func intAccum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v // integer addition is associative: order-safe
	}
	return sum
}

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf inside range over a map emits in random order`
	}
}

func buildString(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString inside range over a map emits in random order`
	}
	return b.String()
}

func sendAll(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `send on a channel inside range over a map delivers in random order`
	}
}

func rangeOverSlice(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v) // slices iterate in order: not flagged
	}
	return out
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//rcvet:allow maporder result feeds a set membership check only; order never reaches output
		out = append(out, k)
	}
	return out
}
