package maporder_test

import (
	"testing"

	"ramcloud/internal/analysis/framework/atest"
	"ramcloud/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	atest.Run(t, maporder.Analyzer, "testdata",
		"ramcloud/internal/mapfix",
	)
}
