// Package analysis assembles the rcvet lint suite: custom static
// checks that enforce, at vet time, the invariants every rendered
// figure in this repo rests on — determinism (a scenario replays
// byte-identically at any seed/-j combination) and the sealed wire
// protocol. LINTS.md at the repo root documents each analyzer, its
// rationale and the //rcvet:allow suppression syntax.
//
// The suite runs under `go vet -vettool` via cmd/rcvet:
//
//	go build -o rcvet ./cmd/rcvet
//	go vet -vettool=$(pwd)/rcvet ./...
package analysis

import (
	"ramcloud/internal/analysis/detnow"
	"ramcloud/internal/analysis/framework"
	"ramcloud/internal/analysis/goroutine"
	"ramcloud/internal/analysis/maporder"
	"ramcloud/internal/analysis/memokey"
	"ramcloud/internal/analysis/wireexhaustive"
)

// Suite returns every rcvet analyzer, in reporting order.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		detnow.Analyzer,
		goroutine.Analyzer,
		maporder.Analyzer,
		memokey.Analyzer,
		wireexhaustive.Analyzer,
	}
}
