// Package atest runs framework analyzers over testdata fixture packages
// and checks their diagnostics against `// want "regexp"` comments, the
// way x/tools' analysistest does. Fixture layout follows analysistest:
//
//	<analyzer>/testdata/src/<import/path>/*.go
//
// Each `// want` comment names one or more quoted regular expressions
// that must each match exactly one diagnostic reported on that line; any
// unmatched diagnostic or unsatisfied expectation fails the test.
//
// Fixture packages may import the standard library (type-checked from
// GOROOT source) and other fixture packages loaded earlier in the same
// Run call, so sealed-interface checks can exercise cross-package
// scenarios without touching the real tree.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ramcloud/internal/analysis/framework"
)

// Run loads each fixture package under testdata/src in order (so later
// packages may import earlier ones), runs the analyzer on every one of
// them, and checks diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *framework.Analyzer, testdata string, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	loaded := map[string]*types.Package{}
	imp := importerFunc(func(path string) (*types.Package, error) {
		if pkg, ok := loaded[path]; ok {
			return pkg, nil
		}
		return std.Import(path)
	})

	for _, pkgPath := range pkgPaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
		files, err := parseDir(fset, dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgPath, err)
		}
		info := framework.NewInfo()
		tc := &types.Config{Importer: imp, Error: func(err error) { t.Errorf("fixture %s: %v", pkgPath, err) }}
		pkg, err := tc.Check(pkgPath, fset, files, info)
		if err != nil {
			t.Fatalf("typechecking fixture %s: %v", pkgPath, err)
		}
		loaded[pkgPath] = pkg

		diags, err := framework.Run(a, fset, files, pkg, info)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
		}
		checkWants(t, a, fset, files, diags)
	}
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Pos()).Filename < fset.Position(files[j].Pos()).Filename
	})
	return files, nil
}

type expectation struct {
	re   *regexp.Regexp
	pos  token.Position
	used bool
}

var wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)

// checkWants matches reported diagnostics against want expectations.
func checkWants(t *testing.T, a *framework.Analyzer, fset *token.FileSet, files []*ast.File, diags []framework.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, pat := range splitQuoted(t, posn, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, pat, err)
					}
					key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
					wants[key] = append(wants[key], &expectation{re: re, pos: posn})
				}
			}
		}
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
		matched := false
		for _, exp := range wants[key] {
			if !exp.used && exp.re.MatchString(d.Message) {
				exp.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected %s diagnostic: %s", posn, a.Name, d.Message)
		}
	}
	for _, exps := range wants {
		for _, exp := range exps {
			if !exp.used {
				t.Errorf("%s: expected %s diagnostic matching %q, got none", exp.pos, a.Name, exp.re)
			}
		}
	}
}

// splitQuoted extracts the quoted regexps of one want comment.
func splitQuoted(t *testing.T, posn token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s: malformed want comment near %q (patterns must be quoted)", posn, s)
		}
		quote := s[0]
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("%s: unterminated pattern in want comment", posn)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad pattern %s: %v", posn, s[:end+1], err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
