// Package framework is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface this repo needs. The
// container building this repo has no module proxy access, so instead of
// vendoring x/tools the rcvet suite runs on this ~300-line core: an
// Analyzer is a named Run function over a type-checked package (a Pass),
// and diagnostics are plain positions plus messages.
//
// Two drivers execute analyzers: framework/unit speaks the `go vet
// -vettool` protocol (one process per package, export data supplied by
// the go command), and framework/atest loads testdata fixture packages
// from source and checks diagnostics against `// want "re"` comments,
// mirroring x/tools' analysistest.
//
// Suppression: a site carrying the comment
//
//	//rcvet:allow <analyzer> <justification>
//
// on the flagged line, or alone on the line immediately above it,
// suppresses that analyzer's diagnostics for the line. The justification
// text is mandatory — a bare directive does not suppress and is itself
// reported — so every exception in the tree documents why the invariant
// holds anyway. See LINTS.md at the repo root.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rcvet:allow directives. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description printed by rcvet help.
	Doc string

	// Run applies the check to one package. Diagnostics are delivered
	// via pass.Report*; the error return is for analysis failures
	// (not findings).
	Run func(pass *Pass) error
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers set it; analyzers call
	// the Reportf helper instead.
	Report func(Diagnostic)

	// allow maps "file:line" to the directives in force there.
	allow map[string][]allowDirective
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a diagnostic at pos unless an //rcvet:allow directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.allowed(pos) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

var directiveRe = regexp.MustCompile(`^//rcvet:allow\s+([A-Za-z0-9_,]+)(.*)$`)

type allowDirective struct {
	analyzers []string
	justified bool
}

// buildAllowIndex scans every file's comments once per pass.
func (p *Pass) buildAllowIndex() {
	p.allow = make(map[string][]allowDirective)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				d := allowDirective{
					analyzers: strings.Split(m[1], ","),
					justified: strings.TrimSpace(m[2]) != "",
				}
				posn := p.Fset.Position(c.Pos())
				// The directive covers its own line and the next one, so
				// it can trail the flagged statement or sit just above it.
				for _, line := range []int{posn.Line, posn.Line + 1} {
					key := fmt.Sprintf("%s:%d", posn.Filename, line)
					p.allow[key] = append(p.allow[key], d)
				}
			}
		}
	}
}

// allowed reports whether a directive suppresses this analyzer at pos.
// An unjustified directive suppresses nothing and is reported once, at
// the moment it would have been used.
func (p *Pass) allowed(pos token.Pos) bool {
	if p.allow == nil {
		p.buildAllowIndex()
	}
	posn := p.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
	for _, d := range p.allow[key] {
		for _, name := range d.analyzers {
			if name != p.Analyzer.Name {
				continue
			}
			if !d.justified {
				// Reported at the suppressed site (not the directive) so
				// the finding and the fix-it share one line.
				p.Report(Diagnostic{
					Pos: pos,
					Message: fmt.Sprintf(
						"rcvet:allow %s directive needs a justification (//rcvet:allow %s <why the invariant holds here>)",
						p.Analyzer.Name, p.Analyzer.Name),
				})
				continue
			}
			return true
		}
	}
	return false
}

// Run executes one analyzer over a loaded package, collecting its
// diagnostics. Drivers share this so suppression and error handling
// behave identically under go vet and under atest.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return diags, fmt.Errorf("%s: %w", a.Name, err)
	}
	return diags, nil
}

// NewInfo returns a types.Info with every map analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
