// Package unit drives framework analyzers under `go vet -vettool`. It
// re-implements, on the standard library alone, the subset of x/tools'
// unitchecker protocol the go command speaks:
//
//   - `rcvet -V=full` prints a versioned fingerprint of the executable
//     (the go command keys its vet cache on it);
//   - `rcvet -flags` describes the tool's flags as JSON (none);
//   - `rcvet <file>.cfg` analyzes one package: the go command hands the
//     tool a JSON config naming the package's files, its import map and
//     the export-data file of every dependency, and the tool exits
//     non-zero iff it reports diagnostics.
//
// Facts are not supported: none of the rcvet analyzers need
// cross-package state, so dependency packages (VetxOnly configs) are
// acknowledged with an empty vetx file and skipped without parsing.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"ramcloud/internal/analysis/framework"
)

// config mirrors the JSON the go command writes to vet.cfg. Fields this
// driver does not consume are ignored by the decoder.
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vettool built from framework analyzers.
func Main(analyzers ...*framework.Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return
		case arg == "-flags" || arg == "--flags":
			// No tool-specific flags; the go command requires valid JSON.
			fmt.Println("[]")
			return
		case arg == "help" || arg == "-h" || arg == "--help":
			usage(progname, analyzers)
			return
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		usage(progname, analyzers)
		os.Exit(2)
	}
	os.Exit(run(progname, args[0], analyzers))
}

func usage(progname string, analyzers []*framework.Analyzer) {
	fmt.Fprintf(os.Stderr, "%s is a vet tool; run it via:\n\n\tgo vet -vettool=$(which %s) ./...\n\nRegistered analyzers (see LINTS.md):\n\n", progname, progname)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, doc)
	}
}

// printVersion implements the -V=full fingerprint contract: the output's
// first field must be the tool path, the second "version", and the last
// a buildID= token the go command folds into its cache key.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
}

func run(progname, cfgFile string, analyzers []*framework.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 2
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "%s: parsing %s: %v\n", progname, cfgFile, err)
		return 2
	}

	// The go command records the vetx file as this action's output, so
	// it must exist even though rcvet analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("rcvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		// Dependency package analyzed only for facts — nothing to do.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the go command's maps: ImportMap takes an
	// import path to its canonical package path (vendoring), PackageFile
	// takes that to the export data the build already produced.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := framework.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: typecheck %s: %v\n", progname, cfg.ImportPath, err)
		return 1
	}

	exit := 0
	for _, a := range analyzers {
		diags, err := framework.Run(a, fset, files, pkg, info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			exit = 1
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (rcvet/%s)\n", fset.Position(d.Pos), d.Message, a.Name)
			exit = 1
		}
	}
	return exit
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
