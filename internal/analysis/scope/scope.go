// Package scope centralizes which packages the rcvet analyzers police.
// The determinism contract (LINTS.md) covers the simulation tree under
// ramcloud/internal/: everything a figure's byte-identical rendering
// depends on. The cmd/ binaries and examples/ report wall-clock numbers
// by design and are out of scope, as is the analysis tooling itself.
package scope

import (
	"path"
	"strings"
)

const internalPrefix = "ramcloud/internal/"

// Deterministic reports whether pkgPath is part of the simulation tree
// whose behaviour must be a pure function of the scenario and seed.
func Deterministic(pkgPath string) bool {
	if !strings.HasPrefix(pkgPath, internalPrefix) {
		return false
	}
	// The analyzers and their fixtures are host-side tooling.
	if strings.HasPrefix(pkgPath, internalPrefix+"analysis") {
		return false
	}
	// The real-transport stack (transport's TCP backend, the realnode
	// hosts behind cmd/rccoord, rcserver and rcclient) legitimately uses
	// wall-clock time, bare goroutines and OS scheduling: it exists to
	// run the protocol on real sockets, not to render figures. Exempting
	// the packages here, by scope, keeps their sources free of
	// //rcvet:allow spam and keeps the exemption auditable in one place.
	if strings.HasPrefix(pkgPath, internalPrefix+"transport") ||
		strings.HasPrefix(pkgPath, internalPrefix+"realnode") {
		return false
	}
	return true
}

// singleThreaded lists the packages making up the discrete-event
// simulator and the protocol logic running inside it. A bare go
// statement there bypasses the engine's cooperative scheduler: the OS
// decides interleaving, and determinism — plus any future conservative-
// lookahead sharding of the engine — is lost. sim owns the scheduler
// and core owns the worker-pool runner; their spawning sites carry
// //rcvet:allow goroutine justifications.
var singleThreaded = map[string]bool{
	"sim":         true,
	"simnet":      true,
	"server":      true,
	"coordinator": true,
	"client":      true,
	"core":        true,
}

// SingleThreaded reports whether bare go statements are forbidden in
// pkgPath.
func SingleThreaded(pkgPath string) bool {
	rest, ok := strings.CutPrefix(pkgPath, internalPrefix)
	if !ok {
		return false
	}
	return singleThreaded[rest]
}

// TestFile reports whether filename is a _test.go file. Tests drive the
// simulator from ordinary goroutines (the race hammers depend on it)
// and may measure wall clock, so the behavioural analyzers skip them.
func TestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}

// LaneScheduler reports whether filename is the sharded engine's driver
// file, the one place in the simulation tree where bare go statements are
// the mechanism rather than a bug: its persistent lane workers ARE the
// parallel scheduler, synchronized by the window barrier so that no
// simulated state is ever observed across lanes mid-window. Scoping the
// exemption to exactly sim/sharded.go keeps it auditable here instead of
// spraying //rcvet:allow across every worker loop, and keeps the rest of
// sim (and every protocol package) under the bare-go ban.
func LaneScheduler(pkgPath, filename string) bool {
	return pkgPath == internalPrefix+"sim" && path.Base(filepathToSlash(filename)) == "sharded.go"
}

// filepathToSlash normalizes OS path separators so LaneScheduler can use
// path.Base portably.
func filepathToSlash(filename string) string {
	return strings.ReplaceAll(filename, "\\", "/")
}
