// Package goroutine forbids bare go statements in the deterministic
// simulation packages (sim, simnet, server, coordinator, client, core).
//
// The simulator is cooperatively scheduled: sim.Engine.Go parks each
// proc on a resume channel and the event loop hands control to exactly
// one runnable proc at a time, so simulated interleaving is a function
// of the event heap, not of the OS scheduler. A raw go statement
// bypasses that handoff — its writes race the engine, its timing varies
// run to run, and any future conservative-lookahead sharding of the
// engine (the PDES item on the roadmap) would be undermined silently.
//
// The two legitimate spawning sites — the engine scheduler itself and
// the cross-scenario worker pool in core's Runner, both of which
// synchronize before any simulated state is observed — carry
// //rcvet:allow goroutine justifications. Anything new must either go
// through sim.Engine.Go or document why OS-level concurrency cannot
// perturb simulated time. Test files are exempt (race hammers drive the
// pool from plain goroutines on purpose).
package goroutine

import (
	"go/ast"

	"ramcloud/internal/analysis/framework"
	"ramcloud/internal/analysis/scope"
)

// Analyzer is the goroutine check.
var Analyzer = &framework.Analyzer{
	Name: "goroutine",
	Doc:  "forbid bare go statements in deterministic simulation packages",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if !scope.SingleThreaded(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if scope.TestFile(filename) {
			continue
		}
		// The sharded driver's lane workers are the one sanctioned use of
		// OS goroutines inside the simulator (see scope.LaneScheduler).
		if scope.LaneScheduler(pass.Pkg.Path(), filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "bare go statement in a deterministic package bypasses the engine's cooperative scheduler; spawn procs with sim.Engine.Go, or annotate //rcvet:allow goroutine <why>")
			}
			return true
		})
	}
	return nil
}
