package goroutine_test

import (
	"testing"

	"ramcloud/internal/analysis/framework/atest"
	"ramcloud/internal/analysis/goroutine"
)

func TestGoroutine(t *testing.T) {
	atest.Run(t, goroutine.Analyzer, "testdata",
		"ramcloud/internal/sim",
		"ramcloud/internal/report",
	)
}
