package sim

// Test files are exempt: race hammers drive the pool from plain
// goroutines on purpose. No diagnostics expected here.

func hammer(fn func()) {
	for i := 0; i < 4; i++ {
		go fn()
	}
}
