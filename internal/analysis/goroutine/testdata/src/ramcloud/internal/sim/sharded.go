// sharded.go is the lane-scheduler fixture: scope.LaneScheduler exempts
// exactly this file (package sim, basename sharded.go), so its bare go
// statements need neither a diagnostic nor an //rcvet:allow annotation.
package sim

func startWorkers(n int, run func(i int)) []chan int {
	start := make([]chan int, n)
	for i := 1; i < n; i++ {
		i := i
		ch := make(chan int)
		start[i] = ch
		go func() {
			for range ch {
				run(i)
			}
		}()
	}
	return start
}
