// Package sim is a goroutine fixture standing in for the real engine
// package (the analyzer keys on the import path, not the contents).
package sim

func spawn(fn func()) {
	go fn() // want `bare go statement in a deterministic package`
}

func spawnAllowed(fn func(), done chan struct{}) {
	//rcvet:allow goroutine fixture stand-in for the scheduler: parks immediately and hands control back before any simulated state is touched
	go fn()
	<-done
}

func spawnUnjustified(fn func()) {
	//rcvet:allow goroutine
	go fn() // want `directive needs a justification` `bare go statement in a deterministic package`
}
