// Package report is outside the single-threaded set: bare goroutines
// are legal here (host-side rendering may fan out freely).
package report

func fanOut(fns []func()) {
	for _, fn := range fns {
		go fn()
	}
}
