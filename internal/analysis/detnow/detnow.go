// Package detnow forbids wall-clock time and ambient randomness inside
// the simulation tree. Every figure this repo renders must be a pure
// function of (scenario, seed): a stray time.Now() or global math/rand
// call compiles fine, passes a single run, and then ships as a flaky
// determinism-gate diff hours later. This analyzer turns that class of
// bug into a vet error.
//
// Flagged in deterministic packages (scope.Deterministic):
//   - the wall-clock readers and sleepers of package time (Now, Sleep,
//     Since, Until, After, Tick, AfterFunc, NewTimer, NewTicker) —
//     simulated code must use sim.Time / Proc.Sleep;
//   - package-level math/rand functions (Intn, Float64, Seed, ...),
//     which draw from the process-global source — simulated code must
//     draw from an explicitly seeded *rand.Rand (sim.Engine.Rand);
//   - any import of math/rand/v2, whose global source cannot be seeded
//     at all.
//
// Constructors that only build seeded state (rand.New, rand.NewSource,
// rand.NewZipf) stay legal. Test files are exempt.
package detnow

import (
	"go/ast"
	"go/types"

	"ramcloud/internal/analysis/framework"
	"ramcloud/internal/analysis/scope"
)

// Analyzer is the detnow check.
var Analyzer = &framework.Analyzer{
	Name: "detnow",
	Doc:  "forbid wall-clock time and global math/rand in simulation packages",
	Run:  run,
}

// bannedTime are the package time functions that read or wait on the
// host clock.
var bannedTime = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// allowedRand are the math/rand constructors that build explicitly
// seeded state instead of drawing from the global source.
var allowedRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func run(pass *framework.Pass) error {
	if !scope.Deterministic(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if scope.TestFile(pass.Fset.Position(f.Pos()).Filename) {
			continue
		}
		for _, imp := range f.Imports {
			if imp.Path.Value == `"math/rand/v2"` {
				pass.Reportf(imp.Pos(), "math/rand/v2 draws from an unseedable global source; use the engine's seeded RNG (sim.Engine.Rand)")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "time":
				if bannedTime[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "time.%s reads the host clock; simulation code must use sim.Time/sim.Duration and Proc.Sleep so runs replay identically", sel.Sel.Name)
				}
			case "math/rand":
				obj := pass.TypesInfo.Uses[sel.Sel]
				if _, isFunc := obj.(*types.Func); isFunc && !allowedRand[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "rand.%s draws from the process-global source; draw from an explicitly seeded *rand.Rand (sim.Engine.Rand) instead", sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
