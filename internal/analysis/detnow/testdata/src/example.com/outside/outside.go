// Package outside sits outside ramcloud/internal/: detnow must not
// report anything here, host tooling may read the wall clock freely.
package outside

import "time"

func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
