// Package detfix is a detnow fixture: a package inside the simulated
// tree exercising the banned and allowed time/rand surface.
package detfix

import (
	"math/rand"
	"time"
)

func clocks() time.Duration {
	t0 := time.Now()                      // want `time\.Now reads the host clock`
	time.Sleep(time.Millisecond)          // want `time\.Sleep reads the host clock`
	d := time.Since(t0)                   // want `time\.Since reads the host clock`
	_ = time.After(time.Second)           // want `time\.After reads the host clock`
	_ = time.NewTicker(time.Second)       // want `time\.NewTicker reads the host clock`
	const legal = 5 * time.Microsecond    // type and constants stay legal
	_ = time.Duration(legal).Seconds()    // so do pure conversions
	return d
}

func globalRand() int {
	n := rand.Intn(10) // want `rand\.Intn draws from the process-global source`
	rand.Seed(1)       // want `rand\.Seed draws from the process-global source`
	_ = rand.Float64() // want `rand\.Float64 draws from the process-global source`
	return n
}

func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // constructors build seeded state: legal
	z := rand.NewZipf(r, 1.1, 1, 100)
	_ = z.Uint64()
	return r.Float64()
}

func suppressed() {
	//rcvet:allow detnow host-side profiling hook, never runs under the engine
	_ = time.Now()
}

func unjustified() {
	//rcvet:allow detnow
	_ = time.Now() // want `directive needs a justification` `time\.Now reads the host clock`
}
