package detnow_test

import (
	"testing"

	"ramcloud/internal/analysis/detnow"
	"ramcloud/internal/analysis/framework/atest"
)

func TestDetnow(t *testing.T) {
	atest.Run(t, detnow.Analyzer, "testdata",
		"ramcloud/internal/detfix",
		"example.com/outside",
	)
}
