package logstore

import (
	"fmt"
	"math/rand"
	"testing"
)

// modelStore drives a Log the way a master would, tracking the current ref
// of every key in a map so tests can check cleaner correctness against a
// simple model.
type modelStore struct {
	log  *Log
	refs map[string]Ref // key -> live ref
	vals map[string]uint64
}

func newModelStore(cfg Config) *modelStore {
	return &modelStore{log: NewLog(cfg), refs: make(map[string]Ref), vals: make(map[string]uint64)}
}

func (m *modelStore) write(t *testing.T, key string, version uint64) {
	t.Helper()
	e := obj(key, 64, version)
	e.KeyHash = uint64(len(key))*131 + uint64(key[len(key)-1])
	if m.log.NeedsRoll(e.StorageSize()) {
		m.log.Roll()
	}
	ref, err := m.log.Append(e)
	if err != nil {
		t.Fatalf("append %s: %v", key, err)
	}
	if old, ok := m.refs[key]; ok {
		if err := m.log.MarkDead(old); err != nil {
			t.Fatal(err)
		}
	}
	m.refs[key] = ref
	m.vals[key] = version
}

func (m *modelStore) delete(t *testing.T, key string) {
	t.Helper()
	old, ok := m.refs[key]
	if !ok {
		t.Fatalf("delete of absent key %s", key)
	}
	oldEntry, err := m.log.Get(old)
	if err != nil {
		t.Fatal(err)
	}
	tomb := Entry{
		Type:          EntryTombstone,
		Table:         oldEntry.Table,
		KeyHash:       oldEntry.KeyHash,
		Key:           []byte(key),
		Version:       oldEntry.Version,
		ObjectSegment: old.Segment,
	}
	if m.log.NeedsRoll(tomb.StorageSize()) {
		m.log.Roll()
	}
	if _, err := m.log.Append(tomb); err != nil {
		t.Fatal(err)
	}
	if err := m.log.MarkDead(old); err != nil {
		t.Fatal(err)
	}
	delete(m.refs, key)
	delete(m.vals, key)
}

func (m *modelStore) isLive(ref Ref, e *Entry) bool {
	cur, ok := m.refs[string(e.Key)]
	return ok && cur == ref
}

func (m *modelStore) clean(t *testing.T, maxSegs int) CleanStats {
	t.Helper()
	stats, err := m.log.Clean(maxSegs, m.isLive, func(old, new Ref, e *Entry) {
		if e.Type != EntryObject {
			return
		}
		if m.refs[string(e.Key)] != old {
			t.Fatalf("relocating non-live entry %s", e.Key)
		}
		m.refs[string(e.Key)] = new
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func (m *modelStore) verify(t *testing.T) {
	t.Helper()
	for key, ref := range m.refs {
		e, err := m.log.Get(ref)
		if err != nil {
			t.Fatalf("key %s: %v", key, err)
		}
		if string(e.Key) != key {
			t.Fatalf("key %s resolves to entry for %s", key, e.Key)
		}
		if e.Version != m.vals[key] {
			t.Fatalf("key %s version %d, want %d", key, e.Version, m.vals[key])
		}
		if !e.VerifyChecksum() {
			t.Fatalf("key %s checksum broken after clean", key)
		}
	}
}

func TestCleanReclaimsDeadSegments(t *testing.T) {
	m := newModelStore(Config{SegmentBytes: 512, TotalBytes: 1 << 20})
	// Overwrite the same keys repeatedly: old segments become fully dead.
	for round := 0; round < 10; round++ {
		for k := 0; k < 5; k++ {
			m.write(t, fmt.Sprintf("key%d", k), uint64(round+1))
		}
	}
	segsBefore := m.log.SegmentCount()
	accBefore := m.log.AccountedBytes()
	stats := m.clean(t, segsBefore)
	if stats.SegmentsFreed == 0 {
		t.Fatal("cleaner freed nothing despite heavy overwrites")
	}
	if m.log.AccountedBytes() >= accBefore {
		t.Fatalf("accounted bytes did not shrink: %d -> %d", accBefore, m.log.AccountedBytes())
	}
	m.verify(t)
}

func TestCleanPreservesExactlyLiveSet(t *testing.T) {
	m := newModelStore(Config{SegmentBytes: 512, TotalBytes: 1 << 20})
	rng := rand.New(rand.NewSource(11))
	keys := 20
	for op := 0; op < 500; op++ {
		k := fmt.Sprintf("key%02d", rng.Intn(keys))
		if _, ok := m.refs[k]; ok && rng.Intn(4) == 0 {
			m.delete(t, k)
		} else {
			m.write(t, k, uint64(op+1))
		}
		if op%97 == 0 {
			m.clean(t, 4)
			m.verify(t)
		}
	}
	m.clean(t, m.log.SegmentCount())
	m.verify(t)
	// Every surviving object entry must be in the live set.
	liveCount := 0
	for id := uint64(0); id <= m.log.nextSegID; id++ {
		s, ok := m.log.Segment(id)
		if !ok {
			continue
		}
		for i := range s.entries {
			e := &s.entries[i]
			if e.Type != EntryObject {
				continue
			}
			ref := Ref{Segment: id, Index: i}
			if m.refs[string(e.Key)] == ref {
				liveCount++
			}
		}
	}
	if liveCount != len(m.refs) {
		t.Fatalf("live entries in log = %d, model has %d", liveCount, len(m.refs))
	}
}

func TestCleanDropsObsoleteTombstones(t *testing.T) {
	m := newModelStore(Config{SegmentBytes: 256, TotalBytes: 1 << 20})
	m.write(t, "victim", 1)
	m.delete(t, "victim")
	// Fill more segments so the one holding the object seals and dies.
	for i := 0; i < 30; i++ {
		m.write(t, fmt.Sprintf("fill%d", i), 1)
	}
	total := CleanStats{}
	for i := 0; i < 4; i++ {
		s := m.clean(t, m.log.SegmentCount())
		total.TombstonesDropped += s.TombstonesDropped
		total.SegmentsFreed += s.SegmentsFreed
	}
	if total.TombstonesDropped == 0 {
		t.Fatal("tombstone for freed segment was never dropped")
	}
	m.verify(t)
}

func TestCleanNoVictimsNoop(t *testing.T) {
	m := newModelStore(Config{SegmentBytes: 512, TotalBytes: 1 << 20})
	for i := 0; i < 3; i++ {
		m.write(t, fmt.Sprintf("k%d", i), 1)
	}
	stats := m.clean(t, 10) // everything is live; head not sealed
	if stats.SegmentsFreed != 0 || stats.EntriesRelocated != 0 {
		t.Fatalf("stats = %+v, want zero", stats)
	}
}

func TestSelectVictimsOrdering(t *testing.T) {
	l := NewLog(Config{SegmentBytes: 512, TotalBytes: 1 << 20})
	// Build three sealed segments with different utilizations.
	var refs [][]Ref
	for s := 0; s < 3; s++ {
		l.Roll()
		var rs []Ref
		for i := 0; i < 4; i++ {
			r, err := l.Append(obj(fmt.Sprintf("s%dk%d", s, i), 50, 1))
			if err != nil {
				t.Fatal(err)
			}
			rs = append(rs, r)
		}
		refs = append(refs, rs)
	}
	l.Roll() // seal the last one
	// Kill all of segment 0, half of segment 1, none of segment 2.
	for _, r := range refs[0] {
		_ = l.MarkDead(r)
	}
	for _, r := range refs[1][:2] {
		_ = l.MarkDead(r)
	}
	victims := l.SelectVictims(10)
	if len(victims) != 2 {
		t.Fatalf("victims = %d, want 2 (fully-live segment excluded)", len(victims))
	}
	if victims[0].ID() != refs[0][0].Segment {
		t.Fatalf("first victim = %d, want the emptiest segment", victims[0].ID())
	}
}

func TestQuickCleanerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := newModelStore(Config{SegmentBytes: 384, TotalBytes: 1 << 20})
		for op := 0; op < 300; op++ {
			k := fmt.Sprintf("k%d", rng.Intn(12))
			switch {
			case rng.Intn(5) == 0:
				if _, ok := m.refs[k]; ok {
					m.delete(t, k)
				}
			default:
				m.write(t, k, uint64(op+1))
			}
			if rng.Intn(50) == 0 {
				m.clean(t, 1+rng.Intn(3))
			}
		}
		m.clean(t, m.log.SegmentCount())
		m.verify(t)
	}
}
