// Package logstore implements RAMCloud's log-structured memory: an
// append-only log divided into fixed-size segments (8 MB by default), with
// tombstones for deletes, per-segment liveness accounting, and a
// cost-benefit cleaner that reclaims space by relocating live entries.
//
// The log is a pure data structure: it knows nothing about threads,
// networks or time. The master wraps it with the simulation's concurrency
// control (the log-head mutex) and replication.
//
// Values may be virtual (declared length without bytes) so that
// paper-scale experiments fit in host memory; all capacity accounting uses
// declared sizes, so segment rollover, cleaning and backup flush behave
// exactly as if the bytes were real.
package logstore

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// EntryType discriminates log records.
type EntryType uint8

// Log record types. Start at one so a zero value is detectably invalid.
const (
	EntryObject EntryType = iota + 1
	EntryTombstone
)

// Entry is one log record.
type Entry struct {
	Type     EntryType
	Table    uint64
	KeyHash  uint64
	Key      []byte
	ValueLen uint32
	Value    []byte // nil when virtual; len(Value) == ValueLen when real
	Version  uint64

	// ObjectSegment is, for tombstones, the segment that held the deleted
	// object. The tombstone may be dropped once that segment is freed.
	ObjectSegment uint64

	Checksum uint32
}

// entryHeaderBytes is the accounted per-entry overhead: type, table, key
// hash, key length, value length, version, object segment, checksum.
const entryHeaderBytes = 1 + 8 + 8 + 4 + 4 + 8 + 8 + 4

// StorageSize returns the bytes this entry occupies in the log, counting
// the declared value length.
func (e *Entry) StorageSize() int {
	return entryHeaderBytes + len(e.Key) + int(e.ValueLen)
}

// ComputeChecksum returns the CRC-32C over the entry's logical content.
// Virtual values contribute their declared length (the simulation cannot
// hash bytes it does not materialize, but a length change still alters the
// sum).
func (e *Entry) ComputeChecksum() uint32 {
	h := crc32.New(castagnoli)
	var hdr [33]byte
	hdr[0] = byte(e.Type)
	putU64(hdr[1:], e.Table)
	putU64(hdr[9:], e.KeyHash)
	putU64(hdr[17:], e.Version)
	putU32(hdr[25:], e.ValueLen)
	putU32(hdr[29:], uint32(len(e.Key)))
	h.Write(hdr[:])
	h.Write(e.Key)
	if e.Value != nil {
		h.Write(e.Value)
	}
	return h.Sum32()
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putU32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Seal protects the entry with its checksum.
func (e *Entry) Seal() { e.Checksum = e.ComputeChecksum() }

// VerifyChecksum reports whether the entry matches its checksum.
func (e *Entry) VerifyChecksum() bool { return e.Checksum == e.ComputeChecksum() }

// Ref locates an entry in the log.
type Ref struct {
	Segment uint64
	Index   int
}

// Packed encodes the ref as a uint64 for storage in the hash table
// (40 bits of segment id, 24 bits of index).
func (r Ref) Packed() uint64 {
	if r.Segment >= 1<<40 || r.Index >= 1<<24 || r.Index < 0 {
		panic(fmt.Sprintf("logstore: ref out of packing range: %+v", r))
	}
	return r.Segment<<24 | uint64(r.Index)
}

// UnpackRef inverts Ref.Packed.
func UnpackRef(v uint64) Ref {
	return Ref{Segment: v >> 24, Index: int(v & (1<<24 - 1))}
}

// Segment is one fixed-size piece of the log.
type Segment struct {
	id        uint64
	entries   []Entry
	accounted int // bytes appended (declared sizes)
	live      int // bytes still live
	sealed    bool
	seq       uint64 // creation sequence, proxy for age in cost-benefit
}

// ID returns the segment's log-unique id.
func (s *Segment) ID() uint64 { return s.id }

// Entries returns the number of records in the segment.
func (s *Segment) Entries() int { return len(s.entries) }

// Accounted returns the bytes appended to this segment.
func (s *Segment) Accounted() int { return s.accounted }

// Live returns the bytes of entries still live.
func (s *Segment) Live() int { return s.live }

// Sealed reports whether the segment is closed to appends.
func (s *Segment) Sealed() bool { return s.sealed }

// Utilization returns live/accounted in [0,1]; 1 for an empty segment.
func (s *Segment) Utilization() float64 {
	if s.accounted == 0 {
		return 1
	}
	return float64(s.live) / float64(s.accounted)
}

// EntryAt returns the i-th entry.
func (s *Segment) EntryAt(i int) (*Entry, error) {
	if i < 0 || i >= len(s.entries) {
		return nil, fmt.Errorf("%w: index %d of %d in segment %d", ErrBadRef, i, len(s.entries), s.id)
	}
	return &s.entries[i], nil
}

// Config sets the log geometry.
type Config struct {
	SegmentBytes int   // capacity of one segment (paper default: 8 MB)
	TotalBytes   int64 // total log capacity (paper: 10 GB per server)
}

// DefaultConfig mirrors the paper's server configuration.
func DefaultConfig() Config {
	return Config{SegmentBytes: 8 << 20, TotalBytes: 10 << 30}
}

// Log errors.
var (
	ErrBadRef     = errors.New("logstore: invalid reference")
	ErrLogFull    = errors.New("logstore: log capacity exhausted")
	ErrEntryLarge = errors.New("logstore: entry larger than a segment")
	ErrSealed     = errors.New("logstore: segment is sealed")
)

// Log is the append-only log-structured memory of one master.
type Log struct {
	cfg Config

	head     *Segment
	segments map[uint64]*Segment

	nextSegID uint64
	nextSeq   uint64

	totalAccounted int64
	totalLive      int64

	appends   uint64
	tombCount int
}

// NewLog returns an empty log. The first Append opens the first segment.
func NewLog(cfg Config) *Log {
	if cfg.SegmentBytes <= entryHeaderBytes {
		panic("logstore: segment size too small")
	}
	if cfg.TotalBytes < int64(cfg.SegmentBytes) {
		panic("logstore: total capacity below one segment")
	}
	return &Log{cfg: cfg, segments: make(map[uint64]*Segment)}
}

// Config returns the log geometry.
func (l *Log) Config() Config { return l.cfg }

// Head returns the current head segment (nil before the first append).
func (l *Log) Head() *Segment { return l.head }

// SegmentCount returns the number of segments (head included).
func (l *Log) SegmentCount() int { return len(l.segments) }

// Segment returns a segment by id.
func (l *Log) Segment(id uint64) (*Segment, bool) {
	s, ok := l.segments[id]
	return s, ok
}

// Appends returns the number of entries ever appended.
func (l *Log) Appends() uint64 { return l.appends }

// LiveBytes returns the total live bytes.
func (l *Log) LiveBytes() int64 { return l.totalLive }

// AccountedBytes returns the total appended bytes across all segments.
func (l *Log) AccountedBytes() int64 { return l.totalAccounted }

// MemoryUtilization returns accounted bytes / total capacity, the trigger
// metric for cleaning.
func (l *Log) MemoryUtilization() float64 {
	return float64(l.totalAccounted) / float64(l.cfg.TotalBytes)
}

// NeedsRoll reports whether appending size more bytes requires opening a
// new head segment.
func (l *Log) NeedsRoll(size int) bool {
	return l.head == nil || l.head.accounted+size > l.cfg.SegmentBytes
}

// Roll seals the current head and opens a new one. It returns the sealed
// segment (nil on the very first roll) and the new head. The master uses
// the sealed segment to close backup replicas and the new head to open
// fresh ones.
func (l *Log) Roll() (sealed, head *Segment) {
	sealed = l.head
	if sealed != nil {
		sealed.sealed = true
	}
	l.nextSegID++
	l.nextSeq++
	head = &Segment{id: l.nextSegID, seq: l.nextSeq}
	l.segments[head.id] = head
	l.head = head
	return sealed, head
}

// Append adds an entry to the head segment and returns its ref. The caller
// must have arranged capacity via NeedsRoll/Roll; appending an entry that
// does not fit the head is an error. Entries larger than a segment or
// beyond total capacity are errors.
func (l *Log) Append(e Entry) (Ref, error) {
	size := e.StorageSize()
	if size > l.cfg.SegmentBytes {
		return Ref{}, fmt.Errorf("%w: %d bytes", ErrEntryLarge, size)
	}
	if l.totalAccounted+int64(size) > l.cfg.TotalBytes {
		return Ref{}, ErrLogFull
	}
	if l.head == nil || l.head.accounted+size > l.cfg.SegmentBytes {
		return Ref{}, fmt.Errorf("logstore: append without roll (head full or missing)")
	}
	if e.Type == 0 {
		return Ref{}, errors.New("logstore: entry type unset")
	}
	e.Seal()
	s := l.head
	s.entries = append(s.entries, e)
	s.accounted += size
	s.live += size
	l.totalAccounted += int64(size)
	l.totalLive += int64(size)
	l.appends++
	if e.Type == EntryTombstone {
		l.tombCount++
	}
	return Ref{Segment: s.id, Index: len(s.entries) - 1}, nil
}

// Get returns the entry at ref.
func (l *Log) Get(ref Ref) (*Entry, error) {
	s, ok := l.segments[ref.Segment]
	if !ok {
		return nil, fmt.Errorf("%w: segment %d missing", ErrBadRef, ref.Segment)
	}
	return s.EntryAt(ref.Index)
}

// MarkDead reduces liveness for the entry at ref (overwritten or deleted).
func (l *Log) MarkDead(ref Ref) error {
	s, ok := l.segments[ref.Segment]
	if !ok {
		return fmt.Errorf("%w: segment %d missing", ErrBadRef, ref.Segment)
	}
	e, err := s.EntryAt(ref.Index)
	if err != nil {
		return err
	}
	size := e.StorageSize()
	s.live -= size
	l.totalLive -= int64(size)
	if s.live < 0 {
		return fmt.Errorf("logstore: segment %d liveness below zero", s.id)
	}
	return nil
}

// free removes a segment entirely, reclaiming its accounted bytes.
func (l *Log) free(s *Segment) {
	l.totalAccounted -= int64(s.accounted)
	l.totalLive -= int64(s.live)
	delete(l.segments, s.id)
}
