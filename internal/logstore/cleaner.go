package logstore

import "sort"

// This file implements the log cleaner. RAMCloud triggers cleaning when
// memory utilization passes a threshold; the cleaner picks sealed segments
// by LFS-style cost-benefit score, relocates their live entries to the log
// head, and frees the victims. The paper deliberately sizes its workloads
// to never trigger the cleaner (Section III-C); the cleaner ablation bench
// shows what happens when it does run.

// CleanStats summarises one cleaning pass.
type CleanStats struct {
	SegmentsFreed       int
	BytesReclaimed      int64
	EntriesRelocated    int
	BytesRelocated      int64
	TombstonesDropped   int
	TombstonesRelocated int
}

// costBenefit returns the LFS cleaning score for a segment: segments with
// little live data and older age are cleaned first.
func (l *Log) costBenefit(s *Segment) float64 {
	u := s.Utilization()
	age := float64(l.nextSeq - s.seq)
	return (1 - u) * age / (1 + u)
}

// SelectVictims returns up to maxSegments sealed segments ordered by
// descending cost-benefit score. Segments that are fully live are skipped:
// cleaning them reclaims nothing.
func (l *Log) SelectVictims(maxSegments int) []*Segment {
	var cands []*Segment
	for _, s := range l.segments {
		if s.sealed && s.live < s.accounted {
			cands = append(cands, s)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		si, sj := l.costBenefit(cands[i]), l.costBenefit(cands[j])
		if si != sj {
			return si > sj
		}
		return cands[i].id < cands[j].id // deterministic tiebreak
	})
	if len(cands) > maxSegments {
		cands = cands[:maxSegments]
	}
	return cands
}

// IsLiveFunc reports whether the object entry at ref is still the current
// version of its key (i.e. the hash table points at it).
type IsLiveFunc func(ref Ref, e *Entry) bool

// RelocatedFunc observes a live entry being moved from old to new; the
// master uses it to fix the hash table and re-replicate survivor data.
type RelocatedFunc func(old, new Ref, e *Entry)

// Clean performs one cleaning pass over up to maxSegments victims:
// live objects (per isLive) and still-needed tombstones are relocated to
// the log head, then the victims are freed. Relocation preserves entry
// versions. The capacity check is suspended during relocation (the pass
// frees more than it writes).
func (l *Log) Clean(maxSegments int, isLive IsLiveFunc, relocated RelocatedFunc) (CleanStats, error) {
	var stats CleanStats
	victims := l.SelectVictims(maxSegments)
	if len(victims) == 0 {
		return stats, nil
	}
	dying := make(map[uint64]bool, len(victims))
	for _, v := range victims {
		dying[v.id] = true
	}
	for _, v := range victims {
		for i := range v.entries {
			e := &v.entries[i]
			old := Ref{Segment: v.id, Index: i}
			keep := false
			isTomb := e.Type == EntryTombstone
			if isTomb {
				// A tombstone is needed while the segment that held its
				// object still exists (and is not dying in this pass).
				_, exists := l.segments[e.ObjectSegment]
				keep = exists && !dying[e.ObjectSegment]
			} else {
				keep = isLive != nil && isLive(old, e)
			}
			if !keep {
				if isTomb {
					stats.TombstonesDropped++
				}
				continue
			}
			newRef, err := l.appendRelocating(*e)
			if err != nil {
				return stats, err
			}
			if isTomb {
				stats.TombstonesRelocated++
			} else {
				stats.EntriesRelocated++
			}
			stats.BytesRelocated += int64(e.StorageSize())
			if relocated != nil {
				relocated(old, newRef, e)
			}
		}
	}
	for _, v := range victims {
		stats.SegmentsFreed++
		stats.BytesReclaimed += int64(v.accounted)
		l.free(v)
	}
	return stats, nil
}

// appendRelocating appends without the total-capacity check (victims are
// about to be freed) and without touching versions.
func (l *Log) appendRelocating(e Entry) (Ref, error) {
	size := e.StorageSize()
	if size > l.cfg.SegmentBytes {
		return Ref{}, ErrEntryLarge
	}
	if l.NeedsRoll(size) {
		l.Roll()
	}
	e.Seal()
	s := l.head
	s.entries = append(s.entries, e)
	s.accounted += size
	s.live += size
	l.totalAccounted += int64(size)
	l.totalLive += int64(size)
	l.appends++
	return Ref{Segment: s.id, Index: len(s.entries) - 1}, nil
}
