package logstore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func smallCfg() Config {
	return Config{SegmentBytes: 1024, TotalBytes: 64 * 1024}
}

func obj(key string, valLen int, version uint64) Entry {
	return Entry{
		Type:     EntryObject,
		Table:    1,
		KeyHash:  uint64(len(key)) * 7,
		Key:      []byte(key),
		ValueLen: uint32(valLen),
		Version:  version,
	}
}

// appendOne rolls if needed and appends, like the master's write path.
func appendOne(t *testing.T, l *Log, e Entry) Ref {
	t.Helper()
	if l.NeedsRoll(e.StorageSize()) {
		l.Roll()
	}
	ref, err := l.Append(e)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	return ref
}

func TestAppendAndGet(t *testing.T) {
	l := NewLog(smallCfg())
	e := obj("user1", 100, 1)
	e.Value = []byte("real bytes")
	e.ValueLen = uint32(len(e.Value))
	ref := appendOne(t, l, e)
	got, err := l.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Key) != "user1" || got.Version != 1 {
		t.Fatalf("got %+v", got)
	}
	if !got.VerifyChecksum() {
		t.Fatal("checksum mismatch after append")
	}
	if l.Appends() != 1 || l.LiveBytes() != int64(e.StorageSize()) {
		t.Fatalf("appends=%d live=%d", l.Appends(), l.LiveBytes())
	}
}

func TestStorageSizeCountsDeclaredLen(t *testing.T) {
	withBytes := Entry{Type: EntryObject, Key: []byte("k"), ValueLen: 100, Value: make([]byte, 100)}
	virtual := Entry{Type: EntryObject, Key: []byte("k"), ValueLen: 100}
	if withBytes.StorageSize() != virtual.StorageSize() {
		t.Fatal("virtual and real entries must account identically")
	}
}

func TestSegmentRollAtCapacity(t *testing.T) {
	l := NewLog(smallCfg()) // 1024-byte segments
	// Each entry ~ header(45) + key(2) + 300 = 347 bytes; 2 fit, 3rd rolls.
	var rolls int
	for i := 0; i < 6; i++ {
		e := obj(fmt.Sprintf("k%d", i), 300, 1)
		if l.NeedsRoll(e.StorageSize()) {
			l.Roll()
			rolls++
		}
		if _, err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if rolls != 3 {
		t.Fatalf("rolls = %d, want 3", rolls)
	}
	if l.SegmentCount() != 3 {
		t.Fatalf("segments = %d, want 3", l.SegmentCount())
	}
	if l.Head().Sealed() {
		t.Fatal("head must not be sealed")
	}
}

func TestRollSealsPrevious(t *testing.T) {
	l := NewLog(smallCfg())
	sealed, head := l.Roll()
	if sealed != nil {
		t.Fatal("first roll must return nil sealed segment")
	}
	first := head
	sealed, head = l.Roll()
	if sealed != first || !sealed.Sealed() {
		t.Fatal("second roll must seal the first segment")
	}
	if head.ID() == first.ID() {
		t.Fatal("new head must have a fresh id")
	}
}

func TestAppendWithoutRollFails(t *testing.T) {
	l := NewLog(smallCfg())
	if _, err := l.Append(obj("k", 10, 1)); err == nil {
		t.Fatal("append into missing head must fail")
	}
}

func TestAppendEntryTooLarge(t *testing.T) {
	l := NewLog(smallCfg())
	l.Roll()
	if _, err := l.Append(obj("k", 5000, 1)); !errors.Is(err, ErrEntryLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestLogFull(t *testing.T) {
	l := NewLog(Config{SegmentBytes: 1024, TotalBytes: 2048})
	var err error
	for i := 0; i < 100; i++ {
		e := obj("key", 400, 1)
		if l.NeedsRoll(e.StorageSize()) {
			l.Roll()
		}
		if _, err = l.Append(e); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrLogFull) {
		t.Fatalf("err = %v, want ErrLogFull", err)
	}
}

func TestMarkDeadAccounting(t *testing.T) {
	l := NewLog(smallCfg())
	e := obj("k", 100, 1)
	ref := appendOne(t, l, e)
	size := int64(e.StorageSize())
	if l.LiveBytes() != size {
		t.Fatalf("live = %d", l.LiveBytes())
	}
	if err := l.MarkDead(ref); err != nil {
		t.Fatal(err)
	}
	if l.LiveBytes() != 0 {
		t.Fatalf("live = %d after MarkDead", l.LiveBytes())
	}
	if l.AccountedBytes() != size {
		t.Fatalf("accounted = %d, should not change", l.AccountedBytes())
	}
	seg, _ := l.Segment(ref.Segment)
	if seg.Live() != 0 || seg.Utilization() != 0 {
		t.Fatalf("segment live=%d util=%v", seg.Live(), seg.Utilization())
	}
}

func TestMarkDeadBadRef(t *testing.T) {
	l := NewLog(smallCfg())
	if err := l.MarkDead(Ref{Segment: 99, Index: 0}); !errors.Is(err, ErrBadRef) {
		t.Fatalf("err = %v", err)
	}
	appendOne(t, l, obj("k", 10, 1))
	if err := l.MarkDead(Ref{Segment: 1, Index: 5}); !errors.Is(err, ErrBadRef) {
		t.Fatalf("err = %v", err)
	}
}

func TestGetBadRef(t *testing.T) {
	l := NewLog(smallCfg())
	if _, err := l.Get(Ref{Segment: 1}); !errors.Is(err, ErrBadRef) {
		t.Fatalf("err = %v", err)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	e := obj("key", 0, 3)
	e.Value = []byte("hello")
	e.ValueLen = 5
	e.Seal()
	if !e.VerifyChecksum() {
		t.Fatal("fresh entry must verify")
	}
	e.Version = 4
	if e.VerifyChecksum() {
		t.Fatal("corrupted entry must not verify")
	}
}

func TestRefPackRoundTrip(t *testing.T) {
	f := func(seg uint64, idx uint32) bool {
		r := Ref{Segment: seg % (1 << 40), Index: int(idx % (1 << 24))}
		return UnpackRef(r.Packed()) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRefPackOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Ref{Segment: 1 << 40, Index: 0}.Packed()
}

func TestMemoryUtilization(t *testing.T) {
	l := NewLog(Config{SegmentBytes: 1024, TotalBytes: 4096})
	e := obj("k", 400, 1)
	appendOne(t, l, e)
	got := l.MemoryUtilization()
	want := float64(e.StorageSize()) / 4096
	if got != want {
		t.Fatalf("util = %v, want %v", got, want)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLog(Config{SegmentBytes: 10, TotalBytes: 1})
}
