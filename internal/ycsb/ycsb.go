// Package ycsb reimplements the Yahoo! Cloud Serving Benchmark workload
// model used by the paper: core workloads A (update-heavy, 50/50),
// B (read-heavy, 95/5) and C (read-only), uniform and zipfian request
// distributions, fixed-size records, closed-loop clients and optional
// client-side request throttling (the paper's Fig. 13 mitigation).
package ycsb

import (
	"fmt"
	"math"
	"math/rand"

	"ramcloud/internal/client"
	"ramcloud/internal/sim"
)

// OpKind is a workload operation type.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota + 1
	OpUpdate
	OpInsert
)

// Distribution selects keys.
type Distribution uint8

// Key distributions. The paper uses Uniform throughout.
const (
	Uniform Distribution = iota + 1
	Zipfian
)

// Workload is a YCSB workload specification.
type Workload struct {
	Name        string
	ReadProp    float64
	UpdateProp  float64
	RecordCount int
	RecordSize  int // value bytes per record (paper: 1 KB)
	Dist        Distribution
}

// WorkloadA is YCSB core workload A: update-heavy, 50% reads / 50% updates.
func WorkloadA(records, size int) Workload {
	return Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5,
		RecordCount: records, RecordSize: size, Dist: Uniform}
}

// WorkloadB is YCSB core workload B: read-heavy, 95% reads / 5% updates.
func WorkloadB(records, size int) Workload {
	return Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05,
		RecordCount: records, RecordSize: size, Dist: Uniform}
}

// WorkloadC is YCSB core workload C: read-only.
func WorkloadC(records, size int) Workload {
	return Workload{Name: "C", ReadProp: 1.0, UpdateProp: 0.0,
		RecordCount: records, RecordSize: size, Dist: Uniform}
}

// ByName returns a core workload by letter.
func ByName(name string, records, size int) (Workload, error) {
	switch name {
	case "a", "A":
		return WorkloadA(records, size), nil
	case "b", "B":
		return WorkloadB(records, size), nil
	case "c", "C":
		return WorkloadC(records, size), nil
	default:
		return Workload{}, fmt.Errorf("ycsb: unknown workload %q", name)
	}
}

// Key renders the YCSB-style key for a record index.
func Key(i int) []byte {
	return []byte(fmt.Sprintf("user%010d", i))
}

// chooser picks record indices.
type chooser interface {
	next(rng *rand.Rand) int
}

type uniformChooser struct{ n int }

func (u uniformChooser) next(rng *rand.Rand) int { return rng.Intn(u.n) }

// zipfChooser implements the scrambled zipfian generator from the YCSB
// paper (Gray et al. method), spreading popular items across the space.
type zipfChooser struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

func newZipfChooser(n int, theta float64) *zipfChooser {
	z := &zipfChooser{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfChooser) next(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	rank := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	// FNV-style scramble so popularity is spread over the key space.
	h := uint64(rank) * 0x9E3779B97F4A7C15
	return int(h % uint64(z.n))
}

func (w Workload) chooser() chooser {
	switch w.Dist {
	case Zipfian:
		return newZipfChooser(w.RecordCount, 0.99)
	default:
		return uniformChooser{n: w.RecordCount}
	}
}

// Chooser picks record indices from the workload's key distribution. It
// is the exported face of the internal chooser so drivers outside this
// package — the real-transport YCSB mode — draw keys from exactly the
// distribution the simulated runs use.
type Chooser interface {
	Next(rng *rand.Rand) int
}

type chooserAdapter struct{ c chooser }

func (a chooserAdapter) Next(rng *rand.Rand) int { return a.c.next(rng) }

// NewChooser returns the workload's key chooser.
func (w Workload) NewChooser() Chooser { return chooserAdapter{w.chooser()} }

// NextOp draws the next operation kind from the workload mix.
func (w Workload) NextOp(rng *rand.Rand) OpKind {
	r := rng.Float64()
	if r < w.ReadProp {
		return OpRead
	}
	return OpUpdate
}

// Throttle paces a closed-loop client to a target request rate (the
// paper's client-side throttling mitigation, Fig. 13). A variable-rate
// throttle (NewVarThrottle) re-reads its target at every send slot, so a
// load phase boundary re-targets the client mid-run.
type Throttle struct {
	interval sim.Duration
	next     sim.Time
	rate     RateFunc // nil for a fixed-rate throttle
}

// RateFunc reports the instantaneous target rate (ops/s) at a virtual
// time. Load phases modulate group rates through it; a return <= 0 means
// "offer no load right now" and the client dozes until the rate returns.
type RateFunc func(now sim.Time) float64

// pausePoll is how often a client with a non-positive target rate
// re-checks whether load should resume.
const pausePoll = 100 * sim.Millisecond

// NewThrottle returns a pacer for the given ops/second; nil if rate <= 0.
func NewThrottle(rate float64) *Throttle {
	if rate <= 0 {
		return nil
	}
	return &Throttle{interval: sim.Duration(float64(sim.Second) / rate)}
}

// NewVarThrottle returns a pacer that re-derives its interval from fn at
// every send slot; nil if fn is nil.
func NewVarThrottle(fn RateFunc) *Throttle {
	if fn == nil {
		return nil
	}
	return &Throttle{rate: fn}
}

// Wait blocks until the next send slot.
func (t *Throttle) Wait(p *sim.Proc) {
	if t == nil {
		return
	}
	if t.rate != nil {
		r := t.rate(p.Now())
		for r <= 0 {
			p.Sleep(pausePoll)
			r = t.rate(p.Now())
		}
		t.interval = sim.Duration(float64(sim.Second) / r)
	}
	now := p.Now()
	if t.next < now {
		t.next = now
	}
	if d := t.next.Sub(now); d > 0 {
		p.Sleep(d)
	}
	t.next = t.next.Add(t.interval)
}

// RunOptions configures one client run.
type RunOptions struct {
	Table    uint64
	Requests int
	Rate     float64 // client-side throttle in ops/s; 0 = unthrottled
	Seed     int64

	// BatchSize > 1 groups operations into MultiRead/MultiWrite RPC
	// batches (YCSB's multiget mode): each iteration draws BatchSize ops,
	// reads go out as one MultiRead and updates as one MultiWrite, each
	// split by tablet owner into at most one RPC per master.
	BatchSize int

	// Window > 1 pipelines the closed loop: up to Window operations stay
	// outstanding through the async API before the oldest is awaited.
	// Ignored when BatchSize > 1.
	Window int

	// OpenLoop switches the client from the paper's closed loop to
	// open-loop Poisson arrivals: operations are issued asynchronously at
	// exponentially distributed inter-arrival gaps targeting Rate (or
	// RateFunc) ops/s, independent of completions. Latency then includes
	// queueing delay, the metric a closed loop hides. Takes precedence
	// over BatchSize and Window. Requires Rate or RateFunc.
	OpenLoop bool

	// RateFunc, when set, overrides Rate with a time-varying target; it is
	// re-read at every send slot so load phases re-target the client
	// mid-run. Applies to throttled closed loops, batched and windowed
	// clients, and open-loop arrivals alike.
	RateFunc RateFunc

	// Stop, when > 0, stops issuing new operations at this virtual time
	// even if Requests have not been exhausted; in-flight operations are
	// still awaited. With Requests <= 0 the run is bounded by Stop alone.
	Stop sim.Time

	// Warmup fetches the tablet map before the first operation. Async
	// issue paths (OpenLoop, Window) start an op's RPC at issue only when
	// the map already routes its key; without a warmup the ops issued
	// before the first forced reap all park RPC-less and surface as a
	// spurious latency band, which would corrupt a latency-vs-load sweep.
	Warmup bool
}

// RunResult summarizes one client's run.
type RunResult struct {
	Reads    int
	Updates  int
	Errors   int
	Duration sim.Duration
}

// RunClient executes the workload on one client. The default is the
// paper's closed loop: each iteration draws an op and a key, issues it,
// and waits for completion. BatchSize > 1 switches to multi-op batching,
// Window > 1 to async pipelining, and OpenLoop to Poisson arrivals.
// Latency and throughput land in the client's Stats.
func RunClient(p *sim.Proc, c *client.Client, w Workload, opts RunOptions) RunResult {
	rng := rand.New(rand.NewSource(opts.Seed))
	ch := w.chooser()
	th := NewThrottle(opts.Rate)
	if opts.RateFunc != nil {
		th = NewVarThrottle(opts.RateFunc)
	}
	var res RunResult
	if opts.Warmup {
		c.WarmRoutes(p)
	}
	start := p.Now()
	switch {
	case opts.OpenLoop:
		runOpenLoop(p, c, w, opts, rng, ch, &res)
	case opts.BatchSize > 1:
		runBatched(p, c, w, opts, rng, ch, th, &res)
	case opts.Window > 1:
		runPipelined(p, c, w, opts, rng, ch, th, &res)
	default:
		for i := 0; stepsLeft(i, p, opts); i++ {
			th.Wait(p)
			key := Key(ch.next(rng))
			switch w.NextOp(rng) {
			case OpRead:
				if _, _, err := c.Read(p, opts.Table, key); err != nil {
					res.Errors++
				}
				res.Reads++
			default:
				if err := c.Write(p, opts.Table, key, uint32(w.RecordSize), nil); err != nil {
					res.Errors++
				}
				res.Updates++
			}
		}
	}
	res.Duration = p.Now().Sub(start)
	return res
}

// stepsLeft decides whether iteration i should issue: the request budget
// must not be exhausted and the stop time (when set) must not have
// passed. Requests <= 0 means "bounded by Stop alone" and issues nothing
// unless a stop time is set.
func stepsLeft(i int, p *sim.Proc, opts RunOptions) bool {
	if opts.Requests > 0 {
		if i >= opts.Requests {
			return false
		}
	} else if opts.Stop == 0 {
		return false
	}
	return opts.Stop == 0 || p.Now() < opts.Stop
}

// maxOutstanding caps an open-loop client's in-flight operations. A true
// open loop queues without bound when the cluster saturates; past the cap
// the client blocks on its oldest operation instead, which keeps the
// simulation's memory bounded while still exposing queueing delay in the
// measured latency.
const maxOutstanding = 512

// runOpenLoop issues operations at Poisson arrivals: inter-arrival gaps
// are exponentially distributed around the instantaneous target rate, and
// each operation goes out through the async API without waiting for the
// previous one. Completions are reaped opportunistically so latency
// captures queueing delay under overload — the regime where the paper's
// closed loop silently throttles itself.
func runOpenLoop(p *sim.Proc, c *client.Client, w Workload, opts RunOptions, rng *rand.Rand, ch chooser, res *RunResult) {
	if opts.Rate <= 0 && opts.RateFunc == nil {
		panic("ycsb: open loop requires Rate or RateFunc")
	}
	if opts.Requests <= 0 && opts.Stop == 0 {
		panic("ycsb: open loop requires Requests or Stop")
	}
	rate := func(now sim.Time) float64 {
		if opts.RateFunc != nil {
			return opts.RateFunc(now)
		}
		return opts.Rate
	}
	var pending []*client.Op
	reap := func(op *client.Op) {
		if _, _, err := op.Wait(p); err != nil {
			res.Errors++
		}
	}
	for issued := 0; stepsLeft(issued, p, opts); {
		r := rate(p.Now())
		if r <= 0 {
			p.Sleep(pausePoll) // load trough: doze until the rate returns
			continue
		}
		p.Sleep(sim.Duration(rng.ExpFloat64() / r * float64(sim.Second)))
		if opts.Stop > 0 && p.Now() >= opts.Stop {
			break
		}
		for len(pending) > 0 && pending[0].Done() {
			reap(pending[0])
			pending = pending[1:]
		}
		if len(pending) >= maxOutstanding {
			reap(pending[0])
			pending = pending[1:]
		}
		key := Key(ch.next(rng))
		if w.NextOp(rng) == OpRead {
			pending = append(pending, c.ReadAsync(p, opts.Table, key))
			res.Reads++
		} else {
			pending = append(pending, c.WriteAsync(p, opts.Table, key, uint32(w.RecordSize), nil))
			res.Updates++
		}
		issued++
	}
	for _, op := range pending {
		reap(op)
	}
}

// runBatched drives the workload in multi-op batches: every iteration
// draws up to BatchSize ops, sends the reads as one MultiRead and the
// updates as one MultiWrite. One simulated RPC now carries many ops, so
// both the cluster and the discrete-event engine do proportionally less
// per-op work — the scale lever the paper's closed loop lacks.
func runBatched(p *sim.Proc, c *client.Client, w Workload, opts RunOptions, rng *rand.Rand, ch chooser, th *Throttle, res *RunResult) {
	readKeys := make([][]byte, 0, opts.BatchSize)
	writeOps := make([]client.MultiWriteOp, 0, opts.BatchSize)
	for issued := 0; stepsLeft(issued, p, opts); {
		n := opts.BatchSize
		if left := opts.Requests - issued; opts.Requests > 0 && n > left {
			n = left
		}
		readKeys = readKeys[:0]
		writeOps = writeOps[:0]
		for j := 0; j < n; j++ {
			th.Wait(p)
			key := Key(ch.next(rng))
			if w.NextOp(rng) == OpRead {
				readKeys = append(readKeys, key)
				res.Reads++
			} else {
				writeOps = append(writeOps, client.MultiWriteOp{Key: key, ValueLen: uint32(w.RecordSize)})
				res.Updates++
			}
		}
		if len(readKeys) > 0 {
			for _, r := range c.MultiRead(p, opts.Table, readKeys) {
				if r.Err != nil {
					res.Errors++
				}
			}
		}
		if len(writeOps) > 0 {
			for _, r := range c.MultiWrite(p, opts.Table, writeOps) {
				if r.Err != nil {
					res.Errors++
				}
			}
		}
		issued += n
	}
}

// runPipelined keeps up to Window operations outstanding through the
// async API, awaiting the oldest when the window fills (a bounded
// closed loop, like YCSB with client-side pipelining).
func runPipelined(p *sim.Proc, c *client.Client, w Workload, opts RunOptions, rng *rand.Rand, ch chooser, th *Throttle, res *RunResult) {
	window := make([]*client.Op, 0, opts.Window)
	reap := func(op *client.Op) {
		if _, _, err := op.Wait(p); err != nil {
			res.Errors++
		}
	}
	for i := 0; stepsLeft(i, p, opts); i++ {
		th.Wait(p)
		if len(window) == opts.Window {
			reap(window[0])
			copy(window, window[1:])
			window = window[:len(window)-1]
		}
		key := Key(ch.next(rng))
		if w.NextOp(rng) == OpRead {
			window = append(window, c.ReadAsync(p, opts.Table, key))
			res.Reads++
		} else {
			window = append(window, c.WriteAsync(p, opts.Table, key, uint32(w.RecordSize), nil))
			res.Updates++
		}
	}
	for _, op := range window {
		reap(op)
	}
}

// Load fills the table through the client API (the YCSB load phase). Most
// experiments use the cluster's zero-time bulk loader instead.
func Load(p *sim.Proc, c *client.Client, w Workload, table uint64) error {
	for i := 0; i < w.RecordCount; i++ {
		if err := c.Write(p, table, Key(i), uint32(w.RecordSize), nil); err != nil {
			return fmt.Errorf("ycsb: load record %d: %w", i, err)
		}
	}
	return nil
}
