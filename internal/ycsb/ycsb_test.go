package ycsb

import (
	"math"
	"math/rand"
	"testing"

	"ramcloud/internal/sim"
)

func TestCoreWorkloadMixes(t *testing.T) {
	cases := []struct {
		w          Workload
		wantName   string
		wantUpdate float64
	}{
		{WorkloadA(10, 1024), "A", 0.5},
		{WorkloadB(10, 1024), "B", 0.05},
		{WorkloadC(10, 1024), "C", 0.0},
	}
	for _, c := range cases {
		if c.w.Name != c.wantName {
			t.Errorf("name = %s", c.w.Name)
		}
		if math.Abs(c.w.UpdateProp-c.wantUpdate) > 1e-9 {
			t.Errorf("%s update prop = %v", c.w.Name, c.w.UpdateProp)
		}
		if math.Abs(c.w.ReadProp+c.w.UpdateProp-1.0) > 1e-9 {
			t.Errorf("%s props do not sum to 1", c.w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"a", "A", "b", "B", "c", "C"} {
		if _, err := ByName(name, 10, 10); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("z", 10, 10); err == nil {
		t.Error("ByName(z) should fail")
	}
}

func TestOpMixFrequencies(t *testing.T) {
	w := WorkloadA(100, 1024)
	rng := rand.New(rand.NewSource(1))
	updates := 0
	n := 100_000
	for i := 0; i < n; i++ {
		if w.NextOp(rng) == OpUpdate {
			updates++
		}
	}
	frac := float64(updates) / float64(n)
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("update fraction = %v, want ~0.5", frac)
	}
}

func TestKeyFormat(t *testing.T) {
	if string(Key(42)) != "user0000000042" {
		t.Fatalf("key = %q", Key(42))
	}
	if string(Key(0)) != "user0000000000" {
		t.Fatalf("key = %q", Key(0))
	}
}

func TestUniformChooserBounds(t *testing.T) {
	w := WorkloadC(1000, 1024)
	ch := w.chooser()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10_000; i++ {
		v := ch.next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("uniform out of range: %d", v)
		}
	}
}

func TestZipfianChooserBoundsAndSkew(t *testing.T) {
	w := Workload{RecordCount: 10_000, Dist: Zipfian}
	ch := w.chooser()
	rng := rand.New(rand.NewSource(3))
	counts := map[int]int{}
	n := 200_000
	for i := 0; i < n; i++ {
		v := ch.next(rng)
		if v < 0 || v >= 10_000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Skew: the most popular key should be far above uniform expectation.
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	uniform := n / 10_000
	if maxCount < uniform*20 {
		t.Fatalf("zipfian not skewed: hottest=%d, uniform=%d", maxCount, uniform)
	}
}

func TestThrottlePacing(t *testing.T) {
	e := sim.New(1)
	var done sim.Time
	e.Go("paced", func(p *sim.Proc) {
		th := NewThrottle(100) // 100 ops/s -> 10ms spacing
		for i := 0; i < 11; i++ {
			th.Wait(p)
		}
		done = p.Now()
	})
	e.Run()
	if done != sim.Time(100*sim.Millisecond) {
		t.Fatalf("11 paced ops finished at %v, want 100ms", done)
	}
}

func TestThrottleNilIsUnlimited(t *testing.T) {
	e := sim.New(1)
	var done sim.Time
	e.Go("free", func(p *sim.Proc) {
		th := NewThrottle(0)
		for i := 0; i < 1000; i++ {
			th.Wait(p)
		}
		done = p.Now()
	})
	e.Run()
	if done != 0 {
		t.Fatalf("unthrottled waits consumed time: %v", done)
	}
}

func TestZetaPositive(t *testing.T) {
	if zeta(100, 0.99) <= 0 {
		t.Fatal("zeta must be positive")
	}
}
