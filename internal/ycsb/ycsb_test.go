package ycsb

import (
	"math"
	"math/rand"
	"testing"

	"ramcloud/internal/client"
	"ramcloud/internal/rpc"
	"ramcloud/internal/sim"
	"ramcloud/internal/simnet"
	"ramcloud/internal/wire"
)

func TestCoreWorkloadMixes(t *testing.T) {
	cases := []struct {
		w          Workload
		wantName   string
		wantUpdate float64
	}{
		{WorkloadA(10, 1024), "A", 0.5},
		{WorkloadB(10, 1024), "B", 0.05},
		{WorkloadC(10, 1024), "C", 0.0},
	}
	for _, c := range cases {
		if c.w.Name != c.wantName {
			t.Errorf("name = %s", c.w.Name)
		}
		if math.Abs(c.w.UpdateProp-c.wantUpdate) > 1e-9 {
			t.Errorf("%s update prop = %v", c.w.Name, c.w.UpdateProp)
		}
		if math.Abs(c.w.ReadProp+c.w.UpdateProp-1.0) > 1e-9 {
			t.Errorf("%s props do not sum to 1", c.w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"a", "A", "b", "B", "c", "C"} {
		if _, err := ByName(name, 10, 10); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("z", 10, 10); err == nil {
		t.Error("ByName(z) should fail")
	}
}

func TestOpMixFrequencies(t *testing.T) {
	w := WorkloadA(100, 1024)
	rng := rand.New(rand.NewSource(1))
	updates := 0
	n := 100_000
	for i := 0; i < n; i++ {
		if w.NextOp(rng) == OpUpdate {
			updates++
		}
	}
	frac := float64(updates) / float64(n)
	if frac < 0.48 || frac > 0.52 {
		t.Fatalf("update fraction = %v, want ~0.5", frac)
	}
}

func TestKeyFormat(t *testing.T) {
	if string(Key(42)) != "user0000000042" {
		t.Fatalf("key = %q", Key(42))
	}
	if string(Key(0)) != "user0000000000" {
		t.Fatalf("key = %q", Key(0))
	}
}

func TestUniformChooserBounds(t *testing.T) {
	w := WorkloadC(1000, 1024)
	ch := w.chooser()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10_000; i++ {
		v := ch.next(rng)
		if v < 0 || v >= 1000 {
			t.Fatalf("uniform out of range: %d", v)
		}
	}
}

func TestZipfianChooserBoundsAndSkew(t *testing.T) {
	w := Workload{RecordCount: 10_000, Dist: Zipfian}
	ch := w.chooser()
	rng := rand.New(rand.NewSource(3))
	counts := map[int]int{}
	n := 200_000
	for i := 0; i < n; i++ {
		v := ch.next(rng)
		if v < 0 || v >= 10_000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Skew: the most popular key should be far above uniform expectation.
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	uniform := n / 10_000
	if maxCount < uniform*20 {
		t.Fatalf("zipfian not skewed: hottest=%d, uniform=%d", maxCount, uniform)
	}
}

func TestThrottlePacing(t *testing.T) {
	e := sim.New(1)
	var done sim.Time
	e.Go("paced", func(p *sim.Proc) {
		th := NewThrottle(100) // 100 ops/s -> 10ms spacing
		for i := 0; i < 11; i++ {
			th.Wait(p)
		}
		done = p.Now()
	})
	e.Run()
	if done != sim.Time(100*sim.Millisecond) {
		t.Fatalf("11 paced ops finished at %v, want 100ms", done)
	}
}

func TestThrottleNilIsUnlimited(t *testing.T) {
	e := sim.New(1)
	var done sim.Time
	e.Go("free", func(p *sim.Proc) {
		th := NewThrottle(0)
		for i := 0; i < 1000; i++ {
			th.Wait(p)
		}
		done = p.Now()
	})
	e.Run()
	if done != 0 {
		t.Fatalf("unthrottled waits consumed time: %v", done)
	}
}

// TestVarThrottleRetargets checks a variable-rate throttle re-derives its
// interval at every slot, so a rate change takes effect mid-run.
func TestVarThrottleRetargets(t *testing.T) {
	e := sim.New(1)
	var done sim.Time
	e.Go("paced", func(p *sim.Proc) {
		// 100 op/s for the first second, 1000 op/s afterwards.
		th := NewVarThrottle(func(now sim.Time) float64 {
			if now < sim.Time(sim.Second) {
				return 100
			}
			return 1000
		})
		for i := 0; i < 200; i++ {
			th.Wait(p)
		}
		done = p.Now()
	})
	e.Run()
	// 100 slots in the first second (10ms spacing), then 100 more at 1ms
	// spacing: ~1.1s total. A fixed 100 op/s throttle would take ~2s.
	if done < sim.Time(1050*sim.Millisecond) || done > sim.Time(1250*sim.Millisecond) {
		t.Fatalf("retargeted run finished at %v, want ~1.1s", done)
	}
	if NewVarThrottle(nil) != nil {
		t.Fatal("nil RateFunc must yield a nil throttle")
	}
}

// TestVarThrottleZeroRateDozes checks a non-positive target pauses the
// client until the rate comes back instead of dividing by zero.
func TestVarThrottleZeroRateDozes(t *testing.T) {
	e := sim.New(1)
	var done sim.Time
	e.Go("dozer", func(p *sim.Proc) {
		th := NewVarThrottle(func(now sim.Time) float64 {
			if now < sim.Time(sim.Second) {
				return 0 // trough: no load offered
			}
			return 1000
		})
		th.Wait(p)
		done = p.Now()
	})
	e.Run()
	if done < sim.Time(sim.Second) {
		t.Fatalf("first slot at %v, want >= 1s (dozed through the trough)", done)
	}
}

// fakeStore is a single scripted master + coordinator pair able to serve
// every data-plane RPC shape the driver can produce.
type fakeStore struct {
	eng    *sim.Engine
	net    *simnet.Network
	coord  *rpc.Endpoint
	master *rpc.Endpoint

	dataRPCs int
}

func newFakeStore(t *testing.T) *fakeStore {
	t.Helper()
	eng := sim.New(1)
	net := simnet.New(eng, simnet.DefaultConfig())
	f := &fakeStore{
		eng:    eng,
		net:    net,
		coord:  rpc.NewEndpoint(eng, net, simnet.NodeID(-1)),
		master: rpc.NewEndpoint(eng, net, simnet.NodeID(1)),
	}
	tablets := []wire.Tablet{{Table: 1, StartHash: 0, EndHash: ^uint64(0), Master: 1}}
	eng.Go("store-coord", func(p *sim.Proc) {
		for {
			req := f.coord.Inbound.Pop(p)
			if _, ok := req.Msg.(*wire.GetTabletMapReq); ok {
				f.coord.Reply(req, &wire.GetTabletMapResp{Status: wire.StatusOK, Tablets: tablets})
			}
		}
	})
	eng.Go("store-master", func(p *sim.Proc) {
		for {
			req := f.master.Inbound.Pop(p)
			f.dataRPCs++
			p.Sleep(2 * sim.Microsecond) // fixed service time
			switch m := req.Msg.(type) {
			case *wire.ReadReq:
				f.master.Reply(req, &wire.ReadResp{Status: wire.StatusOK, Version: 1, ValueLen: 1024})
			case *wire.WriteReq:
				f.master.Reply(req, &wire.WriteResp{Status: wire.StatusOK, Version: 1})
			case *wire.MultiReadReq:
				items := make([]wire.MultiReadResult, len(m.Items))
				for i := range items {
					items[i] = wire.MultiReadResult{Status: wire.StatusOK, Version: 1, ValueLen: 1024}
				}
				f.master.Reply(req, &wire.MultiReadResp{Status: wire.StatusOK, Items: items})
			case *wire.MultiWriteReq:
				items := make([]wire.MultiWriteResult, len(m.Items))
				for i := range items {
					items[i] = wire.MultiWriteResult{Status: wire.StatusOK, Version: 1}
				}
				f.master.Reply(req, &wire.MultiWriteResp{Status: wire.StatusOK, Items: items})
			}
		}
	})
	return f
}

func (f *fakeStore) newClient() *client.Client {
	cfg := client.DefaultConfig()
	cfg.RPCTimeout = 50 * sim.Millisecond
	return client.New(f.eng, f.net, simnet.NodeID(100), f.coord.Node(), cfg)
}

// TestRunClientBatched checks the batched driver completes every request
// through multi-op RPCs and collapses the RPC count.
func TestRunClientBatched(t *testing.T) {
	f := newFakeStore(t)
	c := f.newClient()
	var res RunResult
	f.eng.Go("driver", func(p *sim.Proc) {
		res = RunClient(p, c, WorkloadA(1000, 1024), RunOptions{
			Table: 1, Requests: 200, Seed: 3, BatchSize: 16,
		})
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	if res.Reads+res.Updates != 200 || res.Errors != 0 {
		t.Fatalf("res = %+v", res)
	}
	if got := c.Stats().Ops.Value(); got != 200 {
		t.Fatalf("ops = %d", got)
	}
	// 200 ops in batches of 16 split read/write: at most 2 RPCs per batch
	// iteration (13 iterations), far below 200.
	if f.dataRPCs >= 50 {
		t.Fatalf("batched run issued %d data RPCs for 200 ops", f.dataRPCs)
	}
	if c.Stats().BatchedOps.Value() != 200 {
		t.Fatalf("BatchedOps = %d", c.Stats().BatchedOps.Value())
	}
}

// TestRunClientPipelined checks the windowed async driver completes every
// request and beats the closed loop in simulated time.
func TestRunClientPipelined(t *testing.T) {
	run := func(window int) (RunResult, sim.Duration) {
		f := newFakeStore(t)
		c := f.newClient()
		var res RunResult
		f.eng.Go("driver", func(p *sim.Proc) {
			res = RunClient(p, c, WorkloadC(1000, 1024), RunOptions{
				Table: 1, Requests: 300, Seed: 5, Window: window,
			})
			f.eng.Stop()
		})
		f.eng.Run()
		f.eng.Shutdown()
		return res, res.Duration
	}
	closedRes, closedD := run(0)
	pipeRes, pipeD := run(8)
	if closedRes.Errors != 0 || pipeRes.Errors != 0 {
		t.Fatalf("errors: closed=%d pipe=%d", closedRes.Errors, pipeRes.Errors)
	}
	if pipeRes.Reads != 300 {
		t.Fatalf("pipelined reads = %d", pipeRes.Reads)
	}
	if pipeD >= closedD {
		t.Fatalf("pipelined run (%v) not faster than closed loop (%v)", pipeD, closedD)
	}
}

// TestRunClientOpenLoop checks Poisson arrivals: the run is bounded by
// Stop when Requests is 0, inter-arrival gaps are seed-deterministic, and
// ops complete through the async API.
func TestRunClientOpenLoop(t *testing.T) {
	run := func(seed int64) (RunResult, int64) {
		f := newFakeStore(t)
		c := f.newClient()
		var res RunResult
		f.eng.Go("driver", func(p *sim.Proc) {
			res = RunClient(p, c, WorkloadC(1000, 1024), RunOptions{
				Table: 1, Seed: seed, OpenLoop: true,
				Rate: 1000, Stop: sim.Time(2 * sim.Second),
			})
			f.eng.Stop()
		})
		f.eng.Run()
		f.eng.Shutdown()
		return res, c.Stats().Ops.Value()
	}
	resA, opsA := run(3)
	resB, opsB := run(3)
	if resA.Reads != resB.Reads || resA.Duration != resB.Duration {
		t.Fatalf("same seed diverged: %d/%d reads, %v/%v", resA.Reads, resB.Reads, resA.Duration, resB.Duration)
	}
	if opsA != int64(resA.Reads) {
		t.Fatalf("completed ops %d != issued %d", opsA, resA.Reads)
	}
	// ~1000 op/s over 2s of issuing: expect about 2000 arrivals.
	if resA.Reads < 1700 || resA.Reads > 2300 {
		t.Fatalf("open-loop issued %d ops, want ~2000", resA.Reads)
	}
	resC, _ := run(4)
	if resC.Reads == resA.Reads && resC.Duration == resA.Duration {
		t.Fatal("different seeds produced identical arrival sequences")
	}
	_ = opsB
}

// TestRunClientOpenLoopRequestsBound checks the request budget also caps
// an open-loop run.
func TestRunClientOpenLoopRequestsBound(t *testing.T) {
	f := newFakeStore(t)
	c := f.newClient()
	var res RunResult
	f.eng.Go("driver", func(p *sim.Proc) {
		res = RunClient(p, c, WorkloadC(1000, 1024), RunOptions{
			Table: 1, Requests: 150, Seed: 3, OpenLoop: true, Rate: 10_000,
		})
		f.eng.Stop()
	})
	f.eng.Run()
	f.eng.Shutdown()
	if res.Reads != 150 || c.Stats().Ops.Value() != 150 {
		t.Fatalf("reads = %d, ops = %d, want 150", res.Reads, c.Stats().Ops.Value())
	}
}

// TestOpenLoopRejectsUnboundedRun checks the guard rails: no rate, or no
// request/stop bound, is a programming error.
func TestOpenLoopRejectsUnboundedRun(t *testing.T) {
	mustPanic := func(name string, opts RunOptions) {
		t.Helper()
		f := newFakeStore(t)
		c := f.newClient()
		f.eng.Go("driver", func(p *sim.Proc) {
			defer f.eng.Stop()
			defer func() {
				if recover() == nil {
					t.Errorf("%s: RunClient did not panic", name)
				}
			}()
			RunClient(p, c, WorkloadC(1000, 1024), opts)
		})
		f.eng.Run()
		f.eng.Shutdown()
	}
	mustPanic("no rate", RunOptions{Table: 1, Requests: 10, OpenLoop: true})
	mustPanic("no bound", RunOptions{Table: 1, OpenLoop: true, Rate: 100})
}

func TestZetaPositive(t *testing.T) {
	if zeta(100, 0.99) <= 0 {
		t.Fatal("zeta must be positive")
	}
}
