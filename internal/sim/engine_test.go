package sim

import (
	"fmt"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(3*Second, func() { got = append(got, 3) })
	e.Schedule(1*Second, func() { got = append(got, 1) })
	e.Schedule(2*Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(3*Second) {
		t.Fatalf("now = %v, want 3s", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	e := New(1)
	var ranAt Time
	e.Schedule(Second, func() {
		e.ScheduleAt(0, func() { ranAt = e.Now() })
	})
	e.Run()
	if ranAt != Time(Second) {
		t.Fatalf("past event ran at %v, want clamped to 1s", ranAt)
	}
}

func TestProcSleep(t *testing.T) {
	e := New(1)
	var wake Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		wake = p.Now()
	})
	e.Run()
	if wake != Time(5*Millisecond) {
		t.Fatalf("woke at %v, want 5ms", wake)
	}
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0", e.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := New(1)
	var trace []string
	for _, n := range []struct {
		name string
		d    Duration
	}{{"a", 10 * Microsecond}, {"b", 5 * Microsecond}, {"c", 7 * Microsecond}} {
		n := n
		e.Go(n.name, func(p *Proc) {
			p.Sleep(n.d)
			trace = append(trace, n.name)
		})
	}
	e.Run()
	want := []string{"b", "c", "a"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := New(1)
	ran := 0
	e.Schedule(Second, func() { ran++ })
	e.Schedule(3*Second, func() { ran++ })
	e.RunUntil(Time(2 * Second))
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if e.Now() != Time(2*Second) {
		t.Fatalf("now = %v, want 2s", e.Now())
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("ran = %d after full run, want 2", ran)
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	ran := 0
	e.Schedule(Second, func() { ran++; e.Stop() })
	e.Schedule(2*Second, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (stopped)", ran)
	}
}

func TestShutdownReapsParkedProcs(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e)
	for i := 0; i < 5; i++ {
		e.Go(fmt.Sprintf("blocked-%d", i), func(p *Proc) {
			q.Pop(p) // blocks forever
			t.Error("blocked proc should never resume normally")
		})
	}
	e.Run()
	if e.LiveProcs() != 5 {
		t.Fatalf("LiveProcs = %d, want 5 before shutdown", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d, want 0 after shutdown", e.LiveProcs())
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := New(1)
	e.Go("bomb", func(p *Proc) {
		p.Sleep(Second)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate from proc")
		}
	}()
	e.Run()
}

func TestNestedSpawn(t *testing.T) {
	e := New(1)
	var order []string
	e.Go("parent", func(p *Proc) {
		order = append(order, "parent-start")
		e.Go("child", func(c *Proc) {
			order = append(order, "child")
		})
		p.Sleep(Microsecond)
		order = append(order, "parent-end")
	})
	e.Run()
	want := []string{"parent-start", "child", "parent-end"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestYield(t *testing.T) {
	e := New(1)
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b")
	})
	e.Run()
	want := []string{"a1", "b", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	runOnce := func(seed int64) []string {
		e := New(seed)
		var trace []string
		q := NewQueue[int](e)
		for i := 0; i < 4; i++ {
			i := i
			e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
				for {
					v := q.Pop(p)
					if v < 0 {
						return
					}
					p.Sleep(Duration(e.Rand().Intn(100)) * Microsecond)
					trace = append(trace, fmt.Sprintf("w%d:%d@%d", i, v, p.Now()))
				}
			})
		}
		e.Go("producer", func(p *Proc) {
			for j := 0; j < 50; j++ {
				q.Push(j)
				p.Sleep(Duration(e.Rand().Intn(30)) * Microsecond)
			}
			for j := 0; j < 4; j++ {
				q.Push(-1)
			}
		})
		e.Run()
		e.Shutdown()
		return trace
	}
	a := runOnce(42)
	b := runOnce(42)
	if len(a) != len(b) || len(a) != 50 {
		t.Fatalf("trace lengths differ or wrong: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := runOnce(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical trace; rng not wired in")
	}
}

func TestTicker(t *testing.T) {
	e := New(1)
	var ticks []Time
	tk := NewTicker(e, Second, func(now Time) {
		ticks = append(ticks, now)
	})
	e.Schedule(Duration(3500*Millisecond), func() { tk.Stop() })
	e.Run()
	if len(ticks) != 3 {
		t.Fatalf("ticks = %d, want 3", len(ticks))
	}
	for i, tt := range ticks {
		if tt != Time((i+1)*int(Second)) {
			t.Fatalf("tick %d at %v", i, tt)
		}
	}
}

func TestTimeStrings(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{Duration(2500), "2.50us"},
		{3 * Millisecond, "3.00ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
	if Time(1500*Millisecond).String() != "1.500000s" {
		t.Errorf("Time.String = %q", Time(1500*Millisecond).String())
	}
}

func TestScaleDuration(t *testing.T) {
	if Scale(10*Microsecond, 1.5) != 15*Microsecond {
		t.Fatal("Scale(10us, 1.5) != 15us")
	}
	if Scale(Second, 0) != 0 {
		t.Fatal("Scale by zero must be zero")
	}
}

func TestTimerHeapCancelMidHeap(t *testing.T) {
	// Many interleaved deadlines; cancel from the middle of the heap and
	// check the survivors fire in exact (time, seq) order.
	e := New(1)
	var tms []*timer
	for i := 0; i < 40; i++ {
		d := Duration((i*37)%100 + 1)
		tms = append(tms, e.scheduleProcTimer(e.now.Add(d), nil))
	}
	// Cancel every third timer, including the current minimum.
	for i := 0; i < len(tms); i += 3 {
		e.cancelTimer(tms[i])
		e.cancelTimer(tms[i]) // idempotent
	}
	var last Time
	var lastSeq uint64
	popped := 0
	for len(e.timers) > 0 {
		tm := e.timerPop()
		popped++
		if tm.t < last || (tm.t == last && tm.seq <= lastSeq) {
			t.Fatalf("timer order violated: (%v,%d) after (%v,%d)", tm.t, tm.seq, last, lastSeq)
		}
		last, lastSeq = tm.t, tm.seq
		// Heap invariant: every live timer knows its slot.
		for idx, tt := range e.timers {
			if tt.idx != idx {
				t.Fatalf("timer idx %d stored as %d", idx, tt.idx)
			}
		}
	}
	if want := 40 - 14; popped != want { // 14 of 40 cancelled
		t.Fatalf("popped %d timers, want %d", popped, want)
	}
}

func TestTimerInterleavesWithEvents(t *testing.T) {
	// A timer and plain events at the same timestamp must run in seq order.
	e := New(1)
	var order []string
	done := make(chan struct{})
	e.Go("waiter", func(p *Proc) {
		f := NewFuture[int](e)
		// Deadline at t=10; events also at t=10 on both sides of the
		// timer's sequence number.
		e.Schedule(10, func() { order = append(order, "before") })
		_, ok := f.GetTimeout(p, 10)
		if ok {
			t.Error("future was never set; GetTimeout must time out")
		}
		order = append(order, "timeout")
		close(done)
	})
	e.Run()
	<-done
	if len(order) != 2 || order[0] != "before" || order[1] != "timeout" {
		t.Fatalf("order = %v", order)
	}
	e.Shutdown()
}

func TestFutureSetCancelsTimeoutTimer(t *testing.T) {
	e := New(1)
	f := NewFuture[int](e)
	got := 0
	e.Go("waiter", func(p *Proc) {
		v, ok := f.GetTimeout(p, 1000)
		if !ok {
			t.Error("timed out despite early Set")
		}
		got = v
	})
	e.Schedule(5, func() { f.Set(7) })
	e.Run()
	if got != 7 {
		t.Fatalf("got %d", got)
	}
	if len(e.timers) != 0 {
		t.Fatalf("timer not cancelled: %d pending", len(e.timers))
	}
	// The engine must go quiet at the Set, not drag to the deadline.
	if e.Now() >= 1000 {
		t.Fatalf("engine ran to the stale deadline: now=%v", e.Now())
	}
	e.Shutdown()
}
