package sim

// This file provides blocking synchronization primitives for procs. All of
// them wake waiters through the event queue, preserving determinism.

// Queue is an unbounded FIFO queue that procs can block on. Pushing may be
// done from callbacks or procs; popping only from procs.
//
// Items are always delivered FIFO; the wakeLIFO option only changes which
// *waiter* is woken first (most-recently parked), modeling schedulers with
// hot-thread affinity such as RAMCloud's dispatch, which prefers the worker
// that finished most recently to keep its cache warm.
type Queue[T any] struct {
	eng      *Engine
	items    []T
	waiting  []*Proc
	wakeLIFO bool
}

// NewQueue returns an empty queue bound to e.
func NewQueue[T any](e *Engine) *Queue[T] {
	return &Queue[T]{eng: e}
}

// NewLIFOWakeQueue returns a queue that wakes the most-recently parked
// waiter first.
func NewLIFOWakeQueue[T any](e *Engine) *Queue[T] {
	return &Queue[T]{eng: e, wakeLIFO: true}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Waiters returns the number of procs blocked in Pop.
func (q *Queue[T]) Waiters() int { return len(q.waiting) }

// Push appends v and wakes one waiting proc, if any.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	if len(q.waiting) > 0 {
		var w *Proc
		if q.wakeLIFO {
			w = q.waiting[len(q.waiting)-1]
			q.waiting = q.waiting[:len(q.waiting)-1]
		} else {
			w = q.waiting[0]
			q.waiting = q.waiting[1:]
		}
		q.eng.scheduleProcAt(q.eng.now, w)
	}
}

// TryPop removes and returns the head of the queue without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Pop removes and returns the head of the queue, blocking the proc until an
// item is available.
func (q *Queue[T]) Pop(p *Proc) T {
	for {
		if v, ok := q.TryPop(); ok {
			return v
		}
		q.waiting = append(q.waiting, p)
		p.park()
	}
}

// Mutex is a FIFO mutual-exclusion lock with direct hand-off: Unlock passes
// ownership to the longest-waiting proc, so the lock cannot be stolen.
type Mutex struct {
	eng     *Engine
	locked  bool
	waiting []*Proc
}

// NewMutex returns an unlocked mutex bound to e.
func NewMutex(e *Engine) *Mutex { return &Mutex{eng: e} }

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.locked }

// Waiters returns the number of procs blocked in Lock.
func (m *Mutex) Waiters() int { return len(m.waiting) }

// Lock acquires the mutex, blocking the proc until it is available.
func (m *Mutex) Lock(p *Proc) {
	if !m.locked {
		m.locked = true
		return
	}
	m.waiting = append(m.waiting, p)
	p.park()
	// Ownership was handed to us by Unlock; m.locked is still true.
}

// Unlock releases the mutex, handing it directly to the next waiter if one
// exists. It may be called from callbacks as well as procs.
func (m *Mutex) Unlock() {
	if !m.locked {
		panic("sim: unlock of unlocked Mutex")
	}
	if len(m.waiting) > 0 {
		w := m.waiting[0]
		m.waiting = m.waiting[1:]
		m.eng.scheduleProcAt(m.eng.now, w)
		return
	}
	m.locked = false
}

// Semaphore is a counting semaphore with FIFO hand-off.
type Semaphore struct {
	eng     *Engine
	avail   int
	waiting []*Proc
}

// NewSemaphore returns a semaphore with n available permits.
func NewSemaphore(e *Engine, n int) *Semaphore {
	if n < 0 {
		panic("sim: negative semaphore capacity")
	}
	return &Semaphore{eng: e, avail: n}
}

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.avail }

// Waiters returns the number of procs blocked in Acquire.
func (s *Semaphore) Waiters() int { return len(s.waiting) }

// Acquire takes one permit, blocking until available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.avail > 0 {
		s.avail--
		return
	}
	s.waiting = append(s.waiting, p)
	p.park()
	// A released permit was handed directly to us.
}

// Release returns one permit, handing it to the next waiter if any.
func (s *Semaphore) Release() {
	if len(s.waiting) > 0 {
		w := s.waiting[0]
		s.waiting = s.waiting[1:]
		s.eng.scheduleProcAt(s.eng.now, w)
		return
	}
	s.avail++
}

// futureWaiter is one proc parked on a future, with its timeout timer when
// the wait has a deadline.
type futureWaiter struct {
	p  *Proc
	tm *timer
}

// Future is a write-once value that procs can wait on. It is the basis of
// RPC replies.
type Future[T any] struct {
	eng     *Engine
	set     bool
	setAt   Time
	val     T
	waiting []futureWaiter
}

// NewFuture returns an unset future bound to e.
func NewFuture[T any](e *Engine) *Future[T] { return &Future[T]{eng: e} }

// IsSet reports whether the future has a value.
func (f *Future[T]) IsSet() bool { return f.set }

// Set stores the value and wakes all waiters, cancelling their timeout
// timers. Setting twice panics: a future is single-assignment by design.
func (f *Future[T]) Set(v T) {
	if f.set {
		panic("sim: Future set twice")
	}
	f.set = true
	f.setAt = f.eng.now
	f.val = v
	for _, w := range f.waiting {
		if w.tm != nil {
			f.eng.cancelTimer(w.tm)
		}
		f.eng.scheduleProcAt(f.eng.now, w.p)
	}
	f.waiting = nil
}

// ResolvedAt returns the virtual time Set was called, or zero while the
// future is unset. A caller that polls Done/IsSet and collects the value
// later can attribute the completion to its true instant rather than the
// observation instant.
func (f *Future[T]) ResolvedAt() Time { return f.setAt }

// Get blocks until the future is set and returns its value.
func (f *Future[T]) Get(p *Proc) T {
	for !f.set {
		f.waiting = append(f.waiting, futureWaiter{p: p})
		p.park()
	}
	return f.val
}

// GetTimeout blocks until the future is set or d elapses. ok is false on
// timeout. The deadline is a cancellable timer: when the value arrives in
// time — the overwhelmingly common case — Set removes the timer, so no
// stale deadline event lingers in the engine's queues.
func (f *Future[T]) GetTimeout(p *Proc, d Duration) (v T, ok bool) {
	if f.set {
		return f.val, true
	}
	deadline := f.eng.now.Add(d)
	tm := f.eng.scheduleProcTimer(deadline, p)
	for !f.set {
		f.waiting = append(f.waiting, futureWaiter{p: p, tm: tm})
		p.park()
		if !f.set && f.eng.now >= deadline {
			// The timer fired. Remove ourselves from the wait list so a
			// later Set does not try to resume a proc that has moved on.
			f.dropWaiter(p)
			var zero T
			return zero, false
		}
	}
	// The value arrived first; Set cancelled the timer.
	return f.val, true
}

func (f *Future[T]) dropWaiter(p *Proc) {
	for i, w := range f.waiting {
		if w.p == p {
			f.waiting = append(f.waiting[:i], f.waiting[i+1:]...)
			return
		}
	}
}

// WaitGroup counts outstanding work, like sync.WaitGroup but in simulated
// time.
type WaitGroup struct {
	eng     *Engine
	count   int
	waiting []*Proc
}

// NewWaitGroup returns a WaitGroup bound to e.
func NewWaitGroup(e *Engine) *WaitGroup { return &WaitGroup{eng: e} }

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.count == 0 {
		for _, w := range wg.waiting {
			wg.eng.scheduleProcAt(wg.eng.now, w)
		}
		wg.waiting = nil
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Count returns the current counter value.
func (wg *WaitGroup) Count() int { return wg.count }

// Wait blocks until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	for wg.count > 0 {
		wg.waiting = append(wg.waiting, p)
		p.park()
	}
}
