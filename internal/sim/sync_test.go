package sim

import "testing"

func TestQueueFIFO(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e)
	var got []int
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	e.Go("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			q.Push(i * 10)
			p.Sleep(Millisecond)
		}
	})
	e.Run()
	want := []int{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestQueueMultipleWaitersFIFO(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e)
	var got []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Go(name, func(p *Proc) {
			v := q.Pop(p)
			got = append(got, name+":"+string(rune('0'+v)))
		})
	}
	e.Go("producer", func(p *Proc) {
		p.Sleep(Second)
		q.Push(1)
		q.Push(2)
		q.Push(3)
	})
	e.Run()
	want := []string{"w1:1", "w2:2", "w3:3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestQueueTryPop(t *testing.T) {
	e := New(1)
	q := NewQueue[string](e)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue returned ok")
	}
	q.Push("x")
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
	v, ok := q.TryPop()
	if !ok || v != "x" {
		t.Fatalf("TryPop = %q, %v", v, ok)
	}
}

func TestMutexExclusionAndFIFO(t *testing.T) {
	e := New(1)
	m := NewMutex(e)
	var order []string
	hold := func(name string, start, dur Duration) {
		e.Go(name, func(p *Proc) {
			p.Sleep(start)
			m.Lock(p)
			order = append(order, name+"-in")
			p.Sleep(dur)
			order = append(order, name+"-out")
			m.Unlock()
		})
	}
	hold("a", 0, 10*Millisecond)
	hold("b", Millisecond, Millisecond)
	hold("c", 2*Millisecond, Millisecond)
	e.Run()
	want := []string{"a-in", "a-out", "b-in", "b-out", "c-in", "c-out"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMutexUnlockUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMutex(New(1)).Unlock()
}

func TestMutexWaiters(t *testing.T) {
	e := New(1)
	m := NewMutex(e)
	var peak int
	e.Go("holder", func(p *Proc) {
		m.Lock(p)
		p.Sleep(Second)
		peak = m.Waiters()
		m.Unlock()
	})
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) {
			p.Sleep(Millisecond)
			m.Lock(p)
			m.Unlock()
		})
	}
	e.Run()
	if peak != 3 {
		t.Fatalf("peak waiters = %d, want 3", peak)
	}
}

func TestSemaphoreCapacity(t *testing.T) {
	e := New(1)
	s := NewSemaphore(e, 2)
	active, peak := 0, 0
	for i := 0; i < 6; i++ {
		e.Go("u", func(p *Proc) {
			s.Acquire(p)
			active++
			if active > peak {
				peak = active
			}
			p.Sleep(Millisecond)
			active--
			s.Release()
		})
	}
	e.Run()
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if s.Available() != 2 {
		t.Fatalf("available = %d, want 2", s.Available())
	}
}

func TestFutureSetBeforeGet(t *testing.T) {
	e := New(1)
	f := NewFuture[int](e)
	f.Set(7)
	var got int
	e.Go("g", func(p *Proc) { got = f.Get(p) })
	e.Run()
	if got != 7 {
		t.Fatalf("got %d", got)
	}
}

func TestFutureGetBlocksUntilSet(t *testing.T) {
	e := New(1)
	f := NewFuture[string](e)
	var got string
	var at Time
	e.Go("g", func(p *Proc) {
		got = f.Get(p)
		at = p.Now()
	})
	e.Schedule(3*Second, func() { f.Set("done") })
	e.Run()
	if got != "done" || at != Time(3*Second) {
		t.Fatalf("got %q at %v", got, at)
	}
}

func TestFutureMultipleWaiters(t *testing.T) {
	e := New(1)
	f := NewFuture[int](e)
	sum := 0
	for i := 0; i < 4; i++ {
		e.Go("w", func(p *Proc) { sum += f.Get(p) })
	}
	e.Schedule(Second, func() { f.Set(5) })
	e.Run()
	if sum != 20 {
		t.Fatalf("sum = %d, want 20", sum)
	}
}

func TestFutureSetTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f := NewFuture[int](New(1))
	f.Set(1)
	f.Set(2)
}

func TestFutureGetTimeoutExpires(t *testing.T) {
	e := New(1)
	f := NewFuture[int](e)
	var ok bool
	var at Time
	e.Go("g", func(p *Proc) {
		_, ok = f.GetTimeout(p, 2*Second)
		at = p.Now()
	})
	e.Run()
	if ok {
		t.Fatal("expected timeout")
	}
	if at != Time(2*Second) {
		t.Fatalf("timed out at %v, want 2s", at)
	}
	// A very late Set must not resume anyone.
	f.Set(1)
	e.Run()
}

func TestFutureGetTimeoutSucceeds(t *testing.T) {
	e := New(1)
	f := NewFuture[int](e)
	var v int
	var ok bool
	e.Go("g", func(p *Proc) { v, ok = f.GetTimeout(p, 2*Second) })
	e.Schedule(Second, func() { f.Set(9) })
	e.Run()
	if !ok || v != 9 {
		t.Fatalf("v=%d ok=%v", v, ok)
	}
}

func TestFutureGetTimeoutAlreadySet(t *testing.T) {
	e := New(1)
	f := NewFuture[int](e)
	f.Set(3)
	var v int
	var ok bool
	var at Time
	e.Go("g", func(p *Proc) {
		v, ok = f.GetTimeout(p, Second)
		at = p.Now()
	})
	e.Run()
	if !ok || v != 3 || at != 0 {
		t.Fatalf("v=%d ok=%v at=%v", v, ok, at)
	}
}

func TestWaitGroup(t *testing.T) {
	e := New(1)
	wg := NewWaitGroup(e)
	wg.Add(3)
	var doneAt Time
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		i := i
		e.Go("worker", func(p *Proc) {
			p.Sleep(Duration(i) * Second)
			wg.Done()
		})
	}
	e.Run()
	if doneAt != Time(3*Second) {
		t.Fatalf("waiter done at %v, want 3s", doneAt)
	}
}

func TestWaitGroupZeroCountNoBlock(t *testing.T) {
	e := New(1)
	wg := NewWaitGroup(e)
	ran := false
	e.Go("w", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("Wait on zero counter blocked")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWaitGroup(New(1)).Add(-1)
}

func TestLIFOWakeQueue(t *testing.T) {
	e := New(1)
	q := NewLIFOWakeQueue[int](e)
	var got []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Go(name, func(p *Proc) {
			for {
				v := q.Pop(p)
				if v < 0 {
					return
				}
				got = append(got, name)
				p.Sleep(Microsecond) // process, then re-park (most recent)
			}
		})
	}
	e.Go("producer", func(p *Proc) {
		p.Sleep(Millisecond) // let all three park: w1, w2, w3 in park order
		for i := 0; i < 4; i++ {
			q.Push(i)
			p.Sleep(10 * Microsecond) // w3 finishes and re-parks before next push
		}
		for i := 0; i < 3; i++ {
			q.Push(-1)
		}
	})
	e.Run()
	e.Shutdown()
	// LIFO wake: the last-parked waiter (w3) services everything.
	want := []string{"w3", "w3", "w3", "w3"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
