package sim

import "testing"

// Benchmarks of the event loop itself: every simulated RPC costs a handful
// of scheduled events and proc hand-offs, so per-event overhead is the
// wall-clock ceiling for the whole reproduction.

// BenchmarkEngineDispatch measures heap-ordered dispatch with 64 concurrent
// event chains at mixed delays, the shape the RPC fabric produces.
func BenchmarkEngineDispatch(b *testing.B) {
	e := New(1)
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		d := Duration(1 + (remaining%16)*100)
		if remaining%64 == 0 {
			d = Duration(1_000_000) // occasional far timer (timeouts, pings)
		}
		e.Schedule(d, tick)
	}
	const chains = 64
	for i := 0; i < chains; i++ {
		e.Schedule(Duration(i), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineZeroDelay measures same-instant callback scheduling, the
// dominant pattern of queue wake-ups and future resolution.
func BenchmarkEngineZeroDelay(b *testing.B) {
	e := New(1)
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		e.Schedule(0, tick)
	}
	e.Schedule(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkProcHandoff measures the full proc wake-up round trip through
// two queues, the pattern of every dispatch->worker hand-off.
func BenchmarkProcHandoff(b *testing.B) {
	e := New(1)
	q1, q2 := NewQueue[int](e), NewQueue[int](e)
	n := b.N
	e.Go("a", func(p *Proc) {
		for i := 0; i < n; i++ {
			q1.Push(i)
			_ = q2.Pop(p)
		}
	})
	e.Go("b", func(p *Proc) {
		for i := 0; i < n; i++ {
			_ = q1.Pop(p)
			q2.Push(i)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	e.Shutdown()
}
