package sim

import "fmt"

// Time is a point in simulated time, expressed in nanoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds. It mirrors
// time.Duration but is a distinct type so that simulated time can never be
// accidentally mixed with wall-clock time.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Scale returns d multiplied by factor f, rounding toward zero.
func Scale(d Duration, f float64) Duration { return Duration(float64(d) * f) }

// Since returns the duration elapsed from start to now.
func Since(now Time, start Time) Duration { return Duration(now - start) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", d.Micros())
	case d < Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
