// Sharded is a conservative parallel discrete-event driver: N lane
// engines advance together through lookahead-bounded windows.
//
// The correctness argument has three legs:
//
//  1. Window safety. Let G be the earliest pending event time across all
//     lanes. Every event a lane executes in the window [G, G+lookahead)
//     can only influence another lane through a cross-lane send, and the
//     fabric guarantees any such send lands at least `lookahead` (the
//     simnet propagation delay) after the sender's clock — hence at or
//     beyond the window end. So lanes may run the whole window in
//     parallel without ever missing a causal dependency.
//  2. Merge determinism. Sequence numbers are partitioned: lane i of n
//     draws i+n, i+2n, ... so every (t, seq) pair is globally unique and
//     cross-lane events carry a sender-assigned (t, seq). A binary heap
//     ordered by (t, seq) pops in the same order regardless of push
//     order, so mailbox arrival order — the only scheduling-dependent
//     quantity in the system — cannot reach execution order.
//  3. Exclusive instants. Work that reads or writes across lanes at zero
//     latency (the 1 Hz metering tick, run termination) registers as an
//     exclusive event: the driver advances every lane clock to that
//     instant and runs it alone, before any lane event at the same
//     timestamp, while all lane goroutines are parked at the barrier.
//
// A 1-lane Sharded run allocates the identical sequence numbers and
// executes the identical event order as a standalone Engine.
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sharded owns N lane engines and the barrier that synchronizes them.
type Sharded struct {
	lanes     []*Engine
	lookahead Duration
	now       Time
	stopped   bool

	// Exclusive events, a 4-ary min-heap by (t, seq) with its own
	// sequence space (exclusives never merge into lane queues, so no
	// partition conflict). exclMu guards it because a lane may register
	// the run-termination event from inside a window.
	exclMu  sync.Mutex
	exclLen atomic.Int32 // mirrors len(excl): lock-free empty check per window
	excl    []exclEvent
	exclSeq uint64

	// Per-lane persistent workers. start carries the window end; wg is
	// the window barrier.
	start []chan Time
	wg    sync.WaitGroup

	// Panic values captured from lane workers, by lane index. The driver
	// re-raises the lowest-lane panic after the barrier so a broken run
	// fails deterministically.
	panicMu  sync.Mutex
	panicked []any

	// inlineOnly short-circuits worker dispatch: with a single OS core a
	// goroutine barrier buys no overlap, so the driver runs every active
	// lane sequentially itself. Lanes never interact inside a window, so
	// the execution (and all output) is identical either way — only the
	// wall-clock overlap differs.
	inlineOnly bool

	// scratch for the per-window active-lane set.
	active []int

	// Window-shape counters (read after Run for diagnostics/benchmarks).
	windows     uint64 // parallel windows dispatched
	soloWindows uint64 // windows with exactly one active lane (barrier-free)
	activeSum   uint64 // sum of active-lane counts across windows
	exclRuns    uint64 // exclusive instants executed
}

// exclEvent is one registered exclusive (cross-lane, zero-latency) event.
type exclEvent struct {
	t   Time
	seq uint64
	fn  func()
}

func exclLess(a, b *exclEvent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// NewSharded builds n lane engines sharing one virtual clock, with
// cross-lane causality bounded below by lookahead. Lane 0's RNG is seeded
// exactly like New(seed) so a 1-lane sharded run is indistinguishable
// from a standalone engine; other lanes get independent streams derived
// from the seed.
func NewSharded(seed int64, n int, lookahead Duration) *Sharded {
	if n < 1 {
		panic("sim: sharded engine needs at least one lane")
	}
	if lookahead <= 0 {
		panic("sim: lookahead must be positive")
	}
	s := &Sharded{
		lookahead:  lookahead,
		panicked:   make([]any, n),
		inlineOnly: runtime.GOMAXPROCS(0) == 1,
	}
	for i := 0; i < n; i++ {
		laneSeed := seed
		if i > 0 {
			laneSeed = seed ^ int64(uint64(i)*0x9E3779B97F4A7C15)
		}
		l := New(laneSeed)
		l.laneID = i
		l.seq = uint64(i)
		l.seqStep = uint64(n)
		s.lanes = append(s.lanes, l)
	}
	s.startWorkers()
	return s
}

// startWorkers spawns one persistent goroutine per lane beyond the first.
// Lane 0 always runs inline on the driver goroutine: in the common case
// where a window has exactly one active lane, the driver runs it directly
// and the barrier costs nothing.
func (s *Sharded) startWorkers() {
	s.start = make([]chan Time, len(s.lanes))
	for i := 1; i < len(s.lanes); i++ {
		i := i
		ch := make(chan Time)
		s.start[i] = ch
		// The worker goroutines ARE the parallel scheduler: each one runs
		// its lane's cooperative event loop for exactly one window, then
		// parks on the barrier until the driver hands it the next window.
		// Between windows no worker is runnable, so cross-lane reads in
		// exclusive events and the driver's own bookkeeping are race-free.
		go func() {
			for end := range ch {
				s.runLane(i, end)
				s.wg.Done()
			}
		}()
	}
}

// runLane executes one lane's window, capturing a panic for deterministic
// re-raise on the driver.
func (s *Sharded) runLane(i int, end Time) {
	defer func() {
		if r := recover(); r != nil {
			s.panicMu.Lock()
			s.panicked[i] = r
			s.panicMu.Unlock()
		}
	}()
	s.lanes[i].runWindow(end)
}

// Lanes returns the number of lanes.
func (s *Sharded) Lanes() int { return len(s.lanes) }

// Lane returns lane i's engine. Components are constructed against their
// home lane; everything a component touches mid-run must live on that
// lane or be reached through the fabric.
func (s *Sharded) Lane(i int) *Engine { return s.lanes[i] }

// Lookahead returns the conservative window width.
func (s *Sharded) Lookahead() Duration { return s.lookahead }

// Now returns the global virtual clock: the end of the last completed
// window, or the exclusive instant being executed.
func (s *Sharded) Now() Time { return s.now }

// Stopped reports whether Stop has been called.
func (s *Sharded) Stopped() bool { return s.stopped }

// EventsRun sums executed events across lanes.
func (s *Sharded) EventsRun() uint64 {
	var n uint64
	for _, l := range s.lanes {
		n += l.eventsRun
	}
	return n
}

// LiveProcs sums unfinished procs across lanes.
func (s *Sharded) LiveProcs() int {
	n := 0
	for _, l := range s.lanes {
		n += len(l.procs)
	}
	return n
}

// WindowStats reports the run's window shape: total parallel windows,
// how many had a single active lane (and so ran barrier-free on the
// driver), the mean active-lane count, and the number of exclusive
// instants. The mean active count bounds the achievable speedup: windows
// are as parallel as the event density within one lookahead allows.
func (s *Sharded) WindowStats() (windows, solo uint64, meanActive float64, excl uint64) {
	windows, solo, excl = s.windows, s.soloWindows, s.exclRuns
	if s.windows > 0 {
		meanActive = float64(s.activeSum) / float64(s.windows)
	}
	return
}

// ScheduleExclusiveAt registers fn to run at time t with every lane
// parked and advanced to t. Exclusive events at an instant run before any
// lane event at the same timestamp, in registration order. Callable from
// outside the run (setup), from exclusive context (ticker rearm), and
// from inside a lane window (run termination) — t must not precede the
// current window's end in that last case, which the lookahead contract
// provides for anything at least one second out.
func (s *Sharded) ScheduleExclusiveAt(t Time, fn func()) {
	s.exclMu.Lock()
	s.exclSeq++
	ev := exclEvent{t: t, seq: s.exclSeq, fn: fn}
	h := append(s.excl, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !exclLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.excl = h
	s.exclLen.Store(int32(len(h)))
	s.exclMu.Unlock()
}

// ScheduleExclusive registers fn to run d after the global clock.
func (s *Sharded) ScheduleExclusive(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.ScheduleExclusiveAt(s.now.Add(d), fn)
}

// peekExcl returns the earliest exclusive time.
func (s *Sharded) peekExcl() (Time, bool) {
	if s.exclLen.Load() == 0 {
		return 0, false
	}
	s.exclMu.Lock()
	defer s.exclMu.Unlock()
	if len(s.excl) == 0 {
		return 0, false
	}
	return s.excl[0].t, true
}

// popExclAt removes and returns the earliest exclusive event if it is at
// time t.
func (s *Sharded) popExclAt(t Time) (exclEvent, bool) {
	s.exclMu.Lock()
	defer s.exclMu.Unlock()
	if len(s.excl) == 0 || s.excl[0].t != t {
		return exclEvent{}, false
	}
	h := s.excl
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = exclEvent{}
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if exclLess(&h[j], &h[m]) {
					m = j
				}
			}
			if !exclLess(&h[m], &last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	s.excl = h
	s.exclLen.Store(int32(len(h)))
	return top, true
}

// Stop halts the run after the current exclusive event or window. Lane
// engines are stopped too so a mid-window Stop (only possible from
// exclusive context, where no lane is running) leaves their queues
// intact but dead.
func (s *Sharded) Stop() {
	s.stopped = true
	for _, l := range s.lanes {
		l.stopped = true
	}
}

// Run drives all lanes until every queue is empty or Stop is called.
//
// Each iteration: merge mailboxes (lanes are parked, the lock is for the
// memory fence), find the global minimum event time G and the earliest
// exclusive time E. If E <= G the exclusive instant runs alone on the
// driver; otherwise every lane with work before min(G+lookahead, E) runs
// that window in parallel and idle lanes have their clocks advanced.
func (s *Sharded) Run() {
	for !s.stopped {
		for _, l := range s.lanes {
			l.drainMailbox()
		}
		haveG := false
		var g Time
		for _, l := range s.lanes {
			if t, ok := l.peekTime(); ok && (!haveG || t < g) {
				g, haveG = t, true
			}
		}
		e, haveE := s.peekExcl()
		if !haveG && !haveE {
			return
		}
		if haveE && (!haveG || e <= g) {
			s.runExclusive(e)
			continue
		}
		end := g.Add(s.lookahead)
		if haveE && e < end {
			end = e
		}
		s.runWindow(end)
	}
}

// runExclusive advances every lane to t and executes all exclusive events
// at that instant, in (t, seq) order, on the driver goroutine.
func (s *Sharded) runExclusive(t Time) {
	s.now = t
	for _, l := range s.lanes {
		if l.now < t {
			l.now = t
		}
	}
	for !s.stopped {
		ev, ok := s.popExclAt(t)
		if !ok {
			return
		}
		s.exclRuns++
		ev.fn()
	}
}

// runWindow dispatches one parallel window ending at end.
func (s *Sharded) runWindow(end Time) {
	s.active = s.active[:0]
	for i, l := range s.lanes {
		if t, ok := l.peekTime(); ok && t < end {
			s.active = append(s.active, i)
		} else if l.now < end {
			l.now = end
		}
	}
	s.windows++
	s.activeSum += uint64(len(s.active))
	if len(s.active) == 1 {
		s.soloWindows++
	}
	switch {
	case len(s.active) == 0:
	case len(s.active) == 1 || s.inlineOnly:
		// Barrier-free path: a single active lane (the dominant case when
		// activity is concentrated — bring-up, drain, small scenarios), or
		// a single-core host where overlap is impossible anyway. The
		// driver runs the lanes itself; lanes never interact inside a
		// window, so inter-lane execution order is unobservable.
		for _, i := range s.active {
			s.runLane(i, end)
		}
	default:
		// Parallel dispatch: lane 0 (which has no worker) runs inline on
		// the driver if active, otherwise the first active lane does.
		inline := s.active[0]
		for _, i := range s.active {
			if i == 0 {
				inline = 0
				break
			}
		}
		s.wg.Add(len(s.active) - 1)
		for _, i := range s.active {
			if i != inline {
				s.start[i] <- end
			}
		}
		s.runLane(inline, end)
		s.wg.Wait()
	}
	s.checkPanics()
	s.now = end
}

// checkPanics re-raises the lowest-lane captured panic.
func (s *Sharded) checkPanics() {
	for i, p := range s.panicked {
		if p != nil {
			s.panicked[i] = nil
			panic(fmt.Sprintf("sim: lane %d: %v", i, p))
		}
	}
}

// Shutdown stops the workers and reaps every lane's parked procs. Must be
// called from outside engine context after Run returns; the Sharded must
// not be reused.
func (s *Sharded) Shutdown() {
	s.stopped = true
	for _, ch := range s.start {
		if ch != nil {
			close(ch)
		}
	}
	for _, l := range s.lanes {
		l.Shutdown()
	}
}

// ExclusiveTicker is the cross-lane analogue of Ticker: its callback runs
// at exclusive instants, so it may read and write state on any lane (the
// cluster's 1 Hz metering tick reads every node).
type ExclusiveTicker struct {
	sh      *Sharded
	period  Duration
	fn      func(now Time)
	stopped bool
}

// NewExclusiveTicker starts an exclusive ticker with the first tick one
// period from the global clock.
func (s *Sharded) NewExclusiveTicker(period Duration, fn func(now Time)) *ExclusiveTicker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &ExclusiveTicker{sh: s, period: period, fn: fn}
	t.arm(s.now.Add(period))
	return t
}

func (t *ExclusiveTicker) arm(at Time) {
	t.sh.ScheduleExclusiveAt(at, func() {
		if t.stopped {
			return
		}
		t.fn(at)
		if !t.stopped {
			t.arm(at.Add(t.period))
		}
	})
}

// Stop cancels future ticks.
func (t *ExclusiveTicker) Stop() { t.stopped = true }
