// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock by executing events in (time, sequence)
// order. Two kinds of activity exist:
//
//   - Callback events scheduled with Schedule/ScheduleAt. They run on the
//     engine goroutine and must never block.
//   - Processes ("procs") spawned with Go. Each proc runs on its own
//     goroutine but the engine enforces strict hand-off: exactly one
//     goroutine (the engine or a single proc) is ever runnable, so the
//     simulation is deterministic and free of data races by construction.
//
// Procs block in simulated time using Sleep and the synchronization
// primitives in this package (Queue, Mutex, Semaphore, Future, WaitGroup).
// All wake-ups are funneled through the event queue, so execution order is a
// pure function of the seed and the program.
//
// Hot-path design: the event queue is a 4-ary min-heap of plain event
// structs owned by the engine (no container/heap, so no `any` boxing per
// push/pop), events that merely resume a parked proc carry the *Proc
// directly instead of a heap-allocated closure, and events scheduled for
// the current instant — the dominant pattern (queue wake-ups, future
// resolution, zero-delay callbacks) — bypass the heap through a FIFO ring.
// Both paths preserve exact (time, sequence) execution order, so the
// optimization is invisible to simulation results.
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// event is one queue entry. When p is non-nil the event resumes that proc
// (the allocation-free wake-up path); otherwise fn is invoked.
type event struct {
	t   Time
	seq uint64
	fn  func()
	p   *Proc
}

// eventLess orders events by (time, sequence).
func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// timer is a cancellable proc-resume scheduled for a deadline. Timers live
// in their own small heap so the (usually far-future, usually cancelled)
// RPC timeouts of CallTimeout don't pollute the main event heap: without
// cancellation a closed loop drags thousands of stale deadline events
// through every sift. idx is the timer's position in the heap, -1 once
// fired or cancelled.
type timer struct {
	t   Time
	seq uint64
	p   *Proc
	idx int
}

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; construct one with New.
type Engine struct {
	now Time
	seq uint64

	// Lane identity under a Sharded driver. A standalone engine is lane 0
	// of 1: seqStep 1 reproduces the classic seq++ numbering exactly. Lane
	// i of n starts its sequence space at i and strides by n, so every
	// (t, seq) pair is globally unique across lanes and a 1-lane sharded
	// run allocates the identical sequence a standalone engine would.
	laneID  int
	seqStep uint64

	// mailbox receives cross-lane events (other lanes' sends targeting
	// this lane). Entries carry a keyed (t, seq) stamped by the sender,
	// so merge order is a pure function of the simulation, not of mailbox
	// append order. It is the only engine state touched from another
	// goroutine; the driver drains it into the heap at window boundaries.
	// mbLen mirrors len(mailbox) so the per-window drain can skip the
	// lock when nothing arrived (the common case).
	mbMu    sync.Mutex
	mbLen   atomic.Int32
	mailbox []event

	// heap is a 4-ary min-heap of future events ordered by (t, seq).
	heap []event
	// nowQ is a FIFO ring of events scheduled for the current instant.
	// Every entry has t == now and was sequenced after all pending heap
	// events at this time, so ring order is (t, seq) order. The clock can
	// only advance once the ring is drained.
	nowQ    []event
	nowHead int

	// timers is a 4-ary min-heap of cancellable proc-resume deadlines,
	// ordered by (t, seq) like the event heap. The run loop merges the
	// three queues into one (t, seq) order, so timers interleave with
	// events exactly as if they shared a heap.
	timers []*timer

	yield   chan struct{}
	rng     *rand.Rand
	procs   map[*Proc]struct{}
	stopped bool

	// procPanic carries a panic out of a proc goroutine so it can be
	// re-raised on the engine goroutine with context.
	procPanic any
	panicProc string

	eventsRun uint64
}

// New returns an engine whose randomness is derived entirely from seed.
func New(seed int64) *Engine {
	return &Engine{
		yield:   make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
		procs:   make(map[*Proc]struct{}),
		seqStep: 1,
	}
}

// LaneID returns this engine's lane index under a Sharded driver
// (0 for a standalone engine).
func (e *Engine) LaneID() int { return e.laneID }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's seeded random source. It must only be used from
// engine context (callbacks and procs), never from outside Run.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsRun reports how many events the engine has executed.
func (e *Engine) EventsRun() uint64 { return e.eventsRun }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Schedule runs fn after d of simulated time. Negative durations are
// clamped to zero.
func (e *Engine) Schedule(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt runs fn at time t. Times in the past are clamped to now.
func (e *Engine) ScheduleAt(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq += e.seqStep
	if t == e.now {
		e.nowQ = append(e.nowQ, event{t: t, seq: e.seq, fn: fn})
		return
	}
	e.heapPush(event{t: t, seq: e.seq, fn: fn})
}

// scheduleProc resumes p after d of simulated time. It is the wake-up path
// of Sleep and every synchronization primitive: the proc pointer rides in
// the event itself, so no closure is allocated.
func (e *Engine) scheduleProc(d Duration, p *Proc) {
	if d < 0 {
		d = 0
	}
	e.scheduleProcAt(e.now.Add(d), p)
}

// scheduleProcAt resumes p at time t (clamped to now).
func (e *Engine) scheduleProcAt(t Time, p *Proc) {
	if t < e.now {
		t = e.now
	}
	e.seq += e.seqStep
	if t == e.now {
		e.nowQ = append(e.nowQ, event{t: t, seq: e.seq, p: p})
		return
	}
	e.heapPush(event{t: t, seq: e.seq, p: p})
}

// heapPush inserts ev into the 4-ary min-heap. The sift logic is mirrored
// by timerPush/timerPop below; the two heaps stay separate on purpose —
// events are stored by value with no index bookkeeping (the hot path),
// timers need pointer identity plus idx maintenance for cancellation.
// A change to the sift arithmetic here must be applied there too.
func (e *Engine) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// heapPop removes and returns the minimum event.
func (e *Engine) heapPop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release the closure for GC
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if eventLess(&h[j], &h[m]) {
					m = j
				}
			}
			if !eventLess(&h[m], &last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	e.heap = h
	return top
}

// scheduleProcTimer schedules a cancellable resume of p at time t (clamped
// to now) and returns a handle for cancelTimer.
func (e *Engine) scheduleProcTimer(t Time, p *Proc) *timer {
	if t < e.now {
		t = e.now
	}
	e.seq += e.seqStep
	tm := &timer{t: t, seq: e.seq, p: p}
	e.timerPush(tm)
	return tm
}

// cancelTimer removes a pending timer. Firing and cancellation are
// idempotent: a timer that already fired or was cancelled is left alone.
func (e *Engine) cancelTimer(tm *timer) {
	i := tm.idx
	if i < 0 {
		return
	}
	h := e.timers
	n := len(h) - 1
	tm.idx = -1
	if i != n {
		h[i] = h[n]
		h[i].idx = i
	}
	h[n] = nil
	e.timers = h[:n]
	if i != n {
		// The element moved into slot i may violate heap order in either
		// direction: sift up first, then down if it did not move.
		if e.timerUp(i) == i {
			e.timerFix(i)
		}
	}
}

// timerUp restores heap order upward from index i, returning the final
// position.
func (e *Engine) timerUp(i int) int {
	h := e.timers
	for i > 0 {
		parent := (i - 1) >> 2
		if !timerLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].idx = i
		h[parent].idx = parent
		i = parent
	}
	return i
}

// timerLess orders timers by (time, sequence).
func timerLess(a, b *timer) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// timerPush inserts tm into the 4-ary timer heap.
func (e *Engine) timerPush(tm *timer) {
	e.timers = append(e.timers, tm)
	tm.idx = len(e.timers) - 1
	e.timerUp(tm.idx)
}

// timerPop removes and returns the minimum timer.
func (e *Engine) timerPop() *timer {
	h := e.timers
	top := h[0]
	top.idx = -1
	n := len(h) - 1
	if n > 0 {
		h[0] = h[n]
		h[0].idx = 0
	}
	h[n] = nil
	e.timers = h[:n]
	if n > 1 {
		e.timerFix(0)
	}
	return top
}

// timerFix restores heap order downward from index i.
func (e *Engine) timerFix(i int) {
	h := e.timers
	n := len(h)
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if timerLess(h[j], h[m]) {
				m = j
			}
		}
		if !timerLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		h[i].idx = i
		h[m].idx = m
		i = m
	}
}

// nowPop removes and returns the head of the current-instant ring.
func (e *Engine) nowPop() event {
	ev := e.nowQ[e.nowHead]
	e.nowQ[e.nowHead] = event{} // release the closure for GC
	e.nowHead++
	if e.nowHead == len(e.nowQ) {
		e.nowQ = e.nowQ[:0]
		e.nowHead = 0
	}
	return ev
}

// Run executes events until the queue is empty or Stop is called. It then
// kills any procs that are still parked so their goroutines exit.
func (e *Engine) Run() {
	e.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamps <= horizon. The clock is left at
// min(horizon, time of last event run). Procs still parked when the run
// finishes remain parked; call Shutdown (or let Run's horizon be maximal) to
// reap them.
func (e *Engine) RunUntil(horizon Time) {
	for !e.stopped {
		// Select the (t, seq)-minimum across the three queues: the
		// current-instant ring (FIFO in seq), the event heap and the
		// timer heap. Merging here preserves the exact execution order a
		// single queue would produce.
		var t Time
		var seq uint64
		src := 0 // 0: none, 1: ring, 2: heap, 3: timers
		if e.nowHead < len(e.nowQ) {
			t, seq, src = e.nowQ[e.nowHead].t, e.nowQ[e.nowHead].seq, 1
		}
		if len(e.heap) > 0 {
			if h := &e.heap[0]; src == 0 || h.t < t || (h.t == t && h.seq < seq) {
				t, seq, src = h.t, h.seq, 2
			}
		}
		if len(e.timers) > 0 {
			if tm := e.timers[0]; src == 0 || tm.t < t || (tm.t == t && tm.seq < seq) {
				t, src = tm.t, 3
			}
		}
		if src == 0 {
			return
		}
		if t > horizon {
			e.now = horizon
			return
		}
		var ev event
		switch src {
		case 1:
			ev = e.nowPop()
		case 2:
			ev = e.heapPop()
		case 3:
			tm := e.timerPop()
			ev = event{t: tm.t, seq: tm.seq, p: tm.p}
		}
		e.now = ev.t
		e.eventsRun++
		if ev.p != nil {
			e.resumeProc(ev.p)
		} else {
			ev.fn()
		}
		if e.procPanic != nil {
			p, name := e.procPanic, e.panicProc
			e.procPanic = nil
			panic(fmt.Sprintf("sim: panic in proc %q at t=%v: %v", name, e.now, p))
		}
	}
}

// Stop halts Run after the current event completes. Pending events are
// retained but not executed.
func (e *Engine) Stop() { e.stopped = true }

// KeyedSeqBit marks an explicitly keyed sequence number (ScheduleKeyedAt,
// CrossScheduleAt). Keyed events sort after every engine-drawn sequence at
// the same instant — engine counters start near zero and can never reach
// 2^63 — so the keyed space is disjoint from the lane counters by
// construction.
const KeyedSeqBit = uint64(1) << 63

// ScheduleKeyedAt schedules fn at a strictly future time t with an
// explicit caller-owned sequence key. The fabric stamps every delivery
// with a key derived from the sending *node* (not the sending lane), so
// same-instant delivery order is identical at any lane count. seq must
// have KeyedSeqBit set and (t, seq) must be globally unique.
func (e *Engine) ScheduleKeyedAt(t Time, seq uint64, fn func()) {
	if seq&KeyedSeqBit == 0 {
		panic("sim: keyed sequence number missing KeyedSeqBit")
	}
	if t <= e.now {
		panic(fmt.Sprintf("sim: keyed event at t=%v not beyond now=%v", t, e.now))
	}
	e.heapPush(event{t: t, seq: seq, fn: fn})
}

// CrossScheduleAt enqueues fn at (t, seq) into this lane's mailbox from
// another lane. seq must be a keyed sequence number (see ScheduleKeyedAt)
// and t must lie at or beyond the current synchronization window's end
// (the conservative-lookahead contract: any cross-lane interaction is at
// least one propagation delay in the future). The entry is merged into
// the heap at the next window boundary; the keyed seq makes merge order a
// pure function of the simulation, not of mailbox append order or lane
// count.
func (e *Engine) CrossScheduleAt(t Time, seq uint64, fn func()) {
	if seq&KeyedSeqBit == 0 {
		panic("sim: keyed sequence number missing KeyedSeqBit")
	}
	e.mbMu.Lock()
	e.mailbox = append(e.mailbox, event{t: t, seq: seq, fn: fn})
	e.mbLen.Store(int32(len(e.mailbox)))
	e.mbMu.Unlock()
}

// drainMailbox merges pending cross-lane events into the heap. Called by
// the sharded driver between windows, when no lane goroutine is running.
func (e *Engine) drainMailbox() {
	if e.mbLen.Load() == 0 {
		return
	}
	e.mbMu.Lock()
	for _, ev := range e.mailbox {
		if ev.t < e.now {
			panic(fmt.Sprintf("sim: cross-lane event at t=%v behind lane %d clock %v (lookahead violated)", ev.t, e.laneID, e.now))
		}
		e.heapPush(ev)
	}
	e.mailbox = e.mailbox[:0]
	e.mbLen.Store(0)
	e.mbMu.Unlock()
}

// peekTime returns the timestamp of this lane's earliest pending event,
// or ok=false if the lane is idle. The ring, heap and timer minima are
// compared on time alone: for window-extent computation the seq tiebreak
// is irrelevant.
func (e *Engine) peekTime() (Time, bool) {
	var t Time
	ok := false
	if e.nowHead < len(e.nowQ) {
		t, ok = e.nowQ[e.nowHead].t, true
	}
	if len(e.heap) > 0 && (!ok || e.heap[0].t < t) {
		t, ok = e.heap[0].t, true
	}
	if len(e.timers) > 0 && (!ok || e.timers[0].t < t) {
		t, ok = e.timers[0].t, true
	}
	return t, ok
}

// runWindow executes every event with t < end — strictly: the window end
// belongs to the next window (or to an exclusive instant) — and leaves
// the lane clock at end. It is the per-window body a lane worker runs
// under the Sharded driver; the merge across ring, heap and timers is
// identical to RunUntil's.
func (e *Engine) runWindow(end Time) {
	for !e.stopped {
		var t Time
		var seq uint64
		src := 0 // 0: none, 1: ring, 2: heap, 3: timers
		if e.nowHead < len(e.nowQ) {
			t, seq, src = e.nowQ[e.nowHead].t, e.nowQ[e.nowHead].seq, 1
		}
		if len(e.heap) > 0 {
			if h := &e.heap[0]; src == 0 || h.t < t || (h.t == t && h.seq < seq) {
				t, seq, src = h.t, h.seq, 2
			}
		}
		if len(e.timers) > 0 {
			if tm := e.timers[0]; src == 0 || tm.t < t || (tm.t == t && tm.seq < seq) {
				t, src = tm.t, 3
			}
		}
		if src == 0 || t >= end {
			break
		}
		var ev event
		switch src {
		case 1:
			ev = e.nowPop()
		case 2:
			ev = e.heapPop()
		case 3:
			tm := e.timerPop()
			ev = event{t: tm.t, seq: tm.seq, p: tm.p}
		}
		e.now = ev.t
		e.eventsRun++
		if ev.p != nil {
			e.resumeProc(ev.p)
		} else {
			ev.fn()
		}
		if e.procPanic != nil {
			p, name := e.procPanic, e.panicProc
			e.procPanic = nil
			panic(fmt.Sprintf("sim: panic in proc %q at t=%v: %v", name, e.now, p))
		}
	}
	if !e.stopped && e.now < end {
		e.now = end
	}
}

// Shutdown kills every parked proc so its goroutine exits. It must be called
// from outside engine context (i.e. not from a callback or proc), typically
// after Run returns. After Shutdown the engine must not be reused.
func (e *Engine) Shutdown() {
	e.stopped = true
	for p := range e.procs {
		p.killed = true
		//rcvet:allow maporder host-side teardown after Run returns; procs die without running and no simulated event or rendered output can observe the kill order
		p.resume <- struct{}{}
		<-e.yield
	}
	e.procPanic = nil
}

// LiveProcs reports the number of procs that have been spawned and have not
// yet finished.
func (e *Engine) LiveProcs() int { return len(e.procs) }

// killSentinel unwinds a killed proc's stack.
type killSentinel struct{}

// Proc is a simulated process. A Proc's methods must only be called from the
// proc's own goroutine (i.e. inside the function passed to Go).
type Proc struct {
	name   string
	eng    *Engine
	resume chan struct{}
	killed bool
}

// Name returns the name the proc was spawned with.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine that owns this proc.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Go spawns a new proc that begins executing fn at the current simulated
// time (after already-scheduled events at this time).
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{name: name, eng: e, resume: make(chan struct{})}
	e.procs[p] = struct{}{}
	//rcvet:allow goroutine this IS the cooperative scheduler: the goroutine parks on p.resume immediately and only ever runs while the engine blocks on e.yield, so exactly one goroutine is runnable at a time
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSentinel); !ok {
					e.procPanic = r
					e.panicProc = p.name
				}
			}
			delete(e.procs, p)
			e.yield <- struct{}{}
		}()
		<-p.resume
		if p.killed {
			panic(killSentinel{})
		}
		fn(p)
	}()
	e.scheduleProcAt(e.now, p)
	return p
}

// resumeProc transfers control to p until it parks or finishes.
func (e *Engine) resumeProc(p *Proc) {
	p.resume <- struct{}{}
	<-e.yield
}

// park yields control back to the engine until the proc is resumed.
func (p *Proc) park() {
	e := p.eng
	e.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
}

// Sleep suspends the proc for d of simulated time.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		d = 0
	}
	e := p.eng
	e.scheduleProc(d, p)
	p.park()
}

// Yield reschedules the proc at the current time, letting other events and
// procs scheduled for this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }
