// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock by executing events in (time, sequence)
// order. Two kinds of activity exist:
//
//   - Callback events scheduled with Schedule/ScheduleAt. They run on the
//     engine goroutine and must never block.
//   - Processes ("procs") spawned with Go. Each proc runs on its own
//     goroutine but the engine enforces strict hand-off: exactly one
//     goroutine (the engine or a single proc) is ever runnable, so the
//     simulation is deterministic and free of data races by construction.
//
// Procs block in simulated time using Sleep and the synchronization
// primitives in this package (Queue, Mutex, Semaphore, Future, WaitGroup).
// All wake-ups are funneled through the event queue, so execution order is a
// pure function of the seed and the program.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

type event struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; construct one with New.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	yield   chan struct{}
	rng     *rand.Rand
	procs   map[*Proc]struct{}
	stopped bool

	// procPanic carries a panic out of a proc goroutine so it can be
	// re-raised on the engine goroutine with context.
	procPanic any
	panicProc string

	eventsRun uint64
}

// New returns an engine whose randomness is derived entirely from seed.
func New(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's seeded random source. It must only be used from
// engine context (callbacks and procs), never from outside Run.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// EventsRun reports how many events the engine has executed.
func (e *Engine) EventsRun() uint64 { return e.eventsRun }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Schedule runs fn after d of simulated time. Negative durations are
// clamped to zero.
func (e *Engine) Schedule(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt runs fn at time t. Times in the past are clamped to now.
func (e *Engine) ScheduleAt(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, fn: fn})
}

// Run executes events until the queue is empty or Stop is called. It then
// kills any procs that are still parked so their goroutines exit.
func (e *Engine) Run() {
	e.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamps <= horizon. The clock is left at
// min(horizon, time of last event run). Procs still parked when the run
// finishes remain parked; call Shutdown (or let Run's horizon be maximal) to
// reap them.
func (e *Engine) RunUntil(horizon Time) {
	for !e.stopped && len(e.events) > 0 {
		if e.events[0].t > horizon {
			e.now = horizon
			return
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.t
		e.eventsRun++
		ev.fn()
		if e.procPanic != nil {
			p, name := e.procPanic, e.panicProc
			e.procPanic = nil
			panic(fmt.Sprintf("sim: panic in proc %q at t=%v: %v", name, e.now, p))
		}
	}
}

// Stop halts Run after the current event completes. Pending events are
// retained but not executed.
func (e *Engine) Stop() { e.stopped = true }

// Shutdown kills every parked proc so its goroutine exits. It must be called
// from outside engine context (i.e. not from a callback or proc), typically
// after Run returns. After Shutdown the engine must not be reused.
func (e *Engine) Shutdown() {
	e.stopped = true
	for p := range e.procs {
		p.killed = true
		p.resume <- struct{}{}
		<-e.yield
	}
	e.procPanic = nil
}

// LiveProcs reports the number of procs that have been spawned and have not
// yet finished.
func (e *Engine) LiveProcs() int { return len(e.procs) }

// killSentinel unwinds a killed proc's stack.
type killSentinel struct{}

// Proc is a simulated process. A Proc's methods must only be called from the
// proc's own goroutine (i.e. inside the function passed to Go).
type Proc struct {
	name   string
	eng    *Engine
	resume chan struct{}
	killed bool
}

// Name returns the name the proc was spawned with.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine that owns this proc.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Go spawns a new proc that begins executing fn at the current simulated
// time (after already-scheduled events at this time).
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{name: name, eng: e, resume: make(chan struct{})}
	e.procs[p] = struct{}{}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSentinel); !ok {
					e.procPanic = r
					e.panicProc = p.name
				}
			}
			delete(e.procs, p)
			e.yield <- struct{}{}
		}()
		<-p.resume
		if p.killed {
			panic(killSentinel{})
		}
		fn(p)
	}()
	e.ScheduleAt(e.now, func() { e.resumeProc(p) })
	return p
}

// resumeProc transfers control to p until it parks or finishes.
func (e *Engine) resumeProc(p *Proc) {
	p.resume <- struct{}{}
	<-e.yield
}

// park yields control back to the engine until the proc is resumed.
func (p *Proc) park() {
	e := p.eng
	e.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
}

// Sleep suspends the proc for d of simulated time.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		d = 0
	}
	e := p.eng
	e.Schedule(d, func() { e.resumeProc(p) })
	p.park()
}

// Yield reschedules the proc at the current time, letting other events and
// procs scheduled for this instant run first.
func (p *Proc) Yield() { p.Sleep(0) }
