package sim

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// forceParallelDispatch raises GOMAXPROCS so NewSharded picks the worker
// barrier even on a single-core host (where it would otherwise run every
// lane inline on the driver). The race-detector tests depend on this:
// only the barrier path exercises cross-goroutine synchronization.
func forceParallelDispatch(t testing.TB) {
	prev := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// shardedWorkload drives one lane's little state machine: a proc that
// sleeps pseudo-random (seeded, deterministic) intervals and stamps a
// trace, plus timers and zero-delay callbacks to exercise all three
// queues.
func shardedWorkload(e *Engine, id int, trace *[]string) {
	e.Go(fmt.Sprintf("w%d", id), func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Sleep(Duration(1+(id*7+i*13)%23) * Microsecond)
			*trace = append(*trace, fmt.Sprintf("w%d.%d@%d", id, i, p.Now()))
		}
	})
	e.Schedule(5*Microsecond, func() {
		*trace = append(*trace, fmt.Sprintf("cb%d@%d", id, e.Now()))
		e.ScheduleAt(e.Now(), func() {
			*trace = append(*trace, fmt.Sprintf("ring%d@%d", id, e.Now()))
		})
	})
}

// TestShardedOneLaneMatchesEngine pins the tentpole contract's base case:
// a 1-lane Sharded run executes the identical event sequence — same
// trace, same event count, same final clock — as a standalone Engine.
func TestShardedOneLaneMatchesEngine(t *testing.T) {
	var plainTrace []string
	plain := New(42)
	for id := 0; id < 4; id++ {
		shardedWorkload(plain, id, &plainTrace)
	}
	plain.Run()

	var shTrace []string
	sh := NewSharded(42, 1, 2300*Nanosecond)
	for id := 0; id < 4; id++ {
		shardedWorkload(sh.Lane(0), id, &shTrace)
	}
	sh.Run()

	if len(plainTrace) != len(shTrace) {
		t.Fatalf("trace lengths differ: engine %d, sharded %d", len(plainTrace), len(shTrace))
	}
	for i := range plainTrace {
		if plainTrace[i] != shTrace[i] {
			t.Fatalf("trace[%d]: engine %q, sharded %q", i, plainTrace[i], shTrace[i])
		}
	}
	if plain.EventsRun() != sh.EventsRun() {
		t.Fatalf("events run: engine %d, sharded %d", plain.EventsRun(), sh.EventsRun())
	}
	// The sharded clock parks at the final window boundary: strictly past
	// the last event, at most one lookahead beyond it.
	if got := sh.Lane(0).Now(); got <= plain.Now() || got > plain.Now().Add(2300*Nanosecond) {
		t.Fatalf("final clock: engine %v, sharded lane %v (want within one lookahead past)", plain.Now(), got)
	}
	sh.Shutdown()
	plain.Shutdown()
}

// crossRing builds an n-node token ring where node base+i lives on lane
// (base+i)%lanes and forwards the token to its successor with the given
// delay, stamping the hop on the receiving node's own trace. Delay must
// be >= the lookahead for the cross-lane legs. Each hop carries a
// sender-keyed sequence number the way the fabric does; base also
// namespaces the keys so two rings never mint the same (t, seq).
func crossRing(sh *Sharded, base, nodes, hops int, delay Duration, traces [][]string) {
	counters := make([]uint64, nodes)
	lane := func(node int) *Engine { return sh.Lane((base + node) % sh.Lanes()) }
	var hop func(node, k int)
	hop = func(node, k int) {
		traces[base+node] = append(traces[base+node], fmt.Sprintf("h%d@%d", k, lane(node).Now()))
		if k == hops {
			return
		}
		next := (node + 1) % nodes
		src, dst := lane(node), lane(next)
		counters[node]++
		seq := KeyedSeqBit | uint64(base+node)<<31 | counters[node]
		at := src.Now().Add(delay)
		fn := func() { hop(next, k+1) }
		if dst == src {
			src.ScheduleKeyedAt(at, seq, fn)
		} else {
			dst.CrossScheduleAt(at, seq, fn)
		}
	}
	lane(0).Schedule(0, func() { hop(0, 0) })
}

// TestShardedLaneCountInvariance runs the same workload at 1, 2, 3 and 8
// lanes and requires every node's observed history to be identical: the
// partition of nodes onto lanes must be unobservable. Two rings with
// co-prime delays make hops on different nodes collide in time (those
// commute — each node only sees its own trace), and a fan-in aims eight
// same-instant sends at one destination, where the keyed-seq merge is
// the only thing standing between lane count and reordering.
func TestShardedLaneCountInvariance(t *testing.T) {
	const ringA, ringB, fanDst = 0, 6, 10
	la := 2300 * Nanosecond
	run := func(lanes int) [][]string {
		traces := make([][]string, fanDst+1)
		sh := NewSharded(7, lanes, la)
		crossRing(sh, ringA, 6, 200, la, traces)
		crossRing(sh, ringB, 4, 300, 2*la, traces)
		dst := sh.Lane(fanDst % lanes)
		for s := 0; s < 8; s++ {
			s := s
			src := sh.Lane(s % lanes)
			src.Schedule(Microsecond, func() {
				seq := KeyedSeqBit | uint64(32+s)<<31 | 1
				at := src.Now().Add(2 * la)
				fn := func() {
					traces[fanDst] = append(traces[fanDst], fmt.Sprintf("s%d@%d", s, dst.Now()))
				}
				if dst == src {
					src.ScheduleKeyedAt(at, seq, fn)
				} else {
					dst.CrossScheduleAt(at, seq, fn)
				}
			})
		}
		sh.Run()
		sh.Shutdown()
		return traces
	}
	want := run(1)
	if got := len(want[fanDst]); got != 8 {
		t.Fatalf("fan-in delivered %d sends, want 8", got)
	}
	for _, lanes := range []int{2, 3, 8} {
		got := run(lanes)
		for node := range want {
			if len(got[node]) != len(want[node]) {
				t.Fatalf("lanes=%d node %d: %d trace entries, want %d", lanes, node, len(got[node]), len(want[node]))
			}
			for i := range want[node] {
				if got[node][i] != want[node][i] {
					t.Fatalf("lanes=%d node %d trace[%d] = %q, want %q", lanes, node, i, got[node][i], want[node][i])
				}
			}
		}
	}
}

// TestShardedExclusiveTicker checks that exclusive ticks fire at exact
// one-period instants with every lane clock advanced to the tick time,
// and before any lane event at the same instant.
func TestShardedExclusiveTicker(t *testing.T) {
	sh := NewSharded(1, 4, 2300*Nanosecond)
	var ticks []Time
	var tick *ExclusiveTicker
	tick = sh.NewExclusiveTicker(Second, func(now Time) {
		ticks = append(ticks, now)
		for i := 0; i < sh.Lanes(); i++ {
			if got := sh.Lane(i).Now(); got < now {
				t.Fatalf("lane %d clock %v behind tick %v", i, got, now)
			}
		}
		if len(ticks) == 3 {
			tick.Stop() // a live ticker re-arms forever and Run never drains
		}
	})
	// Keep lanes busy past 3.5 simulated seconds.
	for i := 0; i < 4; i++ {
		e := sh.Lane(i)
		e.Go("busy", func(p *Proc) {
			for p.Now() < Time(3500*Millisecond) {
				p.Sleep(10 * Millisecond)
			}
		})
	}
	sh.Run()
	sh.Shutdown()
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3", ticks)
	}
	for i, at := range ticks {
		if at != Time(i+1)*Time(Second) {
			t.Fatalf("tick %d at %v, want %v", i, at, Time(i+1)*Time(Second))
		}
	}
}

// TestShardedLanePanicSurfaces pins the failure contract: a panic inside
// a lane event re-raises on the driver with the lane named.
func TestShardedLanePanicSurfaces(t *testing.T) {
	forceParallelDispatch(t)
	sh := NewSharded(1, 2, 2300*Nanosecond)
	defer sh.Shutdown()
	// Both lanes must be active in the window so the panicking lane runs
	// on a worker goroutine, not inline.
	sh.Lane(0).Schedule(Microsecond, func() {})
	sh.Lane(1).Schedule(Microsecond, func() { panic("boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lane panic did not surface")
		}
		if s := fmt.Sprint(r); !strings.Contains(s, "lane 1") || !strings.Contains(s, "boom") {
			t.Fatalf("panic = %q, want lane 1 / boom", s)
		}
	}()
	sh.Run()
}

// TestShardedLookaheadViolationPanics pins the mailbox guard: a
// cross-lane event behind the destination clock is a bug, not a silent
// reorder.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	sh := NewSharded(1, 2, 2300*Nanosecond)
	defer sh.Shutdown()
	sh.Lane(1).Schedule(Millisecond, func() {}) // advance lane 1 well past t=1ns
	sh.Lane(0).Schedule(2*Millisecond, func() {})
	sh.Lane(1).Schedule(3*Millisecond, func() {
		// Lane 1's clock is 3ms; an event for 1ns violates lookahead.
		sh.Lane(0).CrossScheduleAt(Time(1), KeyedSeqBit|1, func() {})
	})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("lookahead violation not caught")
		} else if s := fmt.Sprint(r); !strings.Contains(s, "lookahead violated") {
			t.Fatalf("panic = %q, want lookahead violated", s)
		}
	}()
	// Run drains mailboxes at the top of every iteration, so the stale
	// event is detected right after the window that produced it.
	sh.Run()
}

// TestShardedStressRace is the -race workout: 8 lanes of procs
// exchanging cross-lane events through mailboxes with keyed sequence
// numbers, workers genuinely parallel (GOMAXPROCS raised), repeated to
// churn the barrier. Determinism is asserted on the aggregate.
func TestShardedStressRace(t *testing.T) {
	forceParallelDispatch(t)
	la := 2300 * Nanosecond
	run := func() uint64 {
		sh := NewSharded(99, 8, la)
		var mu sync.Mutex // trace-free: procs only touch lane state + this tally
		total := 0
		counters := make([]uint64, 64)
		for n := 0; n < 64; n++ {
			n := n
			e := sh.Lane(n % 8)
			e.Go(fmt.Sprintf("n%d", n), func(p *Proc) {
				for i := 0; i < 200; i++ {
					p.Sleep(Duration(1+(n+i)%17) * Microsecond)
					dst := sh.Lane((n + i) % 8)
					counters[n]++
					seq := KeyedSeqBit | uint64(n)<<31 | counters[n]
					at := p.Now().Add(la + Duration(n%5)*Nanosecond)
					if dst == e {
						e.ScheduleKeyedAt(at, seq, func() {
							mu.Lock()
							total++
							mu.Unlock()
						})
					} else {
						dst.CrossScheduleAt(at, seq, func() {
							mu.Lock()
							total++
							mu.Unlock()
						})
					}
				}
			})
		}
		sh.Run()
		events := sh.EventsRun()
		sh.Shutdown()
		if total != 64*200 {
			t.Fatalf("cross-lane events ran %d times, want %d", total, 64*200)
		}
		return events
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("stress run event counts diverged: %d vs %d", a, b)
	}
}

// BenchmarkLaneBarrier measures one fully-active window round-trip: all
// lanes have an event in every window, so each iteration pays a
// dispatch + barrier (or the inline sweep on one core). This is the
// fixed cost a window's useful work must amortize.
func BenchmarkLaneBarrier(b *testing.B) {
	for _, lanes := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			la := 2300 * Nanosecond
			sh := NewSharded(1, lanes, la)
			defer sh.Shutdown()
			// Every lane re-arms an event exactly one lookahead out, so
			// each window has all lanes active with one event apiece; the
			// lead lane counts windows and stops after b.N.
			hops := 0
			var rearm func(e *Engine, lead bool)
			rearm = func(e *Engine, lead bool) {
				e.Schedule(la, func() {
					if lead {
						hops++
						if hops >= b.N {
							sh.Stop()
							return
						}
					}
					rearm(e, lead)
				})
			}
			for i := 0; i < lanes; i++ {
				rearm(sh.Lane(i), i == 0)
			}
			b.ResetTimer()
			sh.Run()
		})
	}
}

// BenchmarkCrossLaneSend measures the mailbox path: lock, append, keyed
// merge at the next boundary — the marginal cost of a send crossing
// lanes versus staying on one.
func BenchmarkCrossLaneSend(b *testing.B) {
	la := 2300 * Nanosecond
	sh := NewSharded(1, 2, la)
	defer sh.Shutdown()
	src, dst := sh.Lane(0), sh.Lane(1)
	var counter uint64
	n := 0
	var hop func()
	hop = func() {
		n++
		if n >= b.N {
			sh.Stop()
			return
		}
		counter++
		dst.CrossScheduleAt(src.Now().Add(la), KeyedSeqBit|counter, func() {})
		src.Schedule(la, hop)
	}
	src.Schedule(0, hop)
	b.ResetTimer()
	sh.Run()
}
