package sim

// Ticker invokes a callback at a fixed simulated period until stopped. It is
// implemented with self-rescheduling callback events, so it adds no proc
// overhead.
type Ticker struct {
	eng     *Engine
	period  Duration
	fn      func(now Time)
	stopped bool
}

// NewTicker starts a ticker that calls fn every period, with the first tick
// one period from now. fn runs in engine (callback) context and must not
// block.
func NewTicker(e *Engine, period Duration, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.eng.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn(t.eng.now)
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks. A tick already dispatched for the current time
// may still run.
func (t *Ticker) Stop() { t.stopped = true }
