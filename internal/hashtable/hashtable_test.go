package hashtable

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	ht := New(0)
	ht.Insert(42, 1001)
	ref, ok := ht.Lookup(42, nil)
	if !ok || ref != 1001 {
		t.Fatalf("lookup = %d, %v", ref, ok)
	}
	if _, ok := ht.Lookup(43, nil); ok {
		t.Fatal("lookup of absent hash succeeded")
	}
	if ht.Len() != 1 {
		t.Fatalf("len = %d", ht.Len())
	}
}

func TestEqualFuncDisambiguatesCollisions(t *testing.T) {
	ht := New(0)
	// Two distinct keys with the same 64-bit hash.
	ht.Insert(7, 100)
	ht.Insert(7, 200)
	ref, ok := ht.Lookup(7, func(r uint64) bool { return r == 200 })
	if !ok || ref != 200 {
		t.Fatalf("lookup = %d, %v", ref, ok)
	}
	ref, ok = ht.Lookup(7, func(r uint64) bool { return r == 100 })
	if !ok || ref != 100 {
		t.Fatalf("lookup = %d, %v", ref, ok)
	}
	if _, ok := ht.Lookup(7, func(r uint64) bool { return false }); ok {
		t.Fatal("eq=false lookup matched")
	}
}

func TestReplace(t *testing.T) {
	ht := New(0)
	ht.Insert(9, 500)
	old, ok := ht.Replace(9, nil, 600)
	if !ok || old != 500 {
		t.Fatalf("replace = %d, %v", old, ok)
	}
	ref, _ := ht.Lookup(9, nil)
	if ref != 600 {
		t.Fatalf("ref = %d", ref)
	}
	if _, ok := ht.Replace(10, nil, 1); ok {
		t.Fatal("replace of absent entry succeeded")
	}
	if ht.Len() != 1 {
		t.Fatalf("len = %d after replace", ht.Len())
	}
}

func TestDelete(t *testing.T) {
	ht := New(0)
	ht.Insert(1, 10)
	ht.Insert(2, 20)
	ref, ok := ht.Delete(1, nil)
	if !ok || ref != 10 {
		t.Fatalf("delete = %d, %v", ref, ok)
	}
	if _, ok := ht.Lookup(1, nil); ok {
		t.Fatal("deleted entry still found")
	}
	if ht.Len() != 1 {
		t.Fatalf("len = %d", ht.Len())
	}
	if _, ok := ht.Delete(1, nil); ok {
		t.Fatal("double delete succeeded")
	}
}

func TestBucketOverflowChains(t *testing.T) {
	ht := New(0)
	// Force > 8 entries into one bucket: same low bits, table kept small by
	// inserting few total entries.
	base := uint64(5)
	for i := 0; i < 12; i++ {
		ht.Insert(base+uint64(i)*uint64(ht.DirectorySize()), uint64(1000+i))
	}
	if ht.OverflowBuckets() == 0 {
		t.Fatal("expected overflow buckets")
	}
	for i := 0; i < 12; i++ {
		h := base + uint64(i)*uint64(ht.DirectorySize())
		want := uint64(1000 + i)
		if ref, ok := ht.Lookup(h, func(r uint64) bool { return r == want }); !ok || ref != want {
			t.Fatalf("entry %d lost in overflow chain", i)
		}
	}
}

func TestDeleteFreesEmptiedOverflowBuckets(t *testing.T) {
	ht := New(0)
	dir := uint64(ht.DirectorySize())
	// 24 colliding entries -> a chain of 2 overflow buckets.
	for i := 0; i < 24; i++ {
		ht.Insert(5+uint64(i)*dir, uint64(1000+i))
	}
	if got := ht.OverflowBuckets(); got != 2 {
		t.Fatalf("overflow buckets = %d, want 2", got)
	}
	// Deleting everything must unlink and stop counting both chain buckets.
	for i := 0; i < 24; i++ {
		want := uint64(1000 + i)
		if _, ok := ht.Delete(5+uint64(i)*dir, func(r uint64) bool { return r == want }); !ok {
			t.Fatalf("entry %d not deleted", i)
		}
	}
	if got := ht.OverflowBuckets(); got != 0 {
		t.Fatalf("overflow buckets after drain = %d, want 0", got)
	}
	if ht.Len() != 0 {
		t.Fatalf("len = %d", ht.Len())
	}
	// The emptied chain must not strand later inserts: reinsert and find.
	for i := 0; i < 24; i++ {
		ht.Insert(5+uint64(i)*dir, uint64(2000+i))
	}
	for i := 0; i < 24; i++ {
		want := uint64(2000 + i)
		if _, ok := ht.Lookup(5+uint64(i)*dir, func(r uint64) bool { return r == want }); !ok {
			t.Fatalf("entry %d lost after reinsert", i)
		}
	}
}

func TestGrowRetainsEntries(t *testing.T) {
	ht := New(0)
	dir0 := ht.DirectorySize()
	n := 10_000
	for i := 0; i < n; i++ {
		ht.Insert(HashKey(1, []byte(fmt.Sprintf("key%d", i))), uint64(i))
	}
	if ht.DirectorySize() == dir0 {
		t.Fatal("directory never grew")
	}
	if ht.Len() != n {
		t.Fatalf("len = %d", ht.Len())
	}
	for i := 0; i < n; i++ {
		want := uint64(i)
		h := HashKey(1, []byte(fmt.Sprintf("key%d", i)))
		if _, ok := ht.Lookup(h, func(r uint64) bool { return r == want }); !ok {
			t.Fatalf("key%d lost after grow", i)
		}
	}
}

func TestForEach(t *testing.T) {
	ht := New(0)
	for i := 0; i < 100; i++ {
		ht.Insert(uint64(i)*2654435761, uint64(i))
	}
	seen := map[uint64]bool{}
	ht.ForEach(func(hash, ref uint64) { seen[ref] = true })
	if len(seen) != 100 {
		t.Fatalf("ForEach visited %d entries, want 100", len(seen))
	}
}

func TestSizeHint(t *testing.T) {
	ht := New(100_000)
	if ht.DirectorySize()*maxLoad < 100_000 {
		t.Fatalf("directory %d too small for hint", ht.DirectorySize())
	}
}

func TestHashKeyDistinguishesTables(t *testing.T) {
	if HashKey(1, []byte("k")) == HashKey(2, []byte("k")) {
		t.Fatal("same hash across tables")
	}
	if HashKey(1, []byte("a")) == HashKey(1, []byte("b")) {
		t.Fatal("same hash across keys")
	}
}

// TestModelEquivalence drives the table and a reference map with the same
// random operations and checks they agree at every step.
func TestModelEquivalence(t *testing.T) {
	type entry struct {
		hash uint64
		ref  uint64
	}
	rng := rand.New(rand.NewSource(3))
	ht := New(0)
	model := map[uint64]uint64{} // ref -> hash (refs unique)
	var live []entry
	for op := 0; op < 20_000; op++ {
		switch r := rng.Intn(10); {
		case r < 6 || len(live) == 0: // insert
			e := entry{hash: rng.Uint64() % 512, ref: uint64(op) + 1}
			ht.Insert(e.hash, e.ref)
			model[e.ref] = e.hash
			live = append(live, e)
		case r < 8: // delete random live entry
			i := rng.Intn(len(live))
			e := live[i]
			ref, ok := ht.Delete(e.hash, func(x uint64) bool { return x == e.ref })
			if !ok || ref != e.ref {
				t.Fatalf("op %d: delete(%d,%d) = %d,%v", op, e.hash, e.ref, ref, ok)
			}
			delete(model, e.ref)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // replace
			i := rng.Intn(len(live))
			e := live[i]
			newRef := uint64(op) + 1_000_000_000
			old, ok := ht.Replace(e.hash, func(x uint64) bool { return x == e.ref }, newRef)
			if !ok || old != e.ref {
				t.Fatalf("op %d: replace failed", op)
			}
			delete(model, e.ref)
			model[newRef] = e.hash
			live[i] = entry{hash: e.hash, ref: newRef}
		}
		if ht.Len() != len(model) {
			t.Fatalf("op %d: len %d != model %d", op, ht.Len(), len(model))
		}
	}
	// Final: every model entry findable.
	for ref, hash := range model {
		ref := ref
		if _, ok := ht.Lookup(hash, func(x uint64) bool { return x == ref }); !ok {
			t.Fatalf("entry (%d,%d) lost", hash, ref)
		}
	}
}

func TestQuickInsertThenFind(t *testing.T) {
	f := func(keys [][]byte) bool {
		ht := New(0)
		refs := map[string]uint64{}
		for i, k := range keys {
			s := string(k)
			if _, dup := refs[s]; dup {
				continue
			}
			ref := uint64(i) + 1
			ht.Insert(HashKey(5, k), ref)
			refs[s] = ref
		}
		for s, want := range refs {
			h := HashKey(5, []byte(s))
			if _, ok := ht.Lookup(h, func(r uint64) bool { return r == want }); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
