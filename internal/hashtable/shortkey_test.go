// External test package: the exercise needs ycsb.Key, and ycsb imports
// hashtable.
package hashtable_test

import (
	"testing"

	"ramcloud/internal/hashtable"
	"ramcloud/internal/ycsb"
)

// TestShortKeyRangeClustering pins the FNV-1a clustering that bit the
// real-transport suite (PR 8): sequential YCSB keys ("user%010d") differ
// only in their trailing digits, and FNV-1a folds those last bytes in
// with too few multiplies left to reach the high bits, so consecutive
// keys hash into long runs within one uniform tablet range. Corpora
// sized below ~1000 keys therefore load a strict subset of a 3-way
// table's masters — which is why every multi-range test uses >=2000 keys
// and the experiments use >=8K records.
//
// The numbers are for table id 1 (the first id the coordinator hands
// out) split 3 ways, the exact layout realnode's cluster tests create.
// If HashKey or the key format changes, these constants move and the
// corpus-size floors in the realnode tests must be re-derived — that is
// the regression this test exists to catch.
func TestShortKeyRangeClustering(t *testing.T) {
	const (
		table = uint64(1)
		span  = 3
	)
	step := ^uint64(0)/span + 1
	rangeOf := func(i int) int {
		return int(hashtable.HashKey(table, ycsb.Key(i)) / step)
	}

	// Keys 0..799 — a full sub-1000 sequential corpus — land in ONE range.
	first := rangeOf(0)
	for i := 1; i < 800; i++ {
		if r := rangeOf(i); r != first {
			t.Fatalf("key %d in range %d, want %d (clustering broke: short keys now spread)", i, r, first)
		}
	}

	// The first 1000 keys still leave one of the three ranges completely
	// unloaded: that master would serve zero requests.
	seen := map[int]int{}
	for i := 0; i < 1000; i++ {
		seen[rangeOf(i)]++
	}
	if len(seen) != 2 {
		t.Fatalf("first 1000 keys cover %d of %d ranges, want exactly 2: %v", len(seen), span, seen)
	}

	// At the experiments' corpus floor (>=8K records) every range carries
	// substantial load — the property the >=2000/>=8K sizing relies on.
	seen = map[int]int{}
	for i := 0; i < 8192; i++ {
		seen[rangeOf(i)]++
	}
	if len(seen) != span {
		t.Fatalf("8192 keys cover %d of %d ranges: %v", len(seen), span, seen)
	}
	for r, n := range seen {
		if n < 8192/span/2 {
			t.Fatalf("range %d carries only %d of 8192 keys: %v", r, n, seen)
		}
	}
}
