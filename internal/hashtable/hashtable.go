// Package hashtable implements the master's object index, mapping 64-bit
// key hashes to packed log references, in the style of RAMCloud's
// cache-line-bucket hash table: each bucket holds eight (hash, ref) slots
// plus an overflow chain, and the directory doubles when the table gets
// dense.
//
// The table stores full 64-bit hashes but does not store keys: distinct
// keys can share a hash, so lookups take an equality callback that checks
// the candidate's key in the log, exactly as RAMCloud does.
//
// Occupancy is a single uint8 bitmask per bucket (bit i = slot i used)
// rather than a [8]bool array, so a bucket stays compact and a full or
// empty bucket is detected with one compare instead of eight loads.
// Lookup performs no allocation.
package hashtable

import "math/bits"

const slotsPerBucket = 8

// fullMask has one bit set per slot.
const fullMask = uint8(1<<slotsPerBucket - 1)

// maxLoad is entries per directory slot beyond which the table doubles
// (6 of 8 slots used on average).
const maxLoad = 6

type bucket struct {
	hashes   [slotsPerBucket]uint64
	refs     [slotsPerBucket]uint64
	used     uint8 // occupancy bitmask; bit i covers slot i
	overflow *bucket
}

// EqualFunc reports whether the entry referenced by ref is the key the
// caller is looking for.
type EqualFunc func(ref uint64) bool

// Table is the hash table. Construct with New.
type Table struct {
	buckets []bucket
	mask    uint64
	n       int

	overflowBuckets int
}

// New returns a table with an initial directory sized for at least
// sizeHint entries (minimum 16 buckets).
func New(sizeHint int) *Table {
	nb := 16
	for nb*maxLoad < sizeHint {
		nb *= 2
	}
	return &Table{buckets: make([]bucket, nb), mask: uint64(nb - 1)}
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.n }

// OverflowBuckets returns the number of chained buckets (a health metric).
func (t *Table) OverflowBuckets() int { return t.overflowBuckets }

// DirectorySize returns the number of top-level buckets.
func (t *Table) DirectorySize() int { return len(t.buckets) }

// Lookup finds an entry with the given hash whose referent satisfies eq.
// A nil eq matches any entry with the hash.
func (t *Table) Lookup(hash uint64, eq EqualFunc) (uint64, bool) {
	b := &t.buckets[hash&t.mask]
	for b != nil {
		for m := b.used; m != 0; m &= m - 1 {
			i := bits.TrailingZeros8(m)
			if b.hashes[i] == hash && (eq == nil || eq(b.refs[i])) {
				return b.refs[i], true
			}
		}
		b = b.overflow
	}
	return 0, false
}

// Insert adds a new entry. It does not check for duplicates; use Replace
// for read-modify-write of an existing key.
func (t *Table) Insert(hash uint64, ref uint64) {
	if t.n >= len(t.buckets)*maxLoad {
		t.grow()
	}
	t.insertNoGrow(hash, ref)
	t.n++
}

func (t *Table) insertNoGrow(hash uint64, ref uint64) {
	b := &t.buckets[hash&t.mask]
	for {
		if b.used != fullMask {
			i := bits.TrailingZeros8(^b.used)
			b.hashes[i] = hash
			b.refs[i] = ref
			b.used |= 1 << i
			return
		}
		if b.overflow == nil {
			b.overflow = &bucket{}
			t.overflowBuckets++
		}
		b = b.overflow
	}
}

// Replace updates the ref of an existing entry (found by hash + eq) and
// returns the previous ref. ok is false when no entry matched.
func (t *Table) Replace(hash uint64, eq EqualFunc, newRef uint64) (old uint64, ok bool) {
	b := &t.buckets[hash&t.mask]
	for b != nil {
		for m := b.used; m != 0; m &= m - 1 {
			i := bits.TrailingZeros8(m)
			if b.hashes[i] == hash && (eq == nil || eq(b.refs[i])) {
				old = b.refs[i]
				b.refs[i] = newRef
				return old, true
			}
		}
		b = b.overflow
	}
	return 0, false
}

// Delete removes an entry and returns its ref. ok is false when no entry
// matched. Overflow buckets left empty by the removal are unlinked from
// the chain so they are neither scanned again nor counted as overflow.
func (t *Table) Delete(hash uint64, eq EqualFunc) (ref uint64, ok bool) {
	head := &t.buckets[hash&t.mask]
	prev := (*bucket)(nil)
	for b := head; b != nil; prev, b = b, b.overflow {
		for m := b.used; m != 0; m &= m - 1 {
			i := bits.TrailingZeros8(m)
			if b.hashes[i] == hash && (eq == nil || eq(b.refs[i])) {
				ref = b.refs[i]
				b.used &^= 1 << i
				t.n--
				if b.used == 0 && prev != nil {
					// The overflow bucket is empty: unlink and free it.
					prev.overflow = b.overflow
					t.overflowBuckets--
				}
				return ref, true
			}
		}
	}
	return 0, false
}

// ForEach visits every entry. The callback must not mutate the table.
func (t *Table) ForEach(fn func(hash, ref uint64)) {
	for i := range t.buckets {
		for b := &t.buckets[i]; b != nil; b = b.overflow {
			for m := b.used; m != 0; m &= m - 1 {
				s := bits.TrailingZeros8(m)
				fn(b.hashes[s], b.refs[s])
			}
		}
	}
}

// grow doubles the directory and rehashes every entry.
func (t *Table) grow() {
	old := t.buckets
	t.buckets = make([]bucket, len(old)*2)
	t.mask = uint64(len(t.buckets) - 1)
	t.overflowBuckets = 0
	for i := range old {
		for b := &old[i]; b != nil; b = b.overflow {
			for m := b.used; m != 0; m &= m - 1 {
				s := bits.TrailingZeros8(m)
				t.insertNoGrow(b.hashes[s], b.refs[s])
			}
		}
	}
}

// FNV-1a 64-bit, the key-hash function used throughout the system.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashKey hashes a (table, key) pair to the 64-bit key-hash space. The
// 8 bytes of the table id are folded in as one unrolled word (identical
// value to the former byte loop, without the loop-carried counter), then
// the key bytes are mixed in.
func HashKey(table uint64, key []byte) uint64 {
	h := uint64(fnvOffset)
	h = (h ^ (table & 0xff)) * fnvPrime
	h = (h ^ (table >> 8 & 0xff)) * fnvPrime
	h = (h ^ (table >> 16 & 0xff)) * fnvPrime
	h = (h ^ (table >> 24 & 0xff)) * fnvPrime
	h = (h ^ (table >> 32 & 0xff)) * fnvPrime
	h = (h ^ (table >> 40 & 0xff)) * fnvPrime
	h = (h ^ (table >> 48 & 0xff)) * fnvPrime
	h = (h ^ (table >> 56)) * fnvPrime
	for _, c := range key {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}
