package hashtable

import "testing"

// Benchmarks of the master's object index. Lookup and Insert are on the
// read and write hot paths respectively; HashKey runs once per client
// operation on both client and server.

const benchN = 1 << 16

func benchTable(n int) (*Table, []uint64) {
	t := New(n)
	hashes := make([]uint64, n)
	for i := 0; i < n; i++ {
		hashes[i] = HashKey(1, []byte{byte(i), byte(i >> 8), byte(i >> 16), 'k'})
		t.Insert(hashes[i], uint64(i))
	}
	return t, hashes
}

func BenchmarkHashKey(b *testing.B) {
	key := []byte("user0000000007")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkU64 = HashKey(42, key)
	}
}

func BenchmarkLookup(b *testing.B) {
	t, hashes := benchTable(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, ok := t.Lookup(hashes[i&(benchN-1)], nil)
		if !ok {
			b.Fatal("missing key")
		}
		sinkU64 = ref
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	t, hashes := benchTable(benchN)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := hashes[i&(benchN-1)]
		if _, ok := t.Delete(h, nil); !ok {
			b.Fatal("missing key")
		}
		t.Insert(h, uint64(i))
	}
}

var sinkU64 uint64
