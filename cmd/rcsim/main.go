// Command rcsim runs one ad-hoc scenario on the simulated RAMCloud
// cluster and prints a measurement summary: throughput, latency, power,
// energy efficiency and (optionally) crash-recovery statistics. It can
// also run any registered experiment by id, shape the offered load over
// time, and drive clients with open-loop Poisson arrivals.
//
// Examples:
//
//	rcsim -servers 10 -clients 30 -workload a -requests 20000
//	rcsim -servers 20 -clients 60 -rf 3 -workload a
//	rcsim -servers 9 -rf 2 -records 300000 -kill-after 15s
//	rcsim -arrival open -rate 5000 -shape diurnal
//	rcsim -experiment loadshape
//	rcsim -experiment latload -j 8
//	rcsim -runs 10 -j 8 -servers 10 -clients 30 -workload a
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ramcloud/internal/core"
	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

func main() {
	var (
		servers    = flag.Int("servers", 10, "storage servers")
		clients    = flag.Int("clients", 10, "client nodes")
		rf         = flag.Int("rf", 0, "replication factor (0 = off)")
		workload   = flag.String("workload", "b", "YCSB workload: a, b or c")
		records    = flag.Int("records", 100_000, "records preloaded (1 KB each)")
		requests   = flag.Int("requests", 20_000, "requests per client (0 with -shape: run for the shape's span)")
		rate       = flag.Float64("rate", 0, "per-client target ops/s: throttle (closed loop) or arrival rate (open loop)")
		arrival    = flag.String("arrival", "closed", "client arrival mode: closed or open (open-loop Poisson, requires -rate)")
		shape      = flag.String("shape", "", "load shape modulating -rate over time: diurnal, ramp or burst")
		batch      = flag.Int("batch", 0, "multi-op batch size: group ops into MultiRead/MultiWrite RPCs (0/1 = per-op)")
		window     = flag.Int("window", 0, "async pipeline window: outstanding ops per client (0/1 = closed loop; ignored when -batch > 1)")
		seed       = flag.Int64("seed", 42, "simulation seed")
		killAfter  = flag.Duration("kill-after", 0, "kill one server after this virtual time")
		runs       = flag.Int("runs", 1, "seed-sweep run count (like the paper's 5-run averages)")
		experiment = flag.String("experiment", "", "run a registered experiment by id (e.g. loadshape, latload, fig1a) and exit")
		scale      = flag.Float64("scale", 1.0, "experiment scale factor (with -experiment)")
		j          = flag.Int("j", runtime.GOMAXPROCS(0), "concurrent scenario simulations (experiments and -runs sweeps; 1 = fully serial)")
		lanes      = flag.Int("lanes", 1, "event lanes per eligible scenario (sharded engine; output is lane-count invariant)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()
	core.SetParallelism(*j)
	core.SetLanes(*lanes)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rcsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rcsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *experiment != "" {
		e, ok := core.ByID(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "rcsim: unknown experiment %q; registered ids:\n", *experiment)
			for _, exp := range core.Experiments() {
				fmt.Fprintf(os.Stderr, "  %-12s %s\n", exp.ID, exp.Title)
			}
			os.Exit(2)
		}
		opts := core.Options{Scale: *scale, Seed: *seed}
		if *j > 1 {
			core.NewRunner(*j).Prewarm([]core.Experiment{e}, opts)
		}
		fmt.Print(e.Run(opts).Render())
		return
	}

	w, err := ycsb.ByName(*workload, *records, 1024)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcsim: %v\n", err)
		os.Exit(2)
	}
	mode := core.ArrivalDefault
	switch *arrival {
	case "closed", "":
	case "open":
		mode = core.ArrivalOpen
		if *rate <= 0 {
			fmt.Fprintln(os.Stderr, "rcsim: -arrival open requires -rate > 0")
			os.Exit(2)
		}
	default:
		fmt.Fprintf(os.Stderr, "rcsim: unknown arrival mode %q (closed, open)\n", *arrival)
		os.Exit(2)
	}
	phases, err := shapePhases(*shape)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcsim: %v\n", err)
		os.Exit(2)
	}
	if len(phases) > 0 && *rate <= 0 {
		fmt.Fprintln(os.Stderr, "rcsim: -shape requires -rate > 0 (phases modulate the target rate)")
		os.Exit(2)
	}

	scenario := core.Scenario{
		Name:    "rcsim",
		Servers: *servers,
		RF:      *rf,
		Groups: []core.ClientGroup{{
			Name:              "rcsim",
			Clients:           *clients,
			Workload:          w,
			RequestsPerClient: *requests,
			Arrival:           mode,
			Rate:              *rate,
			BatchSize:         *batch,
			Window:            *window,
		}},
		Phases:      phases,
		Seed:        *seed,
		KillAfter:   sim.Duration(*killAfter),
		KillTarget:  -1,
		IdleSeconds: boolToInt(*killAfter > 0) * 5,
	}

	if *runs > 1 {
		start := time.Now()
		sweep := core.RunSeeds(scenario, *runs, core.Options{Seed: *seed})
		fmt.Printf("seed sweep over %d runs (wall clock %.1fs):\n", *runs, time.Since(start).Seconds())
		fmt.Printf("throughput:       %.0f op/s   (stddev %.0f)\n", sweep.Throughput.Mean(), sweep.Throughput.Stddev())
		fmt.Printf("avg power/server: %.1f W     (stddev %.2f)\n", sweep.PowerPerServer.Mean(), sweep.PowerPerServer.Stddev())
		fmt.Printf("efficiency:       %.0f op/J   (stddev %.1f)\n", sweep.OpsPerJoule.Mean(), sweep.OpsPerJoule.Stddev())
		if sweep.RecoverySeconds.N() > 0 {
			fmt.Printf("recovery time:    %.2f s     (stddev %.2f)\n", sweep.RecoverySeconds.Mean(), sweep.RecoverySeconds.Stddev())
		}
		return
	}

	start := time.Now()
	res := core.Run(scenario)

	fmt.Printf("cluster: %d servers, %d clients (%s), RF %d, workload %s (%d records)\n",
		*servers, *clients, *arrival, *rf, w.Name, *records)
	fmt.Printf("simulated duration: %v   (wall clock %.1fs)\n", res.Duration, time.Since(start).Seconds())
	if res.TotalOps > 0 {
		fmt.Printf("throughput:         %.0f op/s (%d ops)\n", res.Throughput, res.TotalOps)
		fmt.Printf("read latency:       %s\n", res.ReadLatency.Summary(1000, "us"))
		if res.WriteLatency.Count() > 0 {
			fmt.Printf("write latency:      %s\n", res.WriteLatency.Summary(1000, "us"))
		}
	}
	fmt.Printf("avg power/server:   %.1f W   (CPU %.0f%%-%.0f%%)\n",
		res.AvgPowerPerServer, res.CPUMin*100, res.CPUMax*100)
	fmt.Printf("total energy:       %.1f KJ   efficiency %.0f op/J\n",
		res.TotalJoules/1000, res.OpsPerJoule)
	if res.Timeouts > 0 || res.Failures > 0 {
		fmt.Printf("client timeouts:    %d   failures: %d\n", res.Timeouts, res.Failures)
	}
	if len(res.Phases) > 0 {
		fmt.Println("per-phase breakdown:")
		fmt.Printf("  %-10s %-6s %9s %10s %10s %8s\n", "phase", "shape", "offered x", "Kop/s", "W/server", "op/J")
		for _, ph := range res.Phases {
			fmt.Printf("  %-10s %-6s %9.2f %10.0f %10.1f %8.0f\n",
				ph.Phase, ph.Shape, ph.OfferedScale, ph.Throughput/1000, ph.AvgPowerPerServer, ph.OpsPerJoule)
		}
	}
	if res.KilledAt > 0 {
		if res.Recovered {
			fmt.Printf("crash recovery:     killed at %v, recovered in %v\n", res.KilledAt, res.RecoveryTime)
		} else {
			fmt.Printf("crash recovery:     killed at %v, NOT recovered\n", res.KilledAt)
		}
	}
	if res.Crashed {
		fmt.Println("run aborted: deadline exceeded (excessive timeouts)")
	}
}

// shapePhases maps a -shape name onto a canned phase schedule.
func shapePhases(name string) ([]core.LoadPhase, error) {
	switch name {
	case "":
		return nil, nil
	case "diurnal":
		return []core.LoadPhase{
			{Name: "night", Shape: core.ShapeConstant, Duration: 4 * sim.Second, From: 0.2},
			{Name: "morning", Shape: core.ShapeRamp, Duration: 5 * sim.Second, From: 0.2, To: 1.0},
			{Name: "day", Shape: core.ShapeSine, Duration: 8 * sim.Second, From: 0.7, To: 1.0, Period: 8 * sim.Second},
			{Name: "evening", Shape: core.ShapeRamp, Duration: 5 * sim.Second, From: 1.0, To: 0.3},
		}, nil
	case "ramp":
		return []core.LoadPhase{
			{Name: "ramp", Shape: core.ShapeRamp, Duration: 10 * sim.Second, From: 0.1, To: 1.0},
			{Name: "hold", Shape: core.ShapeConstant, Duration: 5 * sim.Second, From: 1.0},
		}, nil
	case "burst":
		return []core.LoadPhase{
			{Name: "baseline", Shape: core.ShapeConstant, Duration: 5 * sim.Second, From: 0.4},
			{Name: "burst", Shape: core.ShapeStep, Duration: 4 * sim.Second, From: 0.4, To: 1.8, Steps: 2},
			{Name: "cooldown", Shape: core.ShapeRamp, Duration: 5 * sim.Second, From: 1.8, To: 0.4},
		}, nil
	default:
		return nil, fmt.Errorf("unknown -shape %q (diurnal, ramp, burst)", name)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
