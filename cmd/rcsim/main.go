// Command rcsim runs one ad-hoc scenario on the simulated RAMCloud
// cluster and prints a measurement summary: throughput, latency, power,
// energy efficiency and (optionally) crash-recovery statistics.
//
// Examples:
//
//	rcsim -servers 10 -clients 30 -workload a -requests 20000
//	rcsim -servers 20 -clients 60 -rf 3 -workload a
//	rcsim -servers 9 -rf 2 -records 300000 -kill-after 15s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ramcloud/internal/core"
	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

func main() {
	var (
		servers   = flag.Int("servers", 10, "storage servers")
		clients   = flag.Int("clients", 10, "client nodes")
		rf        = flag.Int("rf", 0, "replication factor (0 = off)")
		workload  = flag.String("workload", "b", "YCSB workload: a, b or c")
		records   = flag.Int("records", 100_000, "records preloaded (1 KB each)")
		requests  = flag.Int("requests", 20_000, "requests per client")
		rate      = flag.Float64("rate", 0, "per-client throttle in ops/s (0 = unthrottled)")
		batch     = flag.Int("batch", 0, "multi-op batch size: group ops into MultiRead/MultiWrite RPCs (0/1 = per-op)")
		window    = flag.Int("window", 0, "async pipeline window: outstanding ops per client (0/1 = closed loop; ignored when -batch > 1)")
		seed      = flag.Int64("seed", 42, "simulation seed")
		killAfter = flag.Duration("kill-after", 0, "kill one server after this virtual time")
		runs      = flag.Int("runs", 1, "seed-sweep run count (like the paper's 5-run averages)")
	)
	flag.Parse()

	w, err := ycsb.ByName(*workload, *records, 1024)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcsim: %v\n", err)
		os.Exit(2)
	}
	scenario := core.Scenario{
		Name:              "rcsim",
		Servers:           *servers,
		Clients:           *clients,
		RF:                *rf,
		Workload:          w,
		RequestsPerClient: *requests,
		Rate:              *rate,
		BatchSize:         *batch,
		Window:            *window,
		Seed:              *seed,
		KillAfter:         sim.Duration(*killAfter),
		KillTarget:        -1,
		IdleSeconds:       boolToInt(*killAfter > 0) * 5,
	}

	if *runs > 1 {
		start := time.Now()
		sweep := core.RunSeeds(scenario, *runs)
		fmt.Printf("seed sweep over %d runs (wall clock %.1fs):\n", *runs, time.Since(start).Seconds())
		fmt.Printf("throughput:       %.0f op/s   (stddev %.0f)\n", sweep.Throughput.Mean(), sweep.Throughput.Stddev())
		fmt.Printf("avg power/server: %.1f W     (stddev %.2f)\n", sweep.PowerPerServer.Mean(), sweep.PowerPerServer.Stddev())
		fmt.Printf("efficiency:       %.0f op/J   (stddev %.1f)\n", sweep.OpsPerJoule.Mean(), sweep.OpsPerJoule.Stddev())
		if sweep.RecoverySeconds.N() > 0 {
			fmt.Printf("recovery time:    %.2f s     (stddev %.2f)\n", sweep.RecoverySeconds.Mean(), sweep.RecoverySeconds.Stddev())
		}
		return
	}

	start := time.Now()
	res := core.Run(scenario)

	fmt.Printf("cluster: %d servers, %d clients, RF %d, workload %s (%d records)\n",
		*servers, *clients, *rf, w.Name, *records)
	fmt.Printf("simulated duration: %v   (wall clock %.1fs)\n", res.Duration, time.Since(start).Seconds())
	if res.TotalOps > 0 {
		fmt.Printf("throughput:         %.0f op/s (%d ops)\n", res.Throughput, res.TotalOps)
		fmt.Printf("read latency:       %s\n", res.ReadLatency.Summary(1000, "us"))
		if res.WriteLatency.Count() > 0 {
			fmt.Printf("write latency:      %s\n", res.WriteLatency.Summary(1000, "us"))
		}
	}
	fmt.Printf("avg power/server:   %.1f W   (CPU %.0f%%-%.0f%%)\n",
		res.AvgPowerPerServer, res.CPUMin*100, res.CPUMax*100)
	fmt.Printf("total energy:       %.1f KJ   efficiency %.0f op/J\n",
		res.TotalJoules/1000, res.OpsPerJoule)
	if res.Timeouts > 0 || res.Failures > 0 {
		fmt.Printf("client timeouts:    %d   failures: %d\n", res.Timeouts, res.Failures)
	}
	if res.KilledAt > 0 {
		if res.Recovered {
			fmt.Printf("crash recovery:     killed at %v, recovered in %v\n", res.KilledAt, res.RecoveryTime)
		} else {
			fmt.Printf("crash recovery:     killed at %v, NOT recovered\n", res.KilledAt)
		}
	}
	if res.Crashed {
		fmt.Println("run aborted: deadline exceeded (excessive timeouts)")
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
