// Command rcbench regenerates the tables and figures of "Characterizing
// Performance and Energy-Efficiency of The RAMCloud Storage System"
// (ICDCS 2017) on the simulated testbed.
//
// Usage:
//
//	rcbench -list                 # show available experiments
//	rcbench -exp table2,fig5      # run selected experiments
//	rcbench -all                  # run everything (several minutes)
//	rcbench -all -scale 2 -o out  # longer runs, write to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"ramcloud/internal/core"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		exps  = flag.String("exp", "", "comma-separated experiment ids")
		all   = flag.Bool("all", false, "run every experiment")
		scale = flag.Float64("scale", 1.0, "request/record scale (1.0 = standard reproduction)")
		seed  = flag.Int64("seed", 42, "simulation seed")
		out   = flag.String("o", "", "write results to file instead of stdout")
		j     = flag.Int("j", runtime.GOMAXPROCS(0), "concurrent scenario simulations (1 = fully serial)")
		lanes = flag.Int("lanes", 1, "event lanes per eligible scenario (sharded engine; output is lane-count invariant)")
	)
	flag.Parse()
	core.SetLanes(*lanes)

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-12s %s\n             %s\n", e.ID, e.Title, e.Setup)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		for _, e := range core.Experiments() {
			ids = append(ids, e.ID)
		}
	case *exps != "":
		ids = strings.Split(*exps, ",")
	default:
		fmt.Fprintln(os.Stderr, "rcbench: nothing to do; use -list, -exp or -all")
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	var selected []core.Experiment
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := core.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "rcbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		selected = append(selected, e)
	}

	opts := core.Options{Scale: *scale, Seed: *seed}
	core.SetParallelism(*j)
	warmable := 0
	for _, e := range selected {
		if e.Scenarios != nil {
			warmable++
		}
	}
	if *j > 1 && warmable > 0 {
		// Run every scenario of every requested experiment on the worker
		// pool up front; the per-experiment timings below then measure
		// rendering against a warm memo (the prewarm line reports the
		// simulation cost once). Experiments without a scenario grid
		// (fig10's custom loop) still pay their cost in their own line.
		start := time.Now()
		core.NewRunner(*j).Prewarm(selected, opts)
		fmt.Fprintf(w, "(prewarmed %d of %d experiments on %d workers in %.1fs wall clock)\n\n",
			warmable, len(selected), *j, time.Since(start).Seconds())
	}
	for _, e := range selected {
		start := time.Now()
		res := e.Run(opts)
		fmt.Fprintf(w, "%s(completed in %.1fs wall clock)\n\n", res.Render(), time.Since(start).Seconds())
	}
}
