// Command rcvet is the vet tool enforcing this repo's determinism and
// protocol invariants (see LINTS.md). Run it through go vet so the go
// command supplies per-package type information:
//
//	go build -o /tmp/rcvet ./cmd/rcvet
//	go vet -vettool=/tmp/rcvet ./...
//
// Analyzers: detnow (no wall clock / global randomness in simulation
// packages), goroutine (no bare go statements in deterministic
// packages), maporder (no order-dependent work in range-over-map
// bodies), memokey (the scenario memo key covers every Scenario
// field), wireexhaustive (sealed wire messages decode and dispatch
// exhaustively).
package main

import (
	"ramcloud/internal/analysis"
	"ramcloud/internal/analysis/framework/unit"
)

func main() {
	unit.Main(analysis.Suite()...)
}
