// Command rcload is a YCSB-style load driver printing output in the
// familiar YCSB format. It drives the simulated cluster by default;
// -transport tcp points it at a live rccoord/rcserver cluster instead.
//
// Examples:
//
//	rcload -workload a -records 100000 -ops 10000 -clients 30 -servers 10
//	rcload -transport tcp -addr 127.0.0.1:7070 -workload a -records 5000 -ops 20000
//	rcload -transport tcp -addr 127.0.0.1:7070 -workload a -ops 20000 -pipeline 16
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ramcloud/internal/core"
	"ramcloud/internal/realnode"
	"ramcloud/internal/transport"
	"ramcloud/internal/ycsb"
)

func main() {
	var (
		workload  = flag.String("workload", "a", "YCSB core workload: a, b or c")
		records   = flag.Int("records", 100_000, "record count (1 KB values)")
		ops       = flag.Int("ops", 10_000, "operations per client")
		clients   = flag.Int("clients", 10, "concurrent clients")
		servers   = flag.Int("servers", 10, "storage servers (sim transport only)")
		rf        = flag.Int("rf", 0, "replication factor (sim transport only)")
		target    = flag.Float64("target", 0, "per-client target ops/s (0 = max; sim transport only)")
		seed      = flag.Int64("seed", 42, "simulation / key-choice seed")
		transp    = flag.String("transport", "sim", "substrate: sim (deterministic simulation) or tcp (live cluster)")
		addr      = flag.String("addr", "127.0.0.1:7070", "coordinator address for -transport tcp")
		valueSize = flag.Int("size", 1024, "value bytes per record")
		loadPhase = flag.Bool("load", false, "tcp: insert all records before the run phase")
		pipe      = flag.Int("pipeline", 1, "tcp: in-flight ops per worker (async futures; 1 = sync)")
		batch     = flag.Int("batch", 1, "tcp: ops per MultiRead/MultiWrite round (1 = individual ops)")
	)
	flag.Parse()

	w, err := ycsb.ByName(*workload, *records, *valueSize)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcload: %v\n", err)
		os.Exit(2)
	}
	switch *transp {
	case "sim":
	case "tcp":
		runTCP(w, *addr, *clients, *ops, *seed, *loadPhase, *pipe, *batch)
		return
	default:
		fmt.Fprintf(os.Stderr, "rcload: unknown transport %q (want sim or tcp)\n", *transp)
		os.Exit(2)
	}
	wallStart := time.Now()
	res := core.Run(core.Scenario{
		Name:              "rcload",
		Servers:           *servers,
		Clients:           *clients,
		RF:                *rf,
		Workload:          w,
		RequestsPerClient: *ops,
		Rate:              *target,
		Seed:              *seed,
	})

	fmt.Printf("[OVERALL], RunTime(ms), %.0f\n", res.Duration.Seconds()*1000)
	fmt.Printf("[OVERALL], Throughput(ops/sec), %.1f\n", res.Throughput)
	fmt.Printf("[READ], Operations, %d\n", res.ReadLatency.Count())
	if res.ReadLatency.Count() > 0 {
		fmt.Printf("[READ], AverageLatency(us), %.1f\n", res.ReadLatency.Mean()/1000)
		fmt.Printf("[READ], 95thPercentileLatency(us), %.1f\n", float64(res.ReadLatency.Quantile(0.95))/1000)
		fmt.Printf("[READ], 99thPercentileLatency(us), %.1f\n", float64(res.ReadLatency.Quantile(0.99))/1000)
	}
	fmt.Printf("[UPDATE], Operations, %d\n", res.WriteLatency.Count())
	if res.WriteLatency.Count() > 0 {
		fmt.Printf("[UPDATE], AverageLatency(us), %.1f\n", res.WriteLatency.Mean()/1000)
		fmt.Printf("[UPDATE], 95thPercentileLatency(us), %.1f\n", float64(res.WriteLatency.Quantile(0.95))/1000)
		fmt.Printf("[UPDATE], 99thPercentileLatency(us), %.1f\n", float64(res.WriteLatency.Quantile(0.99))/1000)
	}
	fmt.Printf("[ENERGY], AveragePowerPerServer(W), %.1f\n", res.AvgPowerPerServer)
	fmt.Printf("[ENERGY], TotalEnergy(J), %.0f\n", res.TotalJoules)
	fmt.Printf("[ENERGY], Efficiency(ops/J), %.0f\n", res.OpsPerJoule)
	fmt.Printf("# simulated on %d servers in %.1fs wall clock\n", *servers, time.Since(wallStart).Seconds())
}

// runTCP drives a live rccoord/rcserver cluster through the real client.
// ops stays per-client, matching the sim path. Latencies here are wall
// clock over loopback/ethernet TCP — a protocol soak, not the paper's
// InfiniBand numbers — and the cluster exposes no power model, so the
// [ENERGY] section is omitted.
func runTCP(w ycsb.Workload, addr string, clients, opsPerClient int, seed int64, load bool, pipeline, batch int) {
	cl := realnode.NewClient(&transport.TCP{}, addr, realnode.ClientConfig{})
	defer cl.Close()
	table, err := cl.CreateTable("usertable", 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcload: open table: %v\n", err)
		os.Exit(1)
	}
	res, err := realnode.RunYCSB(cl, table, w, realnode.LoadOptions{
		Clients: clients, Ops: opsPerClient * clients, Seed: seed, Load: load,
		Pipeline: pipeline, Batch: batch,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcload: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("[OVERALL], RunTime(ms), %.0f\n", res.Elapsed.Seconds()*1000)
	fmt.Printf("[OVERALL], Throughput(ops/sec), %.1f\n", res.Throughput)
	fmt.Printf("[READ], Operations, %d\n", res.Reads)
	fmt.Printf("[UPDATE], Operations, %d\n", res.Updates)
	fmt.Printf("[OVERALL], 50thPercentileLatency(us), %.1f\n", float64(res.P50.Microseconds()))
	fmt.Printf("[OVERALL], 99thPercentileLatency(us), %.1f\n", float64(res.P99.Microseconds()))
	fmt.Printf("[OVERALL], NotFound, %d\n", res.NotFound)
	fmt.Printf("[OVERALL], Errors, %d\n", res.Errors)
	fmt.Printf("# live TCP cluster at %s; no [ENERGY] section (no power model on the real path)\n", addr)
	if res.Errors > 0 {
		os.Exit(1)
	}
}
