// Command rcload is a YCSB-style load driver against the simulated
// cluster, printing output in the familiar YCSB format.
//
// Example:
//
//	rcload -workload a -records 100000 -ops 10000 -clients 30 -servers 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ramcloud/internal/core"
	"ramcloud/internal/ycsb"
)

func main() {
	var (
		workload = flag.String("workload", "a", "YCSB core workload: a, b or c")
		records  = flag.Int("records", 100_000, "record count (1 KB values)")
		ops      = flag.Int("ops", 10_000, "operations per client")
		clients  = flag.Int("clients", 10, "concurrent clients")
		servers  = flag.Int("servers", 10, "storage servers")
		rf       = flag.Int("rf", 0, "replication factor")
		target   = flag.Float64("target", 0, "per-client target ops/s (0 = max)")
		seed     = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	w, err := ycsb.ByName(*workload, *records, 1024)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcload: %v\n", err)
		os.Exit(2)
	}
	wallStart := time.Now()
	res := core.Run(core.Scenario{
		Name:              "rcload",
		Servers:           *servers,
		Clients:           *clients,
		RF:                *rf,
		Workload:          w,
		RequestsPerClient: *ops,
		Rate:              *target,
		Seed:              *seed,
	})

	fmt.Printf("[OVERALL], RunTime(ms), %.0f\n", res.Duration.Seconds()*1000)
	fmt.Printf("[OVERALL], Throughput(ops/sec), %.1f\n", res.Throughput)
	fmt.Printf("[READ], Operations, %d\n", res.ReadLatency.Count())
	if res.ReadLatency.Count() > 0 {
		fmt.Printf("[READ], AverageLatency(us), %.1f\n", res.ReadLatency.Mean()/1000)
		fmt.Printf("[READ], 95thPercentileLatency(us), %.1f\n", float64(res.ReadLatency.Quantile(0.95))/1000)
		fmt.Printf("[READ], 99thPercentileLatency(us), %.1f\n", float64(res.ReadLatency.Quantile(0.99))/1000)
	}
	fmt.Printf("[UPDATE], Operations, %d\n", res.WriteLatency.Count())
	if res.WriteLatency.Count() > 0 {
		fmt.Printf("[UPDATE], AverageLatency(us), %.1f\n", res.WriteLatency.Mean()/1000)
		fmt.Printf("[UPDATE], 95thPercentileLatency(us), %.1f\n", float64(res.WriteLatency.Quantile(0.95))/1000)
		fmt.Printf("[UPDATE], 99thPercentileLatency(us), %.1f\n", float64(res.WriteLatency.Quantile(0.99))/1000)
	}
	fmt.Printf("[ENERGY], AveragePowerPerServer(W), %.1f\n", res.AvgPowerPerServer)
	fmt.Printf("[ENERGY], TotalEnergy(J), %.0f\n", res.TotalJoules)
	fmt.Printf("[ENERGY], Efficiency(ops/J), %.0f\n", res.OpsPerJoule)
	fmt.Printf("# simulated on %d servers in %.1fs wall clock\n", *servers, time.Since(wallStart).Seconds())
}
