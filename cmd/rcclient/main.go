// Command rcclient talks to a real-transport cluster: one-shot get/put/
// del operations, a tiny REPL, or a YCSB load mode that drives the same
// workload mixes and key distributions as the simulated experiments.
//
// Examples:
//
//	rcclient -coord 127.0.0.1:7070 put user0000000001 hello
//	rcclient -coord 127.0.0.1:7070 get user0000000001
//	rcclient -coord 127.0.0.1:7070 repl
//	rcclient -coord 127.0.0.1:7070 -workload a -records 5000 -ops 100000 -clients 8 -load ycsb
//	rcclient -coord 127.0.0.1:7070 -workload a -ops 100000 -clients 4 -pipeline 16 -load ycsb
//	rcclient -coord 127.0.0.1:7070 -workload a -ops 100000 -clients 4 -batch 16 -load ycsb
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"ramcloud/internal/realnode"
	"ramcloud/internal/transport"
	"ramcloud/internal/ycsb"
)

func main() {
	var (
		coord    = flag.String("coord", "127.0.0.1:7070", "coordinator address")
		table    = flag.String("table", "usertable", "table name")
		span     = flag.Int("span", 0, "server span for table creation (0 = all servers)")
		workload = flag.String("workload", "a", "YCSB workload for ycsb mode: a, b or c")
		records  = flag.Int("records", 5000, "YCSB record count")
		size     = flag.Int("size", 100, "YCSB value bytes per record")
		ops      = flag.Int("ops", 10_000, "YCSB total operations")
		clients  = flag.Int("clients", 4, "YCSB concurrent workers")
		pipeline = flag.Int("pipeline", 1, "YCSB in-flight ops per worker (async futures; 1 = sync)")
		batch    = flag.Int("batch", 1, "YCSB ops per MultiRead/MultiWrite round (1 = individual ops)")
		seed     = flag.Int64("seed", 42, "YCSB RNG seed")
		load     = flag.Bool("load", false, "YCSB: run the load phase (insert all records) first")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: rcclient [flags] get|put|del|repl|ycsb [key [value]]")
		os.Exit(2)
	}

	cl := realnode.NewClient(&transport.TCP{}, *coord, realnode.ClientConfig{})
	defer cl.Close()
	tid, err := cl.CreateTable(*table, *span)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rcclient: open table: %v\n", err)
		os.Exit(1)
	}

	switch args[0] {
	case "get", "put", "del":
		if err := oneShot(cl, tid, args); err != nil {
			fmt.Fprintf(os.Stderr, "rcclient: %v\n", err)
			os.Exit(1)
		}
	case "repl":
		repl(cl, tid)
	case "ycsb":
		w, err := ycsb.ByName(*workload, *records, *size)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcclient: %v\n", err)
			os.Exit(2)
		}
		res, err := realnode.RunYCSB(cl, tid, w, realnode.LoadOptions{
			Clients: *clients, Ops: *ops, Seed: *seed, Load: *load,
			Pipeline: *pipeline, Batch: *batch,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rcclient: ycsb: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[OVERALL], RunTime(ms), %.0f\n", res.Elapsed.Seconds()*1000)
		fmt.Printf("[OVERALL], Throughput(ops/sec), %.1f\n", res.Throughput)
		fmt.Printf("[OVERALL], Operations, %d\n", res.Ops)
		fmt.Printf("[OVERALL], 50thPercentileLatency(us), %.1f\n", float64(res.P50.Microseconds()))
		fmt.Printf("[OVERALL], 99thPercentileLatency(us), %.1f\n", float64(res.P99.Microseconds()))
		fmt.Printf("[READ], Operations, %d\n", res.Reads)
		fmt.Printf("[UPDATE], Operations, %d\n", res.Updates)
		fmt.Printf("[OVERALL], NotFound, %d\n", res.NotFound)
		fmt.Printf("[OVERALL], Errors, %d\n", res.Errors)
		if res.Errors > 0 {
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "rcclient: unknown command %q\n", args[0])
		os.Exit(2)
	}
}

func oneShot(cl *realnode.Client, tid uint64, args []string) error {
	switch args[0] {
	case "get":
		if len(args) != 2 {
			return errors.New("get needs a key")
		}
		val, ver, err := cl.Get(tid, []byte(args[1]))
		if err != nil {
			return err
		}
		fmt.Printf("%s (version %d)\n", val, ver)
	case "put":
		if len(args) != 3 {
			return errors.New("put needs a key and a value")
		}
		ver, err := cl.Put(tid, []byte(args[1]), []byte(args[2]))
		if err != nil {
			return err
		}
		fmt.Printf("ok (version %d)\n", ver)
	case "del":
		if len(args) != 2 {
			return errors.New("del needs a key")
		}
		if err := cl.Delete(tid, []byte(args[1])); err != nil {
			return err
		}
		fmt.Println("ok")
	}
	return nil
}

func repl(cl *realnode.Client, tid uint64) {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Println("rcclient repl: get <key> | put <key> <value> | del <key> | quit")
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "get", "put", "del":
			if err := oneShot(cl, tid, fields); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		default:
			fmt.Printf("unknown command %q\n", fields[0])
		}
	}
}
