// Command rccoord runs the real-transport cluster coordinator: servers
// enlist with it over TCP, clients fetch the tablet map and server list
// from it, and it probes servers for liveness, reassigning a dead
// server's tablets to survivors (without recovery — see internal/realnode).
//
// Example:
//
//	rccoord -listen 127.0.0.1:7070
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ramcloud/internal/realnode"
	"ramcloud/internal/transport"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7070", "listen address")
		interval = flag.Duration("ping-interval", 500*time.Millisecond, "liveness probe period")
		misses   = flag.Int("ping-misses", 3, "consecutive failed probes before a server is declared dead")
	)
	flag.Parse()

	coord := realnode.NewCoordinator(&transport.TCP{}, realnode.CoordConfig{
		PingInterval:  *interval,
		MissThreshold: *misses,
	})
	if err := coord.Start(*listen); err != nil {
		fmt.Fprintf(os.Stderr, "rccoord: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("rccoord: listening on %s\n", coord.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("rccoord: shutting down")
	coord.Stop()
}
