// Command rcserver runs one real-transport master: the log-structured
// store (hashtable index over an append-only log) behind a TCP listener,
// enlisted with an rccoord coordinator. Tablets are assigned by the
// coordinator; the server answers read/write/delete/multi-op requests
// for the ranges it owns and StatusWrongServer for everything else.
//
// Example:
//
//	rcserver -coord 127.0.0.1:7070 -listen 127.0.0.1:0
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ramcloud/internal/realnode"
	"ramcloud/internal/transport"
)

func main() {
	var (
		coord  = flag.String("coord", "127.0.0.1:7070", "coordinator address")
		listen = flag.String("listen", "127.0.0.1:0", "listen address (:0 picks a port)")
		mem    = flag.Int64("memory", 1<<30, "advertised memory bytes")
	)
	flag.Parse()

	srv := realnode.NewServer(&transport.TCP{}, *coord, realnode.ServerConfig{MemoryBytes: *mem})
	if err := srv.Start(*listen); err != nil {
		fmt.Fprintf(os.Stderr, "rcserver: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("rcserver: id %d listening on %s (coordinator %s)\n", srv.ID(), srv.Addr(), *coord)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	reads, writes, deletes, wrong := srv.Counters()
	fmt.Printf("rcserver: shutting down (reads=%d writes=%d deletes=%d wrong-server=%d objects=%d)\n",
		reads, writes, deletes, wrong, srv.Objects())
	srv.Stop()
}
