// Command rcgold renders every experiment at a fixed seed and scale to
// stdout. Its output is a determinism fixture: two runs of the same
// binary must be byte-identical, and neither a simulation-core refactor
// nor the parallelism level may change the rendering (diff the output
// against a pre-change capture, and -j 8 against -j 1).
//
//	rcgold -scale 1.0 -seed 42 > golden.txt
//	rcgold -only fig1a,dist
//	rcgold -j 8            # prewarm every scenario on 8 workers
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"ramcloud/internal/core"
)

func main() {
	var (
		scale = flag.Float64("scale", 1.0, "experiment scale factor")
		seed  = flag.Int64("seed", 42, "simulation seed")
		only  = flag.String("only", "", "comma-separated experiment ids (default: all)")
		j     = flag.Int("j", runtime.GOMAXPROCS(0), "concurrent scenario simulations (1 = fully serial)")
		lanes = flag.Int("lanes", 1, "event lanes per eligible scenario (sharded engine; output is lane-count invariant)")
	)
	flag.Parse()
	core.SetLanes(*lanes)

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if _, ok := core.ByID(id); !ok {
				fmt.Fprintf(os.Stderr, "rcgold: unknown experiment %q\n", id)
				os.Exit(2)
			}
			want[id] = true
		}
	}
	var selected []core.Experiment
	for _, exp := range core.Experiments() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		selected = append(selected, exp)
	}

	opts := core.Options{Scale: *scale, Seed: *seed}
	core.SetParallelism(*j)
	if *j > 1 {
		// Pump every scenario of every selected experiment through the
		// worker pool; the sequential render below then hits a warm memo,
		// so its output is byte-identical to a -j 1 run.
		core.NewRunner(*j).Prewarm(selected, opts)
	}
	for _, exp := range selected {
		res := exp.Run(opts)
		fmt.Println(res.Render())
	}
}
