// Command rcgold renders every experiment at a fixed seed and scale to
// stdout. Its output is a determinism fixture: two runs of the same
// binary must be byte-identical, and a simulation-core refactor must not
// change the rendering (diff the output against a pre-change capture).
//
//	rcgold -scale 1.0 -seed 42 > golden.txt
//	rcgold -only fig1a,dist
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ramcloud/internal/core"
)

func main() {
	var (
		scale = flag.Float64("scale", 1.0, "experiment scale factor")
		seed  = flag.Int64("seed", 42, "simulation seed")
		only  = flag.String("only", "", "comma-separated experiment ids (default: all)")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if _, ok := core.ByID(id); !ok {
				fmt.Fprintf(os.Stderr, "rcgold: unknown experiment %q\n", id)
				os.Exit(2)
			}
			want[id] = true
		}
	}
	for _, exp := range core.Experiments() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		res := exp.Run(core.Options{Scale: *scale, Seed: *seed})
		fmt.Println(res.Render())
	}
}
