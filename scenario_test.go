package ramcloud

import (
	"testing"
	"time"
)

// TestRunScenarioMixedTenants drives the public composable-scenario API:
// two tenant groups with different workloads and arrival modes under a
// two-phase schedule, with per-group and per-phase breakdowns.
func TestRunScenarioMixedTenants(t *testing.T) {
	spec := Scenario{
		Servers: 2,
		Seed:    17,
		Groups: []ClientGroup{
			{Name: "web", Clients: 2, Workload: "C", Records: 20_000,
				Arrival: ArrivalOpen, Rate: 1500},
			{Name: "batch", Clients: 1, Workload: "A", Records: 20_000,
				Requests: 1500},
		},
		Phases: []LoadPhase{
			{Name: "quiet", Shape: ShapeConstant, Duration: 2 * time.Second, From: 0.5},
			{Name: "busy", Shape: ShapeConstant, Duration: 3 * time.Second, From: 1.0},
		},
	}
	m, err := RunScenario(spec)
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if len(m.Groups) != 2 || len(m.Phases) != 2 {
		t.Fatalf("groups = %d, phases = %d", len(m.Groups), len(m.Phases))
	}
	web, batch := m.Groups[0], m.Groups[1]
	if web.Group != "web" || web.Arrival != "open" || batch.Arrival != "closed" {
		t.Fatalf("group metadata: %+v / %+v", web, batch)
	}
	if web.TotalOps+batch.TotalOps != m.TotalOps || m.TotalOps == 0 {
		t.Fatalf("ops: %d + %d != %d", web.TotalOps, batch.TotalOps, m.TotalOps)
	}
	if web.ReadP99Us <= 0 || web.Joules <= 0 || web.OpsPerJoule <= 0 {
		t.Fatalf("web metrics: %+v", web)
	}
	if batch.WriteP99Us <= 0 {
		t.Fatalf("update-heavy tenant has no write latency: %+v", batch)
	}
	if m.Phases[0].Phase != "quiet" || m.Phases[1].Joules <= 0 {
		t.Fatalf("phases: %+v", m.Phases)
	}

	// Determinism: the same spec replays identically.
	m2, err := RunScenario(spec)
	if err != nil {
		t.Fatalf("RunScenario (replay): %v", err)
	}
	if m2.TotalOps != m.TotalOps || m2.TotalJoules != m.TotalJoules || m2.Duration != m.Duration {
		t.Fatalf("replay diverged: %+v vs %+v\nsomething outside (scenario, seed) leaked into the run; see LINTS.md for the usual suspects and the rcvet analyzers that catch them", m2, m)
	}
}

// TestRunScenarioValidation covers the error paths: no groups, bad
// workload, unbounded group, open loop without a rate, bad shapes.
func TestRunScenarioValidation(t *testing.T) {
	if _, err := RunScenario(Scenario{}); err == nil {
		t.Error("empty scenario must fail")
	}
	bad := []Scenario{
		{Groups: []ClientGroup{{Name: "g", Clients: 1, Workload: "Z", Requests: 10}}},
		{Groups: []ClientGroup{{Name: "g", Clients: 1, Workload: "C"}}}, // unbounded
		{Groups: []ClientGroup{{Name: "g", Clients: 1, Workload: "C", Requests: 10, Arrival: ArrivalOpen}}},
		{Groups: []ClientGroup{{Name: "g", Clients: 1, Workload: "C", Requests: 10, Arrival: "warped"}}},
		{Groups: []ClientGroup{{Name: "g", Clients: 1, Workload: "C", Requests: 10}},
			Phases: []LoadPhase{{Shape: "sawtooth", Duration: time.Second}}},
	}
	for i, s := range bad {
		if _, err := RunScenario(s); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}
