#!/usr/bin/env bash
# cluster_smoke.sh — boot a real localhost cluster (rccoord + 3 rcserver)
# and drive a YCSB-A mix through rcclient over TCP. Fails on any nonzero
# exit or any protocol error reported by the client ([OVERALL], Errors
# line). This is the real-transport counterpart of the deterministic
# rendering gates: it proves the wire protocol, framing, correlation and
# routing work between separate OS processes, not just in-process.
#
# Usage: scripts/cluster_smoke.sh [ops] [records] [clients]
set -euo pipefail

OPS=${1:-100000}
RECORDS=${2:-5000}
CLIENTS=${3:-8}
COORD=127.0.0.1:7070
BIN=$(mktemp -d)
LOGS=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$BIN/rccoord" ./cmd/rccoord
go build -o "$BIN/rcserver" ./cmd/rcserver
go build -o "$BIN/rcclient" ./cmd/rcclient

echo "== starting coordinator on $COORD"
"$BIN/rccoord" -listen "$COORD" >"$LOGS/coord.log" 2>&1 &
PIDS+=($!)

for i in 1 2 3; do
  echo "== starting server $i"
  "$BIN/rcserver" -coord "$COORD" -listen 127.0.0.1:0 >"$LOGS/server$i.log" 2>&1 &
  PIDS+=($!)
done

# The servers retry enlistment with backoff, so boot order is forgiving;
# give the cluster a moment to assemble.
sleep 1

echo "== one-shot put/get sanity"
"$BIN/rcclient" -coord "$COORD" put smoketest hello-cluster
GOT=$("$BIN/rcclient" -coord "$COORD" get smoketest)
echo "   got: $GOT"
case "$GOT" in
  hello-cluster*) ;;
  *) echo "::error::read-your-write failed: $GOT"; exit 1 ;;
esac

echo "== YCSB workload A: $OPS ops over $RECORDS records, $CLIENTS workers"
OUT=$("$BIN/rcclient" -coord "$COORD" -workload a -records "$RECORDS" \
  -ops "$OPS" -clients "$CLIENTS" -size 100 -load ycsb)
echo "$OUT"

ERRORS=$(echo "$OUT" | awk -F', ' '/\[OVERALL\], Errors/ {print $3}')
DONE=$(echo "$OUT" | awk -F', ' '/\[OVERALL\], Operations/ {print $3}')
if [ "${ERRORS:-1}" != "0" ]; then
  echo "::error::cluster smoke: $ERRORS protocol errors"
  for f in "$LOGS"/*.log; do echo "--- $f"; cat "$f"; done
  exit 1
fi
if [ "${DONE:-0}" != "$OPS" ]; then
  echo "::error::cluster smoke: completed $DONE of $OPS ops"
  exit 1
fi
echo "== OK: $DONE ops, 0 errors"
