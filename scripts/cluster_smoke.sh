#!/usr/bin/env bash
# cluster_smoke.sh — boot a real localhost cluster (rccoord + 3 rcserver)
# and drive a YCSB-A mix through rcclient over TCP. Fails on any nonzero
# exit or any protocol error reported by the client ([OVERALL], Errors
# line). This is the real-transport counterpart of the deterministic
# rendering gates: it proves the wire protocol, framing, correlation and
# routing work between separate OS processes, not just in-process.
#
# After the main run it sweeps the fast-path knobs once each — -pipeline
# (async futures), -batch (MultiRead/MultiWrite) and a higher -clients
# count — with small op counts, so every code path ships exercised. The
# main pipelined run must clear MIN_KOPS (default 40, override via env:
# a conservative floor well under the ~149 Kops/s this box does batched,
# but far above what a serialized write path could reach).
#
# Usage: scripts/cluster_smoke.sh [ops] [records] [clients]
set -euo pipefail

OPS=${1:-100000}
RECORDS=${2:-5000}
CLIENTS=${3:-8}
MIN_KOPS=${MIN_KOPS:-40}
COORD=127.0.0.1:7070
BIN=$(mktemp -d)
LOGS=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$BIN/rccoord" ./cmd/rccoord
go build -o "$BIN/rcserver" ./cmd/rcserver
go build -o "$BIN/rcclient" ./cmd/rcclient

echo "== starting coordinator on $COORD"
"$BIN/rccoord" -listen "$COORD" >"$LOGS/coord.log" 2>&1 &
PIDS+=($!)

for i in 1 2 3; do
  echo "== starting server $i"
  "$BIN/rcserver" -coord "$COORD" -listen 127.0.0.1:0 >"$LOGS/server$i.log" 2>&1 &
  PIDS+=($!)
done

# The servers retry enlistment with backoff, so boot order is forgiving;
# give the cluster a moment to assemble.
sleep 1

echo "== one-shot put/get sanity"
"$BIN/rcclient" -coord "$COORD" put smoketest hello-cluster
GOT=$("$BIN/rcclient" -coord "$COORD" get smoketest)
echo "   got: $GOT"
case "$GOT" in
  hello-cluster*) ;;
  *) echo "::error::read-your-write failed: $GOT"; exit 1 ;;
esac

# run_ycsb LABEL WANT_OPS ARGS... — drive one YCSB-A run, print its
# output, fail on protocol errors or short op counts, and leave the
# achieved throughput in KOPS (integer Kops/s).
run_ycsb() {
  local label=$1 want=$2; shift 2
  echo "== YCSB workload A ($label): $* (ops=$want)"
  local out
  out=$("$BIN/rcclient" -coord "$COORD" -workload a -records "$RECORDS" \
    -size 100 -ops "$want" "$@" ycsb)
  echo "$out"
  local errors completed tput
  errors=$(echo "$out" | awk -F', ' '/\[OVERALL\], Errors/ {print $3}')
  completed=$(echo "$out" | awk -F', ' '/\[OVERALL\], Operations/ {print $3}')
  tput=$(echo "$out" | awk -F', ' '/\[OVERALL\], Throughput/ {print $3}')
  if [ "${errors:-1}" != "0" ]; then
    echo "::error::cluster smoke ($label): $errors protocol errors"
    for f in "$LOGS"/*.log; do echo "--- $f"; cat "$f"; done
    exit 1
  fi
  if [ "${completed:-0}" != "$want" ]; then
    echo "::error::cluster smoke ($label): completed $completed of $want ops"
    exit 1
  fi
  KOPS=$(awk -v t="${tput:-0}" 'BEGIN {printf "%d", t / 1000}')
  echo "== OK ($label): $completed ops, 0 errors, ${KOPS} Kops/s"
}

# Main soak: synchronous one-op-at-a-time over $CLIENTS workers, with
# the load phase. This is the protocol-correctness gate.
run_ycsb "sync" "$OPS" -clients "$CLIENTS" -load

# Fast path: multi-op batching. This run is also the throughput gate —
# a regression that serializes writes or re-introduces per-op syscalls
# lands far below MIN_KOPS.
run_ycsb "batched" "$OPS" -clients "$CLIENTS" -batch 32
if [ "$KOPS" -lt "$MIN_KOPS" ]; then
  echo "::error::cluster smoke: batched throughput ${KOPS} Kops/s below floor ${MIN_KOPS}"
  exit 1
fi

# Knob sweep: each fast-path configuration once, small op counts, so
# pipelining, batching and a bigger worker pool all stay exercised.
run_ycsb "pipelined" 8000 -clients 2 -pipeline 16
run_ycsb "batch-small" 8000 -clients 2 -batch 8
run_ycsb "many-clients" 8000 -clients 16

echo "== cluster smoke passed"
