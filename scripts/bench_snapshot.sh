#!/usr/bin/env bash
# bench_snapshot.sh — automate the BENCH_N.json capture procedure from
# PERFORMANCE.md: micro-benchmarks (median of -count runs), machine info,
# and optionally the full-render wall clock at several -lanes / -j
# settings. Emits one JSON document on stdout; everything else goes to
# stderr so `scripts/bench_snapshot.sh > /tmp/bench.json` just works.
#
# Usage: scripts/bench_snapshot.sh [-c count] [-r] [-l "1 8"] [-s scale]
#   -c N        benchmark repetitions per package (default 3; medians kept)
#   -r          also measure the full rcgold render wall clock
#   -l "L..."   lane counts for the full render (default "1 8"; needs -r)
#   -s scale    rcgold -scale for the full render (default 0.25)
#
# The "before" half of a snapshot comes from running this script on the
# pre-change commit (e.g. in a git worktree) and diffing the two JSONs;
# the script itself is stateless.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT=3
RENDER=0
LANES="1 8"
SCALE=0.25
while getopts "c:rl:s:" opt; do
  case "$opt" in
    c) COUNT=$OPTARG ;;
    r) RENDER=1 ;;
    l) LANES=$OPTARG ;;
    s) SCALE=$OPTARG ;;
    *) exit 2 ;;
  esac
done

note() { echo "== $*" >&2; }

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

note "micro-benchmarks: public API (count=$COUNT)"
go test -run xxx -bench 'BenchmarkPublicAPI' -benchmem -count "$COUNT" . >>"$RAW"
note "micro-benchmarks: sim, wire, hashtable, transport (count=$COUNT)"
go test -run xxx -bench . -benchmem -count "$COUNT" \
  ./internal/sim ./internal/wire ./internal/hashtable ./internal/transport >>"$RAW"

# Fold the raw `go test -bench` lines into {name: {ns_op, b_op, allocs_op,
# raw_ns[]}} with per-benchmark medians. Benchmark names keep their
# /sub-case suffix; the -N GOMAXPROCS suffix is stripped.
BENCH_JSON=$(awk '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns[name] = ns[name] " " $3
    for (i = 4; i <= NF; i++) {
      if ($(i+1) == "B/op")      b[name] = $i
      if ($(i+1) == "allocs/op") a[name] = $i
    }
  }
  function median(list,   arr, n, i, j, tmp) {
    n = split(list, arr, " ")
    for (i = 2; i <= n; i++)
      for (j = i; j > 1 && arr[j-1] + 0 > arr[j] + 0; j--) {
        tmp = arr[j]; arr[j] = arr[j-1]; arr[j-1] = tmp
      }
    return arr[int((n + 1) / 2)]
  }
  END {
    nn = 0
    for (name in ns) names[++nn] = name
    for (i = 2; i <= nn; i++)
      for (j = i; j > 1 && names[j-1] > names[j]; j--) {
        tmp = names[j]; names[j] = names[j-1]; names[j-1] = tmp
      }
    printf "{"
    sep = ""
    for (k = 1; k <= nn; k++) {
      name = names[k]
      n = split(ns[name], raw, " ")
      printf "%s\n    \"%s\": {\"ns_op\": %s", sep, name, median(ns[name])
      if (name in b) printf ", \"b_op\": %s", b[name]
      if (name in a) printf ", \"allocs_op\": %s", a[name]
      printf ", \"raw_ns\": ["
      for (i = 1; i <= n; i++) printf "%s%s", (i > 1 ? ", " : ""), raw[i]
      printf "]}"
      sep = ","
    }
    printf "\n  }"
  }' "$RAW")

RENDER_JSON="null"
if [ "$RENDER" = 1 ]; then
  note "building rcgold for the full-render measurement"
  GOLD=$(mktemp -d)
  go build -o "$GOLD/rcgold" ./cmd/rcgold
  RENDER_JSON="{"
  sep=""
  for L in $LANES; do
    note "full render: -scale $SCALE -seed 42 -lanes $L"
    start=$(date +%s%N)
    "$GOLD/rcgold" -scale "$SCALE" -seed 42 -lanes "$L" >/dev/null
    end=$(date +%s%N)
    secs=$(( (end - start) / 1000000 ))
    RENDER_JSON="$RENDER_JSON$sep\n    \"lanes_$L\": {\"wall_ms\": $secs}"
    sep=","
  done
  RENDER_JSON="$RENDER_JSON\n  }"
  rm -rf "$GOLD"
fi

CPU_MODEL=$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)

printf '{\n'
printf '  "captured_with": "scripts/bench_snapshot.sh -c %s%s",\n' "$COUNT" \
  "$([ "$RENDER" = 1 ] && printf ' %s' "-r -l \"$LANES\" -s $SCALE")"
printf '  "machine": {\n'
printf '    "goos": "%s",\n' "$(go env GOOS)"
printf '    "goarch": "%s",\n' "$(go env GOARCH)"
printf '    "cpu": "%s",\n' "$CPU_MODEL"
printf '    "cpus_visible": %s,\n' "$(nproc 2>/dev/null || echo 1)"
printf '    "go": "%s"\n' "$(go env GOVERSION)"
printf '  },\n'
printf '  "benchmarks": %s,\n' "$BENCH_JSON"
printf '  "full_render": %b\n' "$RENDER_JSON"
printf '}\n'
