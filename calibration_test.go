package ramcloud

import (
	"testing"

	"ramcloud/internal/core"
	"ramcloud/internal/ycsb"
)

// These tests pin the calibrated model to the paper's anchor measurements.
// Tolerances are generous (the paper itself averages 5 noisy runs) but
// tight enough that a regression in the threading, replication or power
// models fails the suite. They use reduced request counts for speed; the
// full-scale numbers live in EXPERIMENTS.md.

func runCal(t *testing.T, servers, clients, rf int, wl ycsb.Workload, reqs int) *core.Result {
	t.Helper()
	return core.Run(core.Scenario{
		Name:              "cal",
		Servers:           servers,
		Clients:           clients,
		RF:                rf,
		Workload:          wl,
		RequestsPerClient: reqs,
		Seed:              42,
	})
}

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if got < want*(1-tol) || got > want*(1+tol) {
		t.Errorf("%s = %.1f, want %.1f +/- %.0f%%", name, got, want, tol*100)
	}
}

func TestCalSingleClientCPUFloor(t *testing.T) {
	// Paper Table I: one server, one client -> ~49.8% CPU (dispatch core
	// + one spin-hot worker); idle floor is 25%.
	r := runCal(t, 1, 1, 0, ycsb.WorkloadC(50_000, 1024), 40_000)
	within(t, "cpu at 1 client", r.CPUMax*100, 49.8, 0.08)
	within(t, "power at 1 client (W)", r.AvgPowerPerServer, 92, 0.05)
}

func TestCalSingleServerReadCeiling(t *testing.T) {
	// Paper Fig. 1a: one server saturates around 372 Kop/s at 30 clients.
	r := runCal(t, 1, 30, 0, ycsb.WorkloadC(50_000, 1024), 15_000)
	within(t, "single-server ceiling (op/s)", r.Throughput, 372_000, 0.12)
}

func TestCalPerClientReadRate(t *testing.T) {
	// Paper Table II, workload C at 10 clients on 10 servers: 236 Kop/s.
	r := runCal(t, 10, 10, 0, ycsb.WorkloadC(100_000, 1024), 20_000)
	within(t, "C @ 10 clients (op/s)", r.Throughput, 236_000, 0.10)
}

func TestCalUpdateHeavyCollapse(t *testing.T) {
	// Paper Table II, workload A: ~98K at 10 clients, collapsing to ~64K
	// at 90 clients; C is then ~31x A.
	a10 := runCal(t, 10, 10, 0, ycsb.WorkloadA(100_000, 1024), 8_000)
	a90 := runCal(t, 10, 90, 0, ycsb.WorkloadA(100_000, 1024), 4_000)
	within(t, "A @ 10 clients (op/s)", a10.Throughput, 98_000, 0.15)
	within(t, "A @ 90 clients (op/s)", a90.Throughput, 64_000, 0.20)
	if a90.Throughput >= a10.Throughput {
		t.Error("workload A must degrade between 10 and 90 clients")
	}
}

func TestCalReplicationCostsThroughput(t *testing.T) {
	// Paper Fig. 5 @ 10 clients on 20 servers: RF 1 -> RF 4 loses ~45%.
	rf1 := runCal(t, 20, 10, 1, ycsb.WorkloadA(100_000, 1024), 5_000)
	rf4 := runCal(t, 20, 10, 4, ycsb.WorkloadA(100_000, 1024), 5_000)
	if rf4.Throughput >= rf1.Throughput {
		t.Fatalf("RF4 (%.0f) should be slower than RF1 (%.0f)", rf4.Throughput, rf1.Throughput)
	}
	drop := 1 - rf4.Throughput/rf1.Throughput
	if drop < 0.15 || drop > 0.70 {
		t.Errorf("RF1->RF4 drop = %.0f%%, want in [15%%, 70%%] (paper: 45%%)", drop*100)
	}
}

func TestCalRecoveryGrowsWithRF(t *testing.T) {
	// Paper Fig. 11a: recovery time grows with the replication factor.
	recTime := func(rf int) float64 {
		r := core.Run(core.Scenario{
			Name:        "cal-rec",
			Servers:     9,
			Clients:     0,
			RF:          rf,
			Workload:    ycsb.Workload{RecordCount: 300_000, RecordSize: 1024},
			KillAfter:   5_000_000_000,
			KillTarget:  4,
			IdleSeconds: 3,
			Seed:        42,
		})
		if !r.Recovered {
			t.Fatalf("rf=%d never recovered", rf)
		}
		return r.RecoveryTime.Seconds()
	}
	t1, t4 := recTime(1), recTime(4)
	if t4 <= t1*1.15 {
		t.Errorf("recovery time RF4 (%.2fs) should exceed RF1 (%.2fs) by >15%%", t4, t1)
	}
}

func TestCalIdlePowerFloor(t *testing.T) {
	// A running but idle server burns one polling core: ~76-77W.
	r := core.Run(core.Scenario{
		Name: "cal-idle", Servers: 3, Clients: 0,
		Workload:    ycsb.Workload{RecordCount: 20_000, RecordSize: 1024},
		IdleSeconds: 5, Seed: 42,
	})
	within(t, "idle power (W)", r.AvgPowerPerServer, 76.5, 0.04)
	within(t, "idle CPU (%)", r.CPUMax*100, 25, 0.05)
}
