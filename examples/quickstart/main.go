// Quickstart: bring up a 3-server replicated cluster, write, read and
// delete a few objects, and print the energy the cluster consumed.
package main

import (
	"fmt"
	"log"

	"ramcloud"
)

func main() {
	sim := ramcloud.NewSimulation(ramcloud.Options{
		Servers:           3,
		ReplicationFactor: 2,
		Seed:              1,
	})
	table := sim.CreateTable("quickstart")

	sim.Spawn("app", func(c *ramcloud.Client) {
		if err := c.Write(table, []byte("greeting"), []byte("hello, ramcloud")); err != nil {
			log.Fatalf("write: %v", err)
		}
		v, err := c.Read(table, []byte("greeting"))
		if err != nil {
			log.Fatalf("read: %v", err)
		}
		fmt.Printf("read back: %q (latency stats below)\n", v)

		for i := 0; i < 1000; i++ {
			key := []byte(fmt.Sprintf("key-%04d", i))
			if err := c.WriteLen(table, key, 1024); err != nil {
				log.Fatalf("write %d: %v", i, err)
			}
		}
		n, err := c.ReadLen(table, []byte("key-0500"))
		if err != nil || n != 1024 {
			log.Fatalf("read len = %d, err = %v", n, err)
		}
		if err := c.Delete(table, []byte("key-0500")); err != nil {
			log.Fatalf("delete: %v", err)
		}
		if _, err := c.Read(table, []byte("key-0500")); err != ramcloud.ErrNotFound {
			log.Fatalf("expected ErrNotFound, got %v", err)
		}
		fmt.Printf("write latency: %s\n", c.Stats().WriteLatency.Summary(1000, "us"))
		fmt.Printf("read latency:  %s\n", c.Stats().ReadLatency.Summary(1000, "us"))
	})
	sim.Run()

	rep := sim.EnergyReport()
	fmt.Printf("virtual duration: %v\n", sim.Now())
	fmt.Printf("cluster energy: %.1f J (%.1f W/server avg), %.0f ops/J\n",
		rep.TotalJoules, rep.MeanNodeWatts(), rep.EnergyEfficiency())
}
