// Energysizing: the paper's Discussion (Section IX.A) asks "how to choose
// the right cluster size?" — for read-only load, fewer servers are more
// energy-efficient; with replication and updates, more servers win
// (Findings 1 vs 4). This example sweeps cluster sizes for both regimes
// and prints the ops/joule crossover an operator would use.
package main

import (
	"fmt"

	"ramcloud"
)

func measure(servers, rf int, workload string, clients int) (perNodeEff, clusterEff, throughput float64) {
	sim := ramcloud.NewSimulation(ramcloud.Options{
		Servers:           servers,
		ReplicationFactor: rf,
		Seed:              5,
	})
	table := sim.CreateTable("sizing")
	sim.BulkLoad(table, 50_000, 1024)
	for i := 0; i < clients; i++ {
		i := i
		sim.Spawn(fmt.Sprintf("c%d", i), func(c *ramcloud.Client) {
			_ = c.RunWorkload(table, workload, 50_000, 4000, 0, int64(i))
		})
	}
	sim.Run()
	rep := sim.EnergyReport()
	thr := float64(rep.Ops) / sim.Now().Seconds()
	return thr / rep.MeanNodeWatts(), rep.EnergyEfficiency(), thr
}

func main() {
	fmt.Println("read-only workload C, no replication (paper Finding 1):")
	fmt.Println("servers  throughput(op/s)  cluster op/J  op/s per node-watt")
	for _, n := range []int{2, 4, 8} {
		perNode, cluster, thr := measure(n, 0, "c", 12)
		fmt.Printf("%7d  %16.0f  %12.0f  %18.0f\n", n, thr, cluster, perNode)
	}

	fmt.Println("\nupdate-heavy workload A, RF 3 (paper Finding 4):")
	fmt.Println("servers  throughput(op/s)  cluster op/J  op/s per node-watt")
	for _, n := range []int{4, 8, 12} {
		perNode, cluster, thr := measure(n, 3, "a", 24)
		fmt.Printf("%7d  %16.0f  %12.0f  %18.0f\n", n, thr, cluster, perNode)
	}

	fmt.Println("\ntakeaway: for read-only loads a small cluster maximizes cluster-wide")
	fmt.Println("ops/joule (Finding 1). For replicated update-heavy loads, adding servers")
	fmt.Println("keeps raising throughput per node-watt - the paper's Fig. 8 metric -")
	fmt.Println("because contention, not load, wastes the energy (Finding 4).")
}
