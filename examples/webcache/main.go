// Webcache: the paper's motivating scenario — a large web application
// (Facebook-style) serving a read-dominated workload with a ~30:1 GET/SET
// ratio from DRAM. Ten front-end clients hammer a 5-server cluster; we
// report tail latency, throughput and the energy bill.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ramcloud"
)

const (
	records  = 50_000
	requests = 20_000
	getRatio = 30 // GET:SET of 30:1, per Atikoglu et al. (paper ref [3])
)

func main() {
	sim := ramcloud.NewSimulation(ramcloud.Options{
		Servers:           5,
		ReplicationFactor: 3, // production durability
		Seed:              7,
	})
	table := sim.CreateTable("webcache")
	sim.BulkLoad(table, records, 1024)

	for i := 0; i < 10; i++ {
		i := i
		sim.Spawn(fmt.Sprintf("frontend-%d", i), func(c *ramcloud.Client) {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			for op := 0; op < requests; op++ {
				key := []byte(fmt.Sprintf("user%010d", rng.Intn(records)))
				if rng.Intn(getRatio+1) == 0 {
					if err := c.WriteLen(table, key, 1024); err != nil {
						log.Fatalf("set: %v", err)
					}
				} else {
					if _, err := c.ReadLen(table, key); err != nil && err != ramcloud.ErrNotFound {
						log.Fatalf("get: %v", err)
					}
				}
			}
			fmt.Printf("frontend-%d: GET %s\n", i, c.Stats().ReadLatency.Summary(1000, "us"))
		})
	}
	sim.Run()

	rep := sim.EnergyReport()
	secs := sim.Now().Seconds()
	fmt.Printf("\n%d ops in %.2fs virtual -> %.0f op/s aggregate\n",
		rep.Ops, secs, float64(rep.Ops)/secs)
	fmt.Printf("energy: %.1f J total, %.1f W/server, %.0f ops/J\n",
		rep.TotalJoules, rep.MeanNodeWatts(), rep.EnergyEfficiency())
}
