// Loadshape: the paper's central finding is that RAMCloud's power draw
// barely tracks offered load (Fig. 1b: near-flat watts from idle to 98%
// CPU), which is invisible to a constant-intensity benchmark. This
// example drives a diurnal traffic curve — night trough, morning ramp,
// daytime sine, evening burst — through open-loop Poisson clients and a
// concurrent batch tenant, then prints joules versus delivered load per
// phase: the energy-proportionality picture an operator actually pays.
package main

import (
	"fmt"
	"time"

	"ramcloud"
)

func main() {
	m, err := ramcloud.RunScenario(ramcloud.Scenario{
		Servers: 4,
		Seed:    7,
		Groups: []ramcloud.ClientGroup{
			{
				Name: "frontend", Clients: 4, Workload: "C",
				Arrival: ramcloud.ArrivalOpen, Rate: 8000,
			},
			{
				// A nightly batch tenant that wakes during the trough.
				Name: "reports", Clients: 1, Workload: "A",
				Requests: 5000, Start: 1 * time.Second,
			},
		},
		Phases: []ramcloud.LoadPhase{
			{Name: "night", Shape: ramcloud.ShapeConstant, Duration: 4 * time.Second, From: 0.15},
			{Name: "morning", Shape: ramcloud.ShapeRamp, Duration: 5 * time.Second, From: 0.15, To: 1.0},
			{Name: "day", Shape: ramcloud.ShapeSine, Duration: 8 * time.Second, From: 0.7, To: 1.0, Period: 8 * time.Second},
			{Name: "burst", Shape: ramcloud.ShapeStep, Duration: 3 * time.Second, From: 1.0, To: 1.5, Steps: 2},
			{Name: "evening", Shape: ramcloud.ShapeRamp, Duration: 4 * time.Second, From: 1.0, To: 0.25},
		},
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("diurnal run: %d ops over %v, %.1f W/server mean\n\n",
		m.TotalOps, m.Duration.Round(time.Millisecond), m.AvgPowerPerServer)

	fmt.Println("phase      shape  offered   Kop/s  W/server     op/J")
	for _, ph := range m.Phases {
		fmt.Printf("%-10s %-6s %6.2fx %7.1f %9.1f %8.0f\n",
			ph.Phase, ph.Shape, ph.OfferedScale, ph.Throughput/1000,
			ph.AvgPowerPerServer, ph.OpsPerJoule)
	}

	fmt.Println("\ntenant     arrival  ops      op/s    p99 read (us)  joules")
	for _, g := range m.Groups {
		fmt.Printf("%-10s %-8s %-8d %-7.0f %-14.0f %.0f\n",
			g.Group, g.Arrival, g.TotalOps, g.Throughput, g.ReadP99Us, g.Joules)
	}

	fmt.Println("\nthe op/J column is the proportionality story: joules per op at the")
	fmt.Println("night trough cost several times the daytime rate, because idle watts")
	fmt.Println("dominate whenever delivered load falls (paper Findings 1-2).")
}
