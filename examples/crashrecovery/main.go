// Crashrecovery: kill a server mid-workload and watch RAMCloud's
// distributed recovery restore availability — the paper's Section VII
// scenario as an application would experience it. Every acknowledged
// write must survive the crash.
package main

import (
	"fmt"
	"log"
	"time"

	"ramcloud"
)

const records = 20_000

func main() {
	sim := ramcloud.NewSimulation(ramcloud.Options{
		Servers:           5,
		ReplicationFactor: 3,
		Seed:              13,
	})
	table := sim.CreateTable("critical-data")
	sim.BulkLoad(table, records, 1024)

	sim.Spawn("operator", func(c *ramcloud.Client) {
		// Overwrite a slice of the keyspace so acked writes are at stake.
		for i := 0; i < 2000; i++ {
			key := []byte(fmt.Sprintf("user%010d", i))
			if err := c.WriteLen(table, key, 2048); err != nil {
				log.Fatalf("write: %v", err)
			}
		}
		fmt.Printf("t=%v: 2000 writes acknowledged; killing server 2\n", c.Now())
		killedAt := c.Now()
		sim.KillServer(2)

		for sim.RecoveryCount() == 0 {
			c.Sleep(250 * time.Millisecond)
		}
		fmt.Printf("t=%v: recovery complete (%v after the kill)\n", c.Now(), c.Now()-killedAt)

		lost := 0
		for i := 0; i < records; i++ {
			key := []byte(fmt.Sprintf("user%010d", i))
			want := 1024
			if i < 2000 {
				want = 2048
			}
			if n, err := c.ReadLen(table, key); err != nil || n != want {
				lost++
			}
		}
		if lost > 0 {
			log.Fatalf("%d records lost after recovery", lost)
		}
		fmt.Printf("all %d records (including every acknowledged overwrite) intact\n", records)
	})
	sim.Run()
}
