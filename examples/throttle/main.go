// Throttle: the paper's Fig. 13 mitigation as an application pattern —
// under update-heavy load a RAMCloud cluster collapses when clients push
// as fast as they can, but paced clients (Facebook-style back-off) keep
// aggregate throughput linear and avoid timeouts.
package main

import (
	"fmt"

	"ramcloud"
)

func run(rate float64, clients int) (opsPerSec float64) {
	sim := ramcloud.NewSimulation(ramcloud.Options{
		Servers:           4,
		ReplicationFactor: 2,
		Seed:              3,
	})
	table := sim.CreateTable("t")
	sim.BulkLoad(table, 20_000, 1024)
	requests := 3000
	if rate > 0 {
		requests = int(rate * 10) // ~10 virtual seconds of paced load
	}
	for i := 0; i < clients; i++ {
		i := i
		sim.Spawn(fmt.Sprintf("c%d", i), func(c *ramcloud.Client) {
			_ = c.RunWorkload(table, "a", 20_000, requests, rate, int64(i))
		})
	}
	sim.Run()
	rep := sim.EnergyReport()
	return float64(rep.Ops) / sim.Now().Seconds()
}

func main() {
	fmt.Println("update-heavy workload A on 4 servers, RF 2")
	fmt.Println("clients  mode            aggregate op/s")
	for _, clients := range []int{8, 16, 32} {
		unthrottled := run(0, clients)
		paced := run(500, clients)
		fmt.Printf("%7d  unthrottled  %14.0f\n", clients, unthrottled)
		fmt.Printf("%7d  paced 500/s  %14.0f (ideal %d)\n", clients, paced, clients*500)
	}
	fmt.Println("\npaced clients scale linearly with client count; unthrottled clients")
	fmt.Println("saturate the cluster and gain nothing beyond the collapse point.")
}
