// Package ramcloud is a simulation-grade reproduction of the RAMCloud
// in-memory storage system and of the ICDCS 2017 characterization study
// "Characterizing Performance and Energy-Efficiency of The RAMCloud
// Storage System" (Taleb, Ibrahim, Antoniu, Cortes).
//
// The package offers three things:
//
//   - A complete RAMCloud-class storage system: coordinator, masters with
//     log-structured memory and hash-table indexes, backups with DRAM
//     staging and disk spill, synchronous primary-backup replication, and
//     distributed crash recovery.
//   - A deterministic simulated testbed modeled on the paper's Grid'5000
//     Nancy cluster: 4-core nodes, Infiniband-class fabric, HDDs, and
//     PDU power metering with a calibrated power model.
//   - The paper's measurement harness: every table and figure of the
//     evaluation can be regenerated (see Experiments and cmd/rcbench).
//
// Applications script workloads against a Simulation:
//
//	sim := ramcloud.NewSimulation(ramcloud.Options{Servers: 3})
//	table := sim.CreateTable("usertable")
//	sim.Spawn("app", func(c *ramcloud.Client) {
//	    c.Write(table, []byte("k"), []byte("v"))
//	    v, _ := c.Read(table, []byte("k"))
//	    fmt.Println(string(v))
//	})
//	sim.Run()
//
// All time inside the simulation is virtual: a million operations cost
// milliseconds of wall clock, and runs are fully deterministic for a
// given seed.
//
// Experiment regeneration executes its scenario grids on a worker pool of
// up to Parallelism() concurrent simulations and memoizes every distinct
// scenario's result process-wide (see RunExperiment); long-lived
// embedders call ResetExperimentCache between batches to bound that
// cache's growth.
package ramcloud

import (
	"errors"
	"fmt"
	"time"

	"ramcloud/internal/client"
	"ramcloud/internal/core"
	"ramcloud/internal/energy"
	"ramcloud/internal/sim"
	"ramcloud/internal/ycsb"
)

// Client errors surfaced by the public API.
var (
	// ErrNotFound reports a read or delete of an absent key.
	ErrNotFound = client.ErrNotFound
	// ErrUnavailable reports an operation that exhausted its retries.
	ErrUnavailable = client.ErrUnavailable
	// ErrNoTable reports an operation against a table the cluster does not
	// know (an invalid Table handle).
	ErrNoTable = client.ErrNoTable
)

// ErrUnknownExperiment reports an invalid experiment id.
var ErrUnknownExperiment = errors.New("ramcloud: unknown experiment")

// Options configures a simulated cluster.
type Options struct {
	// Servers is the number of storage servers (master + backup each).
	// Default 3.
	Servers int
	// ReplicationFactor is the number of backup replicas per segment.
	// 0 disables replication (the paper's Sections IV-V configuration).
	ReplicationFactor int
	// Seed drives all randomness; runs with equal seeds are identical.
	// Default 1.
	Seed int64
	// SegmentBytes overrides the 8 MB log segment size.
	SegmentBytes int
	// LogBytes overrides the 10 GB per-server log capacity.
	LogBytes int64
	// RealPayloads stores actual value bytes (examples, small data). When
	// false, values are virtual: only declared lengths flow through the
	// system, allowing paper-scale datasets in modest host memory.
	RealPayloads bool
}

// Simulation is a running simulated cluster plus its virtual clock.
type Simulation struct {
	opts    Options
	eng     *sim.Engine
	cluster *core.Cluster
	done    *sim.WaitGroup
	clients int
}

// NewSimulation builds and starts a cluster.
func NewSimulation(opts Options) *Simulation {
	if opts.Servers <= 0 {
		opts.Servers = 3
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	profile := core.DefaultProfile()
	if opts.SegmentBytes > 0 {
		profile.Server.Log.SegmentBytes = opts.SegmentBytes
	}
	if opts.LogBytes > 0 {
		profile.Server.Log.TotalBytes = opts.LogBytes
	}
	eng := sim.New(opts.Seed)
	cl := core.NewCluster(eng, profile, opts.Servers, opts.ReplicationFactor)
	cl.Start()
	return &Simulation{opts: opts, eng: eng, cluster: cl, done: sim.NewWaitGroup(eng)}
}

// Table identifies a created table.
type Table uint64

// CreateTable creates a table spanning every server, like the paper's
// ServerSpan = cluster size configuration.
func (s *Simulation) CreateTable(name string) Table {
	return Table(s.cluster.CreateTable(name))
}

// BulkLoad fills a table with n fixed-size records keyed user0000000000..
// in zero simulated time (the YCSB load phase).
func (s *Simulation) BulkLoad(table Table, records int, recordSize int) {
	s.cluster.BulkLoad(uint64(table), records, recordSize)
}

// Client is a storage client bound to one scripted proc. Its methods may
// only be used inside the function passed to Spawn.
type Client struct {
	p *sim.Proc
	c *client.Client
}

// Spawn schedules fn to run as a simulated client application. Each spawn
// gets its own client node on the fabric. fn runs during Run.
func (s *Simulation) Spawn(name string, fn func(c *Client)) {
	cl := s.cluster.NewClient()
	s.clients++
	s.done.Add(1)
	s.eng.Go(name, func(p *sim.Proc) {
		defer s.done.Done()
		p.Sleep(sim.Millisecond) // let cluster bring-up settle
		fn(&Client{p: p, c: cl})
	})
}

// Run executes the simulation until every spawned client finishes.
func (s *Simulation) Run() {
	s.eng.Go("ramcloud-controller", func(p *sim.Proc) {
		s.done.Wait(p)
		p.Sleep(sim.Second) // final PDU tick
		s.cluster.StopMetering()
		s.eng.Stop()
	})
	s.eng.Run()
	s.eng.Shutdown()
}

// RunFor executes the simulation for a fixed span of virtual time,
// whether or not clients have finished.
func (s *Simulation) RunFor(d time.Duration) {
	s.eng.RunUntil(s.eng.Now().Add(sim.Duration(d)))
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration {
	return time.Duration(s.eng.Now())
}

// KillServer crashes server index i (0-based); the coordinator's failure
// detector triggers distributed recovery.
func (s *Simulation) KillServer(i int) {
	if i < 0 || i >= len(s.cluster.Servers) {
		panic(fmt.Sprintf("ramcloud: no server %d", i))
	}
	s.cluster.KillServer(i)
}

// Servers returns the number of storage servers.
func (s *Simulation) Servers() int { return len(s.cluster.Servers) }

// RecoveryCount returns how many crash recoveries have completed.
func (s *Simulation) RecoveryCount() int { return len(s.cluster.Coord.Records()) }

// EnergyReport summarizes power and energy over the first n seconds of
// the run (n <= 0 means everything sampled so far).
func (s *Simulation) EnergyReport() energy.Report {
	end := int(int64(s.eng.Now()) / int64(sim.Second))
	var ops int64
	for _, c := range s.cluster.Clients {
		ops += c.Stats().Ops.Value()
	}
	return s.cluster.EnergyReport(0, end, ops)
}

// Read fetches a value. With virtual payloads (the default) the returned
// slice is nil and only its declared length is meaningful; use ValueLen
// in that case.
func (c *Client) Read(table Table, key []byte) ([]byte, error) {
	_, v, err := c.c.Read(c.p, uint64(table), key)
	return v, err
}

// ReadLen fetches a value's declared length without materializing bytes.
func (c *Client) ReadLen(table Table, key []byte) (int, error) {
	n, _, err := c.c.Read(c.p, uint64(table), key)
	return int(n), err
}

// Write stores a value durably (replicated when the cluster has a
// replication factor).
func (c *Client) Write(table Table, key, value []byte) error {
	return c.c.Write(c.p, uint64(table), key, uint32(len(value)), value)
}

// WriteLen stores a virtual value of the given length.
func (c *Client) WriteLen(table Table, key []byte, valueLen int) error {
	return c.c.Write(c.p, uint64(table), key, uint32(valueLen), nil)
}

// Delete removes a key.
func (c *Client) Delete(table Table, key []byte) error {
	return c.c.Delete(c.p, uint64(table), key)
}

// Multi-op batching ---------------------------------------------------------

// MultiReadResult is one key's outcome in a MultiRead. Results are
// positional: result i answers keys[i].
type MultiReadResult struct {
	Value    []byte // nil under virtual payloads
	ValueLen int    // declared length, always valid
	Version  uint64
	Err      error // nil, ErrNotFound, ErrNoTable, or ErrUnavailable
}

// MultiRead fetches a batch of keys in at most one RPC per involved
// master — RAMCloud's MultiRead. Batching amortizes client request
// generation and server dispatch, so a batched client can far exceed the
// per-op closed-loop rate (see the "batch" experiment).
func (c *Client) MultiRead(table Table, keys ...[]byte) []MultiReadResult {
	rs := c.c.MultiRead(c.p, uint64(table), keys)
	out := make([]MultiReadResult, len(rs))
	for i, r := range rs {
		out[i] = MultiReadResult{Value: r.Value, ValueLen: int(r.ValueLen), Version: r.Version, Err: r.Err}
	}
	return out
}

// WriteOp is one write in a MultiWrite batch. Leave Value nil and set
// ValueLen for a virtual payload.
type WriteOp struct {
	Key      []byte
	Value    []byte
	ValueLen int // used when Value is nil; otherwise len(Value) wins
}

// MultiWrite stores a batch of objects in at most one RPC per involved
// master. Each master appends its share under a single log-head
// acquisition and replicates it in one fan-out per segment. The returned
// slice is positional; a nil error means that item is durably written.
func (c *Client) MultiWrite(table Table, ops []WriteOp) []error {
	items := make([]client.MultiWriteOp, len(ops))
	for i, op := range ops {
		vl := uint32(op.ValueLen)
		if op.Value != nil {
			vl = uint32(len(op.Value))
		}
		items[i] = client.MultiWriteOp{Key: op.Key, ValueLen: vl, Value: op.Value}
	}
	rs := c.c.MultiWrite(c.p, uint64(table), items)
	out := make([]error, len(rs))
	for i, r := range rs {
		out[i] = r.Err
	}
	return out
}

// Asynchronous operations ---------------------------------------------------

// Future is a pending asynchronous operation. The RPC is already in
// flight; Wait blocks until it completes, driving retries exactly like the
// synchronous methods. A client may keep many futures outstanding to
// pipeline round trips.
type Future struct {
	c  *Client
	op *client.Op
}

// ReadAsync issues a read without waiting and returns its future.
func (c *Client) ReadAsync(table Table, key []byte) *Future {
	return &Future{c: c, op: c.c.ReadAsync(c.p, uint64(table), key)}
}

// WriteAsync issues a write without waiting for durability.
func (c *Client) WriteAsync(table Table, key, value []byte) *Future {
	return &Future{c: c, op: c.c.WriteAsync(c.p, uint64(table), key, uint32(len(value)), value)}
}

// WriteLenAsync issues a virtual-payload write without waiting.
func (c *Client) WriteLenAsync(table Table, key []byte, valueLen int) *Future {
	return &Future{c: c, op: c.c.WriteAsync(c.p, uint64(table), key, uint32(valueLen), nil)}
}

// DeleteAsync issues a delete without waiting.
func (c *Client) DeleteAsync(table Table, key []byte) *Future {
	return &Future{c: c, op: c.c.DeleteAsync(c.p, uint64(table), key)}
}

// Done reports whether the operation's current attempt has its response.
// It is a readiness hint: Wait usually returns immediately once Done is
// true, but a retryable response (a moved tablet, a busy server) still
// makes Wait drive further attempts before returning.
func (f *Future) Done() bool { return f.op.Done() }

// Wait blocks until the operation completes. For reads it returns the
// value bytes (nil under virtual payloads); for writes and deletes, nil.
func (f *Future) Wait() ([]byte, error) {
	_, v, err := f.op.Wait(f.c.p)
	return v, err
}

// WaitLen blocks until the operation completes and returns a read's
// declared value length without materializing bytes.
func (f *Future) WaitLen() (int, error) {
	n, _, err := f.op.Wait(f.c.p)
	return int(n), err
}

// Sleep pauses the client for a span of virtual time.
func (c *Client) Sleep(d time.Duration) { c.p.Sleep(sim.Duration(d)) }

// Now returns the current virtual time.
func (c *Client) Now() time.Duration { return time.Duration(c.p.Now()) }

// Stats exposes the client's latency and throughput measurements.
func (c *Client) Stats() *client.Stats { return c.c.Stats() }

// RunWorkload drives this client through a YCSB workload: n requests of
// the given mix against the table, optionally throttled to rate ops/s.
func (c *Client) RunWorkload(table Table, workload string, records, requests int, rate float64, seed int64) error {
	return c.RunWorkloadOpts(table, workload, WorkloadOptions{
		Records: records, Requests: requests, Rate: rate, Seed: seed,
	})
}

// WorkloadOptions tunes RunWorkloadOpts beyond the paper's closed loop.
type WorkloadOptions struct {
	Records    int
	Requests   int
	RecordSize int     // value bytes per record; default 1024 (the paper's)
	Rate       float64 // client-side throttle in ops/s; 0 = unthrottled
	Seed       int64

	// BatchSize > 1 groups ops into MultiRead/MultiWrite batches (YCSB's
	// multiget mode); Window > 1 pipelines through the async API instead.
	BatchSize int
	Window    int
}

// RunWorkloadOpts drives this client through a YCSB workload with batched
// or pipelined request issue (see WorkloadOptions).
func (c *Client) RunWorkloadOpts(table Table, workload string, opts WorkloadOptions) error {
	size := opts.RecordSize
	if size <= 0 {
		size = 1024
	}
	w, err := ycsb.ByName(workload, opts.Records, size)
	if err != nil {
		return err
	}
	res := ycsb.RunClient(c.p, c.c, w, ycsb.RunOptions{
		Table:     uint64(table),
		Requests:  opts.Requests,
		Rate:      opts.Rate,
		Seed:      opts.Seed,
		BatchSize: opts.BatchSize,
		Window:    opts.Window,
	})
	if res.Errors > 0 {
		return fmt.Errorf("ramcloud: workload finished with %d errors: %w", res.Errors, ErrUnavailable)
	}
	return nil
}

// Composable scenarios -------------------------------------------------------

// Arrival selects how a client group issues requests.
type Arrival string

// Arrival modes. ArrivalClosed is the paper's loop: issue, wait, repeat.
// ArrivalOpen issues at Poisson arrivals targeting Rate ops/s regardless
// of completions, so measured latency includes queueing delay.
// ArrivalBatched groups operations into MultiRead/MultiWrite RPCs and
// ArrivalWindowed pipelines through the async API.
const (
	ArrivalClosed   Arrival = "closed"
	ArrivalOpen     Arrival = "open"
	ArrivalBatched  Arrival = "batched"
	ArrivalWindowed Arrival = "windowed"
)

// Shape selects a load phase's wave form.
type Shape string

// Load shapes: constant holds From; ramp moves linearly From -> To; step
// jumps From -> To in Steps discrete levels; sine oscillates between From
// and To (crest at To) with the given Period.
const (
	ShapeConstant Shape = "constant"
	ShapeRamp     Shape = "ramp"
	ShapeStep     Shape = "step"
	ShapeSine     Shape = "sine"
)

// ClientGroup is one homogeneous client population in a Scenario: its own
// workload, arrival mode, rate target and lifetime. Several groups run
// concurrently against the same cluster (mixed tenants).
type ClientGroup struct {
	Name    string
	Clients int

	// Workload is a YCSB core workload letter: "A", "B" or "C".
	Workload   string
	Records    int // records preloaded and addressed (default 100_000)
	RecordSize int // value bytes per record (default 1024, the paper's)

	// Requests bounds each client; 0 means "until Stop or the end of the
	// phase schedule".
	Requests int

	Arrival Arrival // default: closed (or batched/windowed when set below)
	// Rate is the per-client target in ops/s: a throttle for closed
	// loops (0 = unthrottled) or the Poisson arrival rate for open loops
	// (required there). Load phases modulate it.
	Rate      float64
	BatchSize int
	Window    int

	// Start delays the group's clients; Stop (when > 0) ends issuing at
	// that offset from scenario start.
	Start time.Duration
	Stop  time.Duration
}

// LoadPhase modulates every group's Rate over one span of virtual time.
// Phases run back to back from scenario start.
type LoadPhase struct {
	Name     string
	Shape    Shape
	Duration time.Duration
	From, To float64       // rate multipliers (1.0 = the group's base Rate)
	Period   time.Duration // sine wavelength (default: the phase duration)
	Steps    int           // step count for ShapeStep (default 4)
}

// Scenario describes one measured run of heterogeneous client groups
// under an optional load-phase schedule.
type Scenario struct {
	Servers           int // default 3
	ReplicationFactor int
	Seed              int64 // default 42

	Groups []ClientGroup
	Phases []LoadPhase
}

// GroupMetrics is one group's share of a scenario run. Joules are
// attributed activity-proportionally: each second's cluster energy is
// split across groups by their share of delivered operations.
type GroupMetrics struct {
	Group      string
	Arrival    string
	Clients    int
	TotalOps   int64
	Throughput float64 // ops/s over the group's active seconds

	ReadMeanUs, ReadP99Us   float64
	WriteMeanUs, WriteP99Us float64

	Timeouts, Failures int64

	Joules      float64
	OpsPerJoule float64
}

// PhaseMetrics is one load phase's slice of a scenario run.
type PhaseMetrics struct {
	Phase string
	Shape string

	Start, End time.Duration // second-aligned window covered by the phase

	OfferedScale      float64 // mean rate multiplier across the phase
	Ops               int64
	Throughput        float64
	AvgPowerPerServer float64
	Joules            float64
	OpsPerJoule       float64
}

// ScenarioMetrics is everything a RunScenario call measures.
type ScenarioMetrics struct {
	TotalOps          int64
	Duration          time.Duration
	Throughput        float64
	AvgPowerPerServer float64
	TotalJoules       float64
	OpsPerJoule       float64

	Groups []GroupMetrics
	Phases []PhaseMetrics
}

// RunScenario executes a composable scenario — heterogeneous client
// groups under an optional load-phase schedule — on a dedicated simulated
// cluster and returns per-run, per-group and per-phase measurements.
// Runs are deterministic for a given seed.
func RunScenario(s Scenario) (*ScenarioMetrics, error) {
	if s.Servers <= 0 {
		s.Servers = 3
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if len(s.Groups) == 0 {
		return nil, errors.New("ramcloud: scenario needs at least one client group")
	}
	cs := core.Scenario{
		Name:    "scenario",
		Servers: s.Servers,
		RF:      s.ReplicationFactor,
		Seed:    s.Seed,
	}
	for _, g := range s.Groups {
		records := g.Records
		if records <= 0 {
			records = 100_000
		}
		size := g.RecordSize
		if size <= 0 {
			size = 1024
		}
		w, err := ycsb.ByName(g.Workload, records, size)
		if err != nil {
			return nil, fmt.Errorf("ramcloud: group %q: %w", g.Name, err)
		}
		mode := core.ArrivalDefault
		switch g.Arrival {
		case "":
		case ArrivalClosed:
			mode = core.ArrivalClosed
		case ArrivalOpen:
			if g.Rate <= 0 {
				return nil, fmt.Errorf("ramcloud: open-loop group %q needs Rate > 0", g.Name)
			}
			mode = core.ArrivalOpen
		case ArrivalBatched:
			if g.BatchSize < 2 {
				return nil, fmt.Errorf("ramcloud: batched group %q needs BatchSize > 1", g.Name)
			}
			mode = core.ArrivalBatched
		case ArrivalWindowed:
			if g.Window < 2 {
				return nil, fmt.Errorf("ramcloud: windowed group %q needs Window > 1", g.Name)
			}
			mode = core.ArrivalWindowed
		default:
			return nil, fmt.Errorf("ramcloud: group %q: unknown arrival mode %q", g.Name, g.Arrival)
		}
		if g.Requests <= 0 && g.Stop == 0 && len(s.Phases) == 0 {
			return nil, fmt.Errorf("ramcloud: group %q needs Requests, Stop or phases", g.Name)
		}
		cs.Groups = append(cs.Groups, core.ClientGroup{
			Name:              g.Name,
			Clients:           g.Clients,
			Workload:          w,
			RequestsPerClient: g.Requests,
			Arrival:           mode,
			Rate:              g.Rate,
			BatchSize:         g.BatchSize,
			Window:            g.Window,
			Start:             sim.Duration(g.Start),
			Stop:              sim.Duration(g.Stop),
		})
	}
	for _, ph := range s.Phases {
		if ph.Duration <= 0 {
			return nil, fmt.Errorf("ramcloud: phase %q needs a positive Duration", ph.Name)
		}
		shape := core.ShapeConstant
		switch ph.Shape {
		case "", ShapeConstant:
		case ShapeRamp:
			shape = core.ShapeRamp
		case ShapeStep:
			shape = core.ShapeStep
		case ShapeSine:
			shape = core.ShapeSine
		default:
			return nil, fmt.Errorf("ramcloud: phase %q: unknown shape %q", ph.Name, ph.Shape)
		}
		cs.Phases = append(cs.Phases, core.LoadPhase{
			Name:     ph.Name,
			Shape:    shape,
			Duration: sim.Duration(ph.Duration),
			From:     ph.From,
			To:       ph.To,
			Period:   sim.Duration(ph.Period),
			Steps:    ph.Steps,
		})
	}

	r := core.Run(cs)
	out := &ScenarioMetrics{
		TotalOps:          r.TotalOps,
		Duration:          time.Duration(r.Duration),
		Throughput:        r.Throughput,
		AvgPowerPerServer: r.AvgPowerPerServer,
		TotalJoules:       r.TotalJoules,
		OpsPerJoule:       r.OpsPerJoule,
	}
	for _, g := range r.Groups {
		out.Groups = append(out.Groups, GroupMetrics{
			Group:       g.Group,
			Arrival:     g.Arrival,
			Clients:     g.Clients,
			TotalOps:    g.TotalOps,
			Throughput:  g.Throughput,
			ReadMeanUs:  g.ReadLatency.Mean() / 1000,
			ReadP99Us:   float64(g.ReadLatency.Quantile(0.99)) / 1000,
			WriteMeanUs: g.WriteLatency.Mean() / 1000,
			WriteP99Us:  float64(g.WriteLatency.Quantile(0.99)) / 1000,
			Timeouts:    g.Timeouts,
			Failures:    g.Failures,
			Joules:      g.Joules,
			OpsPerJoule: g.OpsPerJoule,
		})
	}
	for _, ph := range r.Phases {
		out.Phases = append(out.Phases, PhaseMetrics{
			Phase:             ph.Phase,
			Shape:             ph.Shape,
			Start:             time.Duration(ph.StartSec) * time.Second,
			End:               time.Duration(ph.EndSec) * time.Second,
			OfferedScale:      ph.OfferedScale,
			Ops:               ph.Ops,
			Throughput:        ph.Throughput,
			AvgPowerPerServer: ph.AvgPowerPerServer,
			Joules:            ph.Joules,
			OpsPerJoule:       ph.OpsPerJoule,
		})
	}
	return out, nil
}

// Experiment mirror of internal/core for external callers ------------------

// ExperimentIDs lists the reproducible paper artifacts in paper order.
func ExperimentIDs() []string {
	exps := core.Experiments()
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.ID
	}
	return out
}

// RunExperiment regenerates one paper table/figure and returns its
// rendered result. Scale 1.0 is the standard reproduction scale; larger
// values approach paper-scale run lengths.
//
// The experiment's scenario grid executes on a worker pool of
// Parallelism() concurrent simulations (the rendering itself is serial
// and byte-identical at any parallelism level), and identical scenarios
// are memoized process-wide: a second RunExperiment sharing cells with an
// earlier one does not re-simulate them. Long-lived embedders rendering
// many distinct experiments should call ResetExperimentCache between
// batches to release the accumulated results.
func RunExperiment(id string, scale float64, seed int64) (string, error) {
	e, ok := core.ByID(id)
	if !ok {
		return "", fmt.Errorf("%w: %q (see ExperimentIDs)", ErrUnknownExperiment, id)
	}
	opts := core.Options{Scale: scale, Seed: seed}
	if core.Parallelism() > 1 {
		core.NewRunner(0).Prewarm([]core.Experiment{e}, opts)
	}
	res := e.Run(opts)
	return res.Render(), nil
}

// Parallelism returns the process-wide bound on concurrent scenario
// simulations (GOMAXPROCS unless SetParallelism overrode it). It governs
// RunExperiment's scenario prewarm and core seed sweeps; single scenario
// runs (RunScenario, Simulation) are one simulation regardless.
func Parallelism() int { return core.Parallelism() }

// SetParallelism bounds concurrent scenario simulations process-wide;
// n <= 0 restores the GOMAXPROCS default. It returns the previous
// setting (0 = GOMAXPROCS). Each in-flight simulation holds a full
// cluster plus its measurement series, so the bound is also the peak-
// memory budget of a sweep.
func SetParallelism(n int) int { return core.SetParallelism(n) }

// ResetExperimentCache drops every memoized experiment scenario result.
// The cache is process-global and grows with every distinct scenario a
// RunExperiment call simulates — a long-lived embedder that renders many
// experiments (or the same experiments at many scales or seeds) should
// reset it between batches; the next RunExperiment then re-simulates
// from scratch. Concurrent in-flight runs are unaffected.
func ResetExperimentCache() { core.ResetMemo() }
