package ramcloud

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestPublicAPIQuickstart(t *testing.T) {
	sim := NewSimulation(Options{Servers: 3, Seed: 7})
	table := sim.CreateTable("usertable")
	var got []byte
	var readErr error
	sim.Spawn("app", func(c *Client) {
		if err := c.Write(table, []byte("hello"), []byte("world")); err != nil {
			readErr = err
			return
		}
		got, readErr = c.Read(table, []byte("hello"))
	})
	sim.Run()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if string(got) != "world" {
		t.Fatalf("got %q", got)
	}
}

func TestPublicAPIVirtualPayloads(t *testing.T) {
	sim := NewSimulation(Options{Servers: 2, Seed: 3})
	table := sim.CreateTable("t")
	sim.BulkLoad(table, 500, 4096)
	var n int
	var err error
	sim.Spawn("app", func(c *Client) {
		n, err = c.ReadLen(table, []byte("user0000000042"))
	})
	sim.Run()
	if err != nil || n != 4096 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestPublicAPINotFound(t *testing.T) {
	sim := NewSimulation(Options{Servers: 2, Seed: 3})
	table := sim.CreateTable("t")
	var err error
	sim.Spawn("app", func(c *Client) {
		_, err = c.Read(table, []byte("missing"))
	})
	sim.Run()
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPublicAPIDeleteRoundTrip(t *testing.T) {
	sim := NewSimulation(Options{Servers: 3, ReplicationFactor: 2, Seed: 5})
	table := sim.CreateTable("t")
	var errs []error
	sim.Spawn("app", func(c *Client) {
		errs = append(errs, c.Write(table, []byte("k"), []byte("v")))
		errs = append(errs, c.Delete(table, []byte("k")))
		if _, err := c.Read(table, []byte("k")); !errors.Is(err, ErrNotFound) {
			errs = append(errs, fmt.Errorf("read after delete: %v", err))
		}
		if err := c.Delete(table, []byte("k")); !errors.Is(err, ErrNotFound) {
			errs = append(errs, fmt.Errorf("double delete: %v", err))
		}
	})
	sim.Run()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

func TestPublicAPICrashRecovery(t *testing.T) {
	sim := NewSimulation(Options{Servers: 4, ReplicationFactor: 2, Seed: 11})
	table := sim.CreateTable("t")
	sim.BulkLoad(table, 2000, 1024)
	lost := 0
	sim.Spawn("verifier", func(c *Client) {
		c.Sleep(time.Second)
		sim.KillServer(1)
		// Wait for the coordinator to finish recovery.
		for sim.RecoveryCount() == 0 {
			c.Sleep(500 * time.Millisecond)
			if c.Now() > 5*time.Minute {
				return
			}
		}
		for i := 0; i < 2000; i++ {
			key := []byte(fmt.Sprintf("user%010d", i))
			if n, err := c.ReadLen(table, key); err != nil || n != 1024 {
				lost++
			}
		}
	})
	sim.Run()
	if sim.RecoveryCount() == 0 {
		t.Fatal("recovery never completed")
	}
	if lost != 0 {
		t.Fatalf("%d records unreadable after recovery", lost)
	}
}

func TestPublicAPIWorkloadAndEnergy(t *testing.T) {
	sim := NewSimulation(Options{Servers: 2, Seed: 9})
	table := sim.CreateTable("usertable")
	sim.BulkLoad(table, 1000, 1024)
	for i := 0; i < 4; i++ {
		i := i
		sim.Spawn(fmt.Sprintf("ycsb-%d", i), func(c *Client) {
			if err := c.RunWorkload(table, "b", 1000, 3000, 0, int64(i)); err != nil {
				t.Errorf("workload: %v", err)
			}
		})
	}
	sim.Run()
	rep := sim.EnergyReport()
	if rep.Ops != 4*3000 {
		t.Fatalf("ops = %d", rep.Ops)
	}
	if rep.TotalJoules <= 0 || rep.EnergyEfficiency() <= 0 {
		t.Fatalf("energy report: %+v", rep)
	}
	if w := rep.MeanNodeWatts(); w < 61 || w > 131 {
		t.Fatalf("implausible node power %v W", w)
	}
}

func TestPublicAPIDeterminism(t *testing.T) {
	run := func() time.Duration {
		sim := NewSimulation(Options{Servers: 2, Seed: 21})
		table := sim.CreateTable("t")
		sim.BulkLoad(table, 500, 1024)
		sim.Spawn("app", func(c *Client) {
			_ = c.RunWorkload(table, "a", 500, 2000, 0, 1)
		})
		sim.Run()
		return sim.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different virtual durations: %v vs %v", a, b)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("nope", 1, 1); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	ids := ExperimentIDs()
	if len(ids) < 20 {
		t.Fatalf("experiments = %d, want >= 20", len(ids))
	}
}
