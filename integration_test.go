package ramcloud

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestPublicAPIQuickstart(t *testing.T) {
	sim := NewSimulation(Options{Servers: 3, Seed: 7})
	table := sim.CreateTable("usertable")
	var got []byte
	var readErr error
	sim.Spawn("app", func(c *Client) {
		if err := c.Write(table, []byte("hello"), []byte("world")); err != nil {
			readErr = err
			return
		}
		got, readErr = c.Read(table, []byte("hello"))
	})
	sim.Run()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if string(got) != "world" {
		t.Fatalf("got %q", got)
	}
}

func TestPublicAPIVirtualPayloads(t *testing.T) {
	sim := NewSimulation(Options{Servers: 2, Seed: 3})
	table := sim.CreateTable("t")
	sim.BulkLoad(table, 500, 4096)
	var n int
	var err error
	sim.Spawn("app", func(c *Client) {
		n, err = c.ReadLen(table, []byte("user0000000042"))
	})
	sim.Run()
	if err != nil || n != 4096 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestPublicAPINotFound(t *testing.T) {
	sim := NewSimulation(Options{Servers: 2, Seed: 3})
	table := sim.CreateTable("t")
	var err error
	sim.Spawn("app", func(c *Client) {
		_, err = c.Read(table, []byte("missing"))
	})
	sim.Run()
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPublicAPIDeleteRoundTrip(t *testing.T) {
	sim := NewSimulation(Options{Servers: 3, ReplicationFactor: 2, Seed: 5})
	table := sim.CreateTable("t")
	var errs []error
	sim.Spawn("app", func(c *Client) {
		errs = append(errs, c.Write(table, []byte("k"), []byte("v")))
		errs = append(errs, c.Delete(table, []byte("k")))
		if _, err := c.Read(table, []byte("k")); !errors.Is(err, ErrNotFound) {
			errs = append(errs, fmt.Errorf("read after delete: %v", err))
		}
		if err := c.Delete(table, []byte("k")); !errors.Is(err, ErrNotFound) {
			errs = append(errs, fmt.Errorf("double delete: %v", err))
		}
	})
	sim.Run()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

func TestPublicAPICrashRecovery(t *testing.T) {
	sim := NewSimulation(Options{Servers: 4, ReplicationFactor: 2, Seed: 11})
	table := sim.CreateTable("t")
	sim.BulkLoad(table, 2000, 1024)
	lost := 0
	sim.Spawn("verifier", func(c *Client) {
		c.Sleep(time.Second)
		sim.KillServer(1)
		// Wait for the coordinator to finish recovery.
		for sim.RecoveryCount() == 0 {
			c.Sleep(500 * time.Millisecond)
			if c.Now() > 5*time.Minute {
				return
			}
		}
		for i := 0; i < 2000; i++ {
			key := []byte(fmt.Sprintf("user%010d", i))
			if n, err := c.ReadLen(table, key); err != nil || n != 1024 {
				lost++
			}
		}
	})
	sim.Run()
	if sim.RecoveryCount() == 0 {
		t.Fatal("recovery never completed")
	}
	if lost != 0 {
		t.Fatalf("%d records unreadable after recovery", lost)
	}
}

func TestPublicAPIWorkloadAndEnergy(t *testing.T) {
	sim := NewSimulation(Options{Servers: 2, Seed: 9})
	table := sim.CreateTable("usertable")
	sim.BulkLoad(table, 1000, 1024)
	for i := 0; i < 4; i++ {
		i := i
		sim.Spawn(fmt.Sprintf("ycsb-%d", i), func(c *Client) {
			if err := c.RunWorkload(table, "b", 1000, 3000, 0, int64(i)); err != nil {
				t.Errorf("workload: %v", err)
			}
		})
	}
	sim.Run()
	rep := sim.EnergyReport()
	if rep.Ops != 4*3000 {
		t.Fatalf("ops = %d", rep.Ops)
	}
	if rep.TotalJoules <= 0 || rep.EnergyEfficiency() <= 0 {
		t.Fatalf("energy report: %+v", rep)
	}
	if w := rep.MeanNodeWatts(); w < 61 || w > 131 {
		t.Fatalf("implausible node power %v W", w)
	}
}

func TestPublicAPIDeterminism(t *testing.T) {
	run := func() time.Duration {
		sim := NewSimulation(Options{Servers: 2, Seed: 21})
		table := sim.CreateTable("t")
		sim.BulkLoad(table, 500, 1024)
		sim.Spawn("app", func(c *Client) {
			_ = c.RunWorkload(table, "a", 500, 2000, 0, 1)
		})
		sim.Run()
		return sim.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different virtual durations: %v vs %v\nsomething outside (scenario, seed) leaked into the run; see LINTS.md for the usual suspects and the rcvet analyzers that catch them", a, b)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	_, err := RunExperiment("nope", 1, 1)
	if err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	if !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("err = %v; want errors.Is(err, ErrUnknownExperiment)", err)
	}
	ids := ExperimentIDs()
	if len(ids) < 20 {
		t.Fatalf("experiments = %d, want >= 20", len(ids))
	}
}

// TestMultiReadBatchThroughput is the PR's acceptance benchmark in test
// form: batch-16 reads must deliver at least 2x the ops/sec of 16
// sequential Read calls (same keys, same cluster, simulated time).
func TestMultiReadBatchThroughput(t *testing.T) {
	const rounds, batch = 50, 16
	measure := func(batched bool) time.Duration {
		sim := NewSimulation(Options{Servers: 4, Seed: 13})
		table := sim.CreateTable("t")
		sim.BulkLoad(table, 1000, 1024)
		var elapsed time.Duration
		sim.Spawn("reader", func(c *Client) {
			start := c.Now()
			for r := 0; r < rounds; r++ {
				keys := make([][]byte, batch)
				for i := range keys {
					keys[i] = []byte(fmt.Sprintf("user%010d", (r*batch+i)%1000))
				}
				if batched {
					for _, res := range c.MultiRead(table, keys...) {
						if res.Err != nil || res.ValueLen != 1024 {
							t.Errorf("multiread: len=%d err=%v", res.ValueLen, res.Err)
							return
						}
					}
				} else {
					for _, key := range keys {
						if n, err := c.ReadLen(table, key); err != nil || n != 1024 {
							t.Errorf("read: n=%d err=%v", n, err)
							return
						}
					}
				}
			}
			elapsed = c.Now() - start
		})
		sim.Run()
		return elapsed
	}
	seq := measure(false)
	bat := measure(true)
	if bat <= 0 || seq <= 0 {
		t.Fatalf("durations: seq=%v batch=%v", seq, bat)
	}
	speedup := float64(seq) / float64(bat)
	t.Logf("sequential %v, batch-16 %v, speedup %.1fx", seq, bat, speedup)
	if speedup < 2 {
		t.Fatalf("batch-16 speedup = %.2fx, want >= 2x", speedup)
	}
}

// TestPublicAPIBatchedWorkload drives the batched and pipelined YCSB
// modes end to end through the public surface.
func TestPublicAPIBatchedWorkload(t *testing.T) {
	sim := NewSimulation(Options{Servers: 4, Seed: 17})
	table := sim.CreateTable("usertable")
	sim.BulkLoad(table, 1000, 1024)
	sim.Spawn("batched", func(c *Client) {
		if err := c.RunWorkloadOpts(table, "a", WorkloadOptions{
			Records: 1000, Requests: 2000, Seed: 1, BatchSize: 16,
		}); err != nil {
			t.Errorf("batched workload: %v", err)
		}
	})
	sim.Spawn("pipelined", func(c *Client) {
		if err := c.RunWorkloadOpts(table, "b", WorkloadOptions{
			Records: 1000, Requests: 2000, Seed: 2, Window: 8,
		}); err != nil {
			t.Errorf("pipelined workload: %v", err)
		}
	})
	sim.Run()
	rep := sim.EnergyReport()
	if rep.Ops != 4000 {
		t.Fatalf("ops = %d, want 4000", rep.Ops)
	}
}

// TestPublicAPIMultiWriteDurable checks batched writes survive a master
// crash when replicated — MultiWrite is durable, not a consistency
// shortcut.
func TestPublicAPIMultiWriteDurable(t *testing.T) {
	sim := NewSimulation(Options{Servers: 4, ReplicationFactor: 2, Seed: 19})
	table := sim.CreateTable("t")
	lost := 0
	sim.Spawn("app", func(c *Client) {
		ops := make([]WriteOp, 64)
		for i := range ops {
			ops[i] = WriteOp{Key: []byte(fmt.Sprintf("key%04d", i)), ValueLen: 512}
		}
		for _, err := range c.MultiWrite(table, ops) {
			if err != nil {
				t.Errorf("multiwrite: %v", err)
				return
			}
		}
		sim.KillServer(2)
		for sim.RecoveryCount() == 0 {
			c.Sleep(500 * time.Millisecond)
			if c.Now() > 5*time.Minute {
				t.Error("recovery never completed")
				return
			}
		}
		for i := range ops {
			if n, err := c.ReadLen(table, ops[i].Key); err != nil || n != 512 {
				lost++
			}
		}
	})
	sim.Run()
	if lost != 0 {
		t.Fatalf("%d records unreadable after crash", lost)
	}
}
