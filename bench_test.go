package ramcloud

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"ramcloud/internal/core"
)

// Each benchmark regenerates one table or figure of the paper and logs
// the paper-vs-measured rendering. Identical scenarios are memoized
// within the process, so figures sharing a grid (e.g. fig1a/fig1b/fig2)
// pay for their runs once.
//
// RAMCLOUD_BENCH_SCALE scales request/record counts (default 1.0, the
// standard reproduction scale documented in EXPERIMENTS.md; larger values
// approach the paper's full run lengths at proportional wall-clock cost).

func benchScale() float64 {
	if v := os.Getenv("RAMCLOUD_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 1.0
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := core.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var rendered string
	for i := 0; i < b.N; i++ {
		res := exp.Run(core.Options{Scale: benchScale(), Seed: 42})
		rendered = res.Render()
	}
	b.Log("\n" + rendered)
}

func BenchmarkFig1aThroughputReadOnly(b *testing.B)   { benchExperiment(b, "fig1a") }
func BenchmarkFig1bPowerReadOnly(b *testing.B)        { benchExperiment(b, "fig1b") }
func BenchmarkFig2EnergyEfficiency(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkTableICPUUsage(b *testing.B)            { benchExperiment(b, "table1") }
func BenchmarkTableIIWorkloadThroughput(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig3Scalability(b *testing.B)           { benchExperiment(b, "fig3") }
func BenchmarkFig4aPowerPerWorkload(b *testing.B)     { benchExperiment(b, "fig4a") }
func BenchmarkFig4bEnergyPerWorkload(b *testing.B)    { benchExperiment(b, "fig4b") }
func BenchmarkFig5ReplicationThroughput(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig6aThroughputVsServers(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6bEnergyVsServers(b *testing.B)      { benchExperiment(b, "fig6b") }
func BenchmarkFig7PowerVsRF(b *testing.B)             { benchExperiment(b, "fig7") }
func BenchmarkFig8EfficiencyVsRF(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9aRecoveryCPU(b *testing.B)          { benchExperiment(b, "fig9a") }
func BenchmarkFig9bRecoveryPower(b *testing.B)        { benchExperiment(b, "fig9b") }
func BenchmarkFig10RecoveryLatency(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11aRecoveryTimeVsRF(b *testing.B)    { benchExperiment(b, "fig11a") }
func BenchmarkFig11bRecoveryEnergyVsRF(b *testing.B)  { benchExperiment(b, "fig11b") }
func BenchmarkFig12RecoveryDiskIO(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13Throttling(b *testing.B)           { benchExperiment(b, "fig13") }
func BenchmarkSegmentSweep(b *testing.B)              { benchExperiment(b, "seg") }
func BenchmarkCleanerAblation(b *testing.B)           { benchExperiment(b, "cleaner") }
func BenchmarkRelaxedConsistency(b *testing.B)        { benchExperiment(b, "consistency") }
func BenchmarkScatterAblation(b *testing.B)           { benchExperiment(b, "scatter") }
func BenchmarkDistributionStudy(b *testing.B)         { benchExperiment(b, "dist") }
func BenchmarkBatchSweep(b *testing.B)                { benchExperiment(b, "batch") }

// Full-suite render benchmarks: every registered experiment, prewarmed on
// the worker pool (BenchmarkFullRender) or fully serial
// (BenchmarkFullRenderSerial). The pair measures the parallel runner's
// wall-clock speedup; run with -benchtime=1x — one iteration is the whole
// reproduction. The memo resets per iteration so every iteration pays the
// full simulation cost.

func benchFullRender(b *testing.B, workers int) {
	opts := core.Options{Scale: benchScale(), Seed: 42}
	exps := core.Experiments()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ResetMemo()
		if workers > 1 {
			core.NewRunner(workers).Prewarm(exps, opts)
		}
		for _, e := range exps {
			_ = e.Run(opts).Render()
		}
	}
}

func BenchmarkFullRender(b *testing.B)       { benchFullRender(b, runtime.GOMAXPROCS(0)) }
func BenchmarkFullRenderSerial(b *testing.B) { benchFullRender(b, 1) }

// Micro-benchmarks of the storage data structures (real wall-clock
// performance of this library, not simulated time).

func BenchmarkPublicAPIWritePath(b *testing.B) {
	sim := NewSimulation(Options{Servers: 3, ReplicationFactor: 0, Seed: 1})
	table := sim.CreateTable("bench")
	n := b.N
	sim.Spawn("bench", func(c *Client) {
		key := []byte("user0000000001")
		for i := 0; i < n; i++ {
			if err := c.WriteLen(table, key, 1024); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ResetTimer()
	sim.Run()
}

// BenchmarkPublicAPIMultiReadPath measures wall-clock ns per simulated op
// when ops ride 16 to an RPC. Compare with BenchmarkPublicAPIReadPath: the
// engine processes far fewer events per op, so experiment regeneration
// speeds up in wall clock too, not only in simulated time.
func BenchmarkPublicAPIMultiReadPath(b *testing.B) {
	sim := NewSimulation(Options{Servers: 3, Seed: 1})
	table := sim.CreateTable("bench")
	sim.BulkLoad(table, 1000, 1024)
	n := b.N
	sim.Spawn("bench", func(c *Client) {
		keys := make([][]byte, 16)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("user%010d", (i*61)%1000))
		}
		for done := 0; done < n; done += len(keys) {
			for _, r := range c.MultiRead(table, keys...) {
				if r.Err != nil {
					b.Error(r.Err)
					return
				}
			}
		}
	})
	b.ResetTimer()
	sim.Run()
}

func BenchmarkPublicAPIReadPath(b *testing.B) {
	sim := NewSimulation(Options{Servers: 3, Seed: 1})
	table := sim.CreateTable("bench")
	sim.BulkLoad(table, 1000, 1024)
	n := b.N
	sim.Spawn("bench", func(c *Client) {
		key := []byte("user0000000007")
		for i := 0; i < n; i++ {
			if _, err := c.ReadLen(table, key); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ResetTimer()
	sim.Run()
}
